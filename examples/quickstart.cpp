// Quickstart: generate a small aligned-network bundle, hide one fold of
// the target's links, fit SLAMPRED, and print ranked predictions with
// AUC / Precision@K against the hidden links.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <algorithm>
#include <cstdio>

#include "core/slampred.h"
#include "datagen/aligned_generator.h"
#include "eval/link_split.h"
#include "eval/metrics.h"
#include "util/random.h"
#include "util/stopwatch.h"

int main() {
  using namespace slampred;

  // 1. Generate a synthetic aligned bundle (stand-in for the paper's
  //    Foursquare + Twitter crawl — see DESIGN.md).
  AlignedGeneratorConfig gen_config = DefaultExperimentConfig(/*seed=*/42);
  auto generated = GenerateAligned(gen_config);
  if (!generated.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 generated.status().ToString().c_str());
    return 1;
  }
  const AlignedNetworks& networks = generated.value().networks;
  std::printf("target : %s\n", networks.target().Summary().c_str());
  std::printf("source : %s\n", networks.source(0).Summary().c_str());
  std::printf("anchors: %zu\n\n", networks.anchors(0).size());

  // 2. Hide one fold of the target's social links as ground truth.
  Rng rng(7);
  const SocialGraph full_graph =
      SocialGraph::FromHeterogeneousNetwork(networks.target());
  auto folds = SplitLinks(full_graph, /*num_folds=*/5, rng);
  if (!folds.ok()) {
    std::fprintf(stderr, "split failed: %s\n",
                 folds.status().ToString().c_str());
    return 1;
  }
  const LinkFold& fold = folds.value()[0];
  const SocialGraph train_graph =
      full_graph.WithEdgesRemoved(fold.test_edges);
  std::printf("links  : %zu train / %zu hidden test\n\n",
              fold.train_edges.size(), fold.test_edges.size());

  // 3. Fit SLAMPRED on the training structure + both networks'
  //    attributes, with domain adaptation.
  SlamPredConfig config;
  config.alpha_target = 1.0;
  config.alpha_sources = {0.6};
  config.optimization.inner.max_iterations = 80;
  Stopwatch watch;
  SlamPred model(config);
  const Status fit = model.Fit(networks, train_graph);
  if (!fit.ok()) {
    std::fprintf(stderr, "fit failed: %s\n", fit.ToString().c_str());
    return 1;
  }
  std::printf("fitted in %.2fs (%d inner steps, converged=%s)\n\n",
              watch.ElapsedSeconds(), model.trace().steps.iterations,
              model.trace().converged ? "yes" : "no");

  // 4. Evaluate on hidden links vs sampled non-links.
  auto eval = BuildEvaluationSet(full_graph, fold.test_edges,
                                 /*negatives_per_positive=*/5.0, rng);
  if (!eval.ok()) {
    std::fprintf(stderr, "eval-set failed: %s\n",
                 eval.status().ToString().c_str());
    return 1;
  }
  auto scores = model.ScorePairs(eval.value().pairs);
  if (!scores.ok()) {
    std::fprintf(stderr, "scoring failed: %s\n",
                 scores.status().ToString().c_str());
    return 1;
  }
  const double auc =
      ComputeAuc(scores.value(), eval.value().labels).value_or(0.0);
  const double p100 =
      ComputePrecisionAtK(scores.value(), eval.value().labels, 100)
          .value_or(0.0);
  std::printf("AUC           : %.3f\n", auc);
  std::printf("Precision@100 : %.3f\n", p100);

  // 5. Show the top predicted missing links.
  std::printf("\ntop predictions (u, v, score, hidden-link?):\n");
  std::vector<std::size_t> order(eval.value().pairs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores.value()[a] > scores.value()[b];
  });
  for (std::size_t i = 0; i < 10 && i < order.size(); ++i) {
    const UserPair& pair = eval.value().pairs[order[i]];
    std::printf("  (%3zu, %3zu)  %.4f  %s\n", pair.u, pair.v,
                scores.value()[order[i]],
                eval.value().labels[order[i]] == 1 ? "yes" : "no");
  }
  return 0;
}
