// Cold-start scenario: the target network is *severely* information
// sparse — most of its links are unobserved — which is exactly the
// regime the paper motivates transfer for ("especially when the target
// network suffers from information sparsity problem", Section III-C).
//
// The example sweeps the fraction of observed target links and compares
// SLAMPRED (with transfer) against SLAMPRED-T (target only): the sparser
// the target, the larger the transfer gain.

#include <cstdio>

#include "core/slampred.h"
#include "datagen/aligned_generator.h"
#include "eval/link_split.h"
#include "eval/metrics.h"
#include "util/random.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main() {
  using namespace slampred;

  auto generated = GenerateAligned(DefaultExperimentConfig(/*seed=*/404));
  if (!generated.ok()) return 1;
  const AlignedNetworks& networks = generated.value().networks;
  const SocialGraph full_graph =
      SocialGraph::FromHeterogeneousNetwork(networks.target());

  // Fixed held-out test fold (20% of links).
  Rng rng(13);
  auto folds = SplitLinks(full_graph, 5, rng);
  if (!folds.ok()) return 1;
  const std::vector<UserPair>& test_edges = folds.value()[0].test_edges;
  auto eval = BuildEvaluationSet(full_graph, test_edges, 5.0, rng);
  if (!eval.ok()) return 1;

  SlamPredConfig fast;
  fast.optimization.inner.max_iterations = 60;
  fast.optimization.max_outer_iterations = 2;

  auto auc_of = [&](const SlamPred& model) {
    auto scores = model.ScorePairs(eval.value().pairs);
    return ComputeAuc(scores.value(), eval.value().labels).value_or(0.0);
  };

  TablePrinter table({"observed target links", "SLAMPRED-T AUC",
                      "SLAMPRED AUC", "transfer gain"});
  const std::vector<UserPair> train_pool = folds.value()[0].train_edges;
  for (double keep : {1.0, 0.6, 0.3, 0.15}) {
    // Thin the training structure: hide a further fraction of links.
    Rng thin_rng(17);
    std::vector<UserPair> pool = train_pool;
    thin_rng.Shuffle(pool);
    const std::size_t kept = static_cast<std::size_t>(
        keep * static_cast<double>(pool.size()));
    std::vector<UserPair> dropped(pool.begin() + kept, pool.end());
    // Training graph = full minus test fold minus the thinned links.
    SocialGraph train_graph = full_graph.WithEdgesRemoved(test_edges);
    train_graph = train_graph.WithEdgesRemoved(dropped);

    SlamPredConfig t_config = SlamPredTargetOnlyConfig();
    t_config.optimization = fast.optimization;
    SlamPred target_only(t_config);
    if (!target_only.Fit(networks, train_graph).ok()) return 1;

    SlamPred full_model(fast);
    if (!full_model.Fit(networks, train_graph).ok()) return 1;

    const double auc_t = auc_of(target_only);
    const double auc_full = auc_of(full_model);
    table.AddRow({FormatDouble(keep * 100.0, 0) + "% (" +
                      std::to_string(train_graph.num_edges()) + " links)",
                  FormatDouble(auc_t, 3), FormatDouble(auc_full, 3),
                  (auc_full >= auc_t ? "+" : "") +
                      FormatDouble(auc_full - auc_t, 3)});
  }

  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nReading: as the observed target structure thins out, the\n"
      "target-only model degrades while the aligned source keeps\n"
      "propping SLAMPRED up — the transfer gain widens. This is the\n"
      "cold-start argument for aligned-network link prediction.\n");
  return 0;
}
