// Cross-network transfer scenario: how much does an aligned source
// network improve link prediction in the target, and how does that gain
// scale with the number of anchor links?
//
// This is the workload the paper's introduction motivates: a target
// network whose own signal is limited, aligned with an information-rich
// source. The example compares SLAMPRED against its target-only and
// structure-only variants and the classic unsupervised predictors at
// three anchor-link sampling ratios.

#include <cstdio>

#include "baselines/unsupervised.h"
#include "core/slampred.h"
#include "datagen/aligned_generator.h"
#include "eval/anchor_sampler.h"
#include "eval/link_split.h"
#include "eval/metrics.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main() {
  using namespace slampred;

  auto generated = GenerateAligned(DefaultExperimentConfig(/*seed=*/2026));
  if (!generated.ok()) {
    std::fprintf(stderr, "%s\n", generated.status().ToString().c_str());
    return 1;
  }
  const AlignedNetworks& networks = generated.value().networks;
  std::printf("%s\n%s\nanchors: %zu\n\n",
              networks.target().Summary().c_str(),
              networks.source(0).Summary().c_str(),
              networks.anchors(0).size());

  // Hide one fold of target links.
  Rng rng(5);
  const SocialGraph full_graph =
      SocialGraph::FromHeterogeneousNetwork(networks.target());
  auto folds = SplitLinks(full_graph, 5, rng);
  if (!folds.ok()) return 1;
  const SocialGraph train_graph =
      full_graph.WithEdgesRemoved(folds.value()[0].test_edges);
  auto eval = BuildEvaluationSet(full_graph, folds.value()[0].test_edges,
                                 5.0, rng);
  if (!eval.ok()) return 1;

  auto evaluate = [&](const LinkPredictor& model) {
    auto scores = model.ScorePairs(eval.value().pairs);
    const double auc =
        ComputeAuc(scores.value(), eval.value().labels).value_or(0.0);
    const double p100 =
        ComputePrecisionAtK(scores.value(), eval.value().labels, 100)
            .value_or(0.0);
    return std::make_pair(auc, p100);
  };

  SlamPredConfig fast;
  fast.optimization.inner.max_iterations = 60;
  fast.optimization.max_outer_iterations = 2;

  TablePrinter table({"method", "anchor ratio", "AUC", "P@100"});

  // SLAMPRED with progressively more anchor links.
  for (double ratio : {0.0, 0.5, 1.0}) {
    Rng anchor_rng(99);
    const AlignedNetworks bundle =
        WithAnchorRatio(networks, ratio, anchor_rng);
    SlamPred model(fast);
    if (!model.Fit(bundle, train_graph).ok()) return 1;
    const auto [auc, p100] = evaluate(model);
    table.AddRow({"SLAMPRED", FormatDouble(ratio, 1), FormatDouble(auc, 3),
                  FormatDouble(p100, 3)});
  }

  // Target-only and structure-only variants (anchor-independent).
  {
    SlamPredConfig config = SlamPredTargetOnlyConfig();
    config.optimization = fast.optimization;
    SlamPred model(config);
    if (!model.Fit(networks, train_graph).ok()) return 1;
    const auto [auc, p100] = evaluate(model);
    table.AddRow({"SLAMPRED-T", "-", FormatDouble(auc, 3),
                  FormatDouble(p100, 3)});
  }
  {
    SlamPredConfig config = SlamPredHomogeneousConfig();
    config.optimization = fast.optimization;
    SlamPred model(config);
    if (!model.Fit(networks, train_graph).ok()) return 1;
    const auto [auc, p100] = evaluate(model);
    table.AddRow({"SLAMPRED-H", "-", FormatDouble(auc, 3),
                  FormatDouble(p100, 3)});
  }

  // Unsupervised baselines on the training structure.
  for (const LinkPredictor* baseline :
       std::initializer_list<const LinkPredictor*>{
           new JcPredictor(train_graph), new CnPredictor(train_graph),
           new PaPredictor(train_graph)}) {
    const auto [auc, p100] = evaluate(*baseline);
    table.AddRow({baseline->name(), "-", FormatDouble(auc, 3),
                  FormatDouble(p100, 3)});
    delete baseline;
  }

  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nReading: SLAMPRED at ratio 0.0 matches SLAMPRED-T (nothing\n"
      "transfers without anchors); adding anchor links lifts both\n"
      "metrics above every single-network method.\n");
  return 0;
}
