// Multiple aligned source networks (the paper's general K-source
// setting, Definition 2): the target is aligned with TWO sources with
// different densities and domain shifts; the example compares
// no-transfer, each single source, and both sources together.

#include <cstdio>

#include "core/slampred.h"
#include "datagen/aligned_generator.h"
#include "eval/link_split.h"
#include "eval/metrics.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main() {
  using namespace slampred;

  // Bundle with two sources: a dense attribute-rich one and a sparser,
  // heavily domain-shifted one.
  AlignedGeneratorConfig config = DefaultExperimentConfig(/*seed=*/77);
  NetworkRealizationConfig second = config.sources[0];
  second.name = "second-source";
  second.p_intra = 0.22;
  second.attributes.posts_per_user_mean = 4.0;
  second.attributes.domain_shift = 0.7;
  config.sources.push_back(second);

  auto generated = GenerateAligned(config);
  if (!generated.ok()) return 1;
  const AlignedNetworks& networks = generated.value().networks;
  std::printf("target   : %s\n", networks.target().Summary().c_str());
  for (std::size_t k = 0; k < networks.num_sources(); ++k) {
    std::printf("source %zu : %s (%zu anchors)\n", k,
                networks.source(k).Summary().c_str(),
                networks.anchors(k).size());
  }
  std::printf("\n");

  Rng rng(9);
  const SocialGraph full_graph =
      SocialGraph::FromHeterogeneousNetwork(networks.target());
  auto folds = SplitLinks(full_graph, 5, rng);
  if (!folds.ok()) return 1;
  const SocialGraph train_graph =
      full_graph.WithEdgesRemoved(folds.value()[0].test_edges);
  auto eval = BuildEvaluationSet(full_graph, folds.value()[0].test_edges,
                                 5.0, rng);
  if (!eval.ok()) return 1;

  auto run = [&](const char* label, const std::vector<double>& alphas,
                 bool use_sources, TablePrinter& table) {
    SlamPredConfig model_config;
    model_config.use_sources = use_sources;
    model_config.alpha_sources = alphas;
    model_config.optimization.inner.max_iterations = 60;
    model_config.optimization.max_outer_iterations = 2;
    SlamPred model(model_config);
    if (!model.Fit(networks, train_graph).ok()) return;
    auto scores = model.ScorePairs(eval.value().pairs);
    table.AddRow(
        {label,
         FormatDouble(
             ComputeAuc(scores.value(), eval.value().labels).value_or(0.0),
             3),
         FormatDouble(ComputePrecisionAtK(scores.value(),
                                          eval.value().labels, 100)
                          .value_or(0.0),
                      3)});
  };

  TablePrinter table({"configuration", "AUC", "P@100"});
  run("target only", {}, false, table);
  run("source 0 only (alpha {1, 0})", {1.0, 0.0}, true, table);
  run("source 1 only (alpha {0, 1})", {0.0, 1.0}, true, table);
  run("both, balanced (alpha {.5, .5})", {0.5, 0.5}, true, table);
  run("both, source-1 downweighted", {1.0, 0.4}, true, table);
  run("both, overweighted (alpha {1, 1})", {1.0, 1.0}, true, table);
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nReading: each source helps on its own; combining them works\n"
      "when the total source weight is kept moderate (and the heavily\n"
      "shifted source downweighted), while overweighting both sources\n"
      "drowns the target signal — the overfitting effect the paper's\n"
      "Section IV-D2 describes for too-large intimacy weights.\n");
  return 0;
}
