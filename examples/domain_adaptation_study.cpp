// Domain-adaptation study: a look inside the feature-space projection
// (Theorem 1). The example samples link instances, solves the joint
// mapping inference, and reports (a) the generalized eigenvalues, (b)
// how discriminative each latent dimension is, and (c) how much signal
// the adapted tensors carry compared with raw features — with and
// without the projection.

#include <cstdio>

#include "datagen/aligned_generator.h"
#include "embedding/domain_adapter.h"
#include "eval/link_split.h"
#include "eval/metrics.h"
#include "features/feature_tensor.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main() {
  using namespace slampred;

  auto generated = GenerateAligned(DefaultExperimentConfig(/*seed=*/7));
  if (!generated.ok()) return 1;
  const AlignedNetworks& networks = generated.value().networks;

  Rng rng(3);
  const SocialGraph full_graph =
      SocialGraph::FromHeterogeneousNetwork(networks.target());
  auto folds = SplitLinks(full_graph, 5, rng);
  if (!folds.ok()) return 1;
  const SocialGraph train_graph =
      full_graph.WithEdgesRemoved(folds.value()[0].test_edges);
  auto eval = BuildEvaluationSet(full_graph, folds.value()[0].test_edges,
                                 5.0, rng);
  if (!eval.ok()) return 1;

  // Raw feature tensors for both networks.
  std::vector<SparseTensor3> raw;
  raw.push_back(BuildSparseFeatureTensor(networks.target(), train_graph));
  const SocialGraph source_graph =
      SocialGraph::FromHeterogeneousNetwork(networks.source(0));
  raw.push_back(BuildSparseFeatureTensor(networks.source(0), source_graph));
  std::printf("raw feature slices: %s\n\n",
              Join(FeatureNames({}), ", ").c_str());

  // Run the adaptation.
  DomainAdapterOptions options;
  Rng adapter_rng(11);
  auto adapted = AdaptDomains(networks, train_graph, raw, options,
                              adapter_rng);
  if (!adapted.ok()) {
    std::fprintf(stderr, "%s\n", adapted.status().ToString().c_str());
    return 1;
  }
  std::printf("generalized eigenvalues of the Theorem-1 problem: %s\n",
              adapted.value().eigenvalues.ToString(4).c_str());
  std::printf("(a well-separated smallest eigenvalue = one strongly\n"
              " discriminative shared direction)\n\n");

  // How much signal does each latent dimension carry on held-out links?
  auto auc_of_map = [&](const Matrix& map) {
    std::vector<double> scores;
    for (const UserPair& p : eval.value().pairs) {
      scores.push_back(map(p.u, p.v));
    }
    return ComputeAuc(scores, eval.value().labels).value_or(0.5);
  };

  TablePrinter dims({"latent dim", "target AUC", "source(->target) AUC"});
  const SparseTensor3& target_adapted = adapted.value().tensors[0];
  const SparseTensor3& source_adapted = adapted.value().tensors[1];
  for (std::size_t c = 0; c < target_adapted.dim0(); ++c) {
    dims.AddRow({std::to_string(c),
                 FormatDouble(auc_of_map(target_adapted.Slice(c)), 3),
                 FormatDouble(auc_of_map(source_adapted.Slice(c)), 3)});
  }
  std::printf("%s", dims.ToString().c_str());

  // Aggregate comparison: raw vs adapted vs passthrough-transferred.
  auto pass = PassthroughAdapt(networks, raw);
  if (!pass.ok()) return 1;
  TablePrinter agg({"signal", "AUC on held-out links"});
  agg.AddRow({"raw target features (sum)",
              FormatDouble(auc_of_map(raw[0].SumSlices()), 3)});
  agg.AddRow({"adapted target features (sum)",
              FormatDouble(auc_of_map(target_adapted.SumSlices()), 3)});
  agg.AddRow({"raw source via anchors (sum)",
              FormatDouble(auc_of_map(pass.value().tensors[1].SumSlices()),
                           3)});
  agg.AddRow({"adapted source via anchors (sum)",
              FormatDouble(auc_of_map(source_adapted.SumSlices()), 3)});
  std::printf("\n%s", agg.ToString().c_str());
  std::printf(
      "\nReading: the projection concentrates each network's signal in\n"
      "the shared low-dimensional space (dimension 0 carries most of\n"
      "it), which is what lets SLAMPRED mix target and source intimacy\n"
      "terms on a common scale.\n");
  return 0;
}
