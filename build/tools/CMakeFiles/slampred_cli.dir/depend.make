# Empty dependencies file for slampred_cli.
# This may be replaced when dependencies are built.
