file(REMOVE_RECURSE
  "CMakeFiles/slampred_cli.dir/slampred_cli.cpp.o"
  "CMakeFiles/slampred_cli.dir/slampred_cli.cpp.o.d"
  "slampred_cli"
  "slampred_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slampred_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
