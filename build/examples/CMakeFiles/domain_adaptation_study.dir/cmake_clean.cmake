file(REMOVE_RECURSE
  "CMakeFiles/domain_adaptation_study.dir/domain_adaptation_study.cpp.o"
  "CMakeFiles/domain_adaptation_study.dir/domain_adaptation_study.cpp.o.d"
  "domain_adaptation_study"
  "domain_adaptation_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domain_adaptation_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
