# Empty dependencies file for domain_adaptation_study.
# This may be replaced when dependencies are built.
