# Empty compiler generated dependencies file for cross_network_transfer.
# This may be replaced when dependencies are built.
