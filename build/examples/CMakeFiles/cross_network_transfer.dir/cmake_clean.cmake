file(REMOVE_RECURSE
  "CMakeFiles/cross_network_transfer.dir/cross_network_transfer.cpp.o"
  "CMakeFiles/cross_network_transfer.dir/cross_network_transfer.cpp.o.d"
  "cross_network_transfer"
  "cross_network_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_network_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
