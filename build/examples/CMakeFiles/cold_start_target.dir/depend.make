# Empty dependencies file for cold_start_target.
# This may be replaced when dependencies are built.
