file(REMOVE_RECURSE
  "CMakeFiles/cold_start_target.dir/cold_start_target.cpp.o"
  "CMakeFiles/cold_start_target.dir/cold_start_target.cpp.o.d"
  "cold_start_target"
  "cold_start_target.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cold_start_target.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
