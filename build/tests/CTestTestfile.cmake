# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/status_test[1]_include.cmake")
include("/root/repo/build/tests/random_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/vector_matrix_test[1]_include.cmake")
include("/root/repo/build/tests/factorization_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_csr_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/datagen_test[1]_include.cmake")
include("/root/repo/build/tests/features_test[1]_include.cmake")
include("/root/repo/build/tests/embedding_test[1]_include.cmake")
include("/root/repo/build/tests/optim_test[1]_include.cmake")
include("/root/repo/build/tests/ml_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/slampred_test[1]_include.cmake")
include("/root/repo/build/tests/experiment_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/meta_path_test[1]_include.cmake")
include("/root/repo/build/tests/graph_io_test[1]_include.cmake")
include("/root/repo/build/tests/hinge_loss_test[1]_include.cmake")
include("/root/repo/build/tests/randomized_svd_test[1]_include.cmake")
include("/root/repo/build/tests/ranking_metrics_test[1]_include.cmake")
include("/root/repo/build/tests/neighborhood_extra_test[1]_include.cmake")
