file(REMOVE_RECURSE
  "CMakeFiles/tensor_csr_test.dir/tensor_csr_test.cc.o"
  "CMakeFiles/tensor_csr_test.dir/tensor_csr_test.cc.o.d"
  "tensor_csr_test"
  "tensor_csr_test.pdb"
  "tensor_csr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tensor_csr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
