file(REMOVE_RECURSE
  "CMakeFiles/slampred_test.dir/slampred_test.cc.o"
  "CMakeFiles/slampred_test.dir/slampred_test.cc.o.d"
  "slampred_test"
  "slampred_test.pdb"
  "slampred_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slampred_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
