# Empty compiler generated dependencies file for slampred_test.
# This may be replaced when dependencies are built.
