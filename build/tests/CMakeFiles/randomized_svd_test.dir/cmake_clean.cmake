file(REMOVE_RECURSE
  "CMakeFiles/randomized_svd_test.dir/randomized_svd_test.cc.o"
  "CMakeFiles/randomized_svd_test.dir/randomized_svd_test.cc.o.d"
  "randomized_svd_test"
  "randomized_svd_test.pdb"
  "randomized_svd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/randomized_svd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
