file(REMOVE_RECURSE
  "CMakeFiles/vector_matrix_test.dir/vector_matrix_test.cc.o"
  "CMakeFiles/vector_matrix_test.dir/vector_matrix_test.cc.o.d"
  "vector_matrix_test"
  "vector_matrix_test.pdb"
  "vector_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vector_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
