# Empty dependencies file for vector_matrix_test.
# This may be replaced when dependencies are built.
