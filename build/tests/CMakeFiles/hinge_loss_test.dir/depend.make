# Empty dependencies file for hinge_loss_test.
# This may be replaced when dependencies are built.
