file(REMOVE_RECURSE
  "CMakeFiles/hinge_loss_test.dir/hinge_loss_test.cc.o"
  "CMakeFiles/hinge_loss_test.dir/hinge_loss_test.cc.o.d"
  "hinge_loss_test"
  "hinge_loss_test.pdb"
  "hinge_loss_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hinge_loss_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
