file(REMOVE_RECURSE
  "CMakeFiles/neighborhood_extra_test.dir/neighborhood_extra_test.cc.o"
  "CMakeFiles/neighborhood_extra_test.dir/neighborhood_extra_test.cc.o.d"
  "neighborhood_extra_test"
  "neighborhood_extra_test.pdb"
  "neighborhood_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neighborhood_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
