# Empty dependencies file for neighborhood_extra_test.
# This may be replaced when dependencies are built.
