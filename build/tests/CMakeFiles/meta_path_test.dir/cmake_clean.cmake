file(REMOVE_RECURSE
  "CMakeFiles/meta_path_test.dir/meta_path_test.cc.o"
  "CMakeFiles/meta_path_test.dir/meta_path_test.cc.o.d"
  "meta_path_test"
  "meta_path_test.pdb"
  "meta_path_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meta_path_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
