# Empty compiler generated dependencies file for slampred.
# This may be replaced when dependencies are built.
