file(REMOVE_RECURSE
  "libslampred.a"
)
