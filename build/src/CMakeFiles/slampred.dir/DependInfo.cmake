
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/neighborhood_extra.cc" "src/CMakeFiles/slampred.dir/baselines/neighborhood_extra.cc.o" "gcc" "src/CMakeFiles/slampred.dir/baselines/neighborhood_extra.cc.o.d"
  "/root/repo/src/baselines/pair_features.cc" "src/CMakeFiles/slampred.dir/baselines/pair_features.cc.o" "gcc" "src/CMakeFiles/slampred.dir/baselines/pair_features.cc.o.d"
  "/root/repo/src/baselines/pl.cc" "src/CMakeFiles/slampred.dir/baselines/pl.cc.o" "gcc" "src/CMakeFiles/slampred.dir/baselines/pl.cc.o.d"
  "/root/repo/src/baselines/scan.cc" "src/CMakeFiles/slampred.dir/baselines/scan.cc.o" "gcc" "src/CMakeFiles/slampred.dir/baselines/scan.cc.o.d"
  "/root/repo/src/baselines/unsupervised.cc" "src/CMakeFiles/slampred.dir/baselines/unsupervised.cc.o" "gcc" "src/CMakeFiles/slampred.dir/baselines/unsupervised.cc.o.d"
  "/root/repo/src/core/slampred.cc" "src/CMakeFiles/slampred.dir/core/slampred.cc.o" "gcc" "src/CMakeFiles/slampred.dir/core/slampred.cc.o.d"
  "/root/repo/src/datagen/aligned_generator.cc" "src/CMakeFiles/slampred.dir/datagen/aligned_generator.cc.o" "gcc" "src/CMakeFiles/slampred.dir/datagen/aligned_generator.cc.o.d"
  "/root/repo/src/datagen/attribute_generator.cc" "src/CMakeFiles/slampred.dir/datagen/attribute_generator.cc.o" "gcc" "src/CMakeFiles/slampred.dir/datagen/attribute_generator.cc.o.d"
  "/root/repo/src/datagen/community_model.cc" "src/CMakeFiles/slampred.dir/datagen/community_model.cc.o" "gcc" "src/CMakeFiles/slampred.dir/datagen/community_model.cc.o.d"
  "/root/repo/src/embedding/domain_adapter.cc" "src/CMakeFiles/slampred.dir/embedding/domain_adapter.cc.o" "gcc" "src/CMakeFiles/slampred.dir/embedding/domain_adapter.cc.o.d"
  "/root/repo/src/embedding/indicator_matrices.cc" "src/CMakeFiles/slampred.dir/embedding/indicator_matrices.cc.o" "gcc" "src/CMakeFiles/slampred.dir/embedding/indicator_matrices.cc.o.d"
  "/root/repo/src/embedding/laplacian.cc" "src/CMakeFiles/slampred.dir/embedding/laplacian.cc.o" "gcc" "src/CMakeFiles/slampred.dir/embedding/laplacian.cc.o.d"
  "/root/repo/src/embedding/link_instance.cc" "src/CMakeFiles/slampred.dir/embedding/link_instance.cc.o" "gcc" "src/CMakeFiles/slampred.dir/embedding/link_instance.cc.o.d"
  "/root/repo/src/embedding/projection_solver.cc" "src/CMakeFiles/slampred.dir/embedding/projection_solver.cc.o" "gcc" "src/CMakeFiles/slampred.dir/embedding/projection_solver.cc.o.d"
  "/root/repo/src/eval/anchor_sampler.cc" "src/CMakeFiles/slampred.dir/eval/anchor_sampler.cc.o" "gcc" "src/CMakeFiles/slampred.dir/eval/anchor_sampler.cc.o.d"
  "/root/repo/src/eval/experiment.cc" "src/CMakeFiles/slampred.dir/eval/experiment.cc.o" "gcc" "src/CMakeFiles/slampred.dir/eval/experiment.cc.o.d"
  "/root/repo/src/eval/link_split.cc" "src/CMakeFiles/slampred.dir/eval/link_split.cc.o" "gcc" "src/CMakeFiles/slampred.dir/eval/link_split.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/CMakeFiles/slampred.dir/eval/metrics.cc.o" "gcc" "src/CMakeFiles/slampred.dir/eval/metrics.cc.o.d"
  "/root/repo/src/eval/ranking_metrics.cc" "src/CMakeFiles/slampred.dir/eval/ranking_metrics.cc.o" "gcc" "src/CMakeFiles/slampred.dir/eval/ranking_metrics.cc.o.d"
  "/root/repo/src/features/attribute_features.cc" "src/CMakeFiles/slampred.dir/features/attribute_features.cc.o" "gcc" "src/CMakeFiles/slampred.dir/features/attribute_features.cc.o.d"
  "/root/repo/src/features/feature_tensor.cc" "src/CMakeFiles/slampred.dir/features/feature_tensor.cc.o" "gcc" "src/CMakeFiles/slampred.dir/features/feature_tensor.cc.o.d"
  "/root/repo/src/features/meta_path_features.cc" "src/CMakeFiles/slampred.dir/features/meta_path_features.cc.o" "gcc" "src/CMakeFiles/slampred.dir/features/meta_path_features.cc.o.d"
  "/root/repo/src/features/structural_features.cc" "src/CMakeFiles/slampred.dir/features/structural_features.cc.o" "gcc" "src/CMakeFiles/slampred.dir/features/structural_features.cc.o.d"
  "/root/repo/src/graph/aligned_networks.cc" "src/CMakeFiles/slampred.dir/graph/aligned_networks.cc.o" "gcc" "src/CMakeFiles/slampred.dir/graph/aligned_networks.cc.o.d"
  "/root/repo/src/graph/anchor_links.cc" "src/CMakeFiles/slampred.dir/graph/anchor_links.cc.o" "gcc" "src/CMakeFiles/slampred.dir/graph/anchor_links.cc.o.d"
  "/root/repo/src/graph/graph_io.cc" "src/CMakeFiles/slampred.dir/graph/graph_io.cc.o" "gcc" "src/CMakeFiles/slampred.dir/graph/graph_io.cc.o.d"
  "/root/repo/src/graph/heterogeneous_network.cc" "src/CMakeFiles/slampred.dir/graph/heterogeneous_network.cc.o" "gcc" "src/CMakeFiles/slampred.dir/graph/heterogeneous_network.cc.o.d"
  "/root/repo/src/graph/node_types.cc" "src/CMakeFiles/slampred.dir/graph/node_types.cc.o" "gcc" "src/CMakeFiles/slampred.dir/graph/node_types.cc.o.d"
  "/root/repo/src/graph/social_graph.cc" "src/CMakeFiles/slampred.dir/graph/social_graph.cc.o" "gcc" "src/CMakeFiles/slampred.dir/graph/social_graph.cc.o.d"
  "/root/repo/src/linalg/cholesky.cc" "src/CMakeFiles/slampred.dir/linalg/cholesky.cc.o" "gcc" "src/CMakeFiles/slampred.dir/linalg/cholesky.cc.o.d"
  "/root/repo/src/linalg/csr_matrix.cc" "src/CMakeFiles/slampred.dir/linalg/csr_matrix.cc.o" "gcc" "src/CMakeFiles/slampred.dir/linalg/csr_matrix.cc.o.d"
  "/root/repo/src/linalg/generalized_eigen.cc" "src/CMakeFiles/slampred.dir/linalg/generalized_eigen.cc.o" "gcc" "src/CMakeFiles/slampred.dir/linalg/generalized_eigen.cc.o.d"
  "/root/repo/src/linalg/lu.cc" "src/CMakeFiles/slampred.dir/linalg/lu.cc.o" "gcc" "src/CMakeFiles/slampred.dir/linalg/lu.cc.o.d"
  "/root/repo/src/linalg/matrix.cc" "src/CMakeFiles/slampred.dir/linalg/matrix.cc.o" "gcc" "src/CMakeFiles/slampred.dir/linalg/matrix.cc.o.d"
  "/root/repo/src/linalg/matrix_ops.cc" "src/CMakeFiles/slampred.dir/linalg/matrix_ops.cc.o" "gcc" "src/CMakeFiles/slampred.dir/linalg/matrix_ops.cc.o.d"
  "/root/repo/src/linalg/qr.cc" "src/CMakeFiles/slampred.dir/linalg/qr.cc.o" "gcc" "src/CMakeFiles/slampred.dir/linalg/qr.cc.o.d"
  "/root/repo/src/linalg/randomized_svd.cc" "src/CMakeFiles/slampred.dir/linalg/randomized_svd.cc.o" "gcc" "src/CMakeFiles/slampred.dir/linalg/randomized_svd.cc.o.d"
  "/root/repo/src/linalg/svd.cc" "src/CMakeFiles/slampred.dir/linalg/svd.cc.o" "gcc" "src/CMakeFiles/slampred.dir/linalg/svd.cc.o.d"
  "/root/repo/src/linalg/symmetric_eigen.cc" "src/CMakeFiles/slampred.dir/linalg/symmetric_eigen.cc.o" "gcc" "src/CMakeFiles/slampred.dir/linalg/symmetric_eigen.cc.o.d"
  "/root/repo/src/linalg/tensor3.cc" "src/CMakeFiles/slampred.dir/linalg/tensor3.cc.o" "gcc" "src/CMakeFiles/slampred.dir/linalg/tensor3.cc.o.d"
  "/root/repo/src/linalg/vector.cc" "src/CMakeFiles/slampred.dir/linalg/vector.cc.o" "gcc" "src/CMakeFiles/slampred.dir/linalg/vector.cc.o.d"
  "/root/repo/src/ml/instance_sampler.cc" "src/CMakeFiles/slampred.dir/ml/instance_sampler.cc.o" "gcc" "src/CMakeFiles/slampred.dir/ml/instance_sampler.cc.o.d"
  "/root/repo/src/ml/logistic_regression.cc" "src/CMakeFiles/slampred.dir/ml/logistic_regression.cc.o" "gcc" "src/CMakeFiles/slampred.dir/ml/logistic_regression.cc.o.d"
  "/root/repo/src/ml/standard_scaler.cc" "src/CMakeFiles/slampred.dir/ml/standard_scaler.cc.o" "gcc" "src/CMakeFiles/slampred.dir/ml/standard_scaler.cc.o.d"
  "/root/repo/src/optim/cccp.cc" "src/CMakeFiles/slampred.dir/optim/cccp.cc.o" "gcc" "src/CMakeFiles/slampred.dir/optim/cccp.cc.o.d"
  "/root/repo/src/optim/forward_backward.cc" "src/CMakeFiles/slampred.dir/optim/forward_backward.cc.o" "gcc" "src/CMakeFiles/slampred.dir/optim/forward_backward.cc.o.d"
  "/root/repo/src/optim/objective.cc" "src/CMakeFiles/slampred.dir/optim/objective.cc.o" "gcc" "src/CMakeFiles/slampred.dir/optim/objective.cc.o.d"
  "/root/repo/src/optim/proximal.cc" "src/CMakeFiles/slampred.dir/optim/proximal.cc.o" "gcc" "src/CMakeFiles/slampred.dir/optim/proximal.cc.o.d"
  "/root/repo/src/util/csv_writer.cc" "src/CMakeFiles/slampred.dir/util/csv_writer.cc.o" "gcc" "src/CMakeFiles/slampred.dir/util/csv_writer.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/slampred.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/slampred.dir/util/logging.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/slampred.dir/util/random.cc.o" "gcc" "src/CMakeFiles/slampred.dir/util/random.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/slampred.dir/util/status.cc.o" "gcc" "src/CMakeFiles/slampred.dir/util/status.cc.o.d"
  "/root/repo/src/util/stopwatch.cc" "src/CMakeFiles/slampred.dir/util/stopwatch.cc.o" "gcc" "src/CMakeFiles/slampred.dir/util/stopwatch.cc.o.d"
  "/root/repo/src/util/string_util.cc" "src/CMakeFiles/slampred.dir/util/string_util.cc.o" "gcc" "src/CMakeFiles/slampred.dir/util/string_util.cc.o.d"
  "/root/repo/src/util/table_printer.cc" "src/CMakeFiles/slampred.dir/util/table_printer.cc.o" "gcc" "src/CMakeFiles/slampred.dir/util/table_printer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
