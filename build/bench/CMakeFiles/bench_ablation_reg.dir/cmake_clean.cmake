file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_reg.dir/bench_ablation_reg.cc.o"
  "CMakeFiles/bench_ablation_reg.dir/bench_ablation_reg.cc.o.d"
  "bench_ablation_reg"
  "bench_ablation_reg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_reg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
