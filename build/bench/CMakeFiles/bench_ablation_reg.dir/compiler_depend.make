# Empty compiler generated dependencies file for bench_ablation_reg.
# This may be replaced when dependencies are built.
