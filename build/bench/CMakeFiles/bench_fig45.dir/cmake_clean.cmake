file(REMOVE_RECURSE
  "CMakeFiles/bench_fig45.dir/bench_fig45.cc.o"
  "CMakeFiles/bench_fig45.dir/bench_fig45.cc.o.d"
  "bench_fig45"
  "bench_fig45.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig45.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
