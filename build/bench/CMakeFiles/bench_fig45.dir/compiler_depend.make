# Empty compiler generated dependencies file for bench_fig45.
# This may be replaced when dependencies are built.
