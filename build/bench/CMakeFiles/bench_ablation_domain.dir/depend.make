# Empty dependencies file for bench_ablation_domain.
# This may be replaced when dependencies are built.
