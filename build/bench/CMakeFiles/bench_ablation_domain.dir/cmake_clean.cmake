file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_domain.dir/bench_ablation_domain.cc.o"
  "CMakeFiles/bench_ablation_domain.dir/bench_ablation_domain.cc.o.d"
  "bench_ablation_domain"
  "bench_ablation_domain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_domain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
