// Tests for the binary_io primitives, the Serialize/Deserialize support
// on the linalg types, and the model-artifact round trip: a fitted
// model saved to disk and served back through ScoringSession must score
// bit-identically to the in-memory model, at every thread count, with
// no fit stage running.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/model_artifact.h"
#include "core/scoring_session.h"
#include "datagen/aligned_generator.h"
#include "eval/link_split.h"
#include "linalg/csr_matrix.h"
#include "linalg/sparse_tensor3.h"
#include "util/binary_io.h"
#include "util/fault_injection.h"
#include "util/thread_pool.h"

namespace slampred {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(BinaryIoTest, PrimitiveRoundTrip) {
  BinaryWriter writer;
  writer.WriteU8(0xAB);
  writer.WriteU32(0xDEADBEEF);
  writer.WriteU64(0x0123456789ABCDEFull);
  writer.WriteI32(-42);
  writer.WriteDouble(3.141592653589793);
  writer.WriteBool(true);
  writer.WriteString("hello");

  BinaryReader reader(writer.buffer());
  EXPECT_EQ(reader.ReadU8().value(), 0xAB);
  EXPECT_EQ(reader.ReadU32().value(), 0xDEADBEEFu);
  EXPECT_EQ(reader.ReadU64().value(), 0x0123456789ABCDEFull);
  EXPECT_EQ(reader.ReadI32().value(), -42);
  EXPECT_EQ(reader.ReadDouble().value(), 3.141592653589793);
  EXPECT_TRUE(reader.ReadBool().value());
  EXPECT_EQ(reader.ReadString().value(), "hello");
  EXPECT_TRUE(reader.AtEnd());
}

TEST(BinaryIoTest, ReadPastEndIsOffsetDiagnosed) {
  BinaryWriter writer;
  writer.WriteU32(7);
  BinaryReader reader(writer.buffer());
  EXPECT_TRUE(reader.ReadU32().ok());
  const auto failed = reader.ReadU64();
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kIoError);
  EXPECT_NE(failed.status().message().find("offset 4"), std::string::npos);
}

TEST(BinaryIoTest, BoolRejectsOtherBytes) {
  const std::string bytes = "\x02";
  BinaryReader reader(bytes);
  EXPECT_FALSE(reader.ReadBool().ok());
}

TEST(BinaryIoTest, Crc32MatchesReferenceVector) {
  // The canonical CRC-32 check value (IEEE / zlib convention).
  const std::string data = "123456789";
  EXPECT_EQ(Crc32(data.data(), data.size()), 0xCBF43926u);
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
}

TEST(BinaryIoTest, FileRoundTrip) {
  const std::string path = TempPath("binary_io_file.bin");
  const std::string payload("ab\0cd\xFFz", 7);
  ASSERT_TRUE(WriteStringToFile(payload, path).ok());
  auto loaded = ReadFileToString(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value(), payload);
  std::remove(path.c_str());
  EXPECT_FALSE(ReadFileToString(path).ok());
}

TEST(SerializeTest, MatrixRoundTrip) {
  Matrix m(3, 2);
  m(0, 0) = 1.5;
  m(1, 1) = -2.25;
  m(2, 0) = 1e-300;
  BinaryWriter writer;
  m.Serialize(writer);
  BinaryReader reader(writer.buffer());
  auto back = Matrix::Deserialize(reader);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), m);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(SerializeTest, CsrMatrixRoundTrip) {
  Matrix dense(4, 4);
  dense(0, 1) = 2.0;
  dense(1, 3) = -1.0;
  dense(3, 0) = 0.5;
  const CsrMatrix csr = CsrMatrix::FromDense(dense);
  BinaryWriter writer;
  csr.Serialize(writer);
  BinaryReader reader(writer.buffer());
  auto back = CsrMatrix::Deserialize(reader);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().ToDense(), dense);
  EXPECT_EQ(back.value().nnz(), csr.nnz());
}

TEST(SerializeTest, CsrMatrixRejectsCorruptInvariants) {
  Matrix dense(2, 2);
  dense(0, 0) = 1.0;
  dense(1, 1) = 1.0;
  BinaryWriter writer;
  CsrMatrix::FromDense(dense).Serialize(writer);
  // Layout: rows u64 | cols u64 | nnz u64 | row_ptr (rows+1) u64 | ...
  // Corrupt the second row_ptr entry (offset 24 + 8) to break
  // monotonicity.
  std::string bytes = writer.buffer();
  bytes[32] = static_cast<char>(0xEE);
  BinaryReader reader(bytes);
  auto back = CsrMatrix::Deserialize(reader);
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kIoError);
  EXPECT_NE(back.status().message().find("corrupt csr matrix"),
            std::string::npos);
}

TEST(SerializeTest, SparseTensor3RoundTrip) {
  Tensor3 dense(2, 3, 3);
  dense(0, 0, 1) = 4.0;
  dense(1, 2, 2) = -3.5;
  const SparseTensor3 tensor = SparseTensor3::FromDense(dense);
  BinaryWriter writer;
  tensor.Serialize(writer);
  BinaryReader reader(writer.buffer());
  auto back = SparseTensor3::Deserialize(reader);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().dim0(), 2u);
  EXPECT_EQ(back.value().TotalNnz(), tensor.TotalNnz());
  for (std::size_t k = 0; k < tensor.dim0(); ++k) {
    EXPECT_EQ(back.value().Slice(k), tensor.Slice(k));
  }
}

class ModelArtifactTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    AlignedGeneratorConfig gen_config = DefaultExperimentConfig(17);
    gen_config.population.num_personas = 90;
    auto gen = GenerateAligned(gen_config);
    ASSERT_TRUE(gen.ok());
    generated_ = new GeneratedAligned(std::move(gen).value());
    full_graph_ = new SocialGraph(SocialGraph::FromHeterogeneousNetwork(
        generated_->networks.target()));
    Rng rng(11);
    auto folds = SplitLinks(*full_graph_, 5, rng);
    ASSERT_TRUE(folds.ok());
    train_graph_ = new SocialGraph(
        full_graph_->WithEdgesRemoved(folds.value()[0].test_edges));

    SlamPredConfig config;
    config.optimization.inner.max_iterations = 40;
    config.optimization.max_outer_iterations = 2;
    model_ = new SlamPred(config);
    ASSERT_TRUE(model_->Fit(generated_->networks, *train_graph_).ok());
  }

  static void TearDownTestSuite() {
    delete generated_;
    delete full_graph_;
    delete train_graph_;
    delete model_;
    generated_ = nullptr;
  }

  static std::vector<UserPair> SamplePairs() {
    std::vector<UserPair> pairs;
    const std::size_t n = model_->ScoreMatrix().rows();
    for (std::size_t u = 0; u < n; u += 3) {
      for (std::size_t v = u + 1; v < n; v += 7) pairs.push_back({u, v});
    }
    return pairs;
  }

  static GeneratedAligned* generated_;
  static SocialGraph* full_graph_;
  static SocialGraph* train_graph_;
  static SlamPred* model_;
};

GeneratedAligned* ModelArtifactTest::generated_ = nullptr;
SocialGraph* ModelArtifactTest::full_graph_ = nullptr;
SocialGraph* ModelArtifactTest::train_graph_ = nullptr;
SlamPred* ModelArtifactTest::model_ = nullptr;

TEST_F(ModelArtifactTest, SnapshotRequiresFit) {
  SlamPred unfitted;
  const auto artifact = MakeModelArtifact(unfitted);
  ASSERT_FALSE(artifact.ok());
  EXPECT_EQ(artifact.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ModelArtifactTest, InMemoryRoundTripIsExact) {
  auto artifact = MakeModelArtifact(*model_);
  ASSERT_TRUE(artifact.ok());
  const std::string bytes = SerializeModelArtifact(artifact.value());
  auto back = DeserializeModelArtifact(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().s, model_->ScoreMatrix());
  EXPECT_FALSE(back.value().has_adapted_tensors);
  // The config round-trips exactly: re-serializing the parsed artifact
  // reproduces the original byte stream.
  EXPECT_EQ(SerializeModelArtifact(back.value()), bytes);
}

TEST_F(ModelArtifactTest, AdaptedTensorsRoundTrip) {
  auto artifact = MakeModelArtifact(*model_, /*include_adapted_tensors=*/true);
  ASSERT_TRUE(artifact.ok());
  ASSERT_TRUE(artifact.value().has_adapted_tensors);
  ASSERT_EQ(artifact.value().adapted_tensors.size(),
            model_->adapted_tensors().size());
  const std::string bytes = SerializeModelArtifact(artifact.value());
  auto back = DeserializeModelArtifact(bytes);
  ASSERT_TRUE(back.ok());
  ASSERT_TRUE(back.value().has_adapted_tensors);
  EXPECT_EQ(SerializeModelArtifact(back.value()), bytes);
  for (std::size_t k = 0; k < back.value().adapted_tensors.size(); ++k) {
    EXPECT_EQ(back.value().adapted_tensors[k].TotalNnz(),
              model_->adapted_tensors()[k].TotalNnz());
  }
}

TEST_F(ModelArtifactTest, LoadedScoresBitIdenticalAcrossThreadCounts) {
  const std::string path = TempPath("artifact_roundtrip.slpmodel");
  auto artifact = MakeModelArtifact(*model_);
  ASSERT_TRUE(artifact.ok());
  ASSERT_TRUE(SaveModelArtifact(artifact.value(), path).ok());

  const std::vector<UserPair> pairs = SamplePairs();
  auto expected = model_->ScorePairs(pairs);
  ASSERT_TRUE(expected.ok());

  const std::size_t original_threads = ThreadPool::Global().num_threads();
  for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                              std::size_t{7}}) {
    ThreadPool::Global().Resize(threads);
    auto session = ScoringSession::FromFile(path);
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    auto served = session.value().ScorePairs(pairs);
    ASSERT_TRUE(served.ok());
    ASSERT_EQ(served.value().size(), expected.value().size());
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      // Bitwise equality, not approximate: the artifact stores exact
      // IEEE-754 patterns.
      EXPECT_EQ(served.value()[i], expected.value()[i])
          << "pair " << i << " at " << threads << " thread(s)";
    }
  }
  ThreadPool::Global().Resize(original_threads);
  std::remove(path.c_str());
}

TEST_F(ModelArtifactTest, ScoringSessionNeverRunsFitStages) {
  const std::string path = TempPath("artifact_no_fit.slpmodel");
  auto artifact = MakeModelArtifact(*model_);
  ASSERT_TRUE(artifact.ok());
  ASSERT_TRUE(SaveModelArtifact(artifact.value(), path).ok());

  // Arm every fit stage to fail on any hit. If serving touched any
  // stage, loading or scoring below would fail.
  FaultSpec always_fail;
  always_fail.kind = FaultKind::kFailNotConverged;
  always_fail.max_triggers = -1;
  FaultInjector::Instance().Arm("fit.features", always_fail);
  FaultInjector::Instance().Arm("fit.embedding", always_fail);
  FaultInjector::Instance().Arm("fit.solve", always_fail);

  // Sanity: the armed sites do break an actual fit.
  SlamPred refit(model_->config());
  EXPECT_FALSE(refit.Fit(generated_->networks, *train_graph_).ok());

  auto session = ScoringSession::FromFile(path);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  auto served = session.value().ScorePairs(SamplePairs());
  EXPECT_TRUE(served.ok());
  EXPECT_EQ(FaultInjector::Instance().HitCount("fit.features"), 1);

  FaultInjector::Instance().Reset();
  std::remove(path.c_str());
}

TEST_F(ModelArtifactTest, SessionBoundsAndIdentity) {
  auto artifact = MakeModelArtifact(*model_);
  ASSERT_TRUE(artifact.ok());
  const std::size_t n = artifact.value().s.rows();
  auto session = ScoringSession::FromArtifact(std::move(artifact).value());
  ASSERT_TRUE(session.ok());
  EXPECT_EQ(session.value().num_users(), n);
  EXPECT_EQ(session.value().name(), "SLAMPRED (artifact)");
  EXPECT_EQ(session.value().Score(0, 1).value(),
            model_->Score(0, 1).value());
  EXPECT_EQ(session.value().Score(n, 0).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(session.value().ScorePairs({{0, n}}).status().code(),
            StatusCode::kOutOfRange);
}

TEST_F(ModelArtifactTest, EmptyArtifactRejectedForServing) {
  ModelArtifact artifact;
  EXPECT_FALSE(ScoringSession::FromArtifact(std::move(artifact)).ok());
}

// ---------------------------------------------------------------------
// Factored-backend artifacts: a model fitted with the factored solver
// snapshots its U·Vᵀ factors into the low-rank section instead of the
// dense score matrix. The section must round-trip bit-exactly, mark the
// backend on load, and serve through ScoringSession with scores
// identical to the in-memory factored model.

class FactoredArtifactTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    AlignedGeneratorConfig gen_config = DefaultExperimentConfig(19);
    gen_config.population.num_personas = 90;
    auto gen = GenerateAligned(gen_config);
    ASSERT_TRUE(gen.ok());
    generated_ = new GeneratedAligned(std::move(gen).value());
    SocialGraph full = SocialGraph::FromHeterogeneousNetwork(
        generated_->networks.target());
    Rng rng(12);
    auto folds = SplitLinks(full, 5, rng);
    ASSERT_TRUE(folds.ok());
    train_graph_ = new SocialGraph(
        full.WithEdgesRemoved(folds.value()[0].test_edges));

    SlamPredConfig config;
    config.optimization.inner.max_iterations = 25;
    config.optimization.max_outer_iterations = 2;
    config.solver_backend = SolverBackend::kFactored;
    config.factored.rank = 16;
    model_ = new SlamPred(config);
    ASSERT_TRUE(model_->Fit(generated_->networks, *train_graph_).ok());
  }

  static void TearDownTestSuite() {
    delete generated_;
    delete train_graph_;
    delete model_;
    generated_ = nullptr;
  }

  static std::vector<UserPair> SamplePairs() {
    std::vector<UserPair> pairs;
    const std::size_t n = model_->NumUsersFitted();
    for (std::size_t u = 0; u < n; u += 3) {
      for (std::size_t v = u + 1; v < n; v += 7) pairs.push_back({u, v});
    }
    return pairs;
  }

  static GeneratedAligned* generated_;
  static SocialGraph* train_graph_;
  static SlamPred* model_;
};

GeneratedAligned* FactoredArtifactTest::generated_ = nullptr;
SocialGraph* FactoredArtifactTest::train_graph_ = nullptr;
SlamPred* FactoredArtifactTest::model_ = nullptr;

TEST_F(FactoredArtifactTest, SnapshotCarriesTheFactorsNotADenseMatrix) {
  auto artifact = MakeModelArtifact(*model_);
  ASSERT_TRUE(artifact.ok()) << artifact.status().ToString();
  EXPECT_TRUE(artifact.value().has_low_rank);
  EXPECT_TRUE(artifact.value().s.empty());
  EXPECT_TRUE(artifact.value().low_rank == model_->FactoredScoreMatrix());
  EXPECT_GT(artifact.value().low_rank.rank(), 0u);
}

TEST_F(FactoredArtifactTest, RoundTripIsExactAndMarksTheBackend) {
  auto artifact = MakeModelArtifact(*model_);
  ASSERT_TRUE(artifact.ok());
  const std::string bytes = SerializeModelArtifact(artifact.value());
  auto back = DeserializeModelArtifact(bytes);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_TRUE(back.value().has_low_rank);
  EXPECT_TRUE(back.value().s.empty());
  // Factor matrices carry exact IEEE-754 patterns through the stream.
  EXPECT_TRUE(back.value().low_rank == model_->FactoredScoreMatrix());
  // The backend is inferred from which section is present, so a loaded
  // factored artifact always reports the factored solver.
  EXPECT_EQ(back.value().config.solver_backend, SolverBackend::kFactored);
  // Re-serializing the parsed artifact reproduces the original stream.
  EXPECT_EQ(SerializeModelArtifact(back.value()), bytes);
}

TEST_F(FactoredArtifactTest, ServedScoresBitIdenticalAcrossThreadCounts) {
  const std::string path = TempPath("factored_roundtrip.slpmodel");
  auto artifact = MakeModelArtifact(*model_);
  ASSERT_TRUE(artifact.ok());
  ASSERT_TRUE(SaveModelArtifact(artifact.value(), path).ok());

  const std::vector<UserPair> pairs = SamplePairs();
  auto expected = model_->ScorePairs(pairs);
  ASSERT_TRUE(expected.ok());
  const Matrix dense = model_->FactoredScoreMatrix().ToDense();

  const std::size_t original_threads = ThreadPool::Global().num_threads();
  for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                              std::size_t{7}}) {
    ThreadPool::Global().Resize(threads);
    auto session = ScoringSession::FromFile(path);
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    EXPECT_EQ(session.value().num_users(), model_->NumUsersFitted());
    auto served = session.value().ScorePairs(pairs);
    ASSERT_TRUE(served.ok());
    ASSERT_EQ(served.value().size(), expected.value().size());
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      // Bitwise equality against both the in-memory factored model and
      // the densified factors the session materialized at load.
      EXPECT_EQ(served.value()[i], expected.value()[i])
          << "pair " << i << " at " << threads << " thread(s)";
      EXPECT_EQ(served.value()[i], dense(pairs[i].u, pairs[i].v))
          << "pair " << i << " at " << threads << " thread(s)";
    }
  }
  ThreadPool::Global().Resize(original_threads);
  std::remove(path.c_str());
}

TEST_F(FactoredArtifactTest, DenseArtifactsStayDenseOnLoad) {
  // A dense-backend snapshot must not pick up the factored backend on
  // load: the inference keys off the low-rank section alone.
  SlamPredConfig config;
  config.optimization.inner.max_iterations = 10;
  config.optimization.max_outer_iterations = 1;
  SlamPred dense_model(config);
  ASSERT_TRUE(dense_model.Fit(generated_->networks, *train_graph_).ok());
  auto artifact = MakeModelArtifact(dense_model);
  ASSERT_TRUE(artifact.ok());
  EXPECT_FALSE(artifact.value().has_low_rank);
  auto back = DeserializeModelArtifact(SerializeModelArtifact(artifact.value()));
  ASSERT_TRUE(back.ok());
  EXPECT_FALSE(back.value().has_low_rank);
  EXPECT_EQ(back.value().config.solver_backend, SolverBackend::kDense);
  EXPECT_EQ(back.value().s, dense_model.ScoreMatrix());
}

}  // namespace
}  // namespace slampred
