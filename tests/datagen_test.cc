// Tests for the synthetic aligned-network generator (the dataset
// substitute — see DESIGN.md).

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "datagen/aligned_generator.h"
#include "datagen/attribute_generator.h"
#include "datagen/community_model.h"
#include "graph/social_graph.h"

namespace slampred {
namespace {

TEST(CommunityModelTest, RejectsDegenerateConfigs) {
  Rng rng(1);
  CommunityModelConfig config;
  config.num_personas = 0;
  EXPECT_FALSE(CommunityModel::Sample(config, rng).ok());
  config = CommunityModelConfig{};
  config.num_communities = 0;
  EXPECT_FALSE(CommunityModel::Sample(config, rng).ok());
  config = CommunityModelConfig{};
  config.num_personas = 3;
  config.num_communities = 5;
  EXPECT_FALSE(CommunityModel::Sample(config, rng).ok());
  config = CommunityModelConfig{};
  config.vocab_size = 0;
  EXPECT_FALSE(CommunityModel::Sample(config, rng).ok());
}

TEST(CommunityModelTest, ProfilesAreDistributions) {
  Rng rng(2);
  CommunityModelConfig config;
  config.num_personas = 40;
  auto model = CommunityModel::Sample(config, rng);
  ASSERT_TRUE(model.ok());
  for (std::size_t i = 0; i < model.value().num_personas(); ++i) {
    const Persona& p = model.value().persona(i);
    EXPECT_LT(p.community, config.num_communities);
    EXPECT_GT(p.activity, 0.0);
    double sum = 0.0;
    for (double w : p.topic) {
      EXPECT_GE(w, 0.0);
      sum += w;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(CommunityModelTest, EveryCommunityInhabited) {
  Rng rng(3);
  CommunityModelConfig config;
  config.num_personas = 60;
  config.num_communities = 6;
  auto model = CommunityModel::Sample(config, rng);
  ASSERT_TRUE(model.ok());
  const auto sizes = model.value().CommunitySizes();
  ASSERT_EQ(sizes.size(), 6u);
  std::size_t total = 0;
  for (std::size_t s : sizes) {
    EXPECT_GT(s, 0u);
    total += s;
  }
  EXPECT_EQ(total, 60u);
}

TEST(CommunityModelTest, SameCommunityProfilesAreCloser) {
  Rng rng(4);
  CommunityModelConfig config;
  config.num_personas = 80;
  config.num_communities = 4;
  auto model = CommunityModel::Sample(config, rng);
  ASSERT_TRUE(model.ok());

  auto l1 = [](const std::vector<double>& a, const std::vector<double>& b) {
    double sum = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) sum += std::fabs(a[i] - b[i]);
    return sum;
  };
  double same_total = 0.0;
  double diff_total = 0.0;
  std::size_t same_count = 0;
  std::size_t diff_count = 0;
  for (std::size_t i = 0; i < 80; ++i) {
    for (std::size_t j = i + 1; j < 80; ++j) {
      const double dist = l1(model.value().persona(i).topic,
                             model.value().persona(j).topic);
      if (model.value().SameCommunity(i, j)) {
        same_total += dist;
        ++same_count;
      } else {
        diff_total += dist;
        ++diff_count;
      }
    }
  }
  EXPECT_LT(same_total / same_count, diff_total / diff_count);
}

TEST(AttributeGeneratorTest, ProducesConsistentLayers) {
  Rng rng(5);
  CommunityModelConfig mc;
  mc.num_personas = 20;
  auto model = CommunityModel::Sample(mc, rng);
  ASSERT_TRUE(model.ok());

  HeterogeneousNetwork net("n");
  net.AddNodes(NodeType::kUser, 10);
  std::vector<std::size_t> personas;
  for (std::size_t i = 0; i < 10; ++i) personas.push_back(i);
  AttributeConfig config;
  config.posts_per_user_mean = 5.0;
  GenerateAttributes(model.value(), personas, config, rng, net);

  // Every post is written by exactly one user and carries a timestamp.
  const std::size_t posts = net.NumNodes(NodeType::kPost);
  EXPECT_GT(posts, 0u);
  EXPECT_EQ(net.NumEdges(EdgeType::kWrite), posts);
  EXPECT_EQ(net.NumEdges(EdgeType::kPostedAt), posts);
  // Word attachments exist and point into the vocabulary.
  EXPECT_GT(net.NumEdges(EdgeType::kHasWord), 0u);
  EXPECT_EQ(net.NumNodes(NodeType::kWord), mc.vocab_size);
}

TEST(AttributeGeneratorTest, CheckinProbabilityRespected) {
  Rng rng(6);
  CommunityModelConfig mc;
  mc.num_personas = 30;
  auto model = CommunityModel::Sample(mc, rng);
  ASSERT_TRUE(model.ok());
  HeterogeneousNetwork net("n");
  net.AddNodes(NodeType::kUser, 30);
  std::vector<std::size_t> personas;
  for (std::size_t i = 0; i < 30; ++i) personas.push_back(i);
  AttributeConfig config;
  config.posts_per_user_mean = 10.0;
  config.checkin_prob = 1.0;
  GenerateAttributes(model.value(), personas, config, rng, net);
  // With probability 1, every post has exactly one checkin.
  EXPECT_EQ(net.NumEdges(EdgeType::kCheckin),
            net.NumNodes(NodeType::kPost));
}

TEST(AlignedGeneratorTest, DeterministicGivenSeed) {
  auto a = GenerateAligned(DefaultExperimentConfig(99));
  auto b = GenerateAligned(DefaultExperimentConfig(99));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().networks.target().NumUsers(),
            b.value().networks.target().NumUsers());
  EXPECT_EQ(a.value().networks.target().NumEdges(EdgeType::kFriend),
            b.value().networks.target().NumEdges(EdgeType::kFriend));
  EXPECT_EQ(a.value().networks.anchors(0).size(),
            b.value().networks.anchors(0).size());
  EXPECT_EQ(a.value().personas_target, b.value().personas_target);
}

TEST(AlignedGeneratorTest, DifferentSeedsDiffer) {
  auto a = GenerateAligned(DefaultExperimentConfig(1));
  auto b = GenerateAligned(DefaultExperimentConfig(2));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a.value().networks.target().NumEdges(EdgeType::kFriend),
            b.value().networks.target().NumEdges(EdgeType::kFriend));
}

TEST(AlignedGeneratorTest, AnchorsPairSamePersona) {
  auto gen = GenerateAligned(DefaultExperimentConfig(7));
  ASSERT_TRUE(gen.ok());
  const auto& g = gen.value();
  for (const auto& [left, right] : g.networks.anchors(0).pairs()) {
    EXPECT_EQ(g.personas_target[left], g.personas_sources[0][right])
        << "anchor must connect accounts of the same persona";
  }
}

TEST(AlignedGeneratorTest, AnchorsCoverAllSharedPersonas) {
  auto gen = GenerateAligned(DefaultExperimentConfig(8));
  ASSERT_TRUE(gen.ok());
  const auto& g = gen.value();
  std::set<std::size_t> target_personas(g.personas_target.begin(),
                                        g.personas_target.end());
  std::size_t shared = 0;
  for (std::size_t p : g.personas_sources[0]) {
    if (target_personas.count(p) > 0) ++shared;
  }
  EXPECT_EQ(g.networks.anchors(0).size(), shared);
}

TEST(AlignedGeneratorTest, CommunityStructureShowsInGraph) {
  auto gen = GenerateAligned(DefaultExperimentConfig(9));
  ASSERT_TRUE(gen.ok());
  const auto& g = gen.value();
  const SocialGraph graph =
      SocialGraph::FromHeterogeneousNetwork(g.networks.target());

  std::size_t intra = 0;
  std::size_t inter = 0;
  for (const UserPair& e : graph.Edges()) {
    if (g.model.SameCommunity(g.personas_target[e.u],
                              g.personas_target[e.v])) {
      ++intra;
    } else {
      ++inter;
    }
  }
  // Intra-community links must dominate despite far more inter pairs.
  EXPECT_GT(intra, inter);
}

TEST(AlignedGeneratorTest, SourceDenserThanTarget) {
  auto gen = GenerateAligned(DefaultExperimentConfig(10));
  ASSERT_TRUE(gen.ok());
  const SocialGraph target = SocialGraph::FromHeterogeneousNetwork(
      gen.value().networks.target());
  const SocialGraph source = SocialGraph::FromHeterogeneousNetwork(
      gen.value().networks.source(0));
  EXPECT_GT(source.Density(), target.Density());
}

TEST(AlignedGeneratorTest, MultipleSources) {
  AlignedGeneratorConfig config = DefaultExperimentConfig(11);
  NetworkRealizationConfig extra = config.sources[0];
  extra.name = "extra-source";
  config.sources.push_back(extra);
  auto gen = GenerateAligned(config);
  ASSERT_TRUE(gen.ok());
  EXPECT_EQ(gen.value().networks.num_sources(), 2u);
  EXPECT_GT(gen.value().networks.anchors(1).size(), 0u);
}

}  // namespace
}  // namespace slampred
