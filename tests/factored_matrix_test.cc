// Tests for the factored low-rank matrix S = U·Vᵀ: every Gram-trick
// kernel against its dense reference, the factored spectrum against the
// dense SVD, serialization round-trips, and bit-identical results at 1,
// 2 and 7 threads.

#include <cmath>
#include <cstddef>
#include <cstdint>

#include <gtest/gtest.h>

#include "linalg/csr_matrix.h"
#include "linalg/factored_matrix.h"
#include "linalg/matrix.h"
#include "linalg/svd.h"
#include "util/binary_io.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace slampred {
namespace {

template <typename Check>
void ForEachThreadCount(Check check) {
  const std::size_t previous = ThreadPool::Global().num_threads();
  for (std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{7}}) {
    ThreadPool::Global().Resize(threads);
    check(threads);
  }
  ThreadPool::Global().Resize(previous);
}

FactoredMatrix RandomFactored(std::size_t rows, std::size_t cols,
                              std::size_t rank, std::uint64_t seed) {
  Rng rng(seed);
  return FactoredMatrix(Matrix::RandomGaussian(rows, rank, rng),
                        Matrix::RandomGaussian(cols, rank, rng));
}

// Odd sizes, larger than one parallel chunk.
constexpr std::size_t kRows = 37;
constexpr std::size_t kCols = 29;
constexpr std::size_t kRank = 5;

TEST(FactoredMatrixTest, AtAndToDenseAgree) {
  const FactoredMatrix s = RandomFactored(kRows, kCols, kRank, 11);
  const Matrix dense = s.ToDense();
  ASSERT_EQ(dense.rows(), kRows);
  ASSERT_EQ(dense.cols(), kCols);
  for (std::size_t i = 0; i < kRows; ++i) {
    for (std::size_t j = 0; j < kCols; ++j) {
      double expected = 0.0;
      for (std::size_t r = 0; r < kRank; ++r) {
        expected += s.u()(i, r) * s.v()(j, r);
      }
      EXPECT_NEAR(dense(i, j), expected, 1e-14);
      EXPECT_NEAR(s.At(i, j), expected, 1e-14);
    }
  }
}

TEST(FactoredMatrixTest, MismatchedFactorRanksAreRejected) {
  EXPECT_DEATH_IF_SUPPORTED(
      FactoredMatrix(Matrix(4, 3), Matrix(4, 2)), "");
}

TEST(FactoredMatrixTest, ZeroRepresentsTheExactZeroMatrix) {
  const FactoredMatrix z = FactoredMatrix::Zero(6, 4);
  EXPECT_EQ(z.rows(), 6u);
  EXPECT_EQ(z.cols(), 4u);
  EXPECT_EQ(z.rank(), 0u);
  EXPECT_EQ(z.FrobeniusNorm(), 0.0);
  const Matrix dense = z.ToDense();
  for (double v : dense.data()) EXPECT_EQ(v, 0.0);
}

TEST(FactoredMatrixTest, MultiplyDenseMatchesDenseProduct) {
  const FactoredMatrix s = RandomFactored(kRows, kCols, kRank, 12);
  Rng rng(13);
  const Matrix b = Matrix::RandomGaussian(kCols, 4, rng);
  const Matrix bt = Matrix::RandomGaussian(kRows, 4, rng);
  const Matrix via_factors = s.MultiplyDense(b);
  const Matrix via_dense = s.ToDense() * b;
  ASSERT_EQ(via_factors.rows(), via_dense.rows());
  for (std::size_t i = 0; i < via_dense.data().size(); ++i) {
    EXPECT_NEAR(via_factors.data()[i], via_dense.data()[i], 1e-12);
  }
  const Matrix t_factors = s.MultiplyTransposeDense(bt);
  const Matrix t_dense = s.ToDense().Transposed() * bt;
  for (std::size_t i = 0; i < t_dense.data().size(); ++i) {
    EXPECT_NEAR(t_factors.data()[i], t_dense.data()[i], 1e-12);
  }
}

TEST(FactoredMatrixTest, GramNormsMatchDense) {
  const FactoredMatrix a = RandomFactored(kRows, kCols, kRank, 21);
  const FactoredMatrix b = RandomFactored(kRows, kCols, kRank + 2, 22);
  const Matrix da = a.ToDense();
  const Matrix db = b.ToDense();

  EXPECT_NEAR(a.FrobeniusNorm(), da.FrobeniusNorm(), 1e-10);
  EXPECT_NEAR(a.DistanceFrobenius(b), (da - db).FrobeniusNorm(), 1e-9);
  EXPECT_NEAR(a.DistanceFrobenius(a), 0.0, 1e-9);

  double dense_inner = 0.0;
  for (std::size_t i = 0; i < da.data().size(); ++i) {
    dense_inner += da.data()[i] * db.data()[i];
  }
  EXPECT_NEAR(InnerProduct(a, b), dense_inner, 1e-9);

  double dense_l1 = 0.0;
  for (double v : da.data()) dense_l1 += std::abs(v);
  EXPECT_NEAR(a.NormL1(), dense_l1, 1e-9);
}

TEST(FactoredMatrixTest, InnerProductCsrMatchesStoredEntrySum) {
  const FactoredMatrix s = RandomFactored(kRows, kRows, kRank, 31);
  Rng rng(32);
  Matrix sparse(kRows, kRows);
  for (double& v : sparse.data()) {
    const double gauss = rng.NextGaussian();
    if (rng.NextDouble() < 0.15) v = gauss;
  }
  const CsrMatrix a = CsrMatrix::FromDense(sparse);
  const Matrix dense_s = s.ToDense();
  double expected = 0.0;
  for (std::size_t i = 0; i < kRows; ++i) {
    for (std::size_t j = 0; j < kRows; ++j) {
      expected += sparse(i, j) * dense_s(i, j);
    }
  }
  EXPECT_NEAR(s.InnerProductCsr(a), expected, 1e-9);
}

TEST(FactoredMatrixTest, ScaledAndSymmetrizedMatchDense) {
  const FactoredMatrix s = RandomFactored(kRows, kRows, kRank, 41);
  const Matrix dense = s.ToDense();

  const Matrix scaled = s.Scaled(-2.5).ToDense();
  for (std::size_t i = 0; i < dense.data().size(); ++i) {
    EXPECT_NEAR(scaled.data()[i], -2.5 * dense.data()[i], 1e-12);
  }

  const FactoredMatrix sym = s.Symmetrized();
  EXPECT_EQ(sym.rank(), 2 * kRank);  // Doubles; the prox re-truncates.
  const Matrix sym_dense = sym.ToDense();
  for (std::size_t i = 0; i < kRows; ++i) {
    for (std::size_t j = 0; j < kRows; ++j) {
      EXPECT_NEAR(sym_dense(i, j), 0.5 * (dense(i, j) + dense(j, i)),
                  1e-12);
    }
  }
}

TEST(FactoredMatrixTest, SingularValuesMatchDenseSvd) {
  const FactoredMatrix s = RandomFactored(kRows, kCols, kRank, 51);
  auto factored_sv = s.SingularValues();
  ASSERT_TRUE(factored_sv.ok()) << factored_sv.status().ToString();
  auto dense_svd = ComputeSvd(s.ToDense());
  ASSERT_TRUE(dense_svd.ok());
  // The dense SVD reports min(m, n) values; beyond rank() they are 0.
  ASSERT_EQ(factored_sv.value().size(), kRank);
  for (std::size_t i = 0; i < kRank; ++i) {
    EXPECT_NEAR(factored_sv.value()[i],
                dense_svd.value().singular_values[i], 1e-9)
        << "singular value " << i;
  }
  for (std::size_t i = kRank; i < dense_svd.value().singular_values.size();
       ++i) {
    EXPECT_NEAR(dense_svd.value().singular_values[i], 0.0, 1e-9);
  }
}

TEST(FactoredMatrixTest, SingularValuesWithRankAboveDimsFallBack) {
  // rank > rows: the thin-QR route is unavailable; the dense fallback
  // must still deliver the spectrum.
  const FactoredMatrix s = RandomFactored(4, 4, 7, 61);
  auto sv = s.SingularValues();
  ASSERT_TRUE(sv.ok()) << sv.status().ToString();
  auto dense_svd = ComputeSvd(s.ToDense());
  ASSERT_TRUE(dense_svd.ok());
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(sv.value()[i], dense_svd.value().singular_values[i], 1e-9);
  }
}

TEST(FactoredMatrixTest, SerializeRoundTripsBitExactly) {
  const FactoredMatrix s = RandomFactored(kRows, kCols, kRank, 71);
  BinaryWriter writer;
  s.Serialize(writer);
  BinaryReader reader(writer.buffer());
  auto parsed = FactoredMatrix::Deserialize(reader);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed.value() == s);
  EXPECT_EQ(parsed.value().u().data(), s.u().data());
  EXPECT_EQ(parsed.value().v().data(), s.v().data());
}

TEST(FactoredMatrixTest, DeserializeRejectsMismatchedFactorRanks) {
  BinaryWriter writer;
  Matrix(3, 2).Serialize(writer);
  Matrix(4, 5).Serialize(writer);  // 2 vs 5 factor columns.
  BinaryReader reader(writer.buffer());
  auto parsed = FactoredMatrix::Deserialize(reader);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kIoError);
}

TEST(FactoredMatrixTest, KernelsAreBitIdenticalAcrossThreadCounts) {
  const FactoredMatrix s = RandomFactored(61, 61, 6, 81);
  const FactoredMatrix other = RandomFactored(61, 61, 4, 82);
  Rng rng(83);
  Matrix sparse(61, 61);
  for (double& v : sparse.data()) {
    const double gauss = rng.NextGaussian();
    if (rng.NextDouble() < 0.2) v = gauss;
  }
  const CsrMatrix a = CsrMatrix::FromDense(sparse);

  ThreadPool::Global().Resize(1);
  const Matrix dense_ref = s.ToDense();
  const double frob_ref = s.FrobeniusNorm();
  const double dist_ref = s.DistanceFrobenius(other);
  const double inner_ref = s.InnerProductCsr(a);
  const double l1_ref = s.NormL1();

  ForEachThreadCount([&](std::size_t threads) {
    EXPECT_EQ(s.ToDense().data(), dense_ref.data())
        << threads << " threads";
    EXPECT_EQ(s.FrobeniusNorm(), frob_ref) << threads << " threads";
    EXPECT_EQ(s.DistanceFrobenius(other), dist_ref)
        << threads << " threads";
    EXPECT_EQ(s.InnerProductCsr(a), inner_ref) << threads << " threads";
    EXPECT_EQ(s.NormL1(), l1_ref) << threads << " threads";
  });
}

}  // namespace
}  // namespace slampred
