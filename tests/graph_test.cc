// Tests for the heterogeneous network, social graph, anchor links and
// aligned-network bundle.

#include <gtest/gtest.h>

#include "graph/aligned_networks.h"
#include "graph/anchor_links.h"
#include "graph/heterogeneous_network.h"
#include "graph/social_graph.h"
#include "util/random.h"

namespace slampred {
namespace {

TEST(NodeTypesTest, EdgeEndpointTypes) {
  EXPECT_EQ(EdgeSourceType(EdgeType::kFriend), NodeType::kUser);
  EXPECT_EQ(EdgeDestType(EdgeType::kFriend), NodeType::kUser);
  EXPECT_EQ(EdgeSourceType(EdgeType::kWrite), NodeType::kUser);
  EXPECT_EQ(EdgeDestType(EdgeType::kWrite), NodeType::kPost);
  EXPECT_EQ(EdgeSourceType(EdgeType::kHasWord), NodeType::kPost);
  EXPECT_EQ(EdgeDestType(EdgeType::kHasWord), NodeType::kWord);
  EXPECT_EQ(EdgeDestType(EdgeType::kPostedAt), NodeType::kTimestamp);
  EXPECT_EQ(EdgeDestType(EdgeType::kCheckin), NodeType::kLocation);
}

TEST(NodeTypesTest, Names) {
  EXPECT_STREQ(NodeTypeName(NodeType::kUser), "user");
  EXPECT_STREQ(EdgeTypeName(EdgeType::kCheckin), "checkin");
  EXPECT_EQ(NodeRefToString({NodeType::kPost, 17}), "post:17");
}

TEST(HeterogeneousNetworkTest, AddNodesReturnsFirstIndex) {
  HeterogeneousNetwork net("test");
  EXPECT_EQ(net.AddNodes(NodeType::kUser, 3), 0u);
  EXPECT_EQ(net.AddNodes(NodeType::kUser, 2), 3u);
  EXPECT_EQ(net.NumUsers(), 5u);
  EXPECT_EQ(net.NumNodes(NodeType::kPost), 0u);
}

TEST(HeterogeneousNetworkTest, FriendEdgesAreUndirected) {
  HeterogeneousNetwork net;
  net.AddNodes(NodeType::kUser, 3);
  ASSERT_TRUE(net.AddEdge(EdgeType::kFriend, 0, 1).ok());
  EXPECT_TRUE(net.HasEdge(EdgeType::kFriend, 0, 1));
  EXPECT_TRUE(net.HasEdge(EdgeType::kFriend, 1, 0));
  EXPECT_EQ(net.NumEdges(EdgeType::kFriend), 1u);
  // Duplicate is ignored.
  ASSERT_TRUE(net.AddEdge(EdgeType::kFriend, 1, 0).ok());
  EXPECT_EQ(net.NumEdges(EdgeType::kFriend), 1u);
}

TEST(HeterogeneousNetworkTest, SelfFriendLinkRejected) {
  HeterogeneousNetwork net;
  net.AddNodes(NodeType::kUser, 2);
  EXPECT_FALSE(net.AddEdge(EdgeType::kFriend, 1, 1).ok());
}

TEST(HeterogeneousNetworkTest, OutOfRangeEdgeRejected) {
  HeterogeneousNetwork net;
  net.AddNodes(NodeType::kUser, 2);
  EXPECT_FALSE(net.AddEdge(EdgeType::kFriend, 0, 5).ok());
  EXPECT_FALSE(net.AddEdge(EdgeType::kWrite, 0, 0).ok());  // No posts yet.
}

TEST(HeterogeneousNetworkTest, TypedEdgesAndNeighbors) {
  HeterogeneousNetwork net;
  net.AddNodes(NodeType::kUser, 2);
  net.AddNodes(NodeType::kPost, 2);
  net.AddNodes(NodeType::kWord, 3);
  ASSERT_TRUE(net.AddEdge(EdgeType::kWrite, 0, 0).ok());
  ASSERT_TRUE(net.AddEdge(EdgeType::kWrite, 0, 1).ok());
  ASSERT_TRUE(net.AddEdge(EdgeType::kHasWord, 0, 2).ok());
  EXPECT_EQ(net.Degree(EdgeType::kWrite, 0), 2u);
  EXPECT_EQ(net.Degree(EdgeType::kWrite, 1), 0u);
  EXPECT_EQ(net.Neighbors(EdgeType::kHasWord, 0),
            (std::vector<std::size_t>{2}));
}

TEST(HeterogeneousNetworkTest, ClearFriendEdgesKeepsOtherTypes) {
  HeterogeneousNetwork net;
  net.AddNodes(NodeType::kUser, 3);
  net.AddNodes(NodeType::kPost, 1);
  net.AddEdge(EdgeType::kFriend, 0, 1);
  net.AddEdge(EdgeType::kWrite, 2, 0);
  net.ClearFriendEdges();
  EXPECT_EQ(net.NumEdges(EdgeType::kFriend), 0u);
  EXPECT_FALSE(net.HasEdge(EdgeType::kFriend, 0, 1));
  EXPECT_EQ(net.NumEdges(EdgeType::kWrite), 1u);
}

TEST(HeterogeneousNetworkTest, SummaryMentionsCounts) {
  HeterogeneousNetwork net("n");
  net.AddNodes(NodeType::kUser, 4);
  const std::string summary = net.Summary();
  EXPECT_NE(summary.find("4 user"), std::string::npos);
}

TEST(SocialGraphTest, EdgeBasics) {
  SocialGraph g(4);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.Degree(1), 2u);
  EXPECT_FALSE(g.AddEdge(0, 0).ok());
  EXPECT_FALSE(g.AddEdge(0, 9).ok());
}

TEST(SocialGraphTest, DuplicateEdgeIgnored) {
  SocialGraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(SocialGraphTest, CommonNeighborsAndUnion) {
  SocialGraph g(5);
  g.AddEdge(0, 2);
  g.AddEdge(0, 3);
  g.AddEdge(1, 2);
  g.AddEdge(1, 3);
  g.AddEdge(1, 4);
  EXPECT_EQ(g.CommonNeighborCount(0, 1), 2u);
  EXPECT_EQ(g.NeighborUnionCount(0, 1), 3u);
  EXPECT_EQ(g.CommonNeighborCount(2, 4), 1u);  // Via user 1.
}

TEST(SocialGraphTest, AdjacencyMatrixSymmetricZeroDiagonal) {
  SocialGraph g(3);
  g.AddEdge(0, 1);
  const Matrix a = g.AdjacencyMatrix();
  EXPECT_DOUBLE_EQ(a(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(a(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(a(2, 2), 0.0);
  EXPECT_TRUE(a.IsSymmetric());
}

TEST(SocialGraphTest, EdgesListNormalised) {
  SocialGraph g(4);
  g.AddEdge(3, 1);
  g.AddEdge(0, 2);
  const auto edges = g.Edges();
  ASSERT_EQ(edges.size(), 2u);
  for (const UserPair& e : edges) EXPECT_LT(e.u, e.v);
}

TEST(SocialGraphTest, WithEdgesRemoved) {
  SocialGraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  const SocialGraph pruned = g.WithEdgesRemoved({{2, 1}});  // Reversed order.
  EXPECT_EQ(pruned.num_edges(), 2u);
  EXPECT_FALSE(pruned.HasEdge(1, 2));
  EXPECT_TRUE(pruned.HasEdge(0, 1));
  // Original untouched.
  EXPECT_TRUE(g.HasEdge(1, 2));
}

TEST(SocialGraphTest, DensityComputation) {
  SocialGraph g(4);  // 6 possible edges.
  g.AddEdge(0, 1);
  g.AddEdge(2, 3);
  EXPECT_NEAR(g.Density(), 2.0 / 6.0, 1e-12);
  EXPECT_DOUBLE_EQ(SocialGraph(1).Density(), 0.0);
}

TEST(SocialGraphTest, FromHeterogeneousNetwork) {
  HeterogeneousNetwork net;
  net.AddNodes(NodeType::kUser, 3);
  net.AddEdge(EdgeType::kFriend, 0, 2);
  const SocialGraph g = SocialGraph::FromHeterogeneousNetwork(net);
  EXPECT_EQ(g.num_users(), 3u);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.HasEdge(0, 2));
}

TEST(UserPairTest, MakeUserPairNormalises) {
  const UserPair p = MakeUserPair(5, 2);
  EXPECT_EQ(p.u, 2u);
  EXPECT_EQ(p.v, 5u);
  EXPECT_TRUE((UserPair{1, 2} < UserPair{1, 3}));
  EXPECT_TRUE((UserPair{1, 9} < UserPair{2, 0}));
}

TEST(AnchorLinksTest, OneToOneConstraint) {
  AnchorLinks anchors(3, 3);
  ASSERT_TRUE(anchors.Add(0, 1).ok());
  EXPECT_FALSE(anchors.Add(0, 2).ok());  // Left already anchored.
  EXPECT_FALSE(anchors.Add(2, 1).ok());  // Right already anchored.
  ASSERT_TRUE(anchors.Add(1, 0).ok());
  EXPECT_EQ(anchors.size(), 2u);
}

TEST(AnchorLinksTest, Lookups) {
  AnchorLinks anchors(3, 4);
  anchors.Add(1, 3);
  EXPECT_EQ(anchors.RightOf(1).value(), 3u);
  EXPECT_EQ(anchors.LeftOf(3).value(), 1u);
  EXPECT_FALSE(anchors.RightOf(0).has_value());
  EXPECT_FALSE(anchors.RightOf(99).has_value());
  EXPECT_TRUE(anchors.Contains(1, 3));
  EXPECT_FALSE(anchors.Contains(1, 2));
}

TEST(AnchorLinksTest, OutOfRangeRejected) {
  AnchorLinks anchors(2, 2);
  EXPECT_FALSE(anchors.Add(5, 0).ok());
  EXPECT_FALSE(anchors.Add(0, 5).ok());
}

TEST(AnchorLinksTest, SamplingKeepsRequestedFraction) {
  AnchorLinks anchors(10, 10);
  for (std::size_t i = 0; i < 10; ++i) anchors.Add(i, i);
  Rng rng(5);
  EXPECT_EQ(anchors.Sampled(0.0, rng).size(), 0u);
  EXPECT_EQ(anchors.Sampled(0.5, rng).size(), 5u);
  EXPECT_EQ(anchors.Sampled(1.0, rng).size(), 10u);
  EXPECT_EQ(anchors.Sampled(0.31, rng).size(), 4u);  // ceil(3.1).
  // Sampled links are a subset of the originals.
  const AnchorLinks half = anchors.Sampled(0.5, rng);
  for (const auto& [l, r] : half.pairs()) EXPECT_TRUE(anchors.Contains(l, r));
}

TEST(AlignedNetworksTest, BundleAccessors) {
  HeterogeneousNetwork target("t");
  target.AddNodes(NodeType::kUser, 3);
  HeterogeneousNetwork source("s");
  source.AddNodes(NodeType::kUser, 4);
  AnchorLinks anchors(3, 4);
  anchors.Add(0, 0);

  AlignedNetworks bundle(std::move(target));
  const std::size_t idx = bundle.AddSource(std::move(source),
                                           std::move(anchors));
  EXPECT_EQ(idx, 0u);
  EXPECT_EQ(bundle.num_sources(), 1u);
  EXPECT_EQ(bundle.target().NumUsers(), 3u);
  EXPECT_EQ(bundle.source(0).NumUsers(), 4u);
  EXPECT_EQ(bundle.anchors(0).size(), 1u);

  AnchorLinks fresh(3, 4);
  bundle.SetAnchors(0, std::move(fresh));
  EXPECT_EQ(bundle.anchors(0).size(), 0u);
}

}  // namespace
}  // namespace slampred
