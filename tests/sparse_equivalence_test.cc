// Dense ↔ sparse equivalence of the CSR data path: every sparse kernel,
// feature builder and objective evaluation must reproduce its dense
// reference BIT FOR BIT — not approximately — at 1, 2 and 7 threads.
// The sparse kernels earn this by keeping the dense kernels' chunk
// geometry and accumulation order and only skipping terms that are
// exact no-ops (adding 0.0 to a running sum that cannot be -0.0).

#include <cstddef>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/aligned_generator.h"
#include "features/attribute_features.h"
#include "features/feature_tensor.h"
#include "features/structural_features.h"
#include "graph/social_graph.h"
#include "linalg/csr_matrix.h"
#include "linalg/matrix.h"
#include "linalg/sparse_tensor3.h"
#include "linalg/tensor3.h"
#include "optim/cccp.h"
#include "optim/objective.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace slampred {
namespace {

// Runs `check` with the global pool pinned to 1, 2 and 7 threads, so
// every dense/sparse comparison below holds on the exact serial path
// and on two different parallel partitionings.
template <typename Check>
void ForEachThreadCount(Check check) {
  const std::size_t previous = ThreadPool::Global().num_threads();
  for (std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{7}}) {
    ThreadPool::Global().Resize(threads);
    check(threads);
  }
  ThreadPool::Global().Resize(previous);
}

void ExpectBitEqual(const Matrix& dense, const Matrix& sparse,
                    std::size_t threads) {
  ASSERT_EQ(dense.rows(), sparse.rows());
  ASSERT_EQ(dense.cols(), sparse.cols());
  for (std::size_t i = 0; i < dense.data().size(); ++i) {
    ASSERT_EQ(dense.data()[i], sparse.data()[i])
        << "flat index " << i << " at " << threads << " threads";
  }
}

// A matrix with ~`keep` density of Gaussian entries, exact zeros
// elsewhere — the regime the CSR kernels are built for.
Matrix SparseRandom(std::size_t rows, std::size_t cols, std::uint64_t seed,
                    double keep = 0.12) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (double& v : m.data()) {
    const double gauss = rng.NextGaussian();  // Keep streams aligned.
    if (rng.NextDouble() < keep) v = gauss;
  }
  return m;
}

SocialGraph TestGraph(std::size_t n, std::uint64_t seed = 18) {
  Rng rng(seed);
  SocialGraph g(n);
  while (g.num_edges() < n * 4) {
    g.AddEdge(rng.NextBounded(n), rng.NextBounded(n));
  }
  return g;
}

// Odd size, larger than one GrainForWork chunk.
constexpr std::size_t kN = 83;

TEST(SparseEquivalenceTest, CsrMultiplyMatchesDenseGemm) {
  const Matrix a = SparseRandom(kN, kN, 1);
  const Matrix b = SparseRandom(kN, kN, 2);
  const CsrMatrix ca = CsrMatrix::FromDense(a);
  const CsrMatrix cb = CsrMatrix::FromDense(b);
  ForEachThreadCount([&](std::size_t threads) {
    ExpectBitEqual(a * b, ca.MultiplySparse(cb).ToDense(), threads);
    ExpectBitEqual(a * b, ca.MultiplyDense(b), threads);
  });
}

TEST(SparseEquivalenceTest, CsrElementwiseOpsMatchDense) {
  const Matrix a = SparseRandom(kN, kN, 3);
  const Matrix b = SparseRandom(kN, kN, 4);
  const CsrMatrix ca = CsrMatrix::FromDense(a);
  const CsrMatrix cb = CsrMatrix::FromDense(b);
  Matrix sum = a;
  Matrix axpy = a;
  Matrix had(kN, kN);
  for (std::size_t i = 0; i < sum.data().size(); ++i) {
    sum.data()[i] += b.data()[i];
    axpy.data()[i] += 0.5 * b.data()[i];
    had.data()[i] = a.data()[i] * b.data()[i];
  }
  ForEachThreadCount([&](std::size_t threads) {
    ExpectBitEqual(sum, ca.Add(cb).ToDense(), threads);
    ExpectBitEqual(axpy, ca.AddScaled(cb, 0.5).ToDense(), threads);
    ExpectBitEqual(had, ca.Hadamard(cb).ToDense(), threads);
    ExpectBitEqual(a, CsrMatrix::FromDense(a).ToDense(), threads);
  });
}

TEST(SparseEquivalenceTest, StructuralBuildersMatchDense) {
  const SocialGraph g = TestGraph(120);
  ForEachThreadCount([&](std::size_t threads) {
    ExpectBitEqual(CommonNeighborsMap(g), CommonNeighborsCsr(g).ToDense(),
                   threads);
    ExpectBitEqual(JaccardMap(g), JaccardCsr(g).ToDense(), threads);
    ExpectBitEqual(AdamicAdarMap(g), AdamicAdarCsr(g).ToDense(), threads);
    ExpectBitEqual(ResourceAllocationMap(g),
                   ResourceAllocationCsr(g).ToDense(), threads);
    ExpectBitEqual(PreferentialAttachmentMap(g),
                   PreferentialAttachmentCsr(g).ToDense(), threads);
    ExpectBitEqual(TruncatedKatzMap(g), TruncatedKatzCsr(g).ToDense(),
                   threads);
  });
}

TEST(SparseEquivalenceTest, AttributeBuildersMatchDense) {
  AlignedGeneratorConfig config = DefaultExperimentConfig(43);
  config.population.num_personas = 70;
  auto gen = GenerateAligned(config);
  ASSERT_TRUE(gen.ok()) << gen.status().ToString();
  const HeterogeneousNetwork& network = gen.value().networks.target();
  for (AttributeKind kind :
       {AttributeKind::kWord, AttributeKind::kLocation,
        AttributeKind::kTimestamp}) {
    const Matrix profile = UserAttributeProfile(network, kind);
    const CsrMatrix profile_csr = UserAttributeProfileCsr(network, kind);
    ForEachThreadCount([&](std::size_t threads) {
      ExpectBitEqual(profile, profile_csr.ToDense(), threads);
      ExpectBitEqual(CosineSimilarityMap(profile),
                     CosineSimilarityCsr(profile_csr).ToDense(), threads);
      ExpectBitEqual(AttributeSimilarityMap(network, kind),
                     AttributeSimilarityCsr(network, kind).ToDense(),
                     threads);
    });
  }
}

TEST(SparseEquivalenceTest, TensorOpsMatchDense) {
  // Mixed-sign slices: slice 0 non-negative with implicit zeros (the
  // feature-map shape), slice 1 with negatives (normalisation densify
  // fallback), slice 2 all zeros (empty CSR).
  Tensor3 t(3, kN, kN);
  Rng rng(7);
  for (std::size_t i = 0; i < kN; ++i) {
    for (std::size_t j = 0; j < kN; ++j) {
      if (rng.NextDouble() < 0.2) {
        t(0, i, j) = rng.NextDouble();
        t(1, i, j) = rng.NextGaussian();
      }
    }
  }
  const SparseTensor3 sparse = SparseTensor3::FromDense(t);
  ExpectBitEqual(t.SumSlices(), sparse.SumSlices(), 0);

  Tensor3 dense_normalized = t;
  dense_normalized.NormalizeSlicesMinMax();
  ForEachThreadCount([&](std::size_t threads) {
    ExpectBitEqual(t.SumSlices(), sparse.SumSlices(), threads);
    SparseTensor3 normalized = sparse;
    normalized.NormalizeSlicesMinMax();
    for (std::size_t c = 0; c < t.dim0(); ++c) {
      ExpectBitEqual(dense_normalized.Slice(c), normalized.Slice(c),
                     threads);
    }
  });
}

TEST(SparseEquivalenceTest, FeatureTensorMatchesDense) {
  AlignedGeneratorConfig config = DefaultExperimentConfig(41);
  config.population.num_personas = 70;
  auto gen = GenerateAligned(config);
  ASSERT_TRUE(gen.ok()) << gen.status().ToString();
  const HeterogeneousNetwork& network = gen.value().networks.target();
  const SocialGraph structure =
      SocialGraph::FromHeterogeneousNetwork(network);
  ForEachThreadCount([&](std::size_t threads) {
    const Tensor3 dense =
        BuildFeatureTensor(network, structure, FeatureTensorOptions{});
    const SparseTensor3 sparse =
        BuildSparseFeatureTensor(network, structure, FeatureTensorOptions{});
    ASSERT_EQ(dense.dim0(), sparse.dim0());
    const Tensor3 round_trip = sparse.ToDense();
    ASSERT_EQ(dense.data().size(), round_trip.data().size());
    for (std::size_t i = 0; i < dense.data().size(); ++i) {
      ASSERT_EQ(dense.data()[i], round_trip.data()[i])
          << "flat index " << i << " at " << threads << " threads";
    }
  });
}

TEST(SparseEquivalenceTest, ObjectiveMatchesDense) {
  Objective objective;
  objective.a = CsrMatrix::FromDense(SparseRandom(kN, kN, 14, 0.1));
  objective.gamma = 0.3;
  objective.tau = 1.0;
  const Matrix s = SparseRandom(kN, kN, 16, 0.5);

  Tensor3 t(3, kN, kN);
  Rng rng(17);
  for (double& v : t.data()) {
    const double gauss = rng.NextGaussian();
    if (rng.NextDouble() < 0.15) v = gauss;
  }
  const std::vector<Tensor3> dense_tensors = {t};
  const std::vector<SparseTensor3> sparse_tensors = {
      SparseTensor3::FromDense(t)};
  const std::vector<double> weights = {0.7};
  objective.grad_v = BuildIntimacyGradient(dense_tensors, weights, kN);

  ForEachThreadCount([&](std::size_t threads) {
    ExpectBitEqual(BuildIntimacyGradient(dense_tensors, weights, kN),
                   BuildIntimacyGradient(sparse_tensors, weights, kN),
                   threads);
    for (LossKind loss :
         {LossKind::kSquaredFrobenius, LossKind::kSquaredHinge}) {
      objective.loss = loss;
      ASSERT_EQ(FullObjectiveValue(objective, s, dense_tensors, weights),
                FullObjectiveValue(objective, s, sparse_tensors, weights))
          << "at " << threads << " threads";
    }
  });
}

TEST(SparseEquivalenceTest, PredictorMatchesDenseObjective) {
  // End to end through the solver: an objective assembled from sparse
  // tensors must yield the same predictor S (hence identical metrics)
  // as one assembled from their densified twins.
  const SocialGraph g = TestGraph(60, 23);
  Tensor3 t(2, 60, 60);
  t.SetSlice(0, CommonNeighborsMap(g));
  t.SetSlice(1, JaccardMap(g));
  t.NormalizeSlicesMinMax();
  const std::vector<double> weights = {0.5};

  CccpOptions options;
  options.max_outer_iterations = 2;
  options.inner.max_iterations = 20;

  Objective dense_objective;
  dense_objective.a = g.AdjacencyCsr();
  dense_objective.grad_v =
      BuildIntimacyGradient(std::vector<Tensor3>{t}, weights, 60);
  dense_objective.gamma = 0.3;
  dense_objective.tau = 1.0;

  Objective sparse_objective = dense_objective;
  sparse_objective.grad_v = BuildIntimacyGradient(
      std::vector<SparseTensor3>{SparseTensor3::FromDense(t)}, weights, 60);

  ForEachThreadCount([&](std::size_t threads) {
    auto dense_s = SolveCccp(dense_objective, options, nullptr);
    auto sparse_s = SolveCccp(sparse_objective, options, nullptr);
    ASSERT_TRUE(dense_s.ok());
    ASSERT_TRUE(sparse_s.ok());
    ExpectBitEqual(dense_s.value(), sparse_s.value(), threads);
  });
}

}  // namespace
}  // namespace slampred
