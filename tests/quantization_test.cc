// Property-based bounded-error harness for the quantized score storage
// (DESIGN.md §15). Every quantized-serving claim the CLI and bench legs
// make is gated here:
//
//   * per-element round-trip error of quant→dequant is bounded by half
//     a row scale (plus floating-point slack orders of magnitude below
//     one code step) for u8 and u16, across uniform, power-law,
//     constant, all-negative and all-zero rows;
//   * re-quantizing a dequantized matrix reproduces the identical codes
//     and offsets, and is fully idempotent (codes, offsets AND scales
//     bit-equal) on a representable grid;
//   * NaN / ±inf input is rejected with a Status, never encoded;
//   * quantization is bit-identical at 1, 2 and 7 threads;
//   * Serialize/Deserialize round-trips bit-exactly, and a corrupt
//     scale or offset vector is rejected — never mis-dequantized.
//
// The symmetric variants (QuantizedSymmetricDense shard blocks and the
// QuantizedSymmetricCsr boundary) additionally guarantee bitwise
// symmetry At(i, j) == At(j, i) and reject asymmetric input.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "linalg/csr_matrix.h"
#include "linalg/matrix.h"
#include "linalg/quantized_matrix.h"
#include "util/binary_io.h"
#include "util/thread_pool.h"

namespace slampred {
namespace {

// SplitMix64 — deterministic and platform-stable, so every property
// here checks the same matrices on every machine.
std::uint64_t NextRandom(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

double UniformDouble(std::uint64_t& state) {
  return static_cast<double>(NextRandom(state) >> 11) * 0x1.0p-53;
}

// A matrix mixing every row shape the serving payloads produce:
// uniform rows in [-5, 5), heavy-tailed power-law rows, an
// all-negative row, a constant row and an all-zero (empty) row.
Matrix MixedMatrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Matrix m(rows, cols);
  std::uint64_t state = seed;
  for (std::size_t i = 0; i < rows; ++i) {
    const std::size_t kind = i % 5;
    for (std::size_t j = 0; j < cols; ++j) {
      const double u = UniformDouble(state);
      switch (kind) {
        case 0:  // Uniform.
          m(i, j) = -5.0 + 10.0 * u;
          break;
        case 1:  // Power-law: most mass near 0, a heavy right tail.
          m(i, j) = 10.0 * u * u * u * u;
          break;
        case 2:  // All-negative.
          m(i, j) = -3.0 + 2.0 * u;
          break;
        case 3:  // Constant row.
          m(i, j) = 1.25;
          break;
        default:  // Empty (all-zero) row.
          m(i, j) = 0.0;
          break;
      }
    }
  }
  return m;
}

// Symmetric variant of MixedMatrix (upper triangle mirrored down).
Matrix SymmetricMixedMatrix(std::size_t n, std::uint64_t seed) {
  Matrix m = MixedMatrix(n, n, seed);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) m(j, i) = m(i, j);
  }
  return m;
}

// The bounded-error contract: |original − dequantized| per element is
// at most half a code step, plus floating-point slack far below a step
// (relative error of the scaled subtraction and reconstruction).
void ExpectRoundTripBounded(const Matrix& m, const QuantizedMatrix& q) {
  ASSERT_EQ(q.rows(), m.rows());
  ASSERT_EQ(q.cols(), m.cols());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const double scale = q.scales()[i];
    const double range =
        scale * static_cast<double>(QuantizationLevels(q.bits()));
    const double bound =
        0.5 * scale + 1e-9 * range + 1e-12 * (std::fabs(q.offsets()[i]) + 1.0);
    for (std::size_t j = 0; j < m.cols(); ++j) {
      EXPECT_LE(std::fabs(m(i, j) - q.At(i, j)), bound)
          << "(" << i << ", " << j << ") original " << m(i, j)
          << " dequantized " << q.At(i, j) << " scale " << scale;
    }
  }
}

TEST(QuantizationTest, RoundTripErrorBoundedU8) {
  for (std::uint64_t seed : {1ull, 7ull, 1234567ull}) {
    const Matrix m = MixedMatrix(15, 33, seed);
    auto q = QuantizedMatrix::FromMatrix(m, QuantizationBits::kU8);
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    ExpectRoundTripBounded(m, q.value());
  }
}

TEST(QuantizationTest, RoundTripErrorBoundedU16) {
  for (std::uint64_t seed : {2ull, 99ull, 424242ull}) {
    const Matrix m = MixedMatrix(15, 33, seed);
    auto q = QuantizedMatrix::FromMatrix(m, QuantizationBits::kU16);
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    ExpectRoundTripBounded(m, q.value());
    // u16 steps are 257x finer than u8 on the same rows.
    auto q8 = QuantizedMatrix::FromMatrix(m, QuantizationBits::kU8);
    ASSERT_TRUE(q8.ok());
    for (std::size_t i = 0; i < m.rows(); ++i) {
      EXPECT_LE(q.value().scales()[i] * 250.0, q8.value().scales()[i] + 1e-300);
    }
  }
}

TEST(QuantizationTest, ConstantAndZeroRowsRoundTripExactly) {
  const Matrix m = MixedMatrix(10, 16, 5);
  for (QuantizationBits bits :
       {QuantizationBits::kU8, QuantizationBits::kU16}) {
    auto q = QuantizedMatrix::FromMatrix(m, bits);
    ASSERT_TRUE(q.ok());
    for (std::size_t i = 3; i < 10; i += 5) {  // Constant rows (kind 3).
      EXPECT_EQ(q.value().scales()[i], 0.0);
      for (std::size_t j = 0; j < 16; ++j) EXPECT_EQ(q.value().At(i, j), 1.25);
    }
    for (std::size_t i = 4; i < 10; i += 5) {  // All-zero rows (kind 4).
      EXPECT_EQ(q.value().scales()[i], 0.0);
      for (std::size_t j = 0; j < 16; ++j) EXPECT_EQ(q.value().At(i, j), 0.0);
    }
  }
}

TEST(QuantizationTest, EmptyMatrixRoundTrips) {
  auto q = QuantizedMatrix::FromMatrix(Matrix(), QuantizationBits::kU8);
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q.value().empty());
  EXPECT_TRUE(q.value().Validate().ok());
}

TEST(QuantizationTest, RejectsNaN) {
  Matrix m = MixedMatrix(4, 4, 11);
  m(2, 1) = std::numeric_limits<double>::quiet_NaN();
  const auto q = QuantizedMatrix::FromMatrix(m, QuantizationBits::kU8);
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(q.status().message().find("row 2"), std::string::npos);
}

TEST(QuantizationTest, RejectsInfinity) {
  for (double bad : {std::numeric_limits<double>::infinity(),
                     -std::numeric_limits<double>::infinity()}) {
    Matrix m = MixedMatrix(4, 4, 13);
    m(0, 3) = bad;
    const auto q = QuantizedMatrix::FromMatrix(m, QuantizationBits::kU16);
    ASSERT_FALSE(q.ok());
    EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(QuantizationTest, RequantizationReproducesCodesExactly) {
  // Quantizing the dequantized matrix lands every value back on its
  // own code: codes and offsets are reproduced bit-for-bit (scales can
  // legitimately differ by an ulp when the row range is not exactly
  // representable, which the grid test below pins down).
  for (QuantizationBits bits :
       {QuantizationBits::kU8, QuantizationBits::kU16}) {
    const Matrix m = MixedMatrix(15, 21, 17);
    auto q = QuantizedMatrix::FromMatrix(m, bits);
    ASSERT_TRUE(q.ok());
    auto q2 = QuantizedMatrix::FromMatrix(q.value().ToDense(), bits);
    ASSERT_TRUE(q2.ok());
    EXPECT_EQ(q2.value().offsets(), q.value().offsets());
    for (std::size_t i = 0; i < m.rows(); ++i) {
      for (std::size_t j = 0; j < m.cols(); ++j) {
        ASSERT_EQ(q2.value().CodeAt(i, j), q.value().CodeAt(i, j))
            << "(" << i << ", " << j << ")";
      }
    }
  }
}

TEST(QuantizationTest, RequantizationIsIdempotentOnRepresentableGrid) {
  // Rows whose scale is a power of two and whose range spans the full
  // code book are exactly representable end to end: quantizing the
  // dequantized matrix is a bit-exact fixed point (codes, offsets AND
  // scales), and the first round trip is already lossless.
  const double scale = 0x1.0p-6;
  std::uint64_t state = 23;
  Matrix m(6, 12);
  for (std::size_t i = 0; i < 6; ++i) {
    m(i, 0) = 0.5;                  // Code 0 — the row offset.
    m(i, 1) = 0.5 + 255.0 * scale;  // Code 255 — pins the range.
    for (std::size_t j = 2; j < 12; ++j) {
      m(i, j) = 0.5 + static_cast<double>(NextRandom(state) % 256) * scale;
    }
  }
  auto q = QuantizedMatrix::FromMatrix(m, QuantizationBits::kU8);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().ToDense(), m);  // Lossless on the grid.
  auto q2 = QuantizedMatrix::FromMatrix(q.value().ToDense(),
                                        QuantizationBits::kU8);
  ASSERT_TRUE(q2.ok());
  EXPECT_TRUE(q2.value() == q.value());
}

TEST(QuantizationTest, BitIdenticalAcrossThreadCounts) {
  const Matrix m = MixedMatrix(40, 64, 29);
  ThreadPool& pool = ThreadPool::Global();
  const std::size_t restore = pool.num_threads();
  std::vector<QuantizedMatrix> results;
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{7}}) {
    pool.Resize(threads);
    auto q = QuantizedMatrix::FromMatrix(m, QuantizationBits::kU16);
    ASSERT_TRUE(q.ok());
    results.push_back(std::move(q).value());
  }
  pool.Resize(restore);
  EXPECT_TRUE(results[1] == results[0]);
  EXPECT_TRUE(results[2] == results[0]);
}

TEST(QuantizationTest, SerializeRoundTripsBitExact) {
  for (QuantizationBits bits :
       {QuantizationBits::kU8, QuantizationBits::kU16}) {
    const Matrix m = MixedMatrix(9, 14, 31);
    auto q = QuantizedMatrix::FromMatrix(m, bits);
    ASSERT_TRUE(q.ok());
    BinaryWriter writer;
    q.value().Serialize(writer);
    BinaryReader reader(writer.buffer());
    auto back = QuantizedMatrix::Deserialize(reader);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_TRUE(back.value() == q.value());
    EXPECT_TRUE(reader.AtEnd());
    // Re-serializing the loaded matrix reproduces the exact bytes.
    BinaryWriter again;
    back.value().Serialize(again);
    EXPECT_EQ(again.buffer(), writer.buffer());
  }
}

TEST(QuantizationTest, CorruptScaleIsRejectedNotMisdequantized) {
  const Matrix m = MixedMatrix(5, 8, 37);
  auto q = QuantizedMatrix::FromMatrix(m, QuantizationBits::kU8);
  ASSERT_TRUE(q.ok());
  BinaryWriter writer;
  q.value().Serialize(writer);
  // Scales start after bits (1) + rows (8) + cols (8) + offsets (5·8).
  const std::size_t scale_offset = 1 + 8 + 8 + 5 * 8;
  for (double bad : {-1.0, std::numeric_limits<double>::quiet_NaN(),
                     std::numeric_limits<double>::infinity()}) {
    std::string bytes = writer.buffer();
    std::memcpy(&bytes[scale_offset], &bad, sizeof(double));
    BinaryReader reader(bytes);
    const auto result = QuantizedMatrix::Deserialize(reader);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kIoError);
    EXPECT_NE(result.status().message().find("scale"), std::string::npos);
  }
  // A corrupt offset is equally fatal.
  std::string bytes = writer.buffer();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::memcpy(&bytes[1 + 8 + 8], &nan, sizeof(double));
  BinaryReader reader(bytes);
  EXPECT_FALSE(QuantizedMatrix::Deserialize(reader).ok());
}

TEST(QuantizationTest, TruncatedStreamsAreRejected) {
  const Matrix m = MixedMatrix(5, 5, 41);
  auto q = QuantizedMatrix::FromMatrix(m, QuantizationBits::kU16);
  ASSERT_TRUE(q.ok());
  BinaryWriter writer;
  q.value().Serialize(writer);
  const std::string& bytes = writer.buffer();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    BinaryReader reader(bytes.substr(0, len));
    const auto result = QuantizedMatrix::Deserialize(reader);
    ASSERT_FALSE(result.ok()) << "prefix of " << len << " bytes parsed";
  }
}

TEST(QuantizationTest, SymmetricBlockRoundTripBoundedAndBitwiseSymmetric) {
  const Matrix m = SymmetricMixedMatrix(12, 43);
  for (QuantizationBits bits :
       {QuantizationBits::kU8, QuantizationBits::kU16}) {
    auto q = QuantizedSymmetricDense::FromMatrix(m, bits);
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    for (std::size_t i = 0; i < 12; ++i) {
      // Row i's parameters cover the canonical segment j >= i.
      const double scale = q.value().scales()[i];
      const double range =
          scale * static_cast<double>(QuantizationLevels(bits));
      const double bound = 0.5 * scale + 1e-9 * range +
                           1e-12 * (std::fabs(q.value().offsets()[i]) + 1.0);
      for (std::size_t j = i; j < 12; ++j) {
        EXPECT_LE(std::fabs(m(i, j) - q.value().At(i, j)), bound);
      }
      for (std::size_t j = 0; j < 12; ++j) {
        EXPECT_EQ(q.value().At(i, j), q.value().At(j, i));
      }
    }
  }
}

TEST(QuantizationTest, SymmetricBlockRejectsAsymmetry) {
  Matrix m = SymmetricMixedMatrix(6, 47);
  m(1, 4) += 0.5;  // Break symmetry well beyond ulp noise.
  const auto q = QuantizedSymmetricDense::FromMatrix(m, QuantizationBits::kU8);
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(q.status().message().find("not symmetric"), std::string::npos);
}

TEST(QuantizationTest, SymmetricBlockSerializeRoundTrip) {
  const Matrix m = SymmetricMixedMatrix(9, 53);
  auto q = QuantizedSymmetricDense::FromMatrix(m, QuantizationBits::kU16);
  ASSERT_TRUE(q.ok());
  BinaryWriter writer;
  q.value().Serialize(writer);
  BinaryReader reader(writer.buffer());
  auto back = QuantizedSymmetricDense::Deserialize(reader);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(back.value() == q.value());
  EXPECT_TRUE(reader.AtEnd());
}

// A symmetric sparse matrix with cross-pattern entries (deterministic).
CsrMatrix SymmetricSparse(std::size_t n, std::uint64_t seed) {
  Matrix dense(n, n);
  std::uint64_t state = seed;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (NextRandom(state) % 4 == 0) {
        const double v = -2.0 + 4.0 * UniformDouble(state);
        dense(i, j) = v;
        dense(j, i) = v;
      }
    }
  }
  return CsrMatrix::FromDense(dense);
}

TEST(QuantizationTest, SymmetricCsrRoundTripBoundedAndBitwiseSymmetric) {
  const CsrMatrix csr = SymmetricSparse(20, 59);
  const Matrix dense = csr.ToDense();
  for (QuantizationBits bits :
       {QuantizationBits::kU8, QuantizationBits::kU16}) {
    auto q = QuantizedSymmetricCsr::FromCsr(csr, bits);
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    EXPECT_EQ(q.value().nnz(), csr.nnz());
    for (std::size_t u = 0; u < 20; ++u) {
      for (std::size_t v = 0; v < 20; ++v) {
        EXPECT_EQ(q.value().At(u, v), q.value().At(v, u));
        if (dense(u, v) == 0.0) continue;
        const std::size_t basis = std::min(u, v);
        const double scale = q.value().scales()[basis];
        const double range =
            scale * static_cast<double>(QuantizationLevels(bits));
        const double bound =
            0.5 * scale + 1e-9 * range +
            1e-12 * (std::fabs(q.value().offsets()[basis]) + 1.0);
        EXPECT_LE(std::fabs(dense(u, v) - q.value().At(u, v)), bound);
      }
    }
  }
}

TEST(QuantizationTest, SymmetricCsrRejectsAsymmetricValues) {
  Matrix dense(4, 4);
  dense(0, 2) = 1.0;
  dense(2, 0) = 1.0 + 1e-3;  // Pattern symmetric, values not.
  const auto q = QuantizedSymmetricCsr::FromCsr(CsrMatrix::FromDense(dense),
                                                QuantizationBits::kU8);
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument);
}

TEST(QuantizationTest, SymmetricCsrSerializeRoundTripAndCorruptScale) {
  const CsrMatrix csr = SymmetricSparse(14, 61);
  auto q = QuantizedSymmetricCsr::FromCsr(csr, QuantizationBits::kU8);
  ASSERT_TRUE(q.ok());
  BinaryWriter writer;
  q.value().Serialize(writer);
  BinaryReader reader(writer.buffer());
  auto back = QuantizedSymmetricCsr::Deserialize(reader);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(back.value() == q.value());
  EXPECT_TRUE(reader.AtEnd());

  // Scales start after bits (1) + rows (8) + upper nnz (8) + offsets.
  std::string bytes = writer.buffer();
  const double bad = -0.25;
  std::memcpy(&bytes[1 + 8 + 8 + 14 * 8], &bad, sizeof(double));
  BinaryReader corrupt(bytes);
  const auto result = QuantizedSymmetricCsr::Deserialize(corrupt);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("scale"), std::string::npos);
}

}  // namespace
}  // namespace slampred
