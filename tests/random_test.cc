#include "util/random.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace slampred {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextBoundedCoversAllValues) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(13);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    if (v == -3) saw_lo = true;
    if (v == 3) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(17);
  const int n = 40000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliFrequencyMatchesP) {
  Rng rng(19);
  const int n = 20000;
  int hits = 0;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, PoissonMeanMatchesLambda) {
  Rng rng(23);
  for (double lambda : {0.5, 3.0, 50.0}) {
    const int n = 20000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) sum += rng.NextPoisson(lambda);
    EXPECT_NEAR(sum / n, lambda, std::max(0.1, lambda * 0.05))
        << "lambda=" << lambda;
  }
}

TEST(RngTest, PoissonZeroLambdaIsZero) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextPoisson(0.0), 0);
}

TEST(RngTest, GeometricMeanMatches) {
  Rng rng(31);
  const double p = 0.25;
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.NextGeometric(p);
  // Mean of failures-before-success geometric is (1-p)/p = 3.
  EXPECT_NEAR(sum / n, 3.0, 0.2);
}

TEST(RngTest, WeightedRespectsWeights) {
  Rng rng(37);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextWeighted(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(41);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = items;
  rng.Shuffle(items);
  std::sort(items.begin(), items.end());
  EXPECT_EQ(items, orig);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(43);
  const auto sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (std::size_t v : sample) EXPECT_LT(v, 100u);
}

TEST(RngTest, SampleWithoutReplacementFullSet) {
  Rng rng(47);
  const auto sample = rng.SampleWithoutReplacement(10, 10);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, ForkedStreamsAreDecorrelated) {
  Rng parent(51);
  Rng childA = parent.Fork(1);
  Rng childB = parent.Fork(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (childA.NextUint64() == childB.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

// Property sweep: bounded draws respect any bound.
class RngBoundParamTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngBoundParamTest, BoundedAlwaysBelowBound) {
  Rng rng(GetParam() * 7 + 1);
  const std::uint64_t bound = GetParam();
  for (int i = 0; i < 2000; ++i) {
    EXPECT_LT(rng.NextBounded(bound), bound);
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBoundParamTest,
                         ::testing::Values(1, 2, 3, 7, 16, 100, 1000,
                                           1ULL << 40));

}  // namespace
}  // namespace slampred
