// Tests for the extra unsupervised predictors (AA, RA, Katz).

#include <cmath>

#include <gtest/gtest.h>

#include "baselines/neighborhood_extra.h"

namespace slampred {
namespace {

// Triangle 0-1-2 plus 1-3, 2-3; node 4 isolated.
SocialGraph Fixture() {
  SocialGraph g(5);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(1, 2);
  g.AddEdge(1, 3);
  g.AddEdge(2, 3);
  return g;
}

TEST(NeighborhoodExtraTest, AdamicAdarScores) {
  AaPredictor aa(Fixture());
  auto scores = aa.ScorePairs({{0, 3}, {0, 4}});
  ASSERT_TRUE(scores.ok());
  EXPECT_NEAR(scores.value()[0], 2.0 / std::log(3.0), 1e-12);
  EXPECT_DOUBLE_EQ(scores.value()[1], 0.0);
  EXPECT_EQ(aa.name(), "AA");
}

TEST(NeighborhoodExtraTest, ResourceAllocationScores) {
  RaPredictor ra(Fixture());
  auto scores = ra.ScorePairs({{0, 3}});
  ASSERT_TRUE(scores.ok());
  EXPECT_NEAR(scores.value()[0], 2.0 / 3.0, 1e-12);
  EXPECT_EQ(ra.name(), "RA");
}

TEST(NeighborhoodExtraTest, KatzScores) {
  KatzPredictor katz(Fixture(), 0.1);
  auto scores = katz.ScorePairs({{0, 3}});
  ASSERT_TRUE(scores.ok());
  EXPECT_NEAR(scores.value()[0], 0.22, 1e-12);  // 0.1·2 + 0.01·2.
  EXPECT_EQ(katz.name(), "KATZ");
}

TEST(NeighborhoodExtraTest, OutOfRangePairRejected) {
  AaPredictor aa(Fixture());
  EXPECT_FALSE(aa.ScorePairs({{0, 99}}).ok());
  RaPredictor ra(Fixture());
  EXPECT_FALSE(ra.ScorePairs({{99, 0}}).ok());
}

TEST(NeighborhoodExtraTest, RankingAgreesWithIntuition) {
  // (0,3) shares two neighbors; (0,4) shares none — every predictor must
  // rank (0,3) above (0,4).
  const SocialGraph g = Fixture();
  for (const LinkPredictor* model :
       std::initializer_list<const LinkPredictor*>{
           new AaPredictor(g), new RaPredictor(g), new KatzPredictor(g)}) {
    auto scores = model->ScorePairs({{0, 3}, {0, 4}});
    ASSERT_TRUE(scores.ok()) << model->name();
    EXPECT_GT(scores.value()[0], scores.value()[1]) << model->name();
    delete model;
  }
}

}  // namespace
}  // namespace slampred
