// Tests for the domain-adaptation pipeline: instance sampling, indicator
// matrices, Laplacians, the Theorem-1 solver and the adapter.

#include <gtest/gtest.h>

#include "datagen/aligned_generator.h"
#include "embedding/domain_adapter.h"
#include "embedding/indicator_matrices.h"
#include "embedding/laplacian.h"
#include "embedding/link_instance.h"
#include "embedding/projection_solver.h"
#include "features/feature_tensor.h"

namespace slampred {
namespace {

// Shared small generated bundle for the pipeline tests.
class EmbeddingPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    AlignedGeneratorConfig config = DefaultExperimentConfig(17);
    config.population.num_personas = 80;
    auto gen = GenerateAligned(config);
    ASSERT_TRUE(gen.ok());
    generated_ = std::make_unique<GeneratedAligned>(std::move(gen).value());
    target_graph_ = SocialGraph::FromHeterogeneousNetwork(
        generated_->networks.target());
    tensors_.push_back(BuildSparseFeatureTensor(generated_->networks.target(),
                                                target_graph_));
    const SocialGraph source_graph = SocialGraph::FromHeterogeneousNetwork(
        generated_->networks.source(0));
    tensors_.push_back(BuildSparseFeatureTensor(generated_->networks.source(0),
                                                source_graph));
  }

  std::unique_ptr<GeneratedAligned> generated_;
  SocialGraph target_graph_{0};
  std::vector<SparseTensor3> tensors_;
};

TEST_F(EmbeddingPipelineTest, SampleRespectsStructure) {
  Rng rng(3);
  InstanceSampleOptions options;
  options.positives_per_network = 20;
  options.negatives_per_network = 20;
  auto sample = SampleLinkInstances(generated_->networks, target_graph_,
                                    tensors_, options, rng);
  ASSERT_TRUE(sample.ok()) << sample.status().ToString();
  const InstanceSample& s = sample.value();
  EXPECT_EQ(s.num_networks(), 2u);
  ASSERT_EQ(s.network_offsets.size(), 3u);
  EXPECT_EQ(s.network_offsets[0], 0u);
  EXPECT_EQ(s.network_offsets.back(), s.total());
  EXPECT_EQ(s.feature_dims[0], tensors_[0].dim0());

  const SocialGraph source_graph = SocialGraph::FromHeterogeneousNetwork(
      generated_->networks.source(0));
  for (std::size_t i = 0; i < s.total(); ++i) {
    const LinkInstance& inst = s.instances[i];
    EXPECT_LT(inst.u, inst.v);
    const SocialGraph& graph =
        inst.network == 0 ? target_graph_ : source_graph;
    EXPECT_EQ(inst.exists, graph.HasEdge(inst.u, inst.v))
        << "existence label must match the graph";
    EXPECT_EQ(inst.features.size(), s.feature_dims[inst.network]);
  }
}

TEST_F(EmbeddingPipelineTest, SampleContainsBothLabels) {
  Rng rng(5);
  auto sample = SampleLinkInstances(generated_->networks, target_graph_,
                                    tensors_, InstanceSampleOptions{}, rng);
  ASSERT_TRUE(sample.ok());
  std::size_t pos = 0;
  std::size_t neg = 0;
  for (const auto& inst : sample.value().instances) {
    (inst.exists ? pos : neg) += 1;
  }
  EXPECT_GT(pos, 0u);
  EXPECT_GT(neg, 0u);
}

TEST_F(EmbeddingPipelineTest, AlignedIndicatorConnectsAnchoredPairs) {
  Rng rng(7);
  InstanceSampleOptions options;
  options.positives_per_network = 30;
  options.negatives_per_network = 30;
  auto sample = SampleLinkInstances(generated_->networks, target_graph_,
                                    tensors_, options, rng);
  ASSERT_TRUE(sample.ok());
  const InstanceSample& s = sample.value();
  const AnchorLinks& anchors = generated_->networks.anchors(0);
  const CsrMatrix w_a = BuildAlignedIndicator(s, {&anchors});

  EXPECT_GT(w_a.nnz(), 0u) << "mirrored instances must produce alignments";
  // Every marked pair must genuinely be an aligned social link.
  for (std::size_t i = 0; i < w_a.rows(); ++i) {
    for (std::size_t p = w_a.row_ptr()[i]; p < w_a.row_ptr()[i + 1]; ++p) {
      const std::size_t j = w_a.col_idx()[p];
      const LinkInstance& a = s.instances[std::min(i, j)];
      const LinkInstance& b = s.instances[std::max(i, j)];
      EXPECT_EQ(a.network, 0u);
      EXPECT_EQ(b.network, 1u);
      const auto bu = anchors.LeftOf(b.u);
      const auto bv = anchors.LeftOf(b.v);
      ASSERT_TRUE(bu.has_value() && bv.has_value());
      EXPECT_EQ(MakeUserPair(*bu, *bv), (UserPair{a.u, a.v}));
    }
  }
}

TEST_F(EmbeddingPipelineTest, LabelIndicatorsPartitionPairs) {
  Rng rng(9);
  InstanceSampleOptions options;
  options.positives_per_network = 10;
  options.negatives_per_network = 10;
  auto sample = SampleLinkInstances(generated_->networks, target_graph_,
                                    tensors_, options, rng);
  ASSERT_TRUE(sample.ok());
  const InstanceSample& s = sample.value();
  const CsrMatrix w_s = BuildSimilarIndicator(s);
  const CsrMatrix w_d = BuildDissimilarIndicator(s);
  const std::size_t total = s.total();
  // Every off-diagonal pair is in exactly one of W_S, W_D.
  EXPECT_EQ(w_s.nnz() + w_d.nnz(), total * (total - 1));
  for (std::size_t i = 0; i < std::min<std::size_t>(total, 12); ++i) {
    for (std::size_t j = 0; j < std::min<std::size_t>(total, 12); ++j) {
      if (i == j) continue;
      const bool same = s.instances[i].exists == s.instances[j].exists;
      EXPECT_DOUBLE_EQ(w_s.At(i, j), same ? 1.0 : 0.0);
      EXPECT_DOUBLE_EQ(w_d.At(i, j), same ? 0.0 : 1.0);
    }
  }
}

TEST(LaplacianTest, RowSumsAreZero) {
  const CsrMatrix w = CsrMatrix::FromTriplets(
      3, 3, {{0, 1, 1.0}, {1, 0, 1.0}, {1, 2, 2.0}, {2, 1, 2.0}});
  const Matrix l = DenseLaplacian(w);
  for (std::size_t i = 0; i < 3; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < 3; ++j) row_sum += l(i, j);
    EXPECT_NEAR(row_sum, 0.0, 1e-12);
  }
  EXPECT_DOUBLE_EQ(l(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(l(1, 1), 3.0);
  EXPECT_DOUBLE_EQ(l(0, 1), -1.0);
}

TEST(LaplacianTest, SandwichMatchesDenseComputation) {
  Rng rng(11);
  const Matrix z = Matrix::RandomGaussian(4, 6, rng);
  const CsrMatrix w = CsrMatrix::FromTriplets(
      6, 6,
      {{0, 1, 1.0}, {1, 0, 1.0}, {2, 3, 0.5}, {3, 2, 0.5}, {4, 5, 2.0},
       {5, 4, 2.0}});
  const Matrix direct = z * DenseLaplacian(w) * z.Transposed();
  const Matrix sandwich = SandwichLaplacian(z, w);
  EXPECT_LT((direct - sandwich).MaxAbs(), 1e-10);
}

TEST_F(EmbeddingPipelineTest, BlockDiagonalZHasBlockStructure) {
  Rng rng(13);
  InstanceSampleOptions options;
  options.positives_per_network = 8;
  options.negatives_per_network = 8;
  auto sample = SampleLinkInstances(generated_->networks, target_graph_,
                                    tensors_, options, rng);
  ASSERT_TRUE(sample.ok());
  const InstanceSample& s = sample.value();
  const Matrix z = BuildBlockDiagonalZ(s);
  EXPECT_EQ(z.rows(), s.feature_dims[0] + s.feature_dims[1]);
  EXPECT_EQ(z.cols(), s.total());
  // Off-block regions are zero: source instances have no target rows.
  for (std::size_t col = s.network_offsets[1]; col < s.total(); ++col) {
    for (std::size_t row = 0; row < s.feature_dims[0]; ++row) {
      EXPECT_DOUBLE_EQ(z(row, col), 0.0);
    }
  }
}

TEST_F(EmbeddingPipelineTest, ProjectionSolverProducesRequestedShape) {
  Rng rng(15);
  auto sample = SampleLinkInstances(generated_->networks, target_graph_,
                                    tensors_, InstanceSampleOptions{}, rng);
  ASSERT_TRUE(sample.ok());
  const CsrMatrix w_a = BuildAlignedIndicator(
      sample.value(), {&generated_->networks.anchors(0)});
  const CsrMatrix w_s = BuildSimilarIndicator(sample.value());
  const CsrMatrix w_d = BuildDissimilarIndicator(sample.value());
  ProjectionOptions options;
  options.latent_dim = 4;
  auto proj = SolveProjections(sample.value(), w_a, w_s, w_d, options);
  ASSERT_TRUE(proj.ok()) << proj.status().ToString();
  ASSERT_EQ(proj.value().projections.size(), 2u);
  EXPECT_EQ(proj.value().projections[0].rows(), tensors_[0].dim0());
  EXPECT_EQ(proj.value().projections[0].cols(), 4u);
  EXPECT_EQ(proj.value().projections[1].rows(), tensors_[1].dim0());
  // Projections must be non-trivial.
  EXPECT_GT(proj.value().projections[0].MaxAbs(), 0.0);
}

TEST_F(EmbeddingPipelineTest, ProjectionSolverRejectsBadLatentDim) {
  Rng rng(17);
  auto sample = SampleLinkInstances(generated_->networks, target_graph_,
                                    tensors_, InstanceSampleOptions{}, rng);
  ASSERT_TRUE(sample.ok());
  const CsrMatrix w_s = BuildSimilarIndicator(sample.value());
  const CsrMatrix w_d = BuildDissimilarIndicator(sample.value());
  const CsrMatrix w_a = BuildAlignedIndicator(
      sample.value(), {&generated_->networks.anchors(0)});
  ProjectionOptions options;
  options.latent_dim = 10000;
  EXPECT_FALSE(
      SolveProjections(sample.value(), w_a, w_s, w_d, options).ok());
  options.latent_dim = 0;
  EXPECT_FALSE(
      SolveProjections(sample.value(), w_a, w_s, w_d, options).ok());
}

TEST_F(EmbeddingPipelineTest, AdapterOutputsTargetCoordinates) {
  Rng rng(19);
  DomainAdapterOptions options;
  auto adapted = AdaptDomains(generated_->networks, target_graph_, tensors_,
                              options, rng);
  ASSERT_TRUE(adapted.ok()) << adapted.status().ToString();
  const std::size_t n = generated_->networks.target().NumUsers();
  ASSERT_EQ(adapted.value().tensors.size(), 2u);
  EXPECT_EQ(adapted.value().tensors[0].dim0(),
            options.projection.latent_dim);
  EXPECT_EQ(adapted.value().tensors[0].dim1(), n);
  EXPECT_EQ(adapted.value().tensors[1].dim1(), n);
  EXPECT_EQ(adapted.value().tensors[1].dim2(), n);
}

TEST_F(EmbeddingPipelineTest, AdapterOrientsPositiveInstancesHigher) {
  Rng rng(21);
  auto adapted = AdaptDomains(generated_->networks, target_graph_, tensors_,
                              DomainAdapterOptions{}, rng);
  ASSERT_TRUE(adapted.ok());
  // The best (highest-separation) latent slice must score existing links
  // above absent pairs on average.
  const SparseTensor3& t = adapted.value().tensors[0];
  double link_sum = 0.0;
  double non_sum = 0.0;
  std::size_t links = 0;
  std::size_t nons = 0;
  const Matrix sum = t.SumSlices();
  for (std::size_t u = 0; u < target_graph_.num_users(); ++u) {
    for (std::size_t v = u + 1; v < target_graph_.num_users(); ++v) {
      if (target_graph_.HasEdge(u, v)) {
        link_sum += sum(u, v);
        ++links;
      } else {
        non_sum += sum(u, v);
        ++nons;
      }
    }
  }
  ASSERT_GT(links, 0u);
  ASSERT_GT(nons, 0u);
  EXPECT_GT(link_sum / links, non_sum / nons);
}

TEST_F(EmbeddingPipelineTest, PassthroughKeepsRawTargetTensor) {
  auto pass = PassthroughAdapt(generated_->networks, tensors_);
  ASSERT_TRUE(pass.ok());
  EXPECT_EQ(pass.value().tensors[0].dim0(), tensors_[0].dim0());
  // Target tensor passes through unchanged.
  EXPECT_EQ(pass.value().tensors[0].ToDense().data(),
            tensors_[0].ToDense().data());
}

TEST_F(EmbeddingPipelineTest, ReindexImputesUncoveredPairsAtCoveredMean) {
  // With a tiny anchor set, uncovered pairs get the covered-mean value
  // rather than zero (no systematic penalty for unanchored users).
  Rng rng(23);
  AlignedNetworks bundle(generated_->networks.target());
  AnchorLinks small(generated_->networks.target().NumUsers(),
                    generated_->networks.source(0).NumUsers());
  int added = 0;
  for (const auto& [l, r] : generated_->networks.anchors(0).pairs()) {
    if (added >= 5) break;
    ASSERT_TRUE(small.Add(l, r).ok());
    ++added;
  }
  bundle.AddSource(generated_->networks.source(0), std::move(small));
  auto pass = PassthroughAdapt(bundle, tensors_);
  ASSERT_TRUE(pass.ok());
  const SparseTensor3& t = pass.value().tensors[1];
  // Pick a pair of certainly-unanchored users (beyond the 5 anchored
  // lefts): all its slices must equal the per-slice covered mean, which
  // is constant across uncovered pairs.
  std::vector<std::size_t> unanchored;
  for (std::size_t u = 0; u < bundle.target().NumUsers(); ++u) {
    if (!bundle.anchors(0).RightOf(u).has_value()) unanchored.push_back(u);
  }
  ASSERT_GE(unanchored.size(), 3u);
  for (std::size_t d = 0; d < t.dim0(); ++d) {
    const double a = t.At(d, unanchored[0], unanchored[1]);
    const double b = t.At(d, unanchored[1], unanchored[2]);
    EXPECT_DOUBLE_EQ(a, b) << "uncovered pairs share the imputed mean";
  }
}

TEST_F(EmbeddingPipelineTest, NoAnchorsMeansZeroTransfer) {
  AlignedNetworks bundle(generated_->networks.target());
  AnchorLinks empty(generated_->networks.target().NumUsers(),
                    generated_->networks.source(0).NumUsers());
  bundle.AddSource(generated_->networks.source(0), std::move(empty));
  auto pass = PassthroughAdapt(bundle, tensors_);
  ASSERT_TRUE(pass.ok());
  EXPECT_DOUBLE_EQ(pass.value().tensors[1].MaxAbs(), 0.0);
}

}  // namespace
}  // namespace slampred
