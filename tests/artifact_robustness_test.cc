// Fuzz-ish robustness tests for the model-artifact reader: truncations
// at every prefix length, single-byte corruption at every offset, and
// targeted magic/version/checksum damage must all yield clean,
// offset-diagnosed Status failures — never a crash or an out-of-bounds
// read (the ASan CI leg runs this file too). Also covers the
// "artifact.read" fault-injection site, crash-safe publication
// (WriteArtifactAtomic: tmp + fsync + rename + last_good sidecar), and
// SwapFromFile recovery from torn files via retry and rollback.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "core/model_artifact.h"
#include "core/scoring_session.h"
#include "serve/artifact_quantizer.h"
#include "serve/model_registry.h"
#include "util/binary_io.h"
#include "util/fault_injection.h"

namespace slampred {
namespace {

// A small but complete artifact built without a fit: default config
// plus a 4x4 score matrix and one adapted tensor, exercising all three
// section kinds.
std::string ValidArtifactBytes() {
  ModelArtifact artifact;
  artifact.s = Matrix(4, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      artifact.s(i, j) = 0.25 * static_cast<double>(i) +
                         0.125 * static_cast<double>(j);
    }
  }
  Tensor3 dense(2, 4, 4);
  dense(0, 1, 2) = 1.0;
  dense(1, 3, 0) = -2.0;
  artifact.adapted_tensors.push_back(SparseTensor3::FromDense(dense));
  artifact.has_adapted_tensors = true;
  return SerializeModelArtifact(artifact);
}

TEST(ArtifactRobustnessTest, ValidBytesParse) {
  auto artifact = DeserializeModelArtifact(ValidArtifactBytes());
  ASSERT_TRUE(artifact.ok()) << artifact.status().ToString();
  EXPECT_EQ(artifact.value().s.rows(), 4u);
  EXPECT_TRUE(artifact.value().has_adapted_tensors);
}

TEST(ArtifactRobustnessTest, EveryTruncationFailsCleanly) {
  const std::string bytes = ValidArtifactBytes();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const auto result = DeserializeModelArtifact(bytes.substr(0, len));
    ASSERT_FALSE(result.ok()) << "prefix of " << len << " bytes parsed";
    EXPECT_FALSE(result.status().message().empty());
  }
}

TEST(ArtifactRobustnessTest, TruncationsAreOffsetDiagnosed) {
  const std::string bytes = ValidArtifactBytes();
  // A cut inside the magic, inside the header, and inside a section
  // payload each name the offset where parsing broke.
  for (std::size_t len : {std::size_t{3}, std::size_t{10},
                          std::size_t{bytes.size() / 2},
                          bytes.size() - 1}) {
    const auto result = DeserializeModelArtifact(bytes.substr(0, len));
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kIoError) << "len " << len;
    EXPECT_NE(result.status().message().find("offset"), std::string::npos)
        << "len " << len << ": " << result.status().ToString();
  }
}

TEST(ArtifactRobustnessTest, EveryBitFlipIsHandledWithoutCrashing) {
  const std::string bytes = ValidArtifactBytes();
  // Flip one bit in every byte of the stream. Each corrupted stream
  // must either be rejected with a diagnosed Status or — where the flip
  // lands in genuinely ignorable space — parse without any memory
  // error. No outcome may crash.
  std::size_t rejected = 0;
  for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
    std::string corrupt = bytes;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x40);
    const auto result = DeserializeModelArtifact(corrupt);
    if (!result.ok()) {
      ++rejected;
      EXPECT_FALSE(result.status().message().empty());
    }
  }
  // The vast majority of the stream is checksummed payload or load-
  // bearing header, so nearly every flip must be caught.
  EXPECT_GT(rejected, bytes.size() * 9 / 10);
}

TEST(ArtifactRobustnessTest, BadMagicIsDiagnosed) {
  std::string bytes = ValidArtifactBytes();
  bytes[0] = 'X';
  const auto result = DeserializeModelArtifact(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  EXPECT_NE(result.status().message().find("magic"), std::string::npos);
}

TEST(ArtifactRobustnessTest, WrongVersionIsDiagnosed) {
  std::string bytes = ValidArtifactBytes();
  bytes[8] = static_cast<char>(kModelArtifactFormatVersion + 1);
  const auto result = DeserializeModelArtifact(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  EXPECT_NE(result.status().message().find("version"), std::string::npos);
  EXPECT_NE(result.status().message().find("offset 8"), std::string::npos);
}

TEST(ArtifactRobustnessTest, PayloadCorruptionFailsTheChecksum) {
  std::string bytes = ValidArtifactBytes();
  // Byte 28 is inside the first section's payload (16-byte header +
  // 4-byte id + 8-byte length put the payload at offset 28).
  bytes[28] = static_cast<char>(bytes[28] ^ 0xFF);
  const auto result = DeserializeModelArtifact(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  EXPECT_NE(result.status().message().find("checksum mismatch"),
            std::string::npos);
}

TEST(ArtifactRobustnessTest, MissingSectionsAreDiagnosed) {
  // A structurally valid stream with zero sections parses the header
  // fine but must be rejected for lacking config + score matrix.
  BinaryWriter writer;
  writer.WriteBytes("SLPMODEL", 8);
  writer.WriteU32(kModelArtifactFormatVersion);
  writer.WriteU32(0);
  const auto result = DeserializeModelArtifact(writer.buffer());
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("required section"),
            std::string::npos);
}

TEST(ArtifactRobustnessTest, UnknownSectionIdsAreSkipped) {
  // Append a checksummed section with an unknown id; the artifact must
  // still load (additive format growth stays readable).
  ModelArtifact artifact;
  artifact.s = Matrix(2, 2);
  artifact.s(0, 1) = 1.0;
  std::string bytes = SerializeModelArtifact(artifact);
  BinaryWriter extra;
  const std::string payload = "future data";
  extra.WriteU32(999);
  extra.WriteU64(payload.size());
  extra.WriteBytes(payload.data(), payload.size());
  extra.WriteU32(Crc32(payload.data(), payload.size()));
  bytes += extra.buffer();
  // Bump the section count (offset 12, little-endian u32 low byte).
  bytes[12] = static_cast<char>(bytes[12] + 1);
  const auto result = DeserializeModelArtifact(bytes);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().s.rows(), 2u);
}

TEST(ArtifactRobustnessTest, LoadPrefixesThePath) {
  const std::string path = ::testing::TempDir() + "/corrupt.slpmodel";
  std::string bytes = ValidArtifactBytes();
  bytes[0] = 'X';
  ASSERT_TRUE(WriteStringToFile(bytes, path).ok());
  const auto result = LoadModelArtifact(path);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find(path), std::string::npos);
  std::remove(path.c_str());
}

TEST(ArtifactRobustnessTest, ArtifactReadFaultSite) {
  const std::string path = ::testing::TempDir() + "/fault.slpmodel";
  ASSERT_TRUE(WriteStringToFile(ValidArtifactBytes(), path).ok());

  FaultSpec spec;
  spec.kind = FaultKind::kFailIo;
  FaultInjector::Instance().Arm("artifact.read", spec);
  const auto injected = LoadModelArtifact(path);
  ASSERT_FALSE(injected.ok());
  EXPECT_EQ(injected.status().code(), StatusCode::kIoError);
  EXPECT_EQ(FaultInjector::Instance().TriggerCount("artifact.read"), 1);

  // The single-shot spec is exhausted: the next load succeeds, and so
  // does serving it.
  const auto loaded = LoadModelArtifact(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  auto session = ScoringSession::FromFile(path);
  ASSERT_TRUE(session.ok());
  EXPECT_TRUE(session.value().Score(0, 1).ok());

  FaultInjector::Instance().Reset();
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// The factored low-rank section (id 4) gets the same treatment: a
// config + factor-only stream must survive every truncation and bit
// flip without crashing, and an *unknown* low-rank id must degrade
// exactly the way an old reader would — skip the section, keep going.

// A factored-backend artifact: default config plus 4x4 factors of rank
// 2 — no dense score matrix section at all.
std::string ValidFactoredArtifactBytes() {
  ModelArtifact artifact;
  Matrix u(4, 2);
  Matrix v(4, 2);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t c = 0; c < 2; ++c) {
      u(i, c) = 0.5 * static_cast<double>(i) + static_cast<double>(c);
      v(i, c) = 0.25 * static_cast<double>(i) - static_cast<double>(c);
    }
  }
  artifact.low_rank = FactoredMatrix(std::move(u), std::move(v));
  artifact.has_low_rank = true;
  return SerializeModelArtifact(artifact);
}

// Rewrites the id of the first section whose id equals `from`. Section
// ids live outside the payload checksum, so the patched stream stays
// CRC-valid and only the id changes — exactly what a reader from a
// future format version would present to this one.
std::string PatchSectionId(std::string bytes, std::uint32_t from,
                           std::uint32_t to) {
  auto read_u32 = [&](std::size_t pos) {
    std::uint32_t value = 0;
    for (std::size_t b = 0; b < 4; ++b) {
      value |= static_cast<std::uint32_t>(
                   static_cast<unsigned char>(bytes[pos + b]))
               << (8 * b);
    }
    return value;
  };
  auto read_u64 = [&](std::size_t pos) {
    std::uint64_t value = 0;
    for (std::size_t b = 0; b < 8; ++b) {
      value |= static_cast<std::uint64_t>(
                   static_cast<unsigned char>(bytes[pos + b]))
               << (8 * b);
    }
    return value;
  };
  // 8-byte magic + u32 version + u32 count, then sections of
  // u32 id · u64 size · payload · u32 crc.
  std::size_t pos = 16;
  while (pos + 12 <= bytes.size()) {
    if (read_u32(pos) == from) {
      for (std::size_t b = 0; b < 4; ++b) {
        bytes[pos + b] = static_cast<char>((to >> (8 * b)) & 0xFF);
      }
      return bytes;
    }
    pos += 12 + read_u64(pos + 4) + 4;
  }
  ADD_FAILURE() << "no section with id " << from << " in the stream";
  return bytes;
}

constexpr std::uint32_t kLowRankSectionId = 4;

TEST(FactoredArtifactRobustnessTest, ValidBytesParseAndMarkTheBackend) {
  auto artifact = DeserializeModelArtifact(ValidFactoredArtifactBytes());
  ASSERT_TRUE(artifact.ok()) << artifact.status().ToString();
  EXPECT_TRUE(artifact.value().has_low_rank);
  EXPECT_TRUE(artifact.value().s.empty());
  EXPECT_EQ(artifact.value().low_rank.rows(), 4u);
  EXPECT_EQ(artifact.value().low_rank.rank(), 2u);
  EXPECT_EQ(artifact.value().config.solver_backend,
            SolverBackend::kFactored);
}

TEST(FactoredArtifactRobustnessTest, EveryTruncationFailsCleanly) {
  const std::string bytes = ValidFactoredArtifactBytes();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const auto result = DeserializeModelArtifact(bytes.substr(0, len));
    ASSERT_FALSE(result.ok()) << "prefix of " << len << " bytes parsed";
    EXPECT_FALSE(result.status().message().empty());
  }
}

TEST(FactoredArtifactRobustnessTest, EveryBitFlipIsHandledWithoutCrashing) {
  const std::string bytes = ValidFactoredArtifactBytes();
  std::size_t rejected = 0;
  for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
    std::string corrupt = bytes;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x40);
    const auto result = DeserializeModelArtifact(corrupt);
    if (!result.ok()) {
      ++rejected;
      EXPECT_FALSE(result.status().message().empty());
    }
  }
  // As with the dense stream, nearly every byte is checksummed payload
  // or load-bearing header.
  EXPECT_GT(rejected, bytes.size() * 9 / 10);
}

TEST(FactoredArtifactRobustnessTest, OldReaderSkipOfTheLowRankSection) {
  // A stream carrying BOTH a dense score matrix and a low-rank section
  // stands in for the forward-compat contract: a reader that does not
  // know the low-rank id (simulated by patching it to 99) must skip the
  // section with its CRC verified and serve the dense matrix, staying
  // on the dense backend.
  ModelArtifact artifact;
  artifact.s = Matrix(4, 4);
  artifact.s(1, 2) = 0.75;
  Matrix u(4, 1);
  Matrix v(4, 1);
  u(0, 0) = 1.0;
  v(3, 0) = -1.0;
  artifact.low_rank = FactoredMatrix(std::move(u), std::move(v));
  artifact.has_low_rank = true;
  const std::string bytes = SerializeModelArtifact(artifact);

  // Sanity: unpatched, the low-rank section wins the backend marker.
  auto both = DeserializeModelArtifact(bytes);
  ASSERT_TRUE(both.ok()) << both.status().ToString();
  EXPECT_TRUE(both.value().has_low_rank);

  const std::string patched = PatchSectionId(bytes, kLowRankSectionId, 99);
  auto result = DeserializeModelArtifact(patched);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result.value().has_low_rank);
  EXPECT_EQ(result.value().config.solver_backend, SolverBackend::kDense);
  ASSERT_EQ(result.value().s.rows(), 4u);
  EXPECT_EQ(result.value().s(1, 2), 0.75);
}

TEST(FactoredArtifactRobustnessTest,
     SkippedLowRankSectionWithoutDenseFallbackIsRejected) {
  // The same skip on a factor-only stream leaves no score matrix at
  // all: the old reader walks the unknown section cleanly and then
  // reports the missing required section instead of crashing.
  const std::string patched =
      PatchSectionId(ValidFactoredArtifactBytes(), kLowRankSectionId, 99);
  const auto result = DeserializeModelArtifact(patched);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("required section"),
            std::string::npos);
}

TEST(FactoredArtifactRobustnessTest, FactoredStreamServesAfterReload) {
  const std::string path = ::testing::TempDir() + "/factored.slpmodel";
  ASSERT_TRUE(WriteStringToFile(ValidFactoredArtifactBytes(), path).ok());
  auto session = ScoringSession::FromFile(path);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  // The session densifies U·Vᵀ at load; entry (0, 0) of the helper's
  // factors is u(0,:)·v(0,:) = 0·0 + 1·(-1) = -1.
  auto score = session.value().Score(0, 0);
  ASSERT_TRUE(score.ok());
  EXPECT_EQ(score.value(), -1.0);
  std::remove(path.c_str());
}

// The artifact behind ValidArtifactBytes(), for WriteArtifactAtomic.
ModelArtifact ValidArtifact() {
  auto artifact = DeserializeModelArtifact(ValidArtifactBytes());
  EXPECT_TRUE(artifact.ok());
  return std::move(artifact).value();
}

TEST(ArtifactPublicationTest, AtomicWritePublishesPrimaryAndSidecar) {
  const std::string path = ::testing::TempDir() + "/atomic.slpmodel";
  ASSERT_TRUE(WriteArtifactAtomic(ValidArtifact(), path).ok());

  // Primary and sidecar both load, hold identical bytes, and no .tmp
  // staging file survives the publish.
  auto primary = ReadFileToString(path);
  auto sidecar = ReadFileToString(LastGoodArtifactPath(path));
  ASSERT_TRUE(primary.ok());
  ASSERT_TRUE(sidecar.ok());
  EXPECT_EQ(primary.value(), sidecar.value());
  EXPECT_TRUE(DeserializeModelArtifact(primary.value()).ok());
  EXPECT_FALSE(ReadFileToString(path + ".tmp").ok());
  EXPECT_FALSE(ReadFileToString(LastGoodArtifactPath(path) + ".tmp").ok());

  std::remove(path.c_str());
  std::remove(LastGoodArtifactPath(path).c_str());
}

TEST(ArtifactPublicationTest, MidWriteKillLeavesPublishedArtifactIntact) {
  const std::string path = ::testing::TempDir() + "/killed.slpmodel";
  ASSERT_TRUE(WriteArtifactAtomic(ValidArtifact(), path).ok());
  const std::string bytes = ValidArtifactBytes();

  // Simulate a writer killed mid-write at every prefix length: the
  // staging .tmp holds a torn copy, but the published path — which an
  // atomic publish only touches via rename — must keep serving.
  for (std::size_t len = 0; len < bytes.size(); len += 37) {
    ASSERT_TRUE(WriteStringToFile(bytes.substr(0, len), path + ".tmp").ok());
    auto loaded = LoadModelArtifact(path);
    ASSERT_TRUE(loaded.ok()) << "torn tmp of " << len
                             << " bytes corrupted the published artifact";
  }

  std::remove((path + ".tmp").c_str());
  std::remove(path.c_str());
  std::remove(LastGoodArtifactPath(path).c_str());
}

TEST(ArtifactPublicationTest,
     EveryTruncationOfPrimaryRollsBackToLastGoodSidecar) {
  const std::string path = ::testing::TempDir() + "/torn.slpmodel";
  ASSERT_TRUE(WriteArtifactAtomic(ValidArtifact(), path).ok());
  const std::string bytes = ValidArtifactBytes();

  // No retry sleeps: every load failure goes straight to the rollback.
  ModelRegistryOptions options;
  options.swap_retry_attempts = 0;
  ModelRegistry registry(options);

  int rollbacks = 0;
  for (std::size_t len = 0; len < bytes.size(); len += 13) {
    // A torn primary (as if a non-atomic writer died mid-publish)...
    ASSERT_TRUE(WriteStringToFile(bytes.substr(0, len), path).ok());
    // ...is recovered by publishing the last_good sidecar instead.
    const Status swapped = registry.SwapFromFile(path);
    ASSERT_TRUE(swapped.ok()) << "prefix " << len << ": "
                              << swapped.ToString();
    ++rollbacks;
    EXPECT_EQ(registry.recovery().artifact_rollbacks, rollbacks);
    EXPECT_EQ(registry.recovery().swap_failures, rollbacks);
    EXPECT_EQ(registry.current_version(),
              static_cast<std::uint64_t>(rollbacks));
    // The published model is the sidecar's artifact, fully servable.
    const auto model = registry.Acquire();
    ASSERT_NE(model, nullptr);
    EXPECT_EQ(model->num_users(), 4u);
  }

  std::remove(path.c_str());
  std::remove(LastGoodArtifactPath(path).c_str());
}

TEST(ArtifactPublicationTest, TransientReadFaultIsAbsorbedByRetryBudget) {
  const std::string path = ::testing::TempDir() + "/transient.slpmodel";
  ASSERT_TRUE(WriteArtifactAtomic(ValidArtifact(), path).ok());

  // One injected read failure; the deterministic retry reloads cleanly,
  // so no swap failure and no rollback are recorded.
  FaultSpec spec;
  spec.kind = FaultKind::kFailIo;
  spec.max_triggers = 1;
  FaultInjector::Instance().Arm("artifact.read", spec);

  ModelRegistry registry;
  const Status swapped = registry.SwapFromFile(path);
  ASSERT_TRUE(swapped.ok()) << swapped.ToString();
  EXPECT_EQ(registry.recovery().swap_failures, 0);
  EXPECT_EQ(registry.recovery().artifact_rollbacks, 0);
  EXPECT_EQ(registry.current_version(), 1u);

  FaultInjector::Instance().Reset();
  std::remove(path.c_str());
  std::remove(LastGoodArtifactPath(path).c_str());
}

TEST(ArtifactPublicationTest, MissingSidecarPropagatesThePrimaryFailure) {
  const std::string path = ::testing::TempDir() + "/no_sidecar.slpmodel";
  std::string bytes = ValidArtifactBytes();
  bytes[0] = 'X';  // Corrupt primary, and no last_good exists.
  ASSERT_TRUE(WriteStringToFile(bytes, path).ok());

  ModelRegistryOptions options;
  options.swap_retry_attempts = 0;
  ModelRegistry registry(options);
  const Status swapped = registry.SwapFromFile(path);
  ASSERT_FALSE(swapped.ok());
  EXPECT_EQ(swapped.code(), StatusCode::kIoError);
  EXPECT_EQ(registry.recovery().swap_failures, 1);
  EXPECT_EQ(registry.recovery().artifact_rollbacks, 0);
  EXPECT_EQ(registry.current_version(), 0u);

  std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Quantized and hot-cache sections (ids 8–11, DESIGN.md §15) get the
// same fuzz treatment as the float sections: every prefix truncation
// and per-byte bit flip must fail cleanly, unknown-id skips must behave
// like an old reader, and — the sharpest case — a corrupt scale vector
// whose section CRC has been recomputed must be REJECTED by the
// semantic validation layer, never mis-dequantized into garbage scores.

// A quantized dense artifact: config + quantized scores (8) + hot
// cache (11) + adapted tensors, no float score payload at all.
std::string ValidQuantizedArtifactBytes() {
  ArtifactQuantizerOptions options;
  options.bits = QuantizationBits::kU8;
  options.hot_user_ids = {0, 2};
  options.hot_row_entries = 2;  // Bounded (incomplete) prefixes.
  auto quantized = QuantizeModelArtifact(ValidArtifact(), options);
  EXPECT_TRUE(quantized.ok()) << quantized.status().ToString();
  return SerializeModelArtifact(quantized.value());
}

// A deterministic sharded float artifact: two symmetric blocks over
// users [0, 3) and [3, 6) plus a symmetric cross-shard boundary.
ModelArtifact ValidShardedArtifact() {
  std::vector<ModelShard> shards(2);
  for (std::size_t c = 0; c < 2; ++c) {
    for (std::size_t i = 0; i < 3; ++i) {
      shards[c].users.push_back(static_cast<std::uint32_t>(3 * c + i));
    }
    shards[c].s = Matrix(3, 3);
    for (std::size_t i = 0; i < 3; ++i) {
      for (std::size_t j = 0; j < 3; ++j) {
        shards[c].s(i, j) = 0.125 * static_cast<double>(i + j) +
                            (c == 0 ? 0.0 : 0.5) + (i == j ? 1.0 : 0.0);
      }
    }
  }
  Matrix boundary(6, 6);
  boundary(0, 4) = 0.5;
  boundary(4, 0) = 0.5;
  boundary(2, 5) = -0.25;
  boundary(5, 2) = -0.25;
  ModelArtifact artifact;
  auto sharded = ShardedScores::Create(std::move(shards),
                                       CsrMatrix::FromDense(boundary), 6);
  EXPECT_TRUE(sharded.ok()) << sharded.status().ToString();
  artifact.shards = std::move(sharded).value();
  artifact.has_shards = true;
  return artifact;
}

// The quantized form: manifest (5) + quantized shards (9) + quantized
// boundary (10) + hot cache (11).
std::string ValidQuantizedShardedArtifactBytes() {
  ArtifactQuantizerOptions options;
  options.bits = QuantizationBits::kU16;
  options.hot_user_ids = {1};
  options.hot_row_entries = 16;  // Complete row (n−1 = 5 fits).
  auto quantized = QuantizeModelArtifact(ValidShardedArtifact(), options);
  EXPECT_TRUE(quantized.ok()) << quantized.status().ToString();
  return SerializeModelArtifact(quantized.value());
}

// Payload offset and size of the first section with id `id` in a
// serialized artifact stream (npos when absent).
std::pair<std::size_t, std::size_t> FindSectionPayload(
    const std::string& bytes, std::uint32_t id) {
  auto read_u32 = [&](std::size_t pos) {
    std::uint32_t value = 0;
    for (std::size_t b = 0; b < 4; ++b) {
      value |= static_cast<std::uint32_t>(
                   static_cast<unsigned char>(bytes[pos + b]))
               << (8 * b);
    }
    return value;
  };
  auto read_u64 = [&](std::size_t pos) {
    std::uint64_t value = 0;
    for (std::size_t b = 0; b < 8; ++b) {
      value |= static_cast<std::uint64_t>(
                   static_cast<unsigned char>(bytes[pos + b]))
               << (8 * b);
    }
    return value;
  };
  std::size_t pos = 16;
  while (pos + 12 <= bytes.size()) {
    const std::uint64_t size = read_u64(pos + 4);
    if (read_u32(pos) == id) {
      return {pos + 12, static_cast<std::size_t>(size)};
    }
    pos += 12 + size + 4;
  }
  return {std::string::npos, 0};
}

// Patches `count` raw bytes inside a section payload and recomputes the
// section CRC, so the corruption reaches the semantic validators
// instead of being caught by the checksum.
std::string PatchPayloadWithValidCrc(std::string bytes, std::uint32_t id,
                                     std::size_t payload_offset,
                                     const void* data, std::size_t count) {
  const auto [begin, size] = FindSectionPayload(bytes, id);
  EXPECT_NE(begin, std::string::npos) << "section " << id << " not found";
  EXPECT_LE(payload_offset + count, size);
  std::memcpy(&bytes[begin + payload_offset], data, count);
  const std::uint32_t crc = Crc32(bytes.data() + begin, size);
  for (std::size_t b = 0; b < 4; ++b) {
    bytes[begin + size + b] = static_cast<char>((crc >> (8 * b)) & 0xFF);
  }
  return bytes;
}

constexpr std::uint32_t kQuantizedScoresSectionId = 8;
constexpr std::uint32_t kQuantizedShardSectionId = 9;
constexpr std::uint32_t kQuantizedBoundarySectionId = 10;
constexpr std::uint32_t kHotCacheSectionId = 11;

TEST(QuantizedArtifactRobustnessTest, ValidBytesParseAndServe) {
  auto artifact = DeserializeModelArtifact(ValidQuantizedArtifactBytes());
  ASSERT_TRUE(artifact.ok()) << artifact.status().ToString();
  EXPECT_TRUE(artifact.value().has_quantized_s);
  EXPECT_TRUE(artifact.value().has_hot_rows);
  EXPECT_EQ(artifact.value().hot_rows.size(), 2u);
  EXPECT_TRUE(artifact.value().s.empty());
  auto session = ScoringSession::FromArtifact(std::move(artifact).value());
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  EXPECT_EQ(session.value().backend(), ScoringSession::Backend::kQuantized);

  auto sharded =
      DeserializeModelArtifact(ValidQuantizedShardedArtifactBytes());
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  EXPECT_TRUE(sharded.value().has_shards);
  EXPECT_TRUE(sharded.value().shards.IsQuantized());
  EXPECT_TRUE(sharded.value().shards.has_quantized_boundary());
  auto sharded_session =
      ScoringSession::FromArtifact(std::move(sharded).value());
  ASSERT_TRUE(sharded_session.ok()) << sharded_session.status().ToString();
  EXPECT_TRUE(sharded_session.value().IsQuantized());
}

TEST(QuantizedArtifactRobustnessTest, EveryTruncationFailsCleanly) {
  for (const std::string& bytes : {ValidQuantizedArtifactBytes(),
                                   ValidQuantizedShardedArtifactBytes()}) {
    for (std::size_t len = 0; len < bytes.size(); ++len) {
      const auto result = DeserializeModelArtifact(bytes.substr(0, len));
      ASSERT_FALSE(result.ok()) << "prefix of " << len << " bytes parsed";
      EXPECT_FALSE(result.status().message().empty());
    }
  }
}

TEST(QuantizedArtifactRobustnessTest, EveryBitFlipIsHandledWithoutCrashing) {
  for (const std::string& bytes : {ValidQuantizedArtifactBytes(),
                                   ValidQuantizedShardedArtifactBytes()}) {
    std::size_t rejected = 0;
    for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
      std::string corrupt = bytes;
      corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x40);
      const auto result = DeserializeModelArtifact(corrupt);
      if (!result.ok()) {
        ++rejected;
        EXPECT_FALSE(result.status().message().empty());
      }
    }
    EXPECT_GT(rejected, bytes.size() * 9 / 10);
  }
}

TEST(QuantizedArtifactRobustnessTest, OldReaderSkipsQuantizedSections) {
  // A reader that knows neither the quantized-scores nor the hot-cache
  // id walks both sections cleanly (CRCs verified) and then reports the
  // missing score matrix — never garbage.
  const std::string patched =
      PatchSectionId(PatchSectionId(ValidQuantizedArtifactBytes(),
                                    kQuantizedScoresSectionId, 98),
                     kHotCacheSectionId, 97);
  const auto result = DeserializeModelArtifact(patched);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("required section"),
            std::string::npos);

  // Skipping ONLY the hot cache still serves the quantized payload —
  // the cache is an optimization, not a dependency.
  const std::string no_cache =
      PatchSectionId(ValidQuantizedArtifactBytes(), kHotCacheSectionId, 97);
  auto artifact = DeserializeModelArtifact(no_cache);
  ASSERT_TRUE(artifact.ok()) << artifact.status().ToString();
  EXPECT_TRUE(artifact.value().has_quantized_s);
  EXPECT_FALSE(artifact.value().has_hot_rows);
  EXPECT_TRUE(
      ScoringSession::FromArtifact(std::move(artifact).value()).ok());
}

TEST(QuantizedArtifactRobustnessTest,
     CorruptScaleWithValidChecksumIsRejected) {
  // QuantizedMatrix payload: bits (1) + rows (8) + cols (8) + offsets
  // (4·8) puts the scale vector at offset 49. A negative or non-finite
  // scale with a RECOMPUTED CRC must be caught by the parameter
  // validation — mis-dequantizing would serve garbage silently.
  const std::string bytes = ValidQuantizedArtifactBytes();
  const std::size_t scale_offset = 1 + 8 + 8 + 4 * 8;
  for (double bad : {-2.5, std::numeric_limits<double>::quiet_NaN(),
                     std::numeric_limits<double>::infinity()}) {
    const std::string corrupt = PatchPayloadWithValidCrc(
        bytes, kQuantizedScoresSectionId, scale_offset, &bad, sizeof(bad));
    const auto result = DeserializeModelArtifact(corrupt);
    ASSERT_FALSE(result.ok()) << "scale " << bad << " accepted";
    EXPECT_EQ(result.status().code(), StatusCode::kIoError);
    EXPECT_NE(result.status().message().find("scale"), std::string::npos)
        << result.status().ToString();
  }
}

TEST(QuantizedArtifactRobustnessTest,
     CorruptBoundaryScaleWithValidChecksumIsRejected) {
  // QuantizedSymmetricCsr payload: bits (1) + rows (8) + upper nnz (8)
  // + offsets (6·8) puts the boundary scale vector at offset 65.
  const std::string bytes = ValidQuantizedShardedArtifactBytes();
  const double bad = -1.0;
  const std::string corrupt =
      PatchPayloadWithValidCrc(bytes, kQuantizedBoundarySectionId,
                               1 + 8 + 8 + 6 * 8, &bad, sizeof(bad));
  const auto result = DeserializeModelArtifact(corrupt);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("scale"), std::string::npos)
      << result.status().ToString();
}

TEST(QuantizedArtifactRobustnessTest,
     CorruptHotCacheWithValidChecksumIsRejected) {
  // Hot-cache payload: count (8) + user (4) + complete (1) + entry
  // count (8) + v (4) puts the first entry's float-oracle score at
  // offset 25. Breaking the descending serve order (or planting a
  // non-finite score) with a valid CRC must reject the cache.
  const std::string bytes = ValidQuantizedArtifactBytes();
  const std::size_t score_offset = 8 + 4 + 1 + 8 + 4;
  for (double bad : {-1e300, std::numeric_limits<double>::quiet_NaN()}) {
    const std::string corrupt = PatchPayloadWithValidCrc(
        bytes, kHotCacheSectionId, score_offset, &bad, sizeof(bad));
    const auto result = DeserializeModelArtifact(corrupt);
    ASSERT_FALSE(result.ok()) << "hot-cache score " << bad << " accepted";
    EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  }
}

TEST(QuantizedArtifactRobustnessTest, QuantizedShardTruncationInsideBlock) {
  // A flip inside a quantized shard's code block trips that section's
  // CRC specifically.
  const std::string bytes = ValidQuantizedShardedArtifactBytes();
  const auto [begin, size] =
      FindSectionPayload(bytes, kQuantizedShardSectionId);
  ASSERT_NE(begin, std::string::npos);
  std::string corrupt = bytes;
  corrupt[begin + size - 1] =
      static_cast<char>(corrupt[begin + size - 1] ^ 0xFF);
  const auto result = DeserializeModelArtifact(corrupt);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("checksum mismatch"),
            std::string::npos);
}

// ---------------------------------------------------------------------
// Backward-compat golden fixtures: tiny artifacts of every backend are
// committed under tests/data/ and must keep loading bit-exactly. Run
// with SLAMPRED_WRITE_GOLDEN=1 to regenerate after an INTENTIONAL
// format change (and bump kModelArtifactFormatVersion when doing so).

#ifndef SLAMPRED_TEST_DATA_DIR
#define SLAMPRED_TEST_DATA_DIR "tests/data"
#endif

std::string GoldenPath(const char* name) {
  return std::string(SLAMPRED_TEST_DATA_DIR) + "/" + name;
}

TEST(GoldenArtifactTest, WriterRegeneratesFixtures) {
  if (std::getenv("SLAMPRED_WRITE_GOLDEN") == nullptr) {
    GTEST_SKIP() << "set SLAMPRED_WRITE_GOLDEN=1 to regenerate fixtures";
  }
  ASSERT_TRUE(WriteStringToFile(ValidArtifactBytes(),
                                GoldenPath("golden_dense_v1.slpmodel"))
                  .ok());
  ASSERT_TRUE(WriteStringToFile(ValidFactoredArtifactBytes(),
                                GoldenPath("golden_factored_v1.slpmodel"))
                  .ok());
  ASSERT_TRUE(
      WriteStringToFile(SerializeModelArtifact(ValidShardedArtifact()),
                        GoldenPath("golden_sharded_v1.slpmodel"))
          .ok());
  ASSERT_TRUE(WriteStringToFile(ValidQuantizedArtifactBytes(),
                                GoldenPath("golden_quantized_u8_v1.slpmodel"))
                  .ok());
}

TEST(GoldenArtifactTest, DenseFixtureLoadsBitExact) {
  auto bytes = ReadFileToString(GoldenPath("golden_dense_v1.slpmodel"));
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  auto artifact = DeserializeModelArtifact(bytes.value());
  ASSERT_TRUE(artifact.ok()) << artifact.status().ToString();
  // The committed fixture is exactly what today's writer produces.
  EXPECT_EQ(bytes.value(), ValidArtifactBytes());
  EXPECT_EQ(artifact.value().s, ValidArtifact().s);
  auto session = ScoringSession::FromArtifact(std::move(artifact).value());
  ASSERT_TRUE(session.ok());
  EXPECT_EQ(session.value().ScoreUnchecked(1, 2), 0.25 + 0.25);
}

TEST(GoldenArtifactTest, FactoredFixtureLoadsBitExact) {
  auto bytes = ReadFileToString(GoldenPath("golden_factored_v1.slpmodel"));
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  EXPECT_EQ(bytes.value(), ValidFactoredArtifactBytes());
  auto artifact = DeserializeModelArtifact(bytes.value());
  ASSERT_TRUE(artifact.ok()) << artifact.status().ToString();
  EXPECT_TRUE(artifact.value().has_low_rank);
  auto session = ScoringSession::FromArtifact(std::move(artifact).value());
  ASSERT_TRUE(session.ok());
  EXPECT_EQ(session.value().backend(), ScoringSession::Backend::kFactored);
}

TEST(GoldenArtifactTest, ShardedFixtureLoadsBitExact) {
  auto bytes = ReadFileToString(GoldenPath("golden_sharded_v1.slpmodel"));
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  EXPECT_EQ(bytes.value(), SerializeModelArtifact(ValidShardedArtifact()));
  auto artifact = DeserializeModelArtifact(bytes.value());
  ASSERT_TRUE(artifact.ok()) << artifact.status().ToString();
  ASSERT_TRUE(artifact.value().has_shards);
  const ModelArtifact oracle = ValidShardedArtifact();
  for (std::size_t u = 0; u < 6; ++u) {
    for (std::size_t v = 0; v < 6; ++v) {
      EXPECT_EQ(artifact.value().shards.At(u, v), oracle.shards.At(u, v));
    }
  }
}

TEST(GoldenArtifactTest, QuantizedFixtureLoadsBitExactAndReserializes) {
  auto bytes = ReadFileToString(GoldenPath("golden_quantized_u8_v1.slpmodel"));
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  // Today's quantizer reproduces the committed bytes exactly...
  EXPECT_EQ(bytes.value(), ValidQuantizedArtifactBytes());
  auto artifact = DeserializeModelArtifact(bytes.value());
  ASSERT_TRUE(artifact.ok()) << artifact.status().ToString();
  // ...and a quantized artifact written today re-loads bit-exact:
  // parse → re-serialize is the identity on the byte stream.
  EXPECT_EQ(SerializeModelArtifact(artifact.value()), bytes.value());
  auto session = ScoringSession::FromArtifact(std::move(artifact).value());
  ASSERT_TRUE(session.ok());
  EXPECT_EQ(session.value().backend(), ScoringSession::Backend::kQuantized);
}

}  // namespace
}  // namespace slampred
