// Tests for the baseline predictors: PA/CN/JC, SCAN and PL.

#include <gtest/gtest.h>

#include "baselines/pair_features.h"
#include "baselines/pl.h"
#include "baselines/scan.h"
#include "baselines/unsupervised.h"
#include "datagen/aligned_generator.h"
#include "eval/link_split.h"
#include "eval/metrics.h"
#include "features/feature_tensor.h"

namespace slampred {
namespace {

SocialGraph Fixture() {
  // Triangle 0-1-2 plus 1-3, 2-3; node 4 isolated.
  SocialGraph g(5);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(1, 2);
  g.AddEdge(1, 3);
  g.AddEdge(2, 3);
  return g;
}

TEST(UnsupervisedTest, PaScores) {
  PaPredictor pa(Fixture());
  auto scores = pa.ScorePairs({{0, 1}, {0, 4}, {1, 2}});
  ASSERT_TRUE(scores.ok());
  EXPECT_DOUBLE_EQ(scores.value()[0], 6.0);  // 2 * 3.
  EXPECT_DOUBLE_EQ(scores.value()[1], 0.0);  // Isolated node.
  EXPECT_DOUBLE_EQ(scores.value()[2], 9.0);  // 3 * 3.
  EXPECT_EQ(pa.name(), "PA");
}

TEST(UnsupervisedTest, CnScores) {
  CnPredictor cn(Fixture());
  auto scores = cn.ScorePairs({{0, 3}, {0, 4}});
  ASSERT_TRUE(scores.ok());
  EXPECT_DOUBLE_EQ(scores.value()[0], 2.0);
  EXPECT_DOUBLE_EQ(scores.value()[1], 0.0);
  EXPECT_EQ(cn.name(), "CN");
}

TEST(UnsupervisedTest, JcScores) {
  JcPredictor jc(Fixture());
  auto scores = jc.ScorePairs({{0, 3}, {0, 4}});
  ASSERT_TRUE(scores.ok());
  EXPECT_DOUBLE_EQ(scores.value()[0], 1.0);  // Identical neighborhoods.
  EXPECT_DOUBLE_EQ(scores.value()[1], 0.0);
  EXPECT_EQ(jc.name(), "JC");
}

// End-to-end fixture for the trained baselines.
class TrainedBaselineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    AlignedGeneratorConfig config = DefaultExperimentConfig(23);
    config.population.num_personas = 120;
    auto gen = GenerateAligned(config);
    ASSERT_TRUE(gen.ok());
    generated_ = std::make_unique<GeneratedAligned>(std::move(gen).value());
    full_graph_ = SocialGraph::FromHeterogeneousNetwork(
        generated_->networks.target());
    Rng rng(3);
    auto folds = SplitLinks(full_graph_, 5, rng);
    ASSERT_TRUE(folds.ok());
    test_edges_ = folds.value()[0].test_edges;
    train_graph_ = full_graph_.WithEdgesRemoved(test_edges_);
    auto eval = BuildEvaluationSet(full_graph_, test_edges_, 4.0, rng);
    ASSERT_TRUE(eval.ok());
    eval_ = std::make_unique<EvaluationSet>(std::move(eval).value());

    tensors_.push_back(BuildSparseFeatureTensor(generated_->networks.target(),
                                                train_graph_));
    const SocialGraph source_graph = SocialGraph::FromHeterogeneousNetwork(
        generated_->networks.source(0));
    tensors_.push_back(BuildSparseFeatureTensor(generated_->networks.source(0),
                                                source_graph));
  }

  double AucOf(const LinkPredictor& model) {
    auto scores = model.ScorePairs(eval_->pairs);
    EXPECT_TRUE(scores.ok());
    return ComputeAuc(scores.value(), eval_->labels).value_or(0.0);
  }

  std::unique_ptr<GeneratedAligned> generated_;
  SocialGraph full_graph_{0};
  SocialGraph train_graph_{0};
  std::vector<UserPair> test_edges_;
  std::unique_ptr<EvaluationSet> eval_;
  std::vector<SparseTensor3> tensors_;
};

TEST_F(TrainedBaselineTest, PairFeatureWidths) {
  EXPECT_EQ(PairFeatureWidth(tensors_, FeatureSource::kTargetOnly),
            tensors_[0].dim0());
  EXPECT_EQ(PairFeatureWidth(tensors_, FeatureSource::kSourceOnly),
            tensors_[1].dim0());
  EXPECT_EQ(PairFeatureWidth(tensors_, FeatureSource::kBoth),
            tensors_[0].dim0() + tensors_[1].dim0());
}

TEST_F(TrainedBaselineTest, PairFeatureAnchorMapping) {
  const AnchorLinks& anchors = generated_->networks.anchors(0);
  // Find an anchored pair and an unanchored user.
  std::size_t anchored_u = 0;
  std::size_t anchored_v = 0;
  bool found = false;
  for (std::size_t u = 0; u < full_graph_.num_users() && !found; ++u) {
    for (std::size_t v = u + 1; v < full_graph_.num_users(); ++v) {
      if (anchors.RightOf(u).has_value() && anchors.RightOf(v).has_value()) {
        anchored_u = u;
        anchored_v = v;
        found = true;
        break;
      }
    }
  }
  ASSERT_TRUE(found);
  const Vector feats =
      BuildPairFeatures(generated_->networks, tensors_,
                        FeatureSource::kSourceOnly, {anchored_u, anchored_v});
  const Vector expected = tensors_[1].Fiber(
      std::min(*anchors.RightOf(anchored_u), *anchors.RightOf(anchored_v)),
      std::max(*anchors.RightOf(anchored_u), *anchors.RightOf(anchored_v)));
  EXPECT_EQ(feats, expected);
}

TEST_F(TrainedBaselineTest, ScanBeatsRandom) {
  Rng rng(5);
  Scan scan;
  ASSERT_TRUE(scan
                  .Fit(generated_->networks, train_graph_, tensors_,
                       test_edges_, rng)
                  .ok());
  EXPECT_GT(AucOf(scan), 0.6);
  EXPECT_EQ(scan.name(), "SCAN");
}

TEST_F(TrainedBaselineTest, ScanVariantsHaveNames) {
  ScanOptions t_options;
  t_options.feature_source = FeatureSource::kTargetOnly;
  EXPECT_EQ(Scan(t_options).name(), "SCAN-T");
  ScanOptions s_options;
  s_options.feature_source = FeatureSource::kSourceOnly;
  EXPECT_EQ(Scan(s_options).name(), "SCAN-S");
}

TEST_F(TrainedBaselineTest, ScanScoreBeforeFitFails) {
  Scan scan;
  EXPECT_FALSE(scan.ScorePairs({{0, 1}}).ok());
}

TEST_F(TrainedBaselineTest, PlBeatsRandom) {
  Rng rng(7);
  Pl pl;
  ASSERT_TRUE(
      pl.Fit(generated_->networks, train_graph_, tensors_, test_edges_, rng)
          .ok());
  EXPECT_GT(AucOf(pl), 0.6);
  EXPECT_EQ(pl.name(), "PL");
}

TEST_F(TrainedBaselineTest, PlVariantNames) {
  PlOptions t;
  t.feature_source = FeatureSource::kTargetOnly;
  EXPECT_EQ(Pl(t).name(), "PL-T");
  PlOptions s;
  s.feature_source = FeatureSource::kSourceOnly;
  EXPECT_EQ(Pl(s).name(), "PL-S");
}

TEST_F(TrainedBaselineTest, PlScoreBeforeFitFails) {
  Pl pl;
  EXPECT_FALSE(pl.ScorePairs({{0, 1}}).ok());
}

TEST_F(TrainedBaselineTest, TargetOnlyVariantIgnoresAnchors) {
  // SCAN-T must produce identical scores whether or not anchors exist.
  Rng rng_a(11);
  ScanOptions options;
  options.feature_source = FeatureSource::kTargetOnly;
  Scan with_anchors(options);
  ASSERT_TRUE(with_anchors
                  .Fit(generated_->networks, train_graph_, tensors_,
                       test_edges_, rng_a)
                  .ok());

  AlignedNetworks unaligned(generated_->networks.target());
  AnchorLinks empty(generated_->networks.target().NumUsers(),
                    generated_->networks.source(0).NumUsers());
  unaligned.AddSource(generated_->networks.source(0), std::move(empty));
  Rng rng_b(11);
  Scan without_anchors(options);
  ASSERT_TRUE(without_anchors
                  .Fit(unaligned, train_graph_, tensors_, test_edges_, rng_b)
                  .ok());

  auto a = with_anchors.ScorePairs(eval_->pairs);
  auto b = without_anchors.ScorePairs(eval_->pairs);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (std::size_t i = 0; i < a.value().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.value()[i], b.value()[i]);
  }
}

TEST_F(TrainedBaselineTest, FitRejectsWrongTensorCount) {
  Rng rng(13);
  Scan scan;
  std::vector<SparseTensor3> only_target = {tensors_[0]};
  EXPECT_FALSE(scan
                   .Fit(generated_->networks, train_graph_, only_target,
                        test_edges_, rng)
                   .ok());
  Pl pl;
  EXPECT_FALSE(
      pl.Fit(generated_->networks, train_graph_, only_target, test_edges_,
             rng)
          .ok());
}

}  // namespace
}  // namespace slampred
