// Serving-side contract of the quantized artifacts and the precomputed
// hot-user cache (DESIGN.md §15), verified against the float oracle:
//
//   * a quantized session serves through Score/ScorePairs/TopK with the
//     kQuantized backend, bit-consistent with its own dequantized
//     payload;
//   * the quantized top-K order never reorders pairs whose float scores
//     differ by more than one code step, and breaks exact float ties
//     identically (ascending v);
//   * known-link exclusion holds on the quantized path;
//   * every precomputed hot row is bit-equal — candidates AND scores —
//     to the order a float session lazily builds, is served as tier
//     `cached` without touching the quantized payload, and falls back
//     to the full path when its prefix cannot cover a request;
//   * hot-swapping between float and quantized artifacts under load
//     always answers from a consistent snapshot of the version it
//     reports.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/model_artifact.h"
#include "core/scoring_session.h"
#include "linalg/csr_matrix.h"
#include "linalg/matrix.h"
#include "serve/artifact_quantizer.h"
#include "serve/model_registry.h"
#include "serve/scoring_kernels.h"
#include "serve/topk_index.h"

namespace slampred {
namespace {

std::uint64_t NextRandom(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

// A dense float artifact with an n×n random score matrix. Some exact
// ties are planted (every row repeats its first score at column n−1)
// so tie-breaking is actually exercised.
ModelArtifact DenseArtifact(std::size_t n, std::uint64_t seed) {
  ModelArtifact artifact;
  artifact.s = Matrix(n, n);
  std::uint64_t state = seed;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      artifact.s(i, j) =
          -1.0 + 2.0 * static_cast<double>(NextRandom(state) >> 11) * 0x1.0p-53;
    }
    artifact.s(i, n - 1) = artifact.s(i, 0);  // Planted exact tie.
  }
  return artifact;
}

// A sharded float artifact: two symmetric dense blocks plus a
// symmetric cross-shard boundary CSR.
ModelArtifact ShardedArtifact(std::size_t n, std::uint64_t seed) {
  const std::size_t half = n / 2;
  std::uint64_t state = seed;
  auto random_symmetric = [&](std::size_t m) {
    Matrix block(m, m);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = i; j < m; ++j) {
        const double v =
            static_cast<double>(NextRandom(state) >> 11) * 0x1.0p-53;
        block(i, j) = v;
        block(j, i) = v;
      }
    }
    return block;
  };
  std::vector<ModelShard> shards(2);
  for (std::size_t c = 0; c < 2; ++c) {
    const std::size_t begin = c * half;
    const std::size_t size = c == 0 ? half : n - half;
    for (std::size_t i = 0; i < size; ++i) {
      shards[c].users.push_back(static_cast<std::uint32_t>(begin + i));
    }
    shards[c].s = random_symmetric(size);
  }
  Matrix boundary(n, n);
  for (std::size_t u = 0; u < half; ++u) {
    for (std::size_t v = half; v < n; ++v) {
      if (NextRandom(state) % 3 == 0) {
        const double score =
            static_cast<double>(NextRandom(state) >> 11) * 0x1.0p-53;
        boundary(u, v) = score;
        boundary(v, u) = score;
      }
    }
  }
  ModelArtifact artifact;
  auto sharded = ShardedScores::Create(std::move(shards),
                                       CsrMatrix::FromDense(boundary), n);
  EXPECT_TRUE(sharded.ok()) << sharded.status().ToString();
  artifact.shards = std::move(sharded).value();
  artifact.has_shards = true;
  return artifact;
}

Result<ModelArtifact> Quantize(const ModelArtifact& artifact,
                               const ArtifactQuantizerOptions& options) {
  ModelArtifact copy = DeserializeModelArtifact(
                           SerializeModelArtifact(artifact))
                           .value();
  return QuantizeModelArtifact(std::move(copy), options);
}

TEST(QuantizedServingTest, QuantizedBackendServesConsistently) {
  const ModelArtifact float_artifact = DenseArtifact(16, 3);
  ArtifactQuantizerOptions options;
  options.bits = QuantizationBits::kU16;
  auto quantized = Quantize(float_artifact, options);
  ASSERT_TRUE(quantized.ok()) << quantized.status().ToString();
  auto session = ScoringSession::FromArtifact(std::move(quantized).value());
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  EXPECT_EQ(session.value().backend(), ScoringSession::Backend::kQuantized);
  EXPECT_TRUE(session.value().IsQuantized());
  EXPECT_EQ(session.value().num_users(), 16u);

  // Score, ScorePairs and RowScores all read the same dequantization.
  const auto& q = session.value().artifact().quantized_s;
  std::vector<UserPair> pairs;
  std::vector<double> row;
  for (std::size_t u = 0; u < 16; ++u) {
    session.value().RowScores(u, row);
    for (std::size_t v = 0; v < 16; ++v) {
      EXPECT_EQ(session.value().Score(u, v).value(), q.At(u, v));
      EXPECT_EQ(row[v], q.At(u, v));
      pairs.push_back({u, v});
    }
  }
  auto scores = session.value().ScorePairs(pairs);
  ASSERT_TRUE(scores.ok());
  for (std::size_t p = 0; p < pairs.size(); ++p) {
    EXPECT_EQ(scores.value()[p], q.At(pairs[p].u, pairs[p].v));
  }
}

TEST(QuantizedServingTest, TopKOrderDisplacementBoundedByOneCodeStep) {
  const std::size_t n = 32;
  const ModelArtifact float_artifact = DenseArtifact(n, 7);
  auto float_session = ScoringSession::FromArtifact(
      DeserializeModelArtifact(SerializeModelArtifact(float_artifact))
          .value());
  ASSERT_TRUE(float_session.ok());
  for (QuantizationBits bits :
       {QuantizationBits::kU8, QuantizationBits::kU16}) {
    ArtifactQuantizerOptions options;
    options.bits = bits;
    auto quantized = Quantize(float_artifact, options);
    ASSERT_TRUE(quantized.ok());
    auto q_session = ScoringSession::FromArtifact(std::move(quantized).value());
    ASSERT_TRUE(q_session.ok());
    const auto& q = q_session.value().artifact().quantized_s;
    for (std::size_t u = 0; u < n; ++u) {
      const TopKRowOrder float_order =
          BuildTopKRowOrder(float_session.value(), u);
      const TopKRowOrder q_order = BuildTopKRowOrder(q_session.value(), u);
      ASSERT_EQ(float_order.size(), n - 1);
      ASSERT_EQ(q_order.size(), n - 1);
      std::vector<std::size_t> q_rank(n, 0);
      for (std::size_t r = 0; r < q_order.size(); ++r) q_rank[q_order[r]] = r;
      const double step = q.scales()[u];
      for (std::size_t a = 0; a < float_order.size(); ++a) {
        for (std::size_t b = a + 1; b < float_order.size(); ++b) {
          const std::uint32_t va = float_order[a];
          const std::uint32_t vb = float_order[b];
          const double sa = float_artifact.s(u, va);
          const double sb = float_artifact.s(u, vb);
          if (sa - sb > step * (1.0 + 1e-9)) {
            // Separated by more than one code step: order must hold.
            EXPECT_LT(q_rank[va], q_rank[vb])
                << "u=" << u << " va=" << va << " vb=" << vb;
          } else if (sa == sb) {
            // Exact float ties quantize to the same code, and both
            // orders break them by ascending v — identically.
            EXPECT_EQ(q.At(u, va), q.At(u, vb));
            EXPECT_EQ(q_rank[va] < q_rank[vb], va < vb);
            EXPECT_EQ(a < b, va < vb);
          }
        }
      }
    }
  }
}

CsrMatrix KnownLinks(std::size_t n) {
  Matrix links(n, n);
  links(0, 1) = 1.0;
  links(1, 0) = 1.0;
  links(0, 2) = 1.0;
  links(2, 0) = 1.0;
  return CsrMatrix::FromDense(links);
}

TEST(QuantizedServingTest, KnownLinkExclusionOnQuantizedModel) {
  const std::size_t n = 16;
  ArtifactQuantizerOptions options;
  auto quantized = Quantize(DenseArtifact(n, 11), options);
  ASSERT_TRUE(quantized.ok());
  ModelRegistry registry;
  ASSERT_TRUE(
      registry.Swap(std::move(quantized).value(), KnownLinks(n)).ok());
  const auto model = registry.Acquire();
  ASSERT_NE(model, nullptr);
  EXPECT_TRUE(model->session.IsQuantized());
  auto excluded = TopKOnModel(*model, 0, n - 1, /*exclude_known_links=*/true);
  ASSERT_TRUE(excluded.ok());
  EXPECT_EQ(excluded.value().size(), n - 3);  // Minus self, 1 and 2.
  for (const TopKEntry& e : excluded.value()) {
    EXPECT_NE(e.v, 1u);
    EXPECT_NE(e.v, 2u);
  }
  auto full = TopKOnModel(*model, 0, n - 1, /*exclude_known_links=*/false);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full.value().size(), n - 1);
}

TEST(QuantizedServingTest, HotRowsBitEqualToLazilyBuiltFloatRows) {
  const std::size_t n = 24;
  const ModelArtifact float_artifact = DenseArtifact(n, 13);
  auto float_session = ScoringSession::FromArtifact(
      DeserializeModelArtifact(SerializeModelArtifact(float_artifact))
          .value());
  ASSERT_TRUE(float_session.ok());

  ArtifactQuantizerOptions options;
  options.bits = QuantizationBits::kU8;
  options.hot_user_ids = {0, 3, 7, 200};  // 200 is out of range: skipped.
  options.hot_row_entries = 8;            // Incomplete prefixes (n−1 = 23).
  ArtifactQuantizeReport report;
  ModelArtifact copy =
      DeserializeModelArtifact(SerializeModelArtifact(float_artifact)).value();
  auto quantized = QuantizeModelArtifact(std::move(copy), options, &report);
  ASSERT_TRUE(quantized.ok()) << quantized.status().ToString();
  EXPECT_EQ(report.hot_rows, 3u);
  EXPECT_GT(report.float_bytes, report.quantized_bytes);

  ModelRegistry registry;
  ASSERT_TRUE(registry.Swap(std::move(quantized).value()).ok());
  const auto model = registry.Acquire();
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->hot_rows.size(), 3u);
  EXPECT_EQ(model->hot_rows.Find(200), nullptr);

  for (std::uint32_t u : {0u, 3u, 7u}) {
    const HotRow* row = model->hot_rows.Find(u);
    ASSERT_NE(row, nullptr) << "user " << u;
    EXPECT_FALSE(row->complete);
    ASSERT_EQ(row->entries.size(), 8u);
    // The stored prefix is the float session's lazily-built order with
    // the float scores — bit-equal, never the quantized payload.
    const TopKRowOrder oracle = BuildTopKRowOrder(float_session.value(), u);
    for (std::size_t r = 0; r < row->entries.size(); ++r) {
      EXPECT_EQ(row->entries[r].v, oracle[r]);
      EXPECT_EQ(row->entries[r].score,
                float_session.value().ScoreUnchecked(u, oracle[r]));
    }
    // Serving k within the prefix answers from the cache (tier cached)
    // with those exact float scores.
    ServeTier tier = ServeTier::kFull;
    auto topk = TopKOnModel(*model, u, 5, /*exclude_known_links=*/false,
                            &tier);
    ASSERT_TRUE(topk.ok());
    EXPECT_EQ(tier, ServeTier::kCached);
    ASSERT_EQ(topk.value().size(), 5u);
    for (std::size_t r = 0; r < 5; ++r) {
      EXPECT_EQ(topk.value()[r].v, oracle[r]);
      EXPECT_EQ(topk.value()[r].score,
                float_session.value().ScoreUnchecked(u, oracle[r]));
    }
  }
  EXPECT_EQ(model->hot_hits.load(), 3u);

  // A request the prefix cannot cover falls back to the full path.
  ServeTier tier = ServeTier::kCached;
  auto large = TopKOnModel(*model, 3, 20, /*exclude_known_links=*/false,
                           &tier);
  ASSERT_TRUE(large.ok());
  EXPECT_EQ(tier, ServeTier::kFull);
  EXPECT_EQ(large.value().size(), 20u);
  // A non-hot user is always the full path.
  tier = ServeTier::kCached;
  ASSERT_TRUE(TopKOnModel(*model, 5, 4, false, &tier).ok());
  EXPECT_EQ(tier, ServeTier::kFull);
}

TEST(QuantizedServingTest, CompleteHotRowServesAnyK) {
  const std::size_t n = 12;
  ArtifactQuantizerOptions options;
  options.hot_user_ids = {2};
  options.hot_row_entries = 64;  // > n−1: the full order fits.
  auto quantized = Quantize(DenseArtifact(n, 17), options);
  ASSERT_TRUE(quantized.ok());
  ModelRegistry registry;
  ASSERT_TRUE(registry.Swap(std::move(quantized).value()).ok());
  const auto model = registry.Acquire();
  const HotRow* row = model->hot_rows.Find(2);
  ASSERT_NE(row, nullptr);
  EXPECT_TRUE(row->complete);
  EXPECT_EQ(row->entries.size(), n - 1);
  ServeTier tier = ServeTier::kFull;
  auto topk = TopKOnModel(*model, 2, n + 50, false, &tier);
  ASSERT_TRUE(topk.ok());
  EXPECT_EQ(tier, ServeTier::kCached);
  EXPECT_EQ(topk.value().size(), n - 1);
}

TEST(QuantizedServingTest, RegistryPrecomputesConfiguredHotUsers) {
  const std::size_t n = 16;
  ArtifactQuantizerOptions options;  // No artifact-carried hot rows.
  auto quantized = Quantize(DenseArtifact(n, 19), options);
  ASSERT_TRUE(quantized.ok());
  ModelRegistryOptions registry_options;
  registry_options.hot_users = {4, 9, 99};  // 99 out of range: skipped.
  registry_options.hot_row_entries = 32;
  ModelRegistry registry(registry_options);
  ASSERT_TRUE(registry.Swap(std::move(quantized).value()).ok());
  const auto model = registry.Acquire();
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->hot_rows.size(), 2u);
  for (std::uint32_t u : {4u, 9u}) {
    const HotRow* row = model->hot_rows.Find(u);
    ASSERT_NE(row, nullptr);
    EXPECT_TRUE(row->complete);
    // Registry-built rows snapshot the PUBLISHED (quantized) session.
    const TopKRowOrder oracle = BuildTopKRowOrder(model->session, u);
    ASSERT_EQ(row->entries.size(), oracle.size());
    for (std::size_t r = 0; r < oracle.size(); ++r) {
      EXPECT_EQ(row->entries[r].v, oracle[r]);
      EXPECT_EQ(row->entries[r].score,
                model->session.ScoreUnchecked(u, oracle[r]));
    }
    ServeTier tier = ServeTier::kFull;
    ASSERT_TRUE(TopKOnModel(*model, u, 10, false, &tier).ok());
    EXPECT_EQ(tier, ServeTier::kCached);
  }
}

TEST(QuantizedServingTest, QuantizedShardedArtifactServes) {
  const std::size_t n = 14;
  const ModelArtifact float_artifact = ShardedArtifact(n, 23);
  auto float_session = ScoringSession::FromArtifact(
      DeserializeModelArtifact(SerializeModelArtifact(float_artifact))
          .value());
  ASSERT_TRUE(float_session.ok());
  ArtifactQuantizerOptions options;
  options.bits = QuantizationBits::kU16;
  ArtifactQuantizeReport report;
  ModelArtifact copy =
      DeserializeModelArtifact(SerializeModelArtifact(float_artifact)).value();
  auto quantized = QuantizeModelArtifact(std::move(copy), options, &report);
  ASSERT_TRUE(quantized.ok()) << quantized.status().ToString();
  EXPECT_GT(report.float_bytes, report.quantized_bytes);
  auto session = ScoringSession::FromArtifact(std::move(quantized).value());
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  EXPECT_EQ(session.value().backend(), ScoringSession::Backend::kSharded);
  EXPECT_TRUE(session.value().IsQuantized());
  // Every pair stays within one u16 code step of the float oracle, and
  // the served matrix stays exactly symmetric.
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = 0; v < n; ++v) {
      const double f = float_session.value().ScoreUnchecked(u, v);
      const double q = session.value().ScoreUnchecked(u, v);
      EXPECT_EQ(q, session.value().ScoreUnchecked(v, u));
      EXPECT_LE(std::fabs(f - q), 1.0 / 65535.0 + 1e-9)
          << "(" << u << ", " << v << ")";
    }
  }
}

TEST(QuantizedServingTest, QuantizingTwiceIsRejected) {
  auto quantized = Quantize(DenseArtifact(8, 29), {});
  ASSERT_TRUE(quantized.ok());
  const auto again = QuantizeModelArtifact(std::move(quantized).value(), {});
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kFailedPrecondition);
}

TEST(QuantizedServingTest, SwapUnderLoadServesConsistentSnapshots) {
  const std::size_t n = 16;
  const ModelArtifact float_artifact = DenseArtifact(n, 31);
  ArtifactQuantizerOptions options;
  options.hot_user_ids = {0, 1, 2, 3};
  options.hot_row_entries = 8;
  auto quantized = Quantize(float_artifact, options);
  ASSERT_TRUE(quantized.ok());
  const ModelArtifact quantized_artifact = std::move(quantized).value();

  ModelRegistry registry;
  ASSERT_TRUE(
      registry
          .Swap(DeserializeModelArtifact(
                    SerializeModelArtifact(float_artifact))
                    .value())
          .ok());

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> failures{0};
  std::thread worker([&] {
    std::uint64_t state = 97;
    while (!stop.load(std::memory_order_relaxed)) {
      const auto model = registry.Acquire();
      const std::size_t u = NextRandom(state) % n;
      ServeTier tier = ServeTier::kFull;
      auto topk = TopKOnModel(*model, u, 6, false, &tier);
      if (!topk.ok()) {
        ++failures;
        continue;
      }
      // Whatever version answered, its entries must be self-consistent
      // with that snapshot: full-tier scores match the snapshot's own
      // session, cached-tier scores match its hot-row prefix.
      for (std::size_t r = 0; r < topk.value().size(); ++r) {
        const TopKEntry& e = topk.value()[r];
        if (tier == ServeTier::kFull) {
          if (e.score != model->session.ScoreUnchecked(u, e.v)) ++failures;
        } else {
          const HotRow* row = model->hot_rows.Find(
              static_cast<std::uint32_t>(u));
          if (row == nullptr || row->entries[r].v != e.v ||
              row->entries[r].score != e.score) {
            ++failures;
          }
        }
      }
    }
  });
  for (int swap = 0; swap < 20; ++swap) {
    const ModelArtifact& source =
        swap % 2 == 0 ? quantized_artifact : float_artifact;
    ASSERT_TRUE(
        registry
            .Swap(DeserializeModelArtifact(SerializeModelArtifact(source))
                      .value())
            .ok());
  }
  stop.store(true);
  worker.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(registry.current_version(), 21u);
  // The last swap (index 19) republished the float artifact.
  EXPECT_FALSE(registry.Acquire()->session.IsQuantized());
}

}  // namespace
}  // namespace slampred
