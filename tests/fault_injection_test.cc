// Tests for the deterministic fault injector and for every solver
// guardrail it exercises: NaN rollback, divergence backoff, the SVD
// fallback chain, checkpoint resume, and the graph_io parse policies.

#include <cmath>

#include <gtest/gtest.h>

#include "graph/graph_io.h"
#include "optim/cccp.h"
#include "optim/forward_backward.h"
#include "optim/guardrails.h"
#include "util/fault_injection.h"

namespace slampred {
namespace {

// Tests that arm a site only make sense with the hooks compiled in
// (-DSLAMPRED_FAULT_INJECTION=ON, the default).
#if SLAMPRED_FAULT_INJECTION_ENABLED
#define SLAMPRED_REQUIRE_INJECTION()
#else
#define SLAMPRED_REQUIRE_INJECTION() \
  GTEST_SKIP() << "fault injection compiled out"
#endif

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Instance().Reset(); }
  void TearDown() override { FaultInjector::Instance().Reset(); }
};

TEST_F(FaultInjectionTest, HitCountingAndTriggerWindow) {
  SLAMPRED_REQUIRE_INJECTION();
  auto& injector = FaultInjector::Instance();
  EXPECT_EQ(injector.Hit("unarmed.site"), FaultKind::kNone);

  FaultSpec spec;
  spec.kind = FaultKind::kFailNotConverged;
  spec.trigger_after = 2;
  spec.max_triggers = 1;
  injector.Arm("site.a", spec);

  EXPECT_EQ(injector.Hit("site.a"), FaultKind::kNone);
  EXPECT_EQ(injector.Hit("site.a"), FaultKind::kNone);
  EXPECT_EQ(injector.Hit("site.a"), FaultKind::kFailNotConverged);
  EXPECT_EQ(injector.Hit("site.a"), FaultKind::kNone);  // Budget spent.
  EXPECT_EQ(injector.HitCount("site.a"), 4);
  EXPECT_EQ(injector.TriggerCount("site.a"), 1);

  injector.Disarm("site.a");
  EXPECT_EQ(injector.Hit("site.a"), FaultKind::kNone);
}

TEST_F(FaultInjectionTest, UnlimitedTriggersAndReset) {
  SLAMPRED_REQUIRE_INJECTION();
  auto& injector = FaultInjector::Instance();
  FaultSpec spec;
  spec.kind = FaultKind::kPoisonNaN;
  spec.max_triggers = -1;
  injector.Arm("site.b", spec);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(injector.Hit("site.b"), FaultKind::kPoisonNaN);
  }
  injector.Reset();
  EXPECT_EQ(injector.Hit("site.b"), FaultKind::kNone);
  // Hits are not tracked while nothing is armed (zero-overhead fast path).
  EXPECT_EQ(injector.HitCount("site.b"), 0);
  EXPECT_EQ(injector.TriggerCount("site.b"), 0);
}

TEST_F(FaultInjectionTest, EveryNFiresOnPeriodicEligibleHits) {
  SLAMPRED_REQUIRE_INJECTION();
  auto& injector = FaultInjector::Instance();
  FaultSpec spec;
  spec.kind = FaultKind::kFailIo;
  spec.every_n = 3;
  spec.max_triggers = -1;
  injector.Arm("site.n", spec);

  // Fires on exactly the 3rd, 6th, 9th, ... hit.
  for (int hit = 1; hit <= 12; ++hit) {
    const FaultKind got = injector.Hit("site.n");
    if (hit % 3 == 0) {
      EXPECT_EQ(got, FaultKind::kFailIo) << "hit " << hit;
    } else {
      EXPECT_EQ(got, FaultKind::kNone) << "hit " << hit;
    }
  }
  EXPECT_EQ(injector.HitCount("site.n"), 12);
  EXPECT_EQ(injector.TriggerCount("site.n"), 4);
}

TEST_F(FaultInjectionTest, EveryNComposesWithTriggerAfterAndMaxTriggers) {
  SLAMPRED_REQUIRE_INJECTION();
  auto& injector = FaultInjector::Instance();
  FaultSpec spec;
  spec.kind = FaultKind::kFailNumerical;
  spec.trigger_after = 2;  // Hits 1-2 pass; eligible hits start at 3.
  spec.every_n = 2;        // Fire on the 2nd, 4th, ... eligible hit.
  spec.max_triggers = 2;   // ...but only twice in total.
  injector.Arm("site.c", spec);

  // Eligible index is (hit - trigger_after): hit 4 → eligible 2 (fires),
  // hit 6 → eligible 4 (fires, budget spent), nothing afterwards.
  const FaultKind expected[] = {
      FaultKind::kNone,          FaultKind::kNone, FaultKind::kNone,
      FaultKind::kFailNumerical, FaultKind::kNone, FaultKind::kFailNumerical,
      FaultKind::kNone,          FaultKind::kNone, FaultKind::kNone,
      FaultKind::kNone};
  for (int hit = 0; hit < 10; ++hit) {
    EXPECT_EQ(injector.Hit("site.c"), expected[hit]) << "hit " << (hit + 1);
  }
  EXPECT_EQ(injector.TriggerCount("site.c"), 2);
}

TEST_F(FaultInjectionTest, EveryNOfOneKeepsHistoricalEveryHitBehavior) {
  SLAMPRED_REQUIRE_INJECTION();
  auto& injector = FaultInjector::Instance();
  for (const int every_n : {0, 1}) {
    FaultSpec spec;
    spec.kind = FaultKind::kPoisonNaN;
    spec.every_n = every_n;
    spec.max_triggers = -1;
    injector.Arm("site.one", spec);
    for (int hit = 0; hit < 4; ++hit) {
      EXPECT_EQ(injector.Hit("site.one"), FaultKind::kPoisonNaN)
          << "every_n " << every_n << " hit " << hit;
    }
    injector.Disarm("site.one");
  }
}

// Small symmetric fixture whose solve converges hard, so fault-free and
// recovered runs land on the same fixed point.
Objective SmallObjective() {
  Objective objective;
  objective.a = CsrMatrix::FromDense(Matrix{{0.0, 1.0, 0.0},
                                            {1.0, 0.0, 1.0},
                                            {0.0, 1.0, 0.0}});
  Matrix g(3, 3, 0.2);
  for (std::size_t i = 0; i < 3; ++i) g(i, i) = 0.0;
  objective.grad_v = g;
  objective.gamma = 0.05;
  objective.tau = 0.05;
  return objective;
}

CccpOptions TightOptions() {
  CccpOptions options;
  options.inner.theta = 0.05;
  options.inner.max_iterations = 3000;
  options.inner.tol = 1e-11;
  options.max_outer_iterations = 3;
  return options;
}

TEST_F(FaultInjectionTest, SvdProxFaultTriggersFallbackChain) {
  SLAMPRED_REQUIRE_INJECTION();
  const Objective objective = SmallObjective();
  const CccpOptions options = TightOptions();

  CccpTrace clean_trace;
  auto clean = SolveCccp(objective, options, &clean_trace);
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean_trace.recovery.Total(), 0);

  FaultSpec spec;
  spec.kind = FaultKind::kFailNotConverged;
  spec.trigger_after = 3;
  spec.max_triggers = 1;
  FaultInjector::Instance().Arm("svd.prox", spec);

  CccpTrace trace;
  auto faulted = SolveCccp(objective, options, &trace);
  ASSERT_TRUE(faulted.ok()) << faulted.status().ToString();
  EXPECT_GE(trace.recovery.svd_fallbacks, 1);
  EXPECT_EQ(FaultInjector::Instance().TriggerCount("svd.prox"), 1);
  // The recovered solve reaches the same fixed point (which bounds any
  // score-derived metric such as AUC far below the 1e-6 budget).
  EXPECT_LT((faulted.value() - clean.value()).MaxAbs(), 1e-6);
}

TEST_F(FaultInjectionTest, SvdProxPoisonIsCaughtByFallback) {
  SLAMPRED_REQUIRE_INJECTION();
  const Objective objective = SmallObjective();
  const CccpOptions options = TightOptions();
  auto clean = SolveCccp(objective, options);
  ASSERT_TRUE(clean.ok());

  FaultSpec spec;
  spec.kind = FaultKind::kPoisonNaN;
  spec.trigger_after = 1;
  spec.max_triggers = 1;
  FaultInjector::Instance().Arm("svd.prox", spec);

  CccpTrace trace;
  auto faulted = SolveCccp(objective, options, &trace);
  ASSERT_TRUE(faulted.ok()) << faulted.status().ToString();
  EXPECT_GE(trace.recovery.svd_fallbacks, 1);
  EXPECT_LT((faulted.value() - clean.value()).MaxAbs(), 1e-6);
}

TEST_F(FaultInjectionTest, GradStepPoisonRollsBackAndRecovers) {
  SLAMPRED_REQUIRE_INJECTION();
  const Objective objective = SmallObjective();
  const CccpOptions options = TightOptions();
  auto clean = SolveCccp(objective, options);
  ASSERT_TRUE(clean.ok());

  FaultSpec spec;
  spec.kind = FaultKind::kPoisonNaN;
  spec.trigger_after = 2;
  spec.max_triggers = 1;
  FaultInjector::Instance().Arm("fb.grad_step", spec);

  CccpTrace trace;
  auto faulted = SolveCccp(objective, options, &trace);
  ASSERT_TRUE(faulted.ok()) << faulted.status().ToString();
  EXPECT_GE(trace.recovery.nan_rollbacks, 1);
  EXPECT_LT((faulted.value() - clean.value()).MaxAbs(), 1e-6);
}

TEST_F(FaultInjectionTest, GradStepInfPoisonAlsoCaught) {
  SLAMPRED_REQUIRE_INJECTION();
  const Objective objective = SmallObjective();
  const CccpOptions options = TightOptions();

  FaultSpec spec;
  spec.kind = FaultKind::kPoisonInf;
  spec.max_triggers = 1;
  FaultInjector::Instance().Arm("fb.grad_step", spec);

  CccpTrace trace;
  auto faulted = SolveCccp(objective, options, &trace);
  ASSERT_TRUE(faulted.ok()) << faulted.status().ToString();
  EXPECT_GE(trace.recovery.nan_rollbacks, 1);
  EXPECT_TRUE(MatrixIsFinite(faulted.value()));
}

TEST_F(FaultInjectionTest, PersistentFaultExhaustsInnerBudgetThenResumes) {
  SLAMPRED_REQUIRE_INJECTION();
  const Objective objective = SmallObjective();
  CccpOptions options = TightOptions();
  options.inner.guardrails.max_recoveries = 4;

  // 5 poisoned steps exhaust the inner budget of 4; the 6th and last
  // trigger is absorbed by the resumed run's first recovery.
  FaultSpec spec;
  spec.kind = FaultKind::kPoisonNaN;
  spec.max_triggers = 6;
  FaultInjector::Instance().Arm("fb.grad_step", spec);

  CccpTrace trace;
  auto faulted = SolveCccp(objective, options, &trace);
  ASSERT_TRUE(faulted.ok()) << faulted.status().ToString();
  EXPECT_GE(trace.recovery.checkpoint_resumes, 1);
  EXPECT_GE(trace.recovery.nan_rollbacks, 5);
  EXPECT_TRUE(MatrixIsFinite(faulted.value()));

  auto clean = SolveCccp(objective, TightOptions());
  ASSERT_TRUE(clean.ok());
  EXPECT_LT((faulted.value() - clean.value()).MaxAbs(), 1e-6);
}

TEST_F(FaultInjectionTest, UnrecoverableFaultReturnsStatusNotAbort) {
  SLAMPRED_REQUIRE_INJECTION();
  const Objective objective = SmallObjective();
  CccpOptions options = TightOptions();
  options.inner.guardrails.max_recoveries = 2;
  options.inner.guardrails.max_checkpoint_resumes = 1;

  FaultSpec spec;
  spec.kind = FaultKind::kPoisonNaN;
  spec.max_triggers = -1;  // Every gradient step is poisoned, forever.
  FaultInjector::Instance().Arm("fb.grad_step", spec);

  CccpTrace trace;
  auto faulted = SolveCccp(objective, options, &trace);
  ASSERT_FALSE(faulted.ok());
  EXPECT_EQ(faulted.status().code(), StatusCode::kNotConverged);
  EXPECT_GE(trace.recovery.checkpoint_resumes, 1);
}

TEST_F(FaultInjectionTest, DivergenceBackoffTamesUnstableStepSize) {
  // θ = 5 is far beyond the 1/L = 0.5 stability bound: without the
  // guardrail the iterates oscillate with geometrically growing change.
  Objective objective;
  objective.a = CsrMatrix::FromDense(Matrix{{0.0, 1.0}, {1.0, 0.0}});
  objective.grad_v = Matrix(2, 2);
  objective.gamma = 0.0;
  objective.tau = 0.0;

  ForwardBackwardOptions options;
  options.theta = 5.0;
  options.max_iterations = 400;
  options.tol = 1e-10;
  options.project_unit_box = false;

  IterationTrace trace;
  RecoveryStats recovery;
  auto s = GeneralizedForwardBackward(objective, Matrix(2, 2), options,
                                      &trace, &recovery);
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_GE(recovery.divergence_backoffs, 1);
  // After the backoffs bring θ into the stable range the loop converges
  // to the unregularised minimiser S = A.
  EXPECT_LT((s.value() - objective.a.ToDense()).MaxAbs(), 1e-3);
}

TEST_F(FaultInjectionTest, GuardrailsDisabledPropagatesProxFailure) {
  SLAMPRED_REQUIRE_INJECTION();
  const Objective objective = SmallObjective();
  CccpOptions options = TightOptions();
  options.inner.guardrails.enabled = false;

  FaultSpec spec;
  spec.kind = FaultKind::kFailNotConverged;
  spec.max_triggers = 1;
  FaultInjector::Instance().Arm("svd.prox", spec);

  auto faulted = SolveCccp(objective, options);
  ASSERT_FALSE(faulted.ok());
  EXPECT_EQ(faulted.status().code(), StatusCode::kNotConverged);
}

TEST_F(FaultInjectionTest, HealthyRunsAreDeterministicWithHooksCompiledIn) {
  const Objective objective = SmallObjective();
  const CccpOptions options = TightOptions();
  CccpTrace trace_a;
  CccpTrace trace_b;
  auto a = SolveCccp(objective, options, &trace_a);
  auto b = SolveCccp(objective, options, &trace_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().data(), b.value().data());  // Bit-identical.
  EXPECT_EQ(trace_a.steps.s_change_l1, trace_b.steps.s_change_l1);
  EXPECT_EQ(trace_a.recovery.Total(), 0);
  EXPECT_EQ(trace_b.recovery.Total(), 0);
}

TEST_F(FaultInjectionTest, ResumeCccpContinuesFromCheckpoint) {
  const Objective objective = SmallObjective();
  CccpOptions options = TightOptions();
  options.inner.tol = 1e-6;  // Leave work for later rounds.
  options.inner.max_iterations = 30;
  options.max_outer_iterations = 1;

  CccpTrace first;
  auto partial = SolveCccp(objective, options, &first);
  ASSERT_TRUE(partial.ok());
  ASSERT_TRUE(first.checkpoint.valid);
  EXPECT_EQ(first.checkpoint.outer_round, 1);

  // Finishing from the checkpoint equals one uninterrupted 3-round run.
  options.max_outer_iterations = 3;
  auto resumed = ResumeCccp(objective, first.checkpoint, options);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  auto straight = SolveCccp(objective, options);
  ASSERT_TRUE(straight.ok());
  EXPECT_EQ(resumed.value().data(), straight.value().data());

  // A checkpoint that already completed all rounds is returned as-is.
  options.max_outer_iterations = 1;
  auto done = ResumeCccp(objective, first.checkpoint, options);
  ASSERT_TRUE(done.ok());
  EXPECT_EQ(done.value().data(), first.checkpoint.s.data());

  EXPECT_FALSE(ResumeCccp(objective, SolverCheckpoint{}, options).ok());
}

TEST_F(FaultInjectionTest, GraphIoParseFaultStrictFailsLenientSkips) {
  SLAMPRED_REQUIRE_INJECTION();
  const std::string text = "nodes user 3\nedge friend 0 1\nedge friend 1 2\n";

  FaultSpec spec;
  spec.kind = FaultKind::kFailIo;
  spec.trigger_after = 1;  // Fault the first edge record.
  spec.max_triggers = 1;
  FaultInjector::Instance().Arm("graph_io.parse", spec);

  auto strict = ParseNetwork(text, ParseOptions{ParsePolicy::kStrict});
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kIoError);
  EXPECT_NE(strict.status().message().find("line 2"), std::string::npos);

  FaultInjector::Instance().Arm("graph_io.parse", spec);
  ParseStats stats;
  auto lenient =
      ParseNetwork(text, ParseOptions{ParsePolicy::kLenient}, &stats);
  ASSERT_TRUE(lenient.ok()) << lenient.status().ToString();
  EXPECT_EQ(stats.lines_skipped, 1u);
  EXPECT_EQ(stats.first_error.code(), StatusCode::kIoError);
  // The faulted record is lost, the rest of the file is salvaged.
  EXPECT_EQ(lenient.value().NumEdges(EdgeType::kFriend), 1u);
  EXPECT_TRUE(lenient.value().HasEdge(EdgeType::kFriend, 1, 2));
}

TEST_F(FaultInjectionTest, RecoveryStatsMergeAndToString) {
  RecoveryStats a;
  a.nan_rollbacks = 1;
  a.svd_fallbacks = 2;
  RecoveryStats b;
  b.prox_rollbacks = 3;
  b.divergence_backoffs = 4;
  b.checkpoint_resumes = 5;
  a.Merge(b);
  EXPECT_EQ(a.Total(), 15);
  const std::string text = a.ToString();
  EXPECT_NE(text.find("nan_rollbacks=1"), std::string::npos);
  EXPECT_NE(text.find("svd_fallbacks=2"), std::string::npos);
  EXPECT_NE(text.find("checkpoint_resumes=5"), std::string::npos);
}

}  // namespace
}  // namespace slampred
