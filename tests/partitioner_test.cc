// Tests for the deterministic label-propagation partitioner (the
// "cluster" step of the hierarchical partitioned solve) and for the
// scale-out structural generator that feeds it: determinism across
// thread counts and repeated calls, size-cap enforcement, stats
// consistency, and the O(nodes + edges) generator's shape.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "datagen/aligned_generator.h"
#include "graph/partitioner.h"
#include "graph/social_graph.h"
#include "util/thread_pool.h"

namespace slampred {
namespace {

// A mid-sized power-law graph with planted communities — large enough
// that label propagation finds real structure, small enough to stay
// fast.
SocialGraph ScaleOutGraph(std::size_t users, std::uint64_t seed) {
  ScaleOutConfig config;
  config.num_users = users;
  config.num_communities = 8;
  config.seed = seed;
  auto generated = GenerateAlignedScaleOut(config);
  EXPECT_TRUE(generated.ok()) << generated.status().ToString();
  return SocialGraph::FromHeterogeneousNetwork(
      generated.value().networks.target());
}

TEST(PartitionerTest, CoversEveryUserExactlyOnce) {
  const SocialGraph graph = ScaleOutGraph(1500, 7);
  PartitionOptions options;
  options.max_cluster_size = 256;
  auto partition = PartitionGraph(graph, options);
  ASSERT_TRUE(partition.ok());

  std::vector<int> seen(graph.num_users(), 0);
  for (std::size_t c = 0; c < partition.value().num_clusters(); ++c) {
    const auto& members = partition.value().clusters[c];
    ASSERT_FALSE(members.empty());
    ASSERT_TRUE(std::is_sorted(members.begin(), members.end()));
    for (const std::size_t u : members) {
      ++seen[u];
      EXPECT_EQ(partition.value().cluster_of[u], c);
    }
  }
  for (std::size_t u = 0; u < graph.num_users(); ++u) {
    EXPECT_EQ(seen[u], 1) << "user " << u;
  }
  // Clusters are ordered by their smallest member.
  for (std::size_t c = 1; c < partition.value().num_clusters(); ++c) {
    EXPECT_LT(partition.value().clusters[c - 1].front(),
              partition.value().clusters[c].front());
  }
}

TEST(PartitionerTest, RespectsTheHardSizeCap) {
  const SocialGraph graph = ScaleOutGraph(1500, 7);
  for (const std::size_t cap : {64u, 200u, 1024u}) {
    PartitionOptions options;
    options.max_cluster_size = cap;
    auto partition = PartitionGraph(graph, options);
    ASSERT_TRUE(partition.ok());
    EXPECT_LE(partition.value().stats.max_cluster, cap);
    for (const auto& members : partition.value().clusters) {
      EXPECT_LE(members.size(), cap);
    }
  }
}

TEST(PartitionerTest, DeterministicAcrossThreadCountsAndCalls) {
  const SocialGraph graph = ScaleOutGraph(1200, 11);
  PartitionOptions options;
  options.max_cluster_size = 200;

  const std::size_t previous = ThreadPool::Global().num_threads();
  ThreadPool::Global().Resize(1);
  auto reference = PartitionGraph(graph, options);
  ASSERT_TRUE(reference.ok());
  for (const std::size_t threads : {std::size_t{2}, std::size_t{7}}) {
    ThreadPool::Global().Resize(threads);
    auto repeat = PartitionGraph(graph, options);
    ASSERT_TRUE(repeat.ok());
    EXPECT_EQ(repeat.value().cluster_of, reference.value().cluster_of)
        << threads << " threads";
  }
  ThreadPool::Global().Resize(previous);

  // Same seed, same call context: identical again.
  auto again = PartitionGraph(graph, options);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().cluster_of, reference.value().cluster_of);
}

TEST(PartitionerTest, StatsAreConsistent) {
  const SocialGraph graph = ScaleOutGraph(1500, 7);
  PartitionOptions options;
  options.max_cluster_size = 256;
  auto partition = PartitionGraph(graph, options);
  ASSERT_TRUE(partition.ok());
  const PartitionStats& stats = partition.value().stats;

  EXPECT_EQ(stats.num_clusters, partition.value().num_clusters());
  EXPECT_GT(stats.num_clusters, 1u);
  EXPECT_GE(stats.max_cluster, stats.min_cluster);
  EXPECT_NEAR(stats.mean_cluster,
              static_cast<double>(graph.num_users()) /
                  static_cast<double>(stats.num_clusters),
              1e-9);
  EXPECT_LE(stats.cut_edges, stats.total_edges);
  EXPECT_GE(stats.cut_edge_fraction, 0.0);
  EXPECT_LE(stats.cut_edge_fraction, 1.0);
  std::size_t histogram_total = 0;
  for (const std::size_t count : stats.size_histogram) {
    histogram_total += count;
  }
  EXPECT_EQ(histogram_total, stats.num_clusters);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(PartitionerTest, MinClusterFloorReducesClusterCount) {
  const SocialGraph graph = ScaleOutGraph(1500, 7);
  PartitionOptions fragmented;
  fragmented.max_cluster_size = 256;
  fragmented.min_cluster_size = 1;
  PartitionOptions merged = fragmented;
  merged.min_cluster_size = 64;
  auto loose = PartitionGraph(graph, fragmented);
  auto tight = PartitionGraph(graph, merged);
  ASSERT_TRUE(loose.ok());
  ASSERT_TRUE(tight.ok());
  // Merging under the floor can only consolidate clusters.
  EXPECT_LE(tight.value().num_clusters(), loose.value().num_clusters());
}

TEST(PartitionerTest, RejectsInvalidOptions) {
  const SocialGraph graph(16);
  PartitionOptions zero_cap;
  zero_cap.max_cluster_size = 0;
  EXPECT_FALSE(PartitionGraph(graph, zero_cap).ok());

  PartitionOptions inverted;
  inverted.max_cluster_size = 8;
  inverted.min_cluster_size = 16;
  EXPECT_FALSE(PartitionGraph(graph, inverted).ok());
}

TEST(PartitionerTest, ParsePartitionModeRoundTrips) {
  auto none = ParsePartitionMode("none");
  auto automatic = ParsePartitionMode("auto");
  ASSERT_TRUE(none.ok());
  ASSERT_TRUE(automatic.ok());
  EXPECT_EQ(none.value(), PartitionMode::kNone);
  EXPECT_EQ(automatic.value(), PartitionMode::kAuto);
  EXPECT_STREQ(PartitionModeName(PartitionMode::kNone), "none");
  EXPECT_STREQ(PartitionModeName(PartitionMode::kAuto), "auto");
  EXPECT_FALSE(ParsePartitionMode("sometimes").ok());
}

TEST(ScaleOutGeneratorTest, DeterministicStructuralBundle) {
  ScaleOutConfig config;
  config.num_users = 2000;
  config.num_communities = 8;
  config.seed = 5;
  auto first = GenerateAlignedScaleOut(config);
  auto second = GenerateAlignedScaleOut(config);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());

  const AlignedNetworks& networks = first.value().networks;
  EXPECT_EQ(networks.target().NumUsers(), config.num_users);
  EXPECT_EQ(first.value().community_of_target.size(), config.num_users);
  // Structural only: no posts, words, or other attribute nodes.
  EXPECT_EQ(networks.target().NumNodes(NodeType::kPost), 0u);
  EXPECT_EQ(networks.source(0).NumNodes(NodeType::kPost), 0u);
  // Every covered source user is anchored.
  EXPECT_EQ(networks.anchors(0).size(), networks.source(0).NumUsers());
  EXPECT_EQ(networks.source(0).NumUsers(),
            static_cast<std::size_t>(0.7 * 2000));

  EXPECT_EQ(networks.target().Summary(),
            second.value().networks.target().Summary());
  EXPECT_EQ(networks.source(0).Summary(),
            second.value().networks.source(0).Summary());
  EXPECT_EQ(first.value().community_of_target,
            second.value().community_of_target);
}

TEST(ScaleOutGeneratorTest, EdgeCountTracksTheConfiguredDegree) {
  ScaleOutConfig config;
  config.num_users = 4000;
  config.avg_degree = 6.0;
  config.seed = 9;
  auto generated = GenerateAlignedScaleOut(config);
  ASSERT_TRUE(generated.ok());
  const double expected =
      config.avg_degree * static_cast<double>(config.num_users) / 2.0;
  const auto edges = static_cast<double>(
      generated.value().networks.target().NumEdges(EdgeType::kFriend));
  // Collisions and duplicate draws under-deliver; gross mismatches mean
  // the expected-count sampling is broken.
  EXPECT_GT(edges, 0.5 * expected);
  EXPECT_LT(edges, 1.1 * expected);
}

TEST(ScaleOutGeneratorTest, DegreesHaveAHeavyTail) {
  ScaleOutConfig config;
  config.num_users = 3000;
  config.seed = 13;
  auto generated = GenerateAlignedScaleOut(config);
  ASSERT_TRUE(generated.ok());
  const SocialGraph graph = SocialGraph::FromHeterogeneousNetwork(
      generated.value().networks.target());
  std::size_t max_degree = 0;
  std::size_t total_degree = 0;
  for (std::size_t u = 0; u < graph.num_users(); ++u) {
    max_degree = std::max(max_degree, graph.Degree(u));
    total_degree += graph.Degree(u);
  }
  const double mean_degree = static_cast<double>(total_degree) /
                             static_cast<double>(graph.num_users());
  // A Pareto(1.5-shape) weight distribution must produce hubs far above
  // the mean; a uniform-degree bug would keep the max within ~3x.
  EXPECT_GT(static_cast<double>(max_degree), 5.0 * mean_degree);
}

TEST(ScaleOutGeneratorTest, CommunitiesDominateTheEdgeStructure) {
  ScaleOutConfig config;
  config.num_users = 3000;
  config.num_communities = 8;
  config.inter_community_fraction = 0.05;
  config.seed = 17;
  auto generated = GenerateAlignedScaleOut(config);
  ASSERT_TRUE(generated.ok());
  const SocialGraph graph = SocialGraph::FromHeterogeneousNetwork(
      generated.value().networks.target());
  const std::vector<std::uint32_t>& community =
      generated.value().community_of_target;
  std::size_t cross = 0;
  std::size_t total = 0;
  for (std::size_t u = 0; u < graph.num_users(); ++u) {
    for (const std::size_t v : graph.Neighbors(u)) {
      if (v <= u) continue;
      ++total;
      if (community[u] != community[v]) ++cross;
    }
  }
  ASSERT_GT(total, 0u);
  const double cross_fraction =
      static_cast<double>(cross) / static_cast<double>(total);
  EXPECT_LT(cross_fraction, 0.15);
  EXPECT_GT(cross_fraction, 0.0);
}

TEST(ScaleOutGeneratorTest, RejectsBadConfigs) {
  ScaleOutConfig config;
  config.num_users = 1;
  EXPECT_FALSE(GenerateAlignedScaleOut(config).ok());

  config = ScaleOutConfig{};
  config.num_communities = 0;
  EXPECT_FALSE(GenerateAlignedScaleOut(config).ok());

  config = ScaleOutConfig{};
  config.power_law_exponent = 1.0;
  EXPECT_FALSE(GenerateAlignedScaleOut(config).ok());

  config = ScaleOutConfig{};
  config.source_coverage = 0.0;
  EXPECT_FALSE(GenerateAlignedScaleOut(config).ok());

  config = ScaleOutConfig{};
  config.inter_community_fraction = 1.5;
  EXPECT_FALSE(GenerateAlignedScaleOut(config).ok());
}

}  // namespace
}  // namespace slampred
