// Tests for the proximal operators, objective, forward–backward inner
// loop and the CCCP outer loop.

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/matrix_ops.h"
#include "linalg/svd.h"
#include "optim/cccp.h"
#include "optim/forward_backward.h"
#include "optim/objective.h"
#include "optim/proximal.h"
#include "util/random.h"

namespace slampred {
namespace {

TEST(ProxL1Test, SoftThresholdHandChecked) {
  const Matrix s{{2.0, -0.5}, {0.3, -3.0}};
  const Matrix out = ProxL1(s, 1.0);
  EXPECT_DOUBLE_EQ(out(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(out(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(out(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(out(1, 1), -2.0);
}

TEST(ProxL1Test, ZeroThresholdIsIdentity) {
  Rng rng(1);
  const Matrix s = Matrix::RandomGaussian(4, 4, rng);
  EXPECT_EQ(ProxL1(s, 0.0), s);
}

TEST(ProxL1Test, LargeThresholdZeroesEverything) {
  Rng rng(2);
  const Matrix s = Matrix::RandomGaussian(3, 3, rng);
  EXPECT_DOUBLE_EQ(ProxL1(s, 100.0).MaxAbs(), 0.0);
}

// Parameterised property: prox_l1 is non-expansive and shrinks the l1
// norm by at most threshold per entry.
class ProxL1ParamTest : public ::testing::TestWithParam<double> {};

TEST_P(ProxL1ParamTest, ShrinkageProperties) {
  Rng rng(static_cast<std::uint64_t>(GetParam() * 100) + 3);
  const Matrix s = Matrix::RandomGaussian(5, 5, rng);
  const Matrix out = ProxL1(s, GetParam());
  EXPECT_LE(out.NormL1(), s.NormL1() + 1e-12);
  for (std::size_t i = 0; i < s.data().size(); ++i) {
    EXPECT_LE(std::fabs(out.data()[i]), std::fabs(s.data()[i]) + 1e-12);
    // Sign never flips.
    EXPECT_GE(out.data()[i] * s.data()[i], -1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ProxL1ParamTest,
                         ::testing::Values(0.01, 0.1, 0.5, 1.0, 2.0));

TEST(ProxNuclearTest, ShrinksSingularValues) {
  const Matrix s = Matrix::Diagonal(Vector{5.0, 2.0, 0.5});
  auto out = ProxNuclear(s, 1.0);
  ASSERT_TRUE(out.ok());
  EXPECT_NEAR(out.value()(0, 0), 4.0, 1e-9);
  EXPECT_NEAR(out.value()(1, 1), 1.0, 1e-9);
  EXPECT_NEAR(out.value()(2, 2), 0.0, 1e-9);
}

TEST(ProxNuclearTest, ReducesRank) {
  Rng rng(5);
  // Low-rank plus small noise: shrinking must cut the noise rank.
  const Matrix u = Matrix::RandomGaussian(8, 2, rng);
  Matrix s = MultiplyABt(u, u);
  const Matrix noise = Matrix::RandomGaussian(8, 8, rng) * 0.01;
  s += noise;
  auto out = ProxNuclear(s, 0.5);
  ASSERT_TRUE(out.ok());
  auto rank = NumericalRank(out.value(), 1e-6);
  ASSERT_TRUE(rank.ok());
  EXPECT_LE(rank.value(), 2u);
}

TEST(ProxNuclearTest, SymmetricPathMatchesGeneralPath) {
  Rng rng(7);
  const Matrix s = Matrix::RandomGaussian(6, 6, rng).Symmetrized();
  auto general = ProxNuclear(s, 0.3);
  auto symmetric = ProxNuclearSymmetric(s, 0.3);
  ASSERT_TRUE(general.ok());
  ASSERT_TRUE(symmetric.ok());
  EXPECT_LT((general.value() - symmetric.value()).MaxAbs(), 1e-7);
}

TEST(ProxNuclearTest, SymmetricPathHandlesNegativeEigenvalues) {
  // diag(3, -2): nuclear prox with τ=1 → diag(2, -1).
  const Matrix s = Matrix::Diagonal(Vector{3.0, -2.0});
  auto out = ProxNuclearSymmetric(s, 1.0);
  ASSERT_TRUE(out.ok());
  EXPECT_NEAR(out.value()(0, 0), 2.0, 1e-9);
  EXPECT_NEAR(out.value()(1, 1), -1.0, 1e-9);
}

TEST(ProxNuclearTest, AutoDispatch) {
  Rng rng(9);
  const Matrix sym = Matrix::RandomGaussian(5, 5, rng).Symmetrized();
  auto a = ProxNuclearAuto(sym, 0.2);
  auto b = ProxNuclearSymmetric(sym, 0.2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_LT((a.value() - b.value()).MaxAbs(), 1e-9);
  const Matrix rect = Matrix::RandomGaussian(3, 5, rng);
  EXPECT_TRUE(ProxNuclearAuto(rect, 0.2).ok());
}

TEST(ProxNuclearTest, NegativeThresholdRejected) {
  EXPECT_FALSE(ProxNuclear(Matrix::Identity(2), -1.0).ok());
  EXPECT_FALSE(ProxNuclearSymmetric(Matrix::Identity(2), -1.0).ok());
}

TEST(ObjectiveTest, IntimacyGradientWeightsAndSums) {
  Tensor3 t0(2, 2, 2);
  t0.SetSlice(0, Matrix{{0.0, 1.0}, {1.0, 0.0}});
  t0.SetSlice(1, Matrix{{0.0, 2.0}, {2.0, 0.0}});
  Tensor3 t1(1, 2, 2);
  t1.SetSlice(0, Matrix{{0.0, 10.0}, {10.0, 0.0}});
  const Matrix g = BuildIntimacyGradient({t0, t1}, {1.0, 0.5}, 2);
  EXPECT_DOUBLE_EQ(g(0, 1), 3.0 + 5.0);
  EXPECT_DOUBLE_EQ(g(0, 0), 0.0);
}

TEST(ObjectiveTest, SmoothGradientMatchesFiniteDifference) {
  Rng rng(11);
  Objective objective;
  objective.a =
      CsrMatrix::FromDense(Matrix::RandomGaussian(4, 4, rng).Symmetrized());
  objective.grad_v = Matrix::RandomGaussian(4, 4, rng).Symmetrized();
  objective.gamma = 0.0;
  objective.tau = 0.0;
  const Matrix s = Matrix::RandomGaussian(4, 4, rng);
  const Matrix grad = SmoothGradient(objective, s);
  const double eps = 1e-6;
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      Matrix plus = s;
      plus(i, j) += eps;
      Matrix minus = s;
      minus(i, j) -= eps;
      const double numeric =
          (SmoothValue(objective, plus) - SmoothValue(objective, minus)) /
          (2.0 * eps);
      EXPECT_NEAR(grad(i, j), numeric, 1e-4);
    }
  }
}

TEST(ObjectiveTest, FullObjectiveValueComposition) {
  Objective objective;
  objective.a = CsrMatrix::Identity(2);
  objective.grad_v = Matrix(2, 2);
  objective.gamma = 1.0;
  objective.tau = 1.0;
  // At S = A = I: loss 0, ‖S‖₁ = 2, ‖S‖_* = 2, no intimacy terms.
  const double value = FullObjectiveValue(objective, Matrix::Identity(2),
                                          std::vector<SparseTensor3>{}, {});
  EXPECT_NEAR(value, 4.0, 1e-9);
}

TEST(ForwardBackwardTest, PureLossConvergesToA) {
  // With no regularizers and no intimacy, the minimiser is S = A.
  Objective objective;
  objective.a = CsrMatrix::FromDense(Matrix{{0.0, 1.0}, {1.0, 0.0}});
  objective.grad_v = Matrix(2, 2);
  objective.gamma = 0.0;
  objective.tau = 0.0;
  ForwardBackwardOptions options;
  options.theta = 0.1;
  options.max_iterations = 500;
  options.tol = 1e-10;
  auto s = GeneralizedForwardBackward(objective, Matrix(2, 2), options);
  ASSERT_TRUE(s.ok());
  EXPECT_LT((s.value() - objective.a.ToDense()).MaxAbs(), 1e-3);
}

TEST(ForwardBackwardTest, L1AnalyticFixedPoint) {
  // min (s-a)² + γ|s| has solution a - γ/2 for a > γ/2 (entry-wise).
  Objective objective;
  objective.a = CsrMatrix::FromDense(Matrix{{0.8, 0.8}, {0.8, 0.8}});
  objective.grad_v = Matrix(2, 2);
  objective.gamma = 0.4;
  objective.tau = 0.0;
  ForwardBackwardOptions options;
  options.theta = 0.05;
  options.max_iterations = 2000;
  options.tol = 1e-12;
  options.keep_symmetric = false;
  auto s = GeneralizedForwardBackward(objective, Matrix(2, 2), options);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.value()(0, 0), 0.6, 1e-3);
}

TEST(ForwardBackwardTest, ProjectionKeepsUnitBox) {
  Objective objective;
  objective.a = CsrMatrix::FromDense(Matrix(3, 3, 5.0));  // Pulls far above 1.
  objective.grad_v = Matrix(3, 3);
  objective.gamma = 0.0;
  objective.tau = 0.0;
  ForwardBackwardOptions options;
  options.theta = 0.2;
  options.max_iterations = 100;
  auto s = GeneralizedForwardBackward(objective, Matrix(3, 3), options);
  ASSERT_TRUE(s.ok());
  EXPECT_LE(s.value().MaxAbs(), 1.0 + 1e-12);
}

TEST(ForwardBackwardTest, TraceRecordsIterations) {
  Objective objective;
  objective.a = CsrMatrix::Identity(3);
  objective.grad_v = Matrix(3, 3);
  objective.gamma = 0.1;
  objective.tau = 0.1;
  ForwardBackwardOptions options;
  options.max_iterations = 20;
  options.tol = 0.0;  // Never converge: run all 20.
  IterationTrace trace;
  auto s = GeneralizedForwardBackward(objective, Matrix(3, 3), options,
                                      &trace);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(trace.iterations, 20);
  EXPECT_EQ(trace.s_norm_l1.size(), 20u);
  EXPECT_EQ(trace.s_change_l1.size(), 20u);
  EXPECT_FALSE(trace.converged);
}

TEST(CccpTest, ConvergesAndTraces) {
  Rng rng(13);
  Objective objective;
  objective.a = CsrMatrix::FromDense(Matrix{{0.0, 1.0, 0.0},
                                            {1.0, 0.0, 1.0},
                                            {0.0, 1.0, 0.0}});
  Matrix g(3, 3, 0.2);
  for (std::size_t i = 0; i < 3; ++i) g(i, i) = 0.0;
  objective.grad_v = g;
  objective.gamma = 0.05;
  objective.tau = 0.05;

  CccpOptions options;
  options.inner.theta = 0.05;
  options.inner.max_iterations = 100;
  options.max_outer_iterations = 4;
  CccpTrace trace;
  auto s = SolveCccp(objective, options, &trace);
  ASSERT_TRUE(s.ok());
  EXPECT_GT(trace.outer_iterations, 0);
  EXPECT_GE(trace.steps.iterations, trace.outer_iterations);
  // The iterate change must shrink over the run (Figure-3 behaviour).
  const auto& change = trace.steps.s_change_l1;
  ASSERT_GT(change.size(), 4u);
  EXPECT_LT(change.back(), change.front() + 1e-9);
  // Outer changes decrease to (near) zero.
  EXPECT_LT(trace.outer_change_l1.back(), trace.outer_change_l1.front() + 1e-9);
}

TEST(CccpTest, SolutionStaysSymmetricInUnitBox) {
  Objective objective;
  objective.a = CsrMatrix::FromDense(Matrix{{0.0, 1.0}, {1.0, 0.0}});
  objective.grad_v = Matrix(2, 2, 0.3);
  objective.gamma = 0.1;
  objective.tau = 0.1;
  auto s = SolveCccp(objective, CccpOptions{});
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s.value().IsSymmetric(1e-9));
  for (double v : s.value().data()) {
    EXPECT_GE(v, -1e-12);
    EXPECT_LE(v, 1.0 + 1e-12);
  }
}

TEST(CccpTest, HigherIntimacyRaisesScores) {
  Objective low;
  low.a = CsrMatrix::FromDense(Matrix(3, 3));
  low.grad_v = Matrix(3, 3, 0.2);
  low.gamma = 0.01;
  low.tau = 0.01;
  Objective high = low;
  high.grad_v = Matrix(3, 3, 1.0);
  auto s_low = SolveCccp(low, CccpOptions{});
  auto s_high = SolveCccp(high, CccpOptions{});
  ASSERT_TRUE(s_low.ok());
  ASSERT_TRUE(s_high.ok());
  EXPECT_GT(s_high.value().Sum(), s_low.value().Sum());
}

}  // namespace
}  // namespace slampred
