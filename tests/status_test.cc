#include "util/status.h"

#include <gtest/gtest.h>

namespace slampred {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoryHelpersSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::NumericalError("x").code(), StatusCode::kNumericalError);
  EXPECT_EQ(Status::NotConverged("x").code(), StatusCode::kNotConverged);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Internal("boom").message(), "boom");
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  const Status st = Status::NumericalError("singular pivot");
  EXPECT_EQ(st.ToString(), "NUMERICAL_ERROR: singular pivot");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(41);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 41);
  EXPECT_EQ(r.value_or(-1), 41);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  ASSERT_TRUE(r.ok());
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

Status FailingOperation() { return Status::IoError("disk"); }

Status Propagates() {
  SLAMPRED_RETURN_NOT_OK(FailingOperation());
  return Status::OK();
}

TEST(StatusMacrosTest, ReturnNotOkPropagates) {
  EXPECT_EQ(Propagates().code(), StatusCode::kIoError);
}

Result<int> MakeValue() { return 7; }

Status UsesAssignOrReturn(int* out) {
  SLAMPRED_ASSIGN_OR_RETURN(const int v, MakeValue());
  *out = v;
  return Status::OK();
}

TEST(StatusMacrosTest, AssignOrReturnBindsValue) {
  int out = 0;
  ASSERT_TRUE(UsesAssignOrReturn(&out).ok());
  EXPECT_EQ(out, 7);
}

// Regression: the macro's temporary must be line-unique, so two uses in
// the same scope must compile (the old `_res_##__LINE__` pasted the
// literal token `__LINE__` and collided).
Status UsesAssignOrReturnTwice(int* out) {
  SLAMPRED_ASSIGN_OR_RETURN(const int a, MakeValue());
  SLAMPRED_ASSIGN_OR_RETURN(const int b, MakeValue());
  *out = a + b;
  return Status::OK();
}

Result<int> FailingValue() { return Status::NotFound("no value"); }

Status AssignOrReturnPropagates(int* out) {
  SLAMPRED_ASSIGN_OR_RETURN(const int a, MakeValue());
  SLAMPRED_ASSIGN_OR_RETURN(const int b, FailingValue());
  *out = a + b;
  return Status::OK();
}

TEST(StatusMacrosTest, AssignOrReturnTwiceInOneScope) {
  int out = 0;
  ASSERT_TRUE(UsesAssignOrReturnTwice(&out).ok());
  EXPECT_EQ(out, 14);
}

TEST(StatusMacrosTest, AssignOrReturnPropagatesFailureFromSecondUse) {
  int out = 0;
  EXPECT_EQ(AssignOrReturnPropagates(&out).code(), StatusCode::kNotFound);
  EXPECT_EQ(out, 0);
}

TEST(StatusCodeTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotConverged),
               "NOT_CONVERGED");
}

}  // namespace
}  // namespace slampred
