// Tests for the hierarchical partitioned solve end to end: the
// single-cluster regime must be bit-identical to the monolithic fit at
// every thread count, the multi-cluster regime must stay close in
// ranking quality, the sharded artifact must round-trip with checksums,
// serving (session dispatch, top-K merge, per-shard hot-swap) must
// score exactly what the fit produced, and the per-cluster fault site
// must drive the retry path.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/fit_report.h"
#include "core/model_artifact.h"
#include "core/scoring_session.h"
#include "core/slampred.h"
#include "datagen/aligned_generator.h"
#include "eval/link_split.h"
#include "eval/metrics.h"
#include "serve/model_registry.h"
#include "serve/topk_index.h"
#include "util/fault_injection.h"
#include "util/thread_pool.h"

namespace slampred {
namespace {

SlamPredConfig FastConfig() {
  SlamPredConfig config;
  config.optimization.inner.max_iterations = 40;
  config.optimization.max_outer_iterations = 2;
  return config;
}

// Partitioned variant: clusters capped small enough that the ~65-user
// test bundle splits into several clusters.
SlamPredConfig PartitionedConfig() {
  SlamPredConfig config = FastConfig();
  config.partition.mode = PartitionMode::kAuto;
  config.partition.max_cluster_size = 20;
  config.partition.min_cluster_size = 4;
  return config;
}

class PartitionedFitTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    AlignedGeneratorConfig gen_config = DefaultExperimentConfig(23);
    gen_config.population.num_personas = 90;
    auto gen = GenerateAligned(gen_config);
    ASSERT_TRUE(gen.ok());
    generated_ = new GeneratedAligned(std::move(gen).value());
    full_graph_ = new SocialGraph(SocialGraph::FromHeterogeneousNetwork(
        generated_->networks.target()));
    Rng rng(29);
    auto folds = SplitLinks(*full_graph_, 5, rng);
    ASSERT_TRUE(folds.ok());
    test_edges_ = new std::vector<UserPair>(folds.value()[0].test_edges);
    train_graph_ = new SocialGraph(
        full_graph_->WithEdgesRemoved(*test_edges_));
  }

  static void TearDownTestSuite() {
    delete generated_;
    delete full_graph_;
    delete train_graph_;
    delete test_edges_;
    generated_ = nullptr;
  }

  void TearDown() override { FaultInjector::Instance().Reset(); }

  static std::size_t NumUsers() {
    return generated_->networks.target().NumUsers();
  }

  // Scores every upper-triangle pair, in (u, v) order.
  static std::vector<double> AllPairScores(const SlamPred& model) {
    std::vector<UserPair> pairs;
    for (std::size_t u = 0; u < NumUsers(); ++u) {
      for (std::size_t v = u + 1; v < NumUsers(); ++v) pairs.push_back({u, v});
    }
    auto scores = model.ScorePairs(pairs);
    EXPECT_TRUE(scores.ok());
    return std::move(scores).value();
  }

  static GeneratedAligned* generated_;
  static SocialGraph* full_graph_;
  static SocialGraph* train_graph_;
  static std::vector<UserPair>* test_edges_;
};

GeneratedAligned* PartitionedFitTest::generated_ = nullptr;
SocialGraph* PartitionedFitTest::full_graph_ = nullptr;
SocialGraph* PartitionedFitTest::train_graph_ = nullptr;
std::vector<UserPair>* PartitionedFitTest::test_edges_ = nullptr;

TEST_F(PartitionedFitTest, SingleClusterRegimeIsBitExactAtEveryThreadCount) {
  SlamPred monolithic(FastConfig());
  ASSERT_TRUE(monolithic.Fit(generated_->networks, *train_graph_).ok());
  const std::vector<double> reference = AllPairScores(monolithic);

  // min = max = n forces the merge pass to consolidate everything into
  // one cluster, which must take the identity fast path.
  SlamPredConfig config = FastConfig();
  config.partition.mode = PartitionMode::kAuto;
  config.partition.max_cluster_size = NumUsers();
  config.partition.min_cluster_size = NumUsers();

  const std::size_t previous = ThreadPool::Global().num_threads();
  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{7}}) {
    ThreadPool::Global().Resize(threads);
    SlamPred partitioned(config);
    ASSERT_TRUE(partitioned.Fit(generated_->networks, *train_graph_).ok())
        << threads << " threads";
    ASSERT_TRUE(partitioned.partitioned());
    ASSERT_EQ(partitioned.partition_stats().num_clusters, 1u)
        << threads << " threads";
    const std::vector<double> scores = AllPairScores(partitioned);
    ASSERT_EQ(scores.size(), reference.size());
    for (std::size_t i = 0; i < scores.size(); ++i) {
      ASSERT_EQ(scores[i], reference[i])
          << "pair " << i << " at " << threads << " threads";
    }
  }
  ThreadPool::Global().Resize(previous);
}

TEST_F(PartitionedFitTest, MultiClusterFitIsThreadCountInvariant) {
  const std::size_t previous = ThreadPool::Global().num_threads();
  ThreadPool::Global().Resize(1);
  SlamPred reference_model(PartitionedConfig());
  ASSERT_TRUE(reference_model.Fit(generated_->networks, *train_graph_).ok());
  ASSERT_GT(reference_model.partition_stats().num_clusters, 1u);
  const std::vector<double> reference = AllPairScores(reference_model);

  for (const std::size_t threads : {std::size_t{2}, std::size_t{7}}) {
    ThreadPool::Global().Resize(threads);
    SlamPred model(PartitionedConfig());
    ASSERT_TRUE(model.Fit(generated_->networks, *train_graph_).ok());
    const std::vector<double> scores = AllPairScores(model);
    ASSERT_EQ(scores.size(), reference.size());
    for (std::size_t i = 0; i < scores.size(); ++i) {
      ASSERT_EQ(scores[i], reference[i])
          << "pair " << i << " at " << threads << " threads";
    }
  }
  ThreadPool::Global().Resize(previous);
}

// The multi-cluster equivalence check runs on a scale-out bundle large
// enough for a stable AUC, with the cluster-size cap aligned to the
// planted community scale — the regime the partitioned solve is for.
TEST(PartitionedRankingTest, MultiClusterRankingStaysCloseToMonolithic) {
  ScaleOutConfig gen_config;
  gen_config.num_users = 256;
  gen_config.num_communities = 4;
  gen_config.avg_degree = 10.0;
  gen_config.seed = 3;
  auto generated = GenerateAlignedScaleOut(gen_config);
  ASSERT_TRUE(generated.ok());
  const SocialGraph full_graph = SocialGraph::FromHeterogeneousNetwork(
      generated.value().networks.target());
  Rng split_rng(29);
  auto folds = SplitLinks(full_graph, 5, split_rng);
  ASSERT_TRUE(folds.ok());
  const std::vector<UserPair>& test_edges = folds.value()[0].test_edges;
  const SocialGraph train_graph =
      full_graph.WithEdgesRemoved(test_edges);

  SlamPred monolithic(FastConfig());
  ASSERT_TRUE(
      monolithic.Fit(generated.value().networks, train_graph).ok());

  SlamPredConfig config = FastConfig();
  config.partition.mode = PartitionMode::kAuto;
  config.partition.max_cluster_size = 80;
  SlamPred partitioned(config);
  ASSERT_TRUE(
      partitioned.Fit(generated.value().networks, train_graph).ok());
  ASSERT_GT(partitioned.partition_stats().num_clusters, 1u);

  // Held-out positives vs never-present pairs, one label vector for
  // both models.
  std::vector<UserPair> pairs(test_edges);
  std::vector<int> labels(pairs.size(), 1);
  Rng rng(31);
  while (labels.size() < 4 * test_edges.size()) {
    const auto u = static_cast<std::size_t>(
        rng.NextBounded(full_graph.num_users()));
    const auto v = static_cast<std::size_t>(
        rng.NextBounded(full_graph.num_users()));
    if (u == v || full_graph.HasEdge(u, v)) continue;
    pairs.push_back({u, v});
    labels.push_back(0);
  }
  auto mono_scores = monolithic.ScorePairs(pairs);
  auto part_scores = partitioned.ScorePairs(pairs);
  ASSERT_TRUE(mono_scores.ok());
  ASSERT_TRUE(part_scores.ok());
  auto mono_auc = ComputeAuc(mono_scores.value(), labels);
  auto part_auc = ComputeAuc(part_scores.value(), labels);
  ASSERT_TRUE(mono_auc.ok());
  ASSERT_TRUE(part_auc.ok());
  auto mono_prec = ComputePrecisionAtK(mono_scores.value(), labels, 100);
  auto part_prec = ComputePrecisionAtK(part_scores.value(), labels, 100);
  ASSERT_TRUE(mono_prec.ok());
  ASSERT_TRUE(part_prec.ok());
  // The per-cluster solves see less context and cross-cluster pairs are
  // rescored from neighboring factors, so some headroom is expected —
  // but the partitioned fit must stay predictive and in the monolithic
  // fit's neighbourhood.
  EXPECT_GT(mono_auc.value(), 0.7);
  EXPECT_GT(part_auc.value(), 0.65);
  EXPECT_NEAR(part_auc.value(), mono_auc.value(), 0.15);
  EXPECT_GT(part_prec.value(), 0.5 * mono_prec.value());
}

TEST_F(PartitionedFitTest, PartitionDiagnosticsAreReported) {
  SlamPred model(PartitionedConfig());
  ASSERT_TRUE(model.Fit(generated_->networks, *train_graph_).ok());
  ASSERT_TRUE(model.partitioned());

  const PartitionStats& stats = model.partition_stats();
  EXPECT_GT(stats.num_clusters, 1u);
  EXPECT_LE(stats.max_cluster, 20u);
  EXPECT_EQ(stats.cluster_solve_seconds.size(), stats.num_clusters);
  EXPECT_GE(stats.refine_seconds, 0.0);
  EXPECT_GE(model.phase_times().partition_seconds, 0.0);

  const FitReport report = MakeFitReport(model);
  EXPECT_TRUE(report.partitioned);
  const std::string json = FitReportJson(report);
  for (const char* key :
       {"\"partitioned\":true", "\"partition\"", "\"num_clusters\"",
        "\"cut_edge_fraction\"", "\"size_histogram\"",
        "\"cluster_solve_seconds\"", "\"partition_seconds\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
}

TEST_F(PartitionedFitTest, ShardedArtifactRoundTripsExactly) {
  SlamPred model(PartitionedConfig());
  ASSERT_TRUE(model.Fit(generated_->networks, *train_graph_).ok());
  auto artifact = MakeModelArtifact(model, false);
  ASSERT_TRUE(artifact.ok());
  ASSERT_TRUE(artifact.value().has_shards);
  EXPECT_TRUE(artifact.value().s.empty());

  const std::string bytes = SerializeModelArtifact(artifact.value());
  auto loaded = DeserializeModelArtifact(bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_TRUE(loaded.value().has_shards);
  // Sharded-ness is inferred from the sections at load time.
  EXPECT_EQ(loaded.value().config.partition.mode, PartitionMode::kAuto);
  EXPECT_EQ(loaded.value().shards.num_shards(),
            model.ShardedScoreMatrix().num_shards());

  for (std::size_t u = 0; u < NumUsers(); ++u) {
    for (std::size_t v = 0; v < NumUsers(); ++v) {
      ASSERT_EQ(loaded.value().shards.At(u, v), model.Score(u, v).value())
          << u << "," << v;
    }
  }
}

TEST_F(PartitionedFitTest, ShardedArtifactDetectsCorruption) {
  SlamPred model(PartitionedConfig());
  ASSERT_TRUE(model.Fit(generated_->networks, *train_graph_).ok());
  auto artifact = MakeModelArtifact(model, false);
  ASSERT_TRUE(artifact.ok());
  std::string bytes = SerializeModelArtifact(artifact.value());
  // Flip one bit deep inside the shard payload region; the section
  // CRC-32 must reject the load.
  bytes[2 * bytes.size() / 3] ^= 0x40;
  auto loaded = DeserializeModelArtifact(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST_F(PartitionedFitTest, ShardedSessionServesWithoutDensifying) {
  SlamPredConfig config = PartitionedConfig();
  config.solver_backend = SolverBackend::kFactored;
  config.factored.rank = 8;
  SlamPred model(config);
  ASSERT_TRUE(model.Fit(generated_->networks, *train_graph_).ok());
  auto artifact = MakeModelArtifact(model, false);
  ASSERT_TRUE(artifact.ok());
  auto session = ScoringSession::FromArtifact(std::move(artifact).value());
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  EXPECT_EQ(session.value().backend(), ScoringSession::Backend::kSharded);
  // The serve path must not materialise a dense n x n matrix.
  EXPECT_TRUE(session.value().artifact().s.empty());
  EXPECT_EQ(session.value().num_users(), NumUsers());

  std::vector<double> row;
  for (std::size_t u = 0; u < NumUsers(); ++u) {
    session.value().RowScores(u, row);
    ASSERT_EQ(row.size(), NumUsers());
    for (std::size_t v = 0; v < NumUsers(); ++v) {
      ASSERT_EQ(row[v], model.Score(u, v).value()) << u << "," << v;
      ASSERT_EQ(session.value().ScoreUnchecked(u, v),
                model.Score(u, v).value());
    }
  }
}

TEST_F(PartitionedFitTest, FactoredSessionServesFromFactors) {
  SlamPredConfig config = FastConfig();
  config.solver_backend = SolverBackend::kFactored;
  config.factored.rank = 8;
  SlamPred model(config);
  ASSERT_TRUE(model.Fit(generated_->networks, *train_graph_).ok());
  auto artifact = MakeModelArtifact(model, false);
  ASSERT_TRUE(artifact.ok());
  ASSERT_TRUE(artifact.value().has_low_rank);
  auto session = ScoringSession::FromArtifact(std::move(artifact).value());
  ASSERT_TRUE(session.ok());
  EXPECT_EQ(session.value().backend(), ScoringSession::Backend::kFactored);
  // Regression guard: loading a factored artifact used to densify
  // U·Vᵀ into artifact.s; it must now stay empty and score through the
  // factors.
  EXPECT_TRUE(session.value().artifact().s.empty());
  for (std::size_t u = 0; u < NumUsers(); u += 7) {
    for (std::size_t v = 0; v < NumUsers(); v += 3) {
      ASSERT_EQ(session.value().ScoreUnchecked(u, v),
                session.value().artifact().low_rank.At(u, v));
    }
  }
}

TEST_F(PartitionedFitTest, ShardedTopKOrderMatchesBruteForce) {
  SlamPred model(PartitionedConfig());
  ASSERT_TRUE(model.Fit(generated_->networks, *train_graph_).ok());
  auto artifact = MakeModelArtifact(model, false);
  ASSERT_TRUE(artifact.ok());
  auto session = ScoringSession::FromArtifact(std::move(artifact).value());
  ASSERT_TRUE(session.ok());

  std::vector<double> row;
  for (std::size_t u = 0; u < NumUsers(); u += 5) {
    const TopKRowOrder order = BuildTopKRowOrder(session.value(), u);
    ASSERT_EQ(order.size(), NumUsers() - 1);

    session.value().RowScores(u, row);
    std::vector<std::uint32_t> expected;
    for (std::size_t v = 0; v < NumUsers(); ++v) {
      if (v != u) expected.push_back(static_cast<std::uint32_t>(v));
    }
    std::sort(expected.begin(), expected.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                if (row[a] != row[b]) return row[a] > row[b];
                return a < b;
              });
    ASSERT_EQ(order, expected) << "row " << u;
  }
}

TEST_F(PartitionedFitTest, SwapShardRepublishesOneCluster) {
  SlamPred model(PartitionedConfig());
  ASSERT_TRUE(model.Fit(generated_->networks, *train_graph_).ok());
  auto artifact = MakeModelArtifact(model, false);
  ASSERT_TRUE(artifact.ok());

  ModelRegistry registry;
  // Nothing published yet: per-shard swap has no base to patch.
  ModelShard first = model.ShardedScoreMatrix().shards()[0];
  EXPECT_EQ(registry.SwapShard(0, first).code(),
            StatusCode::kFailedPrecondition);

  ASSERT_TRUE(registry.Swap(artifact.value()).ok());
  EXPECT_EQ(registry.current_version(), 1u);

  // Republishing the same shard is a valid (identity) hot-swap.
  ASSERT_TRUE(registry.SwapShard(0, first).ok());
  EXPECT_EQ(registry.current_version(), 2u);
  const auto published = registry.Acquire();
  for (std::size_t u = 0; u < NumUsers(); u += 3) {
    for (std::size_t v = 0; v < NumUsers(); v += 5) {
      ASSERT_EQ(published->session.ScoreUnchecked(u, v),
                model.Score(u, v).value());
    }
  }

  // A shard covering different users never swaps in.
  ModelShard truncated = first;
  truncated.users.pop_back();
  const Status wrong_users = registry.SwapShard(0, truncated);
  ASSERT_FALSE(wrong_users.ok());
  EXPECT_EQ(registry.current_version(), 2u);
  // Both rejected swaps count: the no-model attempt above and this one.
  EXPECT_EQ(registry.recovery().swap_failures, 2u);

  // A dense (unsharded) published artifact rejects per-shard swaps.
  SlamPred dense_model(FastConfig());
  ASSERT_TRUE(dense_model.Fit(generated_->networks, *train_graph_).ok());
  auto dense_artifact = MakeModelArtifact(dense_model, false);
  ASSERT_TRUE(dense_artifact.ok());
  ModelRegistry dense_registry;
  ASSERT_TRUE(dense_registry.Swap(dense_artifact.value()).ok());
  EXPECT_EQ(dense_registry.SwapShard(0, first).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(PartitionedFitTest, ClusterFaultIsRetriedOnce) {
  FaultSpec spec;
  spec.kind = FaultKind::kFailNotConverged;
  spec.max_triggers = 1;
  FaultInjector::Instance().Arm("fit.cluster", spec);

  SlamPred model(PartitionedConfig());
  ASSERT_TRUE(model.Fit(generated_->networks, *train_graph_).ok());
  EXPECT_EQ(FaultInjector::Instance().TriggerCount("fit.cluster"), 1);
  // The retried cluster is accounted as a checkpoint resume.
  EXPECT_GE(model.trace().recovery.checkpoint_resumes, 1u);
}

TEST_F(PartitionedFitTest, PersistentClusterFaultFailsWithDiagnosis) {
  FaultSpec spec;
  spec.kind = FaultKind::kFailNotConverged;
  spec.max_triggers = -1;  // Every attempt, retry included.
  FaultInjector::Instance().Arm("fit.cluster", spec);

  SlamPred model(PartitionedConfig());
  const Status status = model.Fit(generated_->networks, *train_graph_);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotConverged);
  EXPECT_NE(status.message().find("cluster"), std::string::npos)
      << status.ToString();
  EXPECT_FALSE(model.partitioned());
}

}  // namespace
}  // namespace slampred
