// Tests for the factored low-rank solver backend: the CSR intimacy
// gradient against the dense builder bit for bit, the dense-vs-factored
// equivalence gate (matched regime: γ = 0, no box projection, full-rank
// sketch), bit-identical factored solves at 1, 2 and 7 threads,
// identical ranking metrics on a seed-style experiment, and the
// "prox.factored" / "svd.prox" / "fb.grad_step" injection suites
// covering the guardrail chain on the new backend.

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/slampred.h"
#include "datagen/aligned_generator.h"
#include "eval/anchor_sampler.h"
#include "eval/link_split.h"
#include "eval/metrics.h"
#include "linalg/csr_matrix.h"
#include "linalg/factored_matrix.h"
#include "linalg/matrix.h"
#include "linalg/sparse_tensor3.h"
#include "optim/cccp.h"
#include "optim/factored_solver.h"
#include "optim/objective.h"
#include "util/fault_injection.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace slampred {
namespace {

#if SLAMPRED_FAULT_INJECTION_ENABLED
#define SLAMPRED_REQUIRE_INJECTION()
#else
#define SLAMPRED_REQUIRE_INJECTION() \
  GTEST_SKIP() << "fault injection compiled out"
#endif

template <typename Check>
void ForEachThreadCount(Check check) {
  const std::size_t previous = ThreadPool::Global().num_threads();
  for (std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{7}}) {
    ThreadPool::Global().Resize(threads);
    check(threads);
  }
  ThreadPool::Global().Resize(previous);
}

// A symmetric sparse non-negative "adjacency" on n users.
CsrMatrix TestAdjacency(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix a(n, n);
  for (std::size_t e = 0; e < n * 3; ++e) {
    const std::size_t i = rng.NextBounded(n);
    const std::size_t j = rng.NextBounded(n);
    if (i == j) continue;
    a(i, j) = 1.0;
    a(j, i) = 1.0;
  }
  return CsrMatrix::FromDense(a);
}

// A small non-negative symmetric G, dense and CSR twins.
Matrix TestGradient(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix g(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.NextDouble() < 0.3) {
        const double v = 0.2 * rng.NextDouble();
        g(i, j) = v;
        g(j, i) = v;
      }
    }
  }
  return g;
}

// The matched regime where the factored path computes exactly what the
// dense path computes (up to rounding): γ = 0 (no entry-wise ℓ₁ prox),
// no box projection, tol = 0 so both run the full iteration budget.
CccpOptions MatchedOptions() {
  CccpOptions options;
  options.inner.theta = 0.05;
  options.inner.max_iterations = 40;
  options.inner.tol = 0.0;
  options.inner.project_unit_box = false;
  options.max_outer_iterations = 2;
  options.outer_tol = 0.0;
  return options;
}

// Full-rank sketch: the range finder spans the whole space, so the
// factored prox equals the dense prox to rounding.
FactoredSolverOptions FullRankSketch(std::size_t n) {
  FactoredSolverOptions factored;
  factored.rank = n;
  factored.oversampling = 0;
  return factored;
}

constexpr std::size_t kN = 24;

TEST(FactoredSolverTest, IntimacyGradientCsrMatchesDenseBitForBit) {
  const std::size_t n = 19;
  Rng rng(5);
  std::vector<SparseTensor3> tensors;
  for (std::size_t k = 0; k < 2; ++k) {
    Tensor3 dense(3, n, n);
    for (double& v : dense.data()) {
      const double gauss = rng.NextGaussian();
      if (rng.NextDouble() < 0.2) v = std::abs(gauss);
    }
    tensors.push_back(SparseTensor3::FromDense(dense));
  }
  const std::vector<double> weights = {0.7, 1.3};

  const Matrix dense_g = BuildIntimacyGradient(tensors, weights, n);
  const CsrMatrix csr_g = BuildIntimacyGradientCsr(tensors, weights, n);
  const Matrix csr_dense = csr_g.ToDense();
  ASSERT_EQ(csr_dense.rows(), n);
  for (std::size_t i = 0; i < dense_g.data().size(); ++i) {
    EXPECT_EQ(csr_dense.data()[i], dense_g.data()[i]) << "flat index " << i;
  }
}

TEST(FactoredSolverTest, FactoredApproximationRecoversSparseMatrix) {
  const CsrMatrix a = TestAdjacency(kN, 7);
  auto s0 = FactoredApproximation(a, FullRankSketch(kN));
  ASSERT_TRUE(s0.ok()) << s0.status().ToString();
  EXPECT_LT((s0.value().ToDense() - a.ToDense()).MaxAbs(), 1e-8);
}

TEST(FactoredSolverTest, MatchedRegimeMatchesDenseOracle) {
  Objective dense;
  dense.a = TestAdjacency(kN, 11);
  dense.grad_v = TestGradient(kN, 12);
  dense.gamma = 0.0;
  dense.tau = 0.5;

  FactoredObjective factored;
  factored.a = dense.a;
  factored.grad_v = CsrMatrix::FromDense(dense.grad_v);
  factored.gamma = 0.0;
  factored.tau = 0.5;

  const CccpOptions options = MatchedOptions();
  CccpTrace dense_trace;
  auto dense_s = SolveCccp(dense, options, &dense_trace);
  ASSERT_TRUE(dense_s.ok()) << dense_s.status().ToString();

  CccpTrace factored_trace;
  auto factored_s = SolveCccpFactored(factored, options, FullRankSketch(kN),
                                      &factored_trace);
  ASSERT_TRUE(factored_s.ok()) << factored_s.status().ToString();

  // Same fixed point entry-wise...
  EXPECT_LT((factored_s.value().ToDense() - dense_s.value()).MaxAbs(), 1e-6);
  EXPECT_EQ(factored_trace.outer_iterations, dense_trace.outer_iterations);

  // ...and the same objective value (evaluated by each backend's own
  // evaluator — the trajectory gate).
  const std::vector<SparseTensor3> no_tensors;
  const std::vector<double> no_weights;
  const double dense_value =
      FullObjectiveValue(dense, dense_s.value(), no_tensors, no_weights);
  const double factored_value = FactoredObjectiveValue(
      factored, factored_s.value(), no_tensors, no_weights);
  EXPECT_NEAR(factored_value, dense_value, 1e-6 * (1.0 + std::abs(dense_value)));
}

TEST(FactoredSolverTest, FactoredSolveIsBitIdenticalAcrossThreadCounts) {
  FactoredObjective objective;
  objective.a = TestAdjacency(31, 21);
  objective.grad_v = CsrMatrix::FromDense(TestGradient(31, 22));
  objective.gamma = 0.1;
  objective.tau = 0.5;

  CccpOptions options = MatchedOptions();
  options.inner.max_iterations = 20;

  FactoredSolverOptions factored;
  factored.rank = 8;
  factored.oversampling = 4;

  ThreadPool::Global().Resize(1);
  auto reference = SolveCccpFactored(objective, options, factored);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  ForEachThreadCount([&](std::size_t threads) {
    auto s = SolveCccpFactored(objective, options, factored);
    ASSERT_TRUE(s.ok()) << s.status().ToString();
    EXPECT_EQ(s.value().u().data(), reference.value().u().data())
        << "U at " << threads << " threads";
    EXPECT_EQ(s.value().v().data(), reference.value().v().data())
        << "V at " << threads << " threads";
  });
}

TEST(FactoredSolverTest, HingeLossIsRejected) {
  FactoredObjective objective;
  objective.a = TestAdjacency(8, 31);
  objective.grad_v = CsrMatrix::FromDense(Matrix(8, 8));
  objective.loss = LossKind::kSquaredHinge;
  auto s = SolveCccpFactored(objective, MatchedOptions(), FullRankSketch(8));
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------
// Seed-experiment metric equivalence: dense and factored fits of the
// same bundle in the matched regime must rank links identically.

class FactoredMetricsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    AlignedGeneratorConfig config = DefaultExperimentConfig(31);
    config.population.num_personas = 120;
    auto gen = GenerateAligned(config);
    ASSERT_TRUE(gen.ok());
    generated_ = new GeneratedAligned(std::move(gen).value());
    full_graph_ = new SocialGraph(SocialGraph::FromHeterogeneousNetwork(
        generated_->networks.target()));
    Rng rng(3);
    auto folds = SplitLinks(*full_graph_, 5, rng);
    ASSERT_TRUE(folds.ok());
    train_graph_ = new SocialGraph(
        full_graph_->WithEdgesRemoved(folds.value()[0].test_edges));
    auto eval = BuildEvaluationSet(*full_graph_, folds.value()[0].test_edges,
                                   4.0, rng);
    ASSERT_TRUE(eval.ok());
    eval_ = new EvaluationSet(std::move(eval).value());
  }

  static void TearDownTestSuite() {
    delete generated_;
    delete full_graph_;
    delete train_graph_;
    delete eval_;
    generated_ = nullptr;
  }

  // The matched regime on the full model config.
  static SlamPredConfig MatchedConfig() {
    SlamPredConfig config;
    config.gamma = 0.0;
    config.optimization.inner.theta = 0.05;
    config.optimization.inner.max_iterations = 30;
    config.optimization.inner.tol = 0.0;
    config.optimization.inner.project_unit_box = false;
    config.optimization.max_outer_iterations = 2;
    config.optimization.outer_tol = 0.0;
    return config;
  }

  static GeneratedAligned* generated_;
  static SocialGraph* full_graph_;
  static SocialGraph* train_graph_;
  static EvaluationSet* eval_;
};

GeneratedAligned* FactoredMetricsTest::generated_ = nullptr;
SocialGraph* FactoredMetricsTest::full_graph_ = nullptr;
SocialGraph* FactoredMetricsTest::train_graph_ = nullptr;
EvaluationSet* FactoredMetricsTest::eval_ = nullptr;

TEST_F(FactoredMetricsTest, MatchedRegimeFitMatchesDenseMetrics) {
  SlamPredConfig dense_config = MatchedConfig();
  SlamPred dense(dense_config);
  ASSERT_TRUE(dense.Fit(generated_->networks, *train_graph_).ok());

  SlamPredConfig factored_config = MatchedConfig();
  factored_config.solver_backend = SolverBackend::kFactored;
  factored_config.factored.rank = full_graph_->num_users();
  factored_config.factored.oversampling = 0;
  SlamPred factored(factored_config);
  ASSERT_TRUE(factored.Fit(generated_->networks, *train_graph_).ok());
  EXPECT_GT(factored.memory_stats().solver_rank, 0u);
  EXPECT_TRUE(factored.ScoreMatrix().empty());

  auto dense_scores = dense.ScorePairs(eval_->pairs);
  auto factored_scores = factored.ScorePairs(eval_->pairs);
  ASSERT_TRUE(dense_scores.ok());
  ASSERT_TRUE(factored_scores.ok());

  double max_diff = 0.0;
  for (std::size_t i = 0; i < dense_scores.value().size(); ++i) {
    max_diff = std::max(max_diff, std::abs(dense_scores.value()[i] -
                                           factored_scores.value()[i]));
  }
  // Rounding differences between the two solve paths accumulate over
  // the fixed iteration budget; what matters for the gate is that they
  // stay far below any score gap that could flip a ranking.
  EXPECT_LT(max_diff, 1e-4);

  const double dense_auc =
      ComputeAuc(dense_scores.value(), eval_->labels).value_or(-1.0);
  const double factored_auc =
      ComputeAuc(factored_scores.value(), eval_->labels).value_or(-2.0);
  EXPECT_NEAR(factored_auc, dense_auc, 1e-9);

  const double dense_p100 =
      ComputePrecisionAtK(dense_scores.value(), eval_->labels, 100)
          .value_or(-1.0);
  const double factored_p100 =
      ComputePrecisionAtK(factored_scores.value(), eval_->labels, 100)
          .value_or(-2.0);
  EXPECT_EQ(factored_p100, dense_p100);
}

TEST_F(FactoredMetricsTest, FactoredMetricsAreThreadCountInvariant) {
  SlamPredConfig config = MatchedConfig();
  config.solver_backend = SolverBackend::kFactored;
  config.factored.rank = 24;
  config.factored.oversampling = 8;
  config.optimization.inner.max_iterations = 15;

  ThreadPool::Global().Resize(1);
  SlamPred reference(config);
  ASSERT_TRUE(reference.Fit(generated_->networks, *train_graph_).ok());
  auto reference_scores = reference.ScorePairs(eval_->pairs);
  ASSERT_TRUE(reference_scores.ok());

  ForEachThreadCount([&](std::size_t threads) {
    SlamPred model(config);
    ASSERT_TRUE(model.Fit(generated_->networks, *train_graph_).ok());
    auto scores = model.ScorePairs(eval_->pairs);
    ASSERT_TRUE(scores.ok());
    EXPECT_EQ(scores.value(), reference_scores.value())
        << "scores at " << threads << " threads";
  });
}

// ---------------------------------------------------------------------
// Injection suites: the factored prox sits behind the same "svd.prox"
// fault site as the dense backends plus its own "prox.factored" site,
// and the factored inner loop honors "fb.grad_step".

class FactoredFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Instance().Reset(); }
  void TearDown() override { FaultInjector::Instance().Reset(); }

  // Small fixture converging hard, so clean and recovered solves land
  // on the same fixed point.
  static FactoredObjective SmallObjective() {
    FactoredObjective objective;
    objective.a = CsrMatrix::FromDense(Matrix{{0.0, 1.0, 0.0},
                                              {1.0, 0.0, 1.0},
                                              {0.0, 1.0, 0.0}});
    Matrix g(3, 3, 0.2);
    for (std::size_t i = 0; i < 3; ++i) g(i, i) = 0.0;
    objective.grad_v = CsrMatrix::FromDense(g);
    objective.gamma = 0.05;
    objective.tau = 0.05;
    return objective;
  }

  static CccpOptions TightOptions() {
    CccpOptions options;
    options.inner.theta = 0.05;
    options.inner.max_iterations = 3000;
    options.inner.tol = 1e-11;
    options.inner.project_unit_box = false;
    options.max_outer_iterations = 3;
    return options;
  }

  static FactoredSolverOptions SmallSketch() { return FullRankSketch(3); }
};

TEST_F(FactoredFaultTest, ProxFactoredFaultTriggersFallbackChain) {
  SLAMPRED_REQUIRE_INJECTION();
  const FactoredObjective objective = SmallObjective();
  const CccpOptions options = TightOptions();

  CccpTrace clean_trace;
  auto clean = SolveCccpFactored(objective, options, SmallSketch(),
                                 &clean_trace);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_EQ(clean_trace.recovery.Total(), 0);

  FaultSpec spec;
  spec.kind = FaultKind::kFailNotConverged;
  spec.trigger_after = 3;
  spec.max_triggers = 1;
  FaultInjector::Instance().Arm("prox.factored", spec);

  CccpTrace trace;
  auto faulted = SolveCccpFactored(objective, options, SmallSketch(), &trace);
  ASSERT_TRUE(faulted.ok()) << faulted.status().ToString();
  EXPECT_GE(trace.recovery.svd_fallbacks, 1);
  EXPECT_EQ(FaultInjector::Instance().TriggerCount("prox.factored"), 1);
  EXPECT_LT((faulted.value().ToDense() - clean.value().ToDense()).MaxAbs(),
            1e-6);
}

TEST_F(FactoredFaultTest, ProxFactoredPoisonIsCaughtByFallback) {
  SLAMPRED_REQUIRE_INJECTION();
  const FactoredObjective objective = SmallObjective();
  const CccpOptions options = TightOptions();
  auto clean = SolveCccpFactored(objective, options, SmallSketch());
  ASSERT_TRUE(clean.ok());

  FaultSpec spec;
  spec.kind = FaultKind::kPoisonNaN;
  spec.trigger_after = 1;
  spec.max_triggers = 1;
  FaultInjector::Instance().Arm("prox.factored", spec);

  CccpTrace trace;
  auto faulted = SolveCccpFactored(objective, options, SmallSketch(), &trace);
  ASSERT_TRUE(faulted.ok()) << faulted.status().ToString();
  EXPECT_GE(trace.recovery.Total(), 1);
  EXPECT_TRUE(faulted.value().IsFinite());
  EXPECT_LT((faulted.value().ToDense() - clean.value().ToDense()).MaxAbs(),
            1e-6);
}

TEST_F(FactoredFaultTest, SvdProxSiteAlsoCoversTheFactoredBackend) {
  SLAMPRED_REQUIRE_INJECTION();
  const FactoredObjective objective = SmallObjective();
  const CccpOptions options = TightOptions();
  auto clean = SolveCccpFactored(objective, options, SmallSketch());
  ASSERT_TRUE(clean.ok());

  FaultSpec spec;
  spec.kind = FaultKind::kFailNotConverged;
  spec.trigger_after = 2;
  spec.max_triggers = 1;
  FaultInjector::Instance().Arm("svd.prox", spec);

  CccpTrace trace;
  auto faulted = SolveCccpFactored(objective, options, SmallSketch(), &trace);
  ASSERT_TRUE(faulted.ok()) << faulted.status().ToString();
  EXPECT_GE(trace.recovery.svd_fallbacks, 1);
  EXPECT_EQ(FaultInjector::Instance().TriggerCount("svd.prox"), 1);
  EXPECT_LT((faulted.value().ToDense() - clean.value().ToDense()).MaxAbs(),
            1e-6);
}

TEST_F(FactoredFaultTest, GradStepPoisonRollsBackAndRecovers) {
  SLAMPRED_REQUIRE_INJECTION();
  const FactoredObjective objective = SmallObjective();
  const CccpOptions options = TightOptions();
  auto clean = SolveCccpFactored(objective, options, SmallSketch());
  ASSERT_TRUE(clean.ok());

  FaultSpec spec;
  spec.kind = FaultKind::kPoisonNaN;
  spec.trigger_after = 2;
  spec.max_triggers = 1;
  FaultInjector::Instance().Arm("fb.grad_step", spec);

  CccpTrace trace;
  auto faulted = SolveCccpFactored(objective, options, SmallSketch(), &trace);
  ASSERT_TRUE(faulted.ok()) << faulted.status().ToString();
  EXPECT_GE(trace.recovery.nan_rollbacks, 1);
  EXPECT_LT((faulted.value().ToDense() - clean.value().ToDense()).MaxAbs(),
            1e-6);
}

TEST_F(FactoredFaultTest, PersistentFaultExhaustsInnerBudgetThenResumes) {
  SLAMPRED_REQUIRE_INJECTION();
  const FactoredObjective objective = SmallObjective();
  CccpOptions options = TightOptions();
  options.inner.guardrails.max_recoveries = 4;

  FaultSpec spec;
  spec.kind = FaultKind::kPoisonNaN;
  spec.max_triggers = 6;
  FaultInjector::Instance().Arm("fb.grad_step", spec);

  CccpTrace trace;
  auto faulted = SolveCccpFactored(objective, options, SmallSketch(), &trace);
  ASSERT_TRUE(faulted.ok()) << faulted.status().ToString();
  EXPECT_GE(trace.recovery.checkpoint_resumes, 1);
  EXPECT_GE(trace.recovery.nan_rollbacks, 5);
  EXPECT_TRUE(faulted.value().IsFinite());
}

TEST_F(FactoredFaultTest, UnrecoverableFaultReturnsStatusNotAbort) {
  SLAMPRED_REQUIRE_INJECTION();
  const FactoredObjective objective = SmallObjective();
  CccpOptions options = TightOptions();
  options.inner.guardrails.max_recoveries = 2;
  options.inner.guardrails.max_checkpoint_resumes = 1;

  FaultSpec spec;
  spec.kind = FaultKind::kPoisonNaN;
  spec.max_triggers = -1;
  FaultInjector::Instance().Arm("fb.grad_step", spec);

  CccpTrace trace;
  auto faulted = SolveCccpFactored(objective, options, SmallSketch(), &trace);
  ASSERT_FALSE(faulted.ok());
  EXPECT_EQ(faulted.status().code(), StatusCode::kNotConverged);
  EXPECT_GE(trace.recovery.checkpoint_resumes, 1);
}

TEST_F(FactoredFaultTest, GuardrailsDisabledPropagatesProxFailure) {
  SLAMPRED_REQUIRE_INJECTION();
  const FactoredObjective objective = SmallObjective();
  CccpOptions options = TightOptions();
  options.inner.guardrails.enabled = false;

  FaultSpec spec;
  spec.kind = FaultKind::kFailNotConverged;
  spec.max_triggers = 1;
  FaultInjector::Instance().Arm("prox.factored", spec);

  auto faulted = SolveCccpFactored(objective, options, SmallSketch());
  ASSERT_FALSE(faulted.ok());
  EXPECT_EQ(faulted.status().code(), StatusCode::kNotConverged);
}

}  // namespace
}  // namespace slampred
