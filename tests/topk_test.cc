// Property tests for per-user top-K retrieval: TopK(u, k) must equal a
// sort-based reference for every user and the edge values of k,
// known-link exclusion must mask exactly the CSR adjacency row of u, and
// LRU eviction in the row cache may change timing but never results.

#include "serve/topk_index.h"

#include <algorithm>
#include <cstddef>
#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/model_artifact.h"
#include "core/scoring_service.h"
#include "graph/social_graph.h"
#include "linalg/csr_matrix.h"
#include "linalg/matrix.h"
#include "util/random.h"

namespace slampred {
namespace {

Matrix RandomScores(std::size_t n, std::uint64_t seed) {
  Matrix s(n, n);
  Rng rng(seed);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = 0; v < n; ++v) {
      // Coarse buckets so duplicate scores (ties) actually occur.
      s(u, v) = static_cast<double>(rng.NextBounded(16));
    }
  }
  return s;
}

ModelArtifact ArtifactFromScores(const Matrix& s) {
  ModelArtifact artifact;
  artifact.s = s;
  return artifact;
}

SocialGraph RandomGraph(std::size_t n, std::uint64_t seed) {
  SocialGraph graph(n);
  Rng rng(seed);
  for (std::size_t i = 0; i < 3 * n; ++i) {
    const std::size_t u = rng.NextBounded(n);
    const std::size_t v = rng.NextBounded(n);
    if (u != v) (void)graph.AddEdge(u, v);
  }
  return graph;
}

// The independent reference: full sort, descending score, ascending
// column on ties, u itself excluded, then optional known-link masking.
std::vector<TopKEntry> ReferenceTopK(const Matrix& s, std::size_t u,
                                     std::size_t k,
                                     const SocialGraph* exclude) {
  std::vector<TopKEntry> all;
  for (std::size_t v = 0; v < s.cols(); ++v) {
    if (v == u) continue;
    if (exclude != nullptr && exclude->HasEdge(u, v)) continue;
    all.push_back({v, s(u, v)});
  }
  std::sort(all.begin(), all.end(), [](const TopKEntry& a,
                                       const TopKEntry& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.v < b.v;
  });
  if (all.size() > k) all.resize(k);
  return all;
}

void ExpectSameEntries(const std::vector<TopKEntry>& got,
                       const std::vector<TopKEntry>& expected,
                       const std::string& context) {
  ASSERT_EQ(got.size(), expected.size()) << context;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].v, expected[i].v) << context << " rank " << i;
    EXPECT_EQ(got[i].score, expected[i].score) << context << " rank " << i;
  }
}

TEST(TopKTest, MatchesSortReferenceForAllUsersAndEdgeKs) {
  const std::size_t n = 23;
  const Matrix s = RandomScores(n, 11);
  ModelRegistry registry;
  ASSERT_TRUE(registry.Swap(ArtifactFromScores(s)).ok());
  ScoringService service(&registry);

  for (std::size_t u = 0; u < n; ++u) {
    for (const std::size_t k : {std::size_t{0}, std::size_t{1},
                                std::size_t{5}, n - 1, n}) {
      auto got = service.TopK(u, k, false);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      const auto expected = ReferenceTopK(s, u, k, nullptr);
      ExpectSameEntries(got.value().entries, expected,
                        "u=" + std::to_string(u) +
                            " k=" + std::to_string(k));
      // k can never return more than the n-1 other users.
      EXPECT_LE(got.value().entries.size(), n - 1);
    }
  }
}

TEST(TopKTest, TiesBreakByAscendingColumn) {
  const std::size_t n = 9;
  Matrix s(n, n);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = 0; v < n; ++v) s(u, v) = 1.0;
  }
  ModelRegistry registry;
  ASSERT_TRUE(registry.Swap(ArtifactFromScores(s)).ok());
  ScoringService service(&registry);

  for (std::size_t u = 0; u < n; ++u) {
    auto got = service.TopK(u, n, false);
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(got.value().entries.size(), n - 1);
    // All-equal scores: the order is every other column, ascending.
    std::size_t expected_v = 0;
    for (const TopKEntry& entry : got.value().entries) {
      if (expected_v == u) ++expected_v;
      EXPECT_EQ(entry.v, expected_v);
      ++expected_v;
    }
  }
}

TEST(TopKTest, ExclusionMasksExactlyTheAdjacencyRow) {
  const std::size_t n = 21;
  const Matrix s = RandomScores(n, 29);
  const SocialGraph graph = RandomGraph(n, 31);
  const CsrMatrix adjacency = graph.AdjacencyCsr();
  ASSERT_GT(graph.num_edges(), 0u);

  ModelRegistry registry;
  ASSERT_TRUE(registry.Swap(ArtifactFromScores(s), adjacency).ok());
  ScoringService service(&registry);

  for (std::size_t u = 0; u < n; ++u) {
    auto masked = service.TopK(u, n, true);
    auto unmasked = service.TopK(u, n, false);
    ASSERT_TRUE(masked.ok() && unmasked.ok());

    // Exactly deg(u) candidates disappear — no more, no fewer.
    ASSERT_EQ(masked.value().entries.size(), n - 1 - graph.Degree(u));
    ASSERT_EQ(unmasked.value().entries.size(), n - 1);

    std::set<std::size_t> returned;
    for (const TopKEntry& entry : masked.value().entries) {
      returned.insert(entry.v);
      EXPECT_FALSE(graph.HasEdge(u, entry.v))
          << "known link (" << u << ", " << entry.v << ") returned";
    }
    for (const std::size_t neighbor : graph.Neighbors(u)) {
      EXPECT_EQ(returned.count(neighbor), 0u);
    }
    // And the masked list is the reference list under the same mask.
    ExpectSameEntries(masked.value().entries,
                      ReferenceTopK(s, u, n, &graph),
                      "masked u=" + std::to_string(u));
  }
}

TEST(TopKTest, ExclusionWithoutKnownLinksIsANoOp) {
  const std::size_t n = 12;
  const Matrix s = RandomScores(n, 5);
  ModelRegistry registry;
  ASSERT_TRUE(registry.Swap(ArtifactFromScores(s)).ok());
  ScoringService service(&registry);
  for (std::size_t u = 0; u < n; ++u) {
    auto with = service.TopK(u, n, true);
    auto without = service.TopK(u, n, false);
    ASSERT_TRUE(with.ok() && without.ok());
    ExpectSameEntries(with.value().entries, without.value().entries,
                      "u=" + std::to_string(u));
  }
}

TEST(TopKTest, LruEvictionNeverChangesResults) {
  const std::size_t n = 17;
  const Matrix s = RandomScores(n, 43);
  ModelRegistryOptions options;
  options.max_resident_topk_rows = 2;  // Force constant eviction.
  ModelRegistry registry(options);
  ASSERT_TRUE(registry.Swap(ArtifactFromScores(s)).ok());
  ScoringService service(&registry);

  // Two full passes: the second pass re-queries rows long since evicted.
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t u = 0; u < n; ++u) {
      auto got = service.TopK(u, 6, false);
      ASSERT_TRUE(got.ok());
      ExpectSameEntries(got.value().entries,
                        ReferenceTopK(s, u, 6, nullptr),
                        "pass " + std::to_string(pass) +
                            " u=" + std::to_string(u));
    }
  }

  const TopKIndex& index = registry.Acquire()->topk;
  EXPECT_LE(index.resident_rows(), 2u);
  EXPECT_GT(index.evictions(), 0u);
  // Every row was rebuilt at least once after eviction.
  EXPECT_GE(index.builds(), n + 1);
}

TEST(TopKTest, RowOrdersAreBuiltLazilyAndCached) {
  const std::size_t n = 8;
  ModelRegistry registry;
  ASSERT_TRUE(registry.Swap(ArtifactFromScores(RandomScores(n, 3))).ok());
  ScoringService service(&registry);

  const TopKIndex& index = registry.Acquire()->topk;
  EXPECT_EQ(index.builds(), 0u);  // Nothing built before the first query.
  ASSERT_TRUE(service.TopK(4, 3, false).ok());
  EXPECT_EQ(index.builds(), 1u);
  ASSERT_TRUE(service.TopK(4, 5, false).ok());  // Same row, cache hit.
  EXPECT_EQ(index.builds(), 1u);
  ASSERT_TRUE(service.TopK(5, 3, false).ok());
  EXPECT_EQ(index.builds(), 2u);
  EXPECT_EQ(index.resident_rows(), 2u);
}

TEST(TopKTest, HeldRowSurvivesEvictionUnchanged) {
  const std::size_t n = 10;
  const Matrix s = RandomScores(n, 77);
  TopKIndex index(/*max_resident_rows=*/1);

  const std::shared_ptr<const TopKRowOrder> held = index.Row(s, 0);
  const TopKRowOrder copy = *held;
  // Thrash the one-slot cache until row 0 is long gone.
  for (std::size_t u = 1; u < n; ++u) (void)index.Row(s, u);
  EXPECT_GT(index.evictions(), 0u);

  // The handed-out row is immutable and still valid.
  EXPECT_EQ(*held, copy);
  // A rebuilt row 0 is bit-identical to the evicted one.
  EXPECT_EQ(*index.Row(s, 0), copy);
}

TEST(TopKTest, BuildOrderExcludesSelfAndCoversEveryOtherColumn) {
  const std::size_t n = 15;
  const Matrix s = RandomScores(n, 101);
  for (std::size_t u = 0; u < n; ++u) {
    const TopKRowOrder order = BuildTopKRowOrder(s, u);
    ASSERT_EQ(order.size(), n - 1);
    std::set<std::uint32_t> seen(order.begin(), order.end());
    EXPECT_EQ(seen.size(), n - 1);
    EXPECT_EQ(seen.count(static_cast<std::uint32_t>(u)), 0u);
    for (std::size_t i = 1; i < order.size(); ++i) {
      const double prev = s(u, order[i - 1]);
      const double cur = s(u, order[i]);
      EXPECT_TRUE(prev > cur || (prev == cur && order[i - 1] < order[i]))
          << "u=" << u << " position " << i;
    }
  }
}

}  // namespace
}  // namespace slampred
