// Tests for the SLAMPRED core model and its variants.

#include <gtest/gtest.h>

#include "core/slampred.h"
#include "datagen/aligned_generator.h"
#include "eval/anchor_sampler.h"
#include "eval/link_split.h"
#include "eval/metrics.h"

namespace slampred {
namespace {

// Fast optimisation settings for tests.
CccpOptions FastOptimization() {
  CccpOptions options;
  options.inner.max_iterations = 40;
  options.max_outer_iterations = 2;
  return options;
}

class SlamPredTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    AlignedGeneratorConfig config = DefaultExperimentConfig(31);
    config.population.num_personas = 120;
    auto gen = GenerateAligned(config);
    ASSERT_TRUE(gen.ok());
    generated_ = new GeneratedAligned(std::move(gen).value());
    full_graph_ = new SocialGraph(SocialGraph::FromHeterogeneousNetwork(
        generated_->networks.target()));
    Rng rng(3);
    auto folds = SplitLinks(*full_graph_, 5, rng);
    ASSERT_TRUE(folds.ok());
    test_edges_ = new std::vector<UserPair>(folds.value()[0].test_edges);
    train_graph_ = new SocialGraph(
        full_graph_->WithEdgesRemoved(*test_edges_));
    auto eval = BuildEvaluationSet(*full_graph_, *test_edges_, 4.0, rng);
    ASSERT_TRUE(eval.ok());
    eval_ = new EvaluationSet(std::move(eval).value());
  }

  static void TearDownTestSuite() {
    delete generated_;
    delete full_graph_;
    delete train_graph_;
    delete test_edges_;
    delete eval_;
    generated_ = nullptr;
  }

  static double AucOf(const SlamPred& model) {
    auto scores = model.ScorePairs(eval_->pairs);
    EXPECT_TRUE(scores.ok());
    return ComputeAuc(scores.value(), eval_->labels).value_or(0.0);
  }

  static GeneratedAligned* generated_;
  static SocialGraph* full_graph_;
  static SocialGraph* train_graph_;
  static std::vector<UserPair>* test_edges_;
  static EvaluationSet* eval_;
};

GeneratedAligned* SlamPredTest::generated_ = nullptr;
SocialGraph* SlamPredTest::full_graph_ = nullptr;
SocialGraph* SlamPredTest::train_graph_ = nullptr;
std::vector<UserPair>* SlamPredTest::test_edges_ = nullptr;
EvaluationSet* SlamPredTest::eval_ = nullptr;

TEST_F(SlamPredTest, VariantNames) {
  EXPECT_EQ(SlamPred().name(), "SLAMPRED");
  EXPECT_EQ(SlamPred(SlamPredTargetOnlyConfig()).name(), "SLAMPRED-T");
  EXPECT_EQ(SlamPred(SlamPredHomogeneousConfig()).name(), "SLAMPRED-H");
}

TEST_F(SlamPredTest, ScoreBeforeFitFails) {
  SlamPred model;
  EXPECT_FALSE(model.ScorePairs({{0, 1}}).ok());
}

TEST_F(SlamPredTest, FitProducesValidScoreMatrix) {
  SlamPredConfig config;
  config.optimization = FastOptimization();
  SlamPred model(config);
  ASSERT_TRUE(model.Fit(generated_->networks, *train_graph_).ok());
  const Matrix& s = model.ScoreMatrix();
  EXPECT_EQ(s.rows(), generated_->networks.target().NumUsers());
  EXPECT_TRUE(s.IsSymmetric(1e-9));
  for (double v : s.data()) {
    EXPECT_GE(v, -1e-12);
    EXPECT_LE(v, 1.0 + 1e-12);
  }
}

TEST_F(SlamPredTest, PredictsBetterThanRandom) {
  SlamPredConfig config;
  config.optimization = FastOptimization();
  SlamPred model(config);
  ASSERT_TRUE(model.Fit(generated_->networks, *train_graph_).ok());
  EXPECT_GT(AucOf(model), 0.65);
}

TEST_F(SlamPredTest, FullModelBeatsHomogeneous) {
  SlamPredConfig full_config;
  full_config.optimization = FastOptimization();
  SlamPred full(full_config);
  ASSERT_TRUE(full.Fit(generated_->networks, *train_graph_).ok());

  SlamPredConfig h_config = SlamPredHomogeneousConfig();
  h_config.optimization = FastOptimization();
  SlamPred homogeneous(h_config);
  ASSERT_TRUE(homogeneous.Fit(generated_->networks, *train_graph_).ok());

  EXPECT_GT(AucOf(full), AucOf(homogeneous));
}

TEST_F(SlamPredTest, DeterministicGivenSeed) {
  SlamPredConfig config;
  config.optimization = FastOptimization();
  SlamPred a(config);
  SlamPred b(config);
  ASSERT_TRUE(a.Fit(generated_->networks, *train_graph_).ok());
  ASSERT_TRUE(b.Fit(generated_->networks, *train_graph_).ok());
  EXPECT_EQ(a.ScoreMatrix(), b.ScoreMatrix());
}

TEST_F(SlamPredTest, UnalignedBundleEqualsTargetOnly) {
  Rng rng(5);
  const AlignedNetworks unaligned =
      WithAnchorRatio(generated_->networks, 0.0, rng);

  SlamPredConfig full_config;
  full_config.optimization = FastOptimization();
  SlamPred full(full_config);
  ASSERT_TRUE(full.Fit(unaligned, *train_graph_).ok());

  SlamPredConfig t_config = SlamPredTargetOnlyConfig();
  t_config.optimization = FastOptimization();
  SlamPred target_only(t_config);
  ASSERT_TRUE(target_only.Fit(generated_->networks, *train_graph_).ok());

  EXPECT_EQ(full.ScoreMatrix(), target_only.ScoreMatrix());
}

TEST_F(SlamPredTest, TraceIsPopulated) {
  SlamPredConfig config;
  config.optimization = FastOptimization();
  SlamPred model(config);
  ASSERT_TRUE(model.Fit(generated_->networks, *train_graph_).ok());
  EXPECT_GT(model.trace().steps.iterations, 0);
  EXPECT_EQ(model.trace().steps.s_norm_l1.size(),
            model.trace().steps.s_change_l1.size());
  EXPECT_GT(model.trace().outer_iterations, 0);
}

TEST_F(SlamPredTest, AdaptedTensorsExposed) {
  SlamPredConfig config;
  config.optimization = FastOptimization();
  config.latent_dim = 4;
  SlamPred model(config);
  ASSERT_TRUE(model.Fit(generated_->networks, *train_graph_).ok());
  ASSERT_EQ(model.adapted_tensors().size(), 2u);
  // Default: target features stay raw (9 slices), sources are projected
  // into the 4-dimensional latent space.
  EXPECT_EQ(model.adapted_tensors()[0].dim0(), 9u);
  EXPECT_EQ(model.adapted_tensors()[1].dim0(), 4u);
}

TEST_F(SlamPredTest, StrictPaperModeProjectsTargetToo) {
  SlamPredConfig config;
  config.optimization = FastOptimization();
  config.latent_dim = 4;
  config.project_target_features = true;
  SlamPred model(config);
  ASSERT_TRUE(model.Fit(generated_->networks, *train_graph_).ok());
  EXPECT_EQ(model.adapted_tensors()[0].dim0(), 4u);
}

TEST_F(SlamPredTest, ScoreAccessor) {
  SlamPredConfig config;
  config.optimization = FastOptimization();
  SlamPred model(config);
  ASSERT_TRUE(model.Fit(generated_->networks, *train_graph_).ok());
  EXPECT_DOUBLE_EQ(model.Score(0, 1).value(), model.ScoreMatrix()(0, 1));
}

TEST_F(SlamPredTest, ScoreBoundsChecked) {
  SlamPredConfig config;
  config.optimization = FastOptimization();
  SlamPred model(config);
  const std::size_t n = generated_->networks.target().NumUsers();
  EXPECT_EQ(model.Score(0, 1).status().code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(model.Fit(generated_->networks, *train_graph_).ok());
  EXPECT_TRUE(model.Score(n - 1, 0).ok());
  EXPECT_EQ(model.Score(n, 0).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(model.Score(0, n).status().code(), StatusCode::kOutOfRange);
  const auto batch = model.ScorePairs({{0, 1}, {n, 2}});
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), StatusCode::kOutOfRange);
  // The diagnostic names the offending pair, not just "out of range".
  EXPECT_NE(batch.status().message().find("pair 1"), std::string::npos);
}

TEST_F(SlamPredTest, MismatchedStructureRejected) {
  SlamPred model;
  SocialGraph wrong_size(3);
  EXPECT_FALSE(model.Fit(generated_->networks, wrong_size).ok());
}

TEST_F(SlamPredTest, HomogeneousUsesOnlyStructuralSlices) {
  SlamPredConfig config = SlamPredHomogeneousConfig();
  config.optimization = FastOptimization();
  config.domain_adaptation = false;  // Keep raw slices observable.
  SlamPred model(config);
  ASSERT_TRUE(model.Fit(generated_->networks, *train_graph_).ok());
  // 6 structural slices, no attribute slices.
  EXPECT_EQ(model.adapted_tensors()[0].dim0(), 6u);
}

TEST_F(SlamPredTest, PassthroughAblationRuns) {
  SlamPredConfig config;
  config.domain_adaptation = false;
  config.optimization = FastOptimization();
  SlamPred model(config);
  ASSERT_TRUE(model.Fit(generated_->networks, *train_graph_).ok());
  EXPECT_GT(AucOf(model), 0.55);
  // Passthrough keeps the raw 9 slices.
  EXPECT_EQ(model.adapted_tensors()[0].dim0(), 9u);
}

TEST_F(SlamPredTest, ZeroIntimacyFallsBackToAdjacency) {
  SlamPredConfig config;
  config.alpha_target = 0.0;
  config.alpha_sources = {0.0};
  config.gamma = 0.0;
  config.tau = 0.0;
  config.optimization = FastOptimization();
  config.optimization.inner.max_iterations = 400;
  config.optimization.inner.theta = 0.05;
  SlamPred model(config);
  ASSERT_TRUE(model.Fit(generated_->networks, *train_graph_).ok());
  // With no intimacy and no regularisation the optimum is S = A.
  EXPECT_LT((model.ScoreMatrix() -
             train_graph_->AdjacencyMatrix()).MaxAbs(),
            0.05);
}

}  // namespace
}  // namespace slampred
