// Tests for SVD, symmetric eigen, generalized eigen, Cholesky, LU and QR.

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/cholesky.h"
#include "linalg/generalized_eigen.h"
#include "linalg/lu.h"
#include "linalg/matrix_ops.h"
#include "linalg/qr.h"
#include "linalg/svd.h"
#include "linalg/symmetric_eigen.h"
#include "util/random.h"

namespace slampred {
namespace {

Matrix RandomSymmetric(std::size_t n, Rng& rng) {
  return Matrix::RandomGaussian(n, n, rng).Symmetrized();
}

Matrix RandomSpd(std::size_t n, Rng& rng) {
  const Matrix a = Matrix::RandomGaussian(n, n + 2, rng);
  Matrix spd = GramAAt(a);
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += 0.5;
  return spd;
}

double OrthonormalityError(const Matrix& q) {
  const Matrix gram = GramAtA(q);
  return (gram - Matrix::Identity(q.cols())).MaxAbs();
}

// ---------------------------------------------------------------- SVD --

class SvdParamTest
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(SvdParamTest, ReconstructsInput) {
  Rng rng(GetParam().first * 131 + GetParam().second);
  const Matrix a =
      Matrix::RandomGaussian(GetParam().first, GetParam().second, rng);
  auto svd = ComputeSvd(a);
  ASSERT_TRUE(svd.ok()) << svd.status().ToString();
  EXPECT_LT((svd.value().Reconstruct() - a).MaxAbs(), 1e-8);
}

TEST_P(SvdParamTest, SingularVectorsOrthonormal) {
  Rng rng(GetParam().first * 17 + GetParam().second + 3);
  const Matrix a =
      Matrix::RandomGaussian(GetParam().first, GetParam().second, rng);
  auto svd = ComputeSvd(a);
  ASSERT_TRUE(svd.ok());
  EXPECT_LT(OrthonormalityError(svd.value().u), 1e-8);
  EXPECT_LT(OrthonormalityError(svd.value().v), 1e-8);
}

TEST_P(SvdParamTest, SingularValuesSortedNonNegative) {
  Rng rng(GetParam().first * 23 + GetParam().second + 9);
  const Matrix a =
      Matrix::RandomGaussian(GetParam().first, GetParam().second, rng);
  auto svd = ComputeSvd(a);
  ASSERT_TRUE(svd.ok());
  const Vector& sigma = svd.value().singular_values;
  for (std::size_t i = 0; i < sigma.size(); ++i) {
    EXPECT_GE(sigma[i], 0.0);
    if (i > 0) EXPECT_LE(sigma[i], sigma[i - 1] + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SvdParamTest,
    ::testing::Values(std::make_pair(1u, 1u), std::make_pair(5u, 5u),
                      std::make_pair(8u, 3u), std::make_pair(3u, 8u),
                      std::make_pair(20u, 20u), std::make_pair(12u, 30u)));

TEST(SvdTest, KnownDiagonalMatrix) {
  const Matrix a = Matrix::Diagonal(Vector{3.0, 1.0, 2.0});
  auto svd = ComputeSvd(a);
  ASSERT_TRUE(svd.ok());
  EXPECT_NEAR(svd.value().singular_values[0], 3.0, 1e-12);
  EXPECT_NEAR(svd.value().singular_values[1], 2.0, 1e-12);
  EXPECT_NEAR(svd.value().singular_values[2], 1.0, 1e-12);
}

TEST(SvdTest, RankDeficientMatrix) {
  // Rank-1 outer product: exactly one non-zero singular value.
  Matrix a(4, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      a(i, j) = static_cast<double>((i + 1) * (j + 1));
    }
  }
  auto svd = ComputeSvd(a);
  ASSERT_TRUE(svd.ok());
  EXPECT_GT(svd.value().singular_values[0], 1.0);
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_NEAR(svd.value().singular_values[i], 0.0, 1e-9);
  }
}

TEST(SvdTest, ZeroMatrix) {
  auto svd = ComputeSvd(Matrix(3, 3));
  ASSERT_TRUE(svd.ok());
  EXPECT_NEAR(svd.value().singular_values.NormInf(), 0.0, 1e-15);
}

TEST(SvdTest, EmptyMatrixRejected) {
  EXPECT_FALSE(ComputeSvd(Matrix()).ok());
}

TEST(SvdTest, NuclearNormMatchesTraceForSpd) {
  Rng rng(77);
  const Matrix spd = RandomSpd(6, rng);
  auto nuc = NuclearNorm(spd);
  ASSERT_TRUE(nuc.ok());
  EXPECT_NEAR(nuc.value(), spd.Trace(), 1e-8);
}

TEST(SvdTest, SpectralNormEstimateMatchesTopSingularValue) {
  Rng rng(78);
  const Matrix a = Matrix::RandomGaussian(10, 6, rng);
  auto svd = ComputeSvd(a);
  ASSERT_TRUE(svd.ok());
  EXPECT_NEAR(SpectralNormEstimate(a, 200), svd.value().singular_values[0],
              1e-6);
}

// -------------------------------------------------------- Sym. eigen --

class SymEigenParamTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SymEigenParamTest, ReconstructsInput) {
  Rng rng(GetParam() * 13 + 1);
  const Matrix a = RandomSymmetric(GetParam(), rng);
  auto eig = ComputeSymmetricEigen(a);
  ASSERT_TRUE(eig.ok()) << eig.status().ToString();
  EXPECT_LT((eig.value().Reconstruct() - a).MaxAbs(), 1e-8);
}

TEST_P(SymEigenParamTest, EigenvectorsOrthonormalAndSorted) {
  Rng rng(GetParam() * 19 + 5);
  const Matrix a = RandomSymmetric(GetParam(), rng);
  auto eig = ComputeSymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_LT(OrthonormalityError(eig.value().eigenvectors), 1e-8);
  const Vector& lambda = eig.value().eigenvalues;
  for (std::size_t i = 1; i < lambda.size(); ++i) {
    EXPECT_GE(lambda[i], lambda[i - 1] - 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SymEigenParamTest,
                         ::testing::Values(1, 2, 3, 5, 10, 25));

TEST(SymEigenTest, KnownTwoByTwo) {
  // Eigenvalues of [[2,1],[1,2]] are 1 and 3.
  const Matrix a{{2.0, 1.0}, {1.0, 2.0}};
  auto eig = ComputeSymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig.value().eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(eig.value().eigenvalues[1], 3.0, 1e-12);
}

TEST(SymEigenTest, RejectsAsymmetric) {
  const Matrix a{{1.0, 5.0}, {0.0, 1.0}};
  EXPECT_FALSE(ComputeSymmetricEigen(a).ok());
}

TEST(SymEigenTest, EigenvalueEquationHolds) {
  Rng rng(33);
  const Matrix a = RandomSymmetric(7, rng);
  auto eig = ComputeSymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  for (std::size_t j = 0; j < 7; ++j) {
    const Vector v = eig.value().eigenvectors.Col(j);
    const Vector av = a * v;
    const Vector lv = v * eig.value().eigenvalues[j];
    EXPECT_LT((av - lv).NormInf(), 1e-8);
  }
}

// ---------------------------------------------------------- Cholesky --

TEST(CholeskyTest, FactorReconstructs) {
  Rng rng(44);
  const Matrix spd = RandomSpd(6, rng);
  auto chol = ComputeCholesky(spd);
  ASSERT_TRUE(chol.ok());
  const Matrix& l = chol.value().l;
  EXPECT_LT((MultiplyABt(l, l) - spd).MaxAbs(), 1e-9);
  // Strictly upper triangle must be zero.
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = i + 1; j < 6; ++j) {
      EXPECT_DOUBLE_EQ(l(i, j), 0.0);
    }
  }
}

TEST(CholeskyTest, SolveMatchesDirectSolution) {
  Rng rng(45);
  const Matrix spd = RandomSpd(5, rng);
  const Vector x_true = Vector{1.0, -2.0, 0.5, 3.0, -1.0};
  const Vector b = spd * x_true;
  auto chol = ComputeCholesky(spd);
  ASSERT_TRUE(chol.ok());
  const Vector x = CholeskySolve(chol.value(), b);
  EXPECT_LT((x - x_true).NormInf(), 1e-8);
}

TEST(CholeskyTest, RejectsIndefinite) {
  const Matrix indefinite{{1.0, 2.0}, {2.0, 1.0}};  // Eigenvalues 3, -1.
  EXPECT_FALSE(ComputeCholesky(indefinite).ok());
}

TEST(CholeskyTest, MatrixSubstitutions) {
  Rng rng(46);
  const Matrix spd = RandomSpd(4, rng);
  auto chol = ComputeCholesky(spd);
  ASSERT_TRUE(chol.ok());
  const Matrix b = Matrix::RandomGaussian(4, 3, rng);
  const Matrix y = ForwardSubstituteMatrix(chol.value().l, b);
  const Matrix x = BackSubstituteTransposeMatrix(chol.value().l, y);
  EXPECT_LT((spd * x - b).MaxAbs(), 1e-8);
}

// ---------------------------------------------------------------- LU --

TEST(LuTest, SolveMatchesKnownSolution) {
  const Matrix a{{2.0, 1.0, 0.0}, {1.0, 3.0, 1.0}, {0.0, 1.0, 2.0}};
  const Vector x_true{1.0, 2.0, 3.0};
  const Vector b = a * x_true;
  auto lu = ComputeLu(a);
  ASSERT_TRUE(lu.ok());
  EXPECT_LT((LuSolve(lu.value(), b) - x_true).NormInf(), 1e-10);
}

TEST(LuTest, DeterminantMatchesHandComputation) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  auto lu = ComputeLu(a);
  ASSERT_TRUE(lu.ok());
  EXPECT_NEAR(LuDeterminant(lu.value()), -2.0, 1e-12);
}

TEST(LuTest, SingularMatrixRejected) {
  const Matrix singular{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_FALSE(ComputeLu(singular).ok());
}

TEST(LuTest, InverseTimesOriginalIsIdentity) {
  Rng rng(47);
  const Matrix a = Matrix::RandomGaussian(6, 6, rng);
  auto inv = Inverse(a);
  ASSERT_TRUE(inv.ok());
  EXPECT_LT((a * inv.value() - Matrix::Identity(6)).MaxAbs(), 1e-8);
}

TEST(LuTest, PivotingHandlesZeroLeadingEntry) {
  const Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  auto lu = ComputeLu(a);
  ASSERT_TRUE(lu.ok());
  EXPECT_NEAR(LuDeterminant(lu.value()), -1.0, 1e-12);
}

// ---------------------------------------------------------------- QR --

TEST(QrTest, FactorReconstructsAndQOrthonormal) {
  Rng rng(48);
  const Matrix a = Matrix::RandomGaussian(8, 4, rng);
  auto qr = ComputeQr(a);
  ASSERT_TRUE(qr.ok());
  EXPECT_LT((qr.value().q * qr.value().r - a).MaxAbs(), 1e-9);
  EXPECT_LT(OrthonormalityError(qr.value().q), 1e-9);
  // R upper triangular.
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      EXPECT_NEAR(qr.value().r(i, j), 0.0, 1e-12);
    }
  }
}

TEST(QrTest, LeastSquaresRecoversPlantedSolution) {
  Rng rng(49);
  const Matrix a = Matrix::RandomGaussian(20, 5, rng);
  Vector x_true(5);
  for (std::size_t i = 0; i < 5; ++i) x_true[i] = static_cast<double>(i) - 2;
  const Vector b = a * x_true;
  auto x = LeastSquares(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_LT((x.value() - x_true).NormInf(), 1e-8);
}

TEST(QrTest, WideMatrixRejected) {
  EXPECT_FALSE(ComputeQr(Matrix(2, 5, 1.0)).ok());
}

TEST(QrTest, OrthonormalizeDropsDependentColumns) {
  Matrix a(4, 3);
  a.SetCol(0, Vector{1.0, 0.0, 0.0, 0.0});
  a.SetCol(1, Vector{2.0, 0.0, 0.0, 0.0});  // Dependent on column 0.
  a.SetCol(2, Vector{0.0, 1.0, 0.0, 0.0});
  const Matrix basis = OrthonormalizeColumns(a);
  EXPECT_EQ(basis.cols(), 2u);
  EXPECT_LT(OrthonormalityError(basis), 1e-10);
}

// ------------------------------------------------- Generalized eigen --

TEST(GeneralizedEigenTest, IdentityBReducesToStandardProblem) {
  Rng rng(50);
  const Matrix a = RandomSymmetric(6, rng);
  auto gen = ComputeGeneralizedEigen(a, Matrix::Identity(6));
  auto std_eig = ComputeSymmetricEigen(a);
  ASSERT_TRUE(gen.ok());
  ASSERT_TRUE(std_eig.ok());
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(gen.value().eigenvalues[i], std_eig.value().eigenvalues[i],
                1e-6);
  }
}

TEST(GeneralizedEigenTest, SatisfiesDefiningEquation) {
  Rng rng(51);
  const Matrix a = RandomSymmetric(5, rng);
  const Matrix b = RandomSpd(5, rng);
  auto gen = ComputeGeneralizedEigen(a, b);
  ASSERT_TRUE(gen.ok());
  for (std::size_t j = 0; j < 5; ++j) {
    const Vector x = gen.value().eigenvectors.Col(j);
    const Vector ax = a * x;
    const Vector bx = b * x;
    EXPECT_LT((ax - bx * gen.value().eigenvalues[j]).NormInf(), 1e-6);
  }
}

TEST(GeneralizedEigenTest, VectorsAreBOrthonormal) {
  Rng rng(52);
  const Matrix a = RandomSymmetric(5, rng);
  const Matrix b = RandomSpd(5, rng);
  auto gen = ComputeGeneralizedEigen(a, b);
  ASSERT_TRUE(gen.ok());
  const Matrix& x = gen.value().eigenvectors;
  const Matrix gram = x.Transposed() * b * x;
  EXPECT_LT((gram - Matrix::Identity(5)).MaxAbs(), 1e-6);
}

TEST(GeneralizedEigenTest, SingularBIsRegularised) {
  // B is a Laplacian (singular); the ridge must make it solvable.
  const Matrix a = Matrix::Identity(3);
  const Matrix b{{1.0, -1.0, 0.0}, {-1.0, 2.0, -1.0}, {0.0, -1.0, 1.0}};
  auto gen = ComputeGeneralizedEigen(a, b);
  EXPECT_TRUE(gen.ok()) << gen.status().ToString();
}

TEST(GeneralizedEigenTest, SmallestNonZeroSelection) {
  // A diag(0, 1, 10), B = I: smallest non-zero eigenvalue is 1 → the
  // selected eigenvector should be e2 (up to sign).
  const Matrix a = Matrix::Diagonal(Vector{0.0, 1.0, 10.0});
  auto vecs = SmallestNonZeroEigenvectors(a, Matrix::Identity(3), 1);
  ASSERT_TRUE(vecs.ok());
  const Vector v = vecs.value().Col(0);
  EXPECT_NEAR(std::fabs(v[1]), 1.0, 1e-6);
  EXPECT_NEAR(v[0], 0.0, 1e-6);
  EXPECT_NEAR(v[2], 0.0, 1e-6);
}

TEST(GeneralizedEigenTest, ShapeMismatchRejected) {
  EXPECT_FALSE(
      ComputeGeneralizedEigen(Matrix::Identity(3), Matrix::Identity(4)).ok());
}

}  // namespace
}  // namespace slampred
