// Tests for Tensor3 and the CSR sparse matrix.

#include <gtest/gtest.h>

#include "linalg/csr_matrix.h"
#include "linalg/tensor3.h"
#include "util/random.h"

namespace slampred {
namespace {

TEST(Tensor3Test, ShapeAndAccess) {
  Tensor3 t(2, 3, 4);
  EXPECT_EQ(t.dim0(), 2u);
  EXPECT_EQ(t.dim1(), 3u);
  EXPECT_EQ(t.dim2(), 4u);
  t(1, 2, 3) = 5.0;
  EXPECT_DOUBLE_EQ(t.At(1, 2, 3), 5.0);
  EXPECT_DOUBLE_EQ(t(0, 0, 0), 0.0);
}

TEST(Tensor3Test, SliceRoundTrip) {
  Tensor3 t(3, 2, 2);
  Matrix slice{{1.0, 2.0}, {3.0, 4.0}};
  t.SetSlice(1, slice);
  EXPECT_EQ(t.Slice(1), slice);
  EXPECT_DOUBLE_EQ(t.Slice(0).MaxAbs(), 0.0);
}

TEST(Tensor3Test, FiberRoundTrip) {
  Tensor3 t(4, 3, 3);
  const Vector fiber{1.0, 2.0, 3.0, 4.0};
  t.SetFiber(1, 2, fiber);
  EXPECT_EQ(t.Fiber(1, 2), fiber);
  EXPECT_DOUBLE_EQ(t(2, 1, 2), 3.0);
}

TEST(Tensor3Test, SumSlices) {
  Tensor3 t(2, 2, 2);
  t.SetSlice(0, Matrix{{1.0, 2.0}, {3.0, 4.0}});
  t.SetSlice(1, Matrix{{10.0, 20.0}, {30.0, 40.0}});
  const Matrix sum = t.SumSlices();
  EXPECT_DOUBLE_EQ(sum(0, 0), 11.0);
  EXPECT_DOUBLE_EQ(sum(1, 1), 44.0);
}

TEST(Tensor3Test, MinMaxNormalizationMapsToUnitInterval) {
  Tensor3 t(2, 2, 2);
  t.SetSlice(0, Matrix{{-2.0, 0.0}, {2.0, 6.0}});
  t.SetSlice(1, Matrix{{5.0, 5.0}, {5.0, 5.0}});  // Constant slice.
  t.NormalizeSlicesMinMax();
  EXPECT_DOUBLE_EQ(t(0, 0, 0), 0.0);
  EXPECT_DOUBLE_EQ(t(0, 1, 1), 1.0);
  EXPECT_DOUBLE_EQ(t(0, 0, 1), 0.25);
  // Constant slices collapse to zero.
  EXPECT_DOUBLE_EQ(t.Slice(1).MaxAbs(), 0.0);
}

TEST(Tensor3Test, MaxAbs) {
  Tensor3 t(1, 2, 2);
  t(0, 1, 0) = -7.0;
  EXPECT_DOUBLE_EQ(t.MaxAbs(), 7.0);
}

TEST(CsrMatrixTest, FromTripletsMergesDuplicates) {
  const CsrMatrix m = CsrMatrix::FromTriplets(
      2, 2, {{0, 0, 1.0}, {0, 0, 2.0}, {1, 1, 5.0}, {0, 1, 0.0}});
  EXPECT_EQ(m.nnz(), 2u);  // Zero entry dropped, duplicates merged.
  EXPECT_DOUBLE_EQ(m.At(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(m.At(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(m.At(0, 1), 0.0);
}

TEST(CsrMatrixTest, FromDenseRoundTrip) {
  const Matrix dense{{0.0, 1.5}, {-2.0, 0.0}};
  const CsrMatrix sparse = CsrMatrix::FromDense(dense);
  EXPECT_EQ(sparse.nnz(), 2u);
  EXPECT_EQ(sparse.ToDense(), dense);
}

TEST(CsrMatrixTest, MultiplyMatchesDense) {
  Rng rng(3);
  Matrix dense = Matrix::RandomGaussian(5, 7, rng);
  // Sparsify.
  for (double& v : dense.data()) {
    if (v < 0.5) v = 0.0;
  }
  const CsrMatrix sparse = CsrMatrix::FromDense(dense);
  Vector x(7);
  for (std::size_t i = 0; i < 7; ++i) x[i] = static_cast<double>(i) - 3.0;
  EXPECT_LT((sparse.Multiply(x) - dense * x).NormInf(), 1e-12);
  Vector y(5);
  for (std::size_t i = 0; i < 5; ++i) y[i] = static_cast<double>(i);
  EXPECT_LT((sparse.MultiplyTranspose(y) - dense.Transposed() * y).NormInf(),
            1e-12);
}

TEST(CsrMatrixTest, DenseProductsMatch) {
  Rng rng(5);
  Matrix dense = Matrix::RandomGaussian(4, 6, rng);
  for (double& v : dense.data()) {
    if (v < 0.0) v = 0.0;
  }
  const CsrMatrix sparse = CsrMatrix::FromDense(dense);
  const Matrix b = Matrix::RandomGaussian(6, 3, rng);
  EXPECT_LT((sparse.MultiplyDense(b) - dense * b).MaxAbs(), 1e-12);
  const Matrix c = Matrix::RandomGaussian(4, 2, rng);
  EXPECT_LT(
      (sparse.MultiplyTransposeDense(c) - dense.Transposed() * c).MaxAbs(),
      1e-12);
}

TEST(CsrMatrixTest, RowSums) {
  const CsrMatrix m =
      CsrMatrix::FromTriplets(2, 3, {{0, 0, 1.0}, {0, 2, 2.0}, {1, 1, -1.0}});
  const Vector sums = m.RowSums();
  EXPECT_DOUBLE_EQ(sums[0], 3.0);
  EXPECT_DOUBLE_EQ(sums[1], -1.0);
}

TEST(CsrMatrixTest, TransposedMatchesDense) {
  Rng rng(7);
  Matrix dense = Matrix::RandomGaussian(3, 5, rng);
  const CsrMatrix sparse = CsrMatrix::FromDense(dense);
  EXPECT_EQ(sparse.Transposed().ToDense(), dense.Transposed());
}

TEST(CsrMatrixTest, AddAndScale) {
  const CsrMatrix a = CsrMatrix::FromTriplets(2, 2, {{0, 0, 1.0}});
  const CsrMatrix b = CsrMatrix::FromTriplets(2, 2, {{0, 0, 2.0}, {1, 0, 3.0}});
  const CsrMatrix sum = a.Add(b);
  EXPECT_DOUBLE_EQ(sum.At(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(sum.At(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(sum.Sum(), 6.0);
  const CsrMatrix scaled = sum.Scaled(0.5);
  EXPECT_DOUBLE_EQ(scaled.At(1, 0), 1.5);
}

TEST(CsrMatrixTest, IdentityBehaves) {
  const CsrMatrix eye = CsrMatrix::Identity(4);
  Vector x{1.0, 2.0, 3.0, 4.0};
  EXPECT_EQ(eye.Multiply(x), x);
  EXPECT_EQ(eye.nnz(), 4u);
}

TEST(CsrMatrixTest, EmptyMatrix) {
  CsrMatrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.nnz(), 0u);
}

}  // namespace
}  // namespace slampred
