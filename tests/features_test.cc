// Tests for structural and attribute feature extraction and the feature
// tensor builder.

#include <cmath>

#include <gtest/gtest.h>

#include "features/attribute_features.h"
#include "features/feature_tensor.h"
#include "features/structural_features.h"
#include "graph/social_graph.h"

namespace slampred {
namespace {

// Small fixture graph:
//   0 - 1, 0 - 2, 1 - 2, 1 - 3, 2 - 3  (triangle 0-1-2 plus tail via 3).
SocialGraph FixtureGraph() {
  SocialGraph g(5);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(1, 2);
  g.AddEdge(1, 3);
  g.AddEdge(2, 3);
  return g;
}

TEST(StructuralFeaturesTest, CommonNeighborsHandChecked) {
  const Matrix cn = CommonNeighborsMap(FixtureGraph());
  EXPECT_DOUBLE_EQ(cn(0, 3), 2.0);  // Via 1 and 2.
  EXPECT_DOUBLE_EQ(cn(0, 1), 1.0);  // Via 2.
  EXPECT_DOUBLE_EQ(cn(0, 4), 0.0);
  EXPECT_TRUE(cn.IsSymmetric());
}

TEST(StructuralFeaturesTest, JaccardHandChecked) {
  const SocialGraph g = FixtureGraph();
  const Matrix jc = JaccardMap(g);
  // Γ(0) = {1,2}, Γ(3) = {1,2} → J = 2/2 = 1.
  EXPECT_DOUBLE_EQ(jc(0, 3), 1.0);
  // Γ(0) = {1,2}, Γ(1) = {0,2,3} → inter {2}, union {0,1,2,3} → 1/4.
  EXPECT_DOUBLE_EQ(jc(0, 1), 0.25);
  EXPECT_DOUBLE_EQ(jc(0, 4), 0.0);
}

TEST(StructuralFeaturesTest, AdamicAdarHandChecked) {
  const Matrix aa = AdamicAdarMap(FixtureGraph());
  // Common neighbors of (0,3): nodes 1 and 2, both degree 3.
  const double expected = 2.0 / std::log(3.0);
  EXPECT_NEAR(aa(0, 3), expected, 1e-12);
}

TEST(StructuralFeaturesTest, ResourceAllocationHandChecked) {
  const Matrix ra = ResourceAllocationMap(FixtureGraph());
  EXPECT_NEAR(ra(0, 3), 2.0 / 3.0, 1e-12);  // 1/deg(1) + 1/deg(2).
}

TEST(StructuralFeaturesTest, PreferentialAttachmentHandChecked) {
  const Matrix pa = PreferentialAttachmentMap(FixtureGraph());
  EXPECT_DOUBLE_EQ(pa(0, 1), 6.0);  // deg(0)=2, deg(1)=3.
  EXPECT_DOUBLE_EQ(pa(4, 1), 0.0);  // Isolated node 4.
  EXPECT_DOUBLE_EQ(pa(0, 0), 0.0);  // Diagonal untouched (zero).
}

TEST(StructuralFeaturesTest, KatzCountsShortPaths) {
  const Matrix katz = TruncatedKatzMap(FixtureGraph(), 0.1);
  // A²(0,3) = 2 paths; A³(0,3): enumerate length-3 paths 0→*→*→3 = 2
  // (0-1-2-3, 0-2-1-3). Score = 0.1·2 + 0.01·2 = 0.22.
  EXPECT_NEAR(katz(0, 3), 0.22, 1e-12);
  EXPECT_DOUBLE_EQ(katz(0, 0), 0.0);  // Diagonal zeroed.
  EXPECT_TRUE(katz.IsSymmetric());
}

TEST(StructuralFeaturesTest, AdamicAdarDegreeOneFloor) {
  SocialGraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  const Matrix aa = AdamicAdarMap(g);
  // Common neighbor of (0,2) is node 1 with degree 2 → 1/log 2, finite.
  EXPECT_TRUE(std::isfinite(aa(0, 2)));
  EXPECT_NEAR(aa(0, 2), 1.0 / std::log(2.0), 1e-12);
}

HeterogeneousNetwork AttributeFixture() {
  HeterogeneousNetwork net("n");
  net.AddNodes(NodeType::kUser, 3);
  net.AddNodes(NodeType::kPost, 3);
  net.AddNodes(NodeType::kWord, 4);
  net.AddNodes(NodeType::kLocation, 2);
  net.AddNodes(NodeType::kTimestamp, 2);
  // User 0 writes post 0 with words {0, 1}; user 1 writes post 1 with
  // words {0, 1}; user 2 writes post 2 with words {2, 3}.
  net.AddEdge(EdgeType::kWrite, 0, 0);
  net.AddEdge(EdgeType::kWrite, 1, 1);
  net.AddEdge(EdgeType::kWrite, 2, 2);
  net.AddEdge(EdgeType::kHasWord, 0, 0);
  net.AddEdge(EdgeType::kHasWord, 0, 1);
  net.AddEdge(EdgeType::kHasWord, 1, 0);
  net.AddEdge(EdgeType::kHasWord, 1, 1);
  net.AddEdge(EdgeType::kHasWord, 2, 2);
  net.AddEdge(EdgeType::kHasWord, 2, 3);
  return net;
}

TEST(AttributeFeaturesTest, ProfileCountsAttachments) {
  const Matrix profile =
      UserAttributeProfile(AttributeFixture(), AttributeKind::kWord);
  EXPECT_EQ(profile.rows(), 3u);
  EXPECT_EQ(profile.cols(), 4u);
  EXPECT_DOUBLE_EQ(profile(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(profile(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(profile(2, 3), 1.0);
}

TEST(AttributeFeaturesTest, CosineSimilarityMatchesOverlap) {
  const Matrix sim =
      AttributeSimilarityMap(AttributeFixture(), AttributeKind::kWord);
  EXPECT_NEAR(sim(0, 1), 1.0, 1e-12);  // Identical word usage.
  EXPECT_DOUBLE_EQ(sim(0, 2), 0.0);    // Disjoint word usage.
  EXPECT_DOUBLE_EQ(sim(0, 0), 0.0);    // Diagonal zero.
  EXPECT_TRUE(sim.IsSymmetric());
}

TEST(AttributeFeaturesTest, ZeroProfileGivesZeroSimilarity) {
  HeterogeneousNetwork net("n");
  net.AddNodes(NodeType::kUser, 2);
  net.AddNodes(NodeType::kWord, 2);
  const Matrix sim = AttributeSimilarityMap(net, AttributeKind::kWord);
  EXPECT_DOUBLE_EQ(sim.MaxAbs(), 0.0);
}

TEST(FeatureTensorTest, NamesMatchEnabledSlices) {
  FeatureTensorOptions options;
  EXPECT_EQ(NumFeatures(options), 9u);
  options.jaccard = false;
  options.time_similarity = false;
  const auto names = FeatureNames(options);
  EXPECT_EQ(names.size(), 7u);
  EXPECT_EQ(NumFeatures(options), 7u);
  for (const auto& name : names) {
    EXPECT_NE(name, "jaccard");
    EXPECT_NE(name, "time_similarity");
  }
}

TEST(FeatureTensorTest, SlicesNormalisedAndDiagonalZero) {
  HeterogeneousNetwork net = AttributeFixture();
  net.AddEdge(EdgeType::kFriend, 0, 1);
  net.AddEdge(EdgeType::kFriend, 1, 2);
  const SocialGraph structure = SocialGraph::FromHeterogeneousNetwork(net);
  const Tensor3 tensor = BuildFeatureTensor(net, structure);
  EXPECT_EQ(tensor.dim0(), 9u);
  EXPECT_EQ(tensor.dim1(), 3u);
  for (std::size_t k = 0; k < tensor.dim0(); ++k) {
    const Matrix slice = tensor.Slice(k);
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_DOUBLE_EQ(slice(i, i), 0.0);
      for (std::size_t j = 0; j < 3; ++j) {
        EXPECT_GE(slice(i, j), 0.0);
        EXPECT_LE(slice(i, j), 1.0);
      }
    }
  }
}

TEST(FeatureTensorTest, StructureOnlyVariant) {
  FeatureTensorOptions options;
  options.word_similarity = false;
  options.location_similarity = false;
  options.time_similarity = false;
  HeterogeneousNetwork net = AttributeFixture();
  net.AddEdge(EdgeType::kFriend, 0, 1);
  const SocialGraph structure = SocialGraph::FromHeterogeneousNetwork(net);
  const Tensor3 tensor = BuildFeatureTensor(net, structure, options);
  EXPECT_EQ(tensor.dim0(), 6u);
}

TEST(FeatureTensorTest, SqrtTransformIsMonotone) {
  HeterogeneousNetwork net = AttributeFixture();
  net.AddEdge(EdgeType::kFriend, 0, 1);
  net.AddEdge(EdgeType::kFriend, 0, 2);
  const SocialGraph structure = SocialGraph::FromHeterogeneousNetwork(net);
  FeatureTensorOptions with;
  FeatureTensorOptions without;
  without.sqrt_transform = false;
  const Tensor3 a = BuildFeatureTensor(net, structure, with);
  const Tensor3 b = BuildFeatureTensor(net, structure, without);
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    EXPECT_NEAR(a.data()[i], std::sqrt(b.data()[i]), 1e-12);
  }
}

TEST(FeatureTensorTest, TrainingGraphControlsStructuralFeatures) {
  // Hiding an edge must change structural slices but not attribute ones.
  HeterogeneousNetwork net = AttributeFixture();
  net.AddEdge(EdgeType::kFriend, 0, 1);
  net.AddEdge(EdgeType::kFriend, 1, 2);
  net.AddEdge(EdgeType::kFriend, 0, 2);
  const SocialGraph full = SocialGraph::FromHeterogeneousNetwork(net);
  const SocialGraph train = full.WithEdgesRemoved({{0, 2}});
  FeatureTensorOptions options;
  options.sqrt_transform = false;
  const Tensor3 on_full = BuildFeatureTensor(net, full, options);
  const Tensor3 on_train = BuildFeatureTensor(net, train, options);
  // Word-similarity slice (index 6) identical; CN slice (index 0) not.
  EXPECT_EQ(on_full.Slice(6), on_train.Slice(6));
  EXPECT_FALSE(on_full.Slice(0) == on_train.Slice(0));
}

}  // namespace
}  // namespace slampred
