// Tests for string formatting, table printing and CSV output helpers.

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "util/csv_writer.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace slampred {
namespace {

TEST(StringUtilTest, FormatDoublePrecision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(3.14159, 4), "3.1416");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

TEST(StringUtilTest, FormatMeanStdMatchesPaperStyle) {
  EXPECT_EQ(FormatMeanStd(0.941, 0.019), "0.941±0.019");
}

TEST(StringUtilTest, JoinAndSplitRoundTrip) {
  const std::vector<std::string> parts = {"a", "b", "c"};
  EXPECT_EQ(Join(parts, ","), "a,b,c");
  EXPECT_EQ(Split("a,b,c", ','), parts);
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  const auto parts = Split(",x,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "x");
  EXPECT_EQ(parts[2], "");
}

TEST(StringUtilTest, Padding) {
  EXPECT_EQ(PadLeft("ab", 5), "   ab");
  EXPECT_EQ(PadRight("ab", 5), "ab   ");
  EXPECT_EQ(PadLeft("abcdef", 3), "abcdef");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim("\t\n z"), "z");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"x", "1"});
  table.AddRow({"longer", "22"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 22    |"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(TablePrinterTest, HandlesRaggedRows) {
  TablePrinter table({"a"});
  table.AddRow({"1", "extra"});
  table.AddRow({});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("extra"), std::string::npos);
}

TEST(CsvWriterTest, BasicOutput) {
  CsvWriter csv({"x", "y"});
  csv.AddRow({"1", "2"});
  csv.AddNumericRow({0.5, 1.25}, 2);
  EXPECT_EQ(csv.ToString(), "x,y\n1,2\n0.50,1.25\n");
}

TEST(CsvWriterTest, EscapesSpecialCharacters) {
  CsvWriter csv({"v"});
  csv.AddRow({"a,b"});
  csv.AddRow({"quote\"inside"});
  csv.AddRow({"line\nbreak"});
  const std::string out = csv.ToString();
  EXPECT_NE(out.find("\"a,b\""), std::string::npos);
  EXPECT_NE(out.find("\"quote\"\"inside\""), std::string::npos);
  EXPECT_NE(out.find("\"line\nbreak\""), std::string::npos);
}

TEST(CsvWriterTest, WritesFile) {
  const std::string path = ::testing::TempDir() + "/slampred_csv_test.csv";
  CsvWriter csv({"a"});
  csv.AddRow({"1"});
  ASSERT_TRUE(csv.WriteToFile(path).ok());
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), "a\n1\n");
  std::remove(path.c_str());
}

TEST(CsvWriterTest, WriteToBadPathFails) {
  CsvWriter csv({"a"});
  EXPECT_FALSE(csv.WriteToFile("/nonexistent-dir-xyz/file.csv").ok());
}

TEST(StopwatchTest, ElapsedIsMonotonic) {
  Stopwatch watch;
  const double a = watch.ElapsedSeconds();
  const double b = watch.ElapsedSeconds();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0.0);
  watch.Restart();
  EXPECT_LT(watch.ElapsedSeconds(), 1.0);
  EXPECT_NEAR(watch.ElapsedMillis(), watch.ElapsedSeconds() * 1e3, 10.0);
}

}  // namespace
}  // namespace slampred
