// Tests for the squared-hinge loss surrogate (the alternative loss the
// paper's Section III-D mentions alongside the Frobenius form).

#include <gtest/gtest.h>

#include "core/slampred.h"
#include "datagen/aligned_generator.h"
#include "eval/link_split.h"
#include "eval/metrics.h"
#include "optim/cccp.h"
#include "optim/objective.h"
#include "util/random.h"

namespace slampred {
namespace {

TEST(HingeLossTest, ValueHandChecked) {
  Objective objective;
  objective.a = CsrMatrix::FromDense(Matrix{{1.0, 0.0}, {0.0, 1.0}});
  objective.grad_v = Matrix(2, 2);
  objective.gamma = 0.0;
  objective.tau = 0.0;
  objective.loss = LossKind::kSquaredHinge;
  // At S = 0: links (y=+1) have slack 1, non-links (y=−1) have slack 1.
  EXPECT_NEAR(SmoothValue(objective, Matrix(2, 2)), 4.0, 1e-12);
  // At S with S_ij = y_ij: all slacks 0.
  const Matrix perfect{{1.0, -1.0}, {-1.0, 1.0}};
  EXPECT_NEAR(SmoothValue(objective, perfect), 0.0, 1e-12);
}

TEST(HingeLossTest, GradientMatchesFiniteDifference) {
  Rng rng(3);
  Objective objective;
  objective.a = CsrMatrix::FromDense(Matrix{{1.0, 0.0, 1.0},
                                            {0.0, 1.0, 0.0},
                                            {1.0, 0.0, 0.0}});
  objective.grad_v = Matrix::RandomGaussian(3, 3, rng) * 0.1;
  objective.gamma = 0.0;
  objective.tau = 0.0;
  objective.loss = LossKind::kSquaredHinge;
  const Matrix s = Matrix::RandomGaussian(3, 3, rng) * 0.5;
  const Matrix grad = SmoothGradient(objective, s);
  const double eps = 1e-6;
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      Matrix plus = s;
      plus(i, j) += eps;
      Matrix minus = s;
      minus(i, j) -= eps;
      const double numeric =
          (SmoothValue(objective, plus) - SmoothValue(objective, minus)) /
          (2.0 * eps);
      EXPECT_NEAR(grad(i, j), numeric, 1e-4) << "(" << i << "," << j << ")";
    }
  }
}

TEST(HingeLossTest, ZeroGradientInsideMargin) {
  Objective objective;
  objective.a = CsrMatrix::FromDense(Matrix{{1.0}});
  objective.grad_v = Matrix(1, 1);
  objective.gamma = 0.0;
  objective.tau = 0.0;
  objective.loss = LossKind::kSquaredHinge;
  // S = 2 > margin for a positive entry: no loss, no gradient.
  const Matrix s{{2.0}};
  EXPECT_DOUBLE_EQ(SmoothGradient(objective, s)(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(SmoothValue(objective, s), 0.0);
}

TEST(HingeLossTest, CccpSolvesWithHinge) {
  Objective objective;
  objective.a = CsrMatrix::FromDense(Matrix{{0.0, 1.0, 0.0},
                                            {1.0, 0.0, 1.0},
                                            {0.0, 1.0, 0.0}});
  objective.grad_v = Matrix(3, 3, 0.1);
  objective.gamma = 0.05;
  objective.tau = 0.05;
  objective.loss = LossKind::kSquaredHinge;
  CccpOptions options;
  options.inner.theta = 0.05;
  options.inner.max_iterations = 200;
  auto s = SolveCccp(objective, options);
  ASSERT_TRUE(s.ok());
  // Observed links should be scored higher than observed non-links.
  EXPECT_GT(s.value()(0, 1), s.value()(0, 2));
}

TEST(HingeLossTest, EndToEndComparableToFrobenius) {
  AlignedGeneratorConfig config = DefaultExperimentConfig(19);
  config.population.num_personas = 100;
  auto generated = GenerateAligned(config);
  ASSERT_TRUE(generated.ok());
  const SocialGraph full_graph = SocialGraph::FromHeterogeneousNetwork(
      generated.value().networks.target());
  Rng rng(3);
  auto folds = SplitLinks(full_graph, 5, rng);
  ASSERT_TRUE(folds.ok());
  const SocialGraph train =
      full_graph.WithEdgesRemoved(folds.value()[0].test_edges);
  auto eval = BuildEvaluationSet(full_graph, folds.value()[0].test_edges,
                                 4.0, rng);
  ASSERT_TRUE(eval.ok());

  auto auc_with = [&](LossKind loss) {
    SlamPredConfig model_config;
    model_config.loss = loss;
    model_config.optimization.inner.max_iterations = 40;
    model_config.optimization.max_outer_iterations = 2;
    SlamPred model(model_config);
    EXPECT_TRUE(model.Fit(generated.value().networks, train).ok());
    auto scores = model.ScorePairs(eval.value().pairs);
    return ComputeAuc(scores.value(), eval.value().labels).value_or(0.0);
  };

  const double frobenius = auc_with(LossKind::kSquaredFrobenius);
  const double hinge = auc_with(LossKind::kSquaredHinge);
  EXPECT_GT(frobenius, 0.6);
  EXPECT_GT(hinge, 0.6);
  EXPECT_NEAR(frobenius, hinge, 0.15);
}

}  // namespace
}  // namespace slampred
