// Bit-identity of every parallelized kernel across thread counts
// {1, 2, 7}: the pool's determinism contract says the partitioning (and
// hence every floating-point accumulation order) depends only on the
// loop geometry, never on how many workers execute it.

#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/unsupervised.h"
#include "datagen/aligned_generator.h"
#include "eval/experiment.h"
#include "features/feature_tensor.h"
#include "features/structural_features.h"
#include "graph/social_graph.h"
#include "linalg/matrix.h"
#include "linalg/matrix_ops.h"
#include "linalg/randomized_svd.h"
#include "linalg/tensor3.h"
#include "optim/objective.h"
#include "optim/proximal.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace slampred {
namespace {

// Runs `compute` with the global pool pinned to 1, 2 and 7 threads and
// checks the three results are bit-identical via `expect_equal`.
template <typename Compute, typename ExpectEqual>
void CheckThreadInvariance(Compute compute, ExpectEqual expect_equal) {
  const std::size_t previous = ThreadPool::Global().num_threads();
  ThreadPool::Global().Resize(1);
  const auto serial = compute();
  for (std::size_t threads : {std::size_t{2}, std::size_t{7}}) {
    ThreadPool::Global().Resize(threads);
    const auto parallel = compute();
    expect_equal(serial, parallel, threads);
  }
  ThreadPool::Global().Resize(previous);
}

void ExpectMatrixBitIdentical(const Matrix& a, const Matrix& b,
                              std::size_t threads) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i])
        << "flat index " << i << " at " << threads << " threads";
  }
}

template <typename Compute>
void CheckMatrixInvariance(Compute compute) {
  CheckThreadInvariance(compute, ExpectMatrixBitIdentical);
}

template <typename Compute>
void CheckScalarInvariance(Compute compute) {
  CheckThreadInvariance(compute,
                        [](double a, double b, std::size_t threads) {
                          ASSERT_EQ(a, b) << "at " << threads << " threads";
                        });
}

Matrix RandomMatrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  return Matrix::RandomGaussian(rows, cols, rng);
}

// Matrices larger than one GrainForWork chunk, so the parallel path
// actually splits the loops.
constexpr std::size_t kN = 83;

TEST(ParallelDeterminismTest, Gemm) {
  const Matrix a = RandomMatrix(kN, kN, 1);
  const Matrix b = RandomMatrix(kN, kN, 2);
  CheckMatrixInvariance([&] { return a * b; });
}

TEST(ParallelDeterminismTest, GemmWithZeroRows) {
  // Exercises the zero-skip fast paths.
  Matrix a = RandomMatrix(kN, kN, 3);
  for (std::size_t i = 0; i < kN; i += 3) {
    for (std::size_t k = 0; k < kN; ++k) a(i, k) = 0.0;
  }
  const Matrix b = RandomMatrix(kN, kN, 4);
  CheckMatrixInvariance([&] { return a * b; });
  CheckMatrixInvariance([&] { return MultiplyABt(a, b); });
  CheckMatrixInvariance([&] { return MultiplyAtB(a, b); });
}

TEST(ParallelDeterminismTest, MatVec) {
  const Matrix a = RandomMatrix(kN, kN, 5);
  Rng rng(6);
  Vector v(kN);
  for (std::size_t i = 0; i < kN; ++i) v[i] = rng.NextGaussian();
  CheckThreadInvariance([&] { return a * v; },
                        [](const Vector& x, const Vector& y,
                           std::size_t threads) {
                          ASSERT_EQ(x.size(), y.size());
                          for (std::size_t i = 0; i < x.size(); ++i) {
                            ASSERT_EQ(x[i], y[i])
                                << "index " << i << " at " << threads
                                << " threads";
                          }
                        });
}

TEST(ParallelDeterminismTest, TransposeAndSymmetrize) {
  const Matrix a = RandomMatrix(kN, kN, 7);
  CheckMatrixInvariance([&] { return a.Transposed(); });
  CheckMatrixInvariance([&] { return a.Symmetrized(); });
}

TEST(ParallelDeterminismTest, GramAndAbt) {
  const Matrix a = RandomMatrix(kN, kN / 2, 8);
  const Matrix b = RandomMatrix(kN, kN / 2, 9);
  CheckMatrixInvariance([&] { return GramAtA(a); });
  CheckMatrixInvariance([&] { return GramAAt(a); });
  CheckMatrixInvariance([&] { return MultiplyABt(a, b); });
  CheckMatrixInvariance([&] { return MultiplyAtB(a, b); });
}

TEST(ParallelDeterminismTest, SpectralNormEstimate) {
  const Matrix a = RandomMatrix(kN, kN, 10);
  CheckScalarInvariance([&] { return SpectralNormEstimate(a, 12); });
}

TEST(ParallelDeterminismTest, TensorSumAndNormalize) {
  Rng rng(11);
  Tensor3 t(4, kN, kN);
  for (double& v : t.data()) v = rng.NextGaussian();
  CheckMatrixInvariance([&] { return t.SumSlices(); });
  CheckThreadInvariance(
      [&] {
        Tensor3 copy = t;
        copy.NormalizeSlicesMinMax();
        return copy;
      },
      [](const Tensor3& a, const Tensor3& b, std::size_t threads) {
        ASSERT_EQ(a.data().size(), b.data().size());
        for (std::size_t i = 0; i < a.data().size(); ++i) {
          ASSERT_EQ(a.data()[i], b.data()[i])
              << "flat index " << i << " at " << threads << " threads";
        }
      });
}

TEST(ParallelDeterminismTest, RandomizedSvdAndProx) {
  const Matrix a = RandomMatrix(kN, kN, 12);
  RandomizedSvdOptions options;
  options.rank = 8;
  CheckMatrixInvariance([&] {
    auto svd = ComputeRandomizedSvd(a, options);
    EXPECT_TRUE(svd.ok());
    return svd.ok() ? svd.value().u : Matrix();
  });
  CheckMatrixInvariance([&] {
    auto prox = ProxNuclearRandomized(a, 0.5, options);
    EXPECT_TRUE(prox.ok());
    return prox.ok() ? prox.value() : Matrix();
  });
}

TEST(ParallelDeterminismTest, ProximalOperators) {
  const Matrix s = RandomMatrix(kN, kN, 13);
  CheckMatrixInvariance([&] { return ProxL1(s, 0.2); });
  CheckMatrixInvariance([&] {
    auto prox = ProxNuclear(s, 0.5);
    EXPECT_TRUE(prox.ok());
    return prox.ok() ? prox.value() : Matrix();
  });
  const Matrix sym = s.Symmetrized();
  CheckMatrixInvariance([&] {
    auto prox = ProxNuclearSymmetric(sym, 0.5);
    EXPECT_TRUE(prox.ok());
    return prox.ok() ? prox.value() : Matrix();
  });
}

TEST(ParallelDeterminismTest, ObjectiveEvaluations) {
  Objective objective;
  objective.a = CsrMatrix::FromDense(RandomMatrix(kN, kN, 14));
  objective.grad_v = RandomMatrix(kN, kN, 15);
  objective.gamma = 0.3;
  objective.tau = 1.0;
  const Matrix s = RandomMatrix(kN, kN, 16);

  Rng rng(17);
  Tensor3 t(3, kN, kN);
  for (double& v : t.data()) v = rng.NextGaussian();
  const std::vector<Tensor3> tensors = {t};
  const std::vector<double> weights = {0.7};

  for (LossKind loss :
       {LossKind::kSquaredFrobenius, LossKind::kSquaredHinge}) {
    objective.loss = loss;
    CheckScalarInvariance([&] { return SmoothValue(objective, s); });
    CheckMatrixInvariance([&] { return SmoothGradient(objective, s); });
    CheckScalarInvariance(
        [&] { return FullObjectiveValue(objective, s, tensors, weights); });
  }
}

SocialGraph TestGraph(std::size_t n) {
  Rng rng(18);
  SocialGraph g(n);
  while (g.num_edges() < n * 4) {
    g.AddEdge(rng.NextBounded(n), rng.NextBounded(n));
  }
  return g;
}

TEST(ParallelDeterminismTest, StructuralFeatureMaps) {
  const SocialGraph g = TestGraph(120);
  CheckMatrixInvariance([&] { return CommonNeighborsMap(g); });
  CheckMatrixInvariance([&] { return JaccardMap(g); });
  CheckMatrixInvariance([&] { return AdamicAdarMap(g); });
  CheckMatrixInvariance([&] { return ResourceAllocationMap(g); });
  CheckMatrixInvariance([&] { return PreferentialAttachmentMap(g); });
}

TEST(ParallelDeterminismTest, FeatureMapsMatchScatterForm) {
  // The gather rewrite must agree exactly with the textbook scatter
  // accumulation (middle nodes visited in ascending order).
  const SocialGraph g = TestGraph(90);
  const std::size_t n = g.num_users();
  Matrix expected(n, n);
  for (std::size_t w = 0; w < n; ++w) {
    const auto& nbrs = g.Neighbors(w);
    for (std::size_t a = 0; a < nbrs.size(); ++a) {
      for (std::size_t b = a + 1; b < nbrs.size(); ++b) {
        expected(nbrs[a], nbrs[b]) += 1.0;
        expected(nbrs[b], nbrs[a]) += 1.0;
      }
    }
  }
  ExpectMatrixBitIdentical(expected, CommonNeighborsMap(g), 0);
}

TEST(ParallelDeterminismTest, UnsupervisedScoring) {
  const SocialGraph g = TestGraph(100);
  std::vector<UserPair> pairs;
  for (std::size_t u = 0; u < g.num_users(); ++u) {
    for (std::size_t v = u + 1; v < g.num_users(); v += 3) {
      pairs.push_back({u, v});
    }
  }
  auto expect_scores_equal = [](const std::vector<double>& a,
                                const std::vector<double>& b,
                                std::size_t threads) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i], b[i]) << "pair " << i << " at " << threads
                            << " threads";
    }
  };
  CheckThreadInvariance(
      [&] {
        auto scores = CnPredictor(g).ScorePairs(pairs);
        EXPECT_TRUE(scores.ok());
        return scores.value();
      },
      expect_scores_equal);
  CheckThreadInvariance(
      [&] {
        auto scores = JcPredictor(g).ScorePairs(pairs);
        EXPECT_TRUE(scores.ok());
        return scores.value();
      },
      expect_scores_equal);
  CheckThreadInvariance(
      [&] {
        auto scores = PaPredictor(g).ScorePairs(pairs);
        EXPECT_TRUE(scores.ok());
        return scores.value();
      },
      expect_scores_equal);
}

TEST(ParallelDeterminismTest, ExperimentFoldsAcrossThreadCounts) {
  // End-to-end: the fold-parallel RunMethod must give the same per-fold
  // metrics for every pool size.
  AlignedGeneratorConfig config = DefaultExperimentConfig(41);
  config.population.num_personas = 80;
  auto gen = GenerateAligned(config);
  ASSERT_TRUE(gen.ok()) << gen.status().ToString();

  ExperimentOptions options;
  options.num_folds = 3;
  options.negatives_per_positive = 2.0;
  options.precision_k = 20;

  CheckThreadInvariance(
      [&] {
        auto runner =
            ExperimentRunner::Create(gen.value().networks, options);
        EXPECT_TRUE(runner.ok());
        auto result = runner.value().RunMethod(MethodId::kJc, 1.0);
        EXPECT_TRUE(result.ok());
        return result.value();
      },
      [](const MethodResult& a, const MethodResult& b,
         std::size_t threads) {
        ASSERT_EQ(a.auc_folds.size(), b.auc_folds.size());
        for (std::size_t f = 0; f < a.auc_folds.size(); ++f) {
          ASSERT_EQ(a.auc_folds[f], b.auc_folds[f])
              << "fold " << f << " at " << threads << " threads";
          ASSERT_EQ(a.precision_folds[f], b.precision_folds[f])
              << "fold " << f << " at " << threads << " threads";
        }
      });
}

TEST(ParallelDeterminismTest, FeatureTensorEndToEnd) {
  AlignedGeneratorConfig config = DefaultExperimentConfig(43);
  config.population.num_personas = 70;
  auto gen = GenerateAligned(config);
  ASSERT_TRUE(gen.ok()) << gen.status().ToString();
  const HeterogeneousNetwork& network = gen.value().networks.target();
  const SocialGraph structure =
      SocialGraph::FromHeterogeneousNetwork(network);

  CheckThreadInvariance(
      [&] {
        return BuildFeatureTensor(network, structure,
                                  FeatureTensorOptions{});
      },
      [](const Tensor3& a, const Tensor3& b, std::size_t threads) {
        ASSERT_EQ(a.data().size(), b.data().size());
        for (std::size_t i = 0; i < a.data().size(); ++i) {
          ASSERT_EQ(a.data()[i], b.data()[i])
              << "flat index " << i << " at " << threads << " threads";
        }
      });
}

// --- Sparse data-path kernels ---------------------------------------

TEST(ParallelDeterminismTest, SparseMatrixKernels) {
  const CsrMatrix a = CsrMatrix::FromDense(RandomMatrix(kN, kN, 31));
  const CsrMatrix b = CsrMatrix::FromDense(RandomMatrix(kN, kN, 32));
  const Matrix d = RandomMatrix(kN, kN, 33);
  CheckMatrixInvariance([&] { return a.MultiplySparse(b).ToDense(); });
  CheckMatrixInvariance([&] { return a.MultiplyDense(d); });
  CheckMatrixInvariance([&] { return a.MultiplyTransposeDense(d); });
}

TEST(ParallelDeterminismTest, StructuralFeatureMapsCsr) {
  const SocialGraph g = TestGraph(120);
  CheckMatrixInvariance([&] { return CommonNeighborsCsr(g).ToDense(); });
  CheckMatrixInvariance([&] { return JaccardCsr(g).ToDense(); });
  CheckMatrixInvariance([&] { return AdamicAdarCsr(g).ToDense(); });
  CheckMatrixInvariance([&] { return ResourceAllocationCsr(g).ToDense(); });
  CheckMatrixInvariance(
      [&] { return PreferentialAttachmentCsr(g).ToDense(); });
  CheckMatrixInvariance([&] { return TruncatedKatzCsr(g).ToDense(); });
}

TEST(ParallelDeterminismTest, SparseTensorOps) {
  Rng rng(34);
  Tensor3 t(3, kN, kN);
  for (double& v : t.data()) {
    const double gauss = rng.NextGaussian();
    if (rng.NextDouble() < 0.2) v = gauss;
  }
  const SparseTensor3 sparse = SparseTensor3::FromDense(t);
  CheckMatrixInvariance([&] { return sparse.SumSlices(); });
  CheckMatrixInvariance([&] {
    SparseTensor3 normalized = sparse;
    normalized.NormalizeSlicesMinMax();
    return normalized.SumSlices();
  });
}

TEST(ParallelDeterminismTest, SparseObjectiveEvaluations) {
  Objective objective;
  objective.a = CsrMatrix::FromDense(RandomMatrix(kN, kN, 35));
  objective.gamma = 0.3;
  objective.tau = 1.0;
  const Matrix s = RandomMatrix(kN, kN, 36);

  Rng rng(37);
  Tensor3 t(3, kN, kN);
  for (double& v : t.data()) {
    const double gauss = rng.NextGaussian();
    if (rng.NextDouble() < 0.15) v = gauss;
  }
  const std::vector<SparseTensor3> tensors = {SparseTensor3::FromDense(t)};
  const std::vector<double> weights = {0.7};
  objective.grad_v = BuildIntimacyGradient(tensors, weights, kN);

  CheckMatrixInvariance(
      [&] { return BuildIntimacyGradient(tensors, weights, kN); });
  for (LossKind loss :
       {LossKind::kSquaredFrobenius, LossKind::kSquaredHinge}) {
    objective.loss = loss;
    CheckScalarInvariance([&] { return SmoothValue(objective, s); });
    CheckMatrixInvariance([&] { return SmoothGradient(objective, s); });
    CheckScalarInvariance(
        [&] { return FullObjectiveValue(objective, s, tensors, weights); });
  }
}

TEST(ParallelDeterminismTest, SparseFeatureTensorEndToEnd) {
  AlignedGeneratorConfig config = DefaultExperimentConfig(43);
  config.population.num_personas = 70;
  auto gen = GenerateAligned(config);
  ASSERT_TRUE(gen.ok()) << gen.status().ToString();
  const HeterogeneousNetwork& network = gen.value().networks.target();
  const SocialGraph structure =
      SocialGraph::FromHeterogeneousNetwork(network);

  CheckThreadInvariance(
      [&] {
        return BuildSparseFeatureTensor(network, structure,
                                        FeatureTensorOptions{});
      },
      [](const SparseTensor3& a, const SparseTensor3& b,
         std::size_t threads) {
        ASSERT_EQ(a.TotalNnz(), b.TotalNnz());
        const Tensor3 da = a.ToDense();
        const Tensor3 db = b.ToDense();
        ASSERT_EQ(da.data().size(), db.data().size());
        for (std::size_t i = 0; i < da.data().size(); ++i) {
          ASSERT_EQ(da.data()[i], db.data()[i])
              << "flat index " << i << " at " << threads << " threads";
        }
      });
}

}  // namespace
}  // namespace slampred
