// Tests for the experiment harness (the machinery behind Table II).

#include <gtest/gtest.h>

#include "datagen/aligned_generator.h"
#include "eval/anchor_sampler.h"
#include "eval/experiment.h"

namespace slampred {
namespace {

ExperimentOptions FastOptions() {
  ExperimentOptions options;
  options.num_folds = 3;
  options.negatives_per_positive = 3.0;
  options.precision_k = 50;
  options.slampred.optimization.inner.max_iterations = 30;
  options.slampred.optimization.max_outer_iterations = 2;
  return options;
}

class ExperimentTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    AlignedGeneratorConfig config = DefaultExperimentConfig(37);
    config.population.num_personas = 100;
    auto gen = GenerateAligned(config);
    ASSERT_TRUE(gen.ok());
    generated_ = new GeneratedAligned(std::move(gen).value());
  }
  static void TearDownTestSuite() {
    delete generated_;
    generated_ = nullptr;
  }
  static GeneratedAligned* generated_;
};

GeneratedAligned* ExperimentTest::generated_ = nullptr;

TEST(MethodIdTest, NamesAndInventory) {
  EXPECT_STREQ(MethodIdName(MethodId::kSlamPred), "SLAMPRED");
  EXPECT_STREQ(MethodIdName(MethodId::kSlamPredT), "SLAMPRED-T");
  EXPECT_STREQ(MethodIdName(MethodId::kPlS), "PL-S");
  EXPECT_STREQ(MethodIdName(MethodId::kPa), "PA");
  EXPECT_EQ(AllMethods().size(), 12u);
}

TEST(MethodIdTest, SourceUsageFlags) {
  EXPECT_TRUE(MethodUsesSources(MethodId::kSlamPred));
  EXPECT_TRUE(MethodUsesSources(MethodId::kScanS));
  EXPECT_FALSE(MethodUsesSources(MethodId::kSlamPredT));
  EXPECT_FALSE(MethodUsesSources(MethodId::kJc));
  EXPECT_FALSE(MethodUsesSources(MethodId::kPlT));
}

TEST_F(ExperimentTest, UnsupervisedMethodsRunAllFolds) {
  auto runner = ExperimentRunner::Create(generated_->networks, FastOptions());
  ASSERT_TRUE(runner.ok()) << runner.status().ToString();
  for (MethodId method : {MethodId::kJc, MethodId::kCn, MethodId::kPa}) {
    auto result = runner.value().RunMethod(method, 1.0);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result.value().auc_folds.size(), 3u);
    EXPECT_GT(result.value().auc.mean, 0.5)
        << MethodIdName(method) << " should beat random";
    EXPECT_GE(result.value().precision.mean, 0.0);
    EXPECT_LE(result.value().precision.mean, 1.0);
  }
}

TEST_F(ExperimentTest, ClassifierMethodsRun) {
  auto runner = ExperimentRunner::Create(generated_->networks, FastOptions());
  ASSERT_TRUE(runner.ok());
  for (MethodId method : {MethodId::kScan, MethodId::kScanT, MethodId::kPl,
                          MethodId::kPlT}) {
    auto result = runner.value().RunMethod(method, 1.0);
    ASSERT_TRUE(result.ok()) << MethodIdName(method) << ": "
                             << result.status().ToString();
    EXPECT_GT(result.value().auc.mean, 0.55) << MethodIdName(method);
  }
}

TEST_F(ExperimentTest, SourceOnlyMethodsDegradeWithoutAnchors) {
  auto runner = ExperimentRunner::Create(generated_->networks, FastOptions());
  ASSERT_TRUE(runner.ok());
  // At ratio 0 a source-only classifier has no usable features: AUC ~ 0.5.
  auto at_zero = runner.value().RunMethod(MethodId::kScanS, 0.0);
  ASSERT_TRUE(at_zero.ok());
  EXPECT_NEAR(at_zero.value().auc.mean, 0.5, 0.1);
  auto at_one = runner.value().RunMethod(MethodId::kScanS, 1.0);
  ASSERT_TRUE(at_one.ok());
  EXPECT_GT(at_one.value().auc.mean, at_zero.value().auc.mean);
}

TEST_F(ExperimentTest, ResultsAreDeterministic) {
  auto runner_a =
      ExperimentRunner::Create(generated_->networks, FastOptions());
  auto runner_b =
      ExperimentRunner::Create(generated_->networks, FastOptions());
  ASSERT_TRUE(runner_a.ok());
  ASSERT_TRUE(runner_b.ok());
  auto a = runner_a.value().RunMethod(MethodId::kCn, 1.0);
  auto b = runner_b.value().RunMethod(MethodId::kCn, 1.0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().auc_folds, b.value().auc_folds);
}

TEST_F(ExperimentTest, TargetOnlyMethodsIgnoreAnchorRatio) {
  auto runner = ExperimentRunner::Create(generated_->networks, FastOptions());
  ASSERT_TRUE(runner.ok());
  auto low = runner.value().RunMethod(MethodId::kCn, 0.2);
  auto high = runner.value().RunMethod(MethodId::kCn, 0.9);
  ASSERT_TRUE(low.ok());
  ASSERT_TRUE(high.ok());
  EXPECT_EQ(low.value().auc_folds, high.value().auc_folds);
}

TEST_F(ExperimentTest, AnchorSamplerKeepsBundleShape) {
  Rng rng(7);
  const AlignedNetworks half =
      WithAnchorRatio(generated_->networks, 0.5, rng);
  EXPECT_EQ(half.num_sources(), generated_->networks.num_sources());
  EXPECT_EQ(half.target().NumUsers(),
            generated_->networks.target().NumUsers());
  const std::size_t original = generated_->networks.anchors(0).size();
  EXPECT_EQ(half.anchors(0).size(), (original + 1) / 2);
}

TEST_F(ExperimentTest, CreateFailsOnTinyGraph) {
  HeterogeneousNetwork tiny("tiny");
  tiny.AddNodes(NodeType::kUser, 3);
  tiny.AddEdge(EdgeType::kFriend, 0, 1);
  AlignedNetworks bundle(std::move(tiny));
  ExperimentOptions options = FastOptions();
  options.num_folds = 5;
  EXPECT_FALSE(ExperimentRunner::Create(bundle, options).ok());
}

}  // namespace
}  // namespace slampred
