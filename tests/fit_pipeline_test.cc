// Tests for the staged fit pipeline: stage configuration for the -T/-H
// variants, stage-by-stage execution on a shared FitContext,
// equivalence with SlamPred::Fit, the fit-stats invariants, and the
// per-stage fault-injection sites.

#include <gtest/gtest.h>

#include "core/fit_pipeline.h"
#include "core/fit_report.h"
#include "core/slampred.h"
#include "datagen/aligned_generator.h"
#include "eval/link_split.h"
#include "util/fault_injection.h"

namespace slampred {
namespace {

SlamPredConfig FastConfig() {
  SlamPredConfig config;
  config.optimization.inner.max_iterations = 40;
  config.optimization.max_outer_iterations = 2;
  return config;
}

class FitPipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    AlignedGeneratorConfig gen_config = DefaultExperimentConfig(23);
    gen_config.population.num_personas = 90;
    auto gen = GenerateAligned(gen_config);
    ASSERT_TRUE(gen.ok());
    generated_ = new GeneratedAligned(std::move(gen).value());
    full_graph_ = new SocialGraph(SocialGraph::FromHeterogeneousNetwork(
        generated_->networks.target()));
    Rng rng(29);
    auto folds = SplitLinks(*full_graph_, 5, rng);
    ASSERT_TRUE(folds.ok());
    train_graph_ = new SocialGraph(
        full_graph_->WithEdgesRemoved(folds.value()[0].test_edges));
  }

  static void TearDownTestSuite() {
    delete generated_;
    delete full_graph_;
    delete train_graph_;
    generated_ = nullptr;
  }

  void TearDown() override { FaultInjector::Instance().Reset(); }

  static FitContext MakeContext() {
    FitContext context;
    context.networks = &generated_->networks;
    context.target_structure = train_graph_;
    return context;
  }

  static GeneratedAligned* generated_;
  static SocialGraph* full_graph_;
  static SocialGraph* train_graph_;
};

GeneratedAligned* FitPipelineTest::generated_ = nullptr;
SocialGraph* FitPipelineTest::full_graph_ = nullptr;
SocialGraph* FitPipelineTest::train_graph_ = nullptr;

TEST_F(FitPipelineTest, PipelineHasTheThreeStagesInOrder) {
  const auto stages = BuildFitPipeline(FastConfig());
  ASSERT_EQ(stages.size(), 3u);
  EXPECT_STREQ(stages[0]->name(), "features");
  EXPECT_STREQ(stages[1]->name(), "embedding");
  EXPECT_STREQ(stages[2]->name(), "solve");
}

TEST_F(FitPipelineTest, VariantsAreStageConfiguration) {
  const FeatureStageConfig full = FeatureStageConfigFrom(SlamPredConfig{});
  EXPECT_TRUE(full.use_sources);
  EXPECT_TRUE(full.use_attributes);

  const FeatureStageConfig t =
      FeatureStageConfigFrom(SlamPredTargetOnlyConfig());
  EXPECT_FALSE(t.use_sources);
  EXPECT_TRUE(t.use_attributes);

  const FeatureStageConfig h =
      FeatureStageConfigFrom(SlamPredHomogeneousConfig());
  EXPECT_FALSE(h.use_sources);
  EXPECT_FALSE(h.use_attributes);
  // -H drops the attribute slices from the extraction plan itself.
  EXPECT_FALSE(h.features.word_similarity);
  EXPECT_FALSE(h.features.location_similarity);
  EXPECT_FALSE(h.features.time_similarity);
}

TEST_F(FitPipelineTest, StagesRunIndividuallyOnASharedContext) {
  const SlamPredConfig config = FastConfig();
  FitContext context = MakeContext();

  FeatureStage features(FeatureStageConfigFrom(config));
  ASSERT_TRUE(features.Run(context).ok());
  EXPECT_TRUE(context.transfer);
  // Target tensor plus one per source network.
  ASSERT_EQ(context.raw_tensors.size(),
            1 + generated_->networks.num_sources());
  EXPECT_GT(context.raw_tensors[0].TotalNnz(), 0u);

  EmbeddingStage embedding(EmbeddingStageConfigFrom(config));
  ASSERT_TRUE(embedding.Run(context).ok());
  ASSERT_EQ(context.adapted_tensors.size(), context.raw_tensors.size());

  SolveStage solve(SolveStageConfigFrom(config));
  ASSERT_TRUE(solve.Run(context).ok());
  EXPECT_EQ(context.s.rows(), generated_->networks.target().NumUsers());
  EXPECT_GT(context.trace.steps.iterations, 0);
}

TEST_F(FitPipelineTest, SolveStageRequiresEmbeddingOutput) {
  FitContext context = MakeContext();
  SolveStage solve(SolveStageConfigFrom(FastConfig()));
  const Status status = solve.Run(context);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST_F(FitPipelineTest, PipelineMatchesSlamPredFit) {
  const SlamPredConfig config = FastConfig();
  FitContext context = MakeContext();
  ASSERT_TRUE(RunFitPipeline(BuildFitPipeline(config), context).ok());

  SlamPred model(config);
  ASSERT_TRUE(model.Fit(generated_->networks, *train_graph_).ok());
  EXPECT_EQ(context.s, model.ScoreMatrix());
}

TEST_F(FitPipelineTest, RunValidatesInputs) {
  const auto stages = BuildFitPipeline(FastConfig());
  FitContext no_inputs;
  EXPECT_FALSE(RunFitPipeline(stages, no_inputs).ok());

  SocialGraph wrong_size(3);
  FitContext mismatched = MakeContext();
  mismatched.target_structure = &wrong_size;
  const Status status = RunFitPipeline(stages, mismatched);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST_F(FitPipelineTest, StatsInvariantsHold) {
  SlamPred model(FastConfig());
  ASSERT_TRUE(model.Fit(generated_->networks, *train_graph_).ok());

  const FitMemoryStats& mem = model.memory_stats();
  EXPECT_GT(mem.adjacency_bytes, 0u);
  EXPECT_GT(mem.raw_tensor_bytes, 0u);
  EXPECT_GT(mem.adapted_tensor_bytes, 0u);
  EXPECT_GE(mem.peak_bytes, mem.adjacency_bytes);
  EXPECT_GE(mem.peak_bytes, mem.raw_tensor_bytes);
  EXPECT_GE(mem.peak_bytes, mem.adapted_tensor_bytes);
  EXPECT_EQ(mem.peak_bytes, mem.adjacency_bytes + mem.raw_tensor_bytes +
                                mem.adapted_tensor_bytes);

  const FitPhaseTimes& times = model.phase_times();
  EXPECT_GE(times.features_seconds, 0.0);
  EXPECT_GE(times.embedding_seconds, 0.0);
  EXPECT_GE(times.cccp_seconds, 0.0);
  EXPECT_GE(times.svd_seconds, 0.0);
  EXPECT_GE(times.total_seconds, times.features_seconds +
                                     times.embedding_seconds +
                                     times.cccp_seconds);
}

TEST_F(FitPipelineTest, StatsResetOnSecondFit) {
  SlamPred model(FastConfig());
  ASSERT_TRUE(model.Fit(generated_->networks, *train_graph_).ok());
  const FitMemoryStats first = model.memory_stats();
  ASSERT_TRUE(model.Fit(generated_->networks, *train_graph_).ok());
  const FitMemoryStats& second = model.memory_stats();
  // Identical data shapes: a second fit re-measures the same footprint.
  // Were the counters accumulated instead of reset, every field would
  // double.
  EXPECT_EQ(second.raw_tensor_nnz, first.raw_tensor_nnz);
  EXPECT_EQ(second.raw_tensor_bytes, first.raw_tensor_bytes);
  EXPECT_EQ(second.adapted_tensor_nnz, first.adapted_tensor_nnz);
  EXPECT_EQ(second.adapted_tensor_bytes, first.adapted_tensor_bytes);
  EXPECT_EQ(second.adjacency_nnz, first.adjacency_nnz);
  EXPECT_EQ(second.peak_bytes, first.peak_bytes);
}

TEST_F(FitPipelineTest, FailedFitStillResetsStats) {
  SlamPred model(FastConfig());
  ASSERT_TRUE(model.Fit(generated_->networks, *train_graph_).ok());
  ASSERT_GT(model.memory_stats().peak_bytes, 0u);

  FaultSpec spec;
  spec.kind = FaultKind::kFailNotConverged;
  FaultInjector::Instance().Arm("fit.features", spec);
  ASSERT_FALSE(model.Fit(generated_->networks, *train_graph_).ok());
  // The failed run's (empty) stats replace the previous run's — stats
  // always describe the most recent Fit call.
  EXPECT_EQ(model.memory_stats().peak_bytes, 0u);
}

TEST_F(FitPipelineTest, EachStageIsFaultInjectable) {
  struct Case {
    const char* site;
    FaultKind kind;
    StatusCode expected;
  };
  const Case cases[] = {
      {"fit.features", FaultKind::kFailNotConverged,
       StatusCode::kNotConverged},
      {"fit.embedding", FaultKind::kFailNumerical,
       StatusCode::kNumericalError},
      {"fit.solve", FaultKind::kPoisonNaN, StatusCode::kNumericalError},
  };
  for (const Case& c : cases) {
    FaultInjector::Instance().Reset();
    FaultSpec spec;
    spec.kind = c.kind;
    FaultInjector::Instance().Arm(c.site, spec);
    SlamPred model(FastConfig());
    const Status status = model.Fit(generated_->networks, *train_graph_);
    ASSERT_FALSE(status.ok()) << c.site;
    EXPECT_EQ(status.code(), c.expected) << c.site;
    // The diagnosis names the failing stage.
    EXPECT_NE(status.message().find("fit stage"), std::string::npos)
        << status.ToString();
    EXPECT_EQ(FaultInjector::Instance().TriggerCount(c.site), 1) << c.site;
  }
}

TEST_F(FitPipelineTest, SkippingTheEmbeddingStageIsAConfiguredPipeline) {
  // A two-stage pipeline (features -> solve) over raw tensors is a
  // legal configuration: the solve stage consumes whatever adapted
  // tensors the context holds, so tests and ablations can splice
  // stages freely.
  const SlamPredConfig config = FastConfig();
  FitContext context = MakeContext();
  FeatureStage features(FeatureStageConfigFrom(config));
  ASSERT_TRUE(features.Run(context).ok());
  context.adapted_tensors = context.raw_tensors;  // Hand-built adaption.
  SolveStage solve(SolveStageConfigFrom(config));
  ASSERT_TRUE(solve.Run(context).ok());
  EXPECT_EQ(context.s.rows(), generated_->networks.target().NumUsers());
}

TEST_F(FitPipelineTest, FitReportJsonContainsEveryBlock) {
  SlamPred model(FastConfig());
  ASSERT_TRUE(model.Fit(generated_->networks, *train_graph_).ok());
  const std::string json = FitReportJson(MakeFitReport(model));
  for (const char* key :
       {"\"threads\"", "\"phase_times\"", "\"total_seconds\"",
        "\"memory_stats\"", "\"peak_bytes\"", "\"recovery\"", "\"total\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
}

}  // namespace
}  // namespace slampred
