// Unit tests of the shared worker pool: chunk coverage, grain/cutoff
// edge cases, nested-loop serial fallback, exception propagation, the
// ordered reduction, and resizing.

#include "util/thread_pool.h"

#include <atomic>
#include <cstddef>
#include <mutex>
#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace slampred {
namespace {

TEST(GrainForWorkTest, ScalesInverselyWithPerItemWork) {
  // Heavy items -> tiny grain; trivial items -> big grain.
  EXPECT_EQ(GrainForWork(kParallelMinWorkPerChunk), 1u);
  EXPECT_EQ(GrainForWork(2 * kParallelMinWorkPerChunk), 1u);  // Clamped.
  EXPECT_EQ(GrainForWork(1), kParallelMinWorkPerChunk);
  EXPECT_EQ(GrainForWork(0), kParallelMinWorkPerChunk);  // 0 treated as 1.
  EXPECT_EQ(GrainForWork(kParallelMinWorkPerChunk / 4), 4u);
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(0, n, 7, [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ChunkBoundariesDependOnlyOnGeometry) {
  // The same (begin, end, grain) must produce the same chunk set for
  // every pool size — that is the determinism contract's foundation.
  auto chunks_at = [](std::size_t threads) {
    ThreadPool pool(threads);
    std::mutex mu;
    std::set<std::pair<std::size_t, std::size_t>> chunks;
    pool.ParallelFor(3, 250, 9, [&](std::size_t i0, std::size_t i1) {
      std::lock_guard<std::mutex> lock(mu);
      chunks.emplace(i0, i1);
    });
    return chunks;
  };
  const auto serial = chunks_at(1);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(chunks_at(2), serial);
  EXPECT_EQ(chunks_at(7), serial);
}

TEST(ThreadPoolTest, EmptyRangeRunsNothing) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(5, 5, 3, [&](std::size_t, std::size_t) {
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, SingleElementRangeRunsInline) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  std::size_t seen_begin = 99, seen_end = 99;
  pool.ParallelFor(7, 8, 100, [&](std::size_t i0, std::size_t i1) {
    calls.fetch_add(1);
    seen_begin = i0;
    seen_end = i1;
  });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(seen_begin, 7u);
  EXPECT_EQ(seen_end, 8u);
}

TEST(ThreadPoolTest, ZeroGrainTreatedAsOne) {
  ThreadPool pool(2);
  std::atomic<std::size_t> total{0};
  pool.ParallelFor(0, 10, 0, [&](std::size_t i0, std::size_t i1) {
    total.fetch_add(i1 - i0);
  });
  EXPECT_EQ(total.load(), 10u);
}

TEST(ThreadPoolTest, NestedParallelForFallsBackToSerial) {
  ThreadPool pool(4);
  EXPECT_FALSE(ThreadPool::InParallelRegion());
  std::atomic<int> nested_parallel{0};
  pool.ParallelFor(0, 8, 1, [&](std::size_t, std::size_t) {
    EXPECT_TRUE(ThreadPool::InParallelRegion());
    // The inner loop must run inline on this thread, not re-enter the
    // pool (which would deadlock or interleave chunk state).
    pool.ParallelFor(0, 8, 1, [&](std::size_t, std::size_t) {
      if (!ThreadPool::InParallelRegion()) nested_parallel.fetch_add(1);
    });
  });
  EXPECT_EQ(nested_parallel.load(), 0);
  EXPECT_FALSE(ThreadPool::InParallelRegion());
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(0, 100, 1,
                       [&](std::size_t i0, std::size_t) {
                         if (i0 == 42) throw std::runtime_error("chunk 42");
                       }),
      std::runtime_error);
  // The pool must stay usable after a throwing loop.
  std::atomic<std::size_t> total{0};
  pool.ParallelFor(0, 50, 1, [&](std::size_t i0, std::size_t i1) {
    total.fetch_add(i1 - i0);
  });
  EXPECT_EQ(total.load(), 50u);
}

TEST(ThreadPoolTest, ExceptionPropagatesOnSerialPath) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.ParallelFor(0, 10, 1,
                                [](std::size_t, std::size_t) {
                                  throw std::runtime_error("serial");
                                }),
               std::runtime_error);
}

TEST(ThreadPoolTest, ReduceSumIsBitIdenticalAcrossThreadCounts) {
  // Pseudo-random addends make accumulation-order changes visible.
  auto value = [](std::size_t i) {
    return 1.0 / static_cast<double>(3 * i + 1);
  };
  auto sum_at = [&](std::size_t threads) {
    ThreadPool pool(threads);
    return pool.ParallelReduceSum(0, 10000, 17,
                                  [&](std::size_t i0, std::size_t i1) {
                                    double s = 0.0;
                                    for (std::size_t i = i0; i < i1; ++i) {
                                      s += value(i);
                                    }
                                    return s;
                                  });
  };
  const double serial = sum_at(1);
  EXPECT_EQ(sum_at(2), serial);
  EXPECT_EQ(sum_at(7), serial);
}

TEST(ThreadPoolTest, ResizeChangesThreadCount) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  pool.Resize(3);
  EXPECT_EQ(pool.num_threads(), 3u);
  std::atomic<std::size_t> total{0};
  pool.ParallelFor(0, 100, 1, [&](std::size_t i0, std::size_t i1) {
    total.fetch_add(i1 - i0);
  });
  EXPECT_EQ(total.load(), 100u);
  pool.Resize(0);  // Clamped to 1.
  EXPECT_EQ(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, GlobalPoolIsUsable) {
  std::atomic<std::size_t> total{0};
  ParallelFor(0, 64, 8, [&](std::size_t i0, std::size_t i1) {
    total.fetch_add(i1 - i0);
  });
  EXPECT_EQ(total.load(), 64u);
  EXPECT_GE(ThreadPool::Global().num_threads(), 1u);
}

}  // namespace
}  // namespace slampred
