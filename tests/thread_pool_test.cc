// Unit tests of the shared worker pool: chunk coverage, grain/cutoff
// edge cases, nested-loop serial fallback, exception propagation, the
// ordered reduction, resizing, async task submission, and the
// completion counter.

#include "util/thread_pool.h"

#include <atomic>
#include <chrono>
#include <cstddef>
#include <future>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace slampred {
namespace {

TEST(GrainForWorkTest, ScalesInverselyWithPerItemWork) {
  // Heavy items -> tiny grain; trivial items -> big grain.
  EXPECT_EQ(GrainForWork(kParallelMinWorkPerChunk), 1u);
  EXPECT_EQ(GrainForWork(2 * kParallelMinWorkPerChunk), 1u);  // Clamped.
  EXPECT_EQ(GrainForWork(1), kParallelMinWorkPerChunk);
  EXPECT_EQ(GrainForWork(0), kParallelMinWorkPerChunk);  // 0 treated as 1.
  EXPECT_EQ(GrainForWork(kParallelMinWorkPerChunk / 4), 4u);
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(0, n, 7, [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ChunkBoundariesDependOnlyOnGeometry) {
  // The same (begin, end, grain) must produce the same chunk set for
  // every pool size — that is the determinism contract's foundation.
  auto chunks_at = [](std::size_t threads) {
    ThreadPool pool(threads);
    std::mutex mu;
    std::set<std::pair<std::size_t, std::size_t>> chunks;
    pool.ParallelFor(3, 250, 9, [&](std::size_t i0, std::size_t i1) {
      std::lock_guard<std::mutex> lock(mu);
      chunks.emplace(i0, i1);
    });
    return chunks;
  };
  const auto serial = chunks_at(1);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(chunks_at(2), serial);
  EXPECT_EQ(chunks_at(7), serial);
}

TEST(ThreadPoolTest, EmptyRangeRunsNothing) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(5, 5, 3, [&](std::size_t, std::size_t) {
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, SingleElementRangeRunsInline) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  std::size_t seen_begin = 99, seen_end = 99;
  pool.ParallelFor(7, 8, 100, [&](std::size_t i0, std::size_t i1) {
    calls.fetch_add(1);
    seen_begin = i0;
    seen_end = i1;
  });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(seen_begin, 7u);
  EXPECT_EQ(seen_end, 8u);
}

TEST(ThreadPoolTest, ZeroGrainTreatedAsOne) {
  ThreadPool pool(2);
  std::atomic<std::size_t> total{0};
  pool.ParallelFor(0, 10, 0, [&](std::size_t i0, std::size_t i1) {
    total.fetch_add(i1 - i0);
  });
  EXPECT_EQ(total.load(), 10u);
}

TEST(ThreadPoolTest, NestedParallelForFallsBackToSerial) {
  ThreadPool pool(4);
  EXPECT_FALSE(ThreadPool::InParallelRegion());
  std::atomic<int> nested_parallel{0};
  pool.ParallelFor(0, 8, 1, [&](std::size_t, std::size_t) {
    EXPECT_TRUE(ThreadPool::InParallelRegion());
    // The inner loop must run inline on this thread, not re-enter the
    // pool (which would deadlock or interleave chunk state).
    pool.ParallelFor(0, 8, 1, [&](std::size_t, std::size_t) {
      if (!ThreadPool::InParallelRegion()) nested_parallel.fetch_add(1);
    });
  });
  EXPECT_EQ(nested_parallel.load(), 0);
  EXPECT_FALSE(ThreadPool::InParallelRegion());
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(0, 100, 1,
                       [&](std::size_t i0, std::size_t) {
                         if (i0 == 42) throw std::runtime_error("chunk 42");
                       }),
      std::runtime_error);
  // The pool must stay usable after a throwing loop.
  std::atomic<std::size_t> total{0};
  pool.ParallelFor(0, 50, 1, [&](std::size_t i0, std::size_t i1) {
    total.fetch_add(i1 - i0);
  });
  EXPECT_EQ(total.load(), 50u);
}

TEST(ThreadPoolTest, ExceptionPropagatesOnSerialPath) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.ParallelFor(0, 10, 1,
                                [](std::size_t, std::size_t) {
                                  throw std::runtime_error("serial");
                                }),
               std::runtime_error);
}

TEST(ThreadPoolTest, ReduceSumIsBitIdenticalAcrossThreadCounts) {
  // Pseudo-random addends make accumulation-order changes visible.
  auto value = [](std::size_t i) {
    return 1.0 / static_cast<double>(3 * i + 1);
  };
  auto sum_at = [&](std::size_t threads) {
    ThreadPool pool(threads);
    return pool.ParallelReduceSum(0, 10000, 17,
                                  [&](std::size_t i0, std::size_t i1) {
                                    double s = 0.0;
                                    for (std::size_t i = i0; i < i1; ++i) {
                                      s += value(i);
                                    }
                                    return s;
                                  });
  };
  const double serial = sum_at(1);
  EXPECT_EQ(sum_at(2), serial);
  EXPECT_EQ(sum_at(7), serial);
}

TEST(ThreadPoolTest, ResizeChangesThreadCount) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  pool.Resize(3);
  EXPECT_EQ(pool.num_threads(), 3u);
  std::atomic<std::size_t> total{0};
  pool.ParallelFor(0, 100, 1, [&](std::size_t i0, std::size_t i1) {
    total.fetch_add(i1 - i0);
  });
  EXPECT_EQ(total.load(), 100u);
  pool.Resize(0);  // Clamped to 1.
  EXPECT_EQ(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, GlobalPoolIsUsable) {
  std::atomic<std::size_t> total{0};
  ParallelFor(0, 64, 8, [&](std::size_t i0, std::size_t i1) {
    total.fetch_add(i1 - i0);
  });
  EXPECT_EQ(total.load(), 64u);
  EXPECT_GE(ThreadPool::Global().num_threads(), 1u);
}

TEST(ThreadPoolTest, SubmitRunsTaskAndCompletesFuture) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  std::future<void> future = pool.Submit([&] { ran.fetch_add(1); });
  future.get();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolTest, SubmitRunsInlineOnSerialPool) {
  ThreadPool pool(1);  // Zero workers: the exact serial path.
  std::thread::id task_thread;
  std::future<void> future = pool.Submit([&] {
    task_thread = std::this_thread::get_id();
  });
  // The task already ran on the calling thread before Submit returned.
  EXPECT_EQ(task_thread, std::this_thread::get_id());
  EXPECT_EQ(future.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptionsThroughTheFuture) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ThreadPool pool(threads);
    std::future<void> future = pool.Submit([] {
      throw std::runtime_error("task failed");
    });
    EXPECT_THROW(future.get(), std::runtime_error) << threads;
    // The pool stays usable afterwards.
    std::atomic<int> ran{0};
    pool.Submit([&] { ran.fetch_add(1); }).get();
    EXPECT_EQ(ran.load(), 1);
  }
}

TEST(ThreadPoolTest, ManySubmittedTasksAllComplete) {
  ThreadPool pool(4);
  const std::size_t n = 200;
  std::atomic<std::size_t> ran{0};
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(pool.Submit([&] { ran.fetch_add(1); }));
  }
  for (std::future<void>& future : futures) future.get();
  EXPECT_EQ(ran.load(), n);
}

TEST(ThreadPoolTest, SubmittedTasksCanRunParallelFor) {
  // Async tasks and loop epochs share the workers; a task that issues a
  // ParallelFor must complete (the caller participates, so no deadlock).
  ThreadPool pool(3);
  std::atomic<std::size_t> total{0};
  pool.Submit([&] {
    ThreadPool::Global().ParallelFor(0, 64, 4,
                                     [&](std::size_t i0, std::size_t i1) {
                                       total.fetch_add(i1 - i0);
                                     });
  }).get();
  EXPECT_EQ(total.load(), 64u);
}

TEST(ThreadPoolTest, QueuedTasksSurviveResizeAndDestruction) {
  std::atomic<std::size_t> ran{0};
  const std::size_t n = 64;
  {
    ThreadPool pool(4);
    std::vector<std::future<void>> futures;
    for (std::size_t i = 0; i < n; ++i) {
      futures.push_back(pool.Submit([&] { ran.fetch_add(1); }));
    }
    pool.Resize(2);  // Drains or re-queues; never drops.
    for (std::future<void>& future : futures) future.get();
    for (std::size_t i = 0; i < n; ++i) {
      (void)pool.Submit([&] { ran.fetch_add(1); });
    }
  }  // Destructor must run every still-queued task.
  EXPECT_EQ(ran.load(), 2 * n);
}

TEST(CompletionCounterTest, WaitReturnsOnceAllOutstandingAreDone) {
  ThreadPool pool(4);
  CompletionCounter counter;
  std::atomic<std::size_t> ran{0};
  const std::size_t n = 50;
  for (std::size_t i = 0; i < n; ++i) {
    counter.Add();
    (void)pool.Submit([&] {
      ran.fetch_add(1);
      counter.Done();
    });
  }
  counter.Wait();
  EXPECT_EQ(ran.load(), n);
  EXPECT_EQ(counter.completed(), n);
  EXPECT_EQ(counter.outstanding(), 0u);
}

TEST(CompletionCounterTest, WaitWithNothingOutstandingReturnsImmediately) {
  CompletionCounter counter;
  counter.Wait();
  EXPECT_EQ(counter.completed(), 0u);
  counter.Add(3);
  EXPECT_EQ(counter.outstanding(), 3u);
  counter.Done(3);
  counter.Wait();
  EXPECT_EQ(counter.outstanding(), 0u);
  EXPECT_EQ(counter.completed(), 3u);
}

}  // namespace
}  // namespace slampred
