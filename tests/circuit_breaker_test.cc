// Unit tests for the serve-side CircuitBreaker state machine, driven
// entirely by the injectable fake clock: trip threshold, exponential
// backoff with cap, half-open probe budget, and reset-on-success.

#include "serve/circuit_breaker.h"

#include <chrono>
#include <string>

#include <gtest/gtest.h>

namespace slampred {
namespace {

using std::chrono::milliseconds;

struct FakeClock {
  std::chrono::steady_clock::time_point now{};
  void Advance(milliseconds d) { now += d; }
};

CircuitBreakerOptions OptionsOn(FakeClock& clock) {
  CircuitBreakerOptions options;
  options.failure_threshold = 3;
  options.base_backoff = milliseconds(100);
  options.max_backoff = milliseconds(400);
  options.half_open_budget = 1;
  options.clock = [&clock] { return clock.now; };
  return options;
}

TEST(CircuitBreakerTest, StaysClosedBelowTheFailureThreshold) {
  FakeClock clock;
  CircuitBreaker breaker(OptionsOn(clock));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.AllowRequest());

  EXPECT_FALSE(breaker.RecordFailure());
  EXPECT_FALSE(breaker.RecordFailure());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.consecutive_failures(), 2);
  EXPECT_TRUE(breaker.AllowRequest());

  // A success resets the consecutive-failure window.
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.consecutive_failures(), 0);
  EXPECT_FALSE(breaker.RecordFailure());
  EXPECT_FALSE(breaker.RecordFailure());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.trips(), 0);
}

TEST(CircuitBreakerTest, TripsOpenAtTheThresholdAndBlocksDuringBackoff) {
  FakeClock clock;
  CircuitBreaker breaker(OptionsOn(clock));
  EXPECT_FALSE(breaker.RecordFailure());
  EXPECT_FALSE(breaker.RecordFailure());
  EXPECT_TRUE(breaker.RecordFailure());  // Third failure trips.
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 1);

  // Blocked while the backoff has not elapsed.
  EXPECT_FALSE(breaker.AllowRequest());
  clock.Advance(milliseconds(99));
  EXPECT_FALSE(breaker.AllowRequest());
}

TEST(CircuitBreakerTest, HalfOpenProbeBudgetIsDeterministic) {
  FakeClock clock;
  auto options = OptionsOn(clock);
  options.half_open_budget = 2;
  CircuitBreaker breaker(options);
  breaker.RecordFailure();
  breaker.RecordFailure();
  breaker.RecordFailure();

  clock.Advance(milliseconds(100));
  // Exactly half_open_budget probes pass; the rest are blocked.
  EXPECT_TRUE(breaker.AllowRequest());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(breaker.AllowRequest());
  EXPECT_FALSE(breaker.AllowRequest());
  EXPECT_FALSE(breaker.AllowRequest());
}

TEST(CircuitBreakerTest, FailedProbeReopensWithDoubledCappedBackoff) {
  FakeClock clock;
  CircuitBreaker breaker(OptionsOn(clock));
  breaker.RecordFailure();
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.current_backoff(), milliseconds(100));

  // 100 → 200 → 400 → capped at 400.
  for (const int expected_ms : {200, 400, 400}) {
    clock.Advance(breaker.current_backoff());
    ASSERT_TRUE(breaker.AllowRequest());
    EXPECT_TRUE(breaker.RecordFailure());  // Probe failure re-trips.
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
    EXPECT_EQ(breaker.current_backoff(), milliseconds(expected_ms));
  }
  EXPECT_EQ(breaker.trips(), 4);
}

TEST(CircuitBreakerTest, ProbeSuccessClosesAndResetsBackoff) {
  FakeClock clock;
  CircuitBreaker breaker(OptionsOn(clock));
  breaker.RecordFailure();
  breaker.RecordFailure();
  breaker.RecordFailure();
  clock.Advance(milliseconds(100));
  ASSERT_TRUE(breaker.AllowRequest());
  breaker.RecordFailure();  // Backoff now 200ms.
  clock.Advance(milliseconds(200));
  ASSERT_TRUE(breaker.AllowRequest());

  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.consecutive_failures(), 0);
  EXPECT_EQ(breaker.current_backoff(), milliseconds(100));
  EXPECT_TRUE(breaker.AllowRequest());

  // The next trip starts a fresh backoff ladder from the base again.
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_TRUE(breaker.RecordFailure());
  EXPECT_FALSE(breaker.AllowRequest());
  clock.Advance(milliseconds(100));
  EXPECT_TRUE(breaker.AllowRequest());
}

TEST(CircuitBreakerTest, StragglerFailureWhileOpenDoesNotRetrip) {
  FakeClock clock;
  CircuitBreaker breaker(OptionsOn(clock));
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_TRUE(breaker.RecordFailure());
  // A failure reported by an in-flight straggler after the trip must
  // not count as another trip or extend the backoff.
  EXPECT_FALSE(breaker.RecordFailure());
  EXPECT_EQ(breaker.trips(), 1);
  EXPECT_EQ(breaker.current_backoff(), milliseconds(100));
}

TEST(CircuitBreakerTest, StateNamesAreStable) {
  EXPECT_EQ(std::string(CircuitBreakerStateName(
                CircuitBreaker::State::kClosed)),
            "closed");
  EXPECT_EQ(std::string(CircuitBreakerStateName(
                CircuitBreaker::State::kOpen)),
            "open");
  EXPECT_EQ(std::string(CircuitBreakerStateName(
                CircuitBreaker::State::kHalfOpen)),
            "half-open");
}

}  // namespace
}  // namespace slampred
