// Tests for the text serialisation of networks and anchor links.

#include <cstdio>

#include <gtest/gtest.h>

#include "datagen/aligned_generator.h"
#include "graph/graph_io.h"

namespace slampred {
namespace {

HeterogeneousNetwork SmallNetwork() {
  HeterogeneousNetwork net("demo");
  net.AddNodes(NodeType::kUser, 4);
  net.AddNodes(NodeType::kPost, 2);
  net.AddNodes(NodeType::kWord, 3);
  net.AddEdge(EdgeType::kFriend, 0, 1);
  net.AddEdge(EdgeType::kFriend, 2, 3);
  net.AddEdge(EdgeType::kWrite, 0, 0);
  net.AddEdge(EdgeType::kHasWord, 0, 2);
  return net;
}

TEST(GraphIoTest, NetworkRoundTrip) {
  const HeterogeneousNetwork original = SmallNetwork();
  auto parsed = ParseNetwork(SerializeNetwork(original));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const HeterogeneousNetwork& net = parsed.value();
  EXPECT_EQ(net.name(), "demo");
  EXPECT_EQ(net.NumUsers(), 4u);
  EXPECT_EQ(net.NumNodes(NodeType::kPost), 2u);
  EXPECT_EQ(net.NumNodes(NodeType::kWord), 3u);
  EXPECT_EQ(net.NumEdges(EdgeType::kFriend), 2u);
  EXPECT_TRUE(net.HasEdge(EdgeType::kFriend, 1, 0));
  EXPECT_TRUE(net.HasEdge(EdgeType::kWrite, 0, 0));
  EXPECT_TRUE(net.HasEdge(EdgeType::kHasWord, 0, 2));
}

TEST(GraphIoTest, GeneratedNetworkRoundTrip) {
  AlignedGeneratorConfig config = DefaultExperimentConfig(5);
  config.population.num_personas = 60;
  auto generated = GenerateAligned(config);
  ASSERT_TRUE(generated.ok());
  const HeterogeneousNetwork& original = generated.value().networks.target();
  auto parsed = ParseNetwork(SerializeNetwork(original));
  ASSERT_TRUE(parsed.ok());
  for (std::size_t e = 0; e < kNumEdgeTypes; ++e) {
    const EdgeType type = static_cast<EdgeType>(e);
    EXPECT_EQ(parsed.value().NumEdges(type), original.NumEdges(type))
        << EdgeTypeName(type);
  }
}

TEST(GraphIoTest, CommentsAndBlankLinesIgnored) {
  auto parsed = ParseNetwork(
      "# header\n\nnetwork x\n  # indented comment\nnodes user 2\n"
      "edge friend 0 1\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().NumEdges(EdgeType::kFriend), 1u);
}

TEST(GraphIoTest, MalformedLinesReportLineNumber) {
  auto bad_directive = ParseNetwork("nodes user 2\nfrobnicate 1 2\n");
  ASSERT_FALSE(bad_directive.ok());
  EXPECT_NE(bad_directive.status().message().find("line 2"),
            std::string::npos);

  EXPECT_FALSE(ParseNetwork("nodes user\n").ok());
  EXPECT_FALSE(ParseNetwork("nodes gremlin 5\n").ok());
  EXPECT_FALSE(ParseNetwork("nodes user 2\nedge friend 0 9\n").ok());
  EXPECT_FALSE(ParseNetwork("nodes user 2\nedge friend 0 x\n").ok());
}

TEST(GraphIoTest, NetworkFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/slampred_net_test.txt";
  const HeterogeneousNetwork original = SmallNetwork();
  ASSERT_TRUE(SaveNetwork(original, path).ok());
  auto loaded = LoadNetwork(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().NumEdges(EdgeType::kFriend),
            original.NumEdges(EdgeType::kFriend));
  std::remove(path.c_str());
}

TEST(GraphIoTest, LoadMissingFileFails) {
  EXPECT_FALSE(LoadNetwork("/no/such/file.txt").ok());
  EXPECT_FALSE(LoadAnchors("/no/such/file.txt").ok());
}

TEST(GraphIoTest, AnchorsRoundTrip) {
  AnchorLinks anchors(5, 7);
  anchors.Add(0, 3);
  anchors.Add(2, 6);
  auto parsed = ParseAnchors(SerializeAnchors(anchors));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().left_users(), 5u);
  EXPECT_EQ(parsed.value().right_users(), 7u);
  EXPECT_EQ(parsed.value().size(), 2u);
  EXPECT_TRUE(parsed.value().Contains(0, 3));
  EXPECT_TRUE(parsed.value().Contains(2, 6));
}

TEST(GraphIoTest, AnchorsRequireHeader) {
  EXPECT_FALSE(ParseAnchors("anchor 0 1\n").ok());
  EXPECT_FALSE(ParseAnchors("# only comments\n").ok());
}

TEST(GraphIoTest, AnchorsRejectConflicts) {
  auto parsed = ParseAnchors("anchors 3 3\nanchor 0 0\nanchor 0 1\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("line 3"), std::string::npos);
}

TEST(GraphIoTest, TruncatedFileStrictFailsLenientRecovers) {
  // A tail cut mid-record, as after a partial write or disk-full.
  const std::string truncated =
      "network demo\nnodes user 4\nedge friend 0 1\nedge friend 2\n";

  auto strict = ParseNetwork(truncated);
  ASSERT_FALSE(strict.ok());
  EXPECT_NE(strict.status().message().find("line 4"), std::string::npos);

  ParseStats stats;
  auto lenient =
      ParseNetwork(truncated, ParseOptions{ParsePolicy::kLenient}, &stats);
  ASSERT_TRUE(lenient.ok()) << lenient.status().ToString();
  EXPECT_EQ(stats.lines_total, 4u);
  EXPECT_EQ(stats.lines_skipped, 1u);
  EXPECT_FALSE(stats.first_error.ok());
  EXPECT_EQ(lenient.value().NumEdges(EdgeType::kFriend), 1u);
}

TEST(GraphIoTest, GarbageLineSkippedUnderLenientPolicy) {
  const std::string text =
      "nodes user 3\n<<<< merge conflict >>>>\nedge friend 0 2\n";
  EXPECT_FALSE(ParseNetwork(text).ok());

  ParseStats stats;
  auto lenient =
      ParseNetwork(text, ParseOptions{ParsePolicy::kLenient}, &stats);
  ASSERT_TRUE(lenient.ok());
  EXPECT_EQ(stats.lines_skipped, 1u);
  EXPECT_NE(stats.first_error.message().find("line 2"), std::string::npos);
  EXPECT_TRUE(lenient.value().HasEdge(EdgeType::kFriend, 0, 2));
}

TEST(GraphIoTest, OutOfRangeNodeIdReportsLineUnderStrict) {
  const std::string text = "nodes user 2\nedge friend 0 1\nedge friend 1 7\n";
  auto strict = ParseNetwork(text);
  ASSERT_FALSE(strict.ok());
  EXPECT_NE(strict.status().message().find("line 3"), std::string::npos);

  ParseStats stats;
  auto lenient =
      ParseNetwork(text, ParseOptions{ParsePolicy::kLenient}, &stats);
  ASSERT_TRUE(lenient.ok());
  EXPECT_EQ(stats.lines_skipped, 1u);
  EXPECT_EQ(lenient.value().NumEdges(EdgeType::kFriend), 1u);
}

TEST(GraphIoTest, DuplicateEdgeStrictFailsWithLineNumber) {
  // Friend edges are undirected, so the reversed record is a duplicate.
  auto dup = ParseNetwork("nodes user 3\nedge friend 0 1\nedge friend 1 0\n");
  ASSERT_FALSE(dup.ok());
  EXPECT_NE(dup.status().message().find("line 3"), std::string::npos);
  EXPECT_NE(dup.status().message().find("duplicate edge"), std::string::npos);
}

TEST(GraphIoTest, DuplicateEdgeLenientCountsAndKeepsGraph) {
  ParseStats stats;
  auto lenient = ParseNetwork(
      "nodes user 3\nedge friend 0 1\nedge friend 1 0\nedge friend 1 2\n",
      ParseOptions{ParsePolicy::kLenient}, &stats);
  ASSERT_TRUE(lenient.ok());
  EXPECT_EQ(stats.duplicate_edges, 1u);
  EXPECT_EQ(stats.lines_skipped, 0u);  // Duplicates are counted, not skipped.
  EXPECT_NE(stats.first_error.message().find("duplicate edge"),
            std::string::npos);
  EXPECT_EQ(lenient.value().NumEdges(EdgeType::kFriend), 2u);
}

TEST(GraphIoTest, CleanParsePopulatesStatsWithZeros) {
  ParseStats stats;
  auto parsed = ParseNetwork("nodes user 2\nedge friend 0 1\n",
                             ParseOptions{ParsePolicy::kLenient}, &stats);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(stats.lines_total, 2u);
  EXPECT_EQ(stats.lines_skipped, 0u);
  EXPECT_EQ(stats.duplicate_edges, 0u);
  EXPECT_TRUE(stats.first_error.ok());
}

TEST(GraphIoTest, DuplicateAnchorPolicies) {
  const std::string text = "anchors 3 3\nanchor 0 0\nanchor 0 0\nanchor 1 2\n";
  auto strict = ParseAnchors(text);
  ASSERT_FALSE(strict.ok());
  EXPECT_NE(strict.status().message().find("line 3"), std::string::npos);

  ParseStats stats;
  auto lenient =
      ParseAnchors(text, ParseOptions{ParsePolicy::kLenient}, &stats);
  ASSERT_TRUE(lenient.ok()) << lenient.status().ToString();
  EXPECT_EQ(stats.duplicate_edges, 1u);
  EXPECT_EQ(lenient.value().size(), 2u);
}

TEST(GraphIoTest, LenientAnchorsSalvageConflicts) {
  // A conflicting re-anchor (0 already anchored to 0) is skipped.
  ParseStats stats;
  auto lenient =
      ParseAnchors("anchors 3 3\nanchor 0 0\nanchor 0 1\nanchor 2 2\n",
                   ParseOptions{ParsePolicy::kLenient}, &stats);
  ASSERT_TRUE(lenient.ok()) << lenient.status().ToString();
  EXPECT_EQ(stats.lines_skipped, 1u);
  EXPECT_EQ(lenient.value().size(), 2u);
  EXPECT_TRUE(lenient.value().Contains(0, 0));
  EXPECT_TRUE(lenient.value().Contains(2, 2));
}

TEST(GraphIoTest, AnchorsFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/slampred_anchor_test.txt";
  AnchorLinks anchors(3, 3);
  anchors.Add(1, 2);
  ASSERT_TRUE(SaveAnchors(anchors, path).ok());
  auto loaded = LoadAnchors(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().Contains(1, 2));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace slampred
