// Tests for the meta-path intimacy features.

#include <cmath>

#include <gtest/gtest.h>

#include "features/feature_tensor.h"
#include "features/meta_path_features.h"
#include "graph/social_graph.h"

namespace slampred {
namespace {

// Two users writing posts with overlapping words:
//   user 0 → post 0 → words {0, 1}
//   user 1 → post 1 → words {1, 2}
//   user 2 → post 2 → word  {3}
HeterogeneousNetwork Fixture() {
  HeterogeneousNetwork net("n");
  net.AddNodes(NodeType::kUser, 3);
  net.AddNodes(NodeType::kPost, 3);
  net.AddNodes(NodeType::kWord, 4);
  net.AddNodes(NodeType::kLocation, 2);
  net.AddNodes(NodeType::kTimestamp, 2);
  net.AddEdge(EdgeType::kWrite, 0, 0);
  net.AddEdge(EdgeType::kWrite, 1, 1);
  net.AddEdge(EdgeType::kWrite, 2, 2);
  net.AddEdge(EdgeType::kHasWord, 0, 0);
  net.AddEdge(EdgeType::kHasWord, 0, 1);
  net.AddEdge(EdgeType::kHasWord, 1, 1);
  net.AddEdge(EdgeType::kHasWord, 1, 2);
  net.AddEdge(EdgeType::kHasWord, 2, 3);
  net.AddEdge(EdgeType::kFriend, 0, 1);
  net.AddEdge(EdgeType::kFriend, 1, 2);
  return net;
}

TEST(MetaPathTest, NamesAndInventory) {
  EXPECT_STREQ(MetaPathName(MetaPath::kUserUserUser), "U-U-U");
  EXPECT_STREQ(MetaPathName(MetaPath::kUserPostWordPostUser), "U-P-W-P-U");
  EXPECT_EQ(AllMetaPaths().size(), 4u);
}

TEST(MetaPathTest, WordPathCountsHandChecked) {
  const Matrix counts =
      MetaPathCountMap(Fixture(), MetaPath::kUserPostWordPostUser);
  // count(u, v) = Σ_w profile(u, w)·profile(v, w).
  EXPECT_DOUBLE_EQ(counts(0, 1), 1.0);  // Shared word 1.
  EXPECT_DOUBLE_EQ(counts(0, 2), 0.0);  // Disjoint.
  EXPECT_DOUBLE_EQ(counts(0, 0), 2.0);  // Two word attachments.
}

TEST(MetaPathTest, PathSimNormalisationHandChecked) {
  const Matrix sim =
      MetaPathSimilarityMap(Fixture(), MetaPath::kUserPostWordPostUser);
  // sim(0,1) = 1 / sqrt(2 * 2) = 0.5.
  EXPECT_DOUBLE_EQ(sim(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(sim(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(sim(0, 0), 0.0);  // Diagonal zeroed.
  EXPECT_TRUE(sim.IsSymmetric());
}

TEST(MetaPathTest, StructuralPathIsAdjacencySquared) {
  const Matrix counts = MetaPathCountMap(Fixture(), MetaPath::kUserUserUser);
  // Path graph 0-1-2: A²(0,2) = 1 (via 1), A²(0,0) = deg(0) = 1.
  EXPECT_DOUBLE_EQ(counts(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(counts(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(counts(1, 1), 2.0);
}

TEST(MetaPathTest, IsolatedUserGetsZeroSimilarity) {
  const Matrix sim =
      MetaPathSimilarityMap(Fixture(), MetaPath::kUserPostLocationPostUser);
  // No checkins at all: everything zero, no NaNs.
  for (double v : sim.data()) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_DOUBLE_EQ(v, 0.0);
  }
}

TEST(MetaPathTest, SimilarityBounded) {
  const HeterogeneousNetwork net = Fixture();
  for (MetaPath path : AllMetaPaths()) {
    const Matrix sim = MetaPathSimilarityMap(net, path);
    for (double v : sim.data()) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0 + 1e-12);
    }
  }
}

TEST(MetaPathTest, FeatureTensorIntegration) {
  FeatureTensorOptions options;
  options.meta_paths = true;
  EXPECT_EQ(NumFeatures(options), 13u);
  const auto names = FeatureNames(options);
  EXPECT_EQ(names.back(), "meta_path_U-P-L-P-U");

  const HeterogeneousNetwork net = Fixture();
  const SocialGraph structure = SocialGraph::FromHeterogeneousNetwork(net);
  const Tensor3 tensor = BuildFeatureTensor(net, structure, options);
  EXPECT_EQ(tensor.dim0(), 13u);
}

TEST(MetaPathTest, StructuralSliceUsesTrainingGraph) {
  // The U-U-U slice must change when the structure graph loses an edge;
  // attribute meta-path slices must not.
  FeatureTensorOptions options;
  options.meta_paths = true;
  options.sqrt_transform = false;
  const HeterogeneousNetwork net = Fixture();
  const SocialGraph full = SocialGraph::FromHeterogeneousNetwork(net);
  const SocialGraph train = full.WithEdgesRemoved({{0, 1}});
  const Tensor3 on_full = BuildFeatureTensor(net, full, options);
  const Tensor3 on_train = BuildFeatureTensor(net, train, options);
  const std::size_t uuu = 9;    // First meta-path slice.
  const std::size_t upwpu = 10; // Word meta-path slice.
  EXPECT_FALSE(on_full.Slice(uuu) == on_train.Slice(uuu));
  EXPECT_EQ(on_full.Slice(upwpu), on_train.Slice(upwpu));
}

}  // namespace
}  // namespace slampred
