// Tests for the extended ranking metrics (AP, MRR, NDCG@K, Recall@K).

#include <gtest/gtest.h>

#include <cmath>

#include "eval/ranking_metrics.h"

namespace slampred {
namespace {

const std::vector<double> kScores = {0.9, 0.8, 0.7, 0.6, 0.5};

TEST(AveragePrecisionTest, PerfectRankingIsOne) {
  auto ap = ComputeAveragePrecision(kScores, {1, 1, 0, 0, 0});
  ASSERT_TRUE(ap.ok());
  EXPECT_DOUBLE_EQ(ap.value(), 1.0);
}

TEST(AveragePrecisionTest, HandComputed) {
  // Positives at ranks 1 and 3: AP = (1/1 + 2/3) / 2 = 5/6.
  auto ap = ComputeAveragePrecision(kScores, {1, 0, 1, 0, 0});
  ASSERT_TRUE(ap.ok());
  EXPECT_NEAR(ap.value(), 5.0 / 6.0, 1e-12);
}

TEST(AveragePrecisionTest, WorstRanking) {
  // Single positive at the last rank: AP = 1/5.
  auto ap = ComputeAveragePrecision(kScores, {0, 0, 0, 0, 1});
  ASSERT_TRUE(ap.ok());
  EXPECT_DOUBLE_EQ(ap.value(), 0.2);
}

TEST(AveragePrecisionTest, RejectsDegenerate) {
  EXPECT_FALSE(ComputeAveragePrecision({}, {}).ok());
  EXPECT_FALSE(ComputeAveragePrecision({0.5}, {0}).ok());
  EXPECT_FALSE(ComputeAveragePrecision({0.5}, {1, 0}).ok());
  EXPECT_FALSE(ComputeAveragePrecision({0.5}, {7}).ok());
}

TEST(ReciprocalRankTest, HandComputed) {
  EXPECT_DOUBLE_EQ(
      ComputeReciprocalRank(kScores, {1, 0, 0, 0, 0}).value(), 1.0);
  EXPECT_DOUBLE_EQ(
      ComputeReciprocalRank(kScores, {0, 0, 1, 0, 0}).value(), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(
      ComputeReciprocalRank(kScores, {0, 0, 0, 0, 1}).value(), 0.2);
}

TEST(NdcgTest, PerfectRankingIsOne) {
  auto ndcg = ComputeNdcgAtK(kScores, {1, 1, 0, 0, 0}, 5);
  ASSERT_TRUE(ndcg.ok());
  EXPECT_DOUBLE_EQ(ndcg.value(), 1.0);
}

TEST(NdcgTest, HandComputed) {
  // Positive at rank 2 only; ideal would put it at rank 1.
  auto ndcg = ComputeNdcgAtK(kScores, {0, 1, 0, 0, 0}, 5);
  ASSERT_TRUE(ndcg.ok());
  const double dcg = 1.0 / std::log2(3.0);
  const double ideal = 1.0 / std::log2(2.0);
  EXPECT_NEAR(ndcg.value(), dcg / ideal, 1e-12);
}

TEST(NdcgTest, CutoffExcludesDeepPositives) {
  auto ndcg = ComputeNdcgAtK(kScores, {0, 0, 0, 0, 1}, 2);
  ASSERT_TRUE(ndcg.ok());
  EXPECT_DOUBLE_EQ(ndcg.value(), 0.0);
}

TEST(NdcgTest, RejectsZeroK) {
  EXPECT_FALSE(ComputeNdcgAtK(kScores, {1, 0, 0, 0, 0}, 0).ok());
}

TEST(RecallTest, HandComputed) {
  const std::vector<int> labels = {1, 0, 1, 0, 1};
  EXPECT_NEAR(ComputeRecallAtK(kScores, labels, 1).value(), 1.0 / 3.0,
              1e-12);
  EXPECT_NEAR(ComputeRecallAtK(kScores, labels, 3).value(), 2.0 / 3.0,
              1e-12);
  EXPECT_DOUBLE_EQ(ComputeRecallAtK(kScores, labels, 5).value(), 1.0);
}

TEST(RecallTest, KClamped) {
  EXPECT_DOUBLE_EQ(ComputeRecallAtK({0.5}, {1}, 100).value(), 1.0);
}

TEST(RankingMetricsTest, ConsistencyAcrossMetrics) {
  // A strictly better ranking can't score worse on any of the metrics.
  const std::vector<int> labels = {1, 1, 0, 0, 0, 0};
  const std::vector<double> good = {0.9, 0.8, 0.7, 0.6, 0.5, 0.4};
  const std::vector<double> bad = {0.4, 0.5, 0.9, 0.8, 0.7, 0.6};
  EXPECT_GT(ComputeAveragePrecision(good, labels).value(),
            ComputeAveragePrecision(bad, labels).value());
  EXPECT_GT(ComputeReciprocalRank(good, labels).value(),
            ComputeReciprocalRank(bad, labels).value());
  EXPECT_GT(ComputeNdcgAtK(good, labels, 6).value(),
            ComputeNdcgAtK(bad, labels, 6).value());
  EXPECT_GE(ComputeRecallAtK(good, labels, 2).value(),
            ComputeRecallAtK(bad, labels, 2).value());
}

}  // namespace
}  // namespace slampred
