// Tests for AUC, Precision@K, aggregation, fold splitting and the
// evaluation-set builder.

#include <set>

#include <gtest/gtest.h>

#include "eval/link_split.h"
#include "eval/metrics.h"
#include "util/random.h"

namespace slampred {
namespace {

TEST(AucTest, PerfectRankingIsOne) {
  auto auc = ComputeAuc({0.9, 0.8, 0.2, 0.1}, {1, 1, 0, 0});
  ASSERT_TRUE(auc.ok());
  EXPECT_DOUBLE_EQ(auc.value(), 1.0);
}

TEST(AucTest, InvertedRankingIsZero) {
  auto auc = ComputeAuc({0.1, 0.2, 0.8, 0.9}, {1, 1, 0, 0});
  ASSERT_TRUE(auc.ok());
  EXPECT_DOUBLE_EQ(auc.value(), 0.0);
}

TEST(AucTest, HandComputedMixedCase) {
  // Positives scores {0.8, 0.3}, negatives {0.5, 0.1}.
  // Pairs: (0.8 vs 0.5) win, (0.8 vs 0.1) win, (0.3 vs 0.5) loss,
  // (0.3 vs 0.1) win → AUC = 3/4.
  auto auc = ComputeAuc({0.8, 0.3, 0.5, 0.1}, {1, 1, 0, 0});
  ASSERT_TRUE(auc.ok());
  EXPECT_DOUBLE_EQ(auc.value(), 0.75);
}

TEST(AucTest, TiesGetHalfCredit) {
  auto auc = ComputeAuc({0.5, 0.5}, {1, 0});
  ASSERT_TRUE(auc.ok());
  EXPECT_DOUBLE_EQ(auc.value(), 0.5);
}

TEST(AucTest, AllScoresEqualIsHalf) {
  auto auc = ComputeAuc({0.3, 0.3, 0.3, 0.3}, {1, 0, 1, 0});
  ASSERT_TRUE(auc.ok());
  EXPECT_DOUBLE_EQ(auc.value(), 0.5);
}

TEST(AucTest, SingleClassReturnsHalf) {
  auto auc = ComputeAuc({0.9, 0.8}, {1, 1});
  ASSERT_TRUE(auc.ok());
  EXPECT_DOUBLE_EQ(auc.value(), 0.5);
}

TEST(AucTest, RejectsBadInput) {
  EXPECT_FALSE(ComputeAuc({0.5}, {1, 0}).ok());
  EXPECT_FALSE(ComputeAuc({}, {}).ok());
  EXPECT_FALSE(ComputeAuc({0.5}, {2}).ok());
}

TEST(AucTest, InvariantToMonotoneTransform) {
  Rng rng(5);
  std::vector<double> scores;
  std::vector<int> labels;
  for (int i = 0; i < 100; ++i) {
    scores.push_back(rng.NextDouble());
    labels.push_back(rng.NextBernoulli(0.4) ? 1 : 0);
  }
  std::vector<double> doubled = scores;
  for (double& s : doubled) s = 2.0 * s + 5.0;
  EXPECT_DOUBLE_EQ(ComputeAuc(scores, labels).value(),
                   ComputeAuc(doubled, labels).value());
}

TEST(PrecisionAtKTest, HandChecked) {
  const std::vector<double> scores = {0.9, 0.8, 0.7, 0.6, 0.5};
  const std::vector<int> labels = {1, 0, 1, 0, 1};
  EXPECT_DOUBLE_EQ(ComputePrecisionAtK(scores, labels, 1).value(), 1.0);
  EXPECT_DOUBLE_EQ(ComputePrecisionAtK(scores, labels, 2).value(), 0.5);
  EXPECT_DOUBLE_EQ(ComputePrecisionAtK(scores, labels, 3).value(), 2.0 / 3.0);
}

TEST(PrecisionAtKTest, KLargerThanSetIsClamped) {
  EXPECT_DOUBLE_EQ(ComputePrecisionAtK({0.5, 0.4}, {1, 1}, 100).value(), 1.0);
}

TEST(PrecisionAtKTest, RejectsBadInput) {
  EXPECT_FALSE(ComputePrecisionAtK({}, {}, 10).ok());
  EXPECT_FALSE(ComputePrecisionAtK({0.5}, {1}, 0).ok());
  EXPECT_FALSE(ComputePrecisionAtK({0.5}, {1, 0}, 1).ok());
}

TEST(MeanStdTest, HandChecked) {
  const MeanStd ms = ComputeMeanStd({2.0, 4.0, 6.0});
  EXPECT_DOUBLE_EQ(ms.mean, 4.0);
  EXPECT_DOUBLE_EQ(ms.std, 2.0);  // Sample std with n-1.
}

TEST(MeanStdTest, DegenerateCases) {
  EXPECT_DOUBLE_EQ(ComputeMeanStd({}).mean, 0.0);
  EXPECT_DOUBLE_EQ(ComputeMeanStd({5.0}).mean, 5.0);
  EXPECT_DOUBLE_EQ(ComputeMeanStd({5.0}).std, 0.0);
}

SocialGraph RandomGraph(std::size_t n, std::size_t edges, Rng& rng) {
  SocialGraph g(n);
  while (g.num_edges() < edges) {
    g.AddEdge(rng.NextBounded(n), rng.NextBounded(n));
  }
  return g;
}

TEST(LinkSplitTest, FoldsPartitionEdges) {
  Rng rng(7);
  const SocialGraph g = RandomGraph(30, 60, rng);
  auto folds = SplitLinks(g, 5, rng);
  ASSERT_TRUE(folds.ok());
  ASSERT_EQ(folds.value().size(), 5u);

  std::set<UserPair> all_test;
  for (const LinkFold& fold : folds.value()) {
    EXPECT_EQ(fold.train_edges.size() + fold.test_edges.size(),
              g.num_edges());
    for (const UserPair& e : fold.test_edges) {
      EXPECT_TRUE(all_test.insert(e).second)
          << "test shards must be disjoint";
    }
    // Train and test are disjoint within a fold.
    std::set<UserPair> test_set(fold.test_edges.begin(),
                                fold.test_edges.end());
    for (const UserPair& e : fold.train_edges) {
      EXPECT_EQ(test_set.count(e), 0u);
    }
  }
  EXPECT_EQ(all_test.size(), g.num_edges());
}

TEST(LinkSplitTest, FoldSizesBalanced) {
  Rng rng(9);
  const SocialGraph g = RandomGraph(30, 55, rng);
  auto folds = SplitLinks(g, 5, rng);
  ASSERT_TRUE(folds.ok());
  for (const LinkFold& fold : folds.value()) {
    EXPECT_GE(fold.test_edges.size(), 11u);
    EXPECT_LE(fold.test_edges.size(), 12u);
  }
}

TEST(LinkSplitTest, RejectsDegenerateInputs) {
  Rng rng(11);
  const SocialGraph g = RandomGraph(10, 8, rng);
  EXPECT_FALSE(SplitLinks(g, 1, rng).ok());
  EXPECT_FALSE(SplitLinks(g, 20, rng).ok());
}

TEST(EvaluationSetTest, LabelsAreConsistent) {
  Rng rng(13);
  const SocialGraph g = RandomGraph(25, 50, rng);
  auto folds = SplitLinks(g, 5, rng);
  ASSERT_TRUE(folds.ok());
  const auto& test_edges = folds.value()[0].test_edges;
  auto eval = BuildEvaluationSet(g, test_edges, 3.0, rng);
  ASSERT_TRUE(eval.ok());

  const std::set<UserPair> test_set(test_edges.begin(), test_edges.end());
  std::size_t pos = 0;
  for (std::size_t i = 0; i < eval.value().pairs.size(); ++i) {
    const UserPair& p = eval.value().pairs[i];
    if (eval.value().labels[i] == 1) {
      EXPECT_EQ(test_set.count(p), 1u);
      ++pos;
    } else {
      // Negatives are links nowhere in the full graph.
      EXPECT_FALSE(g.HasEdge(p.u, p.v));
    }
  }
  EXPECT_EQ(pos, test_edges.size());
  EXPECT_NEAR(static_cast<double>(eval.value().pairs.size() - pos),
              3.0 * static_cast<double>(pos), static_cast<double>(pos));
}

TEST(EvaluationSetTest, RejectsBadInput) {
  Rng rng(15);
  const SocialGraph g = RandomGraph(10, 10, rng);
  EXPECT_FALSE(BuildEvaluationSet(g, {}, 3.0, rng).ok());
  EXPECT_FALSE(BuildEvaluationSet(g, {{0, 1}}, 0.0, rng).ok());
}

}  // namespace
}  // namespace slampred
