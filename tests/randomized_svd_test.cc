// Tests for the randomized truncated SVD and its prox variant.

#include <gtest/gtest.h>

#include "linalg/matrix_ops.h"
#include "linalg/qr.h"
#include "linalg/randomized_svd.h"
#include "linalg/svd.h"
#include "optim/proximal.h"
#include "util/random.h"

namespace slampred {
namespace {

// Exactly rank-r matrix with controlled singular values.
Matrix LowRankMatrix(std::size_t m, std::size_t n, std::size_t r,
                     double top_sigma, Rng& rng) {
  const Matrix u = OrthonormalizeColumns(Matrix::RandomGaussian(m, r, rng));
  const Matrix v = OrthonormalizeColumns(Matrix::RandomGaussian(n, r, rng));
  Vector sigma(r);
  for (std::size_t i = 0; i < r; ++i) {
    sigma[i] = top_sigma / static_cast<double>(i + 1);
  }
  return u * Matrix::Diagonal(sigma) * v.Transposed();
}

TEST(RandomizedSvdTest, ExactOnLowRankInput) {
  Rng rng(3);
  const Matrix a = LowRankMatrix(30, 20, 4, 10.0, rng);
  RandomizedSvdOptions options;
  options.rank = 4;
  auto svd = ComputeRandomizedSvd(a, options);
  ASSERT_TRUE(svd.ok()) << svd.status().ToString();
  EXPECT_LT((svd.value().Reconstruct() - a).MaxAbs(), 1e-8);
}

TEST(RandomizedSvdTest, TopSingularValuesMatchFullSvd) {
  Rng rng(5);
  const Matrix a = Matrix::RandomGaussian(25, 25, rng);
  RandomizedSvdOptions options;
  options.rank = 5;
  options.power_iterations = 4;
  auto approx = ComputeRandomizedSvd(a, options);
  auto full = ComputeSvd(a);
  ASSERT_TRUE(approx.ok());
  ASSERT_TRUE(full.ok());
  // With power iterations the top singular values are accurate to a few
  // percent even on a flat random spectrum.
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(approx.value().singular_values[i],
                full.value().singular_values[i],
                0.05 * full.value().singular_values[0])
        << "sigma_" << i;
  }
}

TEST(RandomizedSvdTest, FactorsOrthonormal) {
  Rng rng(7);
  const Matrix a = LowRankMatrix(20, 30, 6, 5.0, rng);
  RandomizedSvdOptions options;
  options.rank = 6;
  auto svd = ComputeRandomizedSvd(a, options);
  ASSERT_TRUE(svd.ok());
  const Matrix ugram = GramAtA(svd.value().u);
  const Matrix vgram = GramAtA(svd.value().v);
  EXPECT_LT((ugram - Matrix::Identity(ugram.rows())).MaxAbs(), 1e-7);
  EXPECT_LT((vgram - Matrix::Identity(vgram.rows())).MaxAbs(), 1e-7);
}

TEST(RandomizedSvdTest, DeterministicGivenSeed) {
  Rng rng(9);
  const Matrix a = Matrix::RandomGaussian(15, 15, rng);
  RandomizedSvdOptions options;
  options.rank = 3;
  auto first = ComputeRandomizedSvd(a, options);
  auto second = ComputeRandomizedSvd(a, options);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value().singular_values.data(),
            second.value().singular_values.data());
}

TEST(RandomizedSvdTest, RejectsBadInput) {
  EXPECT_FALSE(ComputeRandomizedSvd(Matrix(), {}).ok());
  RandomizedSvdOptions zero_rank;
  zero_rank.rank = 0;
  EXPECT_FALSE(ComputeRandomizedSvd(Matrix::Identity(3), zero_rank).ok());
}

TEST(RandomizedSvdTest, ZeroMatrixHandled) {
  RandomizedSvdOptions options;
  options.rank = 2;
  auto svd = ComputeRandomizedSvd(Matrix(5, 5), options);
  ASSERT_TRUE(svd.ok());
  EXPECT_NEAR(svd.value().singular_values.NormInf(), 0.0, 1e-12);
}

TEST(ProxNuclearRandomizedTest, MatchesExactProxWhenRankSuffices) {
  Rng rng(11);
  const Matrix s = LowRankMatrix(20, 20, 3, 8.0, rng).Symmetrized();
  RandomizedSvdOptions options;
  options.rank = 8;
  options.power_iterations = 3;
  auto fast = ProxNuclearRandomized(s, 0.5, options);
  auto exact = ProxNuclear(s, 0.5);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(exact.ok());
  EXPECT_LT((fast.value() - exact.value()).MaxAbs(), 1e-4);
}

TEST(ProxNuclearRandomizedTest, LargeThresholdGivesZero) {
  Rng rng(13);
  const Matrix s = LowRankMatrix(10, 10, 2, 3.0, rng);
  RandomizedSvdOptions options;
  options.rank = 4;
  auto out = ProxNuclearRandomized(s, 100.0, options);
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ(out.value().MaxAbs(), 0.0);
}

// Property sweep over target ranks: reconstruction error never grows as
// the sketch rank increases.
class RandomizedRankParamTest : public ::testing::TestWithParam<std::size_t> {
};

TEST_P(RandomizedRankParamTest, ErrorShrinksWithRank) {
  Rng rng(17);
  const Matrix a = LowRankMatrix(24, 24, 8, 10.0, rng);
  RandomizedSvdOptions options;
  options.rank = GetParam();
  options.power_iterations = 3;
  auto svd = ComputeRandomizedSvd(a, options);
  ASSERT_TRUE(svd.ok());
  const double error = (svd.value().Reconstruct() - a).FrobeniusNorm();
  // Rank-k best error is the tail of the singular values 10/(i+1).
  double tail = 0.0;
  for (std::size_t i = GetParam(); i < 8; ++i) {
    const double sigma = 10.0 / static_cast<double>(i + 1);
    tail += sigma * sigma;
  }
  EXPECT_LE(error * error, tail + 0.5);
}

INSTANTIATE_TEST_SUITE_P(Ranks, RandomizedRankParamTest,
                         ::testing::Values(2, 4, 6, 8));

}  // namespace
}  // namespace slampred
