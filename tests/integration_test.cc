// End-to-end integration tests: the paper's qualitative claims must hold
// on a freshly generated bundle — the full pipeline from generation
// through adaptation and optimisation to evaluation.

#include <gtest/gtest.h>

#include "core/slampred.h"
#include "datagen/aligned_generator.h"
#include "eval/anchor_sampler.h"
#include "eval/experiment.h"

namespace slampred {
namespace {

ExperimentOptions IntegrationOptions() {
  ExperimentOptions options;
  options.num_folds = 3;
  options.negatives_per_positive = 4.0;
  options.precision_k = 50;
  options.slampred.optimization.inner.max_iterations = 40;
  options.slampred.optimization.max_outer_iterations = 2;
  return options;
}

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto gen = GenerateAligned(DefaultExperimentConfig(41));
    ASSERT_TRUE(gen.ok());
    generated_ = new GeneratedAligned(std::move(gen).value());
    auto runner = ExperimentRunner::Create(generated_->networks,
                                           IntegrationOptions());
    ASSERT_TRUE(runner.ok());
    runner_ = new ExperimentRunner(std::move(runner).value());
  }
  static void TearDownTestSuite() {
    delete runner_;
    delete generated_;
    runner_ = nullptr;
    generated_ = nullptr;
  }

  static double Auc(MethodId method, double ratio) {
    auto result = runner_->RunMethod(method, ratio);
    EXPECT_TRUE(result.ok()) << MethodIdName(method) << ": "
                             << result.status().ToString();
    return result.ok() ? result.value().auc.mean : 0.0;
  }

  static GeneratedAligned* generated_;
  static ExperimentRunner* runner_;
};

GeneratedAligned* IntegrationTest::generated_ = nullptr;
ExperimentRunner* IntegrationTest::runner_ = nullptr;

TEST_F(IntegrationTest, SlamPredVariantOrdering) {
  // Paper: SLAMPRED >= SLAMPRED-T >= SLAMPRED-H (Table II, high ratios).
  const double full = Auc(MethodId::kSlamPred, 1.0);
  const double target_only = Auc(MethodId::kSlamPredT, 1.0);
  const double homogeneous = Auc(MethodId::kSlamPredH, 1.0);
  EXPECT_GT(full, target_only - 0.02);
  EXPECT_GT(target_only, homogeneous - 0.02);
  EXPECT_GT(full, homogeneous);
}

TEST_F(IntegrationTest, SlamPredImprovesWithAnchorRatio) {
  // Paper: SLAMPRED's AUC rises (approximately monotonically) with the
  // anchor sampling ratio.
  const double at_zero = Auc(MethodId::kSlamPred, 0.0);
  const double at_half = Auc(MethodId::kSlamPred, 0.5);
  const double at_one = Auc(MethodId::kSlamPred, 1.0);
  EXPECT_GT(at_one, at_zero);
  EXPECT_GT(at_half, at_zero - 0.03);
  EXPECT_GT(at_one, at_half - 0.03);
}

TEST_F(IntegrationTest, SlamPredBeatsBaselinesAtFullAlignment) {
  // Paper: SLAMPRED outperforms PL, SCAN, JC, CN, PA at ratio 1.0.
  const double slampred = Auc(MethodId::kSlamPred, 1.0);
  EXPECT_GT(slampred, Auc(MethodId::kJc, 1.0));
  EXPECT_GT(slampred, Auc(MethodId::kCn, 1.0));
  EXPECT_GT(slampred, Auc(MethodId::kPa, 1.0));
  EXPECT_GT(slampred, Auc(MethodId::kScan, 1.0) - 0.02);
  EXPECT_GT(slampred, Auc(MethodId::kPl, 1.0) - 0.02);
}

TEST_F(IntegrationTest, AllTwelveMethodsProduceResults) {
  for (MethodId method : AllMethods()) {
    auto result = runner_->RunMethod(method, 0.6);
    ASSERT_TRUE(result.ok()) << MethodIdName(method) << ": "
                             << result.status().ToString();
    EXPECT_GE(result.value().auc.mean, 0.3) << MethodIdName(method);
    EXPECT_LE(result.value().auc.mean, 1.0) << MethodIdName(method);
  }
}

TEST_F(IntegrationTest, ConvergenceTraceShrinks) {
  // Paper Figure 3: the iterate change approaches zero.
  const SocialGraph full_graph = SocialGraph::FromHeterogeneousNetwork(
      generated_->networks.target());
  SlamPredConfig config;
  config.optimization.inner.max_iterations = 120;
  config.optimization.inner.tol = 0.0;  // Record the full series.
  config.optimization.max_outer_iterations = 1;
  SlamPred model(config);
  ASSERT_TRUE(model.Fit(generated_->networks, full_graph).ok());
  const auto& change = model.trace().steps.s_change_l1;
  ASSERT_GE(change.size(), 100u);
  // Compare the mean change of the first and last 20 steps.
  double head = 0.0;
  double tail = 0.0;
  for (int i = 0; i < 20; ++i) {
    head += change[i];
    tail += change[change.size() - 1 - i];
  }
  EXPECT_LT(tail, head * 0.5);
}

}  // namespace
}  // namespace slampred
