// Tests for the ML substrate: scaler, logistic regression, samplers.

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "ml/instance_sampler.h"
#include "ml/logistic_regression.h"
#include "ml/standard_scaler.h"
#include "util/random.h"

namespace slampred {
namespace {

TEST(SigmoidTest, KnownValuesAndStability) {
  EXPECT_DOUBLE_EQ(Sigmoid(0.0), 0.5);
  EXPECT_NEAR(Sigmoid(2.0), 1.0 / (1.0 + std::exp(-2.0)), 1e-12);
  EXPECT_NEAR(Sigmoid(1000.0), 1.0, 1e-12);
  EXPECT_NEAR(Sigmoid(-1000.0), 0.0, 1e-12);
  EXPECT_NEAR(Sigmoid(3.0) + Sigmoid(-3.0), 1.0, 1e-12);
}

TEST(StandardScalerTest, TransformsToZeroMeanUnitVariance) {
  std::vector<Vector> rows = {Vector{1.0, 10.0}, Vector{3.0, 20.0},
                              Vector{5.0, 30.0}};
  StandardScaler scaler;
  scaler.Fit(rows);
  EXPECT_EQ(scaler.width(), 2u);
  EXPECT_DOUBLE_EQ(scaler.means()[0], 3.0);
  EXPECT_DOUBLE_EQ(scaler.means()[1], 20.0);
  scaler.TransformInPlace(rows);
  double mean0 = 0.0;
  double var0 = 0.0;
  for (const Vector& r : rows) mean0 += r[0];
  mean0 /= 3.0;
  for (const Vector& r : rows) var0 += (r[0] - mean0) * (r[0] - mean0);
  EXPECT_NEAR(mean0, 0.0, 1e-12);
  EXPECT_NEAR(var0 / 3.0, 1.0, 1e-12);
}

TEST(StandardScalerTest, ConstantFeatureMapsToZero) {
  std::vector<Vector> rows = {Vector{7.0, 1.0}, Vector{7.0, 2.0}};
  StandardScaler scaler;
  scaler.Fit(rows);
  const Vector out = scaler.Transform(Vector{7.0, 1.5});
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  const Vector far = scaler.Transform(Vector{99.0, 1.5});
  EXPECT_DOUBLE_EQ(far[0], 0.0);  // Still zero: no scale information.
}

TEST(StandardScalerTest, EmptyFit) {
  StandardScaler scaler;
  scaler.Fit({});
  EXPECT_EQ(scaler.width(), 0u);
}

TEST(LogisticRegressionTest, LearnsLinearlySeparableData) {
  Rng rng(3);
  std::vector<Vector> features;
  std::vector<int> labels;
  for (int i = 0; i < 200; ++i) {
    const double x = rng.NextGaussian();
    const double y = rng.NextGaussian();
    features.push_back(Vector{x, y});
    labels.push_back(x + y > 0.0 ? 1 : 0);
  }
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(features, labels).ok());
  int correct = 0;
  for (std::size_t i = 0; i < features.size(); ++i) {
    if (model.Predict(features[i]) == labels[i]) ++correct;
  }
  EXPECT_GT(correct, 185);
}

TEST(LogisticRegressionTest, ProbabilitiesOrderedBySignal) {
  Rng rng(5);
  std::vector<Vector> features;
  std::vector<int> labels;
  for (int i = 0; i < 100; ++i) {
    const double x = rng.NextGaussian();
    features.push_back(Vector{x});
    labels.push_back(x > 0.0 ? 1 : 0);
  }
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(features, labels).ok());
  EXPECT_GT(model.PredictProbability(Vector{2.0}),
            model.PredictProbability(Vector{-2.0}));
  EXPECT_GT(model.PredictProbability(Vector{2.0}), 0.8);
}

TEST(LogisticRegressionTest, RejectsBadInputs) {
  LogisticRegression model;
  EXPECT_FALSE(model.Fit({}, {}).ok());
  EXPECT_FALSE(model.Fit({Vector{1.0}}, {1, 0}).ok());
  EXPECT_FALSE(model.Fit({Vector{1.0}}, {2}).ok());
  EXPECT_FALSE(model
                   .FitWeighted({Vector{1.0}}, {1}, {-1.0})
                   .ok());
  EXPECT_FALSE(model.FitWeighted({Vector{1.0}}, {1}, {0.0}).ok());
  EXPECT_FALSE(model.Fit({Vector{1.0}, Vector{1.0, 2.0}}, {1, 0}).ok());
  EXPECT_FALSE(model.fitted());
}

TEST(LogisticRegressionTest, ExampleWeightsShiftDecision) {
  // Same point appears with both labels; the heavier label must win.
  std::vector<Vector> features = {Vector{1.0}, Vector{1.0}};
  std::vector<int> labels = {1, 0};
  LogisticRegression pro;
  ASSERT_TRUE(pro.FitWeighted(features, labels, {10.0, 1.0}).ok());
  EXPECT_GT(pro.PredictProbability(Vector{1.0}), 0.5);
  LogisticRegression contra;
  ASSERT_TRUE(contra.FitWeighted(features, labels, {1.0, 10.0}).ok());
  EXPECT_LT(contra.PredictProbability(Vector{1.0}), 0.5);
}

TEST(InstanceSamplerTest, LabelsMatchGraph) {
  SocialGraph g(20);
  Rng grng(7);
  for (int i = 0; i < 40; ++i) {
    g.AddEdge(grng.NextBounded(20), grng.NextBounded(20));
  }
  Rng rng(9);
  const PairTrainingSet set = SamplePairTrainingSet(g, 15, 1.0, {}, rng);
  ASSERT_EQ(set.pairs.size(), set.labels.size());
  for (std::size_t i = 0; i < set.pairs.size(); ++i) {
    EXPECT_EQ(set.labels[i] == 1,
              g.HasEdge(set.pairs[i].u, set.pairs[i].v));
  }
}

TEST(InstanceSamplerTest, RespectsExclusions) {
  SocialGraph g(10);
  g.AddEdge(0, 1);
  g.AddEdge(2, 3);
  Rng rng(11);
  const PairTrainingSet set =
      SamplePairTrainingSet(g, 10, 3.0, {{0, 1}}, rng);
  for (const UserPair& p : set.pairs) {
    EXPECT_FALSE(p.u == 0 && p.v == 1) << "excluded pair sampled";
  }
}

TEST(InstanceSamplerTest, NegativeRatioApproximatelyHonoured) {
  SocialGraph g(30);
  Rng grng(13);
  for (int i = 0; i < 60; ++i) {
    g.AddEdge(grng.NextBounded(30), grng.NextBounded(30));
  }
  Rng rng(15);
  const PairTrainingSet set = SamplePairTrainingSet(g, 20, 2.0, {}, rng);
  std::size_t pos = 0;
  std::size_t neg = 0;
  for (int label : set.labels) (label == 1 ? pos : neg) += 1;
  EXPECT_GT(pos, 0u);
  EXPECT_NEAR(static_cast<double>(neg),
              2.0 * static_cast<double>(pos),
              static_cast<double>(pos));
}

TEST(InstanceSamplerTest, NoDuplicatePairs) {
  SocialGraph g(15);
  Rng grng(17);
  for (int i = 0; i < 30; ++i) {
    g.AddEdge(grng.NextBounded(15), grng.NextBounded(15));
  }
  Rng rng(19);
  const PairTrainingSet set = SamplePairTrainingSet(g, 20, 2.0, {}, rng);
  std::set<UserPair> unique(set.pairs.begin(), set.pairs.end());
  EXPECT_EQ(unique.size(), set.pairs.size());
}

}  // namespace
}  // namespace slampred
