// Tests for the dense Vector and Matrix types.

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "util/random.h"

namespace slampred {
namespace {

TEST(VectorTest, ConstructionAndAccess) {
  Vector v{1.0, 2.0, 3.0};
  EXPECT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[1], 2.0);
  EXPECT_DOUBLE_EQ(v.At(2), 3.0);
  v.Set(0, 9.0);
  EXPECT_DOUBLE_EQ(v[0], 9.0);
}

TEST(VectorTest, Arithmetic) {
  Vector a{1.0, 2.0};
  Vector b{3.0, -1.0};
  EXPECT_EQ(a + b, (Vector{4.0, 1.0}));
  EXPECT_EQ(a - b, (Vector{-2.0, 3.0}));
  EXPECT_EQ(a * 2.0, (Vector{2.0, 4.0}));
  EXPECT_EQ(2.0 * a, (Vector{2.0, 4.0}));
  a += b;
  EXPECT_EQ(a, (Vector{4.0, 1.0}));
  a /= 2.0;
  EXPECT_EQ(a, (Vector{2.0, 0.5}));
}

TEST(VectorTest, DotAndNorms) {
  Vector a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(a.Dot(a), 25.0);
  EXPECT_DOUBLE_EQ(a.Norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.NormL1(), 7.0);
  EXPECT_DOUBLE_EQ(a.NormInf(), 4.0);
  EXPECT_DOUBLE_EQ(a.Sum(), 7.0);
  EXPECT_DOUBLE_EQ(a.Mean(), 3.5);
}

TEST(VectorTest, HadamardAndNormalize) {
  Vector a{2.0, 3.0};
  Vector b{4.0, -1.0};
  EXPECT_EQ(a.Hadamard(b), (Vector{8.0, -3.0}));
  const Vector unit = a.Normalized();
  EXPECT_NEAR(unit.Norm(), 1.0, 1e-12);
  const Vector zero(3);
  EXPECT_EQ(zero.Normalized(), zero);
}

TEST(VectorTest, EmptyVectorEdgeCases) {
  Vector v;
  EXPECT_TRUE(v.empty());
  EXPECT_DOUBLE_EQ(v.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(v.NormInf(), 0.0);
}

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  m.Set(0, 1, 7.0);
  EXPECT_DOUBLE_EQ(m.At(0, 1), 7.0);
}

TEST(MatrixTest, IdentityAndDiagonal) {
  const Matrix eye = Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(eye.Trace(), 3.0);
  const Matrix diag = Matrix::Diagonal(Vector{2.0, 5.0});
  EXPECT_DOUBLE_EQ(diag(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(diag(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(diag(0, 1), 0.0);
}

TEST(MatrixTest, MultiplicationMatchesHandComputation) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(MatrixTest, RectangularMultiplication) {
  Matrix a(2, 3, 1.0);
  Matrix b(3, 4, 2.0);
  const Matrix c = a * b;
  EXPECT_EQ(c.rows(), 2u);
  EXPECT_EQ(c.cols(), 4u);
  EXPECT_DOUBLE_EQ(c(1, 3), 6.0);
}

TEST(MatrixTest, MatVec) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Vector y = a * Vector{1.0, 1.0};
  EXPECT_EQ(y, (Vector{3.0, 7.0}));
}

TEST(MatrixTest, TransposeInvolution) {
  Rng rng(3);
  const Matrix m = Matrix::RandomGaussian(4, 7, rng);
  const Matrix mtt = m.Transposed().Transposed();
  EXPECT_EQ(m, mtt);
  EXPECT_DOUBLE_EQ(m.Transposed()(2, 3), m(3, 2));
}

TEST(MatrixTest, NormsAndSums) {
  Matrix m{{3.0, 0.0}, {0.0, -4.0}};
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 5.0);
  EXPECT_DOUBLE_EQ(m.NormL1(), 7.0);
  EXPECT_DOUBLE_EQ(m.MaxAbs(), 4.0);
  EXPECT_DOUBLE_EQ(m.Sum(), -1.0);
  EXPECT_DOUBLE_EQ(m.Trace(), -1.0);
}

TEST(MatrixTest, SymmetryPredicateAndSymmetrize) {
  Matrix sym{{1.0, 2.0}, {2.0, 3.0}};
  EXPECT_TRUE(sym.IsSymmetric());
  Matrix asym{{1.0, 2.0}, {0.0, 3.0}};
  EXPECT_FALSE(asym.IsSymmetric());
  const Matrix fixed = asym.Symmetrized();
  EXPECT_TRUE(fixed.IsSymmetric());
  EXPECT_DOUBLE_EQ(fixed(0, 1), 1.0);
}

TEST(MatrixTest, RowColSetters) {
  Matrix m(2, 3);
  m.SetRow(0, Vector{1.0, 2.0, 3.0});
  m.SetCol(2, Vector{7.0, 8.0});
  EXPECT_EQ(m.Row(0), (Vector{1.0, 2.0, 7.0}));
  EXPECT_EQ(m.Col(2), (Vector{7.0, 8.0}));
  EXPECT_EQ(m.Diag(), (Vector{1.0, 0.0}));
}

TEST(MatrixTest, BlockRoundTrip) {
  Matrix m(4, 4);
  Matrix block{{1.0, 2.0}, {3.0, 4.0}};
  m.SetBlock(1, 2, block);
  EXPECT_EQ(m.Block(1, 2, 2, 2), block);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(m(2, 3), 4.0);
}

TEST(MatrixTest, HadamardProduct) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{2.0, 0.0}, {1.0, -1.0}};
  const Matrix h = a.Hadamard(b);
  EXPECT_DOUBLE_EQ(h(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(h(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(h(1, 1), -4.0);
}

TEST(MatrixTest, SparsityAndZeroSmallEntries) {
  Matrix m{{1e-12, 1.0}, {0.0, 2.0}};
  EXPECT_DOUBLE_EQ(m.Sparsity(), 0.25);
  EXPECT_EQ(m.ZeroSmallEntries(1e-9), 1u);
  EXPECT_DOUBLE_EQ(m.Sparsity(), 0.5);
}

TEST(MatrixTest, MultiplicationAssociativityProperty) {
  Rng rng(5);
  const Matrix a = Matrix::RandomGaussian(3, 4, rng);
  const Matrix b = Matrix::RandomGaussian(4, 5, rng);
  const Matrix c = Matrix::RandomGaussian(5, 2, rng);
  const Matrix left = (a * b) * c;
  const Matrix right = a * (b * c);
  EXPECT_LT((left - right).MaxAbs(), 1e-10);
}

// Parameterised property: (A*B)ᵀ == Bᵀ*Aᵀ across shapes.
class MatrixShapeParamTest
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(MatrixShapeParamTest, TransposeOfProduct) {
  Rng rng(GetParam().first * 31 + GetParam().second);
  const Matrix a =
      Matrix::RandomGaussian(GetParam().first, GetParam().second, rng);
  const Matrix b =
      Matrix::RandomGaussian(GetParam().second, GetParam().first, rng);
  const Matrix lhs = (a * b).Transposed();
  const Matrix rhs = b.Transposed() * a.Transposed();
  EXPECT_LT((lhs - rhs).MaxAbs(), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatrixShapeParamTest,
    ::testing::Values(std::make_pair(1u, 1u), std::make_pair(2u, 5u),
                      std::make_pair(7u, 3u), std::make_pair(10u, 10u),
                      std::make_pair(1u, 8u)));

}  // namespace
}  // namespace slampred
