// Deterministic concurrency harness for the serving layer: N caller
// threads issue interleaved Score / ScorePairs / TopK against one
// ModelRegistry while the suite bit-compares every response against the
// serial ScoringSession oracle — at 1/4/7 pool threads, with batching
// on and off, and during artifact hot-swap (every response must match
// exactly one artifact version, never a torn mix). Also covers the
// serve.swap / serve.batch fault-injection sites and version draining.
//
// The overload suite at the bottom drives the robustness features:
// per-request deadlines, bounded admission with both shed policies,
// exact counter accounting under 6-thread overload, and the
// batch-dispatch circuit breaker's trip → degraded-tier → half-open →
// recovery cycle on a fake clock.

#include "core/scoring_service.h"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/model_artifact.h"
#include "core/scoring_session.h"
#include "serve/load_generator.h"
#include "util/binary_io.h"
#include "util/fault_injection.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace slampred {
namespace {

// A recognizable, version-taggable score surface: f(u, v) + offset.
double ScoreValue(std::size_t u, std::size_t v, double offset) {
  return 0.25 * static_cast<double>(u) -
         0.125 * static_cast<double>(v) +
         static_cast<double>((u * 31 + v * 17) % 97) + offset;
}

ModelArtifact MakeArtifact(std::size_t n, double offset) {
  ModelArtifact artifact;
  artifact.s = Matrix(n, n);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = 0; v < n; ++v) {
      artifact.s(u, v) = ScoreValue(u, v, offset);
    }
  }
  return artifact;
}

// The serial oracle the concurrent service is bit-compared against.
ScoringSession MakeOracle(const ModelArtifact& artifact) {
  auto session = ScoringSession::FromArtifact(ModelArtifact(artifact));
  EXPECT_TRUE(session.ok()) << session.status().ToString();
  return std::move(session).value();
}

// Reference top-K: full sort, descending score, ascending v on ties.
std::vector<TopKEntry> ReferenceTopK(const Matrix& s, std::size_t u,
                                     std::size_t k) {
  std::vector<TopKEntry> all;
  for (std::size_t v = 0; v < s.cols(); ++v) {
    if (v != u) all.push_back({v, s(u, v)});
  }
  std::sort(all.begin(), all.end(), [](const TopKEntry& a,
                                       const TopKEntry& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.v < b.v;
  });
  if (all.size() > k) all.resize(k);
  return all;
}

std::vector<UserPair> DeterministicPairs(Rng& rng, std::size_t n,
                                         std::size_t count) {
  std::vector<UserPair> pairs(count);
  for (UserPair& pair : pairs) {
    pair.u = static_cast<std::size_t>(rng.NextBounded(n));
    pair.v = static_cast<std::size_t>(rng.NextBounded(n));
  }
  return pairs;
}

class ScoringServiceTest : public ::testing::Test {
 protected:
  void TearDown() override {
    FaultInjector::Instance().Reset();
    ThreadPool::Global().Resize(4);
  }
};

TEST_F(ScoringServiceTest, ScorePairsMatchesSerialOracleBitForBit) {
  const std::size_t n = 20;
  const ModelArtifact artifact = MakeArtifact(n, 0.0);
  const ScoringSession oracle = MakeOracle(artifact);

  ModelRegistry registry;
  ASSERT_TRUE(registry.Swap(ModelArtifact(artifact)).ok());
  ScoringService service(&registry);

  Rng rng(7);
  const std::vector<UserPair> pairs = DeterministicPairs(rng, n, 257);
  auto expected = oracle.ScorePairs(pairs);
  ASSERT_TRUE(expected.ok());
  auto got = service.ScorePairs(pairs);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got.value().version, 1u);
  ASSERT_EQ(got.value().scores.size(), expected.value().size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(got.value().scores[i], expected.value()[i]) << "pair " << i;
  }

  auto single = service.Score(3, 11);
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(single.value(), oracle.Score(3, 11).value());
}

TEST_F(ScoringServiceTest, ErrorsMatchTheOracleContract) {
  ModelRegistry registry;
  ScoringService service(&registry);
  // Before the first swap every request is a failed precondition.
  EXPECT_EQ(service.Score(0, 0).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.ScorePairs({{0, 1}}).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.TopK(0, 3).status().code(),
            StatusCode::kFailedPrecondition);

  ASSERT_TRUE(registry.Swap(MakeArtifact(6, 0.0)).ok());
  EXPECT_EQ(service.Score(6, 0).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(service.ScorePairs({{0, 1}, {1, 6}}).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(service.TopK(9, 3).status().code(), StatusCode::kOutOfRange);
  // A bad pair request fails alone; the model keeps serving.
  EXPECT_TRUE(service.ScorePairs({{0, 1}}).ok());
}

// The core harness: at 1/4/7 pool threads, concurrent mixed traffic
// must be bit-identical to the serial oracle, with batching on and off.
TEST_F(ScoringServiceTest, ConcurrentMixedTrafficMatchesOracle) {
  const std::size_t n = 40;
  const ModelArtifact artifact = MakeArtifact(n, 0.0);
  const ScoringSession oracle = MakeOracle(artifact);
  const Matrix& s = oracle.artifact().s;

  for (const std::size_t pool_threads : {1u, 4u, 7u}) {
    ThreadPool::Global().Resize(pool_threads);
    for (const bool batching : {true, false}) {
      ModelRegistry registry;
      ASSERT_TRUE(registry.Swap(ModelArtifact(artifact)).ok());
      BatchScorerOptions batch;
      batch.enabled = batching;
      ScoringService service(&registry, batch);

      const std::size_t num_callers = 6;
      const std::size_t iterations = 40;
      std::vector<std::string> failures(num_callers);
      std::vector<std::thread> callers;
      for (std::size_t t = 0; t < num_callers; ++t) {
        callers.emplace_back([&, t] {
          Rng rng(1000 + t);
          for (std::size_t i = 0; i < iterations; ++i) {
            const std::size_t op = i % 3;
            if (op == 0) {
              const std::size_t u = rng.NextBounded(n);
              const std::size_t v = rng.NextBounded(n);
              auto got = service.Score(u, v);
              if (!got.ok() || got.value() != s(u, v)) {
                failures[t] = "Score mismatch at iteration " +
                              std::to_string(i);
                return;
              }
            } else if (op == 1) {
              const auto pairs = DeterministicPairs(
                  rng, n, 1 + rng.NextBounded(96));
              auto got = service.ScorePairs(pairs);
              if (!got.ok()) {
                failures[t] = got.status().ToString();
                return;
              }
              for (std::size_t j = 0; j < pairs.size(); ++j) {
                if (got.value().scores[j] != s(pairs[j].u, pairs[j].v)) {
                  failures[t] = "ScorePairs mismatch at iteration " +
                                std::to_string(i) + " element " +
                                std::to_string(j);
                  return;
                }
              }
            } else {
              const std::size_t u = rng.NextBounded(n);
              const std::size_t k = rng.NextBounded(n + 2);
              auto got = service.TopK(u, k);
              if (!got.ok()) {
                failures[t] = got.status().ToString();
                return;
              }
              const auto expected = ReferenceTopK(s, u, k);
              if (got.value().entries.size() != expected.size()) {
                failures[t] = "TopK size mismatch at iteration " +
                              std::to_string(i);
                return;
              }
              for (std::size_t j = 0; j < expected.size(); ++j) {
                if (!(got.value().entries[j] == expected[j])) {
                  failures[t] = "TopK order mismatch at iteration " +
                                std::to_string(i);
                  return;
                }
              }
            }
          }
        });
      }
      for (std::thread& caller : callers) caller.join();
      for (std::size_t t = 0; t < num_callers; ++t) {
        EXPECT_EQ(failures[t], "")
            << "caller " << t << " at " << pool_threads
            << " pool threads, batching " << (batching ? "on" : "off");
      }
    }
  }
}

TEST_F(ScoringServiceTest, BatchingOnAndOffAreBitIdentical) {
  const std::size_t n = 24;
  const ModelArtifact artifact = MakeArtifact(n, 0.0);
  ModelRegistry registry_on, registry_off;
  ASSERT_TRUE(registry_on.Swap(ModelArtifact(artifact)).ok());
  ASSERT_TRUE(registry_off.Swap(ModelArtifact(artifact)).ok());
  BatchScorerOptions on, off;
  on.enabled = true;
  // Tiny batch bound + long wait forces real coalescing boundaries.
  on.max_batch_pairs = 8;
  off.enabled = false;
  ScoringService batched(&registry_on, on);
  ScoringService direct(&registry_off, off);

  Rng rng(99);
  for (std::size_t i = 0; i < 30; ++i) {
    const auto pairs = DeterministicPairs(rng, n, 1 + rng.NextBounded(20));
    auto a = batched.ScorePairs(pairs);
    auto b = direct.ScorePairs(pairs);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a.value().scores, b.value().scores) << "request " << i;
    const std::size_t u = rng.NextBounded(n);
    auto ta = batched.TopK(u, 5, false);
    auto tb = direct.TopK(u, 5, false);
    ASSERT_TRUE(ta.ok() && tb.ok());
    ASSERT_EQ(ta.value().entries.size(), tb.value().entries.size());
    for (std::size_t j = 0; j < ta.value().entries.size(); ++j) {
      EXPECT_TRUE(ta.value().entries[j] == tb.value().entries[j]);
    }
  }
}

// Hot-swap under load: responses must never mix two artifact versions.
// Version 1, 3, 5, ... serve offset 0; versions 2, 4, ... offset 1000.
TEST_F(ScoringServiceTest, HotSwapUnderLoadNeverServesATornModel) {
  const std::size_t n = 32;
  const ModelArtifact artifact_a = MakeArtifact(n, 0.0);
  const ModelArtifact artifact_b = MakeArtifact(n, 1000.0);

  for (const std::size_t pool_threads : {1u, 4u, 7u}) {
    ThreadPool::Global().Resize(pool_threads);
    ModelRegistry registry;
    ASSERT_TRUE(registry.Swap(ModelArtifact(artifact_a)).ok());
    ScoringService service(&registry);

    std::atomic<bool> stop{false};
    std::thread swapper([&] {
      // Alternate B, A, B, ... so even versions carry offset 1000.
      for (std::size_t i = 0; !stop.load(std::memory_order_relaxed); ++i) {
        const ModelArtifact& next = (i % 2 == 0) ? artifact_b : artifact_a;
        ASSERT_TRUE(registry.Swap(ModelArtifact(next)).ok());
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });

    const std::size_t num_callers = 4;
    std::vector<std::string> failures(num_callers);
    std::vector<std::thread> callers;
    for (std::size_t t = 0; t < num_callers; ++t) {
      callers.emplace_back([&, t] {
        Rng rng(500 + t);
        for (std::size_t i = 0; i < 150; ++i) {
          const auto pairs = DeterministicPairs(rng, n,
                                                1 + rng.NextBounded(48));
          auto got = service.ScorePairs(pairs);
          if (!got.ok()) {
            failures[t] = got.status().ToString();
            return;
          }
          // The version the response claims fixes the offset every
          // score must carry; any other value is a torn read.
          const double offset =
              got.value().version % 2 == 1 ? 0.0 : 1000.0;
          for (std::size_t j = 0; j < pairs.size(); ++j) {
            const double expected =
                ScoreValue(pairs[j].u, pairs[j].v, offset);
            if (got.value().scores[j] != expected) {
              failures[t] = "torn response: version " +
                            std::to_string(got.value().version) +
                            " element " + std::to_string(j);
              return;
            }
          }
        }
      });
    }
    for (std::thread& caller : callers) caller.join();
    stop.store(true, std::memory_order_relaxed);
    swapper.join();
    for (std::size_t t = 0; t < num_callers; ++t) {
      EXPECT_EQ(failures[t], "")
          << "caller " << t << " at " << pool_threads << " pool threads";
    }
    EXPECT_EQ(registry.swap_count(), registry.current_version());
    EXPECT_EQ(registry.recovery().swap_failures, 0);
  }
}

TEST_F(ScoringServiceTest, OldVersionKeepsServingWhileItDrains) {
  const std::size_t n = 10;
  ModelRegistry registry;
  ASSERT_TRUE(registry.Swap(MakeArtifact(n, 0.0)).ok());

  // An in-flight request holds version 1 across the swap.
  const std::shared_ptr<const ServableModel> held = registry.Acquire();
  ASSERT_TRUE(registry.Swap(MakeArtifact(n, 1000.0)).ok());

  EXPECT_EQ(held->version, 1u);
  EXPECT_EQ(held->session.Score(2, 3).value(), ScoreValue(2, 3, 0.0));
  EXPECT_EQ(registry.current_version(), 2u);
  EXPECT_EQ(registry.Acquire()->session.Score(2, 3).value(),
            ScoreValue(2, 3, 1000.0));
  // The drained version dies with its last holder; the registry holds
  // the only other reference to version 2.
  EXPECT_EQ(held.use_count(), 1);
}

TEST_F(ScoringServiceTest, SwapChecksumMatchesSerializedArtifact) {
  const ModelArtifact artifact = MakeArtifact(8, 0.0);
  const std::string bytes = SerializeModelArtifact(artifact);
  ModelRegistry registry;
  ASSERT_TRUE(registry.Swap(ModelArtifact(artifact)).ok());
  EXPECT_EQ(registry.Acquire()->checksum,
            Crc32(bytes.data(), bytes.size()));
}

TEST_F(ScoringServiceTest, SwapFaultMidSwapLeavesPreviousModelServing) {
  const std::size_t n = 12;
  ModelRegistry registry;
  ASSERT_TRUE(registry.Swap(MakeArtifact(n, 0.0)).ok());
  ScoringService service(&registry);

  FaultSpec spec;
  spec.kind = FaultKind::kFailIo;
  FaultInjector::Instance().Arm("serve.swap", spec);
  const Status failed = registry.Swap(MakeArtifact(n, 1000.0));
  EXPECT_EQ(failed.code(), StatusCode::kIoError);

  // The previous model still serves, version unchanged, failure counted.
  EXPECT_EQ(registry.current_version(), 1u);
  auto score = service.Score(1, 2);
  ASSERT_TRUE(score.ok());
  EXPECT_EQ(score.value(), ScoreValue(1, 2, 0.0));
  EXPECT_EQ(service.recovery().swap_failures, 1);
  EXPECT_GE(service.recovery().Total(), 1);

  // Once the fault window passes, the swap goes through.
  FaultInjector::Instance().Disarm("serve.swap");
  ASSERT_TRUE(registry.Swap(MakeArtifact(n, 1000.0)).ok());
  EXPECT_EQ(registry.current_version(), 2u);
  EXPECT_EQ(service.Score(1, 2).value(), ScoreValue(1, 2, 1000.0));
}

TEST_F(ScoringServiceTest, BatchFaultFailsOneDispatchAndIsCounted) {
  const std::size_t n = 12;
  ModelRegistry registry;
  ASSERT_TRUE(registry.Swap(MakeArtifact(n, 0.0)).ok());
  ScoringService service(&registry);

  FaultSpec spec;
  spec.kind = FaultKind::kFailNumerical;
  FaultInjector::Instance().Arm("serve.batch", spec);
  EXPECT_EQ(service.ScorePairs({{0, 1}}).status().code(),
            StatusCode::kNumericalError);
  EXPECT_EQ(service.recovery().batch_failures, 1);
  // Only that dispatch failed; the next one serves normally.
  EXPECT_TRUE(service.ScorePairs({{0, 1}}).ok());
  EXPECT_EQ(service.recovery().batch_failures, 1);
}

TEST_F(ScoringServiceTest, CoalescesConcurrentRequestsIntoFewerBatches) {
  const std::size_t n = 16;
  ModelRegistry registry;
  ASSERT_TRUE(registry.Swap(MakeArtifact(n, 0.0)).ok());
  BatchScorerOptions batch;
  batch.max_wait = std::chrono::milliseconds(20);
  ScoringService service(&registry, batch);

  const std::size_t num_callers = 8;
  const std::size_t requests_each = 25;
  std::vector<std::thread> callers;
  for (std::size_t t = 0; t < num_callers; ++t) {
    callers.emplace_back([&, t] {
      Rng rng(t);
      for (std::size_t i = 0; i < requests_each; ++i) {
        auto got = service.ScorePairs(DeterministicPairs(rng, n, 4));
        ASSERT_TRUE(got.ok());
      }
    });
  }
  for (std::thread& caller : callers) caller.join();
  const std::size_t total = num_callers * requests_each;
  EXPECT_LE(service.batcher().batches_dispatched(), total);
  // All requests answered correctly even when coalesced.
  EXPECT_EQ(service.recovery().batch_failures, 0);
}

// The load generator doubles as an end-to-end smoke of the whole layer.
TEST_F(ScoringServiceTest, LoadGeneratorRunsBothModes) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.Swap(MakeArtifact(24, 0.0)).ok());
  ScoringService service(&registry);

  LoadGeneratorOptions options;
  options.duration_seconds = 0.1;
  options.concurrency = 2;
  options.pairs_per_request = 8;
  options.swap_every_seconds = 0.02;
  auto closed = RunLoadGenerator(registry, service, options);
  ASSERT_TRUE(closed.ok()) << closed.status().ToString();
  EXPECT_GT(closed.value().requests, 0u);
  EXPECT_EQ(closed.value().errors, 0u);
  EXPECT_GT(closed.value().throughput_rps, 0.0);
  EXPECT_EQ(closed.value().final_version, 1 + closed.value().swaps);
  EXPECT_NE(closed.value().ToJson().find("\"throughput_rps\""),
            std::string::npos);

  options.mode = LoadGeneratorOptions::Mode::kOpen;
  options.open_rate_rps = 500.0;
  options.swap_every_seconds = 0.0;
  auto open = RunLoadGenerator(registry, service, options);
  ASSERT_TRUE(open.ok()) << open.status().ToString();
  EXPECT_GT(open.value().requests, 0u);
  EXPECT_EQ(open.value().errors, 0u);
}

// ---------------------------------------------------------------------
// Overload suite: deadlines, admission control, degraded tiers, and the
// batch-dispatch circuit breaker.
// ---------------------------------------------------------------------

RequestOptions ExpiredDeadline() {
  RequestOptions request;
  request.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  return request;
}

TEST_F(ScoringServiceTest, ExpiredDeadlineIsShedBeforeDispatch) {
  const std::size_t n = 12;
  for (const bool batching : {true, false}) {
    ModelRegistry registry;
    ASSERT_TRUE(registry.Swap(MakeArtifact(n, 0.0)).ok());
    BatchScorerOptions batch;
    batch.enabled = batching;
    ScoringService service(&registry, batch);

    EXPECT_EQ(service.ScorePairs({{0, 1}}, ExpiredDeadline()).status().code(),
              StatusCode::kDeadlineExceeded);
    EXPECT_EQ(service.TopK(0, 3, false, ExpiredDeadline()).status().code(),
              StatusCode::kDeadlineExceeded);
    EXPECT_EQ(service.recovery().deadline_exceeded, 2);
    // A request with headroom still serves at the full tier.
    auto ok = service.ScorePairs(
        {{0, 1}}, RequestOptions::WithTimeout(std::chrono::seconds(5)));
    ASSERT_TRUE(ok.ok());
    EXPECT_EQ(ok.value().tier, ServeTier::kFull);
    EXPECT_EQ(service.recovery().deadline_exceeded, 2);
  }
}

// Fills the admission queue with two parked requests (long coalesce
// window, finite deadlines so they clean themselves up), then checks
// what a third arrival does under each shed policy.
TEST_F(ScoringServiceTest, FullAdmissionQueueShedsPerPolicy) {
  const std::size_t n = 12;
  for (const ShedPolicy policy :
       {ShedPolicy::kRejectNewest, ShedPolicy::kRejectOldest}) {
    ModelRegistry registry;
    ASSERT_TRUE(registry.Swap(MakeArtifact(n, 0.0)).ok());
    BatchScorerOptions batch;
    batch.queue_cap = 2;
    batch.shed_policy = policy;
    // Nothing dispatches on its own inside the test window: the queue
    // only drains via deadlines and shedding.
    batch.max_wait = std::chrono::seconds(10);
    batch.max_batch_pairs = 1u << 20;
    batch.max_batch_requests = 1u << 20;
    ScoringService service(&registry, batch);

    const auto parked_deadline =
        RequestOptions::WithTimeout(std::chrono::seconds(1));
    Status parked[2];
    std::vector<std::thread> owners;
    for (std::size_t t = 0; t < 2; ++t) {
      owners.emplace_back([&, t] {
        parked[t] = service.ScorePairs({{0, 1}}, parked_deadline).status();
      });
    }
    while (service.batcher().queue_depth() < 2) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }

    // Third arrival against the full queue (its own deadline keeps the
    // reject-oldest variant, which enqueues it, from waiting 10s).
    const Status third =
        service
            .ScorePairs({{0, 1}},
                        RequestOptions::WithTimeout(
                            std::chrono::milliseconds(400)))
            .status();
    for (std::thread& owner : owners) owner.join();

    if (policy == ShedPolicy::kRejectNewest) {
      // The arrival is rejected; both parked requests expire in place.
      EXPECT_EQ(third.code(), StatusCode::kResourceExhausted);
      EXPECT_EQ(parked[0].code(), StatusCode::kDeadlineExceeded);
      EXPECT_EQ(parked[1].code(), StatusCode::kDeadlineExceeded);
    } else {
      // The oldest parked request is evicted to make room; the arrival
      // and the survivor then expire in place.
      EXPECT_EQ(third.code(), StatusCode::kDeadlineExceeded);
      const bool first_evicted =
          parked[0].code() == StatusCode::kResourceExhausted;
      const bool second_evicted =
          parked[1].code() == StatusCode::kResourceExhausted;
      EXPECT_TRUE(first_evicted != second_evicted)
          << parked[0].ToString() << " / " << parked[1].ToString();
    }
    // Exactly one shed and two deadline expiries, however they landed.
    EXPECT_EQ(service.recovery().shed, 1);
    EXPECT_EQ(service.recovery().deadline_exceeded, 2);
  }
}

// The acceptance scenario: six caller threads against a tiny admission
// queue with tight deadlines. Every response must be OK (bit-identical
// to the oracle), shed, or deadline-exceeded — with the registry
// counters accounting exactly for every non-OK response — and no caller
// may block meaningfully past its deadline.
TEST_F(ScoringServiceTest, OverloadAccountsForEveryResponse) {
  const std::size_t n = 32;
  const ModelArtifact artifact = MakeArtifact(n, 0.0);
  const Matrix& s = artifact.s;
  ModelRegistry registry;
  ASSERT_TRUE(registry.Swap(ModelArtifact(artifact)).ok());
  BatchScorerOptions batch;
  batch.queue_cap = 4;
  batch.max_batch_pairs = 64;
  batch.max_wait = std::chrono::microseconds(200);
  ScoringService service(&registry, batch);

  const std::size_t num_callers = 6;
  const std::size_t requests_each = 150;
  const auto deadline_budget = std::chrono::milliseconds(2);
  // Once claimed into a batch a request is answered by that batch, so a
  // caller can legitimately outlive its deadline by one dispatch; the
  // slack only has to catch unbounded blocking, not scheduling noise.
  const auto slack = std::chrono::milliseconds(250);

  struct CallerTally {
    std::size_t ok = 0;
    std::size_t deadline = 0;
    std::size_t shed = 0;
    std::string failure;
  };
  std::vector<CallerTally> tallies(num_callers);
  std::vector<std::thread> callers;
  for (std::size_t t = 0; t < num_callers; ++t) {
    callers.emplace_back([&, t] {
      CallerTally& tally = tallies[t];
      Rng rng(9000 + t);
      for (std::size_t i = 0; i < requests_each; ++i) {
        const auto start = std::chrono::steady_clock::now();
        RequestOptions request;
        request.deadline = start + deadline_budget;
        Status status;
        if (i % 4 == 3) {
          const std::size_t u = rng.NextBounded(n);
          const std::size_t k = 1 + rng.NextBounded(8);
          auto got = service.TopK(u, k, false, request);
          status = got.status();
          if (got.ok()) {
            if (got.value().tier != ServeTier::kFull) {
              tally.failure = "unexpected tier on request " +
                              std::to_string(i);
              return;
            }
            const auto expected = ReferenceTopK(s, u, k);
            if (got.value().entries.size() != expected.size()) {
              tally.failure = "TopK size mismatch on request " +
                              std::to_string(i);
              return;
            }
            for (std::size_t j = 0; j < expected.size(); ++j) {
              if (!(got.value().entries[j] == expected[j])) {
                tally.failure = "TopK mismatch on request " +
                                std::to_string(i);
                return;
              }
            }
          }
        } else {
          const auto pairs =
              DeterministicPairs(rng, n, 1 + rng.NextBounded(24));
          auto got = service.ScorePairs(pairs, request);
          status = got.status();
          if (got.ok()) {
            if (got.value().tier != ServeTier::kFull) {
              tally.failure = "unexpected tier on request " +
                              std::to_string(i);
              return;
            }
            for (std::size_t j = 0; j < pairs.size(); ++j) {
              if (got.value().scores[j] != s(pairs[j].u, pairs[j].v)) {
                tally.failure = "score mismatch on request " +
                                std::to_string(i);
                return;
              }
            }
          }
        }
        const auto elapsed = std::chrono::steady_clock::now() - start;
        if (elapsed > deadline_budget + slack) {
          tally.failure = "request " + std::to_string(i) +
                          " blocked past its deadline";
          return;
        }
        if (status.ok()) {
          ++tally.ok;
        } else if (status.code() == StatusCode::kDeadlineExceeded) {
          ++tally.deadline;
        } else if (status.code() == StatusCode::kResourceExhausted) {
          ++tally.shed;
        } else {
          tally.failure = "unexpected error: " + status.ToString();
          return;
        }
      }
    });
  }
  for (std::thread& caller : callers) caller.join();

  std::size_t ok = 0, deadline = 0, shed = 0;
  for (std::size_t t = 0; t < num_callers; ++t) {
    ASSERT_EQ(tallies[t].failure, "") << "caller " << t;
    ok += tallies[t].ok;
    deadline += tallies[t].deadline;
    shed += tallies[t].shed;
  }
  EXPECT_EQ(ok + deadline + shed, num_callers * requests_each);
  // Exact accounting: one counter increment per non-OK response.
  const RecoveryStats recovery = service.recovery();
  EXPECT_EQ(static_cast<std::size_t>(recovery.deadline_exceeded), deadline);
  EXPECT_EQ(static_cast<std::size_t>(recovery.shed), shed);
  EXPECT_EQ(recovery.batch_failures, 0);
  EXPECT_EQ(service.batcher().breaker().trips(), 0);
}

// Deterministic breaker lifecycle, driven by a fake clock and a
// bounded serve.batch fault: trip after three consecutive dispatch
// failures, serve degraded while open, fail the first half-open probe
// (backoff doubles), recover on the second.
TEST_F(ScoringServiceTest, BreakerTripsServesDegradedAndRecovers) {
  const std::size_t n = 12;
  const ModelArtifact artifact = MakeArtifact(n, 0.0);
  ModelRegistry registry;
  ASSERT_TRUE(registry.Swap(ModelArtifact(artifact)).ok());

  auto fake_now = std::chrono::steady_clock::time_point{};
  BatchScorerOptions batch;
  batch.enabled = false;  // Batch-of-one keeps the cycle single-threaded.
  batch.breaker.failure_threshold = 3;
  batch.breaker.base_backoff = std::chrono::milliseconds(100);
  batch.breaker.clock = [&fake_now] { return fake_now; };
  ScoringService service(&registry, batch);

  FaultSpec spec;
  spec.kind = FaultKind::kFailNumerical;
  spec.max_triggers = 4;  // Three to trip + one failed probe.
  FaultInjector::Instance().Arm("serve.batch", spec);

  // Three consecutive dispatch failures trip the breaker.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(service.ScorePairs({{0, 1}}).status().code(),
              StatusCode::kNumericalError);
  }
  EXPECT_EQ(service.batcher().breaker().state(),
            CircuitBreaker::State::kOpen);
  EXPECT_EQ(service.recovery().breaker_trips, 1);
  EXPECT_EQ(service.recovery().batch_failures, 3);

  // While open, requests are answered from the cheap tier (no known
  // links registered, so degraded pair scores are all zero) instead of
  // hitting the quarantined dispatch path.
  auto degraded = service.ScorePairs({{0, 1}, {2, 3}});
  ASSERT_TRUE(degraded.ok());
  EXPECT_EQ(degraded.value().tier, ServeTier::kDegraded);
  EXPECT_EQ(degraded.value().scores, (std::vector<double>{0.0, 0.0}));
  EXPECT_EQ(service.recovery().degraded_responses, 1);

  // Backoff elapses; the half-open probe hits the last armed fault and
  // re-opens the breaker with a doubled backoff.
  fake_now += std::chrono::milliseconds(150);
  EXPECT_EQ(service.ScorePairs({{0, 1}}).status().code(),
            StatusCode::kNumericalError);
  EXPECT_EQ(service.batcher().breaker().state(),
            CircuitBreaker::State::kOpen);
  EXPECT_EQ(service.batcher().breaker().current_backoff(),
            std::chrono::milliseconds(200));
  EXPECT_EQ(service.recovery().breaker_trips, 2);

  // Still open inside the doubled backoff: degraded again.
  auto still_open = service.ScorePairs({{4, 5}});
  ASSERT_TRUE(still_open.ok());
  EXPECT_EQ(still_open.value().tier, ServeTier::kDegraded);

  // The fault budget is exhausted, so the next probe succeeds and the
  // breaker closes; responses return to the full tier, bit-identical.
  fake_now += std::chrono::milliseconds(250);
  auto recovered = service.ScorePairs({{1, 2}});
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered.value().tier, ServeTier::kFull);
  EXPECT_EQ(recovered.value().scores[0], ScoreValue(1, 2, 0.0));
  EXPECT_EQ(service.batcher().breaker().state(),
            CircuitBreaker::State::kClosed);
  EXPECT_EQ(service.recovery().breaker_trips, 2);
  EXPECT_EQ(service.recovery().batch_failures, 4);
  EXPECT_EQ(service.recovery().degraded_responses, 2);
}

// While the breaker is open, a TopK row that is already resident in the
// per-version cache is served verbatim (kCached); a cold row falls back
// to the common-neighbor kernel (kDegraded).
TEST_F(ScoringServiceTest, OpenBreakerServesCachedRowsThenDegrades) {
  const std::size_t n = 16;
  const ModelArtifact artifact = MakeArtifact(n, 0.0);
  ModelRegistry registry;
  ASSERT_TRUE(registry.Swap(ModelArtifact(artifact)).ok());

  auto fake_now = std::chrono::steady_clock::time_point{};
  BatchScorerOptions batch;
  batch.enabled = false;
  batch.breaker.failure_threshold = 1;
  batch.breaker.clock = [&fake_now] { return fake_now; };
  ScoringService service(&registry, batch);

  // Warm the row cache for u = 3 at the full tier.
  auto warm = service.TopK(3, 5, false);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm.value().tier, ServeTier::kFull);

  // One injected failure trips the threshold-1 breaker.
  FaultSpec spec;
  spec.kind = FaultKind::kFailNumerical;
  spec.max_triggers = 1;
  FaultInjector::Instance().Arm("serve.batch", spec);
  EXPECT_FALSE(service.ScorePairs({{0, 1}}).ok());
  EXPECT_EQ(service.batcher().breaker().state(),
            CircuitBreaker::State::kOpen);

  // Resident row: answered from the cache, entries identical to the
  // full-tier response.
  auto cached = service.TopK(3, 5, false);
  ASSERT_TRUE(cached.ok());
  EXPECT_EQ(cached.value().tier, ServeTier::kCached);
  ASSERT_EQ(cached.value().entries.size(), warm.value().entries.size());
  for (std::size_t j = 0; j < cached.value().entries.size(); ++j) {
    EXPECT_TRUE(cached.value().entries[j] == warm.value().entries[j]);
  }

  // Cold row: common-neighbor fallback (no known links → no entries).
  auto cold = service.TopK(9, 5, false);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold.value().tier, ServeTier::kDegraded);
  EXPECT_EQ(service.recovery().degraded_responses, 2);
}

// degrade_topk_under: a TopK whose remaining deadline budget is below
// the configured floor skips the full row sort and answers cheap.
TEST_F(ScoringServiceTest, TopKDegradesUnderDeadlinePressure) {
  const std::size_t n = 16;
  ModelRegistry registry;
  ASSERT_TRUE(registry.Swap(MakeArtifact(n, 0.0)).ok());
  BatchScorerOptions batch;
  batch.enabled = false;
  batch.degrade_topk_under = std::chrono::seconds(10);
  ScoringService service(&registry, batch);

  // 1s of budget is far below the 10s floor → cheap tier.
  auto pressured = service.TopK(
      2, 5, false, RequestOptions::WithTimeout(std::chrono::seconds(1)));
  ASSERT_TRUE(pressured.ok());
  EXPECT_EQ(pressured.value().tier, ServeTier::kDegraded);
  EXPECT_EQ(service.recovery().degraded_responses, 1);

  // No deadline → never degraded, whatever the floor.
  auto relaxed = service.TopK(2, 5, false);
  ASSERT_TRUE(relaxed.ok());
  EXPECT_EQ(relaxed.value().tier, ServeTier::kFull);
}

}  // namespace
}  // namespace slampred
