// The factored low-rank solver backend: Algorithm 1 (CCCP over the
// generalized forward–backward inner loop) with the iterate held as
// S = U·Vᵀ (linalg/factored_matrix.h) instead of a dense n×n matrix.
//
// The key identity: with the squared-Frobenius loss and the constant
// CCCP gradient G, the forward (gradient) step is affine in S,
//
//   S_half = S − θ(2(S − A) − G) = (1−2θ)·S + θ·Z,    Z = 2A + G,
//
// so S_half is "low-rank plus sparse" and can be applied to a block of
// vectors in O((nnz + n·r)·k) without ever materialising it. The
// nuclear prox then runs on a randomized range sketch of S_half:
// Q = orth(S_half·Ω), B = S_halfᵀ·Q, S_half ≈ Q·Bᵀ, and the singular
// value shrinkage happens on the k×k core of a thin QR of B — O(n·k²)
// per step instead of the dense path's O(n³). The sketch basis is
// reused as the next step's Ω (and across CCCP outer rounds), so warm
// steps need fewer power iterations.
//
// Documented deviations from the dense oracle (see DESIGN.md §13):
//   * the ℓ₁ prox is replaced by its linearisation over the
//     non-negative orthant, a rank-1 −θγ·1·1ᵀ term folded into the
//     forward step (an entry-wise prox would destroy the low rank);
//   * the [0,1] box projection is skipped (same reason). Both maps are
//     monotone, so rankings are unaffected;
//   * convergence and traces use Frobenius norms (O(n·r²) via Gram
//     matrices) where the dense path uses entry-wise ℓ₁ norms.
// With γ = 0, the box projection off and a full-rank sketch the
// factored path computes exactly what the dense path computes, up to
// floating-point rounding — that regime is the equivalence gate.

#ifndef SLAMPRED_OPTIM_FACTORED_SOLVER_H_
#define SLAMPRED_OPTIM_FACTORED_SOLVER_H_

#include <cstdint>
#include <vector>

#include "linalg/csr_matrix.h"
#include "linalg/factored_matrix.h"
#include "linalg/sparse_tensor3.h"
#include "optim/cccp.h"
#include "optim/forward_backward.h"
#include "optim/guardrails.h"
#include "optim/objective.h"
#include "optim/solver_backend.h"
#include "util/status.h"

namespace slampred {

/// Problem data of a factored solve. Identical to Objective except the
/// constant CCCP gradient G stays in CSR — densifying it would cost the
/// n² bytes the factored backend exists to avoid.
struct FactoredObjective {
  CsrMatrix a;       ///< Observed (training) adjacency Aᵗ.
  CsrMatrix grad_v;  ///< Constant CCCP gradient G of the intimacy terms.
  double gamma = 0.0;
  double tau = 0.0;
  LossKind loss = LossKind::kSquaredFrobenius;
};

/// CSR twin of BuildIntimacyGradient: G = Σ_k α_k Σ_c tensors[k](c,:,:).
/// Stored entries match the dense builder bit for bit (slices accumulate
/// in the same order, then scale).
CsrMatrix BuildIntimacyGradientCsr(const std::vector<SparseTensor3>& tensors,
                                   const std::vector<double>& weights,
                                   std::size_t n);

/// Full objective value u(S) − v(S) evaluated against the factored S
/// without densifying: the loss via ‖S‖²_F − 2⟨S,A⟩ + ‖A‖²_F (Gram +
/// stored-entry sweeps), the intimacy term over stored entries, the
/// nuclear term via the factored spectrum. The γ‖S‖₁ term costs
/// O(n²·r) — this function is for traces and tests, never the solve
/// loop. Returns NaN when the spectrum is unobtainable. Squared-hinge
/// objectives are not supported by the factored backend.
double FactoredObjectiveValue(const FactoredObjective& objective,
                              const FactoredMatrix& s,
                              const std::vector<SparseTensor3>& tensors,
                              const std::vector<double>& weights);

/// Nuclear-norm prox of the sketched half step S_half ≈ q·bᵀ (q with
/// orthonormal columns): thin QR on b, SVD of the small core, singular
/// values shrunk by `threshold` and the surviving ranks returned as a
/// FactoredMatrix — O(n·k²) for a k-column sketch. Routed through the
/// same "svd.prox" fault site as the dense prox backends plus its own
/// "prox.factored" site, with the guardrail fallback chain retrying the
/// core SVD on a doubled sweep budget (counted in
/// RecoveryStats::svd_fallbacks).
Result<FactoredMatrix> GuardedFactoredProxNuclear(
    const Matrix& q, const Matrix& b, double threshold,
    const GuardrailOptions& guardrails, RecoveryStats* stats);

/// Best rank-(rank+oversampling) approximation of the CSR matrix `a`
/// via the randomized range finder — the factored solve's S⁰ ≈ Aᵗ
/// (line 1 of Algorithm 1). Deterministic given the options' seed.
Result<FactoredMatrix> FactoredApproximation(const CsrMatrix& a,
                                             const FactoredSolverOptions& options);

/// The factored inner loop: mirrors GeneralizedForwardBackward's
/// guardrail structure (NaN rollback, prox rollback, divergence
/// backoff, recovery budget) with Frobenius-norm convergence tests.
/// `sketch_seed` decorrelates the gaussian draws across CCCP rounds;
/// `warm_basis` (optional in/out) carries the range-finder subspace
/// across calls. IterationTrace fields hold Frobenius norms.
Result<FactoredMatrix> GeneralizedForwardBackwardFactored(
    const FactoredObjective& objective, const FactoredMatrix& s0,
    const ForwardBackwardOptions& options,
    const FactoredSolverOptions& factored, std::uint64_t sketch_seed,
    Matrix* warm_basis, IterationTrace* trace, RecoveryStats* recovery);

/// Algorithm 1 on the factored iterate: S⁰ from FactoredApproximation,
/// then CCCP outer rounds over the factored inner loop with the
/// range-finder basis warm-started from round to round (the subspace
/// reuse path). Keeps the dense outer loop's checkpoint-resume
/// semantics with an internal factored checkpoint; CccpTrace::checkpoint
/// stays invalid (it holds a dense iterate) and the trace's *_l1 series
/// hold Frobenius values in this mode. Fails with kInvalidArgument for
/// the squared-hinge loss (its gradient is entry-wise nonlinear and has
/// no low-rank half step).
Result<FactoredMatrix> SolveCccpFactored(const FactoredObjective& objective,
                                         const CccpOptions& options,
                                         const FactoredSolverOptions& factored,
                                         CccpTrace* trace = nullptr);

}  // namespace slampred

#endif  // SLAMPRED_OPTIM_FACTORED_SOLVER_H_
