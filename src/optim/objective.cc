#include "optim/objective.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "linalg/matrix_ops.h"
#include "linalg/svd.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace slampred {

Matrix BuildIntimacyGradient(const std::vector<Tensor3>& tensors,
                             const std::vector<double>& weights,
                             std::size_t n) {
  SLAMPRED_CHECK(tensors.size() == weights.size())
      << "one weight per tensor required";
  Matrix g(n, n);
  for (std::size_t k = 0; k < tensors.size(); ++k) {
    if (weights[k] == 0.0 || tensors[k].empty()) continue;
    SLAMPRED_CHECK(tensors[k].dim1() == n && tensors[k].dim2() == n)
        << "tensor " << k << " shape mismatch";
    g += tensors[k].SumSlices() * weights[k];
  }
  return g;
}

namespace {

// Loss value of the smooth empirical term.
double LossValue(const Objective& objective, const Matrix& s) {
  const double* sd = s.data().data();
  const double* ad = objective.a.data().data();
  switch (objective.loss) {
    case LossKind::kSquaredFrobenius:
      // ‖S − A‖²_F as a chunked sum of squares (partials combined in
      // chunk order → deterministic for any thread count).
      return ParallelReduceSum(0, s.data().size(), GrainForWork(1),
                               [&](std::size_t i0, std::size_t i1) {
                                 double sum = 0.0;
                                 for (std::size_t i = i0; i < i1; ++i) {
                                   const double d = sd[i] - ad[i];
                                   sum += d * d;
                                 }
                                 return sum;
                               });
    case LossKind::kSquaredHinge:
      return ParallelReduceSum(
          0, s.data().size(), GrainForWork(1),
          [&](std::size_t i0, std::size_t i1) {
            double sum = 0.0;
            for (std::size_t i = i0; i < i1; ++i) {
              const double y = 2.0 * ad[i] - 1.0;
              const double slack = std::max(0.0, 1.0 - y * sd[i]);
              sum += slack * slack;
            }
            return sum;
          });
  }
  return 0.0;
}

// Gradient of the loss alone.
Matrix LossGradient(const Objective& objective, const Matrix& s) {
  switch (objective.loss) {
    case LossKind::kSquaredFrobenius:
      return (s - objective.a) * 2.0;
    case LossKind::kSquaredHinge: {
      Matrix g(s.rows(), s.cols());
      const double* sd = s.data().data();
      const double* ad = objective.a.data().data();
      double* gd = g.data().data();
      ParallelFor(0, s.data().size(), GrainForWork(1),
                  [&](std::size_t i0, std::size_t i1) {
                    for (std::size_t i = i0; i < i1; ++i) {
                      const double y = 2.0 * ad[i] - 1.0;
                      const double slack = std::max(0.0, 1.0 - y * sd[i]);
                      gd[i] = -2.0 * y * slack;
                    }
                  });
      return g;
    }
  }
  return Matrix(s.rows(), s.cols());
}

}  // namespace

double SmoothValue(const Objective& objective, const Matrix& s) {
  const double* sd = s.data().data();
  const double* vd = objective.grad_v.data().data();
  const double inner =
      ParallelReduceSum(0, s.data().size(), GrainForWork(1),
                        [&](std::size_t i0, std::size_t i1) {
                          double sum = 0.0;
                          for (std::size_t i = i0; i < i1; ++i) {
                            sum += sd[i] * vd[i];
                          }
                          return sum;
                        });
  return LossValue(objective, s) - inner;
}

Matrix SmoothGradient(const Objective& objective, const Matrix& s) {
  Matrix g = LossGradient(objective, s);
  g -= objective.grad_v;
  return g;
}

double FullObjectiveValue(const Objective& objective, const Matrix& s,
                          const std::vector<Tensor3>& tensors,
                          const std::vector<double>& weights) {
  SLAMPRED_CHECK(tensors.size() == weights.size());
  double value = LossValue(objective, s);

  const std::size_t per_slice = s.rows() * s.cols();
  const double* sd = s.data().data();
  for (std::size_t k = 0; k < tensors.size(); ++k) {
    if (weights[k] == 0.0 || tensors[k].empty()) continue;
    // Flat sweep over (slice, i, j); the matching S entry is the flat
    // index modulo the slice size. Chunk partials combine in order.
    const double* td = tensors[k].data().data();
    const double intimacy = ParallelReduceSum(
        0, tensors[k].dim0() * per_slice, GrainForWork(1),
        [&](std::size_t f0, std::size_t f1) {
          double sum = 0.0;
          for (std::size_t f = f0; f < f1; ++f) {
            sum += std::fabs(sd[f % per_slice] * td[f]);
          }
          return sum;
        });
    value -= weights[k] * intimacy;
  }

  value += objective.gamma * s.NormL1();
  auto nuclear = NuclearNorm(s);
  if (!nuclear.ok()) {
    // A trace/diagnostic evaluation must not abort the solve. Retry the
    // SVD with a doubled sweep budget; if even that fails, report NaN so
    // callers can see the evaluation was unusable.
    SvdOptions retry;
    retry.max_sweeps *= 2;
    auto svd = ComputeSvd(s, retry);
    if (!svd.ok()) return std::numeric_limits<double>::quiet_NaN();
    double sum = 0.0;
    for (std::size_t r = 0; r < svd.value().singular_values.size(); ++r) {
      sum += svd.value().singular_values[r];
    }
    return value + objective.tau * sum;
  }
  value += objective.tau * nuclear.value();
  return value;
}

}  // namespace slampred
