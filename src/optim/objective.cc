#include "optim/objective.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "linalg/matrix_ops.h"
#include "linalg/svd.h"
#include "util/logging.h"

namespace slampred {

Matrix BuildIntimacyGradient(const std::vector<Tensor3>& tensors,
                             const std::vector<double>& weights,
                             std::size_t n) {
  SLAMPRED_CHECK(tensors.size() == weights.size())
      << "one weight per tensor required";
  Matrix g(n, n);
  for (std::size_t k = 0; k < tensors.size(); ++k) {
    if (weights[k] == 0.0 || tensors[k].empty()) continue;
    SLAMPRED_CHECK(tensors[k].dim1() == n && tensors[k].dim2() == n)
        << "tensor " << k << " shape mismatch";
    g += tensors[k].SumSlices() * weights[k];
  }
  return g;
}

namespace {

// Loss value of the smooth empirical term.
double LossValue(const Objective& objective, const Matrix& s) {
  switch (objective.loss) {
    case LossKind::kSquaredFrobenius: {
      Matrix diff = s - objective.a;
      const double frob = diff.FrobeniusNorm();
      return frob * frob;
    }
    case LossKind::kSquaredHinge: {
      double sum = 0.0;
      for (std::size_t i = 0; i < s.data().size(); ++i) {
        const double y = 2.0 * objective.a.data()[i] - 1.0;
        const double slack = std::max(0.0, 1.0 - y * s.data()[i]);
        sum += slack * slack;
      }
      return sum;
    }
  }
  return 0.0;
}

// Gradient of the loss alone.
Matrix LossGradient(const Objective& objective, const Matrix& s) {
  switch (objective.loss) {
    case LossKind::kSquaredFrobenius:
      return (s - objective.a) * 2.0;
    case LossKind::kSquaredHinge: {
      Matrix g(s.rows(), s.cols());
      for (std::size_t i = 0; i < s.data().size(); ++i) {
        const double y = 2.0 * objective.a.data()[i] - 1.0;
        const double slack = std::max(0.0, 1.0 - y * s.data()[i]);
        g.data()[i] = -2.0 * y * slack;
      }
      return g;
    }
  }
  return Matrix(s.rows(), s.cols());
}

}  // namespace

double SmoothValue(const Objective& objective, const Matrix& s) {
  double inner = 0.0;
  for (std::size_t i = 0; i < s.data().size(); ++i) {
    inner += s.data()[i] * objective.grad_v.data()[i];
  }
  return LossValue(objective, s) - inner;
}

Matrix SmoothGradient(const Objective& objective, const Matrix& s) {
  Matrix g = LossGradient(objective, s);
  g -= objective.grad_v;
  return g;
}

double FullObjectiveValue(const Objective& objective, const Matrix& s,
                          const std::vector<Tensor3>& tensors,
                          const std::vector<double>& weights) {
  SLAMPRED_CHECK(tensors.size() == weights.size());
  double value = LossValue(objective, s);

  for (std::size_t k = 0; k < tensors.size(); ++k) {
    if (weights[k] == 0.0 || tensors[k].empty()) continue;
    double intimacy = 0.0;
    for (std::size_t c = 0; c < tensors[k].dim0(); ++c) {
      for (std::size_t i = 0; i < s.rows(); ++i) {
        for (std::size_t j = 0; j < s.cols(); ++j) {
          intimacy += std::fabs(s(i, j) * tensors[k](c, i, j));
        }
      }
    }
    value -= weights[k] * intimacy;
  }

  value += objective.gamma * s.NormL1();
  auto nuclear = NuclearNorm(s);
  if (!nuclear.ok()) {
    // A trace/diagnostic evaluation must not abort the solve. Retry the
    // SVD with a doubled sweep budget; if even that fails, report NaN so
    // callers can see the evaluation was unusable.
    SvdOptions retry;
    retry.max_sweeps *= 2;
    auto svd = ComputeSvd(s, retry);
    if (!svd.ok()) return std::numeric_limits<double>::quiet_NaN();
    double sum = 0.0;
    for (std::size_t r = 0; r < svd.value().singular_values.size(); ++r) {
      sum += svd.value().singular_values[r];
    }
    return value + objective.tau * sum;
  }
  value += objective.tau * nuclear.value();
  return value;
}

}  // namespace slampred
