#include "optim/objective.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "linalg/matrix_ops.h"
#include "linalg/svd.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace slampred {

Matrix BuildIntimacyGradient(const std::vector<Tensor3>& tensors,
                             const std::vector<double>& weights,
                             std::size_t n) {
  SLAMPRED_CHECK(tensors.size() == weights.size())
      << "one weight per tensor required";
  Matrix g(n, n);
  for (std::size_t k = 0; k < tensors.size(); ++k) {
    if (weights[k] == 0.0 || tensors[k].empty()) continue;
    SLAMPRED_CHECK(tensors[k].dim1() == n && tensors[k].dim2() == n)
        << "tensor " << k << " shape mismatch";
    g += tensors[k].SumSlices() * weights[k];
  }
  return g;
}

Matrix BuildIntimacyGradient(const std::vector<SparseTensor3>& tensors,
                             const std::vector<double>& weights,
                             std::size_t n) {
  SLAMPRED_CHECK(tensors.size() == weights.size())
      << "one weight per tensor required";
  Matrix g(n, n);
  for (std::size_t k = 0; k < tensors.size(); ++k) {
    if (weights[k] == 0.0 || tensors[k].empty()) continue;
    SLAMPRED_CHECK(tensors[k].dim1() == n && tensors[k].dim2() == n)
        << "tensor " << k << " shape mismatch";
    g += tensors[k].SumSlices() * weights[k];
  }
  return g;
}

namespace {

// Calls fn(flat, a_value) for every row-major flat index in [f0, f1) of
// `a`, supplying the stored value or an exact 0.0 for absent entries.
// This lets the loss kernels keep the dense path's flat chunking (and
// thus its reduction order) while A stays CSR.
template <typename Fn>
void ForEachFlatWithA(const CsrMatrix& a, std::size_t f0, std::size_t f1,
                      Fn fn) {
  const std::size_t cols = a.cols();
  if (cols == 0) return;
  const auto& row_ptr = a.row_ptr();
  const auto& col_idx = a.col_idx();
  const auto& values = a.values();
  std::size_t f = f0;
  std::size_t i = f0 / cols;
  while (f < f1) {
    const std::size_t row_end = std::min(f1, (i + 1) * cols);
    std::size_t j = f - i * cols;
    const std::size_t* begin = col_idx.data() + row_ptr[i];
    const std::size_t* end = col_idx.data() + row_ptr[i + 1];
    std::size_t p =
        row_ptr[i] + (std::lower_bound(begin, end, j) - begin);
    for (; f < row_end; ++f, ++j) {
      double av = 0.0;
      if (p < row_ptr[i + 1] && col_idx[p] == j) {
        av = values[p];
        ++p;
      }
      fn(f, av);
    }
    ++i;
  }
}

// Calls fn(flat, value) for the stored entries of `m` whose row-major
// flat index lies in [l0, l1), in ascending flat order.
template <typename Fn>
void ForEachStoredInFlatRange(const CsrMatrix& m, std::size_t l0,
                              std::size_t l1, Fn fn) {
  const std::size_t cols = m.cols();
  if (cols == 0 || l0 >= l1) return;
  const auto& row_ptr = m.row_ptr();
  const auto& col_idx = m.col_idx();
  const auto& values = m.values();
  const std::size_t i0 = l0 / cols;
  const std::size_t i1 = std::min(m.rows(), (l1 + cols - 1) / cols);
  for (std::size_t i = i0; i < i1; ++i) {
    std::size_t p = row_ptr[i];
    const std::size_t pe = row_ptr[i + 1];
    if (i == i0) {
      const std::size_t* begin = col_idx.data() + p;
      const std::size_t* end = col_idx.data() + pe;
      p += std::lower_bound(begin, end, l0 - i * cols) - begin;
    }
    const std::size_t base = i * cols;
    for (; p < pe; ++p) {
      const std::size_t flat = base + col_idx[p];
      if (flat >= l1) return;
      fn(flat, values[p]);
    }
  }
}

// Loss value of the smooth empirical term. S is dense, so the sweep is
// still O(n²); A is read through the flat cursor.
double LossValue(const Objective& objective, const Matrix& s) {
  const double* sd = s.data().data();
  switch (objective.loss) {
    case LossKind::kSquaredFrobenius:
      // ‖S − A‖²_F as a chunked sum of squares (partials combined in
      // chunk order → deterministic for any thread count).
      return ParallelReduceSum(
          0, s.data().size(), GrainForWork(1),
          [&](std::size_t i0, std::size_t i1) {
            double sum = 0.0;
            ForEachFlatWithA(objective.a, i0, i1,
                             [&](std::size_t i, double av) {
                               const double d = sd[i] - av;
                               sum += d * d;
                             });
            return sum;
          });
    case LossKind::kSquaredHinge:
      return ParallelReduceSum(
          0, s.data().size(), GrainForWork(1),
          [&](std::size_t i0, std::size_t i1) {
            double sum = 0.0;
            ForEachFlatWithA(objective.a, i0, i1,
                             [&](std::size_t i, double av) {
                               const double y = 2.0 * av - 1.0;
                               const double slack =
                                   std::max(0.0, 1.0 - y * sd[i]);
                               sum += slack * slack;
                             });
            return sum;
          });
  }
  return 0.0;
}

// Gradient of the loss alone. Entries are computed independently, so
// only the per-entry expressions must match the dense reference.
Matrix LossGradient(const Objective& objective, const Matrix& s) {
  Matrix g(s.rows(), s.cols());
  const double* sd = s.data().data();
  double* gd = g.data().data();
  switch (objective.loss) {
    case LossKind::kSquaredFrobenius:
      ParallelFor(0, s.data().size(), GrainForWork(1),
                  [&](std::size_t i0, std::size_t i1) {
                    ForEachFlatWithA(objective.a, i0, i1,
                                     [&](std::size_t i, double av) {
                                       gd[i] = (sd[i] - av) * 2.0;
                                     });
                  });
      return g;
    case LossKind::kSquaredHinge:
      ParallelFor(0, s.data().size(), GrainForWork(1),
                  [&](std::size_t i0, std::size_t i1) {
                    ForEachFlatWithA(objective.a, i0, i1,
                                     [&](std::size_t i, double av) {
                                       const double y = 2.0 * av - 1.0;
                                       const double slack =
                                           std::max(0.0, 1.0 - y * sd[i]);
                                       gd[i] = -2.0 * y * slack;
                                     });
                  });
      return g;
  }
  return g;
}

}  // namespace

double SmoothValue(const Objective& objective, const Matrix& s) {
  const double* sd = s.data().data();
  const double* vd = objective.grad_v.data().data();
  const double inner =
      ParallelReduceSum(0, s.data().size(), GrainForWork(1),
                        [&](std::size_t i0, std::size_t i1) {
                          double sum = 0.0;
                          for (std::size_t i = i0; i < i1; ++i) {
                            sum += sd[i] * vd[i];
                          }
                          return sum;
                        });
  return LossValue(objective, s) - inner;
}

Matrix SmoothGradient(const Objective& objective, const Matrix& s) {
  Matrix g = LossGradient(objective, s);
  g -= objective.grad_v;
  return g;
}

double FullObjectiveValue(const Objective& objective, const Matrix& s,
                          const std::vector<Tensor3>& tensors,
                          const std::vector<double>& weights) {
  SLAMPRED_CHECK(tensors.size() == weights.size());
  double value = LossValue(objective, s);

  const std::size_t per_slice = s.rows() * s.cols();
  const double* sd = s.data().data();
  for (std::size_t k = 0; k < tensors.size(); ++k) {
    if (weights[k] == 0.0 || tensors[k].empty()) continue;
    // Flat sweep over (slice, i, j); the matching S entry is the flat
    // index modulo the slice size. Chunk partials combine in order.
    const double* td = tensors[k].data().data();
    const double intimacy = ParallelReduceSum(
        0, tensors[k].dim0() * per_slice, GrainForWork(1),
        [&](std::size_t f0, std::size_t f1) {
          double sum = 0.0;
          for (std::size_t f = f0; f < f1; ++f) {
            sum += std::fabs(sd[f % per_slice] * td[f]);
          }
          return sum;
        });
    value -= weights[k] * intimacy;
  }

  value += objective.gamma * s.NormL1();
  if (objective.tau == 0.0) return value;  // +0.0 * sigma is an exact no-op.
  auto nuclear = NuclearNorm(s);
  if (!nuclear.ok()) {
    // A trace/diagnostic evaluation must not abort the solve. Retry the
    // SVD with a doubled sweep budget; if even that fails, report NaN so
    // callers can see the evaluation was unusable.
    SvdOptions retry;
    retry.max_sweeps *= 2;
    auto svd = ComputeSvd(s, retry);
    if (!svd.ok()) return std::numeric_limits<double>::quiet_NaN();
    double sum = 0.0;
    for (std::size_t r = 0; r < svd.value().singular_values.size(); ++r) {
      sum += svd.value().singular_values[r];
    }
    return value + objective.tau * sum;
  }
  value += objective.tau * nuclear.value();
  return value;
}

double FullObjectiveValue(const Objective& objective, const Matrix& s,
                          const std::vector<SparseTensor3>& tensors,
                          const std::vector<double>& weights) {
  SLAMPRED_CHECK(tensors.size() == weights.size());
  double value = LossValue(objective, s);

  const std::size_t per_slice = s.rows() * s.cols();
  const double* sd = s.data().data();
  for (std::size_t k = 0; k < tensors.size(); ++k) {
    if (weights[k] == 0.0 || tensors[k].empty()) continue;
    const SparseTensor3& tensor = tensors[k];
    // Same flat chunk boundaries as the dense sweep; inside each chunk
    // only the stored entries contribute (|S·0| = +0.0 is an exact no-op
    // on the non-negative partial), walked in ascending flat order.
    const double intimacy = ParallelReduceSum(
        0, tensor.dim0() * per_slice, GrainForWork(1),
        [&](std::size_t f0, std::size_t f1) {
          double sum = 0.0;
          const std::size_t c0 = f0 / per_slice;
          const std::size_t c1 = (f1 - 1) / per_slice;
          for (std::size_t c = c0; c <= c1; ++c) {
            const std::size_t base = c * per_slice;
            const std::size_t l0 = f0 > base ? f0 - base : 0;
            const std::size_t l1 = std::min(f1 - base, per_slice);
            ForEachStoredInFlatRange(tensor.SliceCsr(c), l0, l1,
                                     [&](std::size_t flat, double v) {
                                       sum += std::fabs(sd[flat] * v);
                                     });
          }
          return sum;
        });
    value -= weights[k] * intimacy;
  }

  value += objective.gamma * s.NormL1();
  if (objective.tau == 0.0) return value;  // +0.0 * sigma is an exact no-op.
  auto nuclear = NuclearNorm(s);
  if (!nuclear.ok()) {
    SvdOptions retry;
    retry.max_sweeps *= 2;
    auto svd = ComputeSvd(s, retry);
    if (!svd.ok()) return std::numeric_limits<double>::quiet_NaN();
    double sum = 0.0;
    for (std::size_t r = 0; r < svd.value().singular_values.size(); ++r) {
      sum += svd.value().singular_values[r];
    }
    return value + objective.tau * sum;
  }
  value += objective.tau * nuclear.value();
  return value;
}

}  // namespace slampred
