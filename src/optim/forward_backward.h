// Generalized forward–backward splitting: the inner solver of
// Algorithm 1. Each step alternates
//   S ← S − θ ∇f(S)              (gradient step on the smooth part)
//   S ← prox_{θτ‖·‖_*}(S)         (singular value shrinkage)
//   S ← prox_{θγ‖·‖₁}(S)          (soft thresholding)
// optionally followed by projection onto the admissible set 𝒮
// (entry-wise [0, 1], matching the paper's confidence-score range).
//
// The loop is wrapped in solver guardrails (optim/guardrails.h): a
// non-finite or diverging iterate rolls back to the last good one with
// a halved θ, and a failing nuclear prox falls back to the full Jacobi
// SVD. With guardrails at their defaults a healthy run is bit-identical
// to the unguarded loop.

#ifndef SLAMPRED_OPTIM_FORWARD_BACKWARD_H_
#define SLAMPRED_OPTIM_FORWARD_BACKWARD_H_

#include <vector>

#include "linalg/matrix.h"
#include "optim/guardrails.h"
#include "optim/objective.h"
#include "util/status.h"

namespace slampred {

/// Inner-loop controls.
struct ForwardBackwardOptions {
  /// Learning rate θ. The smooth part's gradient is 2(S − A) − G with
  /// Lipschitz constant 2, so any θ < 0.5 is stable; 0.02 converges in
  /// tens of steps. (The paper quotes θ = 0.001 for its unnormalised
  /// loss — the Figure-3 bench reproduces that regime explicitly.)
  double theta = 0.02;
  int max_iterations = 100;  ///< Hard cap on proximal steps.
  double tol = 1e-5;         ///< Converged when ‖ΔS‖₁/max(1,‖S‖₁) < tol.
  bool project_unit_box = true;  ///< Clamp S into [0, 1] each step.
  bool keep_symmetric = true;    ///< Re-symmetrise after each step.
  GuardrailOptions guardrails;   ///< Rollback/backoff/fallback controls.
  NuclearProxOptions nuclear_prox;  ///< Nuclear-prox backend selection.
};

/// Per-step trace used by the Figure-3 convergence experiment. Recovery
/// steps (rollbacks) are not recorded in the per-step series — only
/// accepted iterates are.
struct IterationTrace {
  std::vector<double> s_norm_l1;    ///< ‖S^h‖₁ after step h.
  std::vector<double> s_change_l1;  ///< ‖S^h − S^{h−1}‖₁ after step h.
  bool converged = false;
  int iterations = 0;
};

/// Runs the generalized forward–backward loop from `s0` on the
/// linearised objective (Objective::grad_v is the frozen CCCP gradient).
/// `trace` is appended to when non-null; recovery actions are counted
/// into `recovery` when non-null. Fails with kNotConverged when the
/// guardrail recovery budget is exhausted by a persistent fault, or
/// propagates the nuclear-prox failure directly when guardrails are
/// disabled.
Result<Matrix> GeneralizedForwardBackward(
    const Objective& objective, const Matrix& s0,
    const ForwardBackwardOptions& options, IterationTrace* trace = nullptr,
    RecoveryStats* recovery = nullptr);

}  // namespace slampred

#endif  // SLAMPRED_OPTIM_FORWARD_BACKWARD_H_
