#include "optim/guardrails.h"

#include <cmath>

#include "linalg/svd.h"
#include "optim/proximal.h"

namespace slampred {

std::string RecoveryStats::ToString() const {
  std::string out =
      "recoveries{nan_rollbacks=" + std::to_string(nan_rollbacks) +
      ", prox_rollbacks=" + std::to_string(prox_rollbacks) +
      ", divergence_backoffs=" + std::to_string(divergence_backoffs) +
      ", svd_fallbacks=" + std::to_string(svd_fallbacks) +
      ", checkpoint_resumes=" + std::to_string(checkpoint_resumes);
  // Serving-side counters only show up when serving code contributed.
  if (swap_failures != 0 || batch_failures != 0) {
    out += ", swap_failures=" + std::to_string(swap_failures) +
           ", batch_failures=" + std::to_string(batch_failures);
  }
  if (shed != 0 || deadline_exceeded != 0) {
    out += ", shed=" + std::to_string(shed) +
           ", deadline_exceeded=" + std::to_string(deadline_exceeded);
  }
  if (breaker_trips != 0 || degraded_responses != 0) {
    out += ", breaker_trips=" + std::to_string(breaker_trips) +
           ", degraded_responses=" + std::to_string(degraded_responses);
  }
  if (artifact_rollbacks != 0) {
    out += ", artifact_rollbacks=" + std::to_string(artifact_rollbacks);
  }
  return out + "}";
}

bool MatrixIsFinite(const Matrix& m) {
  for (double v : m.data()) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

Result<Matrix> GuardedProxNuclear(const Matrix& s, double threshold,
                                  const NuclearProxOptions& options,
                                  const GuardrailOptions& guardrails,
                                  RecoveryStats* stats) {
  auto primary = options.use_randomized
                     ? ProxNuclearRandomized(s, threshold, options.randomized)
                     : ProxNuclearAuto(s, threshold);
  if (primary.ok() && MatrixIsFinite(primary.value())) return primary;
  if (!guardrails.enabled) return primary;

  // Only decomposition trouble is retryable; argument errors are not.
  if (!primary.ok() &&
      primary.status().code() != StatusCode::kNotConverged &&
      primary.status().code() != StatusCode::kNumericalError) {
    return primary;
  }

  Status last = primary.ok()
                    ? Status::NumericalError(
                          "nuclear prox produced non-finite entries")
                    : primary.status();
  // Fallback chain: full Jacobi SVD with a doubled sweep budget per
  // attempt. This backend is independent of the primary (no sketch, no
  // symmetric-eigen shortcut), so a backend-specific failure — or an
  // injected one — does not repeat here.
  SvdOptions svd_options;
  for (int attempt = 0; attempt < guardrails.max_svd_fallbacks; ++attempt) {
    svd_options.max_sweeps *= 2;
    auto fallback = ProxNuclear(s, threshold, svd_options);
    if (fallback.ok() && MatrixIsFinite(fallback.value())) {
      if (stats != nullptr) ++stats->svd_fallbacks;
      return fallback;
    }
    last = fallback.ok() ? Status::NumericalError(
                               "fallback nuclear prox non-finite")
                         : fallback.status();
  }
  return last;
}

}  // namespace slampred
