#include "optim/proximal.h"

#include <cmath>
#include <limits>
#include <vector>

#include "linalg/svd.h"
#include "linalg/symmetric_eigen.h"
#include "util/fault_injection.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace slampred {

namespace {

// Applies an injected fault from the "svd.prox" site to a computed prox
// result: fail kinds replace the result with an error, poison kinds
// corrupt one entry. Returns the (possibly replaced) result.
Result<Matrix> ApplyProxFault(FaultKind fault, Result<Matrix> result) {
  switch (fault) {
    case FaultKind::kNone:
      break;
    case FaultKind::kFailNotConverged:
      return Status::NotConverged("injected fault at svd.prox");
    case FaultKind::kFailNumerical:
    case FaultKind::kFailIo:
      return Status::NumericalError("injected fault at svd.prox");
    case FaultKind::kPoisonNaN:
      if (result.ok() && !result.value().empty()) {
        result.value().data()[0] = std::numeric_limits<double>::quiet_NaN();
      }
      break;
    case FaultKind::kPoisonInf:
      if (result.ok() && !result.value().empty()) {
        result.value().data()[0] = std::numeric_limits<double>::infinity();
      }
      break;
  }
  return result;
}

}  // namespace

Matrix ProxL1(const Matrix& s, double threshold) {
  SLAMPRED_CHECK(threshold >= 0.0) << "negative l1 threshold";
  Matrix out = s;
  double* data = out.data().data();
  ParallelFor(0, out.data().size(), GrainForWork(1),
              [&](std::size_t idx0, std::size_t idx1) {
                for (std::size_t idx = idx0; idx < idx1; ++idx) {
                  double& v = data[idx];
                  if (v > threshold) {
                    v -= threshold;
                  } else if (v < -threshold) {
                    v += threshold;
                  } else {
                    v = 0.0;
                  }
                }
              });
  return out;
}

Result<Matrix> ProxNuclear(const Matrix& s, double threshold,
                           const SvdOptions& svd_options) {
  if (threshold < 0.0) {
    return Status::InvalidArgument("negative nuclear threshold");
  }
  auto svd = ComputeSvd(s, svd_options);
  if (!svd.ok()) return svd.status();
  const SvdResult& dec = svd.value();
  const std::size_t k = dec.singular_values.size();

  // Shrink every singular value up front (sorted descending, but scan
  // all of them as the old `continue` loop did for safety).
  std::vector<double> shrunk(k, 0.0);
  for (std::size_t r = 0; r < k; ++r) {
    shrunk[r] = dec.singular_values[r] - threshold;
  }

  Matrix out(s.rows(), s.cols());
  const std::size_t ncols = s.cols();
  // Row-parallel reconstruction; r ascends per element, exactly as the
  // serial rank-1 accumulation did, so results are bit-identical.
  ParallelFor(0, s.rows(), GrainForWork(k * ncols),
              [&](std::size_t row0, std::size_t row1) {
                for (std::size_t i = row0; i < row1; ++i) {
                  for (std::size_t r = 0; r < k; ++r) {
                    if (shrunk[r] <= 0.0) continue;
                    const double ui = dec.u(i, r) * shrunk[r];
                    if (ui == 0.0) continue;
                    for (std::size_t j = 0; j < ncols; ++j) {
                      out(i, j) += ui * dec.v(j, r);
                    }
                  }
                }
              });
  return out;
}

Result<Matrix> ProxNuclearSymmetric(const Matrix& s, double threshold) {
  if (threshold < 0.0) {
    return Status::InvalidArgument("negative nuclear threshold");
  }
  auto eig = ComputeSymmetricEigen(s);
  if (!eig.ok()) return eig.status();
  const SymmetricEigenResult& dec = eig.value();
  const std::size_t n = s.rows();

  // Shrink every eigenvalue up front; zero means "skip this rank".
  std::vector<double> shrunk(n, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    const double lambda = dec.eigenvalues[r];
    const double mag = std::fabs(lambda) - threshold;
    if (mag <= 0.0) continue;
    shrunk[r] = lambda >= 0.0 ? mag : -mag;
  }

  Matrix out(n, n);
  // Row-parallel over the upper triangle (j >= i); r ascends per
  // element exactly as the serial rank-1 accumulation did.
  ParallelFor(0, n, GrainForWork(n * n),
              [&](std::size_t row0, std::size_t row1) {
                for (std::size_t i = row0; i < row1; ++i) {
                  for (std::size_t r = 0; r < n; ++r) {
                    if (shrunk[r] == 0.0) continue;
                    const double qi = dec.eigenvectors(i, r) * shrunk[r];
                    if (qi == 0.0) continue;
                    for (std::size_t j = i; j < n; ++j) {
                      out(i, j) += qi * dec.eigenvectors(j, r);
                    }
                  }
                }
              });
  // Mirror the computed upper triangle (each lower element has exactly
  // one writing chunk).
  ParallelFor(0, n, GrainForWork(n),
              [&](std::size_t row0, std::size_t row1) {
                for (std::size_t i = row0; i < row1; ++i) {
                  for (std::size_t j = 0; j < i; ++j) out(i, j) = out(j, i);
                }
              });
  return out;
}

Result<Matrix> ProxNuclearAuto(const Matrix& s, double threshold) {
  const FaultKind fault = SLAMPRED_FAULT_HIT("svd.prox");
  if (fault == FaultKind::kFailNotConverged ||
      fault == FaultKind::kFailNumerical || fault == FaultKind::kFailIo) {
    return ApplyProxFault(fault, Matrix());
  }
  if (s.IsSquare() && s.IsSymmetric(1e-9 * std::max(1.0, s.MaxAbs()))) {
    return ApplyProxFault(fault, ProxNuclearSymmetric(s, threshold));
  }
  return ApplyProxFault(fault, ProxNuclear(s, threshold));
}

}  // namespace slampred
