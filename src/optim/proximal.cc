#include "optim/proximal.h"

#include <cmath>
#include <limits>

#include "linalg/svd.h"
#include "linalg/symmetric_eigen.h"
#include "util/fault_injection.h"
#include "util/logging.h"

namespace slampred {

namespace {

// Applies an injected fault from the "svd.prox" site to a computed prox
// result: fail kinds replace the result with an error, poison kinds
// corrupt one entry. Returns the (possibly replaced) result.
Result<Matrix> ApplyProxFault(FaultKind fault, Result<Matrix> result) {
  switch (fault) {
    case FaultKind::kNone:
      break;
    case FaultKind::kFailNotConverged:
      return Status::NotConverged("injected fault at svd.prox");
    case FaultKind::kFailNumerical:
    case FaultKind::kFailIo:
      return Status::NumericalError("injected fault at svd.prox");
    case FaultKind::kPoisonNaN:
      if (result.ok() && !result.value().empty()) {
        result.value().data()[0] = std::numeric_limits<double>::quiet_NaN();
      }
      break;
    case FaultKind::kPoisonInf:
      if (result.ok() && !result.value().empty()) {
        result.value().data()[0] = std::numeric_limits<double>::infinity();
      }
      break;
  }
  return result;
}

}  // namespace

Matrix ProxL1(const Matrix& s, double threshold) {
  SLAMPRED_CHECK(threshold >= 0.0) << "negative l1 threshold";
  Matrix out = s;
  for (double& v : out.data()) {
    if (v > threshold) {
      v -= threshold;
    } else if (v < -threshold) {
      v += threshold;
    } else {
      v = 0.0;
    }
  }
  return out;
}

Result<Matrix> ProxNuclear(const Matrix& s, double threshold,
                           const SvdOptions& svd_options) {
  if (threshold < 0.0) {
    return Status::InvalidArgument("negative nuclear threshold");
  }
  auto svd = ComputeSvd(s, svd_options);
  if (!svd.ok()) return svd.status();
  const SvdResult& dec = svd.value();
  const std::size_t k = dec.singular_values.size();

  Matrix out(s.rows(), s.cols());
  for (std::size_t r = 0; r < k; ++r) {
    const double shrunk = dec.singular_values[r] - threshold;
    if (shrunk <= 0.0) continue;  // Sorted descending: could break, but
                                  // keep scanning for clarity/safety.
    for (std::size_t i = 0; i < s.rows(); ++i) {
      const double ui = dec.u(i, r) * shrunk;
      if (ui == 0.0) continue;
      for (std::size_t j = 0; j < s.cols(); ++j) {
        out(i, j) += ui * dec.v(j, r);
      }
    }
  }
  return out;
}

Result<Matrix> ProxNuclearSymmetric(const Matrix& s, double threshold) {
  if (threshold < 0.0) {
    return Status::InvalidArgument("negative nuclear threshold");
  }
  auto eig = ComputeSymmetricEigen(s);
  if (!eig.ok()) return eig.status();
  const SymmetricEigenResult& dec = eig.value();
  const std::size_t n = s.rows();

  Matrix out(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    const double lambda = dec.eigenvalues[r];
    const double mag = std::fabs(lambda) - threshold;
    if (mag <= 0.0) continue;
    const double shrunk = lambda >= 0.0 ? mag : -mag;
    for (std::size_t i = 0; i < n; ++i) {
      const double qi = dec.eigenvectors(i, r) * shrunk;
      if (qi == 0.0) continue;
      for (std::size_t j = i; j < n; ++j) {
        out(i, j) += qi * dec.eigenvectors(j, r);
      }
    }
  }
  // Mirror the computed upper triangle.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) out(i, j) = out(j, i);
  }
  return out;
}

Result<Matrix> ProxNuclearAuto(const Matrix& s, double threshold) {
  const FaultKind fault = SLAMPRED_FAULT_HIT("svd.prox");
  if (fault == FaultKind::kFailNotConverged ||
      fault == FaultKind::kFailNumerical || fault == FaultKind::kFailIo) {
    return ApplyProxFault(fault, Matrix());
  }
  if (s.IsSquare() && s.IsSymmetric(1e-9 * std::max(1.0, s.MaxAbs()))) {
    return ApplyProxFault(fault, ProxNuclearSymmetric(s, threshold));
  }
  return ApplyProxFault(fault, ProxNuclear(s, threshold));
}

}  // namespace slampred
