// Solver guardrails: detection, backoff and fallback machinery that
// lets the CCCP / forward–backward pipeline degrade gracefully instead
// of aborting or silently emitting a garbage predictor matrix.
//
// The guardrails are observers on the healthy path — with no fault and
// no divergence they only read the iterate, so traces are bit-identical
// to an unguarded run — and only steer the solver when something is
// measurably wrong:
//
//   * NaN/Inf in the iterate after a step  → roll back to the last good
//     iterate and halve the step size θ.
//   * Divergence (the step change blowing up well past its best value
//     for several consecutive steps)       → same rollback + backoff.
//   * Nuclear-prox failure (randomized or symmetric-eigen backend not
//     converging)                          → bounded-retry fallback to
//     the full Jacobi SVD with extra sweeps.
//   * Inner-loop failure after its own retries → CCCP resumes from the
//     last SolverCheckpoint with a halved θ.
//
// Every intervention is counted in RecoveryStats, surfaced through
// CccpTrace and printed by tools/slampred_cli.

#ifndef SLAMPRED_OPTIM_GUARDRAILS_H_
#define SLAMPRED_OPTIM_GUARDRAILS_H_

#include <string>

#include "linalg/matrix.h"
#include "linalg/randomized_svd.h"
#include "util/status.h"

namespace slampred {

/// Counters for every recovery action the solver took. All zero on a
/// fault-free, well-conditioned run.
struct RecoveryStats {
  int nan_rollbacks = 0;       ///< Non-finite iterate → rollback.
  int prox_rollbacks = 0;      ///< Unrecoverable prox failure → rollback.
  int divergence_backoffs = 0; ///< Diverging change → rollback + θ/2.
  int svd_fallbacks = 0;       ///< Nuclear prox retried on Jacobi SVD.
  int checkpoint_resumes = 0;  ///< CCCP resumed from a checkpoint.
  int swap_failures = 0;       ///< Rejected model hot-swaps (serving).
  int batch_failures = 0;      ///< Failed batch dispatches (serving).
  int shed = 0;                ///< Requests rejected by admission control.
  int deadline_exceeded = 0;   ///< Requests shed past their deadline.
  int breaker_trips = 0;       ///< Circuit-breaker closed→open transitions.
  int degraded_responses = 0;  ///< Responses served off the full path.
  int artifact_rollbacks = 0;  ///< Swaps recovered via a last_good sidecar.

  /// Total number of recoveries of any kind.
  int Total() const {
    return nan_rollbacks + prox_rollbacks + divergence_backoffs +
           svd_fallbacks + checkpoint_resumes + swap_failures +
           batch_failures + shed + deadline_exceeded + breaker_trips +
           degraded_responses + artifact_rollbacks;
  }

  /// Adds another stats object into this one.
  void Merge(const RecoveryStats& other) {
    nan_rollbacks += other.nan_rollbacks;
    prox_rollbacks += other.prox_rollbacks;
    divergence_backoffs += other.divergence_backoffs;
    svd_fallbacks += other.svd_fallbacks;
    checkpoint_resumes += other.checkpoint_resumes;
    swap_failures += other.swap_failures;
    batch_failures += other.batch_failures;
    shed += other.shed;
    deadline_exceeded += other.deadline_exceeded;
    breaker_trips += other.breaker_trips;
    degraded_responses += other.degraded_responses;
    artifact_rollbacks += other.artifact_rollbacks;
  }

  /// One-line human-readable summary.
  std::string ToString() const;
};

/// Last known-good solver state; enough to resume Algorithm 1 after a
/// recovered fault.
struct SolverCheckpoint {
  Matrix s;              ///< Last good iterate.
  double theta = 0.0;    ///< Step size in effect when it was taken.
  int outer_round = 0;   ///< CCCP round that produced it.
  bool valid = false;    ///< False until the first checkpoint is taken.
};

/// Guardrail controls shared by the inner and outer loops.
struct GuardrailOptions {
  /// Master switch. Off restores the exact pre-guardrail behavior
  /// (aborts on nothing, but propagates any prox failure immediately).
  bool enabled = true;
  /// Multiplier applied to θ at each backoff (0 < factor < 1).
  double backoff_factor = 0.5;
  /// Maximum rollback/backoff recoveries per inner-loop run before the
  /// loop gives up and returns its last good iterate.
  int max_recoveries = 8;
  /// Divergence test: the change ‖ΔS‖₁ must exceed
  /// divergence_factor × (best change seen) for divergence_window
  /// consecutive steps. The defaults are far outside anything a healthy
  /// run produces, so the healthy path is untouched.
  double divergence_factor = 1e3;
  int divergence_window = 3;
  /// Bounded retries of the full-Jacobi nuclear-prox fallback; each
  /// retry doubles the sweep budget.
  int max_svd_fallbacks = 2;
  /// Maximum checkpoint resumes at the CCCP level.
  int max_checkpoint_resumes = 2;
};

/// True iff every entry of `m` is finite (no NaN, no ±Inf).
bool MatrixIsFinite(const Matrix& m);

/// Nuclear-prox backend selection for GuardedProxNuclear.
struct NuclearProxOptions {
  /// Use the randomized sketch as the primary backend (scalable path);
  /// the full/symmetric decomposition remains the fallback.
  bool use_randomized = false;
  RandomizedSvdOptions randomized;
};

/// Nuclear-norm prox with a bounded-retry fallback chain:
/// primary backend (randomized sketch or symmetric-eigen/Jacobi auto
/// dispatch, honoring the "svd.prox" fault-injection site) and, on
/// kNotConverged / kNumericalError / non-finite output, the full Jacobi
/// SVD with a doubled sweep budget per retry. Each fallback taken is
/// counted in `stats` (when non-null).
Result<Matrix> GuardedProxNuclear(const Matrix& s, double threshold,
                                  const NuclearProxOptions& options,
                                  const GuardrailOptions& guardrails,
                                  RecoveryStats* stats);

}  // namespace slampred

#endif  // SLAMPRED_OPTIM_GUARDRAILS_H_
