// Solver backend selection: the dense iterate (the bit-exact oracle,
// O(n³) nuclear prox) versus the factored low-rank iterate
// (FactoredMatrix, O(n·r²) prox — the path past the dense-SVD wall).
// The backend is threaded from the CLI through SlamPredConfig into
// SolveStage and down to the optim layer; see DESIGN.md "Factored
// low-rank solver".

#ifndef SLAMPRED_OPTIM_SOLVER_BACKEND_H_
#define SLAMPRED_OPTIM_SOLVER_BACKEND_H_

#include <cstddef>
#include <cstdint>

namespace slampred {

/// Which iterate representation the CCCP solve runs on.
enum class SolverBackend : std::uint8_t {
  kDense = 0,     ///< Dense n×n iterate, exact SVD prox (the oracle).
  kFactored = 1,  ///< S = U·Vᵀ iterate, factored prox + subspace reuse.
};

inline const char* SolverBackendName(SolverBackend backend) {
  return backend == SolverBackend::kFactored ? "factored" : "dense";
}

/// Controls of the factored backend's randomized range finder.
struct FactoredSolverOptions {
  /// Target rank r of the iterate. The nuclear shrinkage truncates the
  /// spectrum anyway; r only needs to cover the surviving ranks.
  std::size_t rank = 24;
  /// Extra sketch columns beyond `rank` (range-finder oversampling).
  std::size_t oversampling = 8;
  /// Subspace (power) iterations on a cold-started sketch.
  int power_iterations = 2;
  /// Subspace iterations when warm-started from the previous step's
  /// basis — the subspace barely moves between iterations, so fewer
  /// passes suffice.
  int warm_power_iterations = 1;
  /// Base seed of the gaussian sketches (deterministic; the per-step
  /// draw is derived from it, never from global state).
  std::uint64_t seed = 0x5eedULL;
};

}  // namespace slampred

#endif  // SLAMPRED_OPTIM_SOLVER_BACKEND_H_
