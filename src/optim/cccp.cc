#include "optim/cccp.h"

#include <algorithm>

#include "util/logging.h"

namespace slampred {

Result<Matrix> SolveCccp(const Objective& objective,
                         const CccpOptions& options, CccpTrace* trace) {
  return SolveCccpFrom(objective, objective.a, options, trace);
}

Result<Matrix> SolveCccpFrom(const Objective& objective, const Matrix& s0,
                             const CccpOptions& options, CccpTrace* trace) {
  Matrix s = s0;
  bool converged = false;
  int outer = 0;
  for (; outer < options.max_outer_iterations && !converged; ++outer) {
    const Matrix prev = s;
    IterationTrace* inner_trace = trace != nullptr ? &trace->steps : nullptr;
    auto inner = GeneralizedForwardBackward(objective, s, options.inner,
                                            inner_trace);
    if (!inner.ok()) return inner.status();
    s = std::move(inner).value();

    const double change = (s - prev).NormL1();
    const double scale = std::max(1.0, s.NormL1());
    converged = change / scale < options.outer_tol;
    if (trace != nullptr) trace->outer_change_l1.push_back(change);
  }
  if (trace != nullptr) {
    trace->outer_iterations = outer;
    trace->converged = converged;
  }
  return s;
}

}  // namespace slampred
