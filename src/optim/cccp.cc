#include "optim/cccp.h"

#include <algorithm>

#include "util/logging.h"

namespace slampred {

namespace {

// Shared implementation: solve from `s0` with `theta0`, running
// `max_outer` rounds starting at round index `first_round`.
Result<Matrix> SolveImpl(const Objective& objective, const Matrix& s0,
                         double theta0, int first_round,
                         const CccpOptions& options, CccpTrace* trace) {
  const GuardrailOptions& guard = options.inner.guardrails;
  Matrix s = s0;
  double theta = theta0;
  RecoveryStats local_recovery;
  RecoveryStats* recovery =
      trace != nullptr ? &trace->recovery : &local_recovery;

  SolverCheckpoint checkpoint;
  checkpoint.s = s;
  checkpoint.theta = theta;
  checkpoint.outer_round = first_round;
  checkpoint.valid = true;

  int resumes = 0;
  bool converged = false;
  int outer = first_round;
  while (outer < options.max_outer_iterations && !converged) {
    const Matrix prev = s;
    IterationTrace* inner_trace = trace != nullptr ? &trace->steps : nullptr;
    ForwardBackwardOptions inner_options = options.inner;
    inner_options.theta = theta;
    auto inner = GeneralizedForwardBackward(objective, s, inner_options,
                                            inner_trace, recovery);
    if (!inner.ok()) {
      // Guardrail: a failed round (persistent fault, exhausted inner
      // recovery budget) restarts from the last good checkpoint with a
      // backed-off step size instead of abandoning the whole solve.
      const StatusCode code = inner.status().code();
      if (guard.enabled && resumes < guard.max_checkpoint_resumes &&
          (code == StatusCode::kNotConverged ||
           code == StatusCode::kNumericalError)) {
        ++resumes;
        ++recovery->checkpoint_resumes;
        theta *= guard.backoff_factor;
        s = checkpoint.s;
        continue;
      }
      return inner.status();
    }
    s = std::move(inner).value();
    // The backoff is episodic: a clean round ends the recovery episode,
    // so a transient fault leaves no permanent step-size change (and the
    // solve converges to the same fixed point as a fault-free run).
    theta = theta0;

    const double change = (s - prev).NormL1();
    const double scale = std::max(1.0, s.NormL1());
    converged = change / scale < options.outer_tol;
    if (trace != nullptr) trace->outer_change_l1.push_back(change);

    ++outer;
    checkpoint.s = s;
    checkpoint.theta = theta;
    checkpoint.outer_round = outer;
  }
  if (trace != nullptr) {
    trace->outer_iterations = outer - first_round;
    trace->converged = converged;
    trace->checkpoint = checkpoint;
  }
  return s;
}

}  // namespace

Result<Matrix> SolveCccp(const Objective& objective,
                         const CccpOptions& options, CccpTrace* trace) {
  // The iterate is dense; densify the CSR adjacency once for S⁰ = Aᵗ.
  return SolveCccpFrom(objective, objective.a.ToDense(), options, trace);
}

Result<Matrix> SolveCccpFrom(const Objective& objective, const Matrix& s0,
                             const CccpOptions& options, CccpTrace* trace) {
  return SolveImpl(objective, s0, options.inner.theta, 0, options, trace);
}

Result<Matrix> ResumeCccp(const Objective& objective,
                          const SolverCheckpoint& checkpoint,
                          const CccpOptions& options, CccpTrace* trace) {
  if (!checkpoint.valid) {
    return Status::FailedPrecondition("resume from an invalid checkpoint");
  }
  if (checkpoint.s.rows() != objective.a.rows() ||
      checkpoint.s.cols() != objective.a.cols()) {
    return Status::FailedPrecondition("checkpoint shape mismatch");
  }
  if (checkpoint.outer_round >= options.max_outer_iterations) {
    // Nothing left to do; the checkpointed iterate is the answer.
    if (trace != nullptr) {
      trace->checkpoint = checkpoint;
      trace->converged = true;
    }
    return checkpoint.s;
  }
  return SolveImpl(objective, checkpoint.s, checkpoint.theta,
                   checkpoint.outer_round, options, trace);
}

}  // namespace slampred
