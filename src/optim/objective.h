// The SLAMPRED objective (Section III-C4 / III-D of the paper):
//
//   min_{S∈𝒮}  ‖S − Aᵗ‖²_F  −  Σ_k α_k ‖S ∘ X̂^k‖₁
//              + γ‖S‖₁ + τ‖S‖_*
//
// decomposed as u(S) − v(S) with
//   u(S) = ‖S − Aᵗ‖²_F + γ‖S‖₁ + τ‖S‖_*     (convex)
//   v(S) = Σ_k α_k ‖S ∘ X̂^k‖₁                (convex; subtracted)
//
// With non-negative adapted features, ∇v is the constant matrix
// G = Σ_k α_k Σ_c X̂^k(c,:,:) used by the CCCP linearisation.

#ifndef SLAMPRED_OPTIM_OBJECTIVE_H_
#define SLAMPRED_OPTIM_OBJECTIVE_H_

#include <vector>

#include "linalg/matrix.h"
#include "linalg/tensor3.h"

namespace slampred {

/// Convex surrogate for the paper's 0/1 empirical loss (Section III-D
/// proposes "the hinge loss and the Frobenius norm"; the Frobenius form
/// is the paper's default and ours).
enum class LossKind {
  /// ‖S − A‖²_F.
  kSquaredFrobenius,
  /// Σᵢⱼ max(0, 1 − yᵢⱼ Sᵢⱼ)² with yᵢⱼ = 2Aᵢⱼ − 1 (squared hinge — the
  /// squaring keeps the smooth part differentiable for the
  /// forward–backward inner loop).
  kSquaredHinge,
};

/// Immutable problem data for one solve.
struct Objective {
  Matrix a;        ///< Observed (training) adjacency Aᵗ.
  Matrix grad_v;   ///< Constant CCCP gradient G of the intimacy terms.
  double gamma;    ///< ℓ₁ regularization weight.
  double tau;      ///< Nuclear-norm regularization weight.
  LossKind loss = LossKind::kSquaredFrobenius;
};

/// Builds G = Σ_k α_k Σ_c tensors[k](c,:,:). Each tensor must be square
/// n x n in its last two dims with n = a-rows; weights.size() must match
/// tensors.size().
Matrix BuildIntimacyGradient(const std::vector<Tensor3>& tensors,
                             const std::vector<double>& weights,
                             std::size_t n);

/// Smooth part of the linearised subproblem:
/// f(S) = ‖S − A‖²_F − <S, G>.
double SmoothValue(const Objective& objective, const Matrix& s);

/// Gradient of the smooth part: 2(S − A) − G.
Matrix SmoothGradient(const Objective& objective, const Matrix& s);

/// Full non-smooth objective value u(S) − v(S) evaluated literally (the
/// intimacy term uses the exact entry-wise ‖S ∘ X̂‖₁, not the
/// linearisation); used for traces and tests.
double FullObjectiveValue(const Objective& objective, const Matrix& s,
                          const std::vector<Tensor3>& tensors,
                          const std::vector<double>& weights);

}  // namespace slampred

#endif  // SLAMPRED_OPTIM_OBJECTIVE_H_
