// The SLAMPRED objective (Section III-C4 / III-D of the paper):
//
//   min_{S∈𝒮}  ‖S − Aᵗ‖²_F  −  Σ_k α_k ‖S ∘ X̂^k‖₁
//              + γ‖S‖₁ + τ‖S‖_*
//
// decomposed as u(S) − v(S) with
//   u(S) = ‖S − Aᵗ‖²_F + γ‖S‖₁ + τ‖S‖_*     (convex)
//   v(S) = Σ_k α_k ‖S ∘ X̂^k‖₁                (convex; subtracted)
//
// With non-negative adapted features, ∇v is the constant matrix
// G = Σ_k α_k Σ_c X̂^k(c,:,:) used by the CCCP linearisation.

#ifndef SLAMPRED_OPTIM_OBJECTIVE_H_
#define SLAMPRED_OPTIM_OBJECTIVE_H_

#include <vector>

#include "linalg/csr_matrix.h"
#include "linalg/matrix.h"
#include "linalg/sparse_tensor3.h"
#include "linalg/tensor3.h"

namespace slampred {

/// Convex surrogate for the paper's 0/1 empirical loss (Section III-D
/// proposes "the hinge loss and the Frobenius norm"; the Frobenius form
/// is the paper's default and ours).
enum class LossKind {
  /// ‖S − A‖²_F.
  kSquaredFrobenius,
  /// Σᵢⱼ max(0, 1 − yᵢⱼ Sᵢⱼ)² with yᵢⱼ = 2Aᵢⱼ − 1 (squared hinge — the
  /// squaring keeps the smooth part differentiable for the
  /// forward–backward inner loop).
  kSquaredHinge,
};

/// Immutable problem data for one solve. The observed adjacency stays in
/// CSR (it is the sparsest matrix in the pipeline); only the solver
/// iterate S and grad_v are dense. Loss kernels read A through a flat
/// cursor that supplies exact zeros for absent entries, preserving the
/// dense kernels' chunking and accumulation order bit for bit.
struct Objective {
  CsrMatrix a;     ///< Observed (training) adjacency Aᵗ.
  Matrix grad_v;   ///< Constant CCCP gradient G of the intimacy terms.
  double gamma;    ///< ℓ₁ regularization weight.
  double tau;      ///< Nuclear-norm regularization weight.
  LossKind loss = LossKind::kSquaredFrobenius;
};

/// Builds G = Σ_k α_k Σ_c tensors[k](c,:,:). Each tensor must be square
/// n x n in its last two dims with n = a-rows; weights.size() must match
/// tensors.size().
Matrix BuildIntimacyGradient(const std::vector<Tensor3>& tensors,
                             const std::vector<double>& weights,
                             std::size_t n);

/// Sparse-tensor overload — the pipeline's default. SumSlices on a
/// SparseTensor3 is bit-identical to the dense gather, so G matches the
/// dense overload exactly.
Matrix BuildIntimacyGradient(const std::vector<SparseTensor3>& tensors,
                             const std::vector<double>& weights,
                             std::size_t n);

/// Smooth part of the linearised subproblem:
/// f(S) = ‖S − A‖²_F − <S, G>.
double SmoothValue(const Objective& objective, const Matrix& s);

/// Gradient of the smooth part: 2(S − A) − G.
Matrix SmoothGradient(const Objective& objective, const Matrix& s);

/// Full non-smooth objective value u(S) − v(S) evaluated literally (the
/// intimacy term uses the exact entry-wise ‖S ∘ X̂‖₁, not the
/// linearisation); used for traces and tests.
double FullObjectiveValue(const Objective& objective, const Matrix& s,
                          const std::vector<Tensor3>& tensors,
                          const std::vector<double>& weights);

/// Sparse-tensor overload — the pipeline's default. The intimacy sweep
/// keeps the dense flat chunk boundaries but only walks stored entries
/// inside each chunk (the skipped |S·0| terms are exact no-ops on the
/// non-negative partials), so the value matches the dense overload bit
/// for bit in O(nnz) instead of O(d·n²).
double FullObjectiveValue(const Objective& objective, const Matrix& s,
                          const std::vector<SparseTensor3>& tensors,
                          const std::vector<double>& weights);

}  // namespace slampred

#endif  // SLAMPRED_OPTIM_OBJECTIVE_H_
