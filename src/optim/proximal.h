// Proximal operators for the two non-differentiable regularizers of the
// SLAMPRED objective (Section III-D2 of the paper):
//
//   prox_{γ‖·‖₁}(S) = sgn(S) ∘ (|S| − γ)₊            (soft thresholding)
//   prox_{τ‖·‖_*}(S) = U diag((σᵢ − τ)₊) Vᵀ           (singular value
//                                                      shrinkage)

#ifndef SLAMPRED_OPTIM_PROXIMAL_H_
#define SLAMPRED_OPTIM_PROXIMAL_H_

#include "linalg/matrix.h"
#include "linalg/svd.h"
#include "util/status.h"

namespace slampred {

/// Entry-wise soft thresholding: shrinks every entry toward zero by
/// `threshold` and clips at zero. `threshold` must be >= 0.
Matrix ProxL1(const Matrix& s, double threshold);

/// Nuclear-norm prox via full SVD: shrinks each singular value by
/// `threshold`. Works for any rectangular matrix. `svd_options` lets
/// recovery paths retry with a larger sweep budget.
Result<Matrix> ProxNuclear(const Matrix& s, double threshold,
                           const SvdOptions& svd_options = {});

/// Nuclear-norm prox fast path for *symmetric* matrices: eigendecompose
/// S = QΛQᵀ; the singular values are |λᵢ|, so the shrunk matrix is
/// Q diag(sgn(λᵢ)(|λᵢ| − τ)₊) Qᵀ. One symmetric eigensolve instead of a
/// rectangular SVD — the predictor matrix of an undirected graph stays
/// symmetric through the whole algorithm, so this is the hot path.
Result<Matrix> ProxNuclearSymmetric(const Matrix& s, double threshold);

/// Dispatches to the symmetric fast path when `s` is symmetric, else the
/// general SVD path.
Result<Matrix> ProxNuclearAuto(const Matrix& s, double threshold);

}  // namespace slampred

#endif  // SLAMPRED_OPTIM_PROXIMAL_H_
