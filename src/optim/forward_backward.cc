#include "optim/forward_backward.h"

#include <algorithm>
#include <cmath>

#include "optim/proximal.h"
#include "util/logging.h"

namespace slampred {

Result<Matrix> GeneralizedForwardBackward(
    const Objective& objective, const Matrix& s0,
    const ForwardBackwardOptions& options, IterationTrace* trace) {
  SLAMPRED_CHECK(s0.rows() == objective.a.rows() &&
                 s0.cols() == objective.a.cols())
      << "initial point shape mismatch";

  Matrix s = s0;
  bool converged = false;
  int it = 0;
  for (; it < options.max_iterations && !converged; ++it) {
    const Matrix prev = s;

    // Forward (gradient) step on the smooth linearised part.
    s -= SmoothGradient(objective, s) * options.theta;

    // Backward steps: one prox per non-smooth regularizer.
    if (objective.tau > 0.0) {
      auto prox = ProxNuclearAuto(s, options.theta * objective.tau);
      if (!prox.ok()) return prox.status();
      s = std::move(prox).value();
    }
    if (objective.gamma > 0.0) {
      s = ProxL1(s, options.theta * objective.gamma);
    }

    // Projection onto the admissible set 𝒮.
    if (options.project_unit_box) {
      for (double& v : s.data()) v = std::clamp(v, 0.0, 1.0);
    }
    if (options.keep_symmetric && s.IsSquare()) {
      s = s.Symmetrized();
    }

    const double change = (s - prev).NormL1();
    const double scale = std::max(1.0, s.NormL1());
    converged = change / scale < options.tol;

    if (trace != nullptr) {
      trace->s_norm_l1.push_back(s.NormL1());
      trace->s_change_l1.push_back(change);
    }
  }

  if (trace != nullptr) {
    trace->converged = converged;
    trace->iterations += it;
  }
  return s;
}

}  // namespace slampred
