#include "optim/forward_backward.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "optim/proximal.h"
#include "util/fault_injection.h"
#include "util/logging.h"

namespace slampred {

namespace {

// Poisons the iterate when the "fb.grad_step" site fires. Fail kinds
// are mapped to poisoning too: from the solver's point of view a failed
// gradient step *is* a corrupted iterate.
void ApplyGradStepFault(Matrix* s) {
  switch (SLAMPRED_FAULT_HIT("fb.grad_step")) {
    case FaultKind::kNone:
      break;
    case FaultKind::kPoisonInf:
      if (!s->empty()) s->data()[0] = std::numeric_limits<double>::infinity();
      break;
    case FaultKind::kPoisonNaN:
    case FaultKind::kFailNotConverged:
    case FaultKind::kFailNumerical:
    case FaultKind::kFailIo:
      if (!s->empty()) s->data()[0] = std::numeric_limits<double>::quiet_NaN();
      break;
  }
}

}  // namespace

Result<Matrix> GeneralizedForwardBackward(
    const Objective& objective, const Matrix& s0,
    const ForwardBackwardOptions& options, IterationTrace* trace,
    RecoveryStats* recovery) {
  SLAMPRED_CHECK(s0.rows() == objective.a.rows() &&
                 s0.cols() == objective.a.cols())
      << "initial point shape mismatch";

  const GuardrailOptions& guard = options.guardrails;
  Matrix s = s0;
  double theta = options.theta;
  // Guardrail bookkeeping. `best_s`/`best_change` track the iterate with
  // the smallest accepted step change — the rollback target when the
  // trajectory diverges. On the healthy path these are pure observers.
  int recoveries = 0;
  double best_change = std::numeric_limits<double>::infinity();
  Matrix best_s = s;
  int divergence_streak = 0;
  bool budget_exhausted = false;

  // Rolls back after a bad step; returns false once the recovery budget
  // is spent.
  const auto back_off = [&](int* counter) {
    ++recoveries;
    if (counter != nullptr) ++*counter;
    theta *= guard.backoff_factor;
    return recoveries <= guard.max_recoveries;
  };

  bool converged = false;
  int it = 0;
  for (; it < options.max_iterations && !converged; ++it) {
    const Matrix prev = s;

    // Forward (gradient) step on the smooth linearised part.
    s -= SmoothGradient(objective, s) * theta;
    ApplyGradStepFault(&s);

    // Guardrail: a non-finite gradient step never reaches the prox.
    if (guard.enabled && !MatrixIsFinite(s)) {
      s = prev;
      if (!back_off(recovery != nullptr ? &recovery->nan_rollbacks
                                        : nullptr)) {
        budget_exhausted = true;
        break;
      }
      continue;
    }

    // Backward steps: one prox per non-smooth regularizer.
    if (objective.tau > 0.0) {
      auto prox = GuardedProxNuclear(s, theta * objective.tau,
                                     options.nuclear_prox, guard, recovery);
      if (!prox.ok()) {
        if (!guard.enabled) return prox.status();
        s = prev;
        if (!back_off(recovery != nullptr ? &recovery->prox_rollbacks
                                          : nullptr)) {
          budget_exhausted = true;
          break;
        }
        continue;
      }
      s = std::move(prox).value();
    }
    if (objective.gamma > 0.0) {
      s = ProxL1(s, theta * objective.gamma);
    }

    // Projection onto the admissible set 𝒮.
    if (options.project_unit_box) {
      for (double& v : s.data()) v = std::clamp(v, 0.0, 1.0);
    }
    if (options.keep_symmetric && s.IsSquare()) {
      s = s.Symmetrized();
    }

    // Guardrail: the prox/projection chain must keep the iterate finite.
    if (guard.enabled && !MatrixIsFinite(s)) {
      s = prev;
      if (!back_off(recovery != nullptr ? &recovery->nan_rollbacks
                                        : nullptr)) {
        budget_exhausted = true;
        break;
      }
      continue;
    }

    const double change = (s - prev).NormL1();
    const double scale = std::max(1.0, s.NormL1());

    // Guardrail: divergence detection. A healthy run shrinks the step
    // change; only a blow-up far past the best value seen — sustained
    // for several consecutive steps — triggers a rollback.
    if (guard.enabled) {
      if (change < best_change) {
        best_change = change;
        best_s = s;
        divergence_streak = 0;
      } else if (change >
                 guard.divergence_factor * std::max(best_change, 1e-12)) {
        if (++divergence_streak >= guard.divergence_window) {
          s = best_s;
          divergence_streak = 0;
          if (!back_off(recovery != nullptr
                            ? &recovery->divergence_backoffs
                            : nullptr)) {
            budget_exhausted = true;
            break;
          }
          continue;
        }
      }
    }

    converged = change / scale < options.tol;

    if (trace != nullptr) {
      trace->s_norm_l1.push_back(s.NormL1());
      trace->s_change_l1.push_back(change);
    }
  }

  if (trace != nullptr) {
    trace->converged = converged;
    trace->iterations += it;
  }
  if (budget_exhausted) {
    return Status::NotConverged(
        "forward-backward recovery budget exhausted after " +
        std::to_string(recoveries) + " recoveries");
  }
  return s;
}

}  // namespace slampred
