// Proximal-operator-based CCCP (Algorithm 1 of the paper).
//
// The objective u(S) − v(S) is handled by the concave–convex procedure:
// each outer iteration linearises v around the current iterate and
// solves the resulting convex subproblem with the generalized
// forward–backward inner loop. Because v's gradient is a constant matrix
// (Section III-D1), the subproblem is the same in every outer round; the
// outer loop still matters operationally — it restarts the inner loop
// from the warm iterate exactly as Algorithm 1 prescribes — and the
// recorded trace reproduces Figure 3.
//
// Robustness: the outer loop keeps a SolverCheckpoint of the last good
// iterate. If the inner loop fails (persistent fault, exhausted
// recovery budget), the solve backs off the step size and resumes from
// the checkpoint a bounded number of times before giving up.

#ifndef SLAMPRED_OPTIM_CCCP_H_
#define SLAMPRED_OPTIM_CCCP_H_

#include <vector>

#include "linalg/matrix.h"
#include "optim/forward_backward.h"
#include "optim/guardrails.h"
#include "optim/objective.h"
#include "util/status.h"

namespace slampred {

/// Outer-loop controls; inner controls ride along.
struct CccpOptions {
  ForwardBackwardOptions inner;
  int max_outer_iterations = 3;  ///< CCCP rounds.
  double outer_tol = 1e-6;       ///< ‖ΔS‖₁/max(1,‖S‖₁) across rounds.
};

/// Trace across the whole solve. Step-level series concatenate the inner
/// iterations of all outer rounds (this is what Figure 3 plots).
struct CccpTrace {
  IterationTrace steps;               ///< Concatenated inner trace.
  std::vector<double> outer_change_l1;  ///< ‖S^{(h)} − S^{(h−1)}‖₁ per round.
  int outer_iterations = 0;
  bool converged = false;
  RecoveryStats recovery;         ///< Every guardrail action taken.
  SolverCheckpoint checkpoint;    ///< Last good state of the solve.
};

/// Runs Algorithm 1: S is initialised to the observed adjacency A
/// (line 1), then outer CCCP rounds each run the proximal inner loop.
/// Returns the converged predictor matrix S.
Result<Matrix> SolveCccp(const Objective& objective,
                         const CccpOptions& options,
                         CccpTrace* trace = nullptr);

/// Same, but from an explicit starting point.
Result<Matrix> SolveCccpFrom(const Objective& objective, const Matrix& s0,
                             const CccpOptions& options,
                             CccpTrace* trace = nullptr);

/// Resumes a solve from a checkpoint (e.g. CccpTrace::checkpoint taken
/// before a crash or a recovered fault): starts at the checkpointed
/// iterate and step size and runs the outer rounds the checkpoint has
/// not completed yet. Fails with kFailedPrecondition on an invalid
/// checkpoint.
Result<Matrix> ResumeCccp(const Objective& objective,
                          const SolverCheckpoint& checkpoint,
                          const CccpOptions& options,
                          CccpTrace* trace = nullptr);

}  // namespace slampred

#endif  // SLAMPRED_OPTIM_CCCP_H_
