#include "optim/factored_solver.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "linalg/matrix_ops.h"
#include "linalg/qr.h"
#include "linalg/svd.h"
#include "util/fault_injection.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace slampred {
namespace {

// The half-step operator T = su·(U·Vᵀ) + sz·Z + oc·(1·1ᵀ), applied to
// dense blocks without materialising any n×n matrix. `s` may be null
// (no low-rank term); `z` is the sparse part.
struct HalfStepOp {
  const FactoredMatrix* s = nullptr;
  double su = 0.0;
  const CsrMatrix* z = nullptr;
  double sz = 0.0;
  double oc = 0.0;  // Coefficient of the rank-1 all-ones term.
  std::size_t n = 0;

  Matrix Apply(const Matrix& x, bool transpose) const {
    Matrix out(n, x.cols());
    if (z != nullptr && sz != 0.0) {
      out = transpose ? z->MultiplyTransposeDense(x) : z->MultiplyDense(x);
      out *= sz;
    }
    if (s != nullptr && su != 0.0 && s->rank() > 0) {
      Matrix low = transpose ? s->MultiplyTransposeDense(x)
                             : s->MultiplyDense(x);
      low *= su;
      out += low;
    }
    if (oc != 0.0) {
      // (1·1ᵀ)·x adds oc·(column sum of x) to every row — 1·1ᵀ is
      // symmetric, so the transpose case is identical.
      const std::size_t k = x.cols();
      Vector col_sum(k, 0.0);
      for (std::size_t i = 0; i < x.rows(); ++i) {
        for (std::size_t j = 0; j < k; ++j) col_sum[j] += x(i, j);
      }
      ParallelFor(0, n, GrainForWork(k),
                  [&](std::size_t row0, std::size_t row1) {
                    for (std::size_t i = row0; i < row1; ++i) {
                      for (std::size_t j = 0; j < k; ++j) {
                        out(i, j) += oc * col_sum[j];
                      }
                    }
                  });
    }
    return out;
  }
};

// Randomized range finder for the half-step operator. `basis` (possibly
// empty) seeds the sketch with the previous step's subspace; fresh
// gaussian columns top it up to `sketch` columns. Returns Q with
// orthonormal columns spanning (approximately) range(T).
Matrix RangeFinder(const HalfStepOp& op, std::size_t sketch,
                   const Matrix& basis, int power_iterations,
                   std::uint64_t seed) {
  const std::size_t warm = std::min(basis.cols(), sketch);
  Matrix omega(op.n, sketch);
  if (warm > 0) omega.SetBlock(0, 0, basis.Block(0, 0, op.n, warm));
  if (warm < sketch) {
    Rng rng(seed);
    omega.SetBlock(0, warm,
                   Matrix::RandomGaussian(op.n, sketch - warm, rng));
  }
  Matrix q = OrthonormalizeColumns(op.Apply(omega, /*transpose=*/false));
  for (int it = 0; it < power_iterations && q.cols() > 0; ++it) {
    Matrix z = OrthonormalizeColumns(op.Apply(q, /*transpose=*/true));
    q = OrthonormalizeColumns(op.Apply(z, /*transpose=*/false));
  }
  return q;
}

// Mirrors forward_backward.cc: a failed gradient step *is* a corrupted
// iterate, so the "fb.grad_step" site poisons the materialised
// half-step factor.
void ApplyGradStepFault(Matrix* b) {
  switch (SLAMPRED_FAULT_HIT("fb.grad_step")) {
    case FaultKind::kNone:
      break;
    case FaultKind::kPoisonInf:
      if (!b->empty()) b->data()[0] = std::numeric_limits<double>::infinity();
      break;
    case FaultKind::kPoisonNaN:
    case FaultKind::kFailNotConverged:
    case FaultKind::kFailNumerical:
    case FaultKind::kFailIo:
      if (!b->empty()) b->data()[0] = std::numeric_limits<double>::quiet_NaN();
      break;
  }
}

// One un-guarded factored prox attempt with the given core-SVD budget.
Result<FactoredMatrix> FactoredProxAttempt(const Matrix& q, const Matrix& b,
                                           double threshold,
                                           const SvdOptions& svd_options) {
  const std::size_t n_rows = q.rows();
  const std::size_t n_cols = b.rows();
  if (q.cols() == 0) return FactoredMatrix::Zero(n_rows, n_cols);
  auto qr_b = ComputeQr(b);
  if (!qr_b.ok()) return qr_b.status();
  // S_half = q·bᵀ = q·R_bᵀ·Q_bᵀ; the k×k core R_bᵀ carries the spectrum.
  auto core = ComputeSvd(qr_b.value().r.Transposed(), svd_options);
  if (!core.ok()) return core.status();
  const SvdResult& dec = core.value();

  std::size_t keep = 0;
  std::vector<double> shrunk(dec.singular_values.size(), 0.0);
  for (std::size_t r = 0; r < dec.singular_values.size(); ++r) {
    shrunk[r] = dec.singular_values[r] - threshold;
    if (shrunk[r] <= 0.0) break;
    ++keep;
  }
  if (keep == 0) return FactoredMatrix::Zero(n_rows, n_cols);

  // U = q·u_keep·diag(shrunk) and V = Q_b·v_keep; both products touch
  // only k-column small matrices before the final tall GEMMs.
  const std::size_t k = dec.u.rows();
  Matrix u_scaled(k, keep);
  Matrix v_keep(dec.v.rows(), keep);
  for (std::size_t r = 0; r < keep; ++r) {
    for (std::size_t i = 0; i < k; ++i) u_scaled(i, r) = dec.u(i, r) * shrunk[r];
    for (std::size_t i = 0; i < dec.v.rows(); ++i) v_keep(i, r) = dec.v(i, r);
  }
  return FactoredMatrix(q * u_scaled, qr_b.value().q * v_keep);
}

// Translates a fault kind at a prox site into the prox's behaviour.
// Returns true when the fault was handled and `*result` is the answer.
bool HandleProxFault(FaultKind kind, const char* site, const Matrix& q,
                     const Matrix& b, Result<FactoredMatrix>* result) {
  switch (kind) {
    case FaultKind::kNone:
      return false;
    case FaultKind::kFailNotConverged:
      *result = Status::NotConverged(std::string("injected fault at ") + site);
      return true;
    case FaultKind::kFailNumerical:
    case FaultKind::kFailIo:
      *result = Status::NumericalError(std::string("injected fault at ") + site);
      return true;
    case FaultKind::kPoisonNaN:
    case FaultKind::kPoisonInf: {
      Matrix poisoned_u = q;
      if (!poisoned_u.empty()) {
        poisoned_u.data()[0] = kind == FaultKind::kPoisonInf
                                   ? std::numeric_limits<double>::infinity()
                                   : std::numeric_limits<double>::quiet_NaN();
      }
      *result = FactoredMatrix(std::move(poisoned_u), b);
      return true;
    }
  }
  return false;
}

}  // namespace

CsrMatrix BuildIntimacyGradientCsr(const std::vector<SparseTensor3>& tensors,
                                   const std::vector<double>& weights,
                                   std::size_t n) {
  SLAMPRED_CHECK(tensors.size() == weights.size())
      << "one weight per tensor required";
  CsrMatrix g = CsrMatrix::FromTriplets(n, n, {});
  for (std::size_t k = 0; k < tensors.size(); ++k) {
    if (weights[k] == 0.0 || tensors[k].empty()) continue;
    SLAMPRED_CHECK(tensors[k].dim1() == n && tensors[k].dim2() == n)
        << "tensor " << k << " shape mismatch";
    // Sum the slices first, then scale once — the same per-entry
    // expression g + w·(Σ_c x_c) as the dense builder, so stored
    // entries match it bit for bit.
    CsrMatrix sum = tensors[k].SliceCsr(0);
    for (std::size_t c = 1; c < tensors[k].dim0(); ++c) {
      sum = sum.Add(tensors[k].SliceCsr(c));
    }
    g = g.AddScaled(sum, weights[k]);
  }
  return g;
}

double FactoredObjectiveValue(const FactoredObjective& objective,
                              const FactoredMatrix& s,
                              const std::vector<SparseTensor3>& tensors,
                              const std::vector<double>& weights) {
  SLAMPRED_CHECK(tensors.size() == weights.size());
  SLAMPRED_CHECK(objective.loss == LossKind::kSquaredFrobenius)
      << "factored objective evaluation needs the squared-Frobenius loss";
  // ‖S − A‖²_F = ‖S‖²_F − 2⟨S, A⟩ + ‖A‖²_F; every term is O(n·r²) or
  // O(nnz·r), never O(n²).
  const double af = objective.a.NormFrobenius();
  double value =
      InnerProduct(s, s) - 2.0 * s.InnerProductCsr(objective.a) + af * af;

  const std::size_t r = s.rank();
  for (std::size_t k = 0; k < tensors.size(); ++k) {
    if (weights[k] == 0.0 || tensors[k].empty()) continue;
    double intimacy = 0.0;
    for (std::size_t c = 0; c < tensors[k].dim0(); ++c) {
      const CsrMatrix& slice = tensors[k].SliceCsr(c);
      const auto& row_ptr = slice.row_ptr();
      const auto& col_idx = slice.col_idx();
      const auto& values = slice.values();
      const std::size_t rows = slice.rows();
      const std::size_t avg_nnz =
          std::max<std::size_t>(1, slice.nnz() / std::max<std::size_t>(1, rows));
      intimacy += ParallelReduceSum(
          0, rows, GrainForWork(avg_nnz * std::max<std::size_t>(1, r)),
          [&](std::size_t row0, std::size_t row1) {
            double sum = 0.0;
            for (std::size_t i = row0; i < row1; ++i) {
              for (std::size_t idx = row_ptr[i]; idx < row_ptr[i + 1]; ++idx) {
                sum += std::fabs(s.At(i, col_idx[idx]) * values[idx]);
              }
            }
            return sum;
          });
    }
    value -= weights[k] * intimacy;
  }

  if (objective.gamma != 0.0) value += objective.gamma * s.NormL1();
  if (objective.tau == 0.0) return value;
  auto spectrum = s.SingularValues();
  if (!spectrum.ok()) return std::numeric_limits<double>::quiet_NaN();
  double nuclear = 0.0;
  for (std::size_t i = 0; i < spectrum.value().size(); ++i) {
    nuclear += spectrum.value()[i];
  }
  return value + objective.tau * nuclear;
}

Result<FactoredMatrix> GuardedFactoredProxNuclear(
    const Matrix& q, const Matrix& b, double threshold,
    const GuardrailOptions& guardrails, RecoveryStats* stats) {
  if (threshold < 0.0) {
    return Status::InvalidArgument("negative nuclear threshold");
  }
  // Shares "svd.prox" with every dense prox backend — the guardrail
  // fallback chain must see the same fault regardless of backend — and
  // adds the factored-specific "prox.factored" site. An injected fault
  // replaces the primary attempt (failed Status or poisoned factors) so
  // the fallback chain below recovers it exactly like a real SVD
  // failure, mirroring the dense GuardedProxNuclear semantics.
  Result<FactoredMatrix> primary = Status::OK();
  bool injected = HandleProxFault(SLAMPRED_FAULT_HIT("svd.prox"), "svd.prox",
                                  q, b, &primary);
  if (!injected) {
    injected = HandleProxFault(SLAMPRED_FAULT_HIT("prox.factored"),
                               "prox.factored", q, b, &primary);
  }
  if (!injected) primary = FactoredProxAttempt(q, b, threshold, SvdOptions{});
  if (primary.ok() && primary.value().IsFinite()) return primary;
  if (!guardrails.enabled) return primary;
  if (!primary.ok() &&
      primary.status().code() != StatusCode::kNotConverged &&
      primary.status().code() != StatusCode::kNumericalError) {
    return primary;
  }

  Status last = primary.ok() ? Status::NumericalError(
                                   "factored prox produced non-finite factors")
                             : primary.status();
  // Same fallback policy as GuardedProxNuclear: bounded retries with a
  // doubled core-SVD sweep budget each attempt.
  SvdOptions svd_options;
  for (int attempt = 0; attempt < guardrails.max_svd_fallbacks; ++attempt) {
    svd_options.max_sweeps *= 2;
    auto fallback = FactoredProxAttempt(q, b, threshold, svd_options);
    if (fallback.ok() && fallback.value().IsFinite()) {
      if (stats != nullptr) ++stats->svd_fallbacks;
      return fallback;
    }
    last = fallback.ok()
               ? Status::NumericalError("fallback factored prox non-finite")
               : fallback.status();
  }
  return last;
}

Result<FactoredMatrix> FactoredApproximation(
    const CsrMatrix& a, const FactoredSolverOptions& options) {
  if (a.rows() == 0 || a.cols() == 0) {
    return Status::InvalidArgument("factored approximation of empty matrix");
  }
  if (options.rank == 0) return Status::InvalidArgument("rank must be positive");
  HalfStepOp op;
  op.z = &a;
  op.sz = 1.0;
  op.n = a.rows();
  const std::size_t sketch = std::min(options.rank + options.oversampling,
                                      std::min(a.rows(), a.cols()));
  Matrix q = RangeFinder(op, sketch, Matrix(), options.power_iterations,
                         options.seed);
  if (q.cols() == 0) return FactoredMatrix::Zero(a.rows(), a.cols());
  // S⁰ = Q·(AᵀQ)ᵀ = Q·Qᵀ·A — the best approximation of A inside the
  // sketched subspace.
  return FactoredMatrix(std::move(q), a.MultiplyTransposeDense(q));
}

Result<FactoredMatrix> GeneralizedForwardBackwardFactored(
    const FactoredObjective& objective, const FactoredMatrix& s0,
    const ForwardBackwardOptions& options,
    const FactoredSolverOptions& factored, std::uint64_t sketch_seed,
    Matrix* warm_basis, IterationTrace* trace, RecoveryStats* recovery) {
  SLAMPRED_CHECK(s0.rows() == objective.a.rows() &&
                 s0.cols() == objective.a.cols())
      << "initial point shape mismatch";
  if (objective.loss != LossKind::kSquaredFrobenius) {
    return Status::InvalidArgument(
        "the factored backend supports the squared-Frobenius loss only "
        "(the squared-hinge gradient is entry-wise nonlinear)");
  }

  const GuardrailOptions& guard = options.guardrails;
  const std::size_t n = objective.a.rows();
  const std::size_t sketch =
      std::min(factored.rank + factored.oversampling, n);
  // Z = 2A + G is constant across the whole inner loop.
  const CsrMatrix z = objective.a.Scaled(2.0).Add(objective.grad_v);

  FactoredMatrix s = s0;
  double theta = options.theta;
  int recoveries = 0;
  double best_change = std::numeric_limits<double>::infinity();
  FactoredMatrix best_s = s;
  int divergence_streak = 0;
  bool budget_exhausted = false;
  Matrix basis = warm_basis != nullptr ? *warm_basis : Matrix();

  const auto back_off = [&](int* counter) {
    ++recoveries;
    if (counter != nullptr) ++*counter;
    theta *= guard.backoff_factor;
    return recoveries <= guard.max_recoveries;
  };

  bool converged = false;
  int it = 0;
  for (; it < options.max_iterations && !converged; ++it) {
    const FactoredMatrix prev = s;

    // Forward step as an implicit operator: S_half = (1−2θ)·S + θ·Z,
    // minus the linearised ℓ₁ term −θγ·1·1ᵀ when γ > 0.
    HalfStepOp op;
    op.s = &s;
    op.su = 1.0 - 2.0 * theta;
    op.z = &z;
    op.sz = theta;
    op.oc = objective.gamma > 0.0 ? -theta * objective.gamma : 0.0;
    op.n = n;

    const int power = basis.cols() > 0 ? factored.warm_power_iterations
                                       : factored.power_iterations;
    // Vary the fresh-column draw deterministically per step so a
    // dropped subspace direction is not re-proposed forever.
    const std::uint64_t step_seed =
        factored.seed ^ (sketch_seed + 0x9e3779b97f4a7c15ULL *
                                           static_cast<std::uint64_t>(it + 1));
    Matrix q = RangeFinder(op, sketch, basis, power, step_seed);
    Matrix b = op.Apply(q, /*transpose=*/true);
    ApplyGradStepFault(&b);

    // Guardrail: a non-finite half step never reaches the prox.
    const auto half_finite = [&] {
      for (double x : q.data()) {
        if (!std::isfinite(x)) return false;
      }
      for (double x : b.data()) {
        if (!std::isfinite(x)) return false;
      }
      return true;
    };
    if (guard.enabled && !half_finite()) {
      s = prev;
      if (!back_off(recovery != nullptr ? &recovery->nan_rollbacks
                                        : nullptr)) {
        budget_exhausted = true;
        break;
      }
      continue;
    }

    if (objective.tau > 0.0) {
      auto prox = GuardedFactoredProxNuclear(q, b, theta * objective.tau,
                                             guard, recovery);
      if (!prox.ok()) {
        if (!guard.enabled) return prox.status();
        s = prev;
        if (!back_off(recovery != nullptr ? &recovery->prox_rollbacks
                                          : nullptr)) {
          budget_exhausted = true;
          break;
        }
        continue;
      }
      s = std::move(prox).value();
    } else {
      // No nuclear term: the sketched half step is the new iterate.
      s = FactoredMatrix(std::move(q), std::move(b));
    }

    if (options.keep_symmetric && s.rows() == s.cols()) {
      s = s.Symmetrized();
    }

    if (guard.enabled && !s.IsFinite()) {
      s = prev;
      if (!back_off(recovery != nullptr ? &recovery->nan_rollbacks
                                        : nullptr)) {
        budget_exhausted = true;
        break;
      }
      continue;
    }

    const double change = s.DistanceFrobenius(prev);
    const double scale = std::max(1.0, s.FrobeniusNorm());

    if (guard.enabled) {
      if (change < best_change) {
        best_change = change;
        best_s = s;
        divergence_streak = 0;
      } else if (change >
                 guard.divergence_factor * std::max(best_change, 1e-12)) {
        if (++divergence_streak >= guard.divergence_window) {
          s = best_s;
          divergence_streak = 0;
          if (!back_off(recovery != nullptr
                            ? &recovery->divergence_backoffs
                            : nullptr)) {
            budget_exhausted = true;
            break;
          }
          continue;
        }
      }
    }

    converged = change / scale < options.tol;

    // Subspace reuse: the accepted iterate's column space seeds the
    // next range find.
    basis = s.u();

    if (trace != nullptr) {
      trace->s_norm_l1.push_back(s.FrobeniusNorm());
      trace->s_change_l1.push_back(change);
    }
  }

  if (trace != nullptr) {
    trace->converged = converged;
    trace->iterations += it;
  }
  if (warm_basis != nullptr) *warm_basis = std::move(basis);
  if (budget_exhausted) {
    return Status::NotConverged(
        "factored forward-backward recovery budget exhausted after " +
        std::to_string(recoveries) + " recoveries");
  }
  return s;
}

Result<FactoredMatrix> SolveCccpFactored(const FactoredObjective& objective,
                                         const CccpOptions& options,
                                         const FactoredSolverOptions& factored,
                                         CccpTrace* trace) {
  if (objective.loss != LossKind::kSquaredFrobenius) {
    return Status::InvalidArgument(
        "the factored backend supports the squared-Frobenius loss only "
        "(the squared-hinge gradient is entry-wise nonlinear)");
  }
  auto init = FactoredApproximation(objective.a, factored);
  if (!init.ok()) return init.status();

  const GuardrailOptions& guard = options.inner.guardrails;
  FactoredMatrix s = std::move(init).value();
  const double theta0 = options.inner.theta;
  double theta = theta0;
  RecoveryStats local_recovery;
  RecoveryStats* recovery =
      trace != nullptr ? &trace->recovery : &local_recovery;

  // The factored twin of the dense SolverCheckpoint; CccpTrace's dense
  // checkpoint stays invalid in this mode.
  FactoredMatrix checkpoint_s = s;
  Matrix warm_basis;

  int resumes = 0;
  bool converged = false;
  int outer = 0;
  while (outer < options.max_outer_iterations && !converged) {
    const FactoredMatrix prev = s;
    IterationTrace* inner_trace = trace != nullptr ? &trace->steps : nullptr;
    ForwardBackwardOptions inner_options = options.inner;
    inner_options.theta = theta;
    const std::uint64_t round_seed =
        0x2545f4914f6cdd1dULL * static_cast<std::uint64_t>(outer + 1);
    auto inner = GeneralizedForwardBackwardFactored(
        objective, s, inner_options, factored, round_seed, &warm_basis,
        inner_trace, recovery);
    if (!inner.ok()) {
      const StatusCode code = inner.status().code();
      if (guard.enabled && resumes < guard.max_checkpoint_resumes &&
          (code == StatusCode::kNotConverged ||
           code == StatusCode::kNumericalError)) {
        ++resumes;
        ++recovery->checkpoint_resumes;
        theta *= guard.backoff_factor;
        s = checkpoint_s;
        continue;
      }
      return inner.status();
    }
    s = std::move(inner).value();
    // Episodic backoff, exactly as the dense outer loop: a clean round
    // restores the configured step size.
    theta = theta0;

    const double change = s.DistanceFrobenius(prev);
    const double scale = std::max(1.0, s.FrobeniusNorm());
    converged = change / scale < options.outer_tol;
    if (trace != nullptr) trace->outer_change_l1.push_back(change);

    ++outer;
    checkpoint_s = s;
  }
  if (trace != nullptr) {
    trace->outer_iterations = outer;
    trace->converged = converged;
  }
  return s;
}

}  // namespace slampred
