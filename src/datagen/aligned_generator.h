// Top-level generator: samples a full AlignedNetworks bundle (target +
// K sources + anchor links) from one latent population. This is the
// repo's stand-in for the paper's crawled Foursquare/Twitter dataset.

#ifndef SLAMPRED_DATAGEN_ALIGNED_GENERATOR_H_
#define SLAMPRED_DATAGEN_ALIGNED_GENERATOR_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "datagen/attribute_generator.h"
#include "datagen/community_model.h"
#include "graph/aligned_networks.h"
#include "util/status.h"

namespace slampred {

/// Per-network structural realisation parameters.
struct NetworkRealizationConfig {
  std::string name = "network";
  /// Fraction of the persona population present in this network.
  double coverage = 0.85;
  /// Link probability between same-community member pairs (scaled by the
  /// pair's activity product).
  double p_intra = 0.10;
  /// Link probability between different-community pairs.
  double p_inter = 0.004;
  AttributeConfig attributes;
};

/// Configuration of a full aligned-network bundle.
struct AlignedGeneratorConfig {
  CommunityModelConfig population;
  NetworkRealizationConfig target;
  std::vector<NetworkRealizationConfig> sources = {
      NetworkRealizationConfig{.name = "source",
                               .coverage = 0.85,
                               .p_intra = 0.14,
                               .p_inter = 0.005,
                               .attributes = {.domain_shift = 0.5}}};
  std::uint64_t seed = 42;
};

/// A generated bundle plus the persona maps needed by tests and oracles.
struct GeneratedAligned {
  AlignedNetworks networks;
  CommunityModel model;
  /// personas_target[i] = persona index behind target user i.
  std::vector<std::size_t> personas_target;
  /// personas_source[k][i] = persona index behind source-k user i.
  std::vector<std::vector<std::size_t>> personas_sources;
};

/// Samples a bundle: one latent population; per network, a covered
/// subset of personas becomes its users, friend links are drawn from a
/// degree-corrected stochastic block model on the shared communities,
/// and attributes are generated with each network's domain shift. Anchor
/// links pair the accounts of personas present in both the target and a
/// source. Deterministic in config.seed.
Result<GeneratedAligned> GenerateAligned(const AlignedGeneratorConfig& config);

/// A small default config tuned so the full Table II experiment runs in
/// seconds on one core while preserving the paper's qualitative shapes.
AlignedGeneratorConfig DefaultExperimentConfig(std::uint64_t seed = 42);

}  // namespace slampred

#endif  // SLAMPRED_DATAGEN_ALIGNED_GENERATOR_H_
