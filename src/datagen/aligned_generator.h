// Top-level generator: samples a full AlignedNetworks bundle (target +
// K sources + anchor links) from one latent population. This is the
// repo's stand-in for the paper's crawled Foursquare/Twitter dataset.

#ifndef SLAMPRED_DATAGEN_ALIGNED_GENERATOR_H_
#define SLAMPRED_DATAGEN_ALIGNED_GENERATOR_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "datagen/attribute_generator.h"
#include "datagen/community_model.h"
#include "graph/aligned_networks.h"
#include "util/status.h"

namespace slampred {

/// Per-network structural realisation parameters.
struct NetworkRealizationConfig {
  std::string name = "network";
  /// Fraction of the persona population present in this network.
  double coverage = 0.85;
  /// Link probability between same-community member pairs (scaled by the
  /// pair's activity product).
  double p_intra = 0.10;
  /// Link probability between different-community pairs.
  double p_inter = 0.004;
  AttributeConfig attributes;
};

/// Configuration of a full aligned-network bundle.
struct AlignedGeneratorConfig {
  CommunityModelConfig population;
  NetworkRealizationConfig target;
  std::vector<NetworkRealizationConfig> sources = {
      NetworkRealizationConfig{.name = "source",
                               .coverage = 0.85,
                               .p_intra = 0.14,
                               .p_inter = 0.005,
                               .attributes = {.domain_shift = 0.5}}};
  std::uint64_t seed = 42;
};

/// A generated bundle plus the persona maps needed by tests and oracles.
struct GeneratedAligned {
  AlignedNetworks networks;
  CommunityModel model;
  /// personas_target[i] = persona index behind target user i.
  std::vector<std::size_t> personas_target;
  /// personas_source[k][i] = persona index behind source-k user i.
  std::vector<std::vector<std::size_t>> personas_sources;
};

/// Samples a bundle: one latent population; per network, a covered
/// subset of personas becomes its users, friend links are drawn from a
/// degree-corrected stochastic block model on the shared communities,
/// and attributes are generated with each network's domain shift. Anchor
/// links pair the accounts of personas present in both the target and a
/// source. Deterministic in config.seed.
Result<GeneratedAligned> GenerateAligned(const AlignedGeneratorConfig& config);

/// Structural scale-out generator knobs: n >= 100k users with power-law
/// degrees, built edge-by-edge in O(nodes + edges) memory — no persona
/// population, no attributes, and never a dense n x n pass (the
/// all-pairs loop of GenerateAligned is quadratic and tops out around a
/// few thousand users).
struct ScaleOutConfig {
  std::size_t num_users = 100000;
  /// Latent communities; users are assigned in contiguous blocks.
  std::size_t num_communities = 64;
  /// Expected mean friend degree of the target network.
  double avg_degree = 8.0;
  /// Tail exponent of the Pareto degree-weight distribution (> 1;
  /// larger = lighter tail, 2.5 matches typical social graphs).
  double power_law_exponent = 2.5;
  /// Fraction of edges drawn across community boundaries.
  double inter_community_fraction = 0.05;
  /// Fraction of target users that also exist in the source network.
  double source_coverage = 0.7;
  /// Source mean degree relative to the target (sources are denser).
  double source_degree_scale = 1.25;
  std::uint64_t seed = 42;
};

/// A scale-out bundle: target + one source + anchors over the covered
/// subset, plus the latent community assignment for evaluation.
struct GeneratedScaleOut {
  AlignedNetworks networks;
  /// community_of_target[u] = latent community behind target user u.
  /// Communities occupy contiguous user-id ranges, which makes this the
  /// natural ground truth for partitioner quality checks.
  std::vector<std::uint32_t> community_of_target;
};

/// Samples a structural-only aligned bundle at scale: per-user Pareto
/// degree weights, Chung-Lu style expected-edge-count sampling with
/// weight-proportional endpoint draws restricted to a community (intra)
/// or crossing communities (inter). The source network covers a random
/// `source_coverage` subset of target users; every covered user is
/// anchored. Deterministic in config.seed; runs in O(nodes + edges).
Result<GeneratedScaleOut> GenerateAlignedScaleOut(const ScaleOutConfig& config);

/// A small default config tuned so the full Table II experiment runs in
/// seconds on one core while preserving the paper's qualitative shapes.
AlignedGeneratorConfig DefaultExperimentConfig(std::uint64_t seed = 42);

}  // namespace slampred

#endif  // SLAMPRED_DATAGEN_ALIGNED_GENERATOR_H_
