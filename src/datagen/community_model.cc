#include "datagen/community_model.h"

#include <cmath>

#include "util/logging.h"

namespace slampred {

namespace {

// Samples a Dirichlet-like sharpened distribution: a community-specific
// base pattern plus individual noise, normalised to a probability vector.
// `anchor` picks which slice of the support the community prefers so
// distinct communities get distinct modes.
std::vector<double> SampleProfile(std::size_t dim, std::size_t community,
                                  std::size_t num_communities,
                                  double sharpness, Rng& rng) {
  std::vector<double> weights(dim);
  // Community c prefers the contiguous band [c*dim/C, (c+1)*dim/C).
  const double band = static_cast<double>(dim) /
                      static_cast<double>(num_communities);
  const double center = (static_cast<double>(community) + 0.5) * band;
  double total = 0.0;
  for (std::size_t i = 0; i < dim; ++i) {
    // Circular distance to the community's band center.
    double dist = std::fabs(static_cast<double>(i) - center);
    dist = std::min(dist, static_cast<double>(dim) - dist);
    const double base = std::exp(-sharpness * dist / static_cast<double>(dim));
    // Multiplicative individual noise keeps weights positive.
    const double noise = std::exp(0.5 * rng.NextGaussian());
    weights[i] = base * noise + 1e-4;
    total += weights[i];
  }
  for (double& w : weights) w /= total;
  return weights;
}

}  // namespace

Result<CommunityModel> CommunityModel::Sample(
    const CommunityModelConfig& config, Rng& rng) {
  if (config.num_personas == 0 || config.num_communities == 0) {
    return Status::InvalidArgument("population and communities must be > 0");
  }
  if (config.num_communities > config.num_personas) {
    return Status::InvalidArgument("more communities than personas");
  }
  if (config.vocab_size == 0 || config.num_locations == 0 ||
      config.num_time_bins == 0) {
    return Status::InvalidArgument("attribute universes must be non-empty");
  }

  CommunityModel model;
  model.config_ = config;
  model.personas_.reserve(config.num_personas);
  for (std::size_t i = 0; i < config.num_personas; ++i) {
    Persona p;
    // Round-robin base assignment keeps community sizes balanced, with a
    // random remainder so sizes are not perfectly equal.
    p.community = i < config.num_communities
                      ? i
                      : static_cast<std::size_t>(
                            rng.NextBounded(config.num_communities));
    p.activity = std::exp(config.activity_sigma * rng.NextGaussian() -
                          0.5 * config.activity_sigma *
                              config.activity_sigma);
    p.topic = SampleProfile(config.vocab_size, p.community,
                            config.num_communities,
                            config.profile_sharpness, rng);
    p.location = SampleProfile(config.num_locations, p.community,
                               config.num_communities,
                               config.profile_sharpness, rng);
    p.time_profile = SampleProfile(config.num_time_bins, p.community,
                                   config.num_communities,
                                   config.profile_sharpness, rng);
    model.personas_.push_back(std::move(p));
  }
  return model;
}

bool CommunityModel::SameCommunity(std::size_t i, std::size_t j) const {
  SLAMPRED_CHECK(i < personas_.size() && j < personas_.size());
  return personas_[i].community == personas_[j].community;
}

std::vector<std::size_t> CommunityModel::CommunitySizes() const {
  std::vector<std::size_t> sizes(config_.num_communities, 0);
  for (const Persona& p : personas_) ++sizes[p.community];
  return sizes;
}

}  // namespace slampred
