#include "datagen/attribute_generator.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace slampred {

namespace {

// A random permutation acting as the network-specific channel for one
// attribute universe.
std::vector<std::size_t> RandomPermutation(std::size_t n, Rng& rng) {
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  rng.Shuffle(perm);
  return perm;
}

// Emits `index` through the shift channel with probability `shift`.
std::size_t MaybeShift(std::size_t index,
                       const std::vector<std::size_t>& channel, double shift,
                       Rng& rng) {
  return rng.NextBernoulli(shift) ? channel[index] : index;
}

}  // namespace

void GenerateAttributes(const CommunityModel& model,
                        const std::vector<std::size_t>& personas,
                        const AttributeConfig& config, Rng& rng,
                        HeterogeneousNetwork& network) {
  SLAMPRED_CHECK(personas.size() == network.NumUsers())
      << "persona map must cover every user";
  const CommunityModelConfig& mc = model.config();

  // Attribute universes are created up front so indices are stable.
  if (network.NumNodes(NodeType::kWord) == 0) {
    network.AddNodes(NodeType::kWord, mc.vocab_size);
  }
  if (network.NumNodes(NodeType::kLocation) == 0) {
    network.AddNodes(NodeType::kLocation, mc.num_locations);
  }
  if (network.NumNodes(NodeType::kTimestamp) == 0) {
    network.AddNodes(NodeType::kTimestamp, mc.num_time_bins);
  }

  // One channel per attribute universe per network realisation.
  const auto word_channel = RandomPermutation(mc.vocab_size, rng);
  const auto loc_channel = RandomPermutation(mc.num_locations, rng);
  const auto time_channel = RandomPermutation(mc.num_time_bins, rng);

  for (std::size_t user = 0; user < network.NumUsers(); ++user) {
    const Persona& persona = model.persona(personas[user]);
    const int num_posts =
        rng.NextPoisson(config.posts_per_user_mean * persona.activity);
    for (int p = 0; p < num_posts; ++p) {
      const std::size_t post = network.AddNodes(NodeType::kPost, 1);
      SLAMPRED_CHECK(
          network.AddEdge(EdgeType::kWrite, user, post).ok());

      for (std::size_t w = 0; w < config.words_per_post; ++w) {
        const std::size_t word = MaybeShift(rng.NextWeighted(persona.topic),
                                            word_channel,
                                            config.domain_shift, rng);
        network.AddEdge(EdgeType::kHasWord, post, word);
      }

      const std::size_t time_bin =
          MaybeShift(rng.NextWeighted(persona.time_profile), time_channel,
                     config.domain_shift, rng);
      network.AddEdge(EdgeType::kPostedAt, post, time_bin);

      if (rng.NextBernoulli(config.checkin_prob)) {
        const std::size_t loc =
            MaybeShift(rng.NextWeighted(persona.location), loc_channel,
                       config.domain_shift, rng);
        network.AddEdge(EdgeType::kCheckin, post, loc);
      }
    }
  }
}

}  // namespace slampred
