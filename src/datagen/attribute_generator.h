// Generates the heterogeneous attribute layers (posts, words, timestamps,
// location checkins) of one network realisation, with a controllable
// *domain shift* relative to the shared latent profiles — the shift is
// what the paper's feature-space projection has to accommodate.

#ifndef SLAMPRED_DATAGEN_ATTRIBUTE_GENERATOR_H_
#define SLAMPRED_DATAGEN_ATTRIBUTE_GENERATOR_H_

#include <cstddef>
#include <vector>

#include "datagen/community_model.h"
#include "graph/heterogeneous_network.h"
#include "util/random.h"

namespace slampred {

/// Per-network attribute realisation parameters.
struct AttributeConfig {
  double posts_per_user_mean = 5.0;  ///< Poisson mean posts per user.
  std::size_t words_per_post = 4;    ///< Words attached to each post.
  double checkin_prob = 0.8;         ///< Probability a post has a checkin.
  /// Domain shift in [0, 1]: 0 = the network samples attributes straight
  /// from the persona profiles; 1 = profiles are fully permuted/blended
  /// through a network-specific channel, so raw feature distributions
  /// differ maximally across networks while community signal survives.
  double domain_shift = 0.4;
};

/// Samples posts + word/timestamp/location attachments for every user of
/// `network` (users must already exist; personas[i] maps user i to its
/// persona in `model`). Adds post/word/timestamp/location nodes and the
/// write/has_word/posted_at/checkin edges.
///
/// The domain shift is realised as a network-specific random rotation of
/// the attribute supports: word w is emitted as shift_map[w] with
/// probability `domain_shift` (and unchanged otherwise), and likewise for
/// locations and time bins. Community-level co-occurrence is preserved
/// (all members of a community are shifted the same way within one
/// network), so the signal remains recoverable after adaptation.
void GenerateAttributes(const CommunityModel& model,
                        const std::vector<std::size_t>& personas,
                        const AttributeConfig& config, Rng& rng,
                        HeterogeneousNetwork& network);

}  // namespace slampred

#endif  // SLAMPRED_DATAGEN_ATTRIBUTE_GENERATOR_H_
