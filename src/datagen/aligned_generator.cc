#include "datagen/aligned_generator.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace slampred {

namespace {

// Samples which personas appear in a network and realises its friend
// links from a degree-corrected SBM on the shared communities.
HeterogeneousNetwork RealizeStructure(const CommunityModel& model,
                                      const NetworkRealizationConfig& config,
                                      Rng& rng,
                                      std::vector<std::size_t>* personas) {
  const std::size_t population = model.num_personas();
  const std::size_t users = std::max<std::size_t>(
      2, static_cast<std::size_t>(
             std::round(config.coverage * static_cast<double>(population))));
  *personas = rng.SampleWithoutReplacement(population, users);
  std::sort(personas->begin(), personas->end());

  HeterogeneousNetwork network(config.name);
  network.AddNodes(NodeType::kUser, users);
  for (std::size_t i = 0; i < users; ++i) {
    const Persona& pi = model.persona((*personas)[i]);
    for (std::size_t j = i + 1; j < users; ++j) {
      const Persona& pj = model.persona((*personas)[j]);
      const bool same = pi.community == pj.community;
      double prob = (same ? config.p_intra : config.p_inter) * pi.activity *
                    pj.activity;
      prob = std::min(prob, 0.95);
      if (rng.NextBernoulli(prob)) {
        SLAMPRED_CHECK(network.AddEdge(EdgeType::kFriend, i, j).ok());
      }
    }
  }
  return network;
}

}  // namespace

Result<GeneratedAligned> GenerateAligned(
    const AlignedGeneratorConfig& config) {
  Rng root(config.seed);
  Rng population_rng = root.Fork(1);
  auto model = CommunityModel::Sample(config.population, population_rng);
  if (!model.ok()) return model.status();

  GeneratedAligned out{
      AlignedNetworks(HeterogeneousNetwork(config.target.name)),
      std::move(model).value(),
      {},
      {}};

  // Target realisation.
  Rng target_rng = root.Fork(2);
  HeterogeneousNetwork target = RealizeStructure(
      out.model, config.target, target_rng, &out.personas_target);
  GenerateAttributes(out.model, out.personas_target,
                     config.target.attributes, target_rng, target);
  out.networks = AlignedNetworks(std::move(target));

  // Source realisations + anchors.
  for (std::size_t k = 0; k < config.sources.size(); ++k) {
    Rng source_rng = root.Fork(100 + k);
    std::vector<std::size_t> personas_source;
    HeterogeneousNetwork source = RealizeStructure(
        out.model, config.sources[k], source_rng, &personas_source);
    GenerateAttributes(out.model, personas_source,
                       config.sources[k].attributes, source_rng, source);

    // Anchor links pair accounts backed by the same persona.
    AnchorLinks anchors(out.networks.target().NumUsers(), source.NumUsers());
    for (std::size_t ti = 0; ti < out.personas_target.size(); ++ti) {
      const auto it = std::lower_bound(personas_source.begin(),
                                       personas_source.end(),
                                       out.personas_target[ti]);
      if (it != personas_source.end() && *it == out.personas_target[ti]) {
        const std::size_t si =
            static_cast<std::size_t>(it - personas_source.begin());
        SLAMPRED_CHECK(anchors.Add(ti, si).ok());
      }
    }
    out.networks.AddSource(std::move(source), std::move(anchors));
    out.personas_sources.push_back(std::move(personas_source));
  }
  return out;
}

AlignedGeneratorConfig DefaultExperimentConfig(std::uint64_t seed) {
  AlignedGeneratorConfig config;
  config.seed = seed;
  config.population.num_personas = 220;
  config.population.num_communities = 8;
  config.population.vocab_size = 120;
  config.population.num_locations = 32;
  config.population.num_time_bins = 24;
  config.population.profile_sharpness = 14.0;

  // The target is information-sparse (few links, few posts) — the
  // regime the paper motivates transfer for; the source is dense and
  // attribute-rich but domain-shifted.
  config.target.name = "twitter-like";
  config.target.coverage = 0.72;
  config.target.p_intra = 0.09;
  config.target.p_inter = 0.005;
  config.target.attributes.posts_per_user_mean = 1.2;
  config.target.attributes.domain_shift = 0.0;  // Target is the reference.

  config.sources.clear();
  NetworkRealizationConfig source;
  source.name = "foursquare-like";
  source.coverage = 0.72;
  source.p_intra = 0.32;
  source.p_inter = 0.007;
  source.attributes.posts_per_user_mean = 8.0;
  source.attributes.checkin_prob = 1.0;  // Foursquare posts all carry checkins.
  source.attributes.domain_shift = 0.45;
  config.sources.push_back(source);
  return config;
}

}  // namespace slampred
