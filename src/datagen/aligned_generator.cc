#include "datagen/aligned_generator.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace slampred {

namespace {

// Samples which personas appear in a network and realises its friend
// links from a degree-corrected SBM on the shared communities.
HeterogeneousNetwork RealizeStructure(const CommunityModel& model,
                                      const NetworkRealizationConfig& config,
                                      Rng& rng,
                                      std::vector<std::size_t>* personas) {
  const std::size_t population = model.num_personas();
  const std::size_t users = std::max<std::size_t>(
      2, static_cast<std::size_t>(
             std::round(config.coverage * static_cast<double>(population))));
  *personas = rng.SampleWithoutReplacement(population, users);
  std::sort(personas->begin(), personas->end());

  HeterogeneousNetwork network(config.name);
  network.AddNodes(NodeType::kUser, users);
  for (std::size_t i = 0; i < users; ++i) {
    const Persona& pi = model.persona((*personas)[i]);
    for (std::size_t j = i + 1; j < users; ++j) {
      const Persona& pj = model.persona((*personas)[j]);
      const bool same = pi.community == pj.community;
      double prob = (same ? config.p_intra : config.p_inter) * pi.activity *
                    pj.activity;
      prob = std::min(prob, 0.95);
      if (rng.NextBernoulli(prob)) {
        SLAMPRED_CHECK(network.AddEdge(EdgeType::kFriend, i, j).ok());
      }
    }
  }
  return network;
}

// One Chung-Lu style structural realisation at scale. `community_start`
// holds num_communities + 1 prefix offsets of the contiguous community
// blocks over the network's local user ids (blocks may be empty).
HeterogeneousNetwork RealizeScaleOutStructure(
    const std::string& name, const std::vector<std::size_t>& community_start,
    double avg_degree, double power_law_exponent,
    double inter_community_fraction, Rng& rng) {
  const std::size_t n = community_start.back();
  const std::size_t num_communities = community_start.size() - 1;
  HeterogeneousNetwork network(name);
  network.AddNodes(NodeType::kUser, n);

  // Per-user Pareto(x_m = 1, shape = exponent - 1) degree weights held
  // as a running prefix sum: a weight-proportional endpoint draw is one
  // binary search, and restricting the draw to a community block is the
  // same search over that block's prefix range.
  const double shape = power_law_exponent - 1.0;
  std::vector<double> prefix(n + 1, 0.0);
  for (std::size_t u = 0; u < n; ++u) {
    prefix[u + 1] =
        prefix[u] + std::pow(1.0 - rng.NextDouble(), -1.0 / shape);
  }
  const auto draw_in = [&](std::size_t lo, std::size_t hi) {
    const double x = prefix[lo] + rng.NextDouble() * (prefix[hi] - prefix[lo]);
    const auto it = std::upper_bound(prefix.begin() + lo + 1,
                                     prefix.begin() + hi + 1, x);
    const auto u = static_cast<std::size_t>(it - prefix.begin()) - 1;
    return std::min(u, hi - 1);  // Guards the x == prefix[hi] rounding edge.
  };
  const auto community_of = [&](std::size_t u) {
    const auto it = std::upper_bound(community_start.begin() + 1,
                                     community_start.end(), u);
    return static_cast<std::size_t>(it - community_start.begin()) - 1;
  };

  // Intra edges land in a community with probability proportional to
  // its squared weight mass — the Chung-Lu expected within-block edge
  // count. Empty blocks carry zero mass and are never selected.
  std::vector<double> mass2(num_communities + 1, 0.0);
  for (std::size_t c = 0; c < num_communities; ++c) {
    const double m =
        prefix[community_start[c + 1]] - prefix[community_start[c]];
    mass2[c + 1] = mass2[c] + m * m;
  }

  const double expected_edges = avg_degree * static_cast<double>(n) / 2.0;
  const auto num_intra = static_cast<std::size_t>(
      std::llround(expected_edges * (1.0 - inter_community_fraction)));
  const auto num_inter = static_cast<std::size_t>(
      std::llround(expected_edges * inter_community_fraction));

  for (std::size_t e = 0; e < num_intra; ++e) {
    const double x = rng.NextDouble() * mass2.back();
    std::size_t c = static_cast<std::size_t>(
        std::upper_bound(mass2.begin() + 1, mass2.end(), x) - mass2.begin());
    c = std::min(c - 1, num_communities - 1);
    if (community_start[c + 1] == community_start[c]) continue;
    const std::size_t u = draw_in(community_start[c], community_start[c + 1]);
    const std::size_t v = draw_in(community_start[c], community_start[c + 1]);
    if (u == v) continue;  // Collisions under-deliver slightly; accepted.
    SLAMPRED_CHECK(network.AddEdge(EdgeType::kFriend, u, v).ok());
  }
  for (std::size_t e = 0; e < num_inter; ++e) {
    const std::size_t u = draw_in(0, n);
    const std::size_t v = draw_in(0, n);
    // Same-community draws are already budgeted by the intra pass.
    if (u == v || community_of(u) == community_of(v)) continue;
    SLAMPRED_CHECK(network.AddEdge(EdgeType::kFriend, u, v).ok());
  }
  return network;
}

}  // namespace

Result<GeneratedAligned> GenerateAligned(
    const AlignedGeneratorConfig& config) {
  Rng root(config.seed);
  Rng population_rng = root.Fork(1);
  auto model = CommunityModel::Sample(config.population, population_rng);
  if (!model.ok()) return model.status();

  GeneratedAligned out{
      AlignedNetworks(HeterogeneousNetwork(config.target.name)),
      std::move(model).value(),
      {},
      {}};

  // Target realisation.
  Rng target_rng = root.Fork(2);
  HeterogeneousNetwork target = RealizeStructure(
      out.model, config.target, target_rng, &out.personas_target);
  GenerateAttributes(out.model, out.personas_target,
                     config.target.attributes, target_rng, target);
  out.networks = AlignedNetworks(std::move(target));

  // Source realisations + anchors.
  for (std::size_t k = 0; k < config.sources.size(); ++k) {
    Rng source_rng = root.Fork(100 + k);
    std::vector<std::size_t> personas_source;
    HeterogeneousNetwork source = RealizeStructure(
        out.model, config.sources[k], source_rng, &personas_source);
    GenerateAttributes(out.model, personas_source,
                       config.sources[k].attributes, source_rng, source);

    // Anchor links pair accounts backed by the same persona.
    AnchorLinks anchors(out.networks.target().NumUsers(), source.NumUsers());
    for (std::size_t ti = 0; ti < out.personas_target.size(); ++ti) {
      const auto it = std::lower_bound(personas_source.begin(),
                                       personas_source.end(),
                                       out.personas_target[ti]);
      if (it != personas_source.end() && *it == out.personas_target[ti]) {
        const std::size_t si =
            static_cast<std::size_t>(it - personas_source.begin());
        SLAMPRED_CHECK(anchors.Add(ti, si).ok());
      }
    }
    out.networks.AddSource(std::move(source), std::move(anchors));
    out.personas_sources.push_back(std::move(personas_source));
  }
  return out;
}

Result<GeneratedScaleOut> GenerateAlignedScaleOut(
    const ScaleOutConfig& config) {
  if (config.num_users < 2) {
    return Status::InvalidArgument("scale-out generation needs >= 2 users");
  }
  if (config.num_communities == 0 ||
      config.num_communities > config.num_users) {
    return Status::InvalidArgument(
        "num_communities must be in [1, num_users]");
  }
  if (!(config.avg_degree > 0.0)) {
    return Status::InvalidArgument("avg_degree must be positive");
  }
  if (!(config.power_law_exponent > 1.0)) {
    return Status::InvalidArgument("power_law_exponent must exceed 1");
  }
  if (config.inter_community_fraction < 0.0 ||
      config.inter_community_fraction > 1.0) {
    return Status::InvalidArgument(
        "inter_community_fraction must be in [0, 1]");
  }
  if (!(config.source_coverage > 0.0) || config.source_coverage > 1.0) {
    return Status::InvalidArgument("source_coverage must be in (0, 1]");
  }
  if (!(config.source_degree_scale > 0.0)) {
    return Status::InvalidArgument("source_degree_scale must be positive");
  }

  const std::size_t n = config.num_users;
  const std::size_t num_communities = config.num_communities;

  // Contiguous community blocks over the target ids.
  std::vector<std::size_t> target_start(num_communities + 1, 0);
  for (std::size_t c = 0; c <= num_communities; ++c) {
    target_start[c] = c * n / num_communities;
  }
  std::vector<std::uint32_t> community_of(n);
  for (std::size_t c = 0; c < num_communities; ++c) {
    for (std::size_t u = target_start[c]; u < target_start[c + 1]; ++u) {
      community_of[u] = static_cast<std::uint32_t>(c);
    }
  }

  // Same fork discipline as GenerateAligned: 2 = target, 100 = source.
  Rng root(config.seed);
  Rng target_rng = root.Fork(2);
  HeterogeneousNetwork target = RealizeScaleOutStructure(
      "target-scaleout", target_start, config.avg_degree,
      config.power_law_exponent, config.inter_community_fraction, target_rng);

  GeneratedScaleOut out{AlignedNetworks(std::move(target)),
                        std::move(community_of)};

  // The source covers a sorted random subset of target users; sorting
  // keeps the community blocks contiguous in source-local ids, so the
  // same realiser applies with recomputed block offsets.
  Rng source_rng = root.Fork(100);
  const std::size_t covered_count = std::min(
      n, std::max<std::size_t>(
             2, static_cast<std::size_t>(std::round(
                    config.source_coverage * static_cast<double>(n)))));
  std::vector<std::size_t> covered =
      source_rng.SampleWithoutReplacement(n, covered_count);
  std::sort(covered.begin(), covered.end());

  std::vector<std::size_t> source_start(num_communities + 1, 0);
  for (const std::size_t t : covered) {
    ++source_start[out.community_of_target[t] + 1];
  }
  for (std::size_t c = 0; c < num_communities; ++c) {
    source_start[c + 1] += source_start[c];
  }
  HeterogeneousNetwork source = RealizeScaleOutStructure(
      "source-scaleout", source_start,
      config.avg_degree * config.source_degree_scale,
      config.power_law_exponent, config.inter_community_fraction, source_rng);

  // Every covered user is anchored — the scale-out bundle exercises
  // transfer plumbing, not anchor sparsity.
  AnchorLinks anchors(n, covered.size());
  for (std::size_t si = 0; si < covered.size(); ++si) {
    SLAMPRED_CHECK(anchors.Add(covered[si], si).ok());
  }
  out.networks.AddSource(std::move(source), std::move(anchors));
  return out;
}

AlignedGeneratorConfig DefaultExperimentConfig(std::uint64_t seed) {
  AlignedGeneratorConfig config;
  config.seed = seed;
  config.population.num_personas = 220;
  config.population.num_communities = 8;
  config.population.vocab_size = 120;
  config.population.num_locations = 32;
  config.population.num_time_bins = 24;
  config.population.profile_sharpness = 14.0;

  // The target is information-sparse (few links, few posts) — the
  // regime the paper motivates transfer for; the source is dense and
  // attribute-rich but domain-shifted.
  config.target.name = "twitter-like";
  config.target.coverage = 0.72;
  config.target.p_intra = 0.09;
  config.target.p_inter = 0.005;
  config.target.attributes.posts_per_user_mean = 1.2;
  config.target.attributes.domain_shift = 0.0;  // Target is the reference.

  config.sources.clear();
  NetworkRealizationConfig source;
  source.name = "foursquare-like";
  source.coverage = 0.72;
  source.p_intra = 0.32;
  source.p_inter = 0.007;
  source.attributes.posts_per_user_mean = 8.0;
  source.attributes.checkin_prob = 1.0;  // Foursquare posts all carry checkins.
  source.attributes.domain_shift = 0.45;
  config.sources.push_back(source);
  return config;
}

}  // namespace slampred
