// Latent persona/community model shared by all aligned networks.
//
// The paper evaluates on crawled Foursquare + Twitter data that is not
// redistributable; we substitute a seeded generative model (see
// DESIGN.md). A fixed population of *personas* carries everything that
// is network-independent: a community assignment (the source of the
// low-rank, densely-clustered structure the paper exploits), an activity
// level (degree heterogeneity), and latent attribute profiles (topics
// over words, location preferences, diurnal activity). Each network then
// *realises* a noisy, domain-shifted view of the same personas.

#ifndef SLAMPRED_DATAGEN_COMMUNITY_MODEL_H_
#define SLAMPRED_DATAGEN_COMMUNITY_MODEL_H_

#include <cstddef>
#include <vector>

#include "util/random.h"
#include "util/status.h"

namespace slampred {

/// Configuration of the latent population.
struct CommunityModelConfig {
  std::size_t num_personas = 300;   ///< Global population size.
  std::size_t num_communities = 6;  ///< Latent communities.
  std::size_t vocab_size = 160;     ///< Shared word vocabulary.
  std::size_t num_locations = 40;   ///< Shared location universe.
  std::size_t num_time_bins = 24;   ///< Diurnal activity bins.
  double activity_sigma = 0.6;      ///< Lognormal sigma of activity levels.
  /// Topic concentration: larger = communities have more distinct
  /// word/location/time profiles.
  double profile_sharpness = 8.0;
};

/// One persona's latent state.
struct Persona {
  std::size_t community;            ///< Community assignment.
  double activity;                  ///< Relative sociability (mean 1).
  std::vector<double> topic;        ///< Distribution over words.
  std::vector<double> location;     ///< Distribution over locations.
  std::vector<double> time_profile; ///< Distribution over time bins.
};

/// The sampled latent population. Immutable after construction.
class CommunityModel {
 public:
  /// Samples a population from `config` using `rng`. Fails if the config
  /// is degenerate (zero personas/communities, more communities than
  /// personas).
  static Result<CommunityModel> Sample(const CommunityModelConfig& config,
                                       Rng& rng);

  const CommunityModelConfig& config() const { return config_; }
  std::size_t num_personas() const { return personas_.size(); }
  const Persona& persona(std::size_t i) const { return personas_[i]; }

  /// True iff personas i and j share a community.
  bool SameCommunity(std::size_t i, std::size_t j) const;

  /// Community sizes (length num_communities).
  std::vector<std::size_t> CommunitySizes() const;

 private:
  CommunityModelConfig config_;
  std::vector<Persona> personas_;
};

}  // namespace slampred

#endif  // SLAMPRED_DATAGEN_COMMUNITY_MODEL_H_
