// The paper's unsupervised comparison predictors (Section IV-B2):
// Preferential Attachment, Common Neighbor, and Jaccard's Coefficient.
// Each scores a pair from the observed (training) target graph alone,
// held as a CSR adjacency — degrees are row lengths and neighbor
// intersections walk the sorted column indices, so the scores equal the
// adjacency-list computations exactly (they are integer counts).

#ifndef SLAMPRED_BASELINES_UNSUPERVISED_H_
#define SLAMPRED_BASELINES_UNSUPERVISED_H_

#include <memory>

#include "baselines/link_predictor.h"
#include "graph/social_graph.h"
#include "linalg/csr_matrix.h"

namespace slampred {

/// PA: score(u, v) = |Γ(u)| · |Γ(v)|.
class PaPredictor : public LinkPredictor {
 public:
  explicit PaPredictor(const SocialGraph& graph)
      : adjacency_(graph.AdjacencyCsr()) {}
  std::string name() const override { return "PA"; }
  Result<std::vector<double>> ScorePairs(
      const std::vector<UserPair>& pairs) const override;

 private:
  CsrMatrix adjacency_;
};

/// CN: score(u, v) = |Γ(u) ∩ Γ(v)|.
class CnPredictor : public LinkPredictor {
 public:
  explicit CnPredictor(const SocialGraph& graph)
      : adjacency_(graph.AdjacencyCsr()) {}
  std::string name() const override { return "CN"; }
  Result<std::vector<double>> ScorePairs(
      const std::vector<UserPair>& pairs) const override;

 private:
  CsrMatrix adjacency_;
};

/// JC: score(u, v) = |Γ(u) ∩ Γ(v)| / |Γ(u) ∪ Γ(v)|.
class JcPredictor : public LinkPredictor {
 public:
  explicit JcPredictor(const SocialGraph& graph)
      : adjacency_(graph.AdjacencyCsr()) {}
  std::string name() const override { return "JC"; }
  Result<std::vector<double>> ScorePairs(
      const std::vector<UserPair>& pairs) const override;

 private:
  CsrMatrix adjacency_;
};

}  // namespace slampred

#endif  // SLAMPRED_BASELINES_UNSUPERVISED_H_
