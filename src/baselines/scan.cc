#include "baselines/scan.h"

#include "ml/instance_sampler.h"

namespace slampred {

Scan::Scan(ScanOptions options) : options_(options) {}

Status Scan::Fit(const AlignedNetworks& networks,
                 const SocialGraph& target_structure,
                 const std::vector<SparseTensor3>& raw_tensors,
                 const std::vector<UserPair>& exclude, Rng& rng) {
  if (raw_tensors.size() != networks.num_sources() + 1) {
    return Status::InvalidArgument("need one raw tensor per network");
  }
  networks_ = &networks;
  raw_tensors_ = &raw_tensors;

  const PairTrainingSet training = SamplePairTrainingSet(
      target_structure, options_.max_positives, options_.negative_ratio,
      exclude, rng);
  if (training.pairs.empty()) {
    return Status::FailedPrecondition("no training instances available");
  }

  std::vector<Vector> features = BuildPairFeatureBatch(
      networks, raw_tensors, options_.feature_source, training.pairs);
  scaler_.Fit(features);
  scaler_.TransformInPlace(features);
  return classifier_.Fit(features, training.labels);
}

std::string Scan::name() const {
  switch (options_.feature_source) {
    case FeatureSource::kTargetOnly:
      return "SCAN-T";
    case FeatureSource::kSourceOnly:
      return "SCAN-S";
    case FeatureSource::kBoth:
      return "SCAN";
  }
  return "SCAN";
}

Result<std::vector<double>> Scan::ScorePairs(
    const std::vector<UserPair>& pairs) const {
  if (!classifier_.fitted()) {
    return Status::FailedPrecondition("SCAN scored before Fit");
  }
  std::vector<double> scores;
  scores.reserve(pairs.size());
  for (const UserPair& pair : pairs) {
    const Vector features = scaler_.Transform(BuildPairFeatures(
        *networks_, *raw_tensors_, options_.feature_source, pair));
    scores.push_back(classifier_.PredictProbability(features));
  }
  return scores;
}

}  // namespace slampred
