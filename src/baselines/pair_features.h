// Pair-feature assembly shared by the SCAN and PL baselines: the raw
// per-network intimacy feature fibres, concatenated *without* any domain
// adaptation (these methods are the paper's no-adaptation comparison
// points). Source fibres reach target pairs only through anchor links;
// pairs with an unanchored endpoint get zero source features.

#ifndef SLAMPRED_BASELINES_PAIR_FEATURES_H_
#define SLAMPRED_BASELINES_PAIR_FEATURES_H_

#include <vector>

#include "graph/aligned_networks.h"
#include "graph/social_graph.h"
#include "linalg/sparse_tensor3.h"
#include "linalg/vector.h"

namespace slampred {

/// Which networks' features a classification baseline consumes.
enum class FeatureSource {
  kTargetOnly,   ///< The "-T" variants.
  kSourceOnly,   ///< The "-S" variants.
  kBoth,         ///< The full PL / SCAN methods.
};

/// Width of the assembled feature vector for the given source mode.
std::size_t PairFeatureWidth(const std::vector<SparseTensor3>& raw_tensors,
                             FeatureSource source);

/// Assembles the feature vector of one target pair: target fibre and/or
/// anchor-mapped source fibres, concatenated in network order.
Vector BuildPairFeatures(const AlignedNetworks& networks,
                         const std::vector<SparseTensor3>& raw_tensors,
                         FeatureSource source, const UserPair& pair);

/// Batch version.
std::vector<Vector> BuildPairFeatureBatch(
    const AlignedNetworks& networks, const std::vector<SparseTensor3>& raw_tensors,
    FeatureSource source, const std::vector<UserPair>& pairs);

}  // namespace slampred

#endif  // SLAMPRED_BASELINES_PAIR_FEATURES_H_
