// Common interface of every link-prediction method in the repo: score a
// batch of candidate target-network user pairs with confidence values
// (higher = more likely to be / become a link).

#ifndef SLAMPRED_BASELINES_LINK_PREDICTOR_H_
#define SLAMPRED_BASELINES_LINK_PREDICTOR_H_

#include <string>
#include <vector>

#include "graph/social_graph.h"
#include "util/status.h"

namespace slampred {

/// Abstract scorer over target user pairs.
class LinkPredictor {
 public:
  virtual ~LinkPredictor() = default;

  /// Display name used in result tables ("SLAMPRED", "PL-T", "CN", ...).
  virtual std::string name() const = 0;

  /// Scores each candidate pair; returns one score per pair in order.
  virtual Result<std::vector<double>> ScorePairs(
      const std::vector<UserPair>& pairs) const = 0;
};

}  // namespace slampred

#endif  // SLAMPRED_BASELINES_LINK_PREDICTOR_H_
