#include "baselines/pl.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "ml/instance_sampler.h"

namespace slampred {

Pl::Pl(PlOptions options) : options_(options) {}

Status Pl::Fit(const AlignedNetworks& networks,
               const SocialGraph& target_structure,
               const std::vector<SparseTensor3>& raw_tensors,
               const std::vector<UserPair>& exclude, Rng& rng) {
  if (raw_tensors.size() != networks.num_sources() + 1) {
    return Status::InvalidArgument("need one raw tensor per network");
  }
  networks_ = &networks;
  raw_tensors_ = &raw_tensors;

  const PairTrainingSet training = SamplePairTrainingSet(
      target_structure, options_.max_positives, options_.unlabeled_ratio,
      exclude, rng);
  if (training.pairs.empty()) {
    return Status::FailedPrecondition("no training instances available");
  }

  std::vector<Vector> features = BuildPairFeatureBatch(
      networks, raw_tensors, options_.feature_source, training.pairs);
  scaler_.Fit(features);
  scaler_.TransformInPlace(features);

  // Step 1: positive vs unlabeled-as-negative.
  LogisticRegression step1(options_.classifier);
  SLAMPRED_RETURN_NOT_OK(step1.Fit(features, training.labels));

  // Step 2: score the unlabeled set; keep the lowest-scored fraction as
  // reliable negatives.
  std::vector<std::size_t> unlabeled;
  for (std::size_t i = 0; i < training.labels.size(); ++i) {
    if (training.labels[i] == 0) unlabeled.push_back(i);
  }
  if (unlabeled.empty()) {
    classifier_ = step1;
    return Status::OK();
  }
  std::vector<double> unlabeled_scores(unlabeled.size());
  for (std::size_t k = 0; k < unlabeled.size(); ++k) {
    unlabeled_scores[k] = step1.PredictProbability(features[unlabeled[k]]);
  }
  std::vector<std::size_t> order(unlabeled.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return unlabeled_scores[a] < unlabeled_scores[b];
  });
  const std::size_t keep = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::floor(options_.reliable_negative_fraction *
                        static_cast<double>(unlabeled.size()))));

  // Step 3: retrain on positives vs reliable negatives.
  std::vector<Vector> final_features;
  std::vector<int> final_labels;
  for (std::size_t i = 0; i < training.labels.size(); ++i) {
    if (training.labels[i] == 1) {
      final_features.push_back(features[i]);
      final_labels.push_back(1);
    }
  }
  for (std::size_t k = 0; k < keep; ++k) {
    final_features.push_back(features[unlabeled[order[k]]]);
    final_labels.push_back(0);
  }
  classifier_ = LogisticRegression(options_.classifier);
  return classifier_.Fit(final_features, final_labels);
}

std::string Pl::name() const {
  switch (options_.feature_source) {
    case FeatureSource::kTargetOnly:
      return "PL-T";
    case FeatureSource::kSourceOnly:
      return "PL-S";
    case FeatureSource::kBoth:
      return "PL";
  }
  return "PL";
}

Result<std::vector<double>> Pl::ScorePairs(
    const std::vector<UserPair>& pairs) const {
  if (!classifier_.fitted()) {
    return Status::FailedPrecondition("PL scored before Fit");
  }
  std::vector<double> scores;
  scores.reserve(pairs.size());
  for (const UserPair& pair : pairs) {
    const Vector features = scaler_.Transform(BuildPairFeatures(
        *networks_, *raw_tensors_, options_.feature_source, pair));
    scores.push_back(classifier_.PredictProbability(features));
  }
  return scores;
}

}  // namespace slampred
