#include "baselines/unsupervised.h"

#include "util/thread_pool.h"

namespace slampred {

namespace {

// Pairs are scored independently into a pre-sized vector: each index
// has exactly one writing chunk, so the parallel sweep is bit-identical
// to the serial one.
constexpr std::size_t kScoreWorkPerPair = 64;

std::size_t RowDegree(const CsrMatrix& a, std::size_t u) {
  return a.row_ptr()[u + 1] - a.row_ptr()[u];
}

// |Γ(u) ∩ Γ(v)| as a merge over the two sorted column-index ranges.
std::size_t IntersectionCount(const CsrMatrix& a, std::size_t u,
                              std::size_t v) {
  const auto& col = a.col_idx();
  std::size_t p = a.row_ptr()[u];
  const std::size_t pe = a.row_ptr()[u + 1];
  std::size_t q = a.row_ptr()[v];
  const std::size_t qe = a.row_ptr()[v + 1];
  std::size_t count = 0;
  while (p < pe && q < qe) {
    if (col[p] < col[q]) {
      ++p;
    } else if (col[q] < col[p]) {
      ++q;
    } else {
      ++count;
      ++p;
      ++q;
    }
  }
  return count;
}

}  // namespace

Result<std::vector<double>> PaPredictor::ScorePairs(
    const std::vector<UserPair>& pairs) const {
  std::vector<double> scores(pairs.size(), 0.0);
  ParallelFor(0, pairs.size(), GrainForWork(kScoreWorkPerPair),
              [&](std::size_t i0, std::size_t i1) {
                for (std::size_t i = i0; i < i1; ++i) {
                  const UserPair& p = pairs[i];
                  scores[i] =
                      static_cast<double>(RowDegree(adjacency_, p.u)) *
                      static_cast<double>(RowDegree(adjacency_, p.v));
                }
              });
  return scores;
}

Result<std::vector<double>> CnPredictor::ScorePairs(
    const std::vector<UserPair>& pairs) const {
  std::vector<double> scores(pairs.size(), 0.0);
  ParallelFor(0, pairs.size(), GrainForWork(kScoreWorkPerPair),
              [&](std::size_t i0, std::size_t i1) {
                for (std::size_t i = i0; i < i1; ++i) {
                  const UserPair& p = pairs[i];
                  scores[i] = static_cast<double>(
                      IntersectionCount(adjacency_, p.u, p.v));
                }
              });
  return scores;
}

Result<std::vector<double>> JcPredictor::ScorePairs(
    const std::vector<UserPair>& pairs) const {
  std::vector<double> scores(pairs.size(), 0.0);
  ParallelFor(0, pairs.size(), GrainForWork(kScoreWorkPerPair),
              [&](std::size_t i0, std::size_t i1) {
                for (std::size_t i = i0; i < i1; ++i) {
                  const UserPair& p = pairs[i];
                  const std::size_t inter =
                      IntersectionCount(adjacency_, p.u, p.v);
                  const std::size_t uni = RowDegree(adjacency_, p.u) +
                                          RowDegree(adjacency_, p.v) - inter;
                  scores[i] = uni > 0
                                  ? static_cast<double>(inter) /
                                        static_cast<double>(uni)
                                  : 0.0;
                }
              });
  return scores;
}

}  // namespace slampred
