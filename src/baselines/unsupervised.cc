#include "baselines/unsupervised.h"

namespace slampred {

Result<std::vector<double>> PaPredictor::ScorePairs(
    const std::vector<UserPair>& pairs) const {
  std::vector<double> scores;
  scores.reserve(pairs.size());
  for (const UserPair& p : pairs) {
    scores.push_back(static_cast<double>(graph_.Degree(p.u)) *
                     static_cast<double>(graph_.Degree(p.v)));
  }
  return scores;
}

Result<std::vector<double>> CnPredictor::ScorePairs(
    const std::vector<UserPair>& pairs) const {
  std::vector<double> scores;
  scores.reserve(pairs.size());
  for (const UserPair& p : pairs) {
    scores.push_back(
        static_cast<double>(graph_.CommonNeighborCount(p.u, p.v)));
  }
  return scores;
}

Result<std::vector<double>> JcPredictor::ScorePairs(
    const std::vector<UserPair>& pairs) const {
  std::vector<double> scores;
  scores.reserve(pairs.size());
  for (const UserPair& p : pairs) {
    const double inter =
        static_cast<double>(graph_.CommonNeighborCount(p.u, p.v));
    const double uni = static_cast<double>(graph_.NeighborUnionCount(p.u, p.v));
    scores.push_back(uni > 0.0 ? inter / uni : 0.0);
  }
  return scores;
}

}  // namespace slampred
