#include "baselines/unsupervised.h"

#include "util/thread_pool.h"

namespace slampred {

namespace {

// Pairs are scored independently into a pre-sized vector: each index
// has exactly one writing chunk, so the parallel sweep is bit-identical
// to the serial one.
constexpr std::size_t kScoreWorkPerPair = 64;

}  // namespace

Result<std::vector<double>> PaPredictor::ScorePairs(
    const std::vector<UserPair>& pairs) const {
  std::vector<double> scores(pairs.size(), 0.0);
  ParallelFor(0, pairs.size(), GrainForWork(kScoreWorkPerPair),
              [&](std::size_t i0, std::size_t i1) {
                for (std::size_t i = i0; i < i1; ++i) {
                  const UserPair& p = pairs[i];
                  scores[i] = static_cast<double>(graph_.Degree(p.u)) *
                              static_cast<double>(graph_.Degree(p.v));
                }
              });
  return scores;
}

Result<std::vector<double>> CnPredictor::ScorePairs(
    const std::vector<UserPair>& pairs) const {
  std::vector<double> scores(pairs.size(), 0.0);
  ParallelFor(0, pairs.size(), GrainForWork(kScoreWorkPerPair),
              [&](std::size_t i0, std::size_t i1) {
                for (std::size_t i = i0; i < i1; ++i) {
                  const UserPair& p = pairs[i];
                  scores[i] = static_cast<double>(
                      graph_.CommonNeighborCount(p.u, p.v));
                }
              });
  return scores;
}

Result<std::vector<double>> JcPredictor::ScorePairs(
    const std::vector<UserPair>& pairs) const {
  std::vector<double> scores(pairs.size(), 0.0);
  ParallelFor(0, pairs.size(), GrainForWork(kScoreWorkPerPair),
              [&](std::size_t i0, std::size_t i1) {
                for (std::size_t i = i0; i < i1; ++i) {
                  const UserPair& p = pairs[i];
                  const double inter = static_cast<double>(
                      graph_.CommonNeighborCount(p.u, p.v));
                  const double uni = static_cast<double>(
                      graph_.NeighborUnionCount(p.u, p.v));
                  scores[i] = uni > 0.0 ? inter / uni : 0.0;
                }
              });
  return scores;
}

}  // namespace slampred
