// Additional unsupervised neighborhood predictors from the survey the
// paper cites ([6]): Adamic–Adar, Resource Allocation, and a truncated
// Katz scorer. They complete the classic-predictor family next to
// PA/CN/JC in unsupervised.h and serve as extra baselines in ablations.

#ifndef SLAMPRED_BASELINES_NEIGHBORHOOD_EXTRA_H_
#define SLAMPRED_BASELINES_NEIGHBORHOOD_EXTRA_H_

#include "baselines/link_predictor.h"
#include "graph/social_graph.h"
#include "linalg/matrix.h"

namespace slampred {

/// AA: score(u, v) = Σ_{w ∈ Γ(u)∩Γ(v)} 1/log(max(deg(w), 2)).
class AaPredictor : public LinkPredictor {
 public:
  explicit AaPredictor(const SocialGraph& graph);
  std::string name() const override { return "AA"; }
  Result<std::vector<double>> ScorePairs(
      const std::vector<UserPair>& pairs) const override;

 private:
  Matrix map_;
};

/// RA: score(u, v) = Σ_{w ∈ Γ(u)∩Γ(v)} 1/deg(w).
class RaPredictor : public LinkPredictor {
 public:
  explicit RaPredictor(const SocialGraph& graph);
  std::string name() const override { return "RA"; }
  Result<std::vector<double>> ScorePairs(
      const std::vector<UserPair>& pairs) const override;

 private:
  Matrix map_;
};

/// Truncated Katz: score(u, v) = β·A²(u,v) + β²·A³(u,v).
class KatzPredictor : public LinkPredictor {
 public:
  explicit KatzPredictor(const SocialGraph& graph, double beta = 0.05);
  std::string name() const override { return "KATZ"; }
  Result<std::vector<double>> ScorePairs(
      const std::vector<UserPair>& pairs) const override;

 private:
  Matrix map_;
};

}  // namespace slampred

#endif  // SLAMPRED_BASELINES_NEIGHBORHOOD_EXTRA_H_
