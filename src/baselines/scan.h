// SCAN: supervised classification based link prediction ([28], used as a
// baseline in Section IV-B2). Existing (training) links are positive
// instances, sampled absent pairs are negative instances, and a logistic
// classifier scores candidates. Feature vectors concatenate raw target
// and/or anchor-mapped source intimacy features with *no* domain
// adaptation — the contrast the paper draws against SLAMPRED.

#ifndef SLAMPRED_BASELINES_SCAN_H_
#define SLAMPRED_BASELINES_SCAN_H_

#include <string>
#include <vector>

#include "baselines/link_predictor.h"
#include "baselines/pair_features.h"
#include "graph/aligned_networks.h"
#include "linalg/sparse_tensor3.h"
#include "ml/logistic_regression.h"
#include "ml/standard_scaler.h"
#include "util/random.h"

namespace slampred {

/// SCAN training controls.
struct ScanOptions {
  FeatureSource feature_source = FeatureSource::kBoth;
  std::size_t max_positives = 400;
  double negative_ratio = 1.0;  ///< Negatives per positive.
  LogisticRegressionOptions classifier;
};

/// Supervised classification link predictor (SCAN / SCAN-T / SCAN-S).
class Scan : public LinkPredictor {
 public:
  explicit Scan(ScanOptions options = {});

  /// Trains the classifier. `target_structure` is the training graph of
  /// the target; `raw_tensors[0]` its raw feature tensor, followed by
  /// one per source. `exclude` pairs (the test fold) are never sampled.
  Status Fit(const AlignedNetworks& networks,
             const SocialGraph& target_structure,
             const std::vector<SparseTensor3>& raw_tensors,
             const std::vector<UserPair>& exclude, Rng& rng);

  std::string name() const override;
  Result<std::vector<double>> ScorePairs(
      const std::vector<UserPair>& pairs) const override;

 private:
  ScanOptions options_;
  const AlignedNetworks* networks_ = nullptr;
  const std::vector<SparseTensor3>* raw_tensors_ = nullptr;
  StandardScaler scaler_;
  LogisticRegression classifier_;
};

}  // namespace slampred

#endif  // SLAMPRED_BASELINES_SCAN_H_
