#include "baselines/pair_features.h"

#include "util/logging.h"

namespace slampred {

std::size_t PairFeatureWidth(const std::vector<SparseTensor3>& raw_tensors,
                             FeatureSource source) {
  std::size_t width = 0;
  if (source != FeatureSource::kSourceOnly && !raw_tensors.empty()) {
    width += raw_tensors[0].dim0();
  }
  if (source != FeatureSource::kTargetOnly) {
    for (std::size_t k = 1; k < raw_tensors.size(); ++k) {
      width += raw_tensors[k].dim0();
    }
  }
  return width;
}

Vector BuildPairFeatures(const AlignedNetworks& networks,
                         const std::vector<SparseTensor3>& raw_tensors,
                         FeatureSource source, const UserPair& pair) {
  SLAMPRED_CHECK(raw_tensors.size() == networks.num_sources() + 1)
      << "one raw tensor per network required";
  Vector out;
  if (source != FeatureSource::kSourceOnly) {
    const Vector fibre = raw_tensors[0].Fiber(pair.u, pair.v);
    for (std::size_t d = 0; d < fibre.size(); ++d) out.PushBack(fibre[d]);
  }
  if (source != FeatureSource::kTargetOnly) {
    for (std::size_t k = 0; k < networks.num_sources(); ++k) {
      const AnchorLinks& anchors = networks.anchors(k);
      const auto su = anchors.RightOf(pair.u);
      const auto sv = anchors.RightOf(pair.v);
      const std::size_t dims = raw_tensors[k + 1].dim0();
      if (su.has_value() && sv.has_value()) {
        const Vector fibre = raw_tensors[k + 1].Fiber(*su, *sv);
        for (std::size_t d = 0; d < dims; ++d) out.PushBack(fibre[d]);
      } else {
        for (std::size_t d = 0; d < dims; ++d) out.PushBack(0.0);
      }
    }
  }
  return out;
}

std::vector<Vector> BuildPairFeatureBatch(
    const AlignedNetworks& networks, const std::vector<SparseTensor3>& raw_tensors,
    FeatureSource source, const std::vector<UserPair>& pairs) {
  std::vector<Vector> out;
  out.reserve(pairs.size());
  for (const UserPair& pair : pairs) {
    out.push_back(BuildPairFeatures(networks, raw_tensors, source, pair));
  }
  return out;
}

}  // namespace slampred
