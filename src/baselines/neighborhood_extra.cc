#include "baselines/neighborhood_extra.h"

#include "features/structural_features.h"
#include "util/logging.h"

namespace slampred {

namespace {

Result<std::vector<double>> ScoreFromMap(const Matrix& map,
                                         const std::vector<UserPair>& pairs) {
  std::vector<double> scores;
  scores.reserve(pairs.size());
  for (const UserPair& p : pairs) {
    if (p.u >= map.rows() || p.v >= map.cols()) {
      return Status::OutOfRange("pair outside the fitted user set");
    }
    scores.push_back(map(p.u, p.v));
  }
  return scores;
}

}  // namespace

AaPredictor::AaPredictor(const SocialGraph& graph)
    : map_(AdamicAdarMap(graph)) {}

Result<std::vector<double>> AaPredictor::ScorePairs(
    const std::vector<UserPair>& pairs) const {
  return ScoreFromMap(map_, pairs);
}

RaPredictor::RaPredictor(const SocialGraph& graph)
    : map_(ResourceAllocationMap(graph)) {}

Result<std::vector<double>> RaPredictor::ScorePairs(
    const std::vector<UserPair>& pairs) const {
  return ScoreFromMap(map_, pairs);
}

KatzPredictor::KatzPredictor(const SocialGraph& graph, double beta)
    : map_(TruncatedKatzMap(graph, beta)) {}

Result<std::vector<double>> KatzPredictor::ScorePairs(
    const std::vector<UserPair>& pairs) const {
  return ScoreFromMap(map_, pairs);
}

}  // namespace slampred
