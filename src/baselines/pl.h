// PL: PU-classification based link prediction ([37], Section IV-B2).
// Existing links are positive instances; absent pairs are *unlabeled*
// (they may be future links), handled with the classic two-step PU
// scheme: (1) train positive-vs-unlabeled, (2) keep the lowest-scored
// unlabeled pairs as reliable negatives, (3) retrain positive-vs-
// reliable-negative. Features are assembled exactly like SCAN's — raw,
// no domain adaptation.

#ifndef SLAMPRED_BASELINES_PL_H_
#define SLAMPRED_BASELINES_PL_H_

#include <string>
#include <vector>

#include "baselines/link_predictor.h"
#include "baselines/pair_features.h"
#include "graph/aligned_networks.h"
#include "linalg/sparse_tensor3.h"
#include "ml/logistic_regression.h"
#include "ml/standard_scaler.h"
#include "util/random.h"

namespace slampred {

/// PL training controls.
struct PlOptions {
  FeatureSource feature_source = FeatureSource::kBoth;
  std::size_t max_positives = 400;
  double unlabeled_ratio = 2.0;  ///< Unlabeled pairs per positive.
  /// Fraction of unlabeled instances kept as reliable negatives after
  /// the spy step.
  double reliable_negative_fraction = 0.5;
  LogisticRegressionOptions classifier;
};

/// PU-learning link predictor (PL / PL-T / PL-S).
class Pl : public LinkPredictor {
 public:
  explicit Pl(PlOptions options = {});

  /// Trains the two-step PU classifier. Arguments as in Scan::Fit.
  Status Fit(const AlignedNetworks& networks,
             const SocialGraph& target_structure,
             const std::vector<SparseTensor3>& raw_tensors,
             const std::vector<UserPair>& exclude, Rng& rng);

  std::string name() const override;
  Result<std::vector<double>> ScorePairs(
      const std::vector<UserPair>& pairs) const override;

 private:
  PlOptions options_;
  const AlignedNetworks* networks_ = nullptr;
  const std::vector<SparseTensor3>* raw_tensors_ = nullptr;
  StandardScaler scaler_;
  LogisticRegression classifier_;
};

}  // namespace slampred

#endif  // SLAMPRED_BASELINES_PL_H_
