// Sharded predictor container — the merge product of the hierarchical
// partitioned solve. Each cluster's sub-fit yields one ModelShard (the
// cluster's member list plus its dense or factored score block in local
// coordinates); cross-cluster pairs are scored from the boundary
// refinement CSR (global coordinates, symmetric) or default to 0 when
// uncovered. ShardedScores stitches the shards back into one
// n-user scoring surface, and is what a sharded model artifact carries
// and a ScoringSession serves from — shard by shard, never densified
// to n×n.

#ifndef SLAMPRED_CORE_SCORE_SHARDS_H_
#define SLAMPRED_CORE_SCORE_SHARDS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "linalg/csr_matrix.h"
#include "linalg/factored_matrix.h"
#include "linalg/matrix.h"
#include "linalg/quantized_matrix.h"
#include "util/status.h"

namespace slampred {

class BinaryReader;
class BinaryWriter;

/// One cluster's fitted score block: the ascending global user ids of
/// its members and their scores in local coordinates (dense or
/// factored, matching the sub-fit's solver backend).
struct ModelShard {
  /// Ascending global user ids of the shard's members.
  std::vector<std::uint32_t> users;
  /// Dense block (users.size() × users.size()); empty when factored.
  Matrix s;
  /// Factored block S = U·Vᵀ of a factored sub-fit.
  FactoredMatrix low_rank;
  bool has_low_rank = false;
  /// Quantized block of a quantized artifact (DESIGN.md §15): the
  /// densified cluster block stored as a canonical upper triangle of
  /// u8/u16 codes. Takes precedence over the float representations.
  QuantizedSymmetricDense quantized;
  bool has_quantized = false;

  std::size_t num_users() const { return users.size(); }

  /// Score of the local pair (i, j); unchecked.
  double At(std::size_t i, std::size_t j) const {
    if (has_quantized) return quantized.At(i, j);
    return has_low_rank ? low_rank.At(i, j) : s(i, j);
  }

  /// Factor rank of a factored block (0 for a dense one).
  std::size_t rank() const { return has_low_rank ? low_rank.rank() : 0; }

  /// Heap bytes of the member list plus the score block.
  std::size_t EstimatedBytes() const;

  /// Shape/ordering invariants (square block of the member count,
  /// strictly ascending users).
  Status Validate() const;

  void Serialize(BinaryWriter& writer) const;
  static Result<ModelShard> Deserialize(BinaryReader& reader);
};

/// The full sharded predictor: disjoint shards covering the users
/// [0, n) plus the symmetric boundary CSR scoring cross-cluster pairs.
class ShardedScores {
 public:
  /// Empty (unsharded) container.
  ShardedScores() = default;

  /// Validates and assembles: the shards must cover [0, num_users)
  /// exactly once and `boundary` must be empty or num_users square.
  static Result<ShardedScores> Create(std::vector<ModelShard> shards,
                                      CsrMatrix boundary,
                                      std::size_t num_users);

  /// Replaces the boundary CSR (same shape rules as Create). Used by
  /// the solve stage, which assembles shards first and computes the
  /// refinement from them.
  Status AttachBoundary(CsrMatrix boundary);

  /// Attaches a quantized boundary (empty or num_users square). A
  /// quantized boundary takes precedence over the float one when both
  /// are present (loaders attach exactly one).
  Status AttachQuantizedBoundary(QuantizedSymmetricCsr boundary);

  /// Replaces shard `index` with `shard`, which must cover exactly the
  /// same users (hot-swapping a shard never changes the partition).
  Status ReplaceShard(std::size_t index, ModelShard shard);

  bool empty() const { return cluster_of_.empty(); }
  std::size_t num_users() const { return cluster_of_.size(); }
  std::size_t num_shards() const { return shards_.size(); }
  const std::vector<ModelShard>& shards() const { return shards_; }
  const CsrMatrix& boundary() const { return boundary_; }
  const QuantizedSymmetricCsr& quantized_boundary() const {
    return quantized_boundary_;
  }
  bool has_quantized_boundary() const { return has_quantized_boundary_; }

  /// True when any shard block or the boundary is quantized.
  bool IsQuantized() const;

  /// Shard index / in-shard index of user `u` (unchecked).
  std::uint32_t shard_of(std::size_t u) const { return cluster_of_[u]; }
  std::size_t local_index(std::size_t u) const { return local_index_[u]; }

  /// Score of the global pair (u, v); unchecked. Same shard → block
  /// lookup; different shards → boundary CSR (0 when uncovered).
  double At(std::size_t u, std::size_t v) const;

  /// Fills `out` (resized to num_users) with the full score row of
  /// `u`: the own-shard block scattered to global columns, boundary
  /// entries for cross-shard columns, 0 elsewhere.
  void RowScores(std::size_t u, std::vector<double>& out) const;

  /// Largest factor rank across the shards (0 when all dense).
  std::size_t MaxRank() const;

  /// Heap bytes of every shard plus the boundary CSR.
  std::size_t EstimatedBytes() const;

 private:
  std::vector<ModelShard> shards_;
  std::vector<std::uint32_t> cluster_of_;   // size n
  std::vector<std::uint32_t> local_index_;  // size n
  CsrMatrix boundary_;                      // n×n symmetric, or empty
  QuantizedSymmetricCsr quantized_boundary_;  // quantized alternative
  bool has_quantized_boundary_ = false;
};

}  // namespace slampred

#endif  // SLAMPRED_CORE_SCORE_SHARDS_H_
