// SLAMPRED: Sparse Low-rAnk Matrix estimation based PREDiction — the
// paper's primary contribution, assembled from the substrate modules:
//
//   1. intimacy feature tensors per network     (features/)
//   2. feature-space projection / domain        (embedding/)
//      adaptation via Theorem 1
//   3. sparse + low-rank matrix estimation by   (optim/)
//      proximal-operator CCCP (Algorithm 1)
//
// The same class covers the paper's variants through its config:
//   SLAMPRED    — everything (default)
//   SLAMPRED-T  — target network only (use_sources = false)
//   SLAMPRED-H  — target structure only (use_sources = false,
//                 use_attributes = false)

#ifndef SLAMPRED_CORE_SLAMPRED_H_
#define SLAMPRED_CORE_SLAMPRED_H_

#include <cstdint>
#include <string>
#include <vector>

#include "baselines/link_predictor.h"
#include "core/score_shards.h"
#include "embedding/domain_adapter.h"
#include "features/feature_tensor.h"
#include "graph/aligned_networks.h"
#include "graph/partitioner.h"
#include "graph/social_graph.h"
#include "linalg/factored_matrix.h"
#include "linalg/matrix.h"
#include "optim/cccp.h"
#include "optim/solver_backend.h"
#include "util/status.h"

namespace slampred {

/// Full model configuration; the defaults are the paper's Section IV
/// settings (μ = 1, θ = 0.001, τ = γ = 1, αs analysed separately).
struct SlamPredConfig {
  /// Weight αᵗ of the target network's intimacy term.
  double alpha_target = 1.0;
  /// Weights α^k, one per aligned source network (missing entries
  /// default to the last given value, or 1.0 if empty).
  std::vector<double> alpha_sources = {1.0};
  /// Anchor-alignment cost weight μ (Theorem 1).
  double mu = 1.0;
  /// Sparsity regularization weight γ. (The paper quotes γ = 1 for its
  /// unnormalised loss; with this library's [0,1]-normalised features
  /// γ ≈ 0.3 is the equivalent operating point — larger values trade
  /// AUC for top-K precision, see the EXP-A1 ablation bench.)
  double gamma = 0.3;
  /// Low-rank (nuclear norm) regularization weight τ (same scale caveat
  /// as γ; τ ≈ 6 plays the role of the paper's τ = 1).
  double tau = 6.0;
  /// Global multiplier applied to every intimacy weight (divided by each
  /// tensor's slice count). Fixes the scale between the [0,1]-normalised
  /// feature maps and the unit-weight regularizers so the paper's
  /// parameter ranges (α ∈ [0, 1], γ = τ = 1) are directly usable.
  double intimacy_scale = 16.0;
  /// Latent feature-space dimension c.
  std::size_t latent_dim = 5;

  /// Use attribute + structural intimacy features (false = -H variant,
  /// structure only).
  bool use_attributes = true;
  /// Transfer from aligned source networks (false = -T / -H variants).
  bool use_sources = true;
  /// Run the Theorem-1 feature projection (false = the EXP-A2 ablation:
  /// raw source features pass through the anchors unadapted).
  bool domain_adaptation = true;
  /// Also replace the *target's* intimacy features with their latent
  /// projection, as the paper's formulas do literally. Off by default:
  /// the projection exists to reconcile cross-network distributions, and
  /// compressing the target's own features through it only loses signal
  /// intra-network (see DESIGN.md "Implementation notes"). The source
  /// projections are still learned jointly with the target block either
  /// way, so transfer semantics are unchanged.
  bool project_target_features = false;

  /// Convex surrogate for the empirical loss (Section III-D offers both
  /// forms; squared Frobenius is the paper's and this library's
  /// default).
  LossKind loss = LossKind::kSquaredFrobenius;

  FeatureTensorOptions features;
  DomainAdapterOptions adapter;
  CccpOptions optimization;

  /// Iterate representation of the CCCP solve: the dense oracle or the
  /// factored low-rank path (S = U·Vᵀ, O(n·r²) prox). The factored
  /// backend requires the squared-Frobenius loss and ignores
  /// project_unit_box / gamma's entry-wise prox (see DESIGN.md §13).
  SolverBackend solver_backend = SolverBackend::kDense;
  /// Range-finder controls of the factored backend (rank r, sketch
  /// oversampling, power iterations, sketch seed).
  FactoredSolverOptions factored;

  /// Hierarchical partitioned solve (DESIGN.md "Hierarchical
  /// partitioned solve"): mode kAuto clusters the training structure
  /// and runs one independent sub-fit per cluster (fanned out over the
  /// thread pool), then a boundary-refinement pass scores cross-cluster
  /// pairs. kNone (the default) is the monolithic solve. A partition
  /// that yields a single cluster reproduces the monolithic fit
  /// bit-exactly.
  PartitionOptions partition;

  /// Seed for the model's internal sampling (embedding instances).
  std::uint64_t seed = 7;
};

/// Convenience configs for the paper's variants.
SlamPredConfig SlamPredTargetOnlyConfig();
SlamPredConfig SlamPredHomogeneousConfig();

/// Display name of the variant a config encodes ("SLAMPRED",
/// "SLAMPRED-T" or "SLAMPRED-H") — shared by SlamPred::name() and the
/// artifact-backed ScoringSession.
const char* SlamPredVariantName(const SlamPredConfig& config);

/// Wall-clock breakdown of the last Fit, surfaced by the CLI and the
/// Figure-3 bench next to the recovery stats. `svd_seconds` is the time
/// spent inside SVD/eigen kernels across all phases (it overlaps the
/// other entries rather than adding to them).
struct FitPhaseTimes {
  double features_seconds = 0.0;
  double embedding_seconds = 0.0;
  double cccp_seconds = 0.0;
  double svd_seconds = 0.0;
  double total_seconds = 0.0;
  /// Wall time of the partition stage (0 for a monolithic fit). In a
  /// partitioned fit, cccp_seconds covers the whole partitioned solve
  /// (per-cluster sub-fits plus the boundary refinement); per-cluster
  /// breakdowns live in PartitionStats.
  double partition_seconds = 0.0;
};

/// Memory footprint of the last Fit's sparse data path, surfaced next to
/// FitPhaseTimes by the CLI and the Figure-3 bench. All `*_bytes` are
/// CSR heap bytes; the `*_dense_bytes` twins are what the same data
/// would occupy densified (dims · sizeof(double)).
struct FitMemoryStats {
  std::size_t adjacency_nnz = 0;        ///< nnz(Aᵗ).
  std::size_t adjacency_bytes = 0;      ///< CSR bytes of Aᵗ.
  std::size_t adjacency_dense_bytes = 0;
  std::size_t raw_tensor_nnz = 0;       ///< Σ_k nnz(X^k) (features phase).
  std::size_t raw_tensor_bytes = 0;
  std::size_t raw_tensor_dense_bytes = 0;
  std::size_t adapted_tensor_nnz = 0;   ///< Σ_k nnz(X̂^k) (embedding phase).
  std::size_t adapted_tensor_bytes = 0;
  std::size_t adapted_tensor_dense_bytes = 0;
  /// High-water mark of the tracked CSR footprint: adjacency + raw +
  /// adapted tensors all live at the end of the embedding phase. (The
  /// solver iterate is tracked separately in iterate_bytes.)
  std::size_t peak_bytes = 0;
  /// Heap bytes of the solver iterate: n²·8 for the dense backend, the
  /// two factor matrices for the factored one — the n³-to-n·r² story in
  /// one number.
  std::size_t iterate_bytes = 0;
  /// What a dense iterate of the same order would occupy (n²·8).
  std::size_t iterate_dense_bytes = 0;
  /// Factor rank of the fitted iterate (0 for the dense backend).
  std::size_t solver_rank = 0;

  /// One-line human-readable summary for CLI / bench output.
  std::string ToString() const;
};

/// The SLAMPRED estimator. Usage:
///   SlamPred model(config);
///   SLAMPRED_RETURN_NOT_OK(model.Fit(networks, training_graph));
///   double score = model.Score(u, v).value();
///
/// Fit delegates to the staged pipeline of core/fit_pipeline.h
/// (FeatureStage → EmbeddingStage → SolveStage over one FitContext);
/// the -T/-H variants are stage configuration derived from this config.
class SlamPred : public LinkPredictor {
 public:
  explicit SlamPred(SlamPredConfig config = {});

  /// Fits the predictor matrix S on the bundle. `target_structure` is
  /// the observed (training) target graph; held-out links must already
  /// be removed from it. Source networks use their full graphs.
  Status Fit(const AlignedNetworks& networks,
             const SocialGraph& target_structure);

  /// The inferred predictor matrix S (valid after a dense-backend Fit;
  /// empty after a factored fit — use FactoredScoreMatrix there).
  const Matrix& ScoreMatrix() const { return s_; }

  /// The factored predictor S = U·Vᵀ (valid after a factored-backend
  /// Fit; empty factors otherwise).
  const FactoredMatrix& FactoredScoreMatrix() const { return s_factored_; }

  /// True after a partitioned Fit (config.partition.mode == kAuto):
  /// scores come from ShardedScoreMatrix, not s / s_factored.
  bool partitioned() const { return partitioned_; }

  /// The sharded predictor of a partitioned Fit (empty otherwise).
  const ShardedScores& ShardedScoreMatrix() const { return shards_; }

  /// Partition summary and per-cluster solve timings of a partitioned
  /// Fit (zeroed otherwise).
  const PartitionStats& partition_stats() const { return partition_stats_; }

  /// Number of users the fitted predictor covers, whichever backend
  /// produced it.
  std::size_t NumUsersFitted() const {
    if (partitioned_) return shards_.num_users();
    return config_.solver_backend == SolverBackend::kFactored
               ? s_factored_.rows()
               : s_.rows();
  }

  /// True once Fit has succeeded.
  bool fitted() const { return fitted_; }

  /// Confidence score of the potential link (u, v). Fails with
  /// kFailedPrecondition before Fit and kOutOfRange when either user id
  /// falls outside the fitted S.
  Result<double> Score(std::size_t u, std::size_t v) const;

  /// Optimisation trace of the last Fit (drives the Figure-3 series).
  const CccpTrace& trace() const { return trace_; }

  /// Per-phase wall times of the last Fit.
  const FitPhaseTimes& phase_times() const { return phase_times_; }

  /// Sparse-path memory footprint of the last Fit.
  const FitMemoryStats& memory_stats() const { return memory_stats_; }

  /// The adapted feature tensors of the last Fit (target coordinates).
  const std::vector<SparseTensor3>& adapted_tensors() const {
    return adapted_tensors_;
  }

  std::string name() const override;
  Result<std::vector<double>> ScorePairs(
      const std::vector<UserPair>& pairs) const override;

  const SlamPredConfig& config() const { return config_; }

 private:
  SlamPredConfig config_;
  Matrix s_;
  FactoredMatrix s_factored_;
  ShardedScores shards_;
  PartitionStats partition_stats_;
  bool partitioned_ = false;
  CccpTrace trace_;
  FitPhaseTimes phase_times_;
  FitMemoryStats memory_stats_;
  std::vector<SparseTensor3> adapted_tensors_;
  bool fitted_ = false;
};

}  // namespace slampred

#endif  // SLAMPRED_CORE_SLAMPRED_H_
