#include "core/scoring_service.h"

#include <memory>
#include <string>

namespace slampred {

ScoringService::ScoringService(ModelRegistry* registry,
                               BatchScorerOptions batch)
    : registry_(registry), batcher_(registry, batch) {}

Result<double> ScoringService::Score(std::size_t u, std::size_t v) const {
  const std::shared_ptr<const ServableModel> model = registry_->Acquire();
  if (model == nullptr) {
    return Status::FailedPrecondition(
        "no model published; Swap one into the registry first");
  }
  return model->session.Score(u, v);
}

Result<ScoreBatchResponse> ScoringService::ScorePairs(
    const std::vector<UserPair>& pairs, const RequestOptions& request) {
  return batcher_.ScorePairs(pairs, request);
}

Result<TopKResponse> ScoringService::TopK(std::size_t u, std::size_t k,
                                          bool exclude_known_links,
                                          const RequestOptions& request) {
  return batcher_.TopK(u, k, exclude_known_links, request);
}

std::uint64_t ScoringService::current_version() const {
  return registry_->current_version();
}

RecoveryStats ScoringService::recovery() const {
  return registry_->recovery();
}

}  // namespace slampred
