// Precomputed top-K row prefixes for a configurable hot-user set.
//
// A quantized artifact can carry, per hot user, the leading entries of
// that user's full score-row ordering (score descending, column
// ascending — the exact serve-side comparator), computed from the
// float artifact BEFORE the float payload is dropped. Serving a top-K
// request for a hot user then walks this prefix (skipping known links)
// and never touches the quantized payload, so hot rows are bit-equal
// to the order a float session would lazily build — the cache is an
// oracle snapshot, not a quantized approximation.
//
// Rows are stored sorted by user id; each row records whether its
// prefix is the COMPLETE ordering (short rows) or a bounded prefix.
// An insufficient prefix (k non-excluded entries not reachable and the
// row incomplete) makes the server fall back to the full path rather
// than serve a truncated answer.

#ifndef SLAMPRED_CORE_HOT_ROW_CACHE_H_
#define SLAMPRED_CORE_HOT_ROW_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/status.h"

namespace slampred {

class BinaryReader;
class BinaryWriter;

/// One ranked candidate of a precomputed row.
struct HotRowEntry {
  std::uint32_t v = 0;  ///< Candidate user.
  double score = 0.0;   ///< Float-oracle score of (user, v).

  bool operator==(const HotRowEntry& other) const {
    return v == other.v && score == other.score;
  }
};

/// The precomputed prefix of one hot user's row ordering.
struct HotRow {
  std::uint32_t user = 0;
  /// True when `entries` is the user's ENTIRE ordering (all n−1
  /// candidates), so any k can be served from it.
  bool complete = false;
  /// Leading entries in serve order: score descending, v ascending on
  /// ties, never containing `user` itself.
  std::vector<HotRowEntry> entries;
};

/// Immutable-after-build collection of hot rows, keyed by user.
class HotRowCache {
 public:
  HotRowCache() = default;

  /// Inserts or replaces the row for `row.user`.
  void AddRow(HotRow row);

  /// The row for `user`, or nullptr when the user is not hot.
  const HotRow* Find(std::uint32_t user) const;

  std::size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  /// Rows sorted by user id ascending.
  const std::vector<HotRow>& rows() const { return rows_; }

  /// Heap bytes held.
  std::size_t EstimatedBytes() const;

  /// Appends the cache (rows ascending by user) to `writer`.
  void Serialize(BinaryWriter& writer) const;

  /// Reads a cache written by Serialize. Truncation, users out of
  /// ascending order, self-referencing entries, non-finite scores, or
  /// entries violating the (score desc, v asc) serve order all fail
  /// with an offset-diagnosed kIoError — a corrupt cache is rejected,
  /// never served.
  static Result<HotRowCache> Deserialize(BinaryReader& reader);

  bool operator==(const HotRowCache& other) const;

 private:
  std::vector<HotRow> rows_;  // sorted by user ascending
};

}  // namespace slampred

#endif  // SLAMPRED_CORE_HOT_ROW_CACHE_H_
