// ScoringService — the thread-safe concurrent serving layer over loaded
// model artifacts; the production front end of the train-once /
// serve-many split (ScoringSession remains the single-caller serial
// oracle it is bit-compared against).
//
//   ModelRegistry registry;                      // owns the artifact(s)
//   registry.SwapFromFile("model.slpmodel");     // or Swap(artifact)
//   ScoringService service(&registry);
//   auto scores = service.ScorePairs(pairs);     // from any thread
//   auto best = service.TopK(u, 10, /*exclude_known_links=*/true);
//
// Any number of threads may call Score / ScorePairs / TopK while
// another thread hot-swaps a new artifact version into the registry:
// each request is answered from exactly one Acquire()'d model snapshot
// (responses carry the version), old versions drain via shared
// ownership, and results are bit-identical to the serial oracle at any
// thread count, with batching on or off. See DESIGN.md "Concurrent
// serving layer".

#ifndef SLAMPRED_CORE_SCORING_SERVICE_H_
#define SLAMPRED_CORE_SCORING_SERVICE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "serve/batch_scorer.h"
#include "serve/model_registry.h"
#include "serve/scoring_kernels.h"
#include "util/status.h"

namespace slampred {

/// Concurrent scoring front end over a ModelRegistry.
class ScoringService {
 public:
  /// Serves from `registry` (not owned; must outlive the service).
  explicit ScoringService(ModelRegistry* registry,
                          BatchScorerOptions batch = {});

  ScoringService(const ScoringService&) = delete;
  ScoringService& operator=(const ScoringService&) = delete;

  /// Confidence score of (u, v) from the current model — a single
  /// unbatched lookup. kFailedPrecondition before the first swap,
  /// kOutOfRange outside the served matrix.
  Result<double> Score(std::size_t u, std::size_t v) const;

  /// Batch scores answered from one consistent model snapshot;
  /// coalesced with concurrent callers when batching is enabled.
  /// `request` carries per-request options (deadline): a request whose
  /// deadline passes while queued is answered kDeadlineExceeded, and a
  /// full admission queue sheds with kResourceExhausted. The response's
  /// `tier` says which path answered (full / cached / degraded).
  Result<ScoreBatchResponse> ScorePairs(const std::vector<UserPair>& pairs,
                                        const RequestOptions& request = {});

  /// Per-user top-K retrieval (best k candidates v for user u,
  /// descending score, ties by ascending v, self excluded). With
  /// `exclude_known_links`, candidates stored in the registry's
  /// known-links adjacency row u are skipped — serve only *new* links.
  /// Deadline / shed / tier semantics as in ScorePairs.
  Result<TopKResponse> TopK(std::size_t u, std::size_t k,
                            bool exclude_known_links = false,
                            const RequestOptions& request = {});

  /// Version currently published by the registry (0 = none yet).
  std::uint64_t current_version() const;

  /// Serving-side recovery counters of the underlying registry.
  RecoveryStats recovery() const;

  const ModelRegistry& registry() const { return *registry_; }
  const BatchScorer& batcher() const { return batcher_; }

 private:
  ModelRegistry* const registry_;
  BatchScorer batcher_;
};

}  // namespace slampred

#endif  // SLAMPRED_CORE_SCORING_SERVICE_H_
