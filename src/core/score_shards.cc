#include "core/score_shards.h"

#include <algorithm>
#include <string>
#include <utility>

#include "util/binary_io.h"

namespace slampred {

std::size_t ModelShard::EstimatedBytes() const {
  return users.size() * sizeof(std::uint32_t) +
         s.data().size() * sizeof(double) +
         (has_low_rank ? low_rank.EstimatedBytes() : 0) +
         (has_quantized ? quantized.EstimatedBytes() : 0);
}

Status ModelShard::Validate() const {
  const std::size_t m = users.size();
  if (m == 0) return Status::InvalidArgument("shard has no users");
  for (std::size_t i = 1; i < m; ++i) {
    if (users[i] <= users[i - 1]) {
      return Status::InvalidArgument(
          "shard users must be strictly ascending");
    }
  }
  if (has_quantized) {
    if (quantized.rows() != m) {
      return Status::InvalidArgument(
          "shard quantized block is " + std::to_string(quantized.rows()) +
          " rows for " + std::to_string(m) + " users");
    }
    return Status::OK();
  }
  if (has_low_rank) {
    if (low_rank.rows() != m || low_rank.cols() != m) {
      return Status::InvalidArgument(
          "shard factors are " + std::to_string(low_rank.rows()) + "x" +
          std::to_string(low_rank.cols()) + " for " + std::to_string(m) +
          " users");
    }
    return Status::OK();
  }
  if (s.rows() != m || s.cols() != m) {
    return Status::InvalidArgument(
        "shard score block is " + std::to_string(s.rows()) + "x" +
        std::to_string(s.cols()) + " for " + std::to_string(m) + " users");
  }
  return Status::OK();
}

void ModelShard::Serialize(BinaryWriter& writer) const {
  writer.WriteU64(users.size());
  for (const std::uint32_t u : users) writer.WriteU32(u);
  writer.WriteBool(has_low_rank);
  if (has_low_rank) {
    low_rank.Serialize(writer);
  } else {
    s.Serialize(writer);
  }
}

Result<ModelShard> ModelShard::Deserialize(BinaryReader& reader) {
  ModelShard shard;
  auto count = reader.ReadU64();
  if (!count.ok()) return count.status();
  if (count.value() > reader.remaining() / sizeof(std::uint32_t)) {
    return reader.Truncated(
        static_cast<std::size_t>(count.value()) * sizeof(std::uint32_t),
        "shard users");
  }
  shard.users.reserve(static_cast<std::size_t>(count.value()));
  for (std::uint64_t i = 0; i < count.value(); ++i) {
    auto user = reader.ReadU32();
    if (!user.ok()) return user.status();
    shard.users.push_back(user.value());
  }
  auto factored = reader.ReadBool();
  if (!factored.ok()) return factored.status();
  shard.has_low_rank = factored.value();
  if (shard.has_low_rank) {
    auto low_rank = FactoredMatrix::Deserialize(reader);
    if (!low_rank.ok()) return low_rank.status();
    shard.low_rank = std::move(low_rank).value();
  } else {
    auto s = Matrix::Deserialize(reader);
    if (!s.ok()) return s.status();
    shard.s = std::move(s).value();
  }
  SLAMPRED_RETURN_NOT_OK(shard.Validate());
  return shard;
}

Result<ShardedScores> ShardedScores::Create(std::vector<ModelShard> shards,
                                            CsrMatrix boundary,
                                            std::size_t num_users) {
  ShardedScores out;
  out.cluster_of_.assign(num_users, 0);
  out.local_index_.assign(num_users, 0);
  std::vector<bool> covered(num_users, false);
  for (std::size_t c = 0; c < shards.size(); ++c) {
    SLAMPRED_RETURN_NOT_OK(shards[c].Validate());
    for (std::size_t i = 0; i < shards[c].users.size(); ++i) {
      const std::size_t u = shards[c].users[i];
      if (u >= num_users) {
        return Status::InvalidArgument(
            "shard " + std::to_string(c) + " names user " +
            std::to_string(u) + " outside [0, " + std::to_string(num_users) +
            ")");
      }
      if (covered[u]) {
        return Status::InvalidArgument("user " + std::to_string(u) +
                                       " appears in two shards");
      }
      covered[u] = true;
      out.cluster_of_[u] = static_cast<std::uint32_t>(c);
      out.local_index_[u] = static_cast<std::uint32_t>(i);
    }
  }
  for (std::size_t u = 0; u < num_users; ++u) {
    if (!covered[u]) {
      return Status::InvalidArgument("user " + std::to_string(u) +
                                     " is covered by no shard");
    }
  }
  out.shards_ = std::move(shards);
  SLAMPRED_RETURN_NOT_OK(out.AttachBoundary(std::move(boundary)));
  return out;
}

Status ShardedScores::AttachBoundary(CsrMatrix boundary) {
  if (boundary.rows() != 0 && (boundary.rows() != num_users() ||
                               boundary.cols() != num_users())) {
    return Status::InvalidArgument(
        "boundary matrix is " + std::to_string(boundary.rows()) + "x" +
        std::to_string(boundary.cols()) + " for " +
        std::to_string(num_users()) + " users");
  }
  boundary_ = std::move(boundary);
  return Status::OK();
}

Status ShardedScores::AttachQuantizedBoundary(QuantizedSymmetricCsr boundary) {
  if (boundary.rows() != 0 && boundary.rows() != num_users()) {
    return Status::InvalidArgument(
        "quantized boundary has " + std::to_string(boundary.rows()) +
        " rows for " + std::to_string(num_users()) + " users");
  }
  has_quantized_boundary_ = boundary.rows() != 0;
  quantized_boundary_ = std::move(boundary);
  return Status::OK();
}

bool ShardedScores::IsQuantized() const {
  if (has_quantized_boundary_) return true;
  for (const ModelShard& shard : shards_) {
    if (shard.has_quantized) return true;
  }
  return false;
}

Status ShardedScores::ReplaceShard(std::size_t index, ModelShard shard) {
  if (index >= shards_.size()) {
    return Status::OutOfRange("shard index " + std::to_string(index) +
                              " outside [0, " +
                              std::to_string(shards_.size()) + ")");
  }
  SLAMPRED_RETURN_NOT_OK(shard.Validate());
  if (shard.users != shards_[index].users) {
    return Status::InvalidArgument(
        "replacement for shard " + std::to_string(index) +
        " covers different users (a shard swap never changes the "
        "partition)");
  }
  shards_[index] = std::move(shard);
  return Status::OK();
}

double ShardedScores::At(std::size_t u, std::size_t v) const {
  const std::uint32_t cu = cluster_of_[u];
  if (cu == cluster_of_[v]) {
    return shards_[cu].At(local_index_[u], local_index_[v]);
  }
  if (has_quantized_boundary_) return quantized_boundary_.At(u, v);
  if (boundary_.rows() == 0) return 0.0;
  return boundary_.At(u, v);
}

void ShardedScores::RowScores(std::size_t u, std::vector<double>& out) const {
  const std::size_t n = num_users();
  out.assign(n, 0.0);
  const ModelShard& own = shards_[cluster_of_[u]];
  const std::size_t lu = local_index_[u];
  for (std::size_t j = 0; j < own.users.size(); ++j) {
    out[own.users[j]] = own.At(lu, j);
  }
  if (has_quantized_boundary_) {
    // Boundary entries never cover own-shard columns, so plain
    // assignment matches the float path.
    quantized_boundary_.ForEachInRow(
        u, [&](std::uint32_t col, double value) { out[col] = value; });
    return;
  }
  if (boundary_.rows() == 0) return;
  const auto& row_ptr = boundary_.row_ptr();
  const auto& col_idx = boundary_.col_idx();
  const auto& values = boundary_.values();
  for (std::size_t e = row_ptr[u]; e < row_ptr[u + 1]; ++e) {
    out[col_idx[e]] = values[e];
  }
}

std::size_t ShardedScores::MaxRank() const {
  std::size_t rank = 0;
  for (const ModelShard& shard : shards_) rank = std::max(rank, shard.rank());
  return rank;
}

std::size_t ShardedScores::EstimatedBytes() const {
  std::size_t bytes = boundary_.EstimatedBytes() +
                      quantized_boundary_.EstimatedBytes() +
                      (cluster_of_.size() + local_index_.size()) *
                          sizeof(std::uint32_t);
  for (const ModelShard& shard : shards_) bytes += shard.EstimatedBytes();
  return bytes;
}

}  // namespace slampred
