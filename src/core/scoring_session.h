// ScoringSession — the serve-many half of the train-once / serve-many
// split. Wraps a loaded ModelArtifact behind the LinkPredictor
// interface: Score / ScorePairs are pure lookups into the fitted S, no
// fit stage ever runs, so a session is cheap to construct and safe to
// keep hot in a serving process. Scores are bit-identical to the
// SlamPred model the artifact was snapshotted from.

#ifndef SLAMPRED_CORE_SCORING_SESSION_H_
#define SLAMPRED_CORE_SCORING_SESSION_H_

#include <string>
#include <vector>

#include "baselines/link_predictor.h"
#include "core/model_artifact.h"
#include "util/status.h"

namespace slampred {

/// Serves link scores from a fitted model artifact.
class ScoringSession : public LinkPredictor {
 public:
  /// Loads the artifact at `path` (offset-diagnosed kIoError on any
  /// corruption) and validates it for serving.
  static Result<ScoringSession> FromFile(const std::string& path);

  /// Wraps an already-materialised artifact.
  static Result<ScoringSession> FromArtifact(ModelArtifact artifact);

  /// Number of users the fitted S covers (== its order).
  std::size_t num_users() const { return artifact_.s.rows(); }

  const ModelArtifact& artifact() const { return artifact_; }

  /// Confidence score of (u, v); kOutOfRange when either id falls
  /// outside the fitted S.
  Result<double> Score(std::size_t u, std::size_t v) const;

  /// Variant name of the underlying config, marked as artifact-served.
  std::string name() const override;

  /// Batch scores; every pair is bounds-checked against the fitted S.
  Result<std::vector<double>> ScorePairs(
      const std::vector<UserPair>& pairs) const override;

 private:
  explicit ScoringSession(ModelArtifact artifact)
      : artifact_(std::move(artifact)) {}

  ModelArtifact artifact_;
};

}  // namespace slampred

#endif  // SLAMPRED_CORE_SCORING_SESSION_H_
