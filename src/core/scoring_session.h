// ScoringSession — the serve-many half of the train-once / serve-many
// split. Wraps a loaded ModelArtifact behind the LinkPredictor
// interface: Score / ScorePairs are pure lookups into the fitted
// predictor, no fit stage ever runs, so a session is cheap to construct
// and safe to keep hot in a serving process. Scores are bit-identical
// to the SlamPred model the artifact was snapshotted from.
//
// The session dispatches on the artifact's representation instead of
// normalising to dense at load: a factored artifact is served straight
// from its U·Vᵀ factors (O(n·r) resident instead of the O(n²) block the
// old densifying load paid) and a sharded one from its per-cluster
// blocks plus the boundary CSR.

#ifndef SLAMPRED_CORE_SCORING_SESSION_H_
#define SLAMPRED_CORE_SCORING_SESSION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "baselines/link_predictor.h"
#include "core/model_artifact.h"
#include "util/status.h"

namespace slampred {

/// Serves link scores from a fitted model artifact.
class ScoringSession : public LinkPredictor {
 public:
  /// The representation scores are read from.
  enum class Backend : std::uint8_t {
    kDense = 0,      ///< artifact.s element lookups.
    kFactored = 1,   ///< artifact.low_rank.At — never densified.
    kSharded = 2,    ///< artifact.shards block + boundary lookups.
    kQuantized = 3,  ///< artifact.quantized_s dequantize-on-the-fly.
  };

  /// Loads the artifact at `path` (offset-diagnosed kIoError on any
  /// corruption) and validates it for serving.
  static Result<ScoringSession> FromFile(const std::string& path);

  /// Wraps an already-materialised artifact.
  static Result<ScoringSession> FromArtifact(ModelArtifact artifact);

  /// Number of users the fitted predictor covers.
  std::size_t num_users() const { return num_users_; }

  Backend backend() const { return backend_; }

  const ModelArtifact& artifact() const { return artifact_; }

  /// Confidence score of (u, v); kOutOfRange when either id falls
  /// outside the fitted predictor.
  Result<double> Score(std::size_t u, std::size_t v) const;

  /// Unchecked score lookup — the hot serving path; callers must have
  /// bounds-checked (u, v) against num_users().
  double ScoreUnchecked(std::size_t u, std::size_t v) const {
    if (backend_ == Backend::kDense) return artifact_.s(u, v);
    if (backend_ == Backend::kFactored) return artifact_.low_rank.At(u, v);
    if (backend_ == Backend::kQuantized) return artifact_.quantized_s.At(u, v);
    return artifact_.shards.At(u, v);
  }

  /// True when scores come from a quantized payload (the kQuantized
  /// backend, or a sharded backend with quantized blocks/boundary).
  bool IsQuantized() const {
    return backend_ == Backend::kQuantized ||
           (backend_ == Backend::kSharded && artifact_.shards.IsQuantized());
  }

  /// Fills `out` (resized to num_users) with u's full score row —
  /// whichever backend, without materialising anything n²-sized.
  void RowScores(std::size_t u, std::vector<double>& out) const;

  /// Variant name of the underlying config, marked as artifact-served.
  std::string name() const override;

  /// Batch scores; every pair is bounds-checked against the predictor.
  Result<std::vector<double>> ScorePairs(
      const std::vector<UserPair>& pairs) const override;

 private:
  ScoringSession(ModelArtifact artifact, Backend backend,
                 std::size_t num_users)
      : artifact_(std::move(artifact)),
        backend_(backend),
        num_users_(num_users) {}

  ModelArtifact artifact_;
  Backend backend_ = Backend::kDense;
  std::size_t num_users_ = 0;
};

}  // namespace slampred

#endif  // SLAMPRED_CORE_SCORING_SESSION_H_
