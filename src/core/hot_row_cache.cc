#include "core/hot_row_cache.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/binary_io.h"

namespace slampred {

void HotRowCache::AddRow(HotRow row) {
  auto it = std::lower_bound(
      rows_.begin(), rows_.end(), row.user,
      [](const HotRow& r, std::uint32_t user) { return r.user < user; });
  if (it != rows_.end() && it->user == row.user) {
    *it = std::move(row);
  } else {
    rows_.insert(it, std::move(row));
  }
}

const HotRow* HotRowCache::Find(std::uint32_t user) const {
  auto it = std::lower_bound(
      rows_.begin(), rows_.end(), user,
      [](const HotRow& r, std::uint32_t u) { return r.user < u; });
  if (it == rows_.end() || it->user != user) return nullptr;
  return &*it;
}

std::size_t HotRowCache::EstimatedBytes() const {
  std::size_t bytes = rows_.size() * sizeof(HotRow);
  for (const HotRow& row : rows_) {
    bytes += row.entries.size() * sizeof(HotRowEntry);
  }
  return bytes;
}

void HotRowCache::Serialize(BinaryWriter& writer) const {
  writer.WriteU64(rows_.size());
  for (const HotRow& row : rows_) {
    writer.WriteU32(row.user);
    writer.WriteBool(row.complete);
    writer.WriteU64(row.entries.size());
    for (const HotRowEntry& e : row.entries) {
      writer.WriteU32(e.v);
      writer.WriteDouble(e.score);
    }
  }
}

Result<HotRowCache> HotRowCache::Deserialize(BinaryReader& reader) {
  auto count = reader.ReadU64();
  if (!count.ok()) return count.status();
  HotRowCache cache;
  cache.rows_.reserve(std::min<std::uint64_t>(count.value(), 1u << 20));
  bool first = true;
  std::uint32_t prev_user = 0;
  for (std::uint64_t r = 0; r < count.value(); ++r) {
    auto user = reader.ReadU32();
    if (!user.ok()) return user.status();
    auto complete = reader.ReadBool();
    if (!complete.ok()) return complete.status();
    auto entry_count = reader.ReadU64();
    if (!entry_count.ok()) return entry_count.status();
    if (!first && user.value() <= prev_user) {
      return Status::IoError("hot-row users not strictly ascending: " +
                             std::to_string(user.value()) + " after " +
                             std::to_string(prev_user));
    }
    first = false;
    prev_user = user.value();
    // Each entry costs 12 bytes; bound the allocation by what can
    // actually be present.
    if (reader.remaining() < entry_count.value() * 12) {
      return reader.Truncated(
          static_cast<std::size_t>(entry_count.value()) * 12,
          "hot-row entries");
    }
    HotRow row;
    row.user = user.value();
    row.complete = complete.value();
    row.entries.resize(static_cast<std::size_t>(entry_count.value()));
    for (HotRowEntry& e : row.entries) {
      auto v = reader.ReadU32();
      if (!v.ok()) return v.status();
      auto score = reader.ReadDouble();
      if (!score.ok()) return score.status();
      e.v = v.value();
      e.score = score.value();
      if (e.v == row.user) {
        return Status::IoError("hot row for user " + std::to_string(row.user) +
                               " ranks the user itself");
      }
      if (!std::isfinite(e.score)) {
        return Status::IoError("hot row for user " + std::to_string(row.user) +
                               " holds a non-finite score");
      }
    }
    // The prefix must be in exact serve order (score descending,
    // candidate ascending on ties) or cached answers would diverge
    // from lazily-built ones.
    for (std::size_t k = 1; k < row.entries.size(); ++k) {
      const HotRowEntry& a = row.entries[k - 1];
      const HotRowEntry& b = row.entries[k];
      const bool ordered = a.score > b.score || (a.score == b.score && a.v < b.v);
      if (!ordered) {
        return Status::IoError("hot row for user " + std::to_string(row.user) +
                               " violates serve order at entry " +
                               std::to_string(k));
      }
    }
    cache.rows_.push_back(std::move(row));
  }
  return cache;
}

bool HotRowCache::operator==(const HotRowCache& other) const {
  if (rows_.size() != other.rows_.size()) return false;
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (rows_[i].user != other.rows_[i].user ||
        rows_[i].complete != other.rows_[i].complete ||
        rows_[i].entries != other.rows_[i].entries) {
      return false;
    }
  }
  return true;
}

}  // namespace slampred
