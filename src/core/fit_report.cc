#include "core/fit_report.h"

#include "util/binary_io.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace slampred {
namespace {

void AppendField(std::string& out, const char* key, double value,
                 bool* first) {
  if (!*first) out += ",";
  *first = false;
  out += "\"";
  out += key;
  out += "\":";
  out += FormatDouble(value, 6);
}

void AppendField(std::string& out, const char* key, std::size_t value,
                 bool* first) {
  if (!*first) out += ",";
  *first = false;
  out += "\"";
  out += key;
  out += "\":";
  out += std::to_string(value);
}

void AppendField(std::string& out, const char* key, int value, bool* first) {
  if (!*first) out += ",";
  *first = false;
  out += "\"";
  out += key;
  out += "\":";
  out += std::to_string(value);
}

}  // namespace

FitReport MakeFitReport(const SlamPred& model) {
  FitReport report;
  report.phase_times = model.phase_times();
  report.memory_stats = model.memory_stats();
  report.recovery = model.trace().recovery;
  report.threads = ThreadPool::Global().num_threads();
  report.solver_backend = model.config().solver_backend;
  report.solver_rank =
      report.solver_backend == SolverBackend::kFactored
          ? model.config().factored.rank
          : 0;
  report.partitioned = model.partitioned();
  if (report.partitioned) report.partition = model.partition_stats();
  return report;
}

void PrintFitReport(std::FILE* out, const FitReport& report) {
  const FitPhaseTimes& times = report.phase_times;
  if (report.partitioned) {
    std::fprintf(
        out,
        "phase times (s): partition %.3f | features %.3f | embedding %.3f "
        "| cccp %.3f | svd %.3f | total %.3f  [%zu thread(s)]\n",
        times.partition_seconds, times.features_seconds,
        times.embedding_seconds, times.cccp_seconds, times.svd_seconds,
        times.total_seconds, report.threads);
    std::fprintf(out, "partitioned solve: %s\n",
                 report.partition.ToString().c_str());
  } else {
    std::fprintf(
        out,
        "phase times (s): features %.3f | embedding %.3f | cccp %.3f | "
        "svd %.3f | total %.3f  [%zu thread(s)]\n",
        times.features_seconds, times.embedding_seconds, times.cccp_seconds,
        times.svd_seconds, times.total_seconds, report.threads);
  }
  std::fprintf(out, "solver backend: %s",
               SolverBackendName(report.solver_backend));
  if (report.solver_backend == SolverBackend::kFactored) {
    std::fprintf(out, " (rank %zu, fitted rank %zu)", report.solver_rank,
                 report.memory_stats.solver_rank);
  }
  std::fprintf(out, "\n");
  std::fprintf(out, "sparse-path memory: %s\n",
               report.memory_stats.ToString().c_str());
  if (report.artifact.present) {
    std::fprintf(out, "artifact: %llu bytes (%s",
                 static_cast<unsigned long long>(
                     report.artifact.artifact_bytes),
                 report.artifact.mode.c_str());
    if (report.artifact.mode != "float" &&
        report.artifact.float_artifact_bytes > 0) {
      std::fprintf(
          out, ", float equiv %llu bytes, %.2fx smaller, %zu hot row(s)",
          static_cast<unsigned long long>(
              report.artifact.float_artifact_bytes),
          static_cast<double>(report.artifact.float_artifact_bytes) /
              static_cast<double>(report.artifact.artifact_bytes),
          report.artifact.hot_rows);
    }
    std::fprintf(out, ")\n");
  }
  if (report.recovery.Total() > 0) {
    std::fprintf(out, "solver recoveries: %s\n",
                 report.recovery.ToString().c_str());
  }
}

std::string FitReportJson(const FitReport& report) {
  std::string out = "{";
  out += "\"threads\":" + std::to_string(report.threads);
  out += ",\"solver_backend\":\"";
  out += SolverBackendName(report.solver_backend);
  out += "\"";
  out += ",\"solver_rank\":" + std::to_string(report.solver_rank);

  out += ",\"partitioned\":";
  out += report.partitioned ? "true" : "false";

  out += ",\"phase_times\":{";
  bool first = true;
  AppendField(out, "partition_seconds", report.phase_times.partition_seconds,
              &first);
  AppendField(out, "features_seconds", report.phase_times.features_seconds,
              &first);
  AppendField(out, "embedding_seconds", report.phase_times.embedding_seconds,
              &first);
  AppendField(out, "cccp_seconds", report.phase_times.cccp_seconds, &first);
  AppendField(out, "svd_seconds", report.phase_times.svd_seconds, &first);
  AppendField(out, "total_seconds", report.phase_times.total_seconds, &first);
  out += "}";

  const FitMemoryStats& mem = report.memory_stats;
  out += ",\"memory_stats\":{";
  first = true;
  AppendField(out, "adjacency_nnz", mem.adjacency_nnz, &first);
  AppendField(out, "adjacency_bytes", mem.adjacency_bytes, &first);
  AppendField(out, "adjacency_dense_bytes", mem.adjacency_dense_bytes,
              &first);
  AppendField(out, "raw_tensor_nnz", mem.raw_tensor_nnz, &first);
  AppendField(out, "raw_tensor_bytes", mem.raw_tensor_bytes, &first);
  AppendField(out, "raw_tensor_dense_bytes", mem.raw_tensor_dense_bytes,
              &first);
  AppendField(out, "adapted_tensor_nnz", mem.adapted_tensor_nnz, &first);
  AppendField(out, "adapted_tensor_bytes", mem.adapted_tensor_bytes, &first);
  AppendField(out, "adapted_tensor_dense_bytes",
              mem.adapted_tensor_dense_bytes, &first);
  AppendField(out, "peak_bytes", mem.peak_bytes, &first);
  AppendField(out, "iterate_bytes", mem.iterate_bytes, &first);
  AppendField(out, "iterate_dense_bytes", mem.iterate_dense_bytes, &first);
  AppendField(out, "solver_rank", mem.solver_rank, &first);
  out += "}";

  const RecoveryStats& rec = report.recovery;
  out += ",\"recovery\":{";
  first = true;
  AppendField(out, "nan_rollbacks", rec.nan_rollbacks, &first);
  AppendField(out, "prox_rollbacks", rec.prox_rollbacks, &first);
  AppendField(out, "divergence_backoffs", rec.divergence_backoffs, &first);
  AppendField(out, "svd_fallbacks", rec.svd_fallbacks, &first);
  AppendField(out, "checkpoint_resumes", rec.checkpoint_resumes, &first);
  AppendField(out, "swap_failures", rec.swap_failures, &first);
  AppendField(out, "batch_failures", rec.batch_failures, &first);
  AppendField(out, "shed", rec.shed, &first);
  AppendField(out, "deadline_exceeded", rec.deadline_exceeded, &first);
  AppendField(out, "breaker_trips", rec.breaker_trips, &first);
  AppendField(out, "degraded_responses", rec.degraded_responses, &first);
  AppendField(out, "artifact_rollbacks", rec.artifact_rollbacks, &first);
  AppendField(out, "total", rec.Total(), &first);
  out += "}";

  if (report.partitioned) {
    const PartitionStats& part = report.partition;
    out += ",\"partition\":{";
    first = true;
    AppendField(out, "num_clusters", part.num_clusters, &first);
    AppendField(out, "min_cluster", part.min_cluster, &first);
    AppendField(out, "max_cluster", part.max_cluster, &first);
    AppendField(out, "mean_cluster", part.mean_cluster, &first);
    AppendField(out, "cut_edges", part.cut_edges, &first);
    AppendField(out, "total_edges", part.total_edges, &first);
    AppendField(out, "cut_edge_fraction", part.cut_edge_fraction, &first);
    AppendField(out, "refine_seconds", part.refine_seconds, &first);
    out += ",\"size_histogram\":[";
    for (std::size_t b = 0; b < part.size_histogram.size(); ++b) {
      if (b > 0) out += ",";
      out += std::to_string(part.size_histogram[b]);
    }
    out += "],\"cluster_solve_seconds\":[";
    for (std::size_t c = 0; c < part.cluster_solve_seconds.size(); ++c) {
      if (c > 0) out += ",";
      out += FormatDouble(part.cluster_solve_seconds[c], 6);
    }
    out += "]}";
  }

  if (report.artifact.present) {
    out += ",\"artifact\":{";
    out += "\"mode\":\"" + report.artifact.mode + "\"";
    out += ",\"artifact_bytes\":" +
           std::to_string(report.artifact.artifact_bytes);
    out += ",\"float_artifact_bytes\":" +
           std::to_string(report.artifact.float_artifact_bytes);
    out += ",\"hot_rows\":" + std::to_string(report.artifact.hot_rows);
    out += "}";
  }

  out += "}";
  return out;
}

Status WriteFitReportJson(const FitReport& report, const std::string& path) {
  const std::string json = FitReportJson(report) + "\n";
  if (path == "-") {
    std::fwrite(json.data(), 1, json.size(), stdout);
    return Status::OK();
  }
  return WriteStringToFile(json, path);
}

}  // namespace slampred
