// One place for the fit diagnostics every front end prints: phase wall
// times, sparse-path memory footprint and solver recoveries. Previously
// duplicated across slampred_cli predict/evaluate and bench_fig3; they
// all call PrintFitReport now, and --stats-json emits the same numbers
// machine-readably through FitReportJson.

#ifndef SLAMPRED_CORE_FIT_REPORT_H_
#define SLAMPRED_CORE_FIT_REPORT_H_

#include <cstdint>
#include <cstdio>
#include <string>

#include "core/slampred.h"
#include "optim/guardrails.h"
#include "util/status.h"

namespace slampred {

/// Byte accounting of the artifact a fit wrote — filled by the CLI
/// after serialization (absent when no artifact was written). For a
/// quantized fit, `artifact_bytes` is the quantized form actually saved
/// and `float_artifact_bytes` what the same model costs in float form.
struct ArtifactSizeStats {
  bool present = false;
  /// "float", "u8" or "u16".
  std::string mode = "float";
  std::uint64_t artifact_bytes = 0;
  std::uint64_t float_artifact_bytes = 0;
  /// Hot rows snapshotted into the artifact (quantized fits only).
  std::size_t hot_rows = 0;
};

/// Snapshot of one fit's diagnostics plus the thread count it ran with.
struct FitReport {
  FitPhaseTimes phase_times;
  FitMemoryStats memory_stats;
  RecoveryStats recovery;
  std::size_t threads = 1;
  /// Solver backend of the fit and, for the factored backend, the
  /// configured factor rank (the fitted rank is
  /// memory_stats.solver_rank).
  SolverBackend solver_backend = SolverBackend::kDense;
  std::size_t solver_rank = 0;
  /// True when the fit ran the hierarchical partitioned solve; then
  /// `partition` carries the cluster structure and per-cluster timings.
  bool partitioned = false;
  PartitionStats partition;
  /// Bytes of the written artifact (quantized vs float).
  ArtifactSizeStats artifact;
};

/// Collects the report of `model`'s last Fit (threads = current global
/// pool size).
FitReport MakeFitReport(const SlamPred& model);

/// Prints the standard human-readable block to `out`:
///   phase times (s): ... [N thread(s)]
///   sparse-path memory: ...
///   solver recoveries: ...        (only when any were taken)
void PrintFitReport(std::FILE* out, const FitReport& report);

/// The same stats as a single JSON object (one line, no trailing
/// newline).
std::string FitReportJson(const FitReport& report);

/// Writes FitReportJson to `path`, or to stdout when `path` is "-".
Status WriteFitReportJson(const FitReport& report, const std::string& path);

}  // namespace slampred

#endif  // SLAMPRED_CORE_FIT_REPORT_H_
