// Versioned binary model artifact — the train-once / serve-many
// boundary. A fitted SlamPred exports an artifact (config + predictor
// matrix S + optionally the adapted CSR tensors); ScoringSession loads
// it back and serves scores with no refit. Scores from a loaded
// artifact are bit-identical to the in-memory model: S round-trips
// through exact IEEE-754 bit patterns.
//
// On-disk format (little-endian; see DESIGN.md "Fit pipeline and model
// artifacts" for the full table):
//
//   offset 0   8-byte magic "SLPMODEL"
//   offset 8   u32 format version (kModelArtifactFormatVersion)
//   offset 12  u32 section count
//   then per section:
//     u32 section id · u64 payload bytes · payload · u32 CRC-32(payload)
//
// Loading is strict: bad magic, an unsupported version, a truncated
// payload or a checksum mismatch all return an offset-diagnosed
// kIoError Status — never a crash — and unknown section ids are
// skipped (their checksums still verified) so minor additive format
// growth stays readable.

#ifndef SLAMPRED_CORE_MODEL_ARTIFACT_H_
#define SLAMPRED_CORE_MODEL_ARTIFACT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/hot_row_cache.h"
#include "core/score_shards.h"
#include "core/slampred.h"
#include "linalg/factored_matrix.h"
#include "linalg/matrix.h"
#include "linalg/quantized_matrix.h"
#include "linalg/sparse_tensor3.h"
#include "util/status.h"

namespace slampred {

/// Bumped on any incompatible layout change; readers reject other
/// versions with a diagnosed error rather than guessing.
inline constexpr std::uint32_t kModelArtifactFormatVersion = 1;

/// The serializable outcome of one fit.
struct ModelArtifact {
  /// Full model configuration the fit ran with (the -T/-H variant, the
  /// regularization weights, the solver settings — everything needed to
  /// reproduce or identify the model).
  SlamPredConfig config;
  /// The fitted predictor matrix S (n x n). Empty when the model was
  /// fitted with the factored backend — `low_rank` holds S = U·Vᵀ then.
  Matrix s;
  /// The factored predictor S = U·Vᵀ of a factored-backend fit, stored
  /// as its own checksummed section so artifacts stay O(n·r). Presence
  /// of this section marks the artifact as factored at load time
  /// (config.solver_backend is forced to kFactored); old readers skip
  /// the unknown section and reject only because `s` is absent.
  FactoredMatrix low_rank;
  bool has_low_rank = false;
  /// Optionally the adapted feature tensors X̂^k of the fit (target
  /// coordinates, CSR) — for artifact consumers that post-process
  /// features; omitted by default to keep serving artifacts small.
  std::vector<SparseTensor3> adapted_tensors;
  bool has_adapted_tensors = false;
  /// The sharded predictor of a partitioned fit: every cluster's score
  /// block is its own checksummed section (independently replaceable at
  /// serve time), preceded by a manifest section mapping clusters to
  /// their user ranges and followed by the boundary-refinement CSR.
  /// Presence marks the artifact as partitioned; readers predating the
  /// sections skip them and fail cleanly on the missing score matrix.
  ShardedScores shards;
  bool has_shards = false;
  /// Quantized full score matrix (DESIGN.md §15): per-row scale/offset
  /// plus u8/u16 codes, written in place of the float payload by the
  /// artifact quantizer for dense and factored-densified models.
  /// Quantized SHARDED models instead carry quantized blocks inside
  /// `shards`. Readers predating the section skip it (checksums still
  /// verified) and reject only because no float score matrix follows.
  QuantizedMatrix quantized_s;
  bool has_quantized_s = false;
  /// Precomputed top-K row prefixes for the hot-user set, snapshotted
  /// from the FLOAT scores before quantization dropped them, so serving
  /// a hot user is bit-equal to a float session's lazily-built order.
  HotRowCache hot_rows;
  bool has_hot_rows = false;
};

/// Snapshots a fitted model into an artifact. Fails with
/// kFailedPrecondition before Fit.
Result<ModelArtifact> MakeModelArtifact(const SlamPred& model,
                                        bool include_adapted_tensors = false);

/// Serializes `artifact` to its binary form.
std::string SerializeModelArtifact(const ModelArtifact& artifact);

/// Parses an artifact from its binary form; every failure is an
/// offset-diagnosed Status.
Result<ModelArtifact> DeserializeModelArtifact(const std::string& bytes);

/// Writes `artifact` to `path` (kIoError on filesystem failure).
Status SaveModelArtifact(const ModelArtifact& artifact,
                         const std::string& path);

/// The `last_good` sidecar path of a published artifact: the previous
/// fully-verified copy WriteArtifactAtomic keeps beside `path` so a
/// loader can roll back when `path` is torn or corrupt.
std::string LastGoodArtifactPath(const std::string& path);

/// Crash-safe artifact publication: serializes once, writes `path` via
/// WriteFileAtomic (tmp + fsync + rename, so a kill mid-write can never
/// leave a torn artifact at the published path), then refreshes the
/// LastGoodArtifactPath sidecar with the same verified bytes. A failure
/// while refreshing the sidecar does not un-publish `path`.
Status WriteArtifactAtomic(const ModelArtifact& artifact,
                           const std::string& path);

/// Reads and parses an artifact file. Honors the "artifact.read" fault
/// site. Corrupt / truncated / wrong-version files are rejected with a
/// diagnosed Status.
Result<ModelArtifact> LoadModelArtifact(const std::string& path);

}  // namespace slampred

#endif  // SLAMPRED_CORE_MODEL_ARTIFACT_H_
