#include "core/model_artifact.h"

#include <algorithm>
#include <cstring>
#include <utility>
#include <vector>

#include "util/binary_io.h"
#include "util/fault_injection.h"

namespace slampred {
namespace {

constexpr char kMagic[8] = {'S', 'L', 'P', 'M', 'O', 'D', 'E', 'L'};

// Section ids of format version 1. kSectionLowRankFactors is an
// additive extension within the version: readers predating it skip the
// section (checksum still verified) and fail cleanly on the missing
// score matrix rather than misreading the factors.
enum SectionId : std::uint32_t {
  kSectionConfig = 1,
  kSectionScoreMatrix = 2,
  kSectionAdaptedTensors = 3,
  kSectionLowRankFactors = 4,
  // Sharded (partitioned-fit) artifacts: one manifest (user count +
  // per-shard user ranges), then one section per shard (its index +
  // ModelShard payload) so a serving registry can re-publish a single
  // shard, then the boundary-refinement CSR.
  kSectionShardManifest = 5,
  kSectionShard = 6,
  kSectionBoundary = 7,
  // Quantized artifacts (DESIGN.md §15). All additive within the
  // format version: old readers skip them (checksums still verified)
  // and fail cleanly on the missing float payload.
  kSectionQuantizedScores = 8,    // full-matrix QuantizedMatrix
  kSectionQuantizedShard = 9,     // shard index + users + quantized block
  kSectionQuantizedBoundary = 10,  // QuantizedSymmetricCsr
  kSectionHotCache = 11,          // precomputed hot-user row prefixes
};

// The config is stored field by field in a fixed order; any layout
// change here must bump kModelArtifactFormatVersion.
void SerializeConfig(const SlamPredConfig& config, BinaryWriter& writer) {
  writer.WriteDouble(config.alpha_target);
  writer.WriteU64(config.alpha_sources.size());
  for (double alpha : config.alpha_sources) writer.WriteDouble(alpha);
  writer.WriteDouble(config.mu);
  writer.WriteDouble(config.gamma);
  writer.WriteDouble(config.tau);
  writer.WriteDouble(config.intimacy_scale);
  writer.WriteU64(config.latent_dim);
  writer.WriteBool(config.use_attributes);
  writer.WriteBool(config.use_sources);
  writer.WriteBool(config.domain_adaptation);
  writer.WriteBool(config.project_target_features);
  writer.WriteU8(static_cast<std::uint8_t>(config.loss));
  writer.WriteU64(config.seed);

  const FeatureTensorOptions& f = config.features;
  writer.WriteBool(f.common_neighbors);
  writer.WriteBool(f.jaccard);
  writer.WriteBool(f.adamic_adar);
  writer.WriteBool(f.resource_allocation);
  writer.WriteBool(f.preferential_attachment);
  writer.WriteBool(f.truncated_katz);
  writer.WriteDouble(f.katz_beta);
  writer.WriteBool(f.word_similarity);
  writer.WriteBool(f.location_similarity);
  writer.WriteBool(f.time_similarity);
  writer.WriteBool(f.meta_paths);
  writer.WriteBool(f.sqrt_transform);

  const DomainAdapterOptions& a = config.adapter;
  writer.WriteU64(a.projection.latent_dim);
  writer.WriteDouble(a.projection.mu);
  writer.WriteU64(a.sampling.positives_per_network);
  writer.WriteU64(a.sampling.negatives_per_network);
  writer.WriteU64(a.sampling.max_negative_attempts);
  writer.WriteBool(a.normalize_adapted);

  const CccpOptions& o = config.optimization;
  writer.WriteDouble(o.inner.theta);
  writer.WriteI32(o.inner.max_iterations);
  writer.WriteDouble(o.inner.tol);
  writer.WriteBool(o.inner.project_unit_box);
  writer.WriteBool(o.inner.keep_symmetric);
  writer.WriteBool(o.inner.guardrails.enabled);
  writer.WriteDouble(o.inner.guardrails.backoff_factor);
  writer.WriteI32(o.inner.guardrails.max_recoveries);
  writer.WriteDouble(o.inner.guardrails.divergence_factor);
  writer.WriteI32(o.inner.guardrails.divergence_window);
  writer.WriteI32(o.inner.guardrails.max_svd_fallbacks);
  writer.WriteI32(o.inner.guardrails.max_checkpoint_resumes);
  writer.WriteBool(o.inner.nuclear_prox.use_randomized);
  writer.WriteU64(o.inner.nuclear_prox.randomized.rank);
  writer.WriteU64(o.inner.nuclear_prox.randomized.oversampling);
  writer.WriteI32(o.inner.nuclear_prox.randomized.power_iterations);
  writer.WriteU64(o.inner.nuclear_prox.randomized.seed);
  writer.WriteI32(o.max_outer_iterations);
  writer.WriteDouble(o.outer_tol);
}

#define SLAMPRED_READ_INTO(lhs, expr)            \
  do {                                           \
    auto _read = (expr);                         \
    if (!_read.ok()) return _read.status();      \
    lhs = _read.value();                         \
  } while (false)

Result<SlamPredConfig> DeserializeConfig(BinaryReader& reader) {
  SlamPredConfig config;
  SLAMPRED_READ_INTO(config.alpha_target, reader.ReadDouble());
  std::uint64_t num_alpha_sources = 0;
  SLAMPRED_READ_INTO(num_alpha_sources, reader.ReadU64());
  if (num_alpha_sources > reader.remaining() / sizeof(double)) {
    return reader.Truncated(
        static_cast<std::size_t>(num_alpha_sources) * sizeof(double),
        "alpha_sources");
  }
  config.alpha_sources.assign(static_cast<std::size_t>(num_alpha_sources),
                              0.0);
  for (double& alpha : config.alpha_sources) {
    SLAMPRED_READ_INTO(alpha, reader.ReadDouble());
  }
  SLAMPRED_READ_INTO(config.mu, reader.ReadDouble());
  SLAMPRED_READ_INTO(config.gamma, reader.ReadDouble());
  SLAMPRED_READ_INTO(config.tau, reader.ReadDouble());
  SLAMPRED_READ_INTO(config.intimacy_scale, reader.ReadDouble());
  SLAMPRED_READ_INTO(config.latent_dim, reader.ReadU64());
  SLAMPRED_READ_INTO(config.use_attributes, reader.ReadBool());
  SLAMPRED_READ_INTO(config.use_sources, reader.ReadBool());
  SLAMPRED_READ_INTO(config.domain_adaptation, reader.ReadBool());
  SLAMPRED_READ_INTO(config.project_target_features, reader.ReadBool());
  const std::size_t loss_offset = reader.offset();
  std::uint8_t loss = 0;
  SLAMPRED_READ_INTO(loss, reader.ReadU8());
  if (loss > static_cast<std::uint8_t>(LossKind::kSquaredHinge)) {
    return Status::IoError("corrupt loss kind " + std::to_string(loss) +
                           " at offset " + std::to_string(loss_offset));
  }
  config.loss = static_cast<LossKind>(loss);
  SLAMPRED_READ_INTO(config.seed, reader.ReadU64());

  FeatureTensorOptions& f = config.features;
  SLAMPRED_READ_INTO(f.common_neighbors, reader.ReadBool());
  SLAMPRED_READ_INTO(f.jaccard, reader.ReadBool());
  SLAMPRED_READ_INTO(f.adamic_adar, reader.ReadBool());
  SLAMPRED_READ_INTO(f.resource_allocation, reader.ReadBool());
  SLAMPRED_READ_INTO(f.preferential_attachment, reader.ReadBool());
  SLAMPRED_READ_INTO(f.truncated_katz, reader.ReadBool());
  SLAMPRED_READ_INTO(f.katz_beta, reader.ReadDouble());
  SLAMPRED_READ_INTO(f.word_similarity, reader.ReadBool());
  SLAMPRED_READ_INTO(f.location_similarity, reader.ReadBool());
  SLAMPRED_READ_INTO(f.time_similarity, reader.ReadBool());
  SLAMPRED_READ_INTO(f.meta_paths, reader.ReadBool());
  SLAMPRED_READ_INTO(f.sqrt_transform, reader.ReadBool());

  DomainAdapterOptions& a = config.adapter;
  SLAMPRED_READ_INTO(a.projection.latent_dim, reader.ReadU64());
  SLAMPRED_READ_INTO(a.projection.mu, reader.ReadDouble());
  SLAMPRED_READ_INTO(a.sampling.positives_per_network, reader.ReadU64());
  SLAMPRED_READ_INTO(a.sampling.negatives_per_network, reader.ReadU64());
  SLAMPRED_READ_INTO(a.sampling.max_negative_attempts, reader.ReadU64());
  SLAMPRED_READ_INTO(a.normalize_adapted, reader.ReadBool());

  CccpOptions& o = config.optimization;
  SLAMPRED_READ_INTO(o.inner.theta, reader.ReadDouble());
  SLAMPRED_READ_INTO(o.inner.max_iterations, reader.ReadI32());
  SLAMPRED_READ_INTO(o.inner.tol, reader.ReadDouble());
  SLAMPRED_READ_INTO(o.inner.project_unit_box, reader.ReadBool());
  SLAMPRED_READ_INTO(o.inner.keep_symmetric, reader.ReadBool());
  SLAMPRED_READ_INTO(o.inner.guardrails.enabled, reader.ReadBool());
  SLAMPRED_READ_INTO(o.inner.guardrails.backoff_factor, reader.ReadDouble());
  SLAMPRED_READ_INTO(o.inner.guardrails.max_recoveries, reader.ReadI32());
  SLAMPRED_READ_INTO(o.inner.guardrails.divergence_factor,
                     reader.ReadDouble());
  SLAMPRED_READ_INTO(o.inner.guardrails.divergence_window, reader.ReadI32());
  SLAMPRED_READ_INTO(o.inner.guardrails.max_svd_fallbacks, reader.ReadI32());
  SLAMPRED_READ_INTO(o.inner.guardrails.max_checkpoint_resumes,
                     reader.ReadI32());
  SLAMPRED_READ_INTO(o.inner.nuclear_prox.use_randomized, reader.ReadBool());
  SLAMPRED_READ_INTO(o.inner.nuclear_prox.randomized.rank, reader.ReadU64());
  SLAMPRED_READ_INTO(o.inner.nuclear_prox.randomized.oversampling,
                     reader.ReadU64());
  SLAMPRED_READ_INTO(o.inner.nuclear_prox.randomized.power_iterations,
                     reader.ReadI32());
  SLAMPRED_READ_INTO(o.inner.nuclear_prox.randomized.seed, reader.ReadU64());
  SLAMPRED_READ_INTO(o.max_outer_iterations, reader.ReadI32());
  SLAMPRED_READ_INTO(o.outer_tol, reader.ReadDouble());
  return config;
}

#undef SLAMPRED_READ_INTO

void AppendSection(std::uint32_t id, const std::string& payload,
                   BinaryWriter& writer) {
  writer.WriteU32(id);
  writer.WriteU64(payload.size());
  writer.WriteBytes(payload.data(), payload.size());
  writer.WriteU32(Crc32(payload.data(), payload.size()));
}

// Translates the "artifact.read" fault site into a load failure.
Status InjectedArtifactFault() {
  switch (SLAMPRED_FAULT_HIT("artifact.read")) {
    case FaultKind::kFailIo:
      return Status::IoError("injected artifact read fault");
    case FaultKind::kFailNumerical:
    case FaultKind::kPoisonNaN:
    case FaultKind::kPoisonInf:
      return Status::NumericalError("injected artifact read fault");
    case FaultKind::kFailNotConverged:
      return Status::NotConverged("injected artifact read fault");
    case FaultKind::kNone:
      break;
  }
  return Status::OK();
}

}  // namespace

Result<ModelArtifact> MakeModelArtifact(const SlamPred& model,
                                        bool include_adapted_tensors) {
  if (!model.fitted()) {
    return Status::FailedPrecondition(
        "cannot snapshot an artifact before Fit");
  }
  ModelArtifact artifact;
  artifact.config = model.config();
  if (model.partitioned()) {
    artifact.shards = model.ShardedScoreMatrix();
    artifact.has_shards = true;
  } else if (model.config().solver_backend == SolverBackend::kFactored) {
    artifact.low_rank = model.FactoredScoreMatrix();
    artifact.has_low_rank = true;
  } else {
    artifact.s = model.ScoreMatrix();
  }
  if (include_adapted_tensors) {
    artifact.adapted_tensors = model.adapted_tensors();
    artifact.has_adapted_tensors = true;
  }
  return artifact;
}

std::string SerializeModelArtifact(const ModelArtifact& artifact) {
  BinaryWriter writer;
  writer.WriteBytes(kMagic, sizeof(kMagic));
  writer.WriteU32(kModelArtifactFormatVersion);
  const bool write_s =
      !artifact.s.empty() ||
      (!artifact.has_low_rank && !artifact.has_shards &&
       !artifact.has_quantized_s);
  std::uint32_t section_count = 1u;  // config is always present
  if (write_s) ++section_count;
  if (artifact.has_low_rank) ++section_count;
  if (artifact.has_quantized_s) ++section_count;
  if (artifact.has_hot_rows) ++section_count;
  if (artifact.has_adapted_tensors) ++section_count;
  if (artifact.has_shards) {
    // Manifest + one section per shard (float or quantized) + the
    // boundary (float CSR or quantized).
    section_count +=
        2u + static_cast<std::uint32_t>(artifact.shards.num_shards());
  }
  writer.WriteU32(section_count);

  BinaryWriter config_writer;
  SerializeConfig(artifact.config, config_writer);
  AppendSection(kSectionConfig, config_writer.buffer(), writer);

  if (write_s) {
    BinaryWriter s_writer;
    artifact.s.Serialize(s_writer);
    AppendSection(kSectionScoreMatrix, s_writer.buffer(), writer);
  }

  if (artifact.has_low_rank) {
    BinaryWriter factor_writer;
    artifact.low_rank.Serialize(factor_writer);
    AppendSection(kSectionLowRankFactors, factor_writer.buffer(), writer);
  }

  if (artifact.has_quantized_s) {
    BinaryWriter q_writer;
    artifact.quantized_s.Serialize(q_writer);
    AppendSection(kSectionQuantizedScores, q_writer.buffer(), writer);
  }

  if (artifact.has_hot_rows) {
    BinaryWriter hot_writer;
    artifact.hot_rows.Serialize(hot_writer);
    AppendSection(kSectionHotCache, hot_writer.buffer(), writer);
  }

  if (artifact.has_adapted_tensors) {
    BinaryWriter tensor_writer;
    tensor_writer.WriteU64(artifact.adapted_tensors.size());
    for (const SparseTensor3& tensor : artifact.adapted_tensors) {
      tensor.Serialize(tensor_writer);
    }
    AppendSection(kSectionAdaptedTensors, tensor_writer.buffer(), writer);
  }

  if (artifact.has_shards) {
    const ShardedScores& shards = artifact.shards;
    BinaryWriter manifest_writer;
    manifest_writer.WriteU64(shards.num_users());
    manifest_writer.WriteU64(shards.num_shards());
    for (const ModelShard& shard : shards.shards()) {
      manifest_writer.WriteU64(shard.users.size());
      manifest_writer.WriteU32(shard.users.front());
      manifest_writer.WriteU32(shard.users.back());
    }
    AppendSection(kSectionShardManifest, manifest_writer.buffer(), writer);

    for (std::size_t i = 0; i < shards.num_shards(); ++i) {
      const ModelShard& shard = shards.shards()[i];
      BinaryWriter shard_writer;
      shard_writer.WriteU64(i);
      if (shard.has_quantized) {
        shard_writer.WriteU64(shard.users.size());
        for (const std::uint32_t u : shard.users) shard_writer.WriteU32(u);
        shard.quantized.Serialize(shard_writer);
        AppendSection(kSectionQuantizedShard, shard_writer.buffer(), writer);
      } else {
        shard.Serialize(shard_writer);
        AppendSection(kSectionShard, shard_writer.buffer(), writer);
      }
    }

    if (shards.has_quantized_boundary()) {
      BinaryWriter boundary_writer;
      shards.quantized_boundary().Serialize(boundary_writer);
      AppendSection(kSectionQuantizedBoundary, boundary_writer.buffer(),
                    writer);
    } else {
      BinaryWriter boundary_writer;
      shards.boundary().Serialize(boundary_writer);
      AppendSection(kSectionBoundary, boundary_writer.buffer(), writer);
    }
  }
  return writer.TakeBuffer();
}

Result<ModelArtifact> DeserializeModelArtifact(const std::string& bytes) {
  BinaryReader reader(bytes);
  char magic[sizeof(kMagic)];
  SLAMPRED_RETURN_NOT_OK(reader.ReadBytes(magic, sizeof(magic)));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::IoError(
        "bad magic at offset 0: not a SLAMPRED model artifact");
  }
  const std::size_t version_offset = reader.offset();
  auto version = reader.ReadU32();
  if (!version.ok()) return version.status();
  if (version.value() != kModelArtifactFormatVersion) {
    return Status::IoError(
        "unsupported artifact format version " +
        std::to_string(version.value()) + " at offset " +
        std::to_string(version_offset) + " (this build reads version " +
        std::to_string(kModelArtifactFormatVersion) + ")");
  }
  auto section_count = reader.ReadU32();
  if (!section_count.ok()) return section_count.status();

  ModelArtifact artifact;
  bool have_config = false;
  bool have_s = false;
  bool have_low_rank = false;
  bool have_manifest = false;
  bool have_boundary = false;
  bool have_quantized_boundary = false;
  std::uint64_t manifest_users = 0;
  std::vector<std::uint64_t> manifest_sizes;
  std::vector<std::pair<std::uint64_t, ModelShard>> loaded_shards;
  CsrMatrix boundary;
  QuantizedSymmetricCsr quantized_boundary;
  for (std::uint32_t i = 0; i < section_count.value(); ++i) {
    const std::size_t section_offset = reader.offset();
    auto id = reader.ReadU32();
    if (!id.ok()) return id.status();
    auto payload_size = reader.ReadU64();
    if (!payload_size.ok()) return payload_size.status();
    if (payload_size.value() > reader.remaining()) {
      return reader.Truncated(
          static_cast<std::size_t>(payload_size.value()), "section payload");
    }
    const unsigned char* payload = reader.current();
    const std::size_t size = static_cast<std::size_t>(payload_size.value());
    SLAMPRED_RETURN_NOT_OK(reader.Skip(size));
    const std::size_t crc_offset = reader.offset();
    auto stored_crc = reader.ReadU32();
    if (!stored_crc.ok()) return stored_crc.status();
    const std::uint32_t computed_crc = Crc32(payload, size);
    if (stored_crc.value() != computed_crc) {
      return Status::IoError(
          "checksum mismatch in section " + std::to_string(id.value()) +
          " starting at offset " + std::to_string(section_offset) +
          " (stored crc at offset " + std::to_string(crc_offset) + ")");
    }

    BinaryReader section(payload, size);
    switch (id.value()) {
      case kSectionConfig: {
        auto config = DeserializeConfig(section);
        if (!config.ok()) return config.status();
        artifact.config = std::move(config).value();
        have_config = true;
        break;
      }
      case kSectionScoreMatrix: {
        auto s = Matrix::Deserialize(section);
        if (!s.ok()) return s.status();
        artifact.s = std::move(s).value();
        have_s = true;
        break;
      }
      case kSectionLowRankFactors: {
        auto factors = FactoredMatrix::Deserialize(section);
        if (!factors.ok()) return factors.status();
        artifact.low_rank = std::move(factors).value();
        artifact.has_low_rank = true;
        have_low_rank = true;
        break;
      }
      case kSectionAdaptedTensors: {
        auto count = section.ReadU64();
        if (!count.ok()) return count.status();
        artifact.adapted_tensors.clear();
        for (std::uint64_t k = 0; k < count.value(); ++k) {
          auto tensor = SparseTensor3::Deserialize(section);
          if (!tensor.ok()) return tensor.status();
          artifact.adapted_tensors.push_back(std::move(tensor).value());
        }
        artifact.has_adapted_tensors = true;
        break;
      }
      case kSectionShardManifest: {
        auto users = section.ReadU64();
        if (!users.ok()) return users.status();
        manifest_users = users.value();
        auto shard_count = section.ReadU64();
        if (!shard_count.ok()) return shard_count.status();
        for (std::uint64_t k = 0; k < shard_count.value(); ++k) {
          auto shard_users = section.ReadU64();
          if (!shard_users.ok()) return shard_users.status();
          auto first = section.ReadU32();
          if (!first.ok()) return first.status();
          auto last = section.ReadU32();
          if (!last.ok()) return last.status();
          manifest_sizes.push_back(shard_users.value());
        }
        have_manifest = true;
        break;
      }
      case kSectionShard: {
        auto index = section.ReadU64();
        if (!index.ok()) return index.status();
        auto shard = ModelShard::Deserialize(section);
        if (!shard.ok()) return shard.status();
        loaded_shards.emplace_back(index.value(), std::move(shard).value());
        break;
      }
      case kSectionBoundary: {
        auto csr = CsrMatrix::Deserialize(section);
        if (!csr.ok()) return csr.status();
        boundary = std::move(csr).value();
        have_boundary = true;
        break;
      }
      case kSectionQuantizedScores: {
        auto q = QuantizedMatrix::Deserialize(section);
        if (!q.ok()) return q.status();
        SLAMPRED_RETURN_NOT_OK(q.value().Validate());
        artifact.quantized_s = std::move(q).value();
        artifact.has_quantized_s = true;
        break;
      }
      case kSectionQuantizedShard: {
        auto index = section.ReadU64();
        if (!index.ok()) return index.status();
        auto count = section.ReadU64();
        if (!count.ok()) return count.status();
        if (count.value() > section.remaining() / sizeof(std::uint32_t)) {
          return section.Truncated(
              static_cast<std::size_t>(count.value()) * sizeof(std::uint32_t),
              "quantized shard users");
        }
        ModelShard shard;
        shard.users.reserve(static_cast<std::size_t>(count.value()));
        for (std::uint64_t k = 0; k < count.value(); ++k) {
          auto user = section.ReadU32();
          if (!user.ok()) return user.status();
          shard.users.push_back(user.value());
        }
        auto block = QuantizedSymmetricDense::Deserialize(section);
        if (!block.ok()) return block.status();
        shard.quantized = std::move(block).value();
        shard.has_quantized = true;
        SLAMPRED_RETURN_NOT_OK(shard.Validate());
        loaded_shards.emplace_back(index.value(), std::move(shard));
        break;
      }
      case kSectionQuantizedBoundary: {
        auto q = QuantizedSymmetricCsr::Deserialize(section);
        if (!q.ok()) return q.status();
        quantized_boundary = std::move(q).value();
        have_quantized_boundary = true;
        break;
      }
      case kSectionHotCache: {
        auto cache = HotRowCache::Deserialize(section);
        if (!cache.ok()) return cache.status();
        artifact.hot_rows = std::move(cache).value();
        artifact.has_hot_rows = true;
        break;
      }
      default:
        // Checksum-verified but unknown: skip (additive growth within a
        // format version stays readable).
        break;
    }
  }
  if (have_manifest || !loaded_shards.empty()) {
    if (!have_manifest) {
      return Status::IoError(
          "sharded artifact carries shard sections but no manifest");
    }
    if (loaded_shards.size() != manifest_sizes.size()) {
      return Status::IoError(
          "sharded artifact manifest names " +
          std::to_string(manifest_sizes.size()) + " shards but " +
          std::to_string(loaded_shards.size()) + " shard sections follow");
    }
    std::sort(loaded_shards.begin(), loaded_shards.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::vector<ModelShard> shards;
    shards.reserve(loaded_shards.size());
    for (std::size_t k = 0; k < loaded_shards.size(); ++k) {
      if (loaded_shards[k].first != k) {
        return Status::IoError("sharded artifact shard index " +
                               std::to_string(k) + " is missing");
      }
      if (loaded_shards[k].second.users.size() != manifest_sizes[k]) {
        return Status::IoError(
            "shard " + std::to_string(k) + " covers " +
            std::to_string(loaded_shards[k].second.users.size()) +
            " users but the manifest promises " +
            std::to_string(manifest_sizes[k]));
      }
      shards.push_back(std::move(loaded_shards[k].second));
    }
    if (!have_boundary && !have_quantized_boundary) {
      return Status::IoError("sharded artifact is missing its boundary "
                             "section");
    }
    auto sharded = ShardedScores::Create(
        std::move(shards), std::move(boundary),
        static_cast<std::size_t>(manifest_users));
    if (!sharded.ok()) {
      return Status::IoError("sharded artifact is inconsistent: " +
                             sharded.status().message());
    }
    artifact.shards = std::move(sharded).value();
    if (have_quantized_boundary) {
      Status attached =
          artifact.shards.AttachQuantizedBoundary(std::move(quantized_boundary));
      if (!attached.ok()) {
        return Status::IoError("sharded artifact is inconsistent: " +
                               attached.message());
      }
    }
    artifact.has_shards = true;
  }
  if (!have_config || (!have_s && !have_low_rank && !artifact.has_shards &&
                       !artifact.has_quantized_s)) {
    return Status::IoError(
        "artifact is missing a required section (config and a score "
        "matrix — dense, low-rank factors, quantized scores, or shards — "
        "are mandatory)");
  }
  if (artifact.s.rows() != artifact.s.cols()) {
    return Status::IoError("artifact score matrix is not square: " +
                           std::to_string(artifact.s.rows()) + "x" +
                           std::to_string(artifact.s.cols()));
  }
  if (artifact.has_low_rank &&
      artifact.low_rank.rows() != artifact.low_rank.cols()) {
    return Status::IoError(
        "artifact low-rank factors are not square: " +
        std::to_string(artifact.low_rank.rows()) + "x" +
        std::to_string(artifact.low_rank.cols()));
  }
  if (artifact.has_quantized_s &&
      artifact.quantized_s.rows() != artifact.quantized_s.cols()) {
    return Status::IoError(
        "artifact quantized score matrix is not square: " +
        std::to_string(artifact.quantized_s.rows()) + "x" +
        std::to_string(artifact.quantized_s.cols()));
  }
  // The serialized config predates the factored backend and the
  // partitioner (their fields are not part of the fixed layout), so both
  // are inferred from the sections present — a low-rank artifact serves
  // factored scores; a sharded one marks itself partitioned.
  if (artifact.has_low_rank) {
    artifact.config.solver_backend = SolverBackend::kFactored;
  }
  if (artifact.has_shards) {
    artifact.config.partition.mode = PartitionMode::kAuto;
  }
  return artifact;
}

Status SaveModelArtifact(const ModelArtifact& artifact,
                         const std::string& path) {
  return WriteStringToFile(SerializeModelArtifact(artifact), path);
}

std::string LastGoodArtifactPath(const std::string& path) {
  return path + ".last_good";
}

Status WriteArtifactAtomic(const ModelArtifact& artifact,
                           const std::string& path) {
  const std::string bytes = SerializeModelArtifact(artifact);
  SLAMPRED_RETURN_NOT_OK(WriteFileAtomic(bytes, path));
  return WriteFileAtomic(bytes, LastGoodArtifactPath(path));
}

Result<ModelArtifact> LoadModelArtifact(const std::string& path) {
  SLAMPRED_RETURN_NOT_OK(InjectedArtifactFault());
  auto bytes = ReadFileToString(path);
  if (!bytes.ok()) return bytes.status();
  auto artifact = DeserializeModelArtifact(bytes.value());
  if (!artifact.ok()) {
    return Status(artifact.status().code(),
                  path + ": " + artifact.status().message());
  }
  return artifact;
}

}  // namespace slampred
