#include "core/fit_pipeline.h"

#include <algorithm>
#include <string>
#include <utility>

#include "optim/factored_solver.h"
#include "optim/objective.h"
#include "util/fault_injection.h"
#include "util/random.h"
#include "util/stopwatch.h"

namespace slampred {
namespace {

// Stage-level fault site: fail kinds map to the matching Status; the
// poison kinds (which ask the *caller* to corrupt numeric state) have
// no meaningful stage-granular analogue, so they surface as a numerical
// failure of the stage.
Status InjectedStageFault(const char* stage_name) {
  const std::string site = std::string("fit.") + stage_name;
  const std::string prefix = "fit stage '" + std::string(stage_name) + "': ";
  switch (SLAMPRED_FAULT_HIT(site)) {
    case FaultKind::kNone:
      return Status::OK();
    case FaultKind::kFailNotConverged:
      return Status::NotConverged(prefix + "injected not-converged fault");
    case FaultKind::kFailIo:
      return Status::IoError(prefix + "injected io fault");
    case FaultKind::kFailNumerical:
    case FaultKind::kPoisonNaN:
    case FaultKind::kPoisonInf:
      return Status::NumericalError(prefix + "injected numerical fault");
  }
  return Status::OK();
}

}  // namespace

FeatureStageConfig FeatureStageConfigFrom(const SlamPredConfig& config) {
  FeatureStageConfig stage;
  stage.features = config.features;
  stage.use_attributes = config.use_attributes;
  stage.use_sources = config.use_sources;
  // The -H variant drops every attribute slice and keeps only the
  // structural ones.
  if (!config.use_attributes) {
    stage.features.word_similarity = false;
    stage.features.location_similarity = false;
    stage.features.time_similarity = false;
  }
  return stage;
}

Status FeatureStage::Run(FitContext& context) const {
  const AlignedNetworks& networks = *context.networks;
  context.feature_options = config_.features;
  if (!config_.use_attributes) {
    context.feature_options.word_similarity = false;
    context.feature_options.location_similarity = false;
    context.feature_options.time_similarity = false;
  }

  context.raw_tensors.clear();
  context.raw_tensors.push_back(BuildSparseFeatureTensor(
      networks.target(), *context.target_structure, context.feature_options));

  // Without a single anchor link nothing can transfer and the projection
  // has no cross-network constraints, so an unaligned bundle degrades to
  // the target-only variant (matching Table II's ratio-0.0 column, where
  // SLAMPRED equals SLAMPRED-T).
  bool any_anchors = false;
  for (std::size_t k = 0; k < networks.num_sources(); ++k) {
    if (networks.anchors(k).size() > 0) {
      any_anchors = true;
      break;
    }
  }
  context.transfer =
      config_.use_sources && networks.num_sources() > 0 && any_anchors;
  if (context.transfer) {
    for (std::size_t k = 0; k < networks.num_sources(); ++k) {
      const SocialGraph source_graph =
          SocialGraph::FromHeterogeneousNetwork(networks.source(k));
      context.raw_tensors.push_back(BuildSparseFeatureTensor(
          networks.source(k), source_graph, context.feature_options));
    }
  }

  for (const SparseTensor3& tensor : context.raw_tensors) {
    context.memory_stats.raw_tensor_nnz += tensor.TotalNnz();
    context.memory_stats.raw_tensor_bytes += tensor.EstimatedBytes();
    context.memory_stats.raw_tensor_dense_bytes +=
        tensor.DenseEquivalentBytes();
  }
  return Status::OK();
}

EmbeddingStageConfig EmbeddingStageConfigFrom(const SlamPredConfig& config) {
  EmbeddingStageConfig stage;
  stage.domain_adaptation = config.domain_adaptation;
  stage.project_target_features = config.project_target_features;
  stage.adapter = config.adapter;
  stage.mu = config.mu;
  stage.latent_dim = config.latent_dim;
  stage.seed = config.seed;
  return stage;
}

Status EmbeddingStage::Run(FitContext& context) const {
  const AlignedNetworks& networks = *context.networks;
  // Feature-space projection (Theorem 1) — or the ablation passthrough.
  // The projection is applied in every variant (with no sources it
  // degrades to a within-network embedding) so that SLAMPRED at anchor
  // ratio 0 coincides with SLAMPRED-T exactly and source terms are pure
  // additions on top of an identical target treatment.
  DomainAdapterOptions adapter_options = config_.adapter;
  adapter_options.projection.mu = config_.mu;
  adapter_options.projection.latent_dim =
      std::min(config_.latent_dim, NumFeatures(context.feature_options));

  if (config_.domain_adaptation && context.transfer) {
    Rng rng(config_.seed);
    auto adapted = AdaptDomains(networks, *context.target_structure,
                                context.raw_tensors, adapter_options, rng);
    if (!adapted.ok()) return adapted.status();
    context.adapted_tensors = std::move(adapted).value().tensors;
    if (!config_.project_target_features) {
      // Keep the target's own intimacy features raw (default — see the
      // config comment); the source tensors stay projected.
      context.adapted_tensors[0] = context.raw_tensors[0];
    }
  } else if (config_.domain_adaptation && !context.transfer &&
             config_.project_target_features) {
    // Strict-paper mode on a single network: project the target through
    // the same pipeline with no cross-network blocks.
    Rng rng(config_.seed);
    AlignedNetworks target_only(networks.target());
    std::vector<SparseTensor3> target_tensor = {context.raw_tensors[0]};
    auto adapted = AdaptDomains(target_only, *context.target_structure,
                                target_tensor, adapter_options, rng);
    if (!adapted.ok()) return adapted.status();
    context.adapted_tensors = std::move(adapted).value().tensors;
  } else if (context.transfer) {
    auto adapted = PassthroughAdapt(networks, context.raw_tensors);
    if (!adapted.ok()) return adapted.status();
    context.adapted_tensors = std::move(adapted).value().tensors;
  } else {
    context.adapted_tensors.clear();
    context.adapted_tensors.push_back(std::move(context.raw_tensors[0]));
  }

  for (const SparseTensor3& tensor : context.adapted_tensors) {
    context.memory_stats.adapted_tensor_nnz += tensor.TotalNnz();
    context.memory_stats.adapted_tensor_bytes += tensor.EstimatedBytes();
    context.memory_stats.adapted_tensor_dense_bytes +=
        tensor.DenseEquivalentBytes();
  }
  return Status::OK();
}

SolveStageConfig SolveStageConfigFrom(const SlamPredConfig& config) {
  SolveStageConfig stage;
  stage.alpha_target = config.alpha_target;
  stage.alpha_sources = config.alpha_sources;
  stage.intimacy_scale = config.intimacy_scale;
  stage.gamma = config.gamma;
  stage.tau = config.tau;
  stage.loss = config.loss;
  stage.optimization = config.optimization;
  stage.solver_backend = config.solver_backend;
  stage.factored = config.factored;
  return stage;
}

Status SolveStage::Run(FitContext& context) const {
  if (context.adapted_tensors.empty()) {
    return Status::FailedPrecondition(
        "solve stage needs adapted tensors (run the embedding stage first)");
  }
  const std::size_t n = context.networks->target().NumUsers();

  // Intimacy weights: αᵗ then α^k per transferred source. Each weight is
  // divided by its tensor's slice count so Σ_c X̂(c,:,:) stays on the
  // same [0, 1] scale regardless of how many feature slices a network
  // contributes — otherwise the intimacy gradient would drown the
  // Frobenius loss and saturate every score at the box bound.
  std::vector<double> weights;
  const double d0 = std::max<double>(1.0, context.adapted_tensors[0].dim0());
  weights.push_back(config_.alpha_target * config_.intimacy_scale / d0);
  if (context.transfer) {
    for (std::size_t k = 0; k < context.networks->num_sources(); ++k) {
      double alpha = 1.0;
      if (!config_.alpha_sources.empty()) {
        alpha = k < config_.alpha_sources.size() ? config_.alpha_sources[k]
                                                 : config_.alpha_sources.back();
      }
      const double dk =
          std::max<double>(1.0, context.adapted_tensors[k + 1].dim0());
      weights.push_back(alpha * config_.intimacy_scale / dk);
    }
  }

  const CsrMatrix adjacency = context.target_structure->AdjacencyCsr();
  context.memory_stats.adjacency_nnz = adjacency.nnz();
  context.memory_stats.adjacency_bytes = adjacency.EstimatedBytes();
  context.memory_stats.adjacency_dense_bytes = n * n * sizeof(double);
  // At the end of the embedding phase the adjacency, raw and adapted
  // tensors are all live — that is the tracked high-water mark.
  context.memory_stats.peak_bytes = context.memory_stats.adjacency_bytes +
                                    context.memory_stats.raw_tensor_bytes +
                                    context.memory_stats.adapted_tensor_bytes;
  context.memory_stats.iterate_dense_bytes = n * n * sizeof(double);
  context.trace = CccpTrace();

  if (config_.solver_backend == SolverBackend::kFactored) {
    // Assemble the factored estimation: the constant CCCP gradient G
    // stays CSR so nothing n²-sized is ever materialised.
    FactoredObjective objective;
    objective.a = adjacency;
    objective.grad_v =
        BuildIntimacyGradientCsr(context.adapted_tensors, weights, n);
    objective.gamma = config_.gamma;
    objective.tau = config_.tau;
    objective.loss = config_.loss;

    auto solution = SolveCccpFactored(objective, config_.optimization,
                                      config_.factored, &context.trace);
    if (!solution.ok()) return solution.status();
    context.s_factored = std::move(solution).value();
    context.memory_stats.iterate_bytes = context.s_factored.EstimatedBytes();
    context.memory_stats.solver_rank = context.s_factored.rank();
    return Status::OK();
  }

  // Assemble and solve the sparse + low-rank estimation (Algorithm 1).
  Objective objective;
  objective.a = adjacency;
  objective.grad_v =
      BuildIntimacyGradient(context.adapted_tensors, weights, n);
  objective.gamma = config_.gamma;
  objective.tau = config_.tau;
  objective.loss = config_.loss;

  auto solution = SolveCccp(objective, config_.optimization, &context.trace);
  if (!solution.ok()) return solution.status();
  context.s = std::move(solution).value();
  context.memory_stats.iterate_bytes =
      context.s.data().size() * sizeof(double);
  return Status::OK();
}

std::vector<std::unique_ptr<FitStage>> BuildFitPipeline(
    const SlamPredConfig& config) {
  std::vector<std::unique_ptr<FitStage>> stages;
  stages.push_back(
      std::make_unique<FeatureStage>(FeatureStageConfigFrom(config)));
  stages.push_back(
      std::make_unique<EmbeddingStage>(EmbeddingStageConfigFrom(config)));
  stages.push_back(std::make_unique<SolveStage>(SolveStageConfigFrom(config)));
  return stages;
}

Status RunFitPipeline(const std::vector<std::unique_ptr<FitStage>>& stages,
                      FitContext& context) {
  if (context.networks == nullptr || context.target_structure == nullptr) {
    return Status::InvalidArgument("fit context is missing its inputs");
  }
  if (context.target_structure->num_users() !=
      context.networks->target().NumUsers()) {
    return Status::InvalidArgument(
        "target structure must cover the target's users");
  }
  for (const auto& stage : stages) {
    SLAMPRED_RETURN_NOT_OK(InjectedStageFault(stage->name()));
    Stopwatch watch;
    const Status status = stage->Run(context);
    stage->PhaseSlot(context.phase_times) += watch.ElapsedSeconds();
    SLAMPRED_RETURN_NOT_OK(status);
  }
  return Status::OK();
}

}  // namespace slampred
