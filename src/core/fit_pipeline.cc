#include "core/fit_pipeline.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "graph/cluster_extract.h"
#include "optim/factored_solver.h"
#include "optim/objective.h"
#include "util/fault_injection.h"
#include "util/random.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace slampred {
namespace {

// Stage-level fault site: fail kinds map to the matching Status; the
// poison kinds (which ask the *caller* to corrupt numeric state) have
// no meaningful stage-granular analogue, so they surface as a numerical
// failure of the stage.
Status InjectedStageFault(const char* stage_name) {
  const std::string site = std::string("fit.") + stage_name;
  const std::string prefix = "fit stage '" + std::string(stage_name) + "': ";
  switch (SLAMPRED_FAULT_HIT(site)) {
    case FaultKind::kNone:
      return Status::OK();
    case FaultKind::kFailNotConverged:
      return Status::NotConverged(prefix + "injected not-converged fault");
    case FaultKind::kFailIo:
      return Status::IoError(prefix + "injected io fault");
    case FaultKind::kFailNumerical:
    case FaultKind::kPoisonNaN:
    case FaultKind::kPoisonInf:
      return Status::NumericalError(prefix + "injected numerical fault");
  }
  return Status::OK();
}

}  // namespace

FeatureStageConfig FeatureStageConfigFrom(const SlamPredConfig& config) {
  FeatureStageConfig stage;
  stage.features = config.features;
  stage.use_attributes = config.use_attributes;
  stage.use_sources = config.use_sources;
  // The -H variant drops every attribute slice and keeps only the
  // structural ones.
  if (!config.use_attributes) {
    stage.features.word_similarity = false;
    stage.features.location_similarity = false;
    stage.features.time_similarity = false;
  }
  return stage;
}

Status FeatureStage::Run(FitContext& context) const {
  const AlignedNetworks& networks = *context.networks;
  context.feature_options = config_.features;
  if (!config_.use_attributes) {
    context.feature_options.word_similarity = false;
    context.feature_options.location_similarity = false;
    context.feature_options.time_similarity = false;
  }

  context.raw_tensors.clear();
  context.raw_tensors.push_back(BuildSparseFeatureTensor(
      networks.target(), *context.target_structure, context.feature_options));

  // Without a single anchor link nothing can transfer and the projection
  // has no cross-network constraints, so an unaligned bundle degrades to
  // the target-only variant (matching Table II's ratio-0.0 column, where
  // SLAMPRED equals SLAMPRED-T).
  bool any_anchors = false;
  for (std::size_t k = 0; k < networks.num_sources(); ++k) {
    if (networks.anchors(k).size() > 0) {
      any_anchors = true;
      break;
    }
  }
  context.transfer =
      config_.use_sources && networks.num_sources() > 0 && any_anchors;
  if (context.transfer) {
    for (std::size_t k = 0; k < networks.num_sources(); ++k) {
      const SocialGraph source_graph =
          SocialGraph::FromHeterogeneousNetwork(networks.source(k));
      context.raw_tensors.push_back(BuildSparseFeatureTensor(
          networks.source(k), source_graph, context.feature_options));
    }
  }

  for (const SparseTensor3& tensor : context.raw_tensors) {
    context.memory_stats.raw_tensor_nnz += tensor.TotalNnz();
    context.memory_stats.raw_tensor_bytes += tensor.EstimatedBytes();
    context.memory_stats.raw_tensor_dense_bytes +=
        tensor.DenseEquivalentBytes();
  }
  return Status::OK();
}

EmbeddingStageConfig EmbeddingStageConfigFrom(const SlamPredConfig& config) {
  EmbeddingStageConfig stage;
  stage.domain_adaptation = config.domain_adaptation;
  stage.project_target_features = config.project_target_features;
  stage.adapter = config.adapter;
  stage.mu = config.mu;
  stage.latent_dim = config.latent_dim;
  stage.seed = config.seed;
  return stage;
}

Status EmbeddingStage::Run(FitContext& context) const {
  const AlignedNetworks& networks = *context.networks;
  // Feature-space projection (Theorem 1) — or the ablation passthrough.
  // The projection is applied in every variant (with no sources it
  // degrades to a within-network embedding) so that SLAMPRED at anchor
  // ratio 0 coincides with SLAMPRED-T exactly and source terms are pure
  // additions on top of an identical target treatment.
  DomainAdapterOptions adapter_options = config_.adapter;
  adapter_options.projection.mu = config_.mu;
  adapter_options.projection.latent_dim =
      std::min(config_.latent_dim, NumFeatures(context.feature_options));

  if (config_.domain_adaptation && context.transfer) {
    Rng rng(config_.seed);
    auto adapted = AdaptDomains(networks, *context.target_structure,
                                context.raw_tensors, adapter_options, rng);
    if (!adapted.ok()) return adapted.status();
    context.adapted_tensors = std::move(adapted).value().tensors;
    if (!config_.project_target_features) {
      // Keep the target's own intimacy features raw (default — see the
      // config comment); the source tensors stay projected.
      context.adapted_tensors[0] = context.raw_tensors[0];
    }
  } else if (config_.domain_adaptation && !context.transfer &&
             config_.project_target_features) {
    // Strict-paper mode on a single network: project the target through
    // the same pipeline with no cross-network blocks.
    Rng rng(config_.seed);
    AlignedNetworks target_only(networks.target());
    std::vector<SparseTensor3> target_tensor = {context.raw_tensors[0]};
    auto adapted = AdaptDomains(target_only, *context.target_structure,
                                target_tensor, adapter_options, rng);
    if (!adapted.ok()) return adapted.status();
    context.adapted_tensors = std::move(adapted).value().tensors;
  } else if (context.transfer) {
    auto adapted = PassthroughAdapt(networks, context.raw_tensors);
    if (!adapted.ok()) return adapted.status();
    context.adapted_tensors = std::move(adapted).value().tensors;
  } else {
    context.adapted_tensors.clear();
    context.adapted_tensors.push_back(std::move(context.raw_tensors[0]));
  }

  for (const SparseTensor3& tensor : context.adapted_tensors) {
    context.memory_stats.adapted_tensor_nnz += tensor.TotalNnz();
    context.memory_stats.adapted_tensor_bytes += tensor.EstimatedBytes();
    context.memory_stats.adapted_tensor_dense_bytes +=
        tensor.DenseEquivalentBytes();
  }
  return Status::OK();
}

SolveStageConfig SolveStageConfigFrom(const SlamPredConfig& config) {
  SolveStageConfig stage;
  stage.alpha_target = config.alpha_target;
  stage.alpha_sources = config.alpha_sources;
  stage.intimacy_scale = config.intimacy_scale;
  stage.gamma = config.gamma;
  stage.tau = config.tau;
  stage.loss = config.loss;
  stage.optimization = config.optimization;
  stage.solver_backend = config.solver_backend;
  stage.factored = config.factored;
  return stage;
}

Status SolveStage::Run(FitContext& context) const {
  if (context.adapted_tensors.empty()) {
    return Status::FailedPrecondition(
        "solve stage needs adapted tensors (run the embedding stage first)");
  }
  const std::size_t n = context.networks->target().NumUsers();

  // Intimacy weights: αᵗ then α^k per transferred source. Each weight is
  // divided by its tensor's slice count so Σ_c X̂(c,:,:) stays on the
  // same [0, 1] scale regardless of how many feature slices a network
  // contributes — otherwise the intimacy gradient would drown the
  // Frobenius loss and saturate every score at the box bound.
  std::vector<double> weights;
  const double d0 = std::max<double>(1.0, context.adapted_tensors[0].dim0());
  weights.push_back(config_.alpha_target * config_.intimacy_scale / d0);
  if (context.transfer) {
    for (std::size_t k = 0; k < context.networks->num_sources(); ++k) {
      double alpha = 1.0;
      if (!config_.alpha_sources.empty()) {
        alpha = k < config_.alpha_sources.size() ? config_.alpha_sources[k]
                                                 : config_.alpha_sources.back();
      }
      const double dk =
          std::max<double>(1.0, context.adapted_tensors[k + 1].dim0());
      weights.push_back(alpha * config_.intimacy_scale / dk);
    }
  }

  const CsrMatrix adjacency = context.target_structure->AdjacencyCsr();
  context.memory_stats.adjacency_nnz = adjacency.nnz();
  context.memory_stats.adjacency_bytes = adjacency.EstimatedBytes();
  context.memory_stats.adjacency_dense_bytes = n * n * sizeof(double);
  // At the end of the embedding phase the adjacency, raw and adapted
  // tensors are all live — that is the tracked high-water mark.
  context.memory_stats.peak_bytes = context.memory_stats.adjacency_bytes +
                                    context.memory_stats.raw_tensor_bytes +
                                    context.memory_stats.adapted_tensor_bytes;
  context.memory_stats.iterate_dense_bytes = n * n * sizeof(double);
  context.trace = CccpTrace();

  if (config_.solver_backend == SolverBackend::kFactored) {
    // Assemble the factored estimation: the constant CCCP gradient G
    // stays CSR so nothing n²-sized is ever materialised.
    FactoredObjective objective;
    objective.a = adjacency;
    objective.grad_v =
        BuildIntimacyGradientCsr(context.adapted_tensors, weights, n);
    objective.gamma = config_.gamma;
    objective.tau = config_.tau;
    objective.loss = config_.loss;

    auto solution = SolveCccpFactored(objective, config_.optimization,
                                      config_.factored, &context.trace);
    if (!solution.ok()) return solution.status();
    context.s_factored = std::move(solution).value();
    context.memory_stats.iterate_bytes = context.s_factored.EstimatedBytes();
    context.memory_stats.solver_rank = context.s_factored.rank();
    return Status::OK();
  }

  // Assemble and solve the sparse + low-rank estimation (Algorithm 1).
  Objective objective;
  objective.a = adjacency;
  objective.grad_v =
      BuildIntimacyGradient(context.adapted_tensors, weights, n);
  objective.gamma = config_.gamma;
  objective.tau = config_.tau;
  objective.loss = config_.loss;

  auto solution = SolveCccp(objective, config_.optimization, &context.trace);
  if (!solution.ok()) return solution.status();
  context.s = std::move(solution).value();
  context.memory_stats.iterate_bytes =
      context.s.data().size() * sizeof(double);
  return Status::OK();
}

Status PartitionStage::Run(FitContext& context) const {
  auto partition = PartitionGraph(*context.target_structure, options_);
  if (!partition.ok()) return partition.status();
  context.partition = std::move(partition).value();
  context.partition_stats = context.partition.stats;
  return Status::OK();
}

namespace {

// Per-cluster fault site: same kind → Status mapping as the stage-level
// sites, scoped to one cluster's sub-fit so chaos tests can fail a
// single cluster and watch the retry / surfaced-error path.
Status InjectedClusterFault(std::size_t cluster) {
  const std::string prefix = "cluster " + std::to_string(cluster) + ": ";
  switch (SLAMPRED_FAULT_HIT("fit.cluster")) {
    case FaultKind::kNone:
      return Status::OK();
    case FaultKind::kFailNotConverged:
      return Status::NotConverged(prefix + "injected not-converged fault");
    case FaultKind::kFailIo:
      return Status::IoError(prefix + "injected io fault");
    case FaultKind::kFailNumerical:
    case FaultKind::kPoisonNaN:
    case FaultKind::kPoisonInf:
      return Status::NumericalError(prefix + "injected numerical fault");
  }
  return Status::OK();
}

// Everything one cluster's sub-fit produces. One ParallelFor index
// writes one slot, so the fan-out needs no locking.
struct ClusterFitResult {
  Status status = Status::OK();
  ModelShard shard;
  CccpTrace trace;
  FitMemoryStats memory;
  double seconds = 0.0;
  bool retried = false;
};

// One attempt at one cluster's sub-fit: extract the induced bundle and
// run the full monolithic pipeline on it. The sub-config never
// partitions again, remaps the per-source weights onto the sources that
// survived extraction, and clamps the factored rank to the cluster
// size. A cluster covering every user keeps the config untouched — the
// sub-fit is then the monolithic fit, bit for bit.
Status FitClusterOnce(const SlamPredConfig& model_config,
                      const FitContext& context,
                      const std::vector<std::size_t>& members,
                      std::size_t cluster, ClusterFitResult& out) {
  SLAMPRED_RETURN_NOT_OK(InjectedClusterFault(cluster));
  auto bundle = ExtractClusterBundle(*context.networks,
                                     *context.target_structure, members);
  if (!bundle.ok()) return bundle.status();

  const bool proper_subset =
      members.size() < context.networks->target().NumUsers();
  SlamPredConfig sub = model_config;
  sub.partition = PartitionOptions{};
  if (proper_subset && !model_config.alpha_sources.empty()) {
    std::vector<double> alphas;
    for (const std::size_t k : bundle.value().kept_sources) {
      alphas.push_back(k < model_config.alpha_sources.size()
                           ? model_config.alpha_sources[k]
                           : model_config.alpha_sources.back());
    }
    if (!alphas.empty()) sub.alpha_sources = std::move(alphas);
  }
  if (proper_subset && sub.solver_backend == SolverBackend::kFactored) {
    sub.factored.rank = std::min(sub.factored.rank, members.size());
  }

  FitContext sub_context;
  sub_context.networks = &bundle.value().networks;
  sub_context.target_structure = &bundle.value().structure;
  const auto stages = BuildFitPipeline(sub);
  const Status run = RunFitPipeline(stages, sub_context);
  out.trace = std::move(sub_context.trace);
  out.memory = sub_context.memory_stats;
  SLAMPRED_RETURN_NOT_OK(run);

  out.shard.users.clear();
  out.shard.users.reserve(members.size());
  for (const std::size_t u : members) {
    out.shard.users.push_back(static_cast<std::uint32_t>(u));
  }
  if (sub.solver_backend == SolverBackend::kFactored) {
    out.shard.low_rank = std::move(sub_context.s_factored);
    out.shard.has_low_rank = true;
  } else {
    out.shard.s = std::move(sub_context.s);
    out.shard.has_low_rank = false;
  }
  return Status::OK();
}

// The boundary-refinement pass: scores the cross-cluster pairs the
// per-cluster blocks cannot see. Candidates for user u are the
// cross-cluster users within two hops (cut-edge endpoints and their
// neighbors), capped per row; the refined score averages what u's
// cluster thinks of v's neighborhood with what v's cluster thinks of
// u's:
//
//   refined(u, v) = ½ · ( avg_{w ∈ N(v), C(w)=C(u)} S(u, w)
//                       + avg_{w ∈ N(u), C(w)=C(v)} S(v, w) )
//
// (an empty side contributes 0; a pair with both sides empty is left
// unscored). Rows of the upper triangle are built in parallel — one
// writer per row — then mirrored into a symmetric CSR.
CsrMatrix RefineBoundary(const ShardedScores& shards,
                         const std::vector<std::uint32_t>& cluster_of,
                         const SocialGraph& structure,
                         std::size_t max_candidates) {
  const std::size_t n = structure.num_users();
  std::vector<std::vector<CsrMatrix::RowEntry>> upper(n);
  ParallelFor(0, n, 8, [&](std::size_t row_begin, std::size_t row_end) {
    std::vector<std::size_t> candidates;
    for (std::size_t u = row_begin; u < row_end; ++u) {
      const std::uint32_t cu = cluster_of[u];
      candidates.clear();
      for (const std::size_t v : structure.Neighbors(u)) {
        if (v > u && cluster_of[v] != cu) candidates.push_back(v);
        for (const std::size_t w : structure.Neighbors(v)) {
          if (w > u && cluster_of[w] != cu) candidates.push_back(w);
        }
      }
      std::sort(candidates.begin(), candidates.end());
      candidates.erase(std::unique(candidates.begin(), candidates.end()),
                       candidates.end());
      if (max_candidates > 0 && candidates.size() > max_candidates) {
        candidates.resize(max_candidates);
      }
      for (const std::size_t v : candidates) {
        const std::uint32_t cv = cluster_of[v];
        double sum_u = 0.0, sum_v = 0.0;
        std::size_t count_u = 0, count_v = 0;
        for (const std::size_t w : structure.Neighbors(v)) {
          if (w != u && cluster_of[w] == cu) {
            sum_u += shards.At(u, w);
            ++count_u;
          }
        }
        for (const std::size_t w : structure.Neighbors(u)) {
          if (w != v && cluster_of[w] == cv) {
            sum_v += shards.At(v, w);
            ++count_v;
          }
        }
        if (count_u + count_v == 0) continue;
        const double score =
            0.5 * ((count_u > 0 ? sum_u / count_u : 0.0) +
                   (count_v > 0 ? sum_v / count_v : 0.0));
        if (score != 0.0) upper[u].push_back({v, score});
      }
    }
  });

  // Mirror to a symmetric CSR: row v collects the transposed entries
  // (scattered in ascending u, all columns < v) followed by its own
  // upper-triangle entries (all columns > v) — sorted by construction.
  std::vector<std::vector<CsrMatrix::RowEntry>> rows(n);
  for (std::size_t u = 0; u < n; ++u) {
    for (const CsrMatrix::RowEntry& entry : upper[u]) {
      rows[entry.first].push_back({u, entry.second});
    }
  }
  for (std::size_t u = 0; u < n; ++u) {
    rows[u].insert(rows[u].end(), upper[u].begin(), upper[u].end());
  }
  return CsrMatrix::FromRows(n, std::move(rows));
}

}  // namespace

Status PartitionedSolveStage::Run(FitContext& context) const {
  const std::size_t n = context.networks->target().NumUsers();
  if (context.partition.num_users() != n ||
      context.partition.num_clusters() == 0) {
    return Status::FailedPrecondition(
        "partitioned solve needs a partition (run the partition stage "
        "first)");
  }
  const std::size_t num_clusters = context.partition.num_clusters();
  std::vector<ClusterFitResult> results(num_clusters);

  // Fan the independent sub-fits out over the pool, one cluster per
  // chunk. Sub-fit parallelism serialises inside the outer region
  // (nested ParallelFor), so every thread count computes the same
  // numbers. A failed cluster gets exactly one resume before its error
  // surfaces; the retry is counted as a checkpoint resume.
  ParallelFor(0, num_clusters, 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t c = begin; c < end; ++c) {
      ClusterFitResult& result = results[c];
      Stopwatch watch;
      result.status = FitClusterOnce(config_, context,
                                     context.partition.clusters[c], c, result);
      if (!result.status.ok()) {
        result.retried = true;
        result.status = FitClusterOnce(
            config_, context, context.partition.clusters[c], c, result);
      }
      result.seconds = watch.ElapsedSeconds();
    }
  });

  context.partition_stats = context.partition.stats;
  context.partition_stats.cluster_solve_seconds.assign(num_clusters, 0.0);
  context.trace = CccpTrace();
  context.trace.converged = true;
  Status first_failure = Status::OK();
  std::vector<ModelShard> shards;
  shards.reserve(num_clusters);
  for (std::size_t c = 0; c < num_clusters; ++c) {
    ClusterFitResult& result = results[c];
    context.partition_stats.cluster_solve_seconds[c] = result.seconds;
    context.trace.recovery.Merge(result.trace.recovery);
    if (result.retried) ++context.trace.recovery.checkpoint_resumes;
    context.trace.converged =
        context.trace.converged && result.trace.converged;
    context.trace.outer_iterations = std::max(
        context.trace.outer_iterations, result.trace.outer_iterations);
    // Sparse inputs sum across clusters; the peak is the largest single
    // cluster's high-water mark (clusters share no tensors).
    context.memory_stats.adjacency_nnz += result.memory.adjacency_nnz;
    context.memory_stats.adjacency_bytes += result.memory.adjacency_bytes;
    context.memory_stats.adjacency_dense_bytes +=
        result.memory.adjacency_dense_bytes;
    context.memory_stats.raw_tensor_nnz += result.memory.raw_tensor_nnz;
    context.memory_stats.raw_tensor_bytes += result.memory.raw_tensor_bytes;
    context.memory_stats.raw_tensor_dense_bytes +=
        result.memory.raw_tensor_dense_bytes;
    context.memory_stats.adapted_tensor_nnz +=
        result.memory.adapted_tensor_nnz;
    context.memory_stats.adapted_tensor_bytes +=
        result.memory.adapted_tensor_bytes;
    context.memory_stats.adapted_tensor_dense_bytes +=
        result.memory.adapted_tensor_dense_bytes;
    context.memory_stats.peak_bytes =
        std::max(context.memory_stats.peak_bytes, result.memory.peak_bytes);
    if (!result.status.ok() && first_failure.ok()) {
      first_failure = Status(
          result.status.code(),
          "cluster " + std::to_string(c) + " of " +
              std::to_string(num_clusters) + ": " + result.status.message());
    }
    shards.push_back(std::move(result.shard));
  }
  SLAMPRED_RETURN_NOT_OK(first_failure);

  auto sharded = ShardedScores::Create(std::move(shards), CsrMatrix(), n);
  if (!sharded.ok()) return sharded.status();
  context.shards = std::move(sharded).value();

  Stopwatch refine_watch;
  SLAMPRED_RETURN_NOT_OK(context.shards.AttachBoundary(RefineBoundary(
      context.shards, context.partition.cluster_of, *context.target_structure,
      config_.partition.max_boundary_candidates)));
  context.partition_stats.refine_seconds = refine_watch.ElapsedSeconds();

  context.memory_stats.iterate_bytes = context.shards.EstimatedBytes();
  context.memory_stats.iterate_dense_bytes = n * n * sizeof(double);
  context.memory_stats.solver_rank = context.shards.MaxRank();
  context.partitioned = true;
  return Status::OK();
}

std::vector<std::unique_ptr<FitStage>> BuildFitPipeline(
    const SlamPredConfig& config) {
  std::vector<std::unique_ptr<FitStage>> stages;
  if (config.partition.mode == PartitionMode::kAuto) {
    stages.push_back(std::make_unique<PartitionStage>(config.partition));
    stages.push_back(std::make_unique<PartitionedSolveStage>(config));
    return stages;
  }
  stages.push_back(
      std::make_unique<FeatureStage>(FeatureStageConfigFrom(config)));
  stages.push_back(
      std::make_unique<EmbeddingStage>(EmbeddingStageConfigFrom(config)));
  stages.push_back(std::make_unique<SolveStage>(SolveStageConfigFrom(config)));
  return stages;
}

Status RunFitPipeline(const std::vector<std::unique_ptr<FitStage>>& stages,
                      FitContext& context) {
  if (context.networks == nullptr || context.target_structure == nullptr) {
    return Status::InvalidArgument("fit context is missing its inputs");
  }
  if (context.target_structure->num_users() !=
      context.networks->target().NumUsers()) {
    return Status::InvalidArgument(
        "target structure must cover the target's users");
  }
  for (const auto& stage : stages) {
    SLAMPRED_RETURN_NOT_OK(InjectedStageFault(stage->name()));
    Stopwatch watch;
    const Status status = stage->Run(context);
    stage->PhaseSlot(context.phase_times) += watch.ElapsedSeconds();
    SLAMPRED_RETURN_NOT_OK(status);
  }
  return Status::OK();
}

}  // namespace slampred
