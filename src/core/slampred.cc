#include "core/slampred.h"

#include <algorithm>
#include <cstdio>

#include "optim/objective.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/stopwatch.h"

namespace slampred {

SlamPredConfig SlamPredTargetOnlyConfig() {
  SlamPredConfig config;
  config.use_sources = false;
  return config;
}

SlamPredConfig SlamPredHomogeneousConfig() {
  SlamPredConfig config;
  config.use_sources = false;
  config.use_attributes = false;
  return config;
}

std::string FitMemoryStats::ToString() const {
  auto mib = [](std::size_t bytes) {
    return static_cast<double>(bytes) / (1024.0 * 1024.0);
  };
  char buffer[320];
  std::snprintf(
      buffer, sizeof(buffer),
      "A^t %zu nnz (%.2f MiB csr, dense %.2f) | X %zu nnz (%.2f, dense "
      "%.2f) | X-hat %zu nnz (%.2f, dense %.2f) | peak %.2f MiB "
      "(dense %.2f)",
      adjacency_nnz, mib(adjacency_bytes), mib(adjacency_dense_bytes),
      raw_tensor_nnz, mib(raw_tensor_bytes), mib(raw_tensor_dense_bytes),
      adapted_tensor_nnz, mib(adapted_tensor_bytes),
      mib(adapted_tensor_dense_bytes), mib(peak_bytes),
      mib(adjacency_dense_bytes + raw_tensor_dense_bytes +
          adapted_tensor_dense_bytes));
  return buffer;
}

SlamPred::SlamPred(SlamPredConfig config) : config_(std::move(config)) {}

Status SlamPred::Fit(const AlignedNetworks& networks,
                     const SocialGraph& target_structure) {
  // Phase wall clocks. The fit runs on a single thread (nested
  // ParallelFor serialises), so the thread-local SVD accumulator delta
  // is this fit's own SVD total.
  phase_times_ = FitPhaseTimes();
  const double svd_seconds_before = SvdSecondsThisThread();
  Stopwatch total_watch;
  Stopwatch phase_watch;

  const std::size_t n = networks.target().NumUsers();
  if (target_structure.num_users() != n) {
    return Status::InvalidArgument(
        "target structure must cover the target's users");
  }

  // Feature slice selection: the -H variant drops every attribute slice
  // and keeps only the structural ones.
  FeatureTensorOptions feature_options = config_.features;
  if (!config_.use_attributes) {
    feature_options.word_similarity = false;
    feature_options.location_similarity = false;
    feature_options.time_similarity = false;
  }

  // Raw intimacy tensors, built natively in CSR: target (on the
  // training structure) and, when transferring, every source on its own
  // graph.
  std::vector<SparseTensor3> raw_tensors;
  raw_tensors.push_back(BuildSparseFeatureTensor(networks.target(),
                                                 target_structure,
                                                 feature_options));
  // Without a single anchor link nothing can transfer and the projection
  // has no cross-network constraints, so an unaligned bundle degrades to
  // the target-only variant (matching Table II's ratio-0.0 column, where
  // SLAMPRED equals SLAMPRED-T).
  bool any_anchors = false;
  for (std::size_t k = 0; k < networks.num_sources(); ++k) {
    if (networks.anchors(k).size() > 0) {
      any_anchors = true;
      break;
    }
  }
  const bool transfer =
      config_.use_sources && networks.num_sources() > 0 && any_anchors;
  if (transfer) {
    for (std::size_t k = 0; k < networks.num_sources(); ++k) {
      const SocialGraph source_graph =
          SocialGraph::FromHeterogeneousNetwork(networks.source(k));
      raw_tensors.push_back(BuildSparseFeatureTensor(networks.source(k),
                                                     source_graph,
                                                     feature_options));
    }
  }

  phase_times_.features_seconds = phase_watch.ElapsedSeconds();
  phase_watch.Restart();

  memory_stats_ = FitMemoryStats();
  for (const SparseTensor3& tensor : raw_tensors) {
    memory_stats_.raw_tensor_nnz += tensor.TotalNnz();
    memory_stats_.raw_tensor_bytes += tensor.EstimatedBytes();
    memory_stats_.raw_tensor_dense_bytes += tensor.DenseEquivalentBytes();
  }

  // Feature-space projection (Theorem 1) — or the ablation passthrough.
  // The projection is applied in every variant (with no sources it
  // degrades to a within-network embedding) so that SLAMPRED at anchor
  // ratio 0 coincides with SLAMPRED-T exactly and source terms are pure
  // additions on top of an identical target treatment.
  DomainAdapterOptions adapter_options = config_.adapter;
  adapter_options.projection.mu = config_.mu;
  adapter_options.projection.latent_dim =
      std::min(config_.latent_dim, NumFeatures(feature_options));
  if (config_.domain_adaptation && transfer) {
    Rng rng(config_.seed);
    auto adapted = AdaptDomains(networks, target_structure, raw_tensors,
                                adapter_options, rng);
    if (!adapted.ok()) return adapted.status();
    adapted_tensors_ = std::move(adapted).value().tensors;
    if (!config_.project_target_features) {
      // Keep the target's own intimacy features raw (default — see the
      // config comment); the source tensors stay projected.
      adapted_tensors_[0] = raw_tensors[0];
    }
  } else if (config_.domain_adaptation && !transfer &&
             config_.project_target_features) {
    // Strict-paper mode on a single network: project the target through
    // the same pipeline with no cross-network blocks.
    Rng rng(config_.seed);
    AlignedNetworks target_only(networks.target());
    std::vector<SparseTensor3> target_tensor = {raw_tensors[0]};
    auto adapted = AdaptDomains(target_only, target_structure,
                                target_tensor, adapter_options, rng);
    if (!adapted.ok()) return adapted.status();
    adapted_tensors_ = std::move(adapted).value().tensors;
  } else if (transfer) {
    auto adapted = PassthroughAdapt(networks, raw_tensors);
    if (!adapted.ok()) return adapted.status();
    adapted_tensors_ = std::move(adapted).value().tensors;
  } else {
    adapted_tensors_.clear();
    adapted_tensors_.push_back(std::move(raw_tensors[0]));
  }

  phase_times_.embedding_seconds = phase_watch.ElapsedSeconds();
  phase_watch.Restart();

  for (const SparseTensor3& tensor : adapted_tensors_) {
    memory_stats_.adapted_tensor_nnz += tensor.TotalNnz();
    memory_stats_.adapted_tensor_bytes += tensor.EstimatedBytes();
    memory_stats_.adapted_tensor_dense_bytes += tensor.DenseEquivalentBytes();
  }

  // Intimacy weights: αᵗ then α^k per transferred source. Each weight is
  // divided by its tensor's slice count so Σ_c X̂(c,:,:) stays on the
  // same [0, 1] scale regardless of how many feature slices a network
  // contributes — otherwise the intimacy gradient would drown the
  // Frobenius loss and saturate every score at the box bound.
  std::vector<double> weights;
  const double d0 = std::max<double>(1.0, adapted_tensors_[0].dim0());
  weights.push_back(config_.alpha_target * config_.intimacy_scale / d0);
  if (transfer) {
    for (std::size_t k = 0; k < networks.num_sources(); ++k) {
      double alpha = 1.0;
      if (!config_.alpha_sources.empty()) {
        alpha = k < config_.alpha_sources.size()
                    ? config_.alpha_sources[k]
                    : config_.alpha_sources.back();
      }
      const double dk =
          std::max<double>(1.0, adapted_tensors_[k + 1].dim0());
      weights.push_back(alpha * config_.intimacy_scale / dk);
    }
  }

  // Assemble and solve the sparse + low-rank estimation (Algorithm 1).
  Objective objective;
  objective.a = target_structure.AdjacencyCsr();
  objective.grad_v = BuildIntimacyGradient(adapted_tensors_, weights, n);
  objective.gamma = config_.gamma;
  objective.tau = config_.tau;
  objective.loss = config_.loss;

  memory_stats_.adjacency_nnz = objective.a.nnz();
  memory_stats_.adjacency_bytes = objective.a.EstimatedBytes();
  memory_stats_.adjacency_dense_bytes = n * n * sizeof(double);
  // At the end of the embedding phase the adjacency, raw and adapted
  // tensors are all live — that is the tracked high-water mark.
  memory_stats_.peak_bytes = memory_stats_.adjacency_bytes +
                             memory_stats_.raw_tensor_bytes +
                             memory_stats_.adapted_tensor_bytes;

  trace_ = CccpTrace();
  phase_watch.Restart();  // The CCCP phase starts at the solve proper.
  auto solution = SolveCccp(objective, config_.optimization, &trace_);
  phase_times_.cccp_seconds = phase_watch.ElapsedSeconds();
  phase_times_.svd_seconds = SvdSecondsThisThread() - svd_seconds_before;
  phase_times_.total_seconds = total_watch.ElapsedSeconds();
  if (!solution.ok()) return solution.status();
  s_ = std::move(solution).value();
  fitted_ = true;
  return Status::OK();
}

double SlamPred::Score(std::size_t u, std::size_t v) const {
  SLAMPRED_CHECK(fitted_) << "Score before Fit";
  return s_.At(u, v);
}

std::string SlamPred::name() const {
  if (!config_.use_sources) {
    return config_.use_attributes ? "SLAMPRED-T" : "SLAMPRED-H";
  }
  return "SLAMPRED";
}

Result<std::vector<double>> SlamPred::ScorePairs(
    const std::vector<UserPair>& pairs) const {
  if (!fitted_) {
    return Status::FailedPrecondition("SLAMPRED scored before Fit");
  }
  std::vector<double> scores;
  scores.reserve(pairs.size());
  for (const UserPair& pair : pairs) {
    scores.push_back(s_.At(pair.u, pair.v));
  }
  return scores;
}

}  // namespace slampred
