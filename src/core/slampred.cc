#include "core/slampred.h"

#include <cstdio>
#include <utility>

#include "core/fit_pipeline.h"
#include "util/stopwatch.h"

namespace slampred {

SlamPredConfig SlamPredTargetOnlyConfig() {
  SlamPredConfig config;
  config.use_sources = false;
  return config;
}

SlamPredConfig SlamPredHomogeneousConfig() {
  SlamPredConfig config;
  config.use_sources = false;
  config.use_attributes = false;
  return config;
}

std::string FitMemoryStats::ToString() const {
  auto mib = [](std::size_t bytes) {
    return static_cast<double>(bytes) / (1024.0 * 1024.0);
  };
  char buffer[448];
  std::snprintf(
      buffer, sizeof(buffer),
      "A^t %zu nnz (%.2f MiB csr, dense %.2f) | X %zu nnz (%.2f, dense "
      "%.2f) | X-hat %zu nnz (%.2f, dense %.2f) | S %.2f MiB (dense %.2f, "
      "rank %zu) | peak %.2f MiB (dense %.2f)",
      adjacency_nnz, mib(adjacency_bytes), mib(adjacency_dense_bytes),
      raw_tensor_nnz, mib(raw_tensor_bytes), mib(raw_tensor_dense_bytes),
      adapted_tensor_nnz, mib(adapted_tensor_bytes),
      mib(adapted_tensor_dense_bytes), mib(iterate_bytes),
      mib(iterate_dense_bytes), solver_rank, mib(peak_bytes),
      mib(adjacency_dense_bytes + raw_tensor_dense_bytes +
          adapted_tensor_dense_bytes));
  return buffer;
}

const char* SlamPredVariantName(const SlamPredConfig& config) {
  if (!config.use_sources) {
    return config.use_attributes ? "SLAMPRED-T" : "SLAMPRED-H";
  }
  return "SLAMPRED";
}

SlamPred::SlamPred(SlamPredConfig config) : config_(std::move(config)) {}

Status SlamPred::Fit(const AlignedNetworks& networks,
                     const SocialGraph& target_structure) {
  // A second Fit of the same object starts from clean stats: the
  // context below is fresh, and every stat member is overwritten from
  // it — even on failure, so stale numbers from a previous fit never
  // survive.
  // The fit runs on a single thread (nested ParallelFor serialises), so
  // the thread-local SVD accumulator delta is this fit's own SVD total.
  const double svd_seconds_before = SvdSecondsThisThread();
  Stopwatch total_watch;

  FitContext context;
  context.networks = &networks;
  context.target_structure = &target_structure;

  const auto stages = BuildFitPipeline(config_);
  const Status run = RunFitPipeline(stages, context);

  phase_times_ = context.phase_times;
  phase_times_.svd_seconds = SvdSecondsThisThread() - svd_seconds_before;
  phase_times_.total_seconds = total_watch.ElapsedSeconds();
  memory_stats_ = context.memory_stats;
  partition_stats_ = context.partition_stats;
  trace_ = std::move(context.trace);
  adapted_tensors_ = std::move(context.adapted_tensors);
  partitioned_ = false;
  if (!run.ok()) return run;
  s_ = std::move(context.s);
  s_factored_ = std::move(context.s_factored);
  shards_ = std::move(context.shards);
  partitioned_ = context.partitioned;
  fitted_ = true;
  return Status::OK();
}

Result<double> SlamPred::Score(std::size_t u, std::size_t v) const {
  if (!fitted_) {
    return Status::FailedPrecondition("SLAMPRED scored before Fit");
  }
  const std::size_t n = NumUsersFitted();
  if (u >= n || v >= n) {
    return Status::OutOfRange(
        "pair (" + std::to_string(u) + ", " + std::to_string(v) +
        ") outside the fitted score matrix (" + std::to_string(n) +
        " users)");
  }
  if (partitioned_) return shards_.At(u, v);
  if (config_.solver_backend == SolverBackend::kFactored) {
    return s_factored_.At(u, v);
  }
  return s_(u, v);
}

std::string SlamPred::name() const { return SlamPredVariantName(config_); }

Result<std::vector<double>> SlamPred::ScorePairs(
    const std::vector<UserPair>& pairs) const {
  if (!fitted_) {
    return Status::FailedPrecondition("SLAMPRED scored before Fit");
  }
  const std::size_t n = NumUsersFitted();
  const bool factored = config_.solver_backend == SolverBackend::kFactored;
  std::vector<double> scores;
  scores.reserve(pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const UserPair& pair = pairs[i];
    if (pair.u >= n || pair.v >= n) {
      return Status::OutOfRange(
          "pair " + std::to_string(i) + " = (" + std::to_string(pair.u) +
          ", " + std::to_string(pair.v) +
          ") outside the fitted score matrix (" + std::to_string(n) +
          " users)");
    }
    scores.push_back(partitioned_ ? shards_.At(pair.u, pair.v)
                     : factored  ? s_factored_.At(pair.u, pair.v)
                                 : s_(pair.u, pair.v));
  }
  return scores;
}

}  // namespace slampred
