#include "core/scoring_session.h"

#include <utility>

namespace slampred {

Result<ScoringSession> ScoringSession::FromFile(const std::string& path) {
  auto artifact = LoadModelArtifact(path);
  if (!artifact.ok()) return artifact.status();
  return FromArtifact(std::move(artifact).value());
}

Result<ScoringSession> ScoringSession::FromArtifact(ModelArtifact artifact) {
  if (artifact.has_shards) {
    if (artifact.shards.empty()) {
      return Status::InvalidArgument(
          "sharded artifact holds no shards; nothing to serve");
    }
    const std::size_t n = artifact.shards.num_users();
    return ScoringSession(std::move(artifact), Backend::kSharded, n);
  }
  if (artifact.has_quantized_s) {
    // Dequantize-on-the-fly: scores are offset + scale·code reads, the
    // quantized codes are the resident payload, and nothing float-dense
    // is materialised at load.
    if (artifact.quantized_s.rows() != artifact.quantized_s.cols()) {
      return Status::InvalidArgument(
          "artifact quantized scores must be square, got " +
          std::to_string(artifact.quantized_s.rows()) + "x" +
          std::to_string(artifact.quantized_s.cols()));
    }
    if (artifact.quantized_s.empty()) {
      return Status::InvalidArgument(
          "artifact holds an empty quantized score matrix; nothing to "
          "serve");
    }
    const std::size_t n = artifact.quantized_s.rows();
    return ScoringSession(std::move(artifact), Backend::kQuantized, n);
  }
  if (artifact.s.empty() && artifact.has_low_rank) {
    // Served straight from the factors — At(u, v) is an O(r) dot
    // product bit-identical to the densified entry, so nothing O(n²)
    // is ever materialised at load.
    if (artifact.low_rank.rows() != artifact.low_rank.cols()) {
      return Status::InvalidArgument(
          "artifact low-rank factors must be square, got " +
          std::to_string(artifact.low_rank.rows()) + "x" +
          std::to_string(artifact.low_rank.cols()));
    }
    if (artifact.low_rank.rows() == 0) {
      return Status::InvalidArgument(
          "artifact holds empty low-rank factors; nothing to serve");
    }
    const std::size_t n = artifact.low_rank.rows();
    return ScoringSession(std::move(artifact), Backend::kFactored, n);
  }
  if (artifact.s.empty()) {
    return Status::InvalidArgument(
        "artifact holds an empty score matrix; nothing to serve");
  }
  if (artifact.s.rows() != artifact.s.cols()) {
    return Status::InvalidArgument(
        "artifact score matrix must be square, got " +
        std::to_string(artifact.s.rows()) + "x" +
        std::to_string(artifact.s.cols()));
  }
  const std::size_t n = artifact.s.rows();
  return ScoringSession(std::move(artifact), Backend::kDense, n);
}

Result<double> ScoringSession::Score(std::size_t u, std::size_t v) const {
  if (u >= num_users_ || v >= num_users_) {
    return Status::OutOfRange(
        "pair (" + std::to_string(u) + ", " + std::to_string(v) +
        ") outside the served score matrix (" + std::to_string(num_users_) +
        " users)");
  }
  return ScoreUnchecked(u, v);
}

void ScoringSession::RowScores(std::size_t u, std::vector<double>& out) const {
  if (backend_ == Backend::kSharded) {
    artifact_.shards.RowScores(u, out);
    return;
  }
  if (backend_ == Backend::kQuantized) {
    artifact_.quantized_s.RowScores(u, out);
    return;
  }
  out.resize(num_users_);
  if (backend_ == Backend::kDense) {
    const double* row = artifact_.s.data().data() + u * num_users_;
    for (std::size_t v = 0; v < num_users_; ++v) out[v] = row[v];
    return;
  }
  for (std::size_t v = 0; v < num_users_; ++v) {
    out[v] = artifact_.low_rank.At(u, v);
  }
}

std::string ScoringSession::name() const {
  return std::string(SlamPredVariantName(artifact_.config)) + " (artifact)";
}

Result<std::vector<double>> ScoringSession::ScorePairs(
    const std::vector<UserPair>& pairs) const {
  std::vector<double> scores;
  scores.reserve(pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const UserPair& pair = pairs[i];
    if (pair.u >= num_users_ || pair.v >= num_users_) {
      return Status::OutOfRange(
          "pair " + std::to_string(i) + " = (" + std::to_string(pair.u) +
          ", " + std::to_string(pair.v) +
          ") outside the served score matrix (" + std::to_string(num_users_) +
          " users)");
    }
    scores.push_back(ScoreUnchecked(pair.u, pair.v));
  }
  return scores;
}

}  // namespace slampred
