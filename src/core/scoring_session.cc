#include "core/scoring_session.h"

#include <utility>

namespace slampred {

Result<ScoringSession> ScoringSession::FromFile(const std::string& path) {
  auto artifact = LoadModelArtifact(path);
  if (!artifact.ok()) return artifact.status();
  return FromArtifact(std::move(artifact).value());
}

Result<ScoringSession> ScoringSession::FromArtifact(ModelArtifact artifact) {
  if (artifact.s.empty() && artifact.has_low_rank) {
    // Factored artifacts materialise S = U·Vᵀ once at load so the whole
    // serve path (sessions, registry, batch scorer, top-K) stays
    // backend-agnostic dense reads.
    if (artifact.low_rank.rows() != artifact.low_rank.cols()) {
      return Status::InvalidArgument(
          "artifact low-rank factors must be square, got " +
          std::to_string(artifact.low_rank.rows()) + "x" +
          std::to_string(artifact.low_rank.cols()));
    }
    artifact.s = artifact.low_rank.ToDense();
  }
  if (artifact.s.empty()) {
    return Status::InvalidArgument(
        "artifact holds an empty score matrix; nothing to serve");
  }
  if (artifact.s.rows() != artifact.s.cols()) {
    return Status::InvalidArgument(
        "artifact score matrix must be square, got " +
        std::to_string(artifact.s.rows()) + "x" +
        std::to_string(artifact.s.cols()));
  }
  return ScoringSession(std::move(artifact));
}

Result<double> ScoringSession::Score(std::size_t u, std::size_t v) const {
  if (u >= artifact_.s.rows() || v >= artifact_.s.cols()) {
    return Status::OutOfRange(
        "pair (" + std::to_string(u) + ", " + std::to_string(v) +
        ") outside the served score matrix (" +
        std::to_string(artifact_.s.rows()) + " users)");
  }
  return artifact_.s(u, v);
}

std::string ScoringSession::name() const {
  return std::string(SlamPredVariantName(artifact_.config)) + " (artifact)";
}

Result<std::vector<double>> ScoringSession::ScorePairs(
    const std::vector<UserPair>& pairs) const {
  std::vector<double> scores;
  scores.reserve(pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const UserPair& pair = pairs[i];
    if (pair.u >= artifact_.s.rows() || pair.v >= artifact_.s.cols()) {
      return Status::OutOfRange(
          "pair " + std::to_string(i) + " = (" + std::to_string(pair.u) +
          ", " + std::to_string(pair.v) +
          ") outside the served score matrix (" +
          std::to_string(artifact_.s.rows()) + " users)");
    }
    scores.push_back(artifact_.s(pair.u, pair.v));
  }
  return scores;
}

}  // namespace slampred
