// The staged SLAMPRED fit pipeline. SlamPred::Fit is a thin driver over
// three stages sharing one FitContext:
//
//   FeatureStage    raw intimacy tensors per network        (features/)
//   EmbeddingStage  Theorem-1 projection / domain adaption  (embedding/)
//   SolveStage      sparse + low-rank CCCP estimation       (optim/)
//
// Each stage is a self-contained object with its own config struct
// derived from SlamPredConfig, so the paper's -T/-H variants are stage
// *configuration* (FeatureStageConfig::use_sources / use_attributes)
// rather than branches buried in one monolithic Fit. Stages are
// independently runnable — tests drive a single stage on a hand-built
// context, and RunFitPipeline accepts any subset in order — and
// independently fault-injectable through the per-stage sites
// "fit.features" / "fit.embedding" / "fit.solve" (fail kinds map to the
// matching Status; poison kinds surface as kNumericalError).
//
// RunFitPipeline times every stage into its FitPhaseTimes slot; memory
// accounting is done by the stage that materialises each tensor.

#ifndef SLAMPRED_CORE_FIT_PIPELINE_H_
#define SLAMPRED_CORE_FIT_PIPELINE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/score_shards.h"
#include "core/slampred.h"
#include "embedding/domain_adapter.h"
#include "features/feature_tensor.h"
#include "graph/aligned_networks.h"
#include "graph/partitioner.h"
#include "graph/social_graph.h"
#include "linalg/factored_matrix.h"
#include "linalg/matrix.h"
#include "linalg/sparse_tensor3.h"
#include "optim/cccp.h"
#include "optim/solver_backend.h"
#include "util/status.h"

namespace slampred {

/// Shared state of one fit: the inputs, every intermediate tensor, and
/// the diagnostics the stages accumulate. A context outlives the stages
/// that filled it, so a failed run still carries the stats of the
/// stages that completed.
struct FitContext {
  /// Inputs (non-owning; must outlive the run).
  const AlignedNetworks* networks = nullptr;
  const SocialGraph* target_structure = nullptr;

  /// Set by FeatureStage: the slice selection actually extracted and
  /// whether any source network transfers (sources enabled, present,
  /// and anchored).
  FeatureTensorOptions feature_options;
  bool transfer = false;

  /// raw_tensors[0] = target features on the training structure;
  /// raw_tensors[k>=1] = source k on its own graph (only when
  /// transferring).
  std::vector<SparseTensor3> raw_tensors;

  /// Set by EmbeddingStage: adapted tensors in target coordinates.
  std::vector<SparseTensor3> adapted_tensors;

  /// Set by SolveStage: the fitted predictor matrix and its trace. A
  /// dense-backend solve fills `s`; a factored one fills `s_factored`
  /// and leaves `s` empty.
  Matrix s;
  FactoredMatrix s_factored;
  CccpTrace trace;

  /// Set by PartitionStage (partitioned pipeline only): the clustering
  /// of the training structure the per-cluster solves run on.
  GraphPartition partition;

  /// Set by PartitionedSolveStage: the per-cluster score shards plus
  /// the boundary-refinement scores; `partitioned` marks success so the
  /// model dispatches scoring to `shards`.
  ShardedScores shards;
  bool partitioned = false;

  /// Diagnostics accumulated across stages. `partition_stats` carries
  /// the cluster summary and per-cluster solve timings of a partitioned
  /// run (zeroed in a monolithic one).
  FitPhaseTimes phase_times;
  FitMemoryStats memory_stats;
  PartitionStats partition_stats;
};

/// One pipeline stage. Run() reads and extends the context; it must be
/// safe to call on a context produced by the preceding stages (or a
/// hand-built equivalent in tests).
class FitStage {
 public:
  virtual ~FitStage() = default;

  /// Short stage name; also the suffix of the stage's fault site
  /// ("fit.<name>").
  virtual const char* name() const = 0;

  virtual Status Run(FitContext& context) const = 0;

  /// The FitPhaseTimes field this stage's wall time is recorded in.
  virtual double& PhaseSlot(FitPhaseTimes& times) const = 0;
};

/// FeatureStage controls — the -T / -H variant switches live here.
struct FeatureStageConfig {
  FeatureTensorOptions features;
  /// False (the -H variant) drops every attribute slice.
  bool use_attributes = true;
  /// False (the -T / -H variants) skips source tensors entirely.
  bool use_sources = true;
};
FeatureStageConfig FeatureStageConfigFrom(const SlamPredConfig& config);

/// Builds the raw intimacy tensors (CSR) and decides `transfer`.
class FeatureStage : public FitStage {
 public:
  explicit FeatureStage(FeatureStageConfig config)
      : config_(std::move(config)) {}
  const char* name() const override { return "features"; }
  Status Run(FitContext& context) const override;
  double& PhaseSlot(FitPhaseTimes& times) const override {
    return times.features_seconds;
  }

 private:
  FeatureStageConfig config_;
};

/// EmbeddingStage controls.
struct EmbeddingStageConfig {
  /// False runs the EXP-A2 passthrough ablation instead of Theorem 1.
  bool domain_adaptation = true;
  /// Project the target's own features too (strict-paper mode).
  bool project_target_features = false;
  DomainAdapterOptions adapter;
  double mu = 1.0;
  std::size_t latent_dim = 5;
  std::uint64_t seed = 7;
};
EmbeddingStageConfig EmbeddingStageConfigFrom(const SlamPredConfig& config);

/// Produces the adapted tensors from the raw ones (projection,
/// passthrough, or a plain move when nothing transfers).
class EmbeddingStage : public FitStage {
 public:
  explicit EmbeddingStage(EmbeddingStageConfig config)
      : config_(std::move(config)) {}
  const char* name() const override { return "embedding"; }
  Status Run(FitContext& context) const override;
  double& PhaseSlot(FitPhaseTimes& times) const override {
    return times.embedding_seconds;
  }

 private:
  EmbeddingStageConfig config_;
};

/// SolveStage controls.
struct SolveStageConfig {
  double alpha_target = 1.0;
  std::vector<double> alpha_sources = {1.0};
  double intimacy_scale = 16.0;
  double gamma = 0.3;
  double tau = 6.0;
  LossKind loss = LossKind::kSquaredFrobenius;
  CccpOptions optimization;
  SolverBackend solver_backend = SolverBackend::kDense;
  FactoredSolverOptions factored;
};
SolveStageConfig SolveStageConfigFrom(const SlamPredConfig& config);

/// Assembles the objective (intimacy weights + constant CCCP gradient)
/// and runs Algorithm 1, producing context.s.
class SolveStage : public FitStage {
 public:
  explicit SolveStage(SolveStageConfig config) : config_(std::move(config)) {}
  const char* name() const override { return "solve"; }
  Status Run(FitContext& context) const override;
  double& PhaseSlot(FitPhaseTimes& times) const override {
    return times.cccp_seconds;
  }

 private:
  SolveStageConfig config_;
};

/// Clusters the training structure (graph/partitioner.h) into
/// context.partition and seeds context.partition_stats. Only part of
/// the pipeline when config.partition.mode == kAuto.
class PartitionStage : public FitStage {
 public:
  explicit PartitionStage(PartitionOptions options)
      : options_(std::move(options)) {}
  const char* name() const override { return "partition"; }
  Status Run(FitContext& context) const override;
  double& PhaseSlot(FitPhaseTimes& times) const override {
    return times.partition_seconds;
  }

 private:
  PartitionOptions options_;
};

/// The partitioned replacement of the whole feature → embedding → solve
/// chain: extracts each cluster's induced sub-bundle, fans independent
/// full SLAMPRED sub-fits out over the thread pool (each guarded by the
/// "fit.cluster" fault site with one checkpoint-resume retry), then
/// rescores cross-cluster candidate pairs in a boundary-refinement pass.
/// Named "solve" so the stage-level "fit.solve" fault site covers both
/// pipelines. Nested sub-fit parallelism serialises inside the outer
/// fan-out, so results are bit-identical for every thread count.
class PartitionedSolveStage : public FitStage {
 public:
  explicit PartitionedSolveStage(SlamPredConfig config)
      : config_(std::move(config)) {}
  const char* name() const override { return "solve"; }
  Status Run(FitContext& context) const override;
  double& PhaseSlot(FitPhaseTimes& times) const override {
    return times.cccp_seconds;
  }

 private:
  SlamPredConfig config_;
};

/// The full pipeline configured from `config`: the three-stage
/// monolithic chain, or PartitionStage → PartitionedSolveStage when
/// config.partition.mode == kAuto.
std::vector<std::unique_ptr<FitStage>> BuildFitPipeline(
    const SlamPredConfig& config);

/// Validates the context's inputs, then runs `stages` in order: each
/// stage is wall-clocked into its PhaseSlot and guarded by the
/// "fit.<name>" fault site; the first failure stops the run (stats of
/// completed stages stay in the context).
Status RunFitPipeline(const std::vector<std::unique_ptr<FitStage>>& stages,
                      FitContext& context);

}  // namespace slampred

#endif  // SLAMPRED_CORE_FIT_PIPELINE_H_
