// Meta-path based intimacy features over the heterogeneous network —
// the feature family of the paper's reference [28] ("the same set of
// features introduced in [28]", Section IV-B1). A meta path is a typed
// walk schema; the feature value of a user pair is the (normalised)
// number of path instances connecting them:
//
//   U→U→U            friend-of-friend closure (structure)
//   U→P→W→P→U        shared-word co-usage
//   U→P→T→P→U        co-activity in the same time bin
//   U→P→L→P→U        co-checkin at the same location
//
// Raw instance counts explode with hub attributes (a common word links
// everyone), so each count is normalised symmetrically:
// score(u,v) = count(u,v) / sqrt(count(u,u) · count(v,v)) — the
// "symmetric random walk" normalisation used for meta-path similarity
// (PathSim-style).

#ifndef SLAMPRED_FEATURES_META_PATH_FEATURES_H_
#define SLAMPRED_FEATURES_META_PATH_FEATURES_H_

#include <string>
#include <vector>

#include "graph/heterogeneous_network.h"
#include "linalg/matrix.h"
#include "util/status.h"

namespace slampred {

/// The supported meta-path schemas.
enum class MetaPath {
  kUserUserUser,          ///< U −friend→ U −friend→ U.
  kUserPostWordPostUser,  ///< U −write→ P −word→ W ←word− P ←write− U.
  kUserPostTimePostUser,  ///< via shared timestamp bins.
  kUserPostLocationPostUser,  ///< via shared checkin locations.
};

/// Stable display name ("U-U-U", "U-P-W-P-U", ...).
const char* MetaPathName(MetaPath path);

/// All supported schemas in a fixed order.
std::vector<MetaPath> AllMetaPaths();

/// Computes the PathSim-normalised meta-path similarity map for one
/// schema: an n x n symmetric matrix with zero diagonal, entries in
/// [0, 1].
Matrix MetaPathSimilarityMap(const HeterogeneousNetwork& network,
                             MetaPath path);

/// Computes the *raw* (unnormalised) commuting-count matrix for the
/// schema — exposed for tests and for callers that want their own
/// normalisation. Diagonal holds count(u, u).
Matrix MetaPathCountMap(const HeterogeneousNetwork& network, MetaPath path);

}  // namespace slampred

#endif  // SLAMPRED_FEATURES_META_PATH_FEATURES_H_
