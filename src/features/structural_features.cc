#include "features/structural_features.h"

#include <cmath>
#include <vector>

#include "util/thread_pool.h"

namespace slampred {

namespace {

// Applies `score(w)` over the common neighbors w of every pair (u, v)
// and accumulates into a symmetric map. Shared skeleton of CN/AA/RA.
//
// Gather form: row u collects score(w) for every two-hop path u–w–v,
// so each map row has exactly one writing chunk and the middle nodes w
// arrive in ascending order (neighbor lists are sorted) — the same
// per-element accumulation order as the classic scatter loop, hence
// bit-identical results for any thread count. Total work stays
// O(Σ deg(w)²).
template <typename ScoreFn>
Matrix AccumulateCommonNeighborScores(const SocialGraph& graph,
                                      ScoreFn score) {
  const std::size_t n = graph.num_users();
  std::vector<double> s(n, 0.0);
  std::size_t degree_sq_sum = 0;
  for (std::size_t w = 0; w < n; ++w) {
    s[w] = score(w);
    degree_sq_sum += graph.Degree(w) * graph.Degree(w);
  }
  const std::size_t avg_row_work = n == 0 ? 1 : degree_sq_sum / n + 1;
  Matrix map(n, n);
  ParallelFor(0, n, GrainForWork(avg_row_work),
              [&](std::size_t row0, std::size_t row1) {
                for (std::size_t u = row0; u < row1; ++u) {
                  for (std::size_t w : graph.Neighbors(u)) {
                    if (s[w] == 0.0) continue;
                    for (std::size_t v : graph.Neighbors(w)) {
                      if (v != u) map(u, v) += s[w];
                    }
                  }
                }
              });
  return map;
}

}  // namespace

Matrix CommonNeighborsMap(const SocialGraph& graph) {
  return AccumulateCommonNeighborScores(graph,
                                        [](std::size_t) { return 1.0; });
}

Matrix JaccardMap(const SocialGraph& graph) {
  const std::size_t n = graph.num_users();
  Matrix cn = CommonNeighborsMap(graph);
  Matrix map(n, n);
  // Each row is computed in full by its one writing chunk; cn is exactly
  // symmetric, so (u,v) and (v,u) still get equal scores.
  ParallelFor(0, n, GrainForWork(n),
              [&](std::size_t row0, std::size_t row1) {
                for (std::size_t u = row0; u < row1; ++u) {
                  const double du = static_cast<double>(graph.Degree(u));
                  for (std::size_t v = 0; v < n; ++v) {
                    if (v == u) continue;
                    const double inter = cn(u, v);
                    if (inter == 0.0) continue;
                    const double uni =
                        du + static_cast<double>(graph.Degree(v)) - inter;
                    map(u, v) = uni > 0.0 ? inter / uni : 0.0;
                  }
                }
              });
  return map;
}

Matrix AdamicAdarMap(const SocialGraph& graph) {
  return AccumulateCommonNeighborScores(graph, [&](std::size_t w) {
    const double deg = static_cast<double>(graph.Degree(w));
    if (deg < 1.0) return 0.0;
    // deg=1 would give 1/log(1)=inf; use log 2 as the floor.
    return 1.0 / std::log(std::max(deg, 2.0));
  });
}

Matrix ResourceAllocationMap(const SocialGraph& graph) {
  return AccumulateCommonNeighborScores(graph, [&](std::size_t w) {
    const double deg = static_cast<double>(graph.Degree(w));
    return deg > 0.0 ? 1.0 / deg : 0.0;
  });
}

Matrix PreferentialAttachmentMap(const SocialGraph& graph) {
  const std::size_t n = graph.num_users();
  Matrix map(n, n);
  ParallelFor(0, n, GrainForWork(n),
              [&](std::size_t row0, std::size_t row1) {
                for (std::size_t u = row0; u < row1; ++u) {
                  const double du = static_cast<double>(graph.Degree(u));
                  for (std::size_t v = 0; v < n; ++v) {
                    if (u == v) continue;
                    map(u, v) = du * static_cast<double>(graph.Degree(v));
                  }
                }
              });
  return map;
}

Matrix TruncatedKatzMap(const SocialGraph& graph, double beta) {
  const Matrix a = graph.AdjacencyMatrix();
  Matrix a2 = a * a;
  Matrix a3 = a2 * a;
  Matrix katz = a2 * beta + a3 * (beta * beta);
  // Self paths are meaningless for link prediction.
  for (std::size_t i = 0; i < katz.rows(); ++i) katz(i, i) = 0.0;
  return katz;
}

}  // namespace slampred
