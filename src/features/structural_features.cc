#include "features/structural_features.h"

#include <cmath>

namespace slampred {

namespace {

// Applies `score(w)` over the common neighbors w of every pair (u, v)
// and accumulates into a symmetric map. Shared skeleton of CN/AA/RA.
template <typename ScoreFn>
Matrix AccumulateCommonNeighborScores(const SocialGraph& graph,
                                      ScoreFn score) {
  const std::size_t n = graph.num_users();
  Matrix map(n, n);
  // For each potential middle node w, every pair of its neighbors gains
  // score(w): O(Σ deg(w)²) instead of O(n² · deg).
  for (std::size_t w = 0; w < n; ++w) {
    const auto& nbrs = graph.Neighbors(w);
    const double s = score(w);
    if (s == 0.0) continue;
    for (std::size_t a = 0; a < nbrs.size(); ++a) {
      for (std::size_t b = a + 1; b < nbrs.size(); ++b) {
        map(nbrs[a], nbrs[b]) += s;
        map(nbrs[b], nbrs[a]) += s;
      }
    }
  }
  return map;
}

}  // namespace

Matrix CommonNeighborsMap(const SocialGraph& graph) {
  return AccumulateCommonNeighborScores(graph,
                                        [](std::size_t) { return 1.0; });
}

Matrix JaccardMap(const SocialGraph& graph) {
  const std::size_t n = graph.num_users();
  Matrix cn = CommonNeighborsMap(graph);
  Matrix map(n, n);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) {
      const double inter = cn(u, v);
      if (inter == 0.0) continue;
      const double uni = static_cast<double>(graph.Degree(u)) +
                         static_cast<double>(graph.Degree(v)) - inter;
      const double score = uni > 0.0 ? inter / uni : 0.0;
      map(u, v) = score;
      map(v, u) = score;
    }
  }
  return map;
}

Matrix AdamicAdarMap(const SocialGraph& graph) {
  return AccumulateCommonNeighborScores(graph, [&](std::size_t w) {
    const double deg = static_cast<double>(graph.Degree(w));
    if (deg < 1.0) return 0.0;
    // deg=1 would give 1/log(1)=inf; use log 2 as the floor.
    return 1.0 / std::log(std::max(deg, 2.0));
  });
}

Matrix ResourceAllocationMap(const SocialGraph& graph) {
  return AccumulateCommonNeighborScores(graph, [&](std::size_t w) {
    const double deg = static_cast<double>(graph.Degree(w));
    return deg > 0.0 ? 1.0 / deg : 0.0;
  });
}

Matrix PreferentialAttachmentMap(const SocialGraph& graph) {
  const std::size_t n = graph.num_users();
  Matrix map(n, n);
  for (std::size_t u = 0; u < n; ++u) {
    const double du = static_cast<double>(graph.Degree(u));
    for (std::size_t v = 0; v < n; ++v) {
      if (u == v) continue;
      map(u, v) = du * static_cast<double>(graph.Degree(v));
    }
  }
  return map;
}

Matrix TruncatedKatzMap(const SocialGraph& graph, double beta) {
  const Matrix a = graph.AdjacencyMatrix();
  Matrix a2 = a * a;
  Matrix a3 = a2 * a;
  Matrix katz = a2 * beta + a3 * (beta * beta);
  // Self paths are meaningless for link prediction.
  for (std::size_t i = 0; i < katz.rows(); ++i) katz(i, i) = 0.0;
  return katz;
}

}  // namespace slampred
