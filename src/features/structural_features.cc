#include "features/structural_features.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/thread_pool.h"

namespace slampred {

namespace {

// Applies `score(w)` over the common neighbors w of every pair (u, v)
// and accumulates into a symmetric map. Shared skeleton of CN/AA/RA.
//
// Gather form: row u collects score(w) for every two-hop path u–w–v,
// so each map row has exactly one writing chunk and the middle nodes w
// arrive in ascending order (neighbor lists are sorted) — the same
// per-element accumulation order as the classic scatter loop, hence
// bit-identical results for any thread count. Total work stays
// O(Σ deg(w)²).
template <typename ScoreFn>
Matrix AccumulateCommonNeighborScores(const SocialGraph& graph,
                                      ScoreFn score) {
  const std::size_t n = graph.num_users();
  std::vector<double> s(n, 0.0);
  std::size_t degree_sq_sum = 0;
  for (std::size_t w = 0; w < n; ++w) {
    s[w] = score(w);
    degree_sq_sum += graph.Degree(w) * graph.Degree(w);
  }
  const std::size_t avg_row_work = n == 0 ? 1 : degree_sq_sum / n + 1;
  Matrix map(n, n);
  ParallelFor(0, n, GrainForWork(avg_row_work),
              [&](std::size_t row0, std::size_t row1) {
                for (std::size_t u = row0; u < row1; ++u) {
                  for (std::size_t w : graph.Neighbors(u)) {
                    if (s[w] == 0.0) continue;
                    for (std::size_t v : graph.Neighbors(w)) {
                      if (v != u) map(u, v) += s[w];
                    }
                  }
                }
              });
  return map;
}

// Sparse twin of AccumulateCommonNeighborScores: identical loops into a
// per-chunk dense scratch row, emitted as CSR rows. Per element (u, v)
// the middle nodes w arrive in the same ascending order, so stored
// values are bit-identical to the dense map's.
template <typename ScoreFn>
CsrMatrix AccumulateCommonNeighborScoresCsr(const SocialGraph& graph,
                                            ScoreFn score) {
  const std::size_t n = graph.num_users();
  std::vector<double> s(n, 0.0);
  std::size_t degree_sq_sum = 0;
  for (std::size_t w = 0; w < n; ++w) {
    s[w] = score(w);
    degree_sq_sum += graph.Degree(w) * graph.Degree(w);
  }
  const std::size_t avg_row_work = n == 0 ? 1 : degree_sq_sum / n + 1;
  std::vector<std::vector<CsrMatrix::RowEntry>> rows(n);
  ParallelFor(0, n, GrainForWork(avg_row_work),
              [&](std::size_t row0, std::size_t row1) {
                std::vector<double> scratch(n, 0.0);
                std::vector<char> seen(n, 0);
                std::vector<std::size_t> touched;
                for (std::size_t u = row0; u < row1; ++u) {
                  touched.clear();
                  for (std::size_t w : graph.Neighbors(u)) {
                    if (s[w] == 0.0) continue;
                    for (std::size_t v : graph.Neighbors(w)) {
                      if (v == u) continue;
                      if (!seen[v]) {
                        seen[v] = 1;
                        touched.push_back(v);
                      }
                      scratch[v] += s[w];
                    }
                  }
                  std::sort(touched.begin(), touched.end());
                  rows[u].reserve(touched.size());
                  for (std::size_t v : touched) {
                    if (scratch[v] != 0.0) rows[u].push_back({v, scratch[v]});
                    scratch[v] = 0.0;
                    seen[v] = 0;
                  }
                }
              });
  return CsrMatrix::FromRows(n, std::move(rows));
}

}  // namespace

Matrix CommonNeighborsMap(const SocialGraph& graph) {
  return AccumulateCommonNeighborScores(graph,
                                        [](std::size_t) { return 1.0; });
}

Matrix JaccardMap(const SocialGraph& graph) {
  const std::size_t n = graph.num_users();
  Matrix cn = CommonNeighborsMap(graph);
  Matrix map(n, n);
  // Each row is computed in full by its one writing chunk; cn is exactly
  // symmetric, so (u,v) and (v,u) still get equal scores.
  ParallelFor(0, n, GrainForWork(n),
              [&](std::size_t row0, std::size_t row1) {
                for (std::size_t u = row0; u < row1; ++u) {
                  const double du = static_cast<double>(graph.Degree(u));
                  for (std::size_t v = 0; v < n; ++v) {
                    if (v == u) continue;
                    const double inter = cn(u, v);
                    if (inter == 0.0) continue;
                    const double uni =
                        du + static_cast<double>(graph.Degree(v)) - inter;
                    map(u, v) = uni > 0.0 ? inter / uni : 0.0;
                  }
                }
              });
  return map;
}

Matrix AdamicAdarMap(const SocialGraph& graph) {
  return AccumulateCommonNeighborScores(graph, [&](std::size_t w) {
    const double deg = static_cast<double>(graph.Degree(w));
    if (deg < 1.0) return 0.0;
    // deg=1 would give 1/log(1)=inf; use log 2 as the floor.
    return 1.0 / std::log(std::max(deg, 2.0));
  });
}

Matrix ResourceAllocationMap(const SocialGraph& graph) {
  return AccumulateCommonNeighborScores(graph, [&](std::size_t w) {
    const double deg = static_cast<double>(graph.Degree(w));
    return deg > 0.0 ? 1.0 / deg : 0.0;
  });
}

Matrix PreferentialAttachmentMap(const SocialGraph& graph) {
  const std::size_t n = graph.num_users();
  Matrix map(n, n);
  ParallelFor(0, n, GrainForWork(n),
              [&](std::size_t row0, std::size_t row1) {
                for (std::size_t u = row0; u < row1; ++u) {
                  const double du = static_cast<double>(graph.Degree(u));
                  for (std::size_t v = 0; v < n; ++v) {
                    if (u == v) continue;
                    map(u, v) = du * static_cast<double>(graph.Degree(v));
                  }
                }
              });
  return map;
}

Matrix TruncatedKatzMap(const SocialGraph& graph, double beta) {
  const Matrix a = graph.AdjacencyMatrix();
  Matrix a2 = a * a;
  Matrix a3 = a2 * a;
  Matrix katz = a2 * beta + a3 * (beta * beta);
  // Self paths are meaningless for link prediction.
  for (std::size_t i = 0; i < katz.rows(); ++i) katz(i, i) = 0.0;
  return katz;
}

CsrMatrix CommonNeighborsCsr(const SocialGraph& graph) {
  return AccumulateCommonNeighborScoresCsr(graph,
                                           [](std::size_t) { return 1.0; });
}

CsrMatrix JaccardCsr(const SocialGraph& graph) {
  const std::size_t n = graph.num_users();
  const CsrMatrix cn = CommonNeighborsCsr(graph);
  // The Jaccard pattern is exactly the common-neighbor pattern (the
  // dense map skips inter == 0 pairs); values use the dense expression.
  std::vector<std::vector<CsrMatrix::RowEntry>> rows(n);
  ParallelFor(0, n, GrainForWork(cn.nnz() / std::max<std::size_t>(1, n) + 1),
              [&](std::size_t row0, std::size_t row1) {
                for (std::size_t u = row0; u < row1; ++u) {
                  const double du = static_cast<double>(graph.Degree(u));
                  const std::size_t begin = cn.row_ptr()[u];
                  const std::size_t end = cn.row_ptr()[u + 1];
                  rows[u].reserve(end - begin);
                  for (std::size_t p = begin; p < end; ++p) {
                    const std::size_t v = cn.col_idx()[p];
                    const double inter = cn.values()[p];
                    const double uni =
                        du + static_cast<double>(graph.Degree(v)) - inter;
                    rows[u].push_back({v, uni > 0.0 ? inter / uni : 0.0});
                  }
                }
              });
  return CsrMatrix::FromRows(n, std::move(rows));
}

CsrMatrix AdamicAdarCsr(const SocialGraph& graph) {
  return AccumulateCommonNeighborScoresCsr(graph, [&](std::size_t w) {
    const double deg = static_cast<double>(graph.Degree(w));
    if (deg < 1.0) return 0.0;
    return 1.0 / std::log(std::max(deg, 2.0));
  });
}

CsrMatrix ResourceAllocationCsr(const SocialGraph& graph) {
  return AccumulateCommonNeighborScoresCsr(graph, [&](std::size_t w) {
    const double deg = static_cast<double>(graph.Degree(w));
    return deg > 0.0 ? 1.0 / deg : 0.0;
  });
}

CsrMatrix PreferentialAttachmentCsr(const SocialGraph& graph) {
  const std::size_t n = graph.num_users();
  // Nonzero wherever both degrees are — the same pattern the dense map
  // stores implicitly. Isolated users give empty rows/columns.
  std::vector<std::size_t> active;
  for (std::size_t v = 0; v < n; ++v) {
    if (graph.Degree(v) > 0) active.push_back(v);
  }
  std::vector<std::vector<CsrMatrix::RowEntry>> rows(n);
  ParallelFor(0, n, GrainForWork(active.size() + 1),
              [&](std::size_t row0, std::size_t row1) {
                for (std::size_t u = row0; u < row1; ++u) {
                  const double du = static_cast<double>(graph.Degree(u));
                  if (du == 0.0) continue;
                  rows[u].reserve(active.size());
                  for (std::size_t v : active) {
                    if (v == u) continue;
                    rows[u].push_back(
                        {v, du * static_cast<double>(graph.Degree(v))});
                  }
                }
              });
  return CsrMatrix::FromRows(n, std::move(rows));
}

CsrMatrix TruncatedKatzCsr(const SocialGraph& graph, double beta) {
  const CsrMatrix a = graph.AdjacencyCsr();
  const CsrMatrix a2 = a.MultiplySparse(a);
  const CsrMatrix a3 = a2.MultiplySparse(a);
  // v₂β + v₃β² with absent entries as exact zeros — entry-wise the same
  // arithmetic as the dense `a2 * beta + a3 * (beta * beta)` (FP
  // addition is commutative, so the merge order is immaterial).
  const CsrMatrix katz = a2.Scaled(beta).Add(a3.Scaled(beta * beta));
  return katz.WithoutDiagonal();
}

}  // namespace slampred
