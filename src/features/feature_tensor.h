// Assembles the per-network intimacy feature tensor X^k of the paper:
// a stack of structural and attribute feature maps over all user pairs,
// min-max normalised per slice so every feature lies in [0, 1].

#ifndef SLAMPRED_FEATURES_FEATURE_TENSOR_H_
#define SLAMPRED_FEATURES_FEATURE_TENSOR_H_

#include <string>
#include <vector>

#include "graph/heterogeneous_network.h"
#include "graph/social_graph.h"
#include "linalg/sparse_tensor3.h"
#include "linalg/tensor3.h"

namespace slampred {

/// Which feature slices to extract.
struct FeatureTensorOptions {
  bool common_neighbors = true;
  bool jaccard = true;
  bool adamic_adar = true;
  bool resource_allocation = true;
  bool preferential_attachment = true;
  bool truncated_katz = true;
  double katz_beta = 0.05;
  bool word_similarity = true;
  bool location_similarity = true;
  bool time_similarity = true;
  /// Append the PathSim-normalised meta-path similarity slices
  /// (U-U-U, U-P-W-P-U, U-P-T-P-U, U-P-L-P-U) — the feature family of
  /// the paper's reference [28]. Off by default: they overlap heavily
  /// with the structural + cosine slices above and add four O(n²·d̄)
  /// extractions per network.
  bool meta_paths = false;
  /// Apply sqrt after min-max normalisation. Neighborhood and similarity
  /// scores are heavily right-skewed; the variance-stabilising transform
  /// keeps the scatter-based Theorem-1 projection (an LDA-like criterion)
  /// from being dominated by the tails. Monotone, so rankings of
  /// individual features are unchanged.
  bool sqrt_transform = true;
};

/// Names of the enabled slices, in tensor order.
std::vector<std::string> FeatureNames(const FeatureTensorOptions& options);

/// Number of enabled slices.
std::size_t NumFeatures(const FeatureTensorOptions& options);

/// Builds the d x n x n feature tensor for one network. Structural
/// features use `structure` (pass the *training* graph for the target so
/// held-out links never leak); attribute features use the full
/// heterogeneous layers of `network`. Every slice is min-max normalised
/// to [0, 1] and the diagonal of each slice is zeroed.
Tensor3 BuildFeatureTensor(const HeterogeneousNetwork& network,
                           const SocialGraph& structure,
                           const FeatureTensorOptions& options = {});

/// Sparse-native BuildFeatureTensor — the pipeline's default path. Each
/// slice is built directly in CSR (meta-path slices, off by default,
/// fall back to the dense extractor and sparsify), normalised and
/// sqrt-transformed on stored values only. The result densifies to
/// exactly BuildFeatureTensor's tensor, bit for bit; memory and work
/// scale with the slices' nnz instead of d·n².
SparseTensor3 BuildSparseFeatureTensor(const HeterogeneousNetwork& network,
                                       const SocialGraph& structure,
                                       const FeatureTensorOptions& options = {});

}  // namespace slampred

#endif  // SLAMPRED_FEATURES_FEATURE_TENSOR_H_
