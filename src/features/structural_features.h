// Structural intimacy features over user pairs, computed from an
// (observed / training) social graph: the classic neighborhood predictors
// plus truncated path counts. Each extractor returns a full n x n
// symmetric feature map (one slice of the paper's X^k tensor).

#ifndef SLAMPRED_FEATURES_STRUCTURAL_FEATURES_H_
#define SLAMPRED_FEATURES_STRUCTURAL_FEATURES_H_

#include "graph/social_graph.h"
#include "linalg/csr_matrix.h"
#include "linalg/matrix.h"

namespace slampred {

/// Common-neighbor counts |Γ(u) ∩ Γ(v)|.
Matrix CommonNeighborsMap(const SocialGraph& graph);

/// Jaccard coefficients |Γ(u) ∩ Γ(v)| / |Γ(u) ∪ Γ(v)| (0 when the union
/// is empty).
Matrix JaccardMap(const SocialGraph& graph);

/// Adamic–Adar scores Σ_{w ∈ Γ(u)∩Γ(v)} 1/log(deg(w)) (degree-1 common
/// neighbors contribute with log replaced by log 2).
Matrix AdamicAdarMap(const SocialGraph& graph);

/// Resource-allocation scores Σ_{w ∈ Γ(u)∩Γ(v)} 1/deg(w).
Matrix ResourceAllocationMap(const SocialGraph& graph);

/// Preferential-attachment products deg(u) * deg(v).
Matrix PreferentialAttachmentMap(const SocialGraph& graph);

/// Truncated Katz index β A² + β² A³ (paths of length 2 and 3); captures
/// slightly longer-range closure than CN without a matrix inverse.
Matrix TruncatedKatzMap(const SocialGraph& graph, double beta = 0.05);

// Sparse-native builders — the pipeline's default path. Each produces
// the CSR form of the matching dense map above with bit-identical
// stored values (the dense maps are kept as the equivalence-test
// references): the per-element accumulation order is the same and every
// skipped zero term is an exact no-op. Work and memory scale with the
// two-hop neighborhood size (O(Σ deg²)) instead of n².

/// CSR CommonNeighborsMap.
CsrMatrix CommonNeighborsCsr(const SocialGraph& graph);

/// CSR JaccardMap (pattern = the common-neighbor pattern).
CsrMatrix JaccardCsr(const SocialGraph& graph);

/// CSR AdamicAdarMap.
CsrMatrix AdamicAdarCsr(const SocialGraph& graph);

/// CSR ResourceAllocationMap.
CsrMatrix ResourceAllocationCsr(const SocialGraph& graph);

/// CSR PreferentialAttachmentMap. Every pair of nonzero-degree users
/// scores, so this slice is inherently ~n² nnz — it is kept CSR for
/// interface uniformity, not for memory.
CsrMatrix PreferentialAttachmentCsr(const SocialGraph& graph);

/// CSR TruncatedKatzMap via SpGEMM (A², A³ as sparse products) — the
/// big win over the dense O(n³) GEMM on sparse graphs.
CsrMatrix TruncatedKatzCsr(const SocialGraph& graph, double beta = 0.05);

}  // namespace slampred

#endif  // SLAMPRED_FEATURES_STRUCTURAL_FEATURES_H_
