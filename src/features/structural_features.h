// Structural intimacy features over user pairs, computed from an
// (observed / training) social graph: the classic neighborhood predictors
// plus truncated path counts. Each extractor returns a full n x n
// symmetric feature map (one slice of the paper's X^k tensor).

#ifndef SLAMPRED_FEATURES_STRUCTURAL_FEATURES_H_
#define SLAMPRED_FEATURES_STRUCTURAL_FEATURES_H_

#include "graph/social_graph.h"
#include "linalg/matrix.h"

namespace slampred {

/// Common-neighbor counts |Γ(u) ∩ Γ(v)|.
Matrix CommonNeighborsMap(const SocialGraph& graph);

/// Jaccard coefficients |Γ(u) ∩ Γ(v)| / |Γ(u) ∪ Γ(v)| (0 when the union
/// is empty).
Matrix JaccardMap(const SocialGraph& graph);

/// Adamic–Adar scores Σ_{w ∈ Γ(u)∩Γ(v)} 1/log(deg(w)) (degree-1 common
/// neighbors contribute with log replaced by log 2).
Matrix AdamicAdarMap(const SocialGraph& graph);

/// Resource-allocation scores Σ_{w ∈ Γ(u)∩Γ(v)} 1/deg(w).
Matrix ResourceAllocationMap(const SocialGraph& graph);

/// Preferential-attachment products deg(u) * deg(v).
Matrix PreferentialAttachmentMap(const SocialGraph& graph);

/// Truncated Katz index β A² + β² A³ (paths of length 2 and 3); captures
/// slightly longer-range closure than CN without a matrix inverse.
Matrix TruncatedKatzMap(const SocialGraph& graph, double beta = 0.05);

}  // namespace slampred

#endif  // SLAMPRED_FEATURES_STRUCTURAL_FEATURES_H_
