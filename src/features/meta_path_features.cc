#include "features/meta_path_features.h"

#include <cmath>

#include "features/attribute_features.h"
#include "graph/social_graph.h"
#include "linalg/matrix_ops.h"
#include "util/logging.h"

namespace slampred {

const char* MetaPathName(MetaPath path) {
  switch (path) {
    case MetaPath::kUserUserUser:
      return "U-U-U";
    case MetaPath::kUserPostWordPostUser:
      return "U-P-W-P-U";
    case MetaPath::kUserPostTimePostUser:
      return "U-P-T-P-U";
    case MetaPath::kUserPostLocationPostUser:
      return "U-P-L-P-U";
  }
  return "?";
}

std::vector<MetaPath> AllMetaPaths() {
  return {MetaPath::kUserUserUser, MetaPath::kUserPostWordPostUser,
          MetaPath::kUserPostTimePostUser,
          MetaPath::kUserPostLocationPostUser};
}

namespace {

// Commuting matrix of U→P→A→P→U: M = B Bᵀ where B(u, a) counts how many
// of u's posts attach to attribute value a. This equals the number of
// (post, post') pairs of u and v sharing attribute a, summed over a —
// the meta-path instance count.
Matrix AttributeCommuting(const HeterogeneousNetwork& network,
                          AttributeKind kind) {
  const Matrix profile = UserAttributeProfile(network, kind);
  return GramAAt(profile);
}

}  // namespace

Matrix MetaPathCountMap(const HeterogeneousNetwork& network, MetaPath path) {
  switch (path) {
    case MetaPath::kUserUserUser: {
      // A² counts length-2 friend paths; diagonal = degree.
      const Matrix a =
          SocialGraph::FromHeterogeneousNetwork(network).AdjacencyMatrix();
      return a * a;
    }
    case MetaPath::kUserPostWordPostUser:
      return AttributeCommuting(network, AttributeKind::kWord);
    case MetaPath::kUserPostTimePostUser:
      return AttributeCommuting(network, AttributeKind::kTimestamp);
    case MetaPath::kUserPostLocationPostUser:
      return AttributeCommuting(network, AttributeKind::kLocation);
  }
  return Matrix();
}

Matrix MetaPathSimilarityMap(const HeterogeneousNetwork& network,
                             MetaPath path) {
  const Matrix counts = MetaPathCountMap(network, path);
  const std::size_t n = counts.rows();
  Matrix sim(n, n);
  for (std::size_t u = 0; u < n; ++u) {
    const double cu = counts(u, u);
    if (cu <= 0.0) continue;
    for (std::size_t v = u + 1; v < n; ++v) {
      const double cv = counts(v, v);
      if (cv <= 0.0) continue;
      const double value = counts(u, v) / std::sqrt(cu * cv);
      sim(u, v) = value;
      sim(v, u) = value;
    }
  }
  return sim;
}

}  // namespace slampred
