#include "features/attribute_features.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace slampred {

namespace {

EdgeType KindToPostEdge(AttributeKind kind) {
  switch (kind) {
    case AttributeKind::kWord:
      return EdgeType::kHasWord;
    case AttributeKind::kLocation:
      return EdgeType::kCheckin;
    case AttributeKind::kTimestamp:
      return EdgeType::kPostedAt;
  }
  return EdgeType::kHasWord;
}

NodeType KindToNodeType(AttributeKind kind) {
  switch (kind) {
    case AttributeKind::kWord:
      return NodeType::kWord;
    case AttributeKind::kLocation:
      return NodeType::kLocation;
    case AttributeKind::kTimestamp:
      return NodeType::kTimestamp;
  }
  return NodeType::kWord;
}

}  // namespace

Matrix UserAttributeProfile(const HeterogeneousNetwork& network,
                            AttributeKind kind) {
  const std::size_t users = network.NumUsers();
  const std::size_t universe = network.NumNodes(KindToNodeType(kind));
  const EdgeType post_edge = KindToPostEdge(kind);
  Matrix profiles(users, universe);
  for (std::size_t u = 0; u < users; ++u) {
    for (std::size_t post : network.Neighbors(EdgeType::kWrite, u)) {
      for (std::size_t attr : network.Neighbors(post_edge, post)) {
        profiles(u, attr) += 1.0;
      }
    }
  }
  return profiles;
}

Matrix CosineSimilarityMap(const Matrix& profiles) {
  const std::size_t n = profiles.rows();
  Vector norms(n);
  for (std::size_t u = 0; u < n; ++u) {
    double sum = 0.0;
    for (std::size_t a = 0; a < profiles.cols(); ++a) {
      sum += profiles(u, a) * profiles(u, a);
    }
    norms[u] = std::sqrt(sum);
  }
  Matrix map(n, n);
  for (std::size_t u = 0; u < n; ++u) {
    if (norms[u] == 0.0) continue;
    for (std::size_t v = u + 1; v < n; ++v) {
      if (norms[v] == 0.0) continue;
      double dot = 0.0;
      for (std::size_t a = 0; a < profiles.cols(); ++a) {
        dot += profiles(u, a) * profiles(v, a);
      }
      const double sim = dot / (norms[u] * norms[v]);
      map(u, v) = sim;
      map(v, u) = sim;
    }
  }
  return map;
}

Matrix AttributeSimilarityMap(const HeterogeneousNetwork& network,
                              AttributeKind kind) {
  return CosineSimilarityMap(UserAttributeProfile(network, kind));
}

CsrMatrix UserAttributeProfileCsr(const HeterogeneousNetwork& network,
                                  AttributeKind kind) {
  const std::size_t users = network.NumUsers();
  const std::size_t universe = network.NumNodes(KindToNodeType(kind));
  const EdgeType post_edge = KindToPostEdge(kind);
  TripletBuilder builder(users, universe);
  for (std::size_t u = 0; u < users; ++u) {
    for (std::size_t post : network.Neighbors(EdgeType::kWrite, u)) {
      for (std::size_t attr : network.Neighbors(post_edge, post)) {
        builder.Add(u, attr, 1.0);
      }
    }
  }
  // Duplicate (u, attr) triplets sum to the same integer counts the
  // dense `+= 1.0` loop produces — exact.
  return builder.Build();
}

CsrMatrix CosineSimilarityCsr(const CsrMatrix& profiles) {
  const std::size_t n = profiles.rows();
  // Norms from stored squares, attribute id ascending. The dense loop
  // also sums its zero squares — exact no-ops on a non-negative sum.
  std::vector<double> norms(n, 0.0);
  for (std::size_t u = 0; u < n; ++u) {
    double sum = 0.0;
    for (std::size_t p = profiles.row_ptr()[u]; p < profiles.row_ptr()[u + 1];
         ++p) {
      sum += profiles.values()[p] * profiles.values()[p];
    }
    norms[u] = std::sqrt(sum);
  }
  // Inverted index: row a of the transpose lists the users holding
  // attribute a, in ascending user order.
  const CsrMatrix pt = profiles.Transposed();
  const std::size_t avg_row_nnz =
      n == 0 ? 1 : profiles.nnz() / std::max<std::size_t>(1, n) + 1;
  std::vector<std::vector<CsrMatrix::RowEntry>> rows(n);
  ParallelFor(
      0, n, GrainForWork(avg_row_nnz * avg_row_nnz + 1),
      [&](std::size_t row0, std::size_t row1) {
        std::vector<double> scratch(n, 0.0);
        std::vector<char> seen(n, 0);
        std::vector<std::size_t> touched;
        for (std::size_t u = row0; u < row1; ++u) {
          if (norms[u] == 0.0) continue;
          touched.clear();
          // Outer loop ascends over u's attributes, so each pair's dot
          // accumulates in the dense a-ascending order (with its exact
          // zero terms skipped — all products are non-negative). Both
          // (u, v) and (v, u) are computed independently from identical
          // term sequences (FP multiplication is commutative), so the
          // map stays exactly symmetric like the dense mirror-write.
          for (std::size_t p = profiles.row_ptr()[u];
               p < profiles.row_ptr()[u + 1]; ++p) {
            const std::size_t a = profiles.col_idx()[p];
            const double pu = profiles.values()[p];
            for (std::size_t q = pt.row_ptr()[a]; q < pt.row_ptr()[a + 1];
                 ++q) {
              const std::size_t v = pt.col_idx()[q];
              if (!seen[v]) {
                seen[v] = 1;
                touched.push_back(v);
              }
              scratch[v] += pu * pt.values()[q];
            }
          }
          std::sort(touched.begin(), touched.end());
          rows[u].reserve(touched.size());
          for (std::size_t v : touched) {
            if (v != u && norms[v] != 0.0) {
              const double sim = scratch[v] / (norms[u] * norms[v]);
              if (sim != 0.0) rows[u].push_back({v, sim});
            }
            scratch[v] = 0.0;
            seen[v] = 0;
          }
        }
      });
  return CsrMatrix::FromRows(n, std::move(rows));
}

CsrMatrix AttributeSimilarityCsr(const HeterogeneousNetwork& network,
                                 AttributeKind kind) {
  return CosineSimilarityCsr(UserAttributeProfileCsr(network, kind));
}

}  // namespace slampred
