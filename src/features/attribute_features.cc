#include "features/attribute_features.h"

#include <cmath>

#include "util/logging.h"

namespace slampred {

namespace {

EdgeType KindToPostEdge(AttributeKind kind) {
  switch (kind) {
    case AttributeKind::kWord:
      return EdgeType::kHasWord;
    case AttributeKind::kLocation:
      return EdgeType::kCheckin;
    case AttributeKind::kTimestamp:
      return EdgeType::kPostedAt;
  }
  return EdgeType::kHasWord;
}

NodeType KindToNodeType(AttributeKind kind) {
  switch (kind) {
    case AttributeKind::kWord:
      return NodeType::kWord;
    case AttributeKind::kLocation:
      return NodeType::kLocation;
    case AttributeKind::kTimestamp:
      return NodeType::kTimestamp;
  }
  return NodeType::kWord;
}

}  // namespace

Matrix UserAttributeProfile(const HeterogeneousNetwork& network,
                            AttributeKind kind) {
  const std::size_t users = network.NumUsers();
  const std::size_t universe = network.NumNodes(KindToNodeType(kind));
  const EdgeType post_edge = KindToPostEdge(kind);
  Matrix profiles(users, universe);
  for (std::size_t u = 0; u < users; ++u) {
    for (std::size_t post : network.Neighbors(EdgeType::kWrite, u)) {
      for (std::size_t attr : network.Neighbors(post_edge, post)) {
        profiles(u, attr) += 1.0;
      }
    }
  }
  return profiles;
}

Matrix CosineSimilarityMap(const Matrix& profiles) {
  const std::size_t n = profiles.rows();
  Vector norms(n);
  for (std::size_t u = 0; u < n; ++u) {
    double sum = 0.0;
    for (std::size_t a = 0; a < profiles.cols(); ++a) {
      sum += profiles(u, a) * profiles(u, a);
    }
    norms[u] = std::sqrt(sum);
  }
  Matrix map(n, n);
  for (std::size_t u = 0; u < n; ++u) {
    if (norms[u] == 0.0) continue;
    for (std::size_t v = u + 1; v < n; ++v) {
      if (norms[v] == 0.0) continue;
      double dot = 0.0;
      for (std::size_t a = 0; a < profiles.cols(); ++a) {
        dot += profiles(u, a) * profiles(v, a);
      }
      const double sim = dot / (norms[u] * norms[v]);
      map(u, v) = sim;
      map(v, u) = sim;
    }
  }
  return map;
}

Matrix AttributeSimilarityMap(const HeterogeneousNetwork& network,
                              AttributeKind kind) {
  return CosineSimilarityMap(UserAttributeProfile(network, kind));
}

}  // namespace slampred
