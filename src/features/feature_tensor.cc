#include "features/feature_tensor.h"

#include <cmath>

#include "features/attribute_features.h"
#include "features/meta_path_features.h"
#include "features/structural_features.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace slampred {

std::vector<std::string> FeatureNames(const FeatureTensorOptions& options) {
  std::vector<std::string> names;
  if (options.common_neighbors) names.push_back("common_neighbors");
  if (options.jaccard) names.push_back("jaccard");
  if (options.adamic_adar) names.push_back("adamic_adar");
  if (options.resource_allocation) names.push_back("resource_allocation");
  if (options.preferential_attachment) {
    names.push_back("preferential_attachment");
  }
  if (options.truncated_katz) names.push_back("truncated_katz");
  if (options.word_similarity) names.push_back("word_similarity");
  if (options.location_similarity) names.push_back("location_similarity");
  if (options.time_similarity) names.push_back("time_similarity");
  if (options.meta_paths) {
    for (MetaPath path : AllMetaPaths()) {
      names.push_back(std::string("meta_path_") + MetaPathName(path));
    }
  }
  return names;
}

std::size_t NumFeatures(const FeatureTensorOptions& options) {
  return FeatureNames(options).size();
}

Tensor3 BuildFeatureTensor(const HeterogeneousNetwork& network,
                           const SocialGraph& structure,
                           const FeatureTensorOptions& options) {
  SLAMPRED_CHECK(structure.num_users() == network.NumUsers())
      << "structure graph and network must have the same user set";
  const std::size_t n = network.NumUsers();
  const std::size_t d = NumFeatures(options);
  Tensor3 tensor(d, n, n);

  std::size_t slice = 0;
  auto add = [&](Matrix map) {
    for (std::size_t i = 0; i < n; ++i) map(i, i) = 0.0;
    tensor.SetSlice(slice++, map);
  };

  if (options.common_neighbors) add(CommonNeighborsMap(structure));
  if (options.jaccard) add(JaccardMap(structure));
  if (options.adamic_adar) add(AdamicAdarMap(structure));
  if (options.resource_allocation) add(ResourceAllocationMap(structure));
  if (options.preferential_attachment) {
    add(PreferentialAttachmentMap(structure));
  }
  if (options.truncated_katz) {
    add(TruncatedKatzMap(structure, options.katz_beta));
  }
  if (options.word_similarity) {
    add(AttributeSimilarityMap(network, AttributeKind::kWord));
  }
  if (options.location_similarity) {
    add(AttributeSimilarityMap(network, AttributeKind::kLocation));
  }
  if (options.time_similarity) {
    add(AttributeSimilarityMap(network, AttributeKind::kTimestamp));
  }
  if (options.meta_paths) {
    for (MetaPath path : AllMetaPaths()) {
      if (path == MetaPath::kUserUserUser) {
        // The structural schema must respect the (training) structure
        // graph, not the network's full friend layer.
        const Matrix a = structure.AdjacencyMatrix();
        Matrix counts = a * a;
        Matrix sim(n, n);
        // Full-row form so every row has one writing chunk; counts is
        // symmetric and sqrt(cu*cv) == sqrt(cv*cu), so (u,v) and (v,u)
        // still match exactly.
        ParallelFor(0, n, GrainForWork(n),
                    [&](std::size_t row0, std::size_t row1) {
                      for (std::size_t u = row0; u < row1; ++u) {
                        const double cu = counts(u, u);
                        if (cu <= 0.0) continue;
                        for (std::size_t v = 0; v < n; ++v) {
                          if (v == u) continue;
                          const double cv = counts(v, v);
                          if (cv <= 0.0) continue;
                          sim(u, v) = counts(u, v) / std::sqrt(cu * cv);
                        }
                      }
                    });
        add(std::move(sim));
      } else {
        add(MetaPathSimilarityMap(network, path));
      }
    }
  }
  SLAMPRED_CHECK(slice == d);

  tensor.NormalizeSlicesMinMax();
  if (options.sqrt_transform) {
    double* td = tensor.data().data();
    ParallelFor(0, tensor.data().size(), GrainForWork(1),
                [&](std::size_t i0, std::size_t i1) {
                  for (std::size_t i = i0; i < i1; ++i) {
                    td[i] = std::sqrt(td[i]);
                  }
                });
  }
  return tensor;
}

SparseTensor3 BuildSparseFeatureTensor(const HeterogeneousNetwork& network,
                                       const SocialGraph& structure,
                                       const FeatureTensorOptions& options) {
  SLAMPRED_CHECK(structure.num_users() == network.NumUsers())
      << "structure graph and network must have the same user set";
  const std::size_t n = network.NumUsers();
  const std::size_t d = NumFeatures(options);
  SparseTensor3 tensor(d, n, n);

  std::size_t slice = 0;
  // The CSR extractors never emit diagonal entries, so the dense path's
  // explicit diagonal zeroing is already satisfied.
  auto add = [&](CsrMatrix map) { tensor.SetSlice(slice++, std::move(map)); };
  // Meta-path fallback: dense extraction, diagonal zeroed, sparsified.
  auto add_dense = [&](Matrix map) {
    for (std::size_t i = 0; i < n; ++i) map(i, i) = 0.0;
    add(CsrMatrix::FromDense(map));
  };

  if (options.common_neighbors) add(CommonNeighborsCsr(structure));
  if (options.jaccard) add(JaccardCsr(structure));
  if (options.adamic_adar) add(AdamicAdarCsr(structure));
  if (options.resource_allocation) add(ResourceAllocationCsr(structure));
  if (options.preferential_attachment) {
    add(PreferentialAttachmentCsr(structure));
  }
  if (options.truncated_katz) {
    add(TruncatedKatzCsr(structure, options.katz_beta));
  }
  if (options.word_similarity) {
    add(AttributeSimilarityCsr(network, AttributeKind::kWord));
  }
  if (options.location_similarity) {
    add(AttributeSimilarityCsr(network, AttributeKind::kLocation));
  }
  if (options.time_similarity) {
    add(AttributeSimilarityCsr(network, AttributeKind::kTimestamp));
  }
  if (options.meta_paths) {
    for (MetaPath path : AllMetaPaths()) {
      if (path == MetaPath::kUserUserUser) {
        const Matrix a = structure.AdjacencyMatrix();
        Matrix counts = a * a;
        Matrix sim(n, n);
        ParallelFor(0, n, GrainForWork(n),
                    [&](std::size_t row0, std::size_t row1) {
                      for (std::size_t u = row0; u < row1; ++u) {
                        const double cu = counts(u, u);
                        if (cu <= 0.0) continue;
                        for (std::size_t v = 0; v < n; ++v) {
                          if (v == u) continue;
                          const double cv = counts(v, v);
                          if (cv <= 0.0) continue;
                          sim(u, v) = counts(u, v) / std::sqrt(cu * cv);
                        }
                      }
                    });
        add_dense(std::move(sim));
      } else {
        add_dense(MetaPathSimilarityMap(network, path));
      }
    }
  }
  SLAMPRED_CHECK(slice == d);

  tensor.NormalizeSlicesMinMax();
  if (options.sqrt_transform) tensor.ApplySqrt();
  return tensor;
}

}  // namespace slampred
