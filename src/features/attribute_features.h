// Attribute-based intimacy features: per-user profiles aggregated from
// the heterogeneous layers (word usage, location checkins, temporal
// activity), turned into pairwise cosine-similarity maps. These are the
// "location checkin records, online social activity temporal patterns,
// and text usage patterns" features of Section III-B2.

#ifndef SLAMPRED_FEATURES_ATTRIBUTE_FEATURES_H_
#define SLAMPRED_FEATURES_ATTRIBUTE_FEATURES_H_

#include "graph/heterogeneous_network.h"
#include "linalg/csr_matrix.h"
#include "linalg/matrix.h"

namespace slampred {

/// The attribute universe a profile aggregates over.
enum class AttributeKind {
  kWord,       ///< user → posts → words.
  kLocation,   ///< user → posts → location checkins.
  kTimestamp,  ///< user → posts → time bins.
};

/// Builds the users x universe count matrix: entry (u, a) is how many of
/// u's posts attach to attribute value a.
Matrix UserAttributeProfile(const HeterogeneousNetwork& network,
                            AttributeKind kind);

/// Pairwise cosine similarity of the rows of `profiles`, with zero rows
/// yielding zero similarity and the diagonal zeroed.
Matrix CosineSimilarityMap(const Matrix& profiles);

/// Shorthand: cosine-similarity map of the given attribute kind.
Matrix AttributeSimilarityMap(const HeterogeneousNetwork& network,
                              AttributeKind kind);

// Sparse-native builders — the pipeline's default path. Profiles and
// similarity maps only store the entries the dense versions fill in;
// every stored value is bit-identical to the dense reference (cosine
// terms are non-negative, so skipping the zero addends is exact).

/// CSR UserAttributeProfile (counts are summed-1.0 triplets — exact).
CsrMatrix UserAttributeProfileCsr(const HeterogeneousNetwork& network,
                                  AttributeKind kind);

/// CSR CosineSimilarityMap over CSR profiles: norms from stored squares,
/// dots via an attribute-inverted index with the attribute id ascending
/// per pair — the dense accumulation order minus its exact-zero terms.
CsrMatrix CosineSimilarityCsr(const CsrMatrix& profiles);

/// Shorthand: CSR cosine-similarity map of the given attribute kind.
CsrMatrix AttributeSimilarityCsr(const HeterogeneousNetwork& network,
                                 AttributeKind kind);

}  // namespace slampred

#endif  // SLAMPRED_FEATURES_ATTRIBUTE_FEATURES_H_
