// Per-cluster sub-bundle extraction — the "extract" step between the
// partitioner and the per-cluster SLAMPRED solves. Given the member
// list of one cluster, builds the induced aligned-networks bundle the
// cluster's sub-fit runs on: the target restricted to the members
// (friend edges, posts and their attribute edges re-rooted on local
// user ids; word/timestamp/location universes kept global so attribute
// profiles stay comparable), the training structure induced on the
// members, the anchors restricted to member users, and each source
// restricted to the anchored partners plus their source-side friends.
// Sources left with no anchors are dropped (the cluster degrades to
// the target-only variant for them); kept_sources records the original
// indices so per-source weights can be remapped.

#ifndef SLAMPRED_GRAPH_CLUSTER_EXTRACT_H_
#define SLAMPRED_GRAPH_CLUSTER_EXTRACT_H_

#include <cstddef>
#include <vector>

#include "graph/aligned_networks.h"
#include "graph/social_graph.h"
#include "util/status.h"

namespace slampred {

/// The induced inputs of one cluster's sub-fit.
struct ClusterBundle {
  AlignedNetworks networks;
  SocialGraph structure;
  /// Original indices of the sources kept (those with at least one
  /// anchor into the cluster), in ascending order.
  std::vector<std::size_t> kept_sources;
};

/// Extracts the sub-bundle induced by `members` (ascending global user
/// ids of one cluster). When the cluster covers every target user the
/// bundle is a verbatim copy — this is what makes the single-cluster
/// partitioned fit bit-identical to the monolithic one.
Result<ClusterBundle> ExtractClusterBundle(
    const AlignedNetworks& networks, const SocialGraph& target_structure,
    const std::vector<std::size_t>& members);

}  // namespace slampred

#endif  // SLAMPRED_GRAPH_CLUSTER_EXTRACT_H_
