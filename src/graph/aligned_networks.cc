#include "graph/aligned_networks.h"

#include "util/logging.h"

namespace slampred {

AlignedNetworks::AlignedNetworks(HeterogeneousNetwork target)
    : target_(std::move(target)) {}

std::size_t AlignedNetworks::AddSource(HeterogeneousNetwork source,
                                       AnchorLinks anchors) {
  SLAMPRED_CHECK(anchors.left_users() == target_.NumUsers())
      << "anchor left side must match target user count";
  SLAMPRED_CHECK(anchors.right_users() == source.NumUsers())
      << "anchor right side must match source user count";
  sources_.push_back(std::move(source));
  anchors_.push_back(std::move(anchors));
  return sources_.size() - 1;
}

const HeterogeneousNetwork& AlignedNetworks::source(std::size_t k) const {
  SLAMPRED_CHECK(k < sources_.size()) << "source index out of range";
  return sources_[k];
}

const AnchorLinks& AlignedNetworks::anchors(std::size_t k) const {
  SLAMPRED_CHECK(k < anchors_.size()) << "anchor index out of range";
  return anchors_[k];
}

void AlignedNetworks::SetAnchors(std::size_t k, AnchorLinks anchors) {
  SLAMPRED_CHECK(k < anchors_.size()) << "anchor index out of range";
  SLAMPRED_CHECK(anchors.left_users() == target_.NumUsers());
  SLAMPRED_CHECK(anchors.right_users() == sources_[k].NumUsers());
  anchors_[k] = std::move(anchors);
}

}  // namespace slampred
