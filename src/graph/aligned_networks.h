// The multiple-aligned-networks bundle G = ({Gᵗ, G¹, ..., G^K},
// {A^{t,1}, ...}) of Definition 2. The target network is distinguished;
// each source network carries its anchor-link set to the target.

#ifndef SLAMPRED_GRAPH_ALIGNED_NETWORKS_H_
#define SLAMPRED_GRAPH_ALIGNED_NETWORKS_H_

#include <cstddef>
#include <vector>

#include "graph/anchor_links.h"
#include "graph/heterogeneous_network.h"

namespace slampred {

/// A target heterogeneous network plus K aligned source networks and the
/// anchor links pairing the target's users with each source's users.
/// (Source-source anchor links are not needed by SLAMPRED and omitted.)
class AlignedNetworks {
 public:
  /// Takes ownership of the target network.
  explicit AlignedNetworks(HeterogeneousNetwork target);

  /// Adds a source network with its anchor links to the target. The
  /// anchor set's sides must match the target's and source's user
  /// counts. Returns the source index.
  std::size_t AddSource(HeterogeneousNetwork source, AnchorLinks anchors);

  /// The target network Gᵗ.
  const HeterogeneousNetwork& target() const { return target_; }
  HeterogeneousNetwork& mutable_target() { return target_; }

  /// Number of aligned source networks K.
  std::size_t num_sources() const { return sources_.size(); }

  /// The k-th source network G^k (0-based).
  const HeterogeneousNetwork& source(std::size_t k) const;

  /// The anchor links A^{t,k} between the target and the k-th source.
  const AnchorLinks& anchors(std::size_t k) const;

  /// Replaces the anchor set for source k (used by the ratio sweep).
  void SetAnchors(std::size_t k, AnchorLinks anchors);

 private:
  HeterogeneousNetwork target_;
  std::vector<HeterogeneousNetwork> sources_;
  std::vector<AnchorLinks> anchors_;
};

}  // namespace slampred

#endif  // SLAMPRED_GRAPH_ALIGNED_NETWORKS_H_
