#include "graph/graph_io.h"

#include <fstream>
#include <optional>
#include <sstream>

#include "util/string_util.h"

namespace slampred {

namespace {

std::optional<NodeType> NodeTypeFromName(const std::string& name) {
  for (std::size_t t = 0; t < kNumNodeTypes; ++t) {
    const NodeType type = static_cast<NodeType>(t);
    if (name == NodeTypeName(type)) return type;
  }
  return std::nullopt;
}

std::optional<EdgeType> EdgeTypeFromName(const std::string& name) {
  for (std::size_t e = 0; e < kNumEdgeTypes; ++e) {
    const EdgeType type = static_cast<EdgeType>(e);
    if (name == EdgeTypeName(type)) return type;
  }
  return std::nullopt;
}

Status LineError(std::size_t line_number, const std::string& message) {
  return Status::InvalidArgument("line " + std::to_string(line_number) +
                                 ": " + message);
}

bool ParseSize(const std::string& token, std::size_t* out) {
  if (token.empty()) return false;
  std::size_t value = 0;
  for (char c : token) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::size_t>(c - '0');
  }
  *out = value;
  return true;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IoError("cannot open for reading: " + path);
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

Status WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::IoError("cannot open for writing: " + path);
  }
  out << content;
  if (!out.good()) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace

std::string SerializeNetwork(const HeterogeneousNetwork& network) {
  std::string out = "# slampred heterogeneous network v1\n";
  out += "network " + network.name() + "\n";
  for (std::size_t t = 0; t < kNumNodeTypes; ++t) {
    const NodeType type = static_cast<NodeType>(t);
    if (network.NumNodes(type) == 0) continue;
    out += "nodes " + std::string(NodeTypeName(type)) + " " +
           std::to_string(network.NumNodes(type)) + "\n";
  }
  for (std::size_t e = 0; e < kNumEdgeTypes; ++e) {
    const EdgeType type = static_cast<EdgeType>(e);
    const std::size_t src_count = network.NumNodes(EdgeSourceType(type));
    for (std::size_t src = 0; src < src_count; ++src) {
      for (std::size_t dst : network.Neighbors(type, src)) {
        // Friend edges are stored both ways; emit each pair once.
        if (type == EdgeType::kFriend && dst < src) continue;
        out += "edge " + std::string(EdgeTypeName(type)) + " " +
               std::to_string(src) + " " + std::to_string(dst) + "\n";
      }
    }
  }
  return out;
}

Result<HeterogeneousNetwork> ParseNetwork(const std::string& text) {
  HeterogeneousNetwork network("network");
  std::istringstream stream(text);
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    line = Trim(line);
    if (line.empty() || line[0] == '#') continue;
    const std::vector<std::string> tokens = Split(line, ' ');
    if (tokens[0] == "network") {
      if (tokens.size() != 2) {
        return LineError(line_number, "expected 'network <name>'");
      }
      network = HeterogeneousNetwork(tokens[1]);
      continue;
    }
    if (tokens[0] == "nodes") {
      if (tokens.size() != 3) {
        return LineError(line_number, "expected 'nodes <type> <count>'");
      }
      const auto type = NodeTypeFromName(tokens[1]);
      std::size_t count = 0;
      if (!type.has_value()) {
        return LineError(line_number, "unknown node type " + tokens[1]);
      }
      if (!ParseSize(tokens[2], &count)) {
        return LineError(line_number, "bad count " + tokens[2]);
      }
      network.AddNodes(*type, count);
      continue;
    }
    if (tokens[0] == "edge") {
      if (tokens.size() != 4) {
        return LineError(line_number, "expected 'edge <type> <src> <dst>'");
      }
      const auto type = EdgeTypeFromName(tokens[1]);
      std::size_t src = 0;
      std::size_t dst = 0;
      if (!type.has_value()) {
        return LineError(line_number, "unknown edge type " + tokens[1]);
      }
      if (!ParseSize(tokens[2], &src) || !ParseSize(tokens[3], &dst)) {
        return LineError(line_number, "bad endpoints");
      }
      const Status added = network.AddEdge(*type, src, dst);
      if (!added.ok()) {
        return LineError(line_number, added.message());
      }
      continue;
    }
    return LineError(line_number, "unknown directive " + tokens[0]);
  }
  return network;
}

Status SaveNetwork(const HeterogeneousNetwork& network,
                   const std::string& path) {
  return WriteFile(path, SerializeNetwork(network));
}

Result<HeterogeneousNetwork> LoadNetwork(const std::string& path) {
  auto text = ReadFile(path);
  if (!text.ok()) return text.status();
  return ParseNetwork(text.value());
}

std::string SerializeAnchors(const AnchorLinks& anchors) {
  std::string out = "# slampred anchor links v1\n";
  out += "anchors " + std::to_string(anchors.left_users()) + " " +
         std::to_string(anchors.right_users()) + "\n";
  for (const auto& [left, right] : anchors.pairs()) {
    out += "anchor " + std::to_string(left) + " " + std::to_string(right) +
           "\n";
  }
  return out;
}

Result<AnchorLinks> ParseAnchors(const std::string& text) {
  std::istringstream stream(text);
  std::string line;
  std::size_t line_number = 0;
  std::optional<AnchorLinks> anchors;
  while (std::getline(stream, line)) {
    ++line_number;
    line = Trim(line);
    if (line.empty() || line[0] == '#') continue;
    const std::vector<std::string> tokens = Split(line, ' ');
    if (tokens[0] == "anchors") {
      if (tokens.size() != 3) {
        return LineError(line_number, "expected 'anchors <left> <right>'");
      }
      std::size_t left = 0;
      std::size_t right = 0;
      if (!ParseSize(tokens[1], &left) || !ParseSize(tokens[2], &right)) {
        return LineError(line_number, "bad user counts");
      }
      anchors.emplace(left, right);
      continue;
    }
    if (tokens[0] == "anchor") {
      if (!anchors.has_value()) {
        return LineError(line_number, "'anchor' before 'anchors' header");
      }
      if (tokens.size() != 3) {
        return LineError(line_number, "expected 'anchor <left> <right>'");
      }
      std::size_t left = 0;
      std::size_t right = 0;
      if (!ParseSize(tokens[1], &left) || !ParseSize(tokens[2], &right)) {
        return LineError(line_number, "bad endpoints");
      }
      const Status added = anchors->Add(left, right);
      if (!added.ok()) return LineError(line_number, added.message());
      continue;
    }
    return LineError(line_number, "unknown directive " + tokens[0]);
  }
  if (!anchors.has_value()) {
    return Status::InvalidArgument("missing 'anchors' header");
  }
  return std::move(*anchors);
}

Status SaveAnchors(const AnchorLinks& anchors, const std::string& path) {
  return WriteFile(path, SerializeAnchors(anchors));
}

Result<AnchorLinks> LoadAnchors(const std::string& path) {
  auto text = ReadFile(path);
  if (!text.ok()) return text.status();
  return ParseAnchors(text.value());
}

}  // namespace slampred
