#include "graph/graph_io.h"

#include <fstream>
#include <optional>
#include <sstream>

#include "util/fault_injection.h"
#include "util/string_util.h"

namespace slampred {

namespace {

std::optional<NodeType> NodeTypeFromName(const std::string& name) {
  for (std::size_t t = 0; t < kNumNodeTypes; ++t) {
    const NodeType type = static_cast<NodeType>(t);
    if (name == NodeTypeName(type)) return type;
  }
  return std::nullopt;
}

std::optional<EdgeType> EdgeTypeFromName(const std::string& name) {
  for (std::size_t e = 0; e < kNumEdgeTypes; ++e) {
    const EdgeType type = static_cast<EdgeType>(e);
    if (name == EdgeTypeName(type)) return type;
  }
  return std::nullopt;
}

Status LineError(std::size_t line_number, const std::string& message) {
  return Status::InvalidArgument("line " + std::to_string(line_number) +
                                 ": " + message);
}

bool ParseSize(const std::string& token, std::size_t* out) {
  if (token.empty()) return false;
  std::size_t value = 0;
  for (char c : token) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::size_t>(c - '0');
  }
  *out = value;
  return true;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IoError("cannot open for reading: " + path);
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

Status WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::IoError("cannot open for writing: " + path);
  }
  out << content;
  if (!out.good()) return Status::IoError("write failed: " + path);
  return Status::OK();
}

// Routes one bad record through the parse policy. Records the error in
// `stats` and returns OK when the caller should skip the record
// (lenient), or the line-tagged error itself when the caller should
// fail the parse (strict).
Status HandleBadRecord(const ParseOptions& options, ParseStats* stats,
                       Status error) {
  if (stats != nullptr && stats->first_error.ok()) {
    stats->first_error = error;
  }
  if (options.policy == ParsePolicy::kLenient) {
    if (stats != nullptr) ++stats->lines_skipped;
    return Status::OK();
  }
  return error;
}

// Checks the "graph_io.parse" injection site for this record. Returns
// the Status to treat the record as having failed with, or OK.
Status InjectedParseFault(std::size_t line_number) {
  switch (SLAMPRED_FAULT_HIT("graph_io.parse")) {
    case FaultKind::kNone:
      break;
    case FaultKind::kFailIo:
      return Status::IoError("line " + std::to_string(line_number) +
                             ": injected I/O fault");
    default:
      return LineError(line_number, "injected parse fault");
  }
  return Status::OK();
}

}  // namespace

std::string SerializeNetwork(const HeterogeneousNetwork& network) {
  std::string out = "# slampred heterogeneous network v1\n";
  out += "network " + network.name() + "\n";
  for (std::size_t t = 0; t < kNumNodeTypes; ++t) {
    const NodeType type = static_cast<NodeType>(t);
    if (network.NumNodes(type) == 0) continue;
    out += "nodes " + std::string(NodeTypeName(type)) + " " +
           std::to_string(network.NumNodes(type)) + "\n";
  }
  for (std::size_t e = 0; e < kNumEdgeTypes; ++e) {
    const EdgeType type = static_cast<EdgeType>(e);
    const std::size_t src_count = network.NumNodes(EdgeSourceType(type));
    for (std::size_t src = 0; src < src_count; ++src) {
      for (std::size_t dst : network.Neighbors(type, src)) {
        // Friend edges are stored both ways; emit each pair once.
        if (type == EdgeType::kFriend && dst < src) continue;
        out += "edge " + std::string(EdgeTypeName(type)) + " " +
               std::to_string(src) + " " + std::to_string(dst) + "\n";
      }
    }
  }
  return out;
}

Result<HeterogeneousNetwork> ParseNetwork(const std::string& text,
                                          const ParseOptions& options,
                                          ParseStats* stats) {
  HeterogeneousNetwork network("network");
  std::istringstream stream(text);
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    line = Trim(line);
    if (line.empty() || line[0] == '#') continue;
    if (stats != nullptr) ++stats->lines_total;

    const Status injected = InjectedParseFault(line_number);
    if (!injected.ok()) {
      const Status handled = HandleBadRecord(options, stats, injected);
      if (!handled.ok()) return handled;
      continue;
    }

    const std::vector<std::string> tokens = Split(line, ' ');
    if (tokens[0] == "network") {
      if (tokens.size() != 2) {
        const Status handled = HandleBadRecord(
            options, stats, LineError(line_number, "expected 'network <name>'"));
        if (!handled.ok()) return handled;
        continue;
      }
      network = HeterogeneousNetwork(tokens[1]);
      continue;
    }
    if (tokens[0] == "nodes") {
      Status problem;
      const auto type =
          tokens.size() == 3 ? NodeTypeFromName(tokens[1]) : std::nullopt;
      std::size_t count = 0;
      if (tokens.size() != 3) {
        problem = LineError(line_number, "expected 'nodes <type> <count>'");
      } else if (!type.has_value()) {
        problem = LineError(line_number, "unknown node type " + tokens[1]);
      } else if (!ParseSize(tokens[2], &count)) {
        problem = LineError(line_number, "bad count " + tokens[2]);
      }
      if (!problem.ok()) {
        const Status handled = HandleBadRecord(options, stats, problem);
        if (!handled.ok()) return handled;
        continue;
      }
      // value_or keeps the deref branch-free for the optimizer; the
      // fallback is unreachable (problem is set whenever type is empty).
      network.AddNodes(type.value_or(NodeType::kUser), count);
      continue;
    }
    if (tokens[0] == "edge") {
      Status problem;
      const auto type =
          tokens.size() == 4 ? EdgeTypeFromName(tokens[1]) : std::nullopt;
      std::size_t src = 0;
      std::size_t dst = 0;
      if (tokens.size() != 4) {
        problem = LineError(line_number, "expected 'edge <type> <src> <dst>'");
      } else if (!type.has_value()) {
        problem = LineError(line_number, "unknown edge type " + tokens[1]);
      } else if (!ParseSize(tokens[2], &src) || !ParseSize(tokens[3], &dst)) {
        problem = LineError(line_number, "bad endpoints");
      }
      if (!problem.ok()) {
        const Status handled = HandleBadRecord(options, stats, problem);
        if (!handled.ok()) return handled;
        continue;
      }
      const EdgeType edge_type = type.value_or(EdgeType::kFriend);
      if (network.HasEdge(edge_type, src, dst)) {
        // Duplicate record: an error in strict mode, a dedicated counter
        // in lenient mode (the edge itself is already present either way).
        if (options.policy == ParsePolicy::kStrict) {
          return LineError(line_number, "duplicate edge");
        }
        if (stats != nullptr) {
          ++stats->duplicate_edges;
          if (stats->first_error.ok()) {
            stats->first_error = LineError(line_number, "duplicate edge");
          }
        }
        continue;
      }
      const Status added = network.AddEdge(edge_type, src, dst);
      if (!added.ok()) {
        const Status handled = HandleBadRecord(
            options, stats, LineError(line_number, added.message()));
        if (!handled.ok()) return handled;
        continue;
      }
      continue;
    }
    const Status handled = HandleBadRecord(
        options, stats, LineError(line_number, "unknown directive " + tokens[0]));
    if (!handled.ok()) return handled;
  }
  return network;
}

Result<HeterogeneousNetwork> ParseNetwork(const std::string& text) {
  return ParseNetwork(text, ParseOptions{});
}

Status SaveNetwork(const HeterogeneousNetwork& network,
                   const std::string& path) {
  return WriteFile(path, SerializeNetwork(network));
}

Result<HeterogeneousNetwork> LoadNetwork(const std::string& path,
                                         const ParseOptions& options,
                                         ParseStats* stats) {
  auto text = ReadFile(path);
  if (!text.ok()) return text.status();
  return ParseNetwork(text.value(), options, stats);
}

Result<HeterogeneousNetwork> LoadNetwork(const std::string& path) {
  return LoadNetwork(path, ParseOptions{});
}

std::string SerializeAnchors(const AnchorLinks& anchors) {
  std::string out = "# slampred anchor links v1\n";
  out += "anchors " + std::to_string(anchors.left_users()) + " " +
         std::to_string(anchors.right_users()) + "\n";
  for (const auto& [left, right] : anchors.pairs()) {
    out += "anchor " + std::to_string(left) + " " + std::to_string(right) +
           "\n";
  }
  return out;
}

Result<AnchorLinks> ParseAnchors(const std::string& text,
                                 const ParseOptions& options,
                                 ParseStats* stats) {
  std::istringstream stream(text);
  std::string line;
  std::size_t line_number = 0;
  std::optional<AnchorLinks> anchors;
  while (std::getline(stream, line)) {
    ++line_number;
    line = Trim(line);
    if (line.empty() || line[0] == '#') continue;
    if (stats != nullptr) ++stats->lines_total;

    const Status injected = InjectedParseFault(line_number);
    if (!injected.ok()) {
      const Status handled = HandleBadRecord(options, stats, injected);
      if (!handled.ok()) return handled;
      continue;
    }

    const std::vector<std::string> tokens = Split(line, ' ');
    if (tokens[0] == "anchors") {
      Status problem;
      std::size_t left = 0;
      std::size_t right = 0;
      if (tokens.size() != 3) {
        problem = LineError(line_number, "expected 'anchors <left> <right>'");
      } else if (!ParseSize(tokens[1], &left) ||
                 !ParseSize(tokens[2], &right)) {
        problem = LineError(line_number, "bad user counts");
      }
      if (!problem.ok()) {
        const Status handled = HandleBadRecord(options, stats, problem);
        if (!handled.ok()) return handled;
        continue;
      }
      anchors.emplace(left, right);
      continue;
    }
    if (tokens[0] == "anchor") {
      Status problem;
      std::size_t left = 0;
      std::size_t right = 0;
      if (!anchors.has_value()) {
        problem = LineError(line_number, "'anchor' before 'anchors' header");
      } else if (tokens.size() != 3) {
        problem = LineError(line_number, "expected 'anchor <left> <right>'");
      } else if (!ParseSize(tokens[1], &left) ||
                 !ParseSize(tokens[2], &right)) {
        problem = LineError(line_number, "bad endpoints");
      }
      if (!problem.ok()) {
        const Status handled = HandleBadRecord(options, stats, problem);
        if (!handled.ok()) return handled;
        continue;
      }
      if (anchors->Contains(left, right)) {
        if (options.policy == ParsePolicy::kStrict) {
          return LineError(line_number, "duplicate anchor");
        }
        if (stats != nullptr) {
          ++stats->duplicate_edges;
          if (stats->first_error.ok()) {
            stats->first_error = LineError(line_number, "duplicate anchor");
          }
        }
        continue;
      }
      const Status added = anchors->Add(left, right);
      if (!added.ok()) {
        const Status handled = HandleBadRecord(
            options, stats, LineError(line_number, added.message()));
        if (!handled.ok()) return handled;
        continue;
      }
      continue;
    }
    const Status handled = HandleBadRecord(
        options, stats, LineError(line_number, "unknown directive " + tokens[0]));
    if (!handled.ok()) return handled;
  }
  if (!anchors.has_value()) {
    return Status::InvalidArgument("missing 'anchors' header");
  }
  return std::move(*anchors);
}

Result<AnchorLinks> ParseAnchors(const std::string& text) {
  return ParseAnchors(text, ParseOptions{});
}

Status SaveAnchors(const AnchorLinks& anchors, const std::string& path) {
  return WriteFile(path, SerializeAnchors(anchors));
}

Result<AnchorLinks> LoadAnchors(const std::string& path,
                                const ParseOptions& options,
                                ParseStats* stats) {
  auto text = ReadFile(path);
  if (!text.ok()) return text.status();
  return ParseAnchors(text.value(), options, stats);
}

Result<AnchorLinks> LoadAnchors(const std::string& path) {
  return LoadAnchors(path, ParseOptions{});
}

}  // namespace slampred
