// Heterogeneous information network G = (V, E): typed node sets and
// typed adjacency, per Definition 1 of the paper.

#ifndef SLAMPRED_GRAPH_HETEROGENEOUS_NETWORK_H_
#define SLAMPRED_GRAPH_HETEROGENEOUS_NETWORK_H_

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "graph/node_types.h"
#include "linalg/csr_matrix.h"
#include "util/status.h"

namespace slampred {

/// A heterogeneous information network: users, posts, words, timestamps
/// and locations, with typed edges between them. Nodes of each type are
/// dense indices [0, NumNodes(type)). Friend edges are kept undirected
/// (stored in both directions); all other edge types are directed from
/// their natural source (user→post, post→word, ...).
class HeterogeneousNetwork {
 public:
  /// Creates an empty network with the given display name.
  explicit HeterogeneousNetwork(std::string name = "network");

  /// Network display name (e.g. "target", "source-1").
  const std::string& name() const { return name_; }

  /// Adds `count` fresh nodes of `type`; returns the first new index.
  std::size_t AddNodes(NodeType type, std::size_t count = 1);

  /// Number of nodes of `type`.
  std::size_t NumNodes(NodeType type) const;

  /// Number of users (shorthand for NumNodes(kUser)).
  std::size_t NumUsers() const { return NumNodes(NodeType::kUser); }

  /// Adds a typed edge; endpoints must exist and match the edge type's
  /// endpoint types. Friend edges are undirected: (u,v) implies (v,u),
  /// self-loops are rejected, duplicates are ignored.
  Status AddEdge(EdgeType type, std::size_t src, std::size_t dst);

  /// True iff the directed (or for kFriend, undirected) edge exists.
  bool HasEdge(EdgeType type, std::size_t src, std::size_t dst) const;

  /// Out-neighbors of `src` under `type` (sorted ascending).
  const std::vector<std::size_t>& Neighbors(EdgeType type,
                                            std::size_t src) const;

  /// Total number of edges of `type`. Friend edges are counted once per
  /// undirected pair.
  std::size_t NumEdges(EdgeType type) const;

  /// Out-degree of `src` under `type`.
  std::size_t Degree(EdgeType type, std::size_t src) const;

  /// Removes all friend edges (used when re-basing a network on a
  /// training fold); other edge types are untouched.
  void ClearFriendEdges();

  /// The 0/1 incidence of `type` in CSR — source-type nodes as rows,
  /// destination-type nodes as columns, built straight from the sorted
  /// adjacency lists in O(nnz). For kFriend this is the symmetric
  /// user x user layer; other types are the bipartite layers the
  /// attribute profiles aggregate over.
  CsrMatrix AdjacencyCsr(EdgeType type) const;

  /// One-line summary: node and edge counts per type.
  std::string Summary() const;

 private:
  std::string name_;
  std::array<std::size_t, kNumNodeTypes> node_counts_{};
  // adjacency_[edge_type][src] = sorted out-neighbor list.
  std::array<std::vector<std::vector<std::size_t>>, kNumEdgeTypes> adjacency_;
  std::array<std::size_t, kNumEdgeTypes> edge_counts_{};
};

}  // namespace slampred

#endif  // SLAMPRED_GRAPH_HETEROGENEOUS_NETWORK_H_
