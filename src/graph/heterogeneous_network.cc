#include "graph/heterogeneous_network.h"

#include <algorithm>

#include "util/logging.h"

namespace slampred {

namespace {
const std::vector<std::size_t> kEmptyNeighbors;

// Inserts `value` into the sorted vector if absent; returns true if added.
bool SortedInsert(std::vector<std::size_t>& vec, std::size_t value) {
  auto it = std::lower_bound(vec.begin(), vec.end(), value);
  if (it != vec.end() && *it == value) return false;
  vec.insert(it, value);
  return true;
}
}  // namespace

HeterogeneousNetwork::HeterogeneousNetwork(std::string name)
    : name_(std::move(name)) {}

std::size_t HeterogeneousNetwork::AddNodes(NodeType type, std::size_t count) {
  const std::size_t type_idx = static_cast<std::size_t>(type);
  const std::size_t first = node_counts_[type_idx];
  node_counts_[type_idx] += count;
  // Grow adjacency storage for edge types sourced at this node type.
  for (std::size_t e = 0; e < kNumEdgeTypes; ++e) {
    const EdgeType et = static_cast<EdgeType>(e);
    if (EdgeSourceType(et) == type ||
        (et == EdgeType::kFriend && type == NodeType::kUser)) {
      adjacency_[e].resize(node_counts_[static_cast<std::size_t>(
          EdgeSourceType(et))]);
    }
  }
  return first;
}

std::size_t HeterogeneousNetwork::NumNodes(NodeType type) const {
  return node_counts_[static_cast<std::size_t>(type)];
}

Status HeterogeneousNetwork::AddEdge(EdgeType type, std::size_t src,
                                     std::size_t dst) {
  const std::size_t e = static_cast<std::size_t>(type);
  const std::size_t src_count = NumNodes(EdgeSourceType(type));
  const std::size_t dst_count = NumNodes(EdgeDestType(type));
  if (src >= src_count || dst >= dst_count) {
    return Status::OutOfRange("edge endpoint out of range for " +
                              std::string(EdgeTypeName(type)));
  }
  if (type == EdgeType::kFriend) {
    if (src == dst) {
      return Status::InvalidArgument("self friend link rejected");
    }
    adjacency_[e].resize(NumUsers());
    const bool added = SortedInsert(adjacency_[e][src], dst);
    SortedInsert(adjacency_[e][dst], src);
    if (added) ++edge_counts_[e];
    return Status::OK();
  }
  adjacency_[e].resize(src_count);
  if (SortedInsert(adjacency_[e][src], dst)) ++edge_counts_[e];
  return Status::OK();
}

bool HeterogeneousNetwork::HasEdge(EdgeType type, std::size_t src,
                                   std::size_t dst) const {
  const std::size_t e = static_cast<std::size_t>(type);
  if (src >= adjacency_[e].size()) return false;
  const auto& nbrs = adjacency_[e][src];
  return std::binary_search(nbrs.begin(), nbrs.end(), dst);
}

const std::vector<std::size_t>& HeterogeneousNetwork::Neighbors(
    EdgeType type, std::size_t src) const {
  const std::size_t e = static_cast<std::size_t>(type);
  if (src >= adjacency_[e].size()) return kEmptyNeighbors;
  return adjacency_[e][src];
}

std::size_t HeterogeneousNetwork::NumEdges(EdgeType type) const {
  return edge_counts_[static_cast<std::size_t>(type)];
}

std::size_t HeterogeneousNetwork::Degree(EdgeType type,
                                         std::size_t src) const {
  return Neighbors(type, src).size();
}

void HeterogeneousNetwork::ClearFriendEdges() {
  const std::size_t e = static_cast<std::size_t>(EdgeType::kFriend);
  for (auto& nbrs : adjacency_[e]) nbrs.clear();
  edge_counts_[e] = 0;
}

CsrMatrix HeterogeneousNetwork::AdjacencyCsr(EdgeType type) const {
  const std::size_t rows = NumNodes(EdgeSourceType(type));
  const std::size_t cols = NumNodes(EdgeDestType(type));
  const std::size_t e = static_cast<std::size_t>(type);
  // The adjacency store may lag the node count (nodes without edges);
  // pad with empty rows.
  std::vector<std::vector<std::size_t>> lists(rows);
  const std::size_t stored = std::min(rows, adjacency_[e].size());
  for (std::size_t src = 0; src < stored; ++src) {
    lists[src] = adjacency_[e][src];
  }
  return CsrMatrix::FromSortedLists(lists, cols);
}

std::string HeterogeneousNetwork::Summary() const {
  std::string out = name_ + ": ";
  for (std::size_t t = 0; t < kNumNodeTypes; ++t) {
    if (t > 0) out += ", ";
    out += std::to_string(node_counts_[t]);
    out += " ";
    out += NodeTypeName(static_cast<NodeType>(t));
  }
  out += " | ";
  for (std::size_t e = 0; e < kNumEdgeTypes; ++e) {
    if (e > 0) out += ", ";
    out += std::to_string(edge_counts_[e]);
    out += " ";
    out += EdgeTypeName(static_cast<EdgeType>(e));
  }
  return out;
}

}  // namespace slampred
