#include "graph/anchor_links.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/random.h"

namespace slampred {

AnchorLinks::AnchorLinks(std::size_t left_users, std::size_t right_users)
    : left_to_right_(left_users), right_to_left_(right_users) {}

Status AnchorLinks::Add(std::size_t left, std::size_t right) {
  if (left >= left_to_right_.size() || right >= right_to_left_.size()) {
    return Status::OutOfRange("anchor endpoint out of range");
  }
  if (left_to_right_[left].has_value()) {
    return Status::AlreadyExists("left user " + std::to_string(left) +
                                 " already anchored");
  }
  if (right_to_left_[right].has_value()) {
    return Status::AlreadyExists("right user " + std::to_string(right) +
                                 " already anchored");
  }
  left_to_right_[left] = right;
  right_to_left_[right] = left;
  pairs_.emplace_back(left, right);
  return Status::OK();
}

std::optional<std::size_t> AnchorLinks::RightOf(std::size_t left) const {
  if (left >= left_to_right_.size()) return std::nullopt;
  return left_to_right_[left];
}

std::optional<std::size_t> AnchorLinks::LeftOf(std::size_t right) const {
  if (right >= right_to_left_.size()) return std::nullopt;
  return right_to_left_[right];
}

bool AnchorLinks::Contains(std::size_t left, std::size_t right) const {
  const auto r = RightOf(left);
  return r.has_value() && *r == right;
}

AnchorLinks AnchorLinks::Sampled(double ratio, Rng& rng) const {
  ratio = std::clamp(ratio, 0.0, 1.0);
  const std::size_t keep = static_cast<std::size_t>(
      std::ceil(ratio * static_cast<double>(pairs_.size())));
  AnchorLinks out(left_to_right_.size(), right_to_left_.size());
  if (keep == 0) return out;
  const auto chosen = rng.SampleWithoutReplacement(pairs_.size(), keep);
  for (std::size_t idx : chosen) {
    const Status st = out.Add(pairs_[idx].first, pairs_[idx].second);
    SLAMPRED_CHECK(st.ok()) << st.ToString();
  }
  return out;
}

}  // namespace slampred
