// Anchor links: one-to-one correspondences between user accounts of two
// aligned networks (Definition 2 of the paper). The anchor-ratio sweep
// of Table II subsamples these.

#ifndef SLAMPRED_GRAPH_ANCHOR_LINKS_H_
#define SLAMPRED_GRAPH_ANCHOR_LINKS_H_

#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "util/status.h"

namespace slampred {

class Rng;

/// The set of anchor links A^{t,k} between a target network (left side)
/// and one source network (right side). Each account participates in at
/// most one anchor link (one-to-one constraint, as in the paper's
/// Foursquare/Twitter data).
class AnchorLinks {
 public:
  /// Empty set between networks of the given user counts.
  AnchorLinks(std::size_t left_users, std::size_t right_users);

  std::size_t left_users() const { return left_to_right_.size(); }
  std::size_t right_users() const { return right_to_left_.size(); }

  /// Number of anchor links.
  std::size_t size() const { return pairs_.size(); }

  /// Adds the anchor link (left, right); fails if either endpoint is out
  /// of range or already anchored.
  Status Add(std::size_t left, std::size_t right);

  /// The right-side account anchored to `left`, if any.
  std::optional<std::size_t> RightOf(std::size_t left) const;

  /// The left-side account anchored to `right`, if any.
  std::optional<std::size_t> LeftOf(std::size_t right) const;

  /// True iff (left, right) is an anchor link.
  bool Contains(std::size_t left, std::size_t right) const;

  /// All anchor pairs in insertion order.
  const std::vector<std::pair<std::size_t, std::size_t>>& pairs() const {
    return pairs_;
  }

  /// Random subset keeping ceil(ratio * size()) links (the paper's anchor
  /// link sampling ratio). ratio is clamped to [0, 1].
  AnchorLinks Sampled(double ratio, Rng& rng) const;

 private:
  std::vector<std::optional<std::size_t>> left_to_right_;
  std::vector<std::optional<std::size_t>> right_to_left_;
  std::vector<std::pair<std::size_t, std::size_t>> pairs_;
};

}  // namespace slampred

#endif  // SLAMPRED_GRAPH_ANCHOR_LINKS_H_
