#include "graph/node_types.h"

namespace slampred {

const char* NodeTypeName(NodeType type) {
  switch (type) {
    case NodeType::kUser:
      return "user";
    case NodeType::kPost:
      return "post";
    case NodeType::kWord:
      return "word";
    case NodeType::kTimestamp:
      return "timestamp";
    case NodeType::kLocation:
      return "location";
  }
  return "?";
}

const char* EdgeTypeName(EdgeType type) {
  switch (type) {
    case EdgeType::kFriend:
      return "friend";
    case EdgeType::kWrite:
      return "write";
    case EdgeType::kHasWord:
      return "has_word";
    case EdgeType::kPostedAt:
      return "posted_at";
    case EdgeType::kCheckin:
      return "checkin";
  }
  return "?";
}

NodeType EdgeSourceType(EdgeType type) {
  switch (type) {
    case EdgeType::kFriend:
    case EdgeType::kWrite:
      return NodeType::kUser;
    case EdgeType::kHasWord:
    case EdgeType::kPostedAt:
    case EdgeType::kCheckin:
      return NodeType::kPost;
  }
  return NodeType::kUser;
}

NodeType EdgeDestType(EdgeType type) {
  switch (type) {
    case EdgeType::kFriend:
      return NodeType::kUser;
    case EdgeType::kWrite:
      return NodeType::kPost;
    case EdgeType::kHasWord:
      return NodeType::kWord;
    case EdgeType::kPostedAt:
      return NodeType::kTimestamp;
    case EdgeType::kCheckin:
      return NodeType::kLocation;
  }
  return NodeType::kUser;
}

std::string NodeRefToString(const NodeRef& ref) {
  return std::string(NodeTypeName(ref.type)) + ":" +
         std::to_string(ref.index);
}

}  // namespace slampred
