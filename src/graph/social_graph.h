// Plain undirected social graph over users: the structure the link
// predictors operate on. Built either directly (tests, baselines) or as
// the friend-edge view of a HeterogeneousNetwork.

#ifndef SLAMPRED_GRAPH_SOCIAL_GRAPH_H_
#define SLAMPRED_GRAPH_SOCIAL_GRAPH_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "linalg/csr_matrix.h"
#include "linalg/matrix.h"
#include "util/status.h"

namespace slampred {

class HeterogeneousNetwork;

/// Undirected user pair, normalised so u < v.
struct UserPair {
  std::size_t u;
  std::size_t v;

  bool operator==(const UserPair& other) const {
    return u == other.u && v == other.v;
  }
  bool operator<(const UserPair& other) const {
    return u != other.u ? u < other.u : v < other.v;
  }
};

/// Returns the normalised (min, max) pair.
UserPair MakeUserPair(std::size_t a, std::size_t b);

/// Undirected simple graph on a fixed user set.
class SocialGraph {
 public:
  /// Empty graph on `num_users` users.
  explicit SocialGraph(std::size_t num_users = 0);

  /// Extracts the friend-edge subgraph of a heterogeneous network.
  static SocialGraph FromHeterogeneousNetwork(
      const HeterogeneousNetwork& network);

  /// Builds a graph from an explicit edge list.
  static SocialGraph FromEdges(std::size_t num_users,
                               const std::vector<UserPair>& edges);

  std::size_t num_users() const { return adjacency_.size(); }
  std::size_t num_edges() const { return num_edges_; }

  /// Adds the undirected edge {u, v}; rejects self-loops and out-of-range
  /// endpoints, ignores duplicates.
  Status AddEdge(std::size_t u, std::size_t v);

  /// True iff {u, v} is an edge.
  bool HasEdge(std::size_t u, std::size_t v) const;

  /// Sorted neighbor list of `u`.
  const std::vector<std::size_t>& Neighbors(std::size_t u) const;

  /// Degree of `u`.
  std::size_t Degree(std::size_t u) const { return Neighbors(u).size(); }

  /// All edges as normalised pairs, sorted.
  std::vector<UserPair> Edges() const;

  /// Symmetric 0/1 adjacency matrix (the paper's Aᵗ), densified.
  /// Prefer AdjacencyCsr — the dense form is O(n²) and only kept for
  /// tests and the dense reference kernels.
  Matrix AdjacencyMatrix() const;

  /// Symmetric 0/1 adjacency in CSR, built straight from the sorted
  /// neighbor lists in O(nnz) — the pipeline's default Aᵗ.
  CsrMatrix AdjacencyCsr() const;

  /// |Γ(u) ∩ Γ(v)| — shared-neighbor count (both lists are sorted).
  std::size_t CommonNeighborCount(std::size_t u, std::size_t v) const;

  /// |Γ(u) ∪ Γ(v)|.
  std::size_t NeighborUnionCount(std::size_t u, std::size_t v) const;

  /// Fraction of realised links among all possible pairs.
  double Density() const;

  /// Copy of this graph with the listed edges removed (used to hide a
  /// test fold). Edges not present are ignored.
  SocialGraph WithEdgesRemoved(const std::vector<UserPair>& edges) const;

 private:
  std::vector<std::vector<std::size_t>> adjacency_;
  std::size_t num_edges_ = 0;
};

}  // namespace slampred

#endif  // SLAMPRED_GRAPH_SOCIAL_GRAPH_H_
