// Deterministic graph partitioner — the "cluster" step of the
// hierarchical partitioned solve (DESIGN.md "Hierarchical partitioned
// solve"). Clusters the target social graph by seeded asynchronous
// label propagation, then enforces the min/max cluster-size knobs:
// oversized clusters are split into BFS chunks (max is a hard cap) and
// undersized ones are merged into their most-connected neighbor when
// room allows (min is best-effort).
//
// Determinism: the propagation is serial with a fixed seeded node
// order and a smallest-label tie-break, so the partition depends only
// on (graph, options) — never on the thread count. The fit pipeline's
// determinism contract (bit-identical results at 1/2/7 threads) then
// holds for the partitioned solve exactly as for the monolithic one.

#ifndef SLAMPRED_GRAPH_PARTITIONER_H_
#define SLAMPRED_GRAPH_PARTITIONER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "graph/social_graph.h"
#include "util/status.h"

namespace slampred {

/// Whether the fit partitions at all.
enum class PartitionMode : std::uint8_t {
  kNone = 0,  ///< Monolithic solve (the default; bit-exact oracle).
  kAuto = 1,  ///< Label-propagation clusters, per-cluster solves.
};

/// Stable mode name ("none" / "auto").
const char* PartitionModeName(PartitionMode mode);

/// Parses "none" / "auto" (kInvalidArgument otherwise).
Result<PartitionMode> ParsePartitionMode(const std::string& text);

/// Partitioner knobs (part of SlamPredConfig).
struct PartitionOptions {
  PartitionMode mode = PartitionMode::kNone;
  /// Hard cap on cluster size; oversized label-propagation clusters are
  /// split into BFS chunks of at most this many members.
  std::size_t max_cluster_size = 1024;
  /// Best-effort floor: smaller clusters merge into their
  /// most-connected neighbor cluster when that stays under the cap.
  std::size_t min_cluster_size = 8;
  /// Label-propagation sweep budget (each sweep is O(nnz)).
  int max_iterations = 20;
  /// Seed of the propagation's node-visit order.
  std::uint64_t seed = 17;
  /// Per-row cap on boundary-refinement candidates (cross-cluster pairs
  /// within two hops); 0 means unlimited. Bounds the refinement CSR on
  /// hub-heavy graphs.
  std::size_t max_boundary_candidates = 512;
};

/// Summary of one partition (and, after a partitioned fit, its
/// per-cluster solve timings).
struct PartitionStats {
  std::size_t num_clusters = 0;
  std::size_t min_cluster = 0;
  std::size_t max_cluster = 0;
  double mean_cluster = 0.0;
  /// Edges whose endpoints land in different clusters / all edges.
  std::size_t cut_edges = 0;
  std::size_t total_edges = 0;
  double cut_edge_fraction = 0.0;
  /// Histogram of cluster sizes in power-of-two buckets: bucket b
  /// counts clusters with size in [2^b, 2^(b+1)).
  std::vector<std::size_t> size_histogram;
  /// Filled by the partitioned solve stage: wall seconds of each
  /// cluster's sub-fit (index = cluster id) and of the boundary
  /// refinement pass.
  std::vector<double> cluster_solve_seconds;
  double refine_seconds = 0.0;

  /// One-line human-readable summary.
  std::string ToString() const;
};

/// A partition of the users [0, n) into disjoint clusters.
struct GraphPartition {
  /// cluster_of[u] = index of the cluster containing user u.
  std::vector<std::uint32_t> cluster_of;
  /// clusters[c] = ascending member list of cluster c. Clusters are
  /// ordered by their smallest member, so ids are deterministic.
  std::vector<std::vector<std::size_t>> clusters;
  /// Graph-level stats (cluster_solve_seconds stays empty here).
  PartitionStats stats;

  std::size_t num_clusters() const { return clusters.size(); }
  std::size_t num_users() const { return cluster_of.size(); }
};

/// Clusters `graph` deterministically under `options` (the mode field
/// is ignored — callers decide whether to partition). kInvalidArgument
/// when max_cluster_size is 0 or min_cluster_size exceeds it.
Result<GraphPartition> PartitionGraph(const SocialGraph& graph,
                                      const PartitionOptions& options);

}  // namespace slampred

#endif  // SLAMPRED_GRAPH_PARTITIONER_H_
