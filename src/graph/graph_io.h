// Plain-text serialisation of heterogeneous networks and anchor links,
// so the library can be driven by real datasets (or inspected) without
// recompiling. The format is line-oriented:
//
//   # comments and blank lines are ignored
//   network <name>
//   nodes <node-type> <count>          e.g. "nodes user 5223"
//   edge <edge-type> <src> <dst>       e.g. "edge friend 12 85"
//
// and for anchor links:
//
//   anchors <left-user-count> <right-user-count>
//   anchor <left> <right>
//
// Malformed input never aborts the process. Under the default strict
// policy the first bad record fails the parse with a line-numbered
// Status; under the lenient policy bad records are skipped and counted
// in ParseStats, and the parse succeeds with whatever was salvageable.

#ifndef SLAMPRED_GRAPH_GRAPH_IO_H_
#define SLAMPRED_GRAPH_GRAPH_IO_H_

#include <cstddef>
#include <string>

#include "graph/anchor_links.h"
#include "graph/heterogeneous_network.h"
#include "util/status.h"

namespace slampred {

/// What to do with a malformed, out-of-range or duplicate record.
enum class ParsePolicy {
  kStrict,   ///< First bad record fails the parse (line-numbered Status).
  kLenient,  ///< Bad records are skipped and counted; the parse succeeds.
};

/// Parse controls.
struct ParseOptions {
  ParsePolicy policy = ParsePolicy::kStrict;
};

/// What a (lenient) parse encountered. All zero / OK on clean input.
struct ParseStats {
  std::size_t lines_total = 0;      ///< Non-comment, non-blank lines seen.
  std::size_t lines_skipped = 0;    ///< Bad records skipped (lenient only).
  std::size_t duplicate_edges = 0;  ///< Duplicate edge/anchor records.
  Status first_error;               ///< First problem found (OK if none).
};

/// Serialises a network to the text format.
std::string SerializeNetwork(const HeterogeneousNetwork& network);

/// Parses a network from the text format under `options`, reporting
/// per-record problems into `stats` (may be null). Strict mode fails
/// with a line-numbered kInvalidArgument / kOutOfRange on the first bad
/// record (duplicates included); lenient mode skips and counts them.
Result<HeterogeneousNetwork> ParseNetwork(const std::string& text,
                                          const ParseOptions& options,
                                          ParseStats* stats = nullptr);

/// Strict parse (back-compatible convenience overload).
Result<HeterogeneousNetwork> ParseNetwork(const std::string& text);

/// Writes a network to `path`.
Status SaveNetwork(const HeterogeneousNetwork& network,
                   const std::string& path);

/// Reads a network from `path` under `options`.
Result<HeterogeneousNetwork> LoadNetwork(const std::string& path,
                                         const ParseOptions& options,
                                         ParseStats* stats = nullptr);

/// Strict load (back-compatible convenience overload).
Result<HeterogeneousNetwork> LoadNetwork(const std::string& path);

/// Serialises anchor links to the text format.
std::string SerializeAnchors(const AnchorLinks& anchors);

/// Parses anchor links from the text format under `options`; same
/// strict/lenient semantics as ParseNetwork.
Result<AnchorLinks> ParseAnchors(const std::string& text,
                                 const ParseOptions& options,
                                 ParseStats* stats = nullptr);

/// Strict parse (back-compatible convenience overload).
Result<AnchorLinks> ParseAnchors(const std::string& text);

/// Writes anchor links to `path`.
Status SaveAnchors(const AnchorLinks& anchors, const std::string& path);

/// Reads anchor links from `path` under `options`.
Result<AnchorLinks> LoadAnchors(const std::string& path,
                                const ParseOptions& options,
                                ParseStats* stats = nullptr);

/// Strict load (back-compatible convenience overload).
Result<AnchorLinks> LoadAnchors(const std::string& path);

}  // namespace slampred

#endif  // SLAMPRED_GRAPH_GRAPH_IO_H_
