// Plain-text serialisation of heterogeneous networks and anchor links,
// so the library can be driven by real datasets (or inspected) without
// recompiling. The format is line-oriented:
//
//   # comments and blank lines are ignored
//   network <name>
//   nodes <node-type> <count>          e.g. "nodes user 5223"
//   edge <edge-type> <src> <dst>       e.g. "edge friend 12 85"
//
// and for anchor links:
//
//   anchors <left-user-count> <right-user-count>
//   anchor <left> <right>

#ifndef SLAMPRED_GRAPH_GRAPH_IO_H_
#define SLAMPRED_GRAPH_GRAPH_IO_H_

#include <string>

#include "graph/anchor_links.h"
#include "graph/heterogeneous_network.h"
#include "util/status.h"

namespace slampred {

/// Serialises a network to the text format.
std::string SerializeNetwork(const HeterogeneousNetwork& network);

/// Parses a network from the text format; fails with kInvalidArgument on
/// malformed lines (reporting the line number) and on edges whose
/// endpoints are out of range.
Result<HeterogeneousNetwork> ParseNetwork(const std::string& text);

/// Writes a network to `path`.
Status SaveNetwork(const HeterogeneousNetwork& network,
                   const std::string& path);

/// Reads a network from `path`.
Result<HeterogeneousNetwork> LoadNetwork(const std::string& path);

/// Serialises anchor links to the text format.
std::string SerializeAnchors(const AnchorLinks& anchors);

/// Parses anchor links from the text format.
Result<AnchorLinks> ParseAnchors(const std::string& text);

/// Writes anchor links to `path`.
Status SaveAnchors(const AnchorLinks& anchors, const std::string& path);

/// Reads anchor links from `path`.
Result<AnchorLinks> LoadAnchors(const std::string& path);

}  // namespace slampred

#endif  // SLAMPRED_GRAPH_GRAPH_IO_H_
