#include "graph/partitioner.h"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <numeric>

#include "util/random.h"

namespace slampred {
namespace {

// Adopts the most frequent label among `u`'s neighbors; ties break to
// the smallest label so the sweep is a pure function of the labels.
std::size_t DominantNeighborLabel(const SocialGraph& graph,
                                  const std::vector<std::size_t>& labels,
                                  std::size_t u,
                                  std::vector<std::size_t>& scratch) {
  scratch.clear();
  for (const std::size_t v : graph.Neighbors(u)) scratch.push_back(labels[v]);
  std::sort(scratch.begin(), scratch.end());
  std::size_t best = labels[u];
  std::size_t best_count = 0;
  std::size_t i = 0;
  while (i < scratch.size()) {
    std::size_t j = i;
    while (j < scratch.size() && scratch[j] == scratch[i]) ++j;
    // Strict > keeps the smallest label on ties (scratch is ascending).
    if (j - i > best_count) {
      best_count = j - i;
      best = scratch[i];
    }
    i = j;
  }
  return best;
}

// Groups users by label into ascending member lists, iterating labels
// ascending so the grouping is deterministic.
std::vector<std::vector<std::size_t>> GroupByLabel(
    const std::vector<std::size_t>& labels) {
  const std::size_t n = labels.size();
  std::vector<std::vector<std::size_t>> by_label(n);
  for (std::size_t u = 0; u < n; ++u) by_label[labels[u]].push_back(u);
  std::vector<std::vector<std::size_t>> clusters;
  for (auto& members : by_label) {
    if (!members.empty()) clusters.push_back(std::move(members));
  }
  return clusters;
}

// Splits one oversized cluster into BFS chunks of at most `cap`
// members. BFS restarts from the smallest unvisited member, so chunk
// boundaries are deterministic; members inside a chunk stay sorted.
std::vector<std::vector<std::size_t>> SplitByBfs(
    const SocialGraph& graph, const std::vector<std::size_t>& members,
    std::size_t cap) {
  std::vector<bool> in_cluster(graph.num_users(), false);
  for (const std::size_t u : members) in_cluster[u] = true;
  std::vector<bool> visited(graph.num_users(), false);

  std::vector<std::vector<std::size_t>> chunks;
  std::vector<std::size_t> chunk;
  std::deque<std::size_t> queue;
  auto flush = [&]() {
    if (chunk.empty()) return;
    std::sort(chunk.begin(), chunk.end());
    chunks.push_back(std::move(chunk));
    chunk.clear();
  };
  for (const std::size_t seed : members) {
    if (visited[seed]) continue;
    queue.push_back(seed);
    visited[seed] = true;
    while (!queue.empty()) {
      const std::size_t u = queue.front();
      queue.pop_front();
      chunk.push_back(u);
      if (chunk.size() == cap) flush();
      for (const std::size_t v : graph.Neighbors(u)) {
        if (in_cluster[v] && !visited[v]) {
          visited[v] = true;
          queue.push_back(v);
        }
      }
    }
  }
  flush();
  return chunks;
}

// Merges undersized clusters into their most-connected neighbor
// cluster (ties to the smallest cluster id) when the result stays
// under `cap`. Clusters with no external edges pool together instead.
void MergeUndersized(const SocialGraph& graph,
                     std::vector<std::vector<std::size_t>>& clusters,
                     std::size_t min_size, std::size_t cap) {
  if (min_size <= 1 || clusters.size() <= 1) return;
  std::vector<std::size_t> owner(graph.num_users(), 0);
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    for (const std::size_t u : clusters[c]) owner[u] = c;
  }

  // Connected small clusters first: each folds into the neighbor
  // cluster it shares the most edges with, provided there is room.
  std::vector<std::size_t> edge_counts(clusters.size(), 0);
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    if (clusters[c].empty() || clusters[c].size() >= min_size) continue;
    std::fill(edge_counts.begin(), edge_counts.end(), 0);
    for (const std::size_t u : clusters[c]) {
      for (const std::size_t v : graph.Neighbors(u)) {
        if (owner[v] != c) ++edge_counts[owner[v]];
      }
    }
    std::size_t best = c;
    std::size_t best_edges = 0;
    for (std::size_t t = 0; t < clusters.size(); ++t) {
      if (t == c || clusters[t].empty() || edge_counts[t] == 0) continue;
      if (clusters[t].size() + clusters[c].size() > cap) continue;
      if (edge_counts[t] > best_edges) {
        best_edges = edge_counts[t];
        best = t;
      }
    }
    if (best == c) continue;
    for (const std::size_t u : clusters[c]) owner[u] = best;
    clusters[best].insert(clusters[best].end(), clusters[c].begin(),
                          clusters[c].end());
    std::sort(clusters[best].begin(), clusters[best].end());
    clusters[c].clear();
  }

  // Isolated leftovers (no room anywhere connected, or no external
  // edges at all — e.g. degree-0 users): pool them into shared
  // clusters of at most `cap` members so the cluster count stays
  // bounded. A solve over an unconnected pool is still well-defined.
  std::vector<std::size_t> pool;
  for (auto& members : clusters) {
    if (members.empty() || members.size() >= min_size) continue;
    bool connected = false;
    for (const std::size_t u : members) {
      for (const std::size_t v : graph.Neighbors(u)) {
        if (owner[v] != owner[u]) {
          connected = true;
          break;
        }
      }
      if (connected) break;
    }
    if (connected) continue;
    pool.insert(pool.end(), members.begin(), members.end());
    members.clear();
  }
  std::sort(pool.begin(), pool.end());
  for (std::size_t i = 0; i < pool.size(); i += cap) {
    const std::size_t end = std::min(pool.size(), i + cap);
    clusters.emplace_back(pool.begin() + static_cast<std::ptrdiff_t>(i),
                          pool.begin() + static_cast<std::ptrdiff_t>(end));
  }

  clusters.erase(std::remove_if(clusters.begin(), clusters.end(),
                                [](const std::vector<std::size_t>& members) {
                                  return members.empty();
                                }),
                 clusters.end());
}

}  // namespace

const char* PartitionModeName(PartitionMode mode) {
  return mode == PartitionMode::kAuto ? "auto" : "none";
}

Result<PartitionMode> ParsePartitionMode(const std::string& text) {
  if (text == "none") return PartitionMode::kNone;
  if (text == "auto") return PartitionMode::kAuto;
  return Status::InvalidArgument("unknown partition mode '" + text +
                                 "' (expected none|auto)");
}

std::string PartitionStats::ToString() const {
  char buffer[192];
  std::snprintf(buffer, sizeof(buffer),
                "%zu cluster(s) | sizes %zu-%zu (mean %.1f) | cut edges "
                "%zu/%zu (%.1f%%)",
                num_clusters, min_cluster, max_cluster, mean_cluster,
                cut_edges, total_edges, 100.0 * cut_edge_fraction);
  return buffer;
}

Result<GraphPartition> PartitionGraph(const SocialGraph& graph,
                                      const PartitionOptions& options) {
  if (options.max_cluster_size == 0) {
    return Status::InvalidArgument("max_cluster_size must be positive");
  }
  if (options.min_cluster_size > options.max_cluster_size) {
    return Status::InvalidArgument(
        "min_cluster_size " + std::to_string(options.min_cluster_size) +
        " exceeds max_cluster_size " +
        std::to_string(options.max_cluster_size));
  }
  const std::size_t n = graph.num_users();
  GraphPartition partition;
  partition.cluster_of.assign(n, 0);
  if (n == 0) return partition;

  // Asynchronous label propagation over a seeded node order. The sweep
  // is serial (the whole partitioner is O(iterations · nnz)) so the
  // outcome never depends on the thread count.
  std::vector<std::size_t> labels(n);
  std::iota(labels.begin(), labels.end(), 0);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  Rng rng(options.seed);
  rng.Shuffle(order);
  std::vector<std::size_t> scratch;
  for (int sweep = 0; sweep < std::max(options.max_iterations, 1); ++sweep) {
    bool changed = false;
    for (const std::size_t u : order) {
      const std::size_t best = DominantNeighborLabel(graph, labels, u, scratch);
      if (best != labels[u]) {
        labels[u] = best;
        changed = true;
      }
    }
    if (!changed) break;
  }

  // Size enforcement: split over the hard cap, then merge best-effort
  // under the floor (merges respect the cap, so splitting first).
  std::vector<std::vector<std::size_t>> clusters = GroupByLabel(labels);
  std::vector<std::vector<std::size_t>> capped;
  for (auto& members : clusters) {
    if (members.size() <= options.max_cluster_size) {
      capped.push_back(std::move(members));
      continue;
    }
    for (auto& chunk :
         SplitByBfs(graph, members, options.max_cluster_size)) {
      capped.push_back(std::move(chunk));
    }
  }
  MergeUndersized(graph, capped, options.min_cluster_size,
                  options.max_cluster_size);

  // Renumber clusters by smallest member so ids are deterministic.
  std::sort(capped.begin(), capped.end(),
            [](const std::vector<std::size_t>& a,
               const std::vector<std::size_t>& b) {
              return a.front() < b.front();
            });
  partition.clusters = std::move(capped);
  for (std::size_t c = 0; c < partition.clusters.size(); ++c) {
    for (const std::size_t u : partition.clusters[c]) {
      partition.cluster_of[u] = static_cast<std::uint32_t>(c);
    }
  }

  PartitionStats& stats = partition.stats;
  stats.num_clusters = partition.clusters.size();
  stats.min_cluster = n;
  for (const auto& members : partition.clusters) {
    stats.min_cluster = std::min(stats.min_cluster, members.size());
    stats.max_cluster = std::max(stats.max_cluster, members.size());
    std::size_t bucket = 0;
    while ((std::size_t{2} << bucket) <= members.size()) ++bucket;
    if (stats.size_histogram.size() <= bucket) {
      stats.size_histogram.resize(bucket + 1, 0);
    }
    ++stats.size_histogram[bucket];
  }
  stats.mean_cluster = stats.num_clusters == 0
                           ? 0.0
                           : static_cast<double>(n) /
                                 static_cast<double>(stats.num_clusters);
  for (std::size_t u = 0; u < n; ++u) {
    for (const std::size_t v : graph.Neighbors(u)) {
      if (v <= u) continue;
      ++stats.total_edges;
      if (partition.cluster_of[u] != partition.cluster_of[v]) {
        ++stats.cut_edges;
      }
    }
  }
  stats.cut_edge_fraction =
      stats.total_edges == 0
          ? 0.0
          : static_cast<double>(stats.cut_edges) /
                static_cast<double>(stats.total_edges);
  return partition;
}

}  // namespace slampred
