#include "graph/cluster_extract.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>

#include "util/logging.h"

namespace slampred {
namespace {

constexpr std::uint32_t kNotLocal = std::numeric_limits<std::uint32_t>::max();

// Restricts `full` to `members` (ascending): users are renumbered to
// [0, members.size()), friend edges are induced, each member's posts
// are copied with fresh sequential post ids, and the word / timestamp /
// location universes keep their global ids. `local_of` must be a
// NumUsers-sized map filled with kNotLocal except at the members.
HeterogeneousNetwork InduceNetwork(const HeterogeneousNetwork& full,
                                   const std::vector<std::size_t>& members,
                                   const std::vector<std::uint32_t>& local_of) {
  HeterogeneousNetwork out(full.name());
  out.AddNodes(NodeType::kUser, members.size());
  out.AddNodes(NodeType::kWord, full.NumNodes(NodeType::kWord));
  out.AddNodes(NodeType::kTimestamp, full.NumNodes(NodeType::kTimestamp));
  out.AddNodes(NodeType::kLocation, full.NumNodes(NodeType::kLocation));

  for (std::size_t i = 0; i < members.size(); ++i) {
    const std::size_t u = members[i];
    for (const std::size_t v : full.Neighbors(EdgeType::kFriend, u)) {
      if (v <= u || local_of[v] == kNotLocal) continue;
      SLAMPRED_CHECK(
          out.AddEdge(EdgeType::kFriend, i, local_of[v]).ok());
    }
    for (const std::size_t p : full.Neighbors(EdgeType::kWrite, u)) {
      const std::size_t lp = out.AddNodes(NodeType::kPost, 1);
      SLAMPRED_CHECK(out.AddEdge(EdgeType::kWrite, i, lp).ok());
      for (const std::size_t w : full.Neighbors(EdgeType::kHasWord, p)) {
        SLAMPRED_CHECK(out.AddEdge(EdgeType::kHasWord, lp, w).ok());
      }
      for (const std::size_t t : full.Neighbors(EdgeType::kPostedAt, p)) {
        SLAMPRED_CHECK(out.AddEdge(EdgeType::kPostedAt, lp, t).ok());
      }
      for (const std::size_t l : full.Neighbors(EdgeType::kCheckin, p)) {
        SLAMPRED_CHECK(out.AddEdge(EdgeType::kCheckin, lp, l).ok());
      }
    }
  }
  return out;
}

}  // namespace

Result<ClusterBundle> ExtractClusterBundle(
    const AlignedNetworks& networks, const SocialGraph& target_structure,
    const std::vector<std::size_t>& members) {
  const std::size_t n = networks.target().NumUsers();
  if (members.empty()) {
    return Status::InvalidArgument("cluster has no members");
  }
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (members[i] >= n) {
      return Status::OutOfRange("cluster member " +
                                std::to_string(members[i]) +
                                " outside the target's users");
    }
    if (i > 0 && members[i] <= members[i - 1]) {
      return Status::InvalidArgument(
          "cluster members must be strictly ascending");
    }
  }

  // A cluster covering every user gets a verbatim copy: the sub-fit
  // then sees byte-identical inputs (same source users, same seeded
  // sampling universe) and reproduces the monolithic solve bit-exactly.
  if (members.size() == n) {
    ClusterBundle bundle{networks, target_structure, {}};
    for (std::size_t k = 0; k < networks.num_sources(); ++k) {
      bundle.kept_sources.push_back(k);
    }
    return bundle;
  }

  std::vector<std::uint32_t> local_of(n, kNotLocal);
  for (std::size_t i = 0; i < members.size(); ++i) {
    local_of[members[i]] = static_cast<std::uint32_t>(i);
  }

  ClusterBundle bundle{
      AlignedNetworks(InduceNetwork(networks.target(), members, local_of)),
      SocialGraph(members.size()),
      {}};
  for (std::size_t i = 0; i < members.size(); ++i) {
    for (const std::size_t v : target_structure.Neighbors(members[i])) {
      if (v <= members[i] || local_of[v] == kNotLocal) continue;
      SLAMPRED_CHECK(bundle.structure.AddEdge(i, local_of[v]).ok());
    }
  }

  for (std::size_t k = 0; k < networks.num_sources(); ++k) {
    const AnchorLinks& anchors = networks.anchors(k);
    const HeterogeneousNetwork& source = networks.source(k);

    // Source users kept: the members' anchored partners plus those
    // partners' source-side friends (so the partners keep their local
    // neighborhoods and the source features stay informative).
    std::vector<std::size_t> kept;
    for (const std::size_t u : members) {
      const auto partner = anchors.RightOf(u);
      if (!partner.has_value()) continue;
      kept.push_back(*partner);
      for (const std::size_t w :
           source.Neighbors(EdgeType::kFriend, *partner)) {
        kept.push_back(w);
      }
    }
    std::sort(kept.begin(), kept.end());
    kept.erase(std::unique(kept.begin(), kept.end()), kept.end());
    if (kept.empty()) continue;  // No anchors into this cluster.

    std::vector<std::uint32_t> source_local(source.NumUsers(), kNotLocal);
    for (std::size_t i = 0; i < kept.size(); ++i) {
      source_local[kept[i]] = static_cast<std::uint32_t>(i);
    }
    HeterogeneousNetwork induced = InduceNetwork(source, kept, source_local);

    AnchorLinks cluster_anchors(members.size(), kept.size());
    for (std::size_t i = 0; i < members.size(); ++i) {
      const auto partner = anchors.RightOf(members[i]);
      if (!partner.has_value()) continue;
      SLAMPRED_CHECK(
          cluster_anchors.Add(i, source_local[*partner]).ok());
    }
    bundle.networks.AddSource(std::move(induced),
                              std::move(cluster_anchors));
    bundle.kept_sources.push_back(k);
  }
  return bundle;
}

}  // namespace slampred
