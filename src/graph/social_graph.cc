#include "graph/social_graph.h"

#include <algorithm>
#include <set>

#include "graph/heterogeneous_network.h"
#include "util/logging.h"

namespace slampred {

namespace {
const std::vector<std::size_t> kEmpty;
}

UserPair MakeUserPair(std::size_t a, std::size_t b) {
  return a < b ? UserPair{a, b} : UserPair{b, a};
}

SocialGraph::SocialGraph(std::size_t num_users) : adjacency_(num_users) {}

SocialGraph SocialGraph::FromHeterogeneousNetwork(
    const HeterogeneousNetwork& network) {
  SocialGraph graph(network.NumUsers());
  for (std::size_t u = 0; u < network.NumUsers(); ++u) {
    for (std::size_t v : network.Neighbors(EdgeType::kFriend, u)) {
      if (u < v) {
        graph.AddEdge(u, v);
      }
    }
  }
  return graph;
}

SocialGraph SocialGraph::FromEdges(std::size_t num_users,
                                   const std::vector<UserPair>& edges) {
  SocialGraph graph(num_users);
  for (const UserPair& e : edges) {
    const Status st = graph.AddEdge(e.u, e.v);
    SLAMPRED_CHECK(st.ok()) << st.ToString();
  }
  return graph;
}

Status SocialGraph::AddEdge(std::size_t u, std::size_t v) {
  if (u >= num_users() || v >= num_users()) {
    return Status::OutOfRange("edge endpoint out of range");
  }
  if (u == v) return Status::InvalidArgument("self-loop rejected");
  auto& nu = adjacency_[u];
  auto it = std::lower_bound(nu.begin(), nu.end(), v);
  if (it != nu.end() && *it == v) return Status::OK();  // Duplicate.
  nu.insert(it, v);
  auto& nv = adjacency_[v];
  nv.insert(std::lower_bound(nv.begin(), nv.end(), u), u);
  ++num_edges_;
  return Status::OK();
}

bool SocialGraph::HasEdge(std::size_t u, std::size_t v) const {
  if (u >= num_users() || v >= num_users()) return false;
  const auto& nu = adjacency_[u];
  return std::binary_search(nu.begin(), nu.end(), v);
}

const std::vector<std::size_t>& SocialGraph::Neighbors(std::size_t u) const {
  if (u >= num_users()) return kEmpty;
  return adjacency_[u];
}

std::vector<UserPair> SocialGraph::Edges() const {
  std::vector<UserPair> edges;
  edges.reserve(num_edges_);
  for (std::size_t u = 0; u < num_users(); ++u) {
    for (std::size_t v : adjacency_[u]) {
      if (u < v) edges.push_back({u, v});
    }
  }
  return edges;
}

Matrix SocialGraph::AdjacencyMatrix() const {
  Matrix a(num_users(), num_users());
  for (std::size_t u = 0; u < num_users(); ++u) {
    for (std::size_t v : adjacency_[u]) a(u, v) = 1.0;
  }
  return a;
}

CsrMatrix SocialGraph::AdjacencyCsr() const {
  return CsrMatrix::FromSortedLists(adjacency_, num_users());
}

std::size_t SocialGraph::CommonNeighborCount(std::size_t u,
                                             std::size_t v) const {
  const auto& nu = Neighbors(u);
  const auto& nv = Neighbors(v);
  std::size_t count = 0;
  auto iu = nu.begin();
  auto iv = nv.begin();
  while (iu != nu.end() && iv != nv.end()) {
    if (*iu < *iv) {
      ++iu;
    } else if (*iv < *iu) {
      ++iv;
    } else {
      ++count;
      ++iu;
      ++iv;
    }
  }
  return count;
}

std::size_t SocialGraph::NeighborUnionCount(std::size_t u,
                                            std::size_t v) const {
  return Degree(u) + Degree(v) - CommonNeighborCount(u, v);
}

double SocialGraph::Density() const {
  const std::size_t n = num_users();
  if (n < 2) return 0.0;
  const double possible = 0.5 * static_cast<double>(n) *
                          static_cast<double>(n - 1);
  return static_cast<double>(num_edges_) / possible;
}

SocialGraph SocialGraph::WithEdgesRemoved(
    const std::vector<UserPair>& edges) const {
  std::set<UserPair> removed;
  for (const UserPair& e : edges) removed.insert(MakeUserPair(e.u, e.v));
  SocialGraph out(num_users());
  for (std::size_t u = 0; u < num_users(); ++u) {
    for (std::size_t v : adjacency_[u]) {
      if (u < v && removed.find({u, v}) == removed.end()) {
        out.AddEdge(u, v);
      }
    }
  }
  return out;
}

}  // namespace slampred
