// Node and edge taxonomy of the heterogeneous information networks in
// the paper: V = U ∪ P ∪ W ∪ T ∪ L (users, posts, words, timestamps,
// location checkins) and E = E_u ∪ E_p ∪ E_w ∪ E_t ∪ E_l.

#ifndef SLAMPRED_GRAPH_NODE_TYPES_H_
#define SLAMPRED_GRAPH_NODE_TYPES_H_

#include <cstdint>
#include <string>

namespace slampred {

/// Node categories of the heterogeneous information network.
enum class NodeType : std::uint8_t {
  kUser = 0,
  kPost = 1,
  kWord = 2,
  kTimestamp = 3,
  kLocation = 4,
};

/// Number of node categories.
inline constexpr std::size_t kNumNodeTypes = 5;

/// Edge categories; each connects a fixed pair of node types.
enum class EdgeType : std::uint8_t {
  kFriend = 0,    ///< user – user (E_u, undirected social links).
  kWrite = 1,     ///< user – post (E_p).
  kHasWord = 2,   ///< post – word (E_w).
  kPostedAt = 3,  ///< post – timestamp (E_t).
  kCheckin = 4,   ///< post – location (E_l).
};

/// Number of edge categories.
inline constexpr std::size_t kNumEdgeTypes = 5;

/// Human-readable node type name.
const char* NodeTypeName(NodeType type);

/// Human-readable edge type name.
const char* EdgeTypeName(EdgeType type);

/// The node type an edge type's source endpoint must have.
NodeType EdgeSourceType(EdgeType type);

/// The node type an edge type's destination endpoint must have.
NodeType EdgeDestType(EdgeType type);

/// Typed node handle: a type plus an index within that type.
struct NodeRef {
  NodeType type;
  std::size_t index;

  bool operator==(const NodeRef& other) const {
    return type == other.type && index == other.index;
  }
};

/// Renders "user:17" style handles.
std::string NodeRefToString(const NodeRef& ref);

}  // namespace slampred

#endif  // SLAMPRED_GRAPH_NODE_TYPES_H_
