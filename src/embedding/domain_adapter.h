// End-to-end domain adaptation (Section III-C): samples link instances,
// builds the W_A / W_S / W_D indicators, solves Theorem 1 for the
// per-network projections F^k, and produces the adapted feature tensors
// X̂^k. Source tensors are re-indexed into *target* user coordinates
// through the anchor links — a source pair only contributes where both
// endpoints are anchored, which is exactly how the anchor-sampling ratio
// modulates how much transferred signal SLAMPRED sees.

#ifndef SLAMPRED_EMBEDDING_DOMAIN_ADAPTER_H_
#define SLAMPRED_EMBEDDING_DOMAIN_ADAPTER_H_

#include <vector>

#include "embedding/link_instance.h"
#include "embedding/projection_solver.h"
#include "graph/aligned_networks.h"
#include "graph/social_graph.h"
#include "linalg/sparse_tensor3.h"
#include "util/random.h"
#include "util/status.h"

namespace slampred {

/// Adaptation controls.
struct DomainAdapterOptions {
  ProjectionOptions projection;
  InstanceSampleOptions sampling;
  /// Min-max normalise adapted slices to [0, 1] so the intimacy terms
  /// (and the constant CCCP gradient) treat them as non-negative scores.
  bool normalize_adapted = true;
};

/// Adapted tensors, all in target coordinates.
struct AdaptedFeatures {
  /// tensors[0] = adapted target features (c x n_t x n_t);
  /// tensors[k>=1] = source k features mapped through anchors into
  /// target coordinates (zero where either endpoint is unanchored).
  /// Stored sparse: the projection itself is dense work, but the
  /// adapted slices sparsify at the boundary so downstream consumers
  /// (objective, scorers) stay on the CSR path.
  std::vector<SparseTensor3> tensors;
  /// The learned projections (projections[k] is d_k x c).
  std::vector<Matrix> projections;
  Vector eigenvalues;  ///< Generalized eigenvalues behind the projection.
};

/// Runs the full pipeline. `raw_tensors[0]` must be the target's feature
/// tensor built on `target_structure`; `raw_tensors[k]` source k's
/// tensor on its own graph. Deterministic given `rng`'s state.
Result<AdaptedFeatures> AdaptDomains(const AlignedNetworks& networks,
                                     const SocialGraph& target_structure,
                                     const std::vector<SparseTensor3>& raw_tensors,
                                     const DomainAdapterOptions& options,
                                     Rng& rng);

/// Ablation path (EXP-A2): skips the learned projection entirely and
/// simply re-indexes the *raw* source tensors into target coordinates
/// through the anchors (the target tensor passes through unchanged).
/// This is what "transferring without domain adaptation" means for a
/// matrix-estimation model.
Result<AdaptedFeatures> PassthroughAdapt(
    const AlignedNetworks& networks,
    const std::vector<SparseTensor3>& raw_tensors);

}  // namespace slampred

#endif  // SLAMPRED_EMBEDDING_DOMAIN_ADAPTER_H_
