#include "embedding/projection_solver.h"

#include <cmath>
#include <numeric>

#include "embedding/laplacian.h"
#include "linalg/generalized_eigen.h"
#include "util/logging.h"

namespace slampred {

Matrix BuildBlockDiagonalZ(const InstanceSample& sample) {
  const std::size_t total_dims =
      std::accumulate(sample.feature_dims.begin(), sample.feature_dims.end(),
                      std::size_t{0});
  Matrix z(total_dims, sample.total());

  std::size_t row_offset = 0;
  for (std::size_t k = 0; k < sample.num_networks(); ++k) {
    const std::size_t begin = sample.network_offsets[k];
    const std::size_t end = sample.network_offsets[k + 1];
    for (std::size_t i = begin; i < end; ++i) {
      const Vector& f = sample.instances[i].features;
      SLAMPRED_CHECK(f.size() == sample.feature_dims[k])
          << "instance feature length mismatch in network " << k;
      for (std::size_t r = 0; r < f.size(); ++r) {
        z(row_offset + r, i) = f[r];
      }
    }
    row_offset += sample.feature_dims[k];
  }
  return z;
}

Result<ProjectionResult> SolveProjections(const InstanceSample& sample,
                                          const CsrMatrix& w_aligned,
                                          const CsrMatrix& w_similar,
                                          const CsrMatrix& w_dissimilar,
                                          const ProjectionOptions& options) {
  const std::size_t total = sample.total();
  if (total == 0) {
    return Status::InvalidArgument("empty instance sample");
  }
  if (w_aligned.rows() != total || w_similar.rows() != total ||
      w_dissimilar.rows() != total) {
    return Status::InvalidArgument("indicator matrix order mismatch");
  }
  const std::size_t total_dims =
      std::accumulate(sample.feature_dims.begin(), sample.feature_dims.end(),
                      std::size_t{0});
  if (options.latent_dim == 0 || options.latent_dim > total_dims) {
    return Status::InvalidArgument(
        "latent_dim must be in [1, total feature dims]");
  }

  const Matrix z = BuildBlockDiagonalZ(sample);

  // A = Z(μ L_A + L_S)Zᵀ and B = Z L_D Zᵀ, assembled without forming the
  // big |L| x |L| Laplacians densely.
  Matrix a = SandwichLaplacian(z, w_aligned) * options.mu +
             SandwichLaplacian(z, w_similar);
  Matrix b = SandwichLaplacian(z, w_dissimilar);

  auto gen = ComputeGeneralizedEigen(a.Symmetrized(), b.Symmetrized());
  if (!gen.ok()) return gen.status();
  const Vector& lambda = gen.value().eigenvalues;
  const Matrix& vecs = gen.value().eigenvectors;

  // Pick the c smallest non-zero eigenvalues (Theorem 1), padding with
  // near-zero ones if the spectrum is too degenerate.
  double max_abs = 0.0;
  for (std::size_t i = 0; i < lambda.size(); ++i) {
    max_abs = std::max(max_abs, std::fabs(lambda[i]));
  }
  const double cutoff = 1e-8 * std::max(max_abs, 1e-300);
  std::vector<std::size_t> chosen;
  for (std::size_t i = 0; i < lambda.size() &&
                          chosen.size() < options.latent_dim; ++i) {
    if (lambda[i] > cutoff) chosen.push_back(i);
  }
  for (std::size_t i = 0; i < lambda.size() &&
                          chosen.size() < options.latent_dim; ++i) {
    if (lambda[i] <= cutoff) chosen.push_back(i);
  }

  Matrix f(total_dims, options.latent_dim);
  ProjectionResult result;
  result.eigenvalues = Vector(options.latent_dim);
  for (std::size_t c = 0; c < chosen.size(); ++c) {
    f.SetCol(c, vecs.Col(chosen[c]));
    result.eigenvalues[c] = lambda[chosen[c]];
  }

  // Split F into per-network blocks.
  std::size_t row_offset = 0;
  for (std::size_t k = 0; k < sample.num_networks(); ++k) {
    result.projections.push_back(
        f.Block(row_offset, 0, sample.feature_dims[k], options.latent_dim));
    row_offset += sample.feature_dims[k];
  }
  return result;
}

}  // namespace slampred
