// Graph Laplacians of the indicator matrices: L = D − W with D the
// diagonal row-sum matrix (Section III-C1).

#ifndef SLAMPRED_EMBEDDING_LAPLACIAN_H_
#define SLAMPRED_EMBEDDING_LAPLACIAN_H_

#include "linalg/csr_matrix.h"
#include "linalg/matrix.h"

namespace slampred {

/// Dense Laplacian D − W of a (symmetric, non-negative) weight matrix.
/// Dense because the projection solver immediately sandwiches it between
/// the small dense Z blocks.
Matrix DenseLaplacian(const CsrMatrix& w);

/// Computes Z L Zᵀ without densifying L, where Z is the block-diagonal
/// feature matrix (features x instances): Z L Zᵀ = Z D Zᵀ − Z W Zᵀ, with
/// Z D Zᵀ = Σᵢ dᵢ zᵢ zᵢᵀ and Z W Zᵀ = Σ_{(i,j)∈W} wᵢⱼ zᵢ zⱼᵀ. `z` holds
/// the instance feature vectors as *columns* (total_dims x instances).
Matrix SandwichLaplacian(const Matrix& z, const CsrMatrix& w);

}  // namespace slampred

#endif  // SLAMPRED_EMBEDDING_LAPLACIAN_H_
