// The joint indicator matrices over sampled link instances
// (Section III-C): W_A marks aligned social links (Definition 4), W_S
// marks instance pairs sharing a link-existence label, and W_D marks
// pairs with different labels. All are symmetric CSR matrices over the
// concatenated instance index space.

#ifndef SLAMPRED_EMBEDDING_INDICATOR_MATRICES_H_
#define SLAMPRED_EMBEDDING_INDICATOR_MATRICES_H_

#include <vector>

#include "embedding/link_instance.h"
#include "graph/anchor_links.h"
#include "linalg/csr_matrix.h"

namespace slampred {

/// Builds the joint aligned-social-link indicator W_A: entry (i, j) = 1
/// iff instances i and j live in different networks, one of them being
/// the target, and both endpoint users are paired by the corresponding
/// anchor set (anchors[k] relates the target to source k). Symmetric,
/// zero diagonal blocks.
CsrMatrix BuildAlignedIndicator(const InstanceSample& sample,
                                const std::vector<const AnchorLinks*>& anchors);

/// Builds the similar-label indicator W_S: entry (i, j) = 1 iff i ≠ j
/// and the instances share the same existence label, across all network
/// pairs (including within a network).
CsrMatrix BuildSimilarIndicator(const InstanceSample& sample);

/// Builds the dissimilar-label indicator W_D: entry (i, j) = 1 iff the
/// instances have different existence labels.
CsrMatrix BuildDissimilarIndicator(const InstanceSample& sample);

}  // namespace slampred

#endif  // SLAMPRED_EMBEDDING_INDICATOR_MATRICES_H_
