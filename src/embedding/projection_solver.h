// Solves the joint mapping-function inference of Theorem 1: the stacked
// projection matrix F is given by the eigenvectors of the generalized
// problem  Z(μ L_A + L_S) Zᵀ x = λ Z L_D Zᵀ x  belonging to the c
// smallest non-zero eigenvalues. F splits into one d_k x c projection
// per network.

#ifndef SLAMPRED_EMBEDDING_PROJECTION_SOLVER_H_
#define SLAMPRED_EMBEDDING_PROJECTION_SOLVER_H_

#include <vector>

#include "embedding/link_instance.h"
#include "linalg/csr_matrix.h"
#include "linalg/matrix.h"
#include "util/status.h"

namespace slampred {

/// Per-network linear projections F^k : R^{d_k} → R^c.
struct ProjectionResult {
  std::vector<Matrix> projections;  ///< projections[k] is d_k x c.
  Vector eigenvalues;               ///< The chosen generalized eigenvalues.
};

/// Controls for the solver.
struct ProjectionOptions {
  std::size_t latent_dim = 5;  ///< c, the shared latent dimension.
  double mu = 1.0;             ///< Weight of the anchor-alignment cost.
};

/// Assembles the block-diagonal feature matrix Z (total feature dims x
/// instances) from the sample: block k holds the feature vectors of
/// network k's instances as columns, offset to its own feature rows.
Matrix BuildBlockDiagonalZ(const InstanceSample& sample);

/// Runs Theorem 1. `latent_dim` must not exceed the total feature
/// dimension; the indicator matrices must be square over the sample's
/// total instance count.
Result<ProjectionResult> SolveProjections(const InstanceSample& sample,
                                          const CsrMatrix& w_aligned,
                                          const CsrMatrix& w_similar,
                                          const CsrMatrix& w_dissimilar,
                                          const ProjectionOptions& options);

}  // namespace slampred

#endif  // SLAMPRED_EMBEDDING_PROJECTION_SOLVER_H_
