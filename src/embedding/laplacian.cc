#include "embedding/laplacian.h"

#include "util/logging.h"

namespace slampred {

Matrix DenseLaplacian(const CsrMatrix& w) {
  SLAMPRED_CHECK(w.rows() == w.cols()) << "Laplacian of non-square matrix";
  Matrix l = w.ToDense() * -1.0;
  const Vector degrees = w.RowSums();
  for (std::size_t i = 0; i < w.rows(); ++i) l(i, i) += degrees[i];
  return l;
}

Matrix SandwichLaplacian(const Matrix& z, const CsrMatrix& w) {
  SLAMPRED_CHECK(z.cols() == w.rows() && w.rows() == w.cols())
      << "Z / W shape mismatch";
  const std::size_t d = z.rows();
  Matrix out(d, d);

  // Z D Zᵀ part.
  const Vector degrees = w.RowSums();
  for (std::size_t i = 0; i < z.cols(); ++i) {
    const double deg = degrees[i];
    if (deg == 0.0) continue;
    for (std::size_t a = 0; a < d; ++a) {
      const double za = z(a, i) * deg;
      if (za == 0.0) continue;
      for (std::size_t b = 0; b < d; ++b) {
        out(a, b) += za * z(b, i);
      }
    }
  }

  // −Z W Zᵀ part, iterating stored entries only.
  const auto& row_ptr = w.row_ptr();
  const auto& col_idx = w.col_idx();
  const auto& values = w.values();
  for (std::size_t i = 0; i < w.rows(); ++i) {
    for (std::size_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
      const std::size_t j = col_idx[p];
      const double wij = values[p];
      if (wij == 0.0) continue;
      for (std::size_t a = 0; a < d; ++a) {
        const double za = z(a, i) * wij;
        if (za == 0.0) continue;
        for (std::size_t b = 0; b < d; ++b) {
          out(a, b) -= za * z(b, j);
        }
      }
    }
  }
  return out;
}

}  // namespace slampred
