#include "embedding/indicator_matrices.h"

#include <map>

#include "util/logging.h"

namespace slampred {

CsrMatrix BuildAlignedIndicator(
    const InstanceSample& sample,
    const std::vector<const AnchorLinks*>& anchors) {
  const std::size_t total = sample.total();
  std::vector<Triplet> trips;

  // Index target instances by their user pair for O(log) lookup.
  std::map<UserPair, std::size_t> target_index;
  for (std::size_t i = sample.network_offsets[0];
       i < sample.network_offsets[1]; ++i) {
    const LinkInstance& inst = sample.instances[i];
    target_index[{inst.u, inst.v}] = i;
  }

  // For each source instance, map its endpoints back through the anchor
  // set; a hit on a sampled target pair is an aligned social link.
  for (std::size_t k = 0; k < anchors.size(); ++k) {
    const AnchorLinks& a = *anchors[k];
    const std::size_t begin = sample.network_offsets[k + 1];
    const std::size_t end = sample.network_offsets[k + 2];
    for (std::size_t j = begin; j < end; ++j) {
      const LinkInstance& inst = sample.instances[j];
      const auto tu = a.LeftOf(inst.u);
      const auto tv = a.LeftOf(inst.v);
      if (!tu.has_value() || !tv.has_value()) continue;
      const auto it = target_index.find(MakeUserPair(*tu, *tv));
      if (it == target_index.end()) continue;
      trips.push_back({it->second, j, 1.0});
      trips.push_back({j, it->second, 1.0});
    }
  }
  return CsrMatrix::FromTriplets(total, total, std::move(trips));
}

namespace {

CsrMatrix BuildLabelIndicator(const InstanceSample& sample, bool same_label) {
  const std::size_t total = sample.total();
  std::vector<Triplet> trips;
  trips.reserve(total * total / 2);
  for (std::size_t i = 0; i < total; ++i) {
    for (std::size_t j = i + 1; j < total; ++j) {
      const bool same =
          sample.instances[i].exists == sample.instances[j].exists;
      if (same == same_label) {
        trips.push_back({i, j, 1.0});
        trips.push_back({j, i, 1.0});
      }
    }
  }
  return CsrMatrix::FromTriplets(total, total, std::move(trips));
}

}  // namespace

CsrMatrix BuildSimilarIndicator(const InstanceSample& sample) {
  return BuildLabelIndicator(sample, /*same_label=*/true);
}

CsrMatrix BuildDissimilarIndicator(const InstanceSample& sample) {
  return BuildLabelIndicator(sample, /*same_label=*/false);
}

}  // namespace slampred
