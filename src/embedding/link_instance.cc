#include "embedding/link_instance.h"

#include <algorithm>
#include <set>

#include "util/logging.h"

namespace slampred {

namespace {

// Samples `count` positives (existing edges) and `count_neg` negatives
// (absent pairs) from `graph`, appending to `out` with the given network
// id and features from `tensor`. `taken` avoids duplicates.
void SampleFromGraph(const SocialGraph& graph, const SparseTensor3& tensor,
                     std::size_t network_id,
                     const InstanceSampleOptions& options, Rng& rng,
                     std::set<UserPair>* taken,
                     std::vector<LinkInstance>* out) {
  const std::size_t n = graph.num_users();
  // Positives: uniform sample of existing edges.
  const std::vector<UserPair> edges = graph.Edges();
  if (!edges.empty()) {
    const std::size_t want =
        std::min(options.positives_per_network, edges.size());
    for (std::size_t idx : rng.SampleWithoutReplacement(edges.size(), want)) {
      const UserPair pair = edges[idx];
      if (!taken->insert(pair).second) continue;
      out->push_back({network_id, pair.u, pair.v, true,
                      tensor.Fiber(pair.u, pair.v)});
    }
  }
  // Negatives: rejection-sample absent pairs.
  if (n >= 2) {
    std::size_t found = 0;
    std::size_t attempts = 0;
    const std::size_t max_attempts =
        options.negatives_per_network * options.max_negative_attempts;
    while (found < options.negatives_per_network &&
           attempts < max_attempts) {
      ++attempts;
      const std::size_t a = static_cast<std::size_t>(rng.NextBounded(n));
      const std::size_t b = static_cast<std::size_t>(rng.NextBounded(n));
      if (a == b || graph.HasEdge(a, b)) continue;
      const UserPair pair = MakeUserPair(a, b);
      if (!taken->insert(pair).second) continue;
      out->push_back({network_id, pair.u, pair.v, false,
                      tensor.Fiber(pair.u, pair.v)});
      ++found;
    }
  }
}

}  // namespace

Result<InstanceSample> SampleLinkInstances(
    const AlignedNetworks& networks, const SocialGraph& target_structure,
    const std::vector<SparseTensor3>& tensors,
    const InstanceSampleOptions& options, Rng& rng) {
  const std::size_t num_networks = networks.num_sources() + 1;
  if (tensors.size() != num_networks) {
    return Status::InvalidArgument("need one feature tensor per network");
  }
  if (target_structure.num_users() != networks.target().NumUsers()) {
    return Status::InvalidArgument("target structure user count mismatch");
  }

  InstanceSample sample;
  sample.feature_dims.resize(num_networks);
  for (std::size_t k = 0; k < num_networks; ++k) {
    sample.feature_dims[k] = tensors[k].dim0();
  }

  // Target block.
  std::set<UserPair> taken_target;
  std::vector<LinkInstance> target_block;
  SampleFromGraph(target_structure, tensors[0], 0, options, rng,
                  &taken_target, &target_block);

  sample.network_offsets.push_back(0);
  for (auto& inst : target_block) sample.instances.push_back(std::move(inst));
  sample.network_offsets.push_back(sample.instances.size());

  // Source blocks: mirror anchored target pairs first, then top up.
  for (std::size_t k = 0; k < networks.num_sources(); ++k) {
    const SocialGraph source_graph =
        SocialGraph::FromHeterogeneousNetwork(networks.source(k));
    const AnchorLinks& anchors = networks.anchors(k);
    std::set<UserPair> taken_source;
    std::vector<LinkInstance> block;

    for (std::size_t idx = 0; idx < sample.network_offsets[1]; ++idx) {
      const LinkInstance& ti = sample.instances[idx];
      const auto su = anchors.RightOf(ti.u);
      const auto sv = anchors.RightOf(ti.v);
      if (!su.has_value() || !sv.has_value()) continue;
      const UserPair pair = MakeUserPair(*su, *sv);
      if (!taken_source.insert(pair).second) continue;
      block.push_back({k + 1, pair.u, pair.v,
                       source_graph.HasEdge(pair.u, pair.v),
                       tensors[k + 1].Fiber(pair.u, pair.v)});
    }
    SampleFromGraph(source_graph, tensors[k + 1], k + 1, options, rng,
                    &taken_source, &block);

    for (auto& inst : block) sample.instances.push_back(std::move(inst));
    sample.network_offsets.push_back(sample.instances.size());
  }
  return sample;
}

}  // namespace slampred
