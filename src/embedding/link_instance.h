// Link instances: the sampled user pairs whose feature vectors anchor
// the feature-space projection (Section III-C). One instance is a user
// pair of one network, carrying its link-existence label (Definition 5)
// and raw intimacy feature vector.

#ifndef SLAMPRED_EMBEDDING_LINK_INSTANCE_H_
#define SLAMPRED_EMBEDDING_LINK_INSTANCE_H_

#include <cstddef>
#include <vector>

#include "graph/aligned_networks.h"
#include "graph/social_graph.h"
#include "linalg/sparse_tensor3.h"
#include "linalg/vector.h"
#include "util/random.h"
#include "util/status.h"

namespace slampred {

/// One sampled link instance.
struct LinkInstance {
  std::size_t network;  ///< 0 = target, 1..K = source index + 1.
  std::size_t u;        ///< First endpoint (u < v).
  std::size_t v;        ///< Second endpoint.
  bool exists;          ///< Link existence label y(l).
  Vector features;      ///< Raw feature vector (length d_network).
};

/// All sampled instances, grouped by network (target block first).
struct InstanceSample {
  std::vector<LinkInstance> instances;
  /// network_offsets[k] = first index of network k's block;
  /// network_offsets.back() = total count (size K+2).
  std::vector<std::size_t> network_offsets;
  /// feature_dims[k] = d_k.
  std::vector<std::size_t> feature_dims;

  std::size_t total() const { return instances.size(); }
  std::size_t num_networks() const { return feature_dims.size(); }
};

/// Sampling controls.
struct InstanceSampleOptions {
  std::size_t positives_per_network = 150;
  std::size_t negatives_per_network = 150;
  /// Cap on rejection-sampling attempts per requested negative.
  std::size_t max_negative_attempts = 50;
};

/// Samples link instances for the target and every source.
///
/// Target labels/pairs come from `target_structure` (the training graph);
/// each source uses its own full friend graph. To make aligned-link
/// pairs (Definition 4) actually appear in the sample, every target
/// instance whose endpoints are both anchored into a source is mirrored
/// as a source instance before the source's own quota is topped up.
///
/// `tensors[k]` supplies the feature fibres (tensors[0] = target);
/// sparse tensors are the pipeline default and fibre reads return exact
/// zeros for absent entries, matching the dense tensors entry for entry.
Result<InstanceSample> SampleLinkInstances(
    const AlignedNetworks& networks, const SocialGraph& target_structure,
    const std::vector<SparseTensor3>& tensors,
    const InstanceSampleOptions& options,
    Rng& rng);

}  // namespace slampred

#endif  // SLAMPRED_EMBEDDING_LINK_INSTANCE_H_
