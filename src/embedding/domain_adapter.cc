#include "embedding/domain_adapter.h"

#include <algorithm>
#include <cmath>

#include "embedding/indicator_matrices.h"
#include "util/logging.h"

namespace slampred {

namespace {

// Per-network feature standardisation fitted on the sampled instances.
// Scatter-based projections (Theorem 1 minimises sums of squared
// distances) are scale-sensitive; standardising the inputs and absorbing
// the transform into the effective projection leaves the theory intact
// while making the eigen directions comparable to an LDA direction.
struct FeatureScaler {
  Vector mean;
  Vector inv_std;  ///< 1/std, 0 for constant features.
};

FeatureScaler FitScaler(const InstanceSample& sample, std::size_t network) {
  const std::size_t begin = sample.network_offsets[network];
  const std::size_t end = sample.network_offsets[network + 1];
  const std::size_t d = sample.feature_dims[network];
  FeatureScaler scaler{Vector(d), Vector(d)};
  const double count = std::max<double>(1.0, static_cast<double>(end - begin));
  for (std::size_t i = begin; i < end; ++i) {
    scaler.mean += sample.instances[i].features;
  }
  scaler.mean /= count;
  Vector var(d);
  for (std::size_t i = begin; i < end; ++i) {
    for (std::size_t k = 0; k < d; ++k) {
      const double diff = sample.instances[i].features[k] - scaler.mean[k];
      var[k] += diff * diff;
    }
  }
  for (std::size_t k = 0; k < d; ++k) {
    const double std = std::sqrt(var[k] / count);
    scaler.inv_std[k] = std > 1e-12 ? 1.0 / std : 0.0;
  }
  return scaler;
}

// Projects every fibre of `raw` (d x n x n) through fᵀ (d x c) after
// standardising it, giving a c x n x n tensor. The raw tensor stays CSR;
// each row is decompressed into a d x n panel so the fibre reads are
// O(1) and the per-element sum runs d ascending over the exact dense
// values (absent entries are exact zeros) — bit-identical to projecting
// the densified tensor.
Tensor3 ProjectTensor(const SparseTensor3& raw, const FeatureScaler& scaler,
                      const Matrix& f) {
  SLAMPRED_CHECK(f.rows() == raw.dim0()) << "projection dim mismatch";
  const std::size_t c = f.cols();
  const std::size_t d = raw.dim0();
  const std::size_t n1 = raw.dim1();
  const std::size_t n2 = raw.dim2();
  Tensor3 out(c, n1, n2);
  Matrix panel(d, n2);
  for (std::size_t i = 0; i < n1; ++i) {
    std::fill(panel.data().begin(), panel.data().end(), 0.0);
    for (std::size_t dd = 0; dd < d; ++dd) {
      const CsrMatrix& slice = raw.SliceCsr(dd);
      for (std::size_t p = slice.row_ptr()[i]; p < slice.row_ptr()[i + 1];
           ++p) {
        panel(dd, slice.col_idx()[p]) = slice.values()[p];
      }
    }
    for (std::size_t j = 0; j < n2; ++j) {
      for (std::size_t cc = 0; cc < c; ++cc) {
        double sum = 0.0;
        for (std::size_t dd = 0; dd < d; ++dd) {
          const double z =
              (panel(dd, j) - scaler.mean[dd]) * scaler.inv_std[dd];
          sum += f(dd, cc) * z;
        }
        out(cc, i, j) = sum;
      }
    }
  }
  return out;
}

// Re-indexes a source-coordinate tensor (dims x n_s x n_s) into target
// coordinates (dims x n_t x n_t) through the anchors. Pairs without
// transferred evidence (either endpoint unanchored) are imputed at the
// mean of the covered pairs, per slice: transferred information should
// *rerank* the pairs it covers, not systematically push every uncovered
// pair below every covered one — without the imputation, partial anchor
// ratios (Table II's sweep) degrade instead of interpolating.
Tensor3 ReindexToTarget(const Tensor3& source_tensor,
                        const AnchorLinks& anchors, std::size_t n_target) {
  const std::size_t dims = source_tensor.dim0();
  Tensor3 out(dims, n_target, n_target);
  std::vector<double> slice_sum(dims, 0.0);
  std::size_t covered = 0;
  for (std::size_t ti = 0; ti < n_target; ++ti) {
    const auto si = anchors.RightOf(ti);
    if (!si.has_value()) continue;
    for (std::size_t tj = 0; tj < n_target; ++tj) {
      if (ti == tj) continue;
      const auto sj = anchors.RightOf(tj);
      if (!sj.has_value()) continue;
      ++covered;
      for (std::size_t d = 0; d < dims; ++d) {
        const double v = source_tensor(d, *si, *sj);
        out(d, ti, tj) = v;
        slice_sum[d] += v;
      }
    }
  }
  if (covered == 0) return out;  // No anchors: nothing transfers.

  // Impute uncovered off-diagonal pairs at the covered mean.
  std::vector<double> slice_mean(dims);
  for (std::size_t d = 0; d < dims; ++d) {
    slice_mean[d] = slice_sum[d] / static_cast<double>(covered);
  }
  for (std::size_t ti = 0; ti < n_target; ++ti) {
    const bool ti_anchored = anchors.RightOf(ti).has_value();
    for (std::size_t tj = 0; tj < n_target; ++tj) {
      if (ti == tj) continue;
      if (ti_anchored && anchors.RightOf(tj).has_value()) continue;
      for (std::size_t d = 0; d < dims; ++d) {
        out(d, ti, tj) = slice_mean[d];
      }
    }
  }
  return out;
}

}  // namespace

Result<AdaptedFeatures> AdaptDomains(
    const AlignedNetworks& networks, const SocialGraph& target_structure,
    const std::vector<SparseTensor3>& raw_tensors,
    const DomainAdapterOptions& options, Rng& rng) {
  if (raw_tensors.size() != networks.num_sources() + 1) {
    return Status::InvalidArgument("need one raw tensor per network");
  }

  auto sample_result = SampleLinkInstances(networks, target_structure,
                                           raw_tensors, options.sampling,
                                           rng);
  if (!sample_result.ok()) return sample_result.status();
  InstanceSample& sample = sample_result.value();

  // Standardise instance features per network; the same scalers are
  // applied to every fibre at projection time.
  std::vector<FeatureScaler> scalers;
  for (std::size_t k = 0; k < sample.num_networks(); ++k) {
    scalers.push_back(FitScaler(sample, k));
    for (std::size_t i = sample.network_offsets[k];
         i < sample.network_offsets[k + 1]; ++i) {
      Vector& f = sample.instances[i].features;
      for (std::size_t d = 0; d < f.size(); ++d) {
        f[d] = (f[d] - scalers[k].mean[d]) * scalers[k].inv_std[d];
      }
    }
  }

  std::vector<const AnchorLinks*> anchors;
  for (std::size_t k = 0; k < networks.num_sources(); ++k) {
    anchors.push_back(&networks.anchors(k));
  }
  const CsrMatrix w_a = BuildAlignedIndicator(sample, anchors);
  const CsrMatrix w_s = BuildSimilarIndicator(sample);
  const CsrMatrix w_d = BuildDissimilarIndicator(sample);

  auto proj = SolveProjections(sample, w_a, w_s, w_d, options.projection);
  if (!proj.ok()) return proj.status();

  AdaptedFeatures out;
  out.projections = proj.value().projections;
  out.eigenvalues = proj.value().eigenvalues;

  // Generalized eigenvectors carry an arbitrary sign, but the intimacy
  // term ‖S ∘ X̂‖₁ reads latent coordinates as non-negative closeness
  // scores. Orient every latent dimension so existing-link instances
  // score higher on average, and record each dimension's Fisher-style
  // label separation — the separation later weights the dimension's
  // slice so discriminative directions dominate noisy ones.
  const std::size_t latent = options.projection.latent_dim;
  Vector separation(latent);
  for (std::size_t c = 0; c < latent; ++c) {
    double mean_pos = 0.0, mean_neg = 0.0, sq = 0.0;
    std::size_t n_pos = 0, n_neg = 0;
    std::vector<double> values(sample.total());
    for (std::size_t i = 0; i < sample.total(); ++i) {
      const LinkInstance& inst = sample.instances[i];
      const Matrix& f = out.projections[inst.network];
      double value = 0.0;
      for (std::size_t d = 0; d < inst.features.size(); ++d) {
        value += f(d, c) * inst.features[d];
      }
      values[i] = value;
      if (inst.exists) {
        mean_pos += value;
        ++n_pos;
      } else {
        mean_neg += value;
        ++n_neg;
      }
    }
    if (n_pos > 0) mean_pos /= static_cast<double>(n_pos);
    if (n_neg > 0) mean_neg /= static_cast<double>(n_neg);
    for (double v : values) {
      const double mixed = v - 0.5 * (mean_pos + mean_neg);
      sq += mixed * mixed;
    }
    const double spread =
        std::sqrt(sq / std::max<double>(1.0, sample.total())) + 1e-9;
    if (mean_pos < mean_neg) {
      for (Matrix& f : out.projections) {
        for (std::size_t d = 0; d < f.rows(); ++d) f(d, c) = -f(d, c);
      }
    }
    separation[c] = std::fabs(mean_pos - mean_neg) / spread;
  }
  // Normalise weights so the best dimension has weight 1.
  const double max_sep = std::max(separation.NormInf(), 1e-12);
  for (std::size_t c = 0; c < latent; ++c) separation[c] /= max_sep;

  const std::size_t n_target = networks.target().NumUsers();

  auto finalize = [&](Tensor3 adapted) {
    if (options.normalize_adapted) adapted.NormalizeSlicesMinMax();
    for (std::size_t c = 0; c < adapted.dim0(); ++c) {
      Matrix slice = adapted.Slice(c);
      slice *= separation[c];
      adapted.SetSlice(c, slice);
    }
    return adapted;
  };

  // Target: project in place; the adapted slices sparsify at the
  // boundary (FromDense only drops exact zeros, so the round trip is
  // bit-exact).
  out.tensors.push_back(SparseTensor3::FromDense(
      finalize(ProjectTensor(raw_tensors[0], scalers[0],
                             out.projections[0]))));

  // Sources: project in source coordinates, then re-index through the
  // anchors into target coordinates. The reindexed tensor is dense by
  // construction (mean imputation fills uncovered pairs) — it still
  // rides the SparseTensor3 interface for a uniform downstream path.
  for (std::size_t k = 0; k < networks.num_sources(); ++k) {
    Tensor3 adapted = finalize(ProjectTensor(raw_tensors[k + 1],
                                             scalers[k + 1],
                                             out.projections[k + 1]));
    out.tensors.push_back(SparseTensor3::FromDense(
        ReindexToTarget(adapted, networks.anchors(k), n_target)));
  }
  return out;
}

Result<AdaptedFeatures> PassthroughAdapt(
    const AlignedNetworks& networks,
    const std::vector<SparseTensor3>& raw_tensors) {
  if (raw_tensors.size() != networks.num_sources() + 1) {
    return Status::InvalidArgument("need one raw tensor per network");
  }
  AdaptedFeatures out;
  const std::size_t n_target = networks.target().NumUsers();
  out.tensors.push_back(raw_tensors[0]);
  for (std::size_t k = 0; k < networks.num_sources(); ++k) {
    out.tensors.push_back(SparseTensor3::FromDense(ReindexToTarget(
        raw_tensors[k + 1].ToDense(), networks.anchors(k), n_target)));
  }
  return out;
}

}  // namespace slampred
