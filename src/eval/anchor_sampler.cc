#include "eval/anchor_sampler.h"

namespace slampred {

AlignedNetworks WithAnchorRatio(const AlignedNetworks& networks,
                                double ratio, Rng& rng) {
  AlignedNetworks out(networks.target());
  for (std::size_t k = 0; k < networks.num_sources(); ++k) {
    out.AddSource(networks.source(k),
                  networks.anchors(k).Sampled(ratio, rng));
  }
  return out;
}

}  // namespace slampred
