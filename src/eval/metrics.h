// Evaluation metrics of Section IV-B3: AUC and Precision@K, plus the
// mean±std aggregation used by Table II.

#ifndef SLAMPRED_EVAL_METRICS_H_
#define SLAMPRED_EVAL_METRICS_H_

#include <vector>

#include "util/status.h"

namespace slampred {

/// ROC AUC of `scores` against binary `labels` (1 = positive). Ties get
/// half credit (Mann–Whitney formulation). Returns 0.5 when either class
/// is absent; fails on size mismatch or empty input.
Result<double> ComputeAuc(const std::vector<double>& scores,
                          const std::vector<int>& labels);

/// Fraction of positives among the top-k scored instances (ties broken
/// by original order after a stable sort). k is clamped to the number of
/// instances.
Result<double> ComputePrecisionAtK(const std::vector<double>& scores,
                                   const std::vector<int>& labels,
                                   std::size_t k);

/// Mean and sample standard deviation of a series (std = 0 for size 1).
struct MeanStd {
  double mean = 0.0;
  double std = 0.0;
};
MeanStd ComputeMeanStd(const std::vector<double>& values);

}  // namespace slampred

#endif  // SLAMPRED_EVAL_METRICS_H_
