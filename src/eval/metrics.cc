#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace slampred {

Result<double> ComputeAuc(const std::vector<double>& scores,
                          const std::vector<int>& labels) {
  if (scores.size() != labels.size()) {
    return Status::InvalidArgument("scores/labels size mismatch");
  }
  if (scores.empty()) {
    return Status::InvalidArgument("empty evaluation set");
  }
  std::size_t positives = 0;
  for (int label : labels) {
    if (label != 0 && label != 1) {
      return Status::InvalidArgument("labels must be 0/1");
    }
    positives += static_cast<std::size_t>(label);
  }
  const std::size_t negatives = scores.size() - positives;
  if (positives == 0 || negatives == 0) return 0.5;

  // Mann–Whitney U via average ranks.
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] < scores[b];
  });

  double rank_sum_pos = 0.0;
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() &&
           scores[order[j + 1]] == scores[order[i]]) {
      ++j;
    }
    // Average rank (1-based) for the tie group [i, j].
    const double avg_rank = 0.5 * (static_cast<double>(i + 1) +
                                   static_cast<double>(j + 1));
    for (std::size_t k = i; k <= j; ++k) {
      if (labels[order[k]] == 1) rank_sum_pos += avg_rank;
    }
    i = j + 1;
  }
  const double n_pos = static_cast<double>(positives);
  const double n_neg = static_cast<double>(negatives);
  const double u = rank_sum_pos - n_pos * (n_pos + 1.0) / 2.0;
  return u / (n_pos * n_neg);
}

Result<double> ComputePrecisionAtK(const std::vector<double>& scores,
                                   const std::vector<int>& labels,
                                   std::size_t k) {
  if (scores.size() != labels.size()) {
    return Status::InvalidArgument("scores/labels size mismatch");
  }
  if (scores.empty() || k == 0) {
    return Status::InvalidArgument("empty evaluation set or k == 0");
  }
  k = std::min(k, scores.size());
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return scores[a] > scores[b];
                   });
  std::size_t hits = 0;
  for (std::size_t i = 0; i < k; ++i) {
    if (labels[order[i]] == 1) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

MeanStd ComputeMeanStd(const std::vector<double>& values) {
  MeanStd out;
  if (values.empty()) return out;
  for (double v : values) out.mean += v;
  out.mean /= static_cast<double>(values.size());
  if (values.size() < 2) return out;
  double ss = 0.0;
  for (double v : values) {
    const double d = v - out.mean;
    ss += d * d;
  }
  out.std = std::sqrt(ss / static_cast<double>(values.size() - 1));
  return out;
}

}  // namespace slampred
