// Anchor-ratio manipulation for the Table II sweep: produce a copy of an
// aligned bundle whose anchor sets are subsampled to a given ratio.

#ifndef SLAMPRED_EVAL_ANCHOR_SAMPLER_H_
#define SLAMPRED_EVAL_ANCHOR_SAMPLER_H_

#include "graph/aligned_networks.h"
#include "util/random.h"

namespace slampred {

/// Returns a bundle identical to `networks` but with every source's
/// anchor set independently subsampled to `ratio` (0 = unaligned,
/// 1 = fully aligned). Deterministic given `rng`'s state.
AlignedNetworks WithAnchorRatio(const AlignedNetworks& networks,
                                double ratio, Rng& rng);

}  // namespace slampred

#endif  // SLAMPRED_EVAL_ANCHOR_SAMPLER_H_
