#include "eval/link_split.h"

#include <cmath>
#include <set>

namespace slampred {

Result<std::vector<LinkFold>> SplitLinks(const SocialGraph& graph,
                                         std::size_t num_folds, Rng& rng) {
  if (num_folds < 2) {
    return Status::InvalidArgument("need at least 2 folds");
  }
  std::vector<UserPair> edges = graph.Edges();
  if (edges.size() < num_folds) {
    return Status::FailedPrecondition("fewer edges than folds");
  }
  rng.Shuffle(edges);

  std::vector<std::vector<UserPair>> shards(num_folds);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    shards[i % num_folds].push_back(edges[i]);
  }

  std::vector<LinkFold> folds(num_folds);
  for (std::size_t f = 0; f < num_folds; ++f) {
    folds[f].test_edges = shards[f];
    for (std::size_t g = 0; g < num_folds; ++g) {
      if (g == f) continue;
      folds[f].train_edges.insert(folds[f].train_edges.end(),
                                  shards[g].begin(), shards[g].end());
    }
  }
  return folds;
}

Result<EvaluationSet> BuildEvaluationSet(
    const SocialGraph& full_graph, const std::vector<UserPair>& test_edges,
    double negatives_per_positive, Rng& rng) {
  if (test_edges.empty()) {
    return Status::InvalidArgument("no test edges");
  }
  if (negatives_per_positive <= 0.0) {
    return Status::InvalidArgument("negatives_per_positive must be > 0");
  }

  EvaluationSet out;
  std::set<UserPair> taken;
  for (const UserPair& e : test_edges) {
    const UserPair pair = MakeUserPair(e.u, e.v);
    if (!taken.insert(pair).second) continue;
    out.pairs.push_back(pair);
    out.labels.push_back(1);
  }

  const std::size_t want_neg = static_cast<std::size_t>(
      std::ceil(negatives_per_positive *
                static_cast<double>(out.pairs.size())));
  const std::size_t n = full_graph.num_users();
  if (n < 2) return Status::FailedPrecondition("graph too small");

  std::size_t found = 0;
  std::size_t attempts = 0;
  const std::size_t max_attempts = want_neg * 200 + 1000;
  while (found < want_neg && attempts < max_attempts) {
    ++attempts;
    const std::size_t a = static_cast<std::size_t>(rng.NextBounded(n));
    const std::size_t b = static_cast<std::size_t>(rng.NextBounded(n));
    if (a == b || full_graph.HasEdge(a, b)) continue;
    const UserPair pair = MakeUserPair(a, b);
    if (!taken.insert(pair).second) continue;
    out.pairs.push_back(pair);
    out.labels.push_back(0);
    ++found;
  }
  if (found == 0) {
    return Status::FailedPrecondition("could not sample any negatives");
  }

  // Shuffle so tied scores don't resolve in positives-first insertion
  // order (ranking metrics on a constant scorer must read as chance).
  std::vector<std::size_t> order(out.pairs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.Shuffle(order);
  EvaluationSet shuffled;
  shuffled.pairs.reserve(out.pairs.size());
  shuffled.labels.reserve(out.labels.size());
  for (std::size_t idx : order) {
    shuffled.pairs.push_back(out.pairs[idx]);
    shuffled.labels.push_back(out.labels[idx]);
  }
  return shuffled;
}

}  // namespace slampred
