#include "eval/experiment.h"

#include <cmath>
#include <utility>
#include <vector>

#include "baselines/unsupervised.h"
#include "core/model_artifact.h"
#include "core/scoring_session.h"
#include "eval/anchor_sampler.h"
#include "features/feature_tensor.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace slampred {

const char* MethodIdName(MethodId method) {
  switch (method) {
    case MethodId::kSlamPred:
      return "SLAMPRED";
    case MethodId::kSlamPredT:
      return "SLAMPRED-T";
    case MethodId::kSlamPredH:
      return "SLAMPRED-H";
    case MethodId::kPl:
      return "PL";
    case MethodId::kPlT:
      return "PL-T";
    case MethodId::kPlS:
      return "PL-S";
    case MethodId::kScan:
      return "SCAN";
    case MethodId::kScanT:
      return "SCAN-T";
    case MethodId::kScanS:
      return "SCAN-S";
    case MethodId::kJc:
      return "JC";
    case MethodId::kCn:
      return "CN";
    case MethodId::kPa:
      return "PA";
  }
  return "?";
}

std::vector<MethodId> AllMethods() {
  return {MethodId::kSlamPred, MethodId::kSlamPredT, MethodId::kSlamPredH,
          MethodId::kPl,       MethodId::kPlT,       MethodId::kPlS,
          MethodId::kScan,     MethodId::kScanT,     MethodId::kScanS,
          MethodId::kJc,       MethodId::kCn,        MethodId::kPa};
}

bool MethodUsesSources(MethodId method) {
  switch (method) {
    case MethodId::kSlamPred:
    case MethodId::kPl:
    case MethodId::kPlS:
    case MethodId::kScan:
    case MethodId::kScanS:
      return true;
    default:
      return false;
  }
}

bool MethodIsSlamPred(MethodId method) {
  return method == MethodId::kSlamPred || method == MethodId::kSlamPredT ||
         method == MethodId::kSlamPredH;
}

std::string FoldModelPath(const std::string& dir, MethodId method,
                          double anchor_ratio, std::size_t fold) {
  const int permille = static_cast<int>(std::lround(anchor_ratio * 1000.0));
  return dir + "/" + MethodIdName(method) + "_r" + std::to_string(permille) +
         "_fold" + std::to_string(fold) + ".slpmodel";
}

Result<ExperimentRunner> ExperimentRunner::Create(
    const AlignedNetworks& networks, ExperimentOptions options) {
  ExperimentRunner runner(networks, std::move(options));
  SLAMPRED_RETURN_NOT_OK(runner.Prepare());
  return runner;
}

ExperimentRunner::ExperimentRunner(const AlignedNetworks& networks,
                                   ExperimentOptions options)
    : networks_(networks),
      options_(std::move(options)),
      full_target_graph_(
          SocialGraph::FromHeterogeneousNetwork(networks.target())) {}

Status ExperimentRunner::Prepare() {
  Rng rng(options_.seed);

  auto folds = SplitLinks(full_target_graph_, options_.num_folds, rng);
  if (!folds.ok()) return folds.status();
  folds_ = std::move(folds).value();

  for (const LinkFold& fold : folds_) {
    train_graphs_.push_back(
        full_target_graph_.WithEdgesRemoved(fold.test_edges));
    auto eval = BuildEvaluationSet(full_target_graph_, fold.test_edges,
                                   options_.negatives_per_positive, rng);
    if (!eval.ok()) return eval.status();
    eval_sets_.push_back(std::move(eval).value());

    // Target tensor for SCAN/PL: full feature set on the training graph.
    target_tensors_.push_back(BuildSparseFeatureTensor(
        networks_.target(), train_graphs_.back(), FeatureTensorOptions{}));
  }

  for (std::size_t k = 0; k < networks_.num_sources(); ++k) {
    const SocialGraph source_graph =
        SocialGraph::FromHeterogeneousNetwork(networks_.source(k));
    source_tensors_.push_back(BuildSparseFeatureTensor(
        networks_.source(k), source_graph, FeatureTensorOptions{}));
  }
  return Status::OK();
}

const AlignedNetworks& ExperimentRunner::BundleAtRatio(double ratio) {
  // Key by permille to make the cache robust to float noise.
  const int key = static_cast<int>(std::lround(ratio * 1000.0));
  auto it = bundles_by_ratio_key_.find(key);
  if (it != bundles_by_ratio_key_.end()) return it->second;
  // A ratio-keyed fork keeps the subsample deterministic per ratio and
  // shared by all methods.
  Rng rng(options_.seed ^ (0xA17C5ULL + static_cast<std::uint64_t>(key)));
  auto inserted = bundles_by_ratio_key_.emplace(
      key, WithAnchorRatio(networks_, ratio, rng));
  return inserted.first->second;
}

Result<MethodResult> ExperimentRunner::RunMethod(MethodId method,
                                                 double anchor_ratio) {
  const AlignedNetworks& bundle = BundleAtRatio(anchor_ratio);
  MethodResult result;
  result.method = method;
  result.anchor_ratio = anchor_ratio;

  // Folds are independent (their own Rng stream, read-only shared
  // state) and run in parallel, one fold per chunk; results land at the
  // fold's own index, so fold order — and hence the mean/std — is
  // unchanged. Nested ParallelFor calls inside a fit fall back to
  // serial automatically.
  const std::size_t num_folds = folds_.size();
  std::vector<double> auc_folds(num_folds, 0.0);
  std::vector<double> precision_folds(num_folds, 0.0);
  std::vector<Status> fold_status(num_folds, Status::OK());
  ParallelFor(0, num_folds, 1, [&](std::size_t f0, std::size_t f1) {
    for (std::size_t f = f0; f < f1; ++f) {
      // Per-(method, ratio, fold) deterministic stream.
      Rng rng(options_.seed ^
              (static_cast<std::uint64_t>(method) * 7919 + f * 104729 +
               static_cast<std::uint64_t>(
                   std::lround(anchor_ratio * 1000.0)) * 15485863));
      // Fold 0 reports its fit's sparse-path footprint; each index has
      // exactly one writing chunk, so the parallel sweep stays
      // deterministic.
      auto fold_result = RunFold(method, bundle, anchor_ratio, f, rng,
                                 f == 0 ? &result.fold0_report : nullptr);
      if (!fold_result.ok()) {
        fold_status[f] = fold_result.status();
        continue;
      }
      auc_folds[f] = fold_result.value().first;
      precision_folds[f] = fold_result.value().second;
    }
  });
  // Surface the first failure in fold order (matching the serial loop's
  // early return).
  for (const Status& st : fold_status) {
    if (!st.ok()) return st;
  }
  result.auc_folds = std::move(auc_folds);
  result.precision_folds = std::move(precision_folds);
  result.auc = ComputeMeanStd(result.auc_folds);
  result.precision = ComputeMeanStd(result.precision_folds);
  result.memory_stats = result.fold0_report.memory_stats;
  return result;
}

Result<MethodResult> ExperimentRunner::RescoreMethod(
    MethodId method, double anchor_ratio, const std::string& model_dir) {
  if (!MethodIsSlamPred(method)) {
    return Status::InvalidArgument(
        std::string("only SLAMPRED variants save rescorable artifacts; "
                    "cannot rescore ") + MethodIdName(method));
  }
  MethodResult result;
  result.method = method;
  result.anchor_ratio = anchor_ratio;
  // Pure artifact lookups per fold — no fit stage runs here.
  for (std::size_t f = 0; f < folds_.size(); ++f) {
    auto session = ScoringSession::FromFile(
        FoldModelPath(model_dir, method, anchor_ratio, f));
    if (!session.ok()) return session.status();
    auto scores = session.value().ScorePairs(eval_sets_[f].pairs);
    if (!scores.ok()) return scores.status();
    auto graded = GradeFold(scores.value(), f);
    if (!graded.ok()) return graded.status();
    result.auc_folds.push_back(graded.value().first);
    result.precision_folds.push_back(graded.value().second);
  }
  result.auc = ComputeMeanStd(result.auc_folds);
  result.precision = ComputeMeanStd(result.precision_folds);
  return result;
}

Result<std::pair<double, double>> ExperimentRunner::RunFold(
    MethodId method, const AlignedNetworks& bundle, double anchor_ratio,
    std::size_t fold_index, Rng& rng, FitReport* fold_report) {
  const SocialGraph& train_graph = train_graphs_[fold_index];
  const EvaluationSet& eval = eval_sets_[fold_index];
  const std::vector<UserPair>& test_edges = folds_[fold_index].test_edges;

  Result<std::vector<double>> scores =
      Status::Internal("method not dispatched");

  switch (method) {
    case MethodId::kSlamPred:
    case MethodId::kSlamPredT:
    case MethodId::kSlamPredH: {
      SlamPredConfig config = options_.slampred;
      if (method == MethodId::kSlamPredT) {
        config.use_sources = false;
      } else if (method == MethodId::kSlamPredH) {
        config.use_sources = false;
        config.use_attributes = false;
      }
      config.seed = rng.NextUint64();
      SlamPred model(config);
      SLAMPRED_RETURN_NOT_OK(model.Fit(bundle, train_graph));
      if (fold_report != nullptr) *fold_report = MakeFitReport(model);
      if (!options_.save_model_dir.empty()) {
        auto artifact =
            MakeModelArtifact(model, options_.save_adapted_tensors);
        if (!artifact.ok()) return artifact.status();
        SLAMPRED_RETURN_NOT_OK(SaveModelArtifact(
            artifact.value(),
            FoldModelPath(options_.save_model_dir, method, anchor_ratio,
                          fold_index)));
      }
      scores = model.ScorePairs(eval.pairs);
      break;
    }
    case MethodId::kPl:
    case MethodId::kPlT:
    case MethodId::kPlS: {
      PlOptions pl_options = options_.pl;
      pl_options.feature_source =
          method == MethodId::kPl
              ? FeatureSource::kBoth
              : (method == MethodId::kPlT ? FeatureSource::kTargetOnly
                                          : FeatureSource::kSourceOnly);
      std::vector<SparseTensor3> raw_tensors;
      raw_tensors.push_back(target_tensors_[fold_index]);
      for (const SparseTensor3& t : source_tensors_) raw_tensors.push_back(t);
      Pl model(pl_options);
      SLAMPRED_RETURN_NOT_OK(
          model.Fit(bundle, train_graph, raw_tensors, test_edges, rng));
      scores = model.ScorePairs(eval.pairs);
      break;
    }
    case MethodId::kScan:
    case MethodId::kScanT:
    case MethodId::kScanS: {
      ScanOptions scan_options = options_.scan;
      scan_options.feature_source =
          method == MethodId::kScan
              ? FeatureSource::kBoth
              : (method == MethodId::kScanT ? FeatureSource::kTargetOnly
                                            : FeatureSource::kSourceOnly);
      std::vector<SparseTensor3> raw_tensors;
      raw_tensors.push_back(target_tensors_[fold_index]);
      for (const SparseTensor3& t : source_tensors_) raw_tensors.push_back(t);
      Scan model(scan_options);
      SLAMPRED_RETURN_NOT_OK(
          model.Fit(bundle, train_graph, raw_tensors, test_edges, rng));
      scores = model.ScorePairs(eval.pairs);
      break;
    }
    case MethodId::kJc: {
      scores = JcPredictor(train_graph).ScorePairs(eval.pairs);
      break;
    }
    case MethodId::kCn: {
      scores = CnPredictor(train_graph).ScorePairs(eval.pairs);
      break;
    }
    case MethodId::kPa: {
      scores = PaPredictor(train_graph).ScorePairs(eval.pairs);
      break;
    }
  }
  if (!scores.ok()) return scores.status();
  return GradeFold(scores.value(), fold_index);
}

Result<std::pair<double, double>> ExperimentRunner::GradeFold(
    const std::vector<double>& scores, std::size_t fold_index) const {
  const EvaluationSet& eval = eval_sets_[fold_index];
  auto auc = ComputeAuc(scores, eval.labels);
  if (!auc.ok()) return auc.status();
  auto precision = ComputePrecisionAtK(scores, eval.labels,
                                       options_.precision_k);
  if (!precision.ok()) return precision.status();
  return std::make_pair(auc.value(), precision.value());
}

}  // namespace slampred
