// The experiment harness behind Table II and the figure benches: runs
// any of the paper's 12 methods over a k-fold link split of a bundle at
// a given anchor-link sampling ratio, reporting mean±std AUC and
// Precision@K. Folds, evaluation candidate sets and anchor subsamples
// are fixed per runner so every method sees identical conditions.

#ifndef SLAMPRED_EVAL_EXPERIMENT_H_
#define SLAMPRED_EVAL_EXPERIMENT_H_

#include <map>
#include <string>
#include <vector>

#include "baselines/pl.h"
#include "baselines/scan.h"
#include "core/fit_report.h"
#include "core/slampred.h"
#include "eval/link_split.h"
#include "eval/metrics.h"
#include "graph/aligned_networks.h"
#include "linalg/sparse_tensor3.h"
#include "util/status.h"

namespace slampred {

/// The methods of Table II.
enum class MethodId {
  kSlamPred,
  kSlamPredT,
  kSlamPredH,
  kPl,
  kPlT,
  kPlS,
  kScan,
  kScanT,
  kScanS,
  kJc,
  kCn,
  kPa,
};

/// Display name ("SLAMPRED", "PL-T", ...).
const char* MethodIdName(MethodId method);

/// All twelve methods in Table II's row order.
std::vector<MethodId> AllMethods();

/// True iff the method consumes source-network information (i.e. its
/// results depend on the anchor ratio).
bool MethodUsesSources(MethodId method);

/// True iff the method is a SLAMPRED variant (fits a model whose
/// artifact can be saved and rescored).
bool MethodIsSlamPred(MethodId method);

/// Canonical per-fold artifact path used by the save / rescore pair:
/// `<dir>/<method>_r<permille>_fold<k>.slpmodel`.
std::string FoldModelPath(const std::string& dir, MethodId method,
                          double anchor_ratio, std::size_t fold);

/// Harness controls.
struct ExperimentOptions {
  std::size_t num_folds = 5;
  double negatives_per_positive = 5.0;
  std::size_t precision_k = 100;
  SlamPredConfig slampred;  ///< Base config for the SLAMPRED variants.
  ScanOptions scan;         ///< Base config for SCAN (source mode is set
                            ///< per variant).
  PlOptions pl;             ///< Base config for PL.
  std::uint64_t seed = 123;
  /// When non-empty, every SLAMPRED-variant fold fit also writes its
  /// model artifact to FoldModelPath(save_model_dir, ...) so the fold
  /// can later be rescored without refitting (see RescoreMethod).
  std::string save_model_dir;
  /// Include the adapted CSR tensors in saved per-fold artifacts.
  bool save_adapted_tensors = false;
};

/// Aggregated result of one (method, anchor ratio) cell.
struct MethodResult {
  MethodId method;
  double anchor_ratio = 1.0;
  MeanStd auc;
  MeanStd precision;
  std::vector<double> auc_folds;
  std::vector<double> precision_folds;
  /// Sparse-path footprint of the fold-0 SLAMPRED fit (all folds share
  /// the same data shapes); zero-valued for methods without such a fit.
  FitMemoryStats memory_stats;
  /// Full fit diagnostics of the fold-0 SLAMPRED fit (phase times,
  /// memory, recoveries); zero-valued for methods without such a fit.
  FitReport fold0_report;
};

/// Runs methods over fixed folds of one aligned bundle.
class ExperimentRunner {
 public:
  /// Prepares folds, evaluation sets and shared caches. Fails if the
  /// target graph cannot be split.
  static Result<ExperimentRunner> Create(const AlignedNetworks& networks,
                                         ExperimentOptions options);

  /// Runs one method at one anchor ratio across all folds.
  Result<MethodResult> RunMethod(MethodId method, double anchor_ratio);

  /// Rescores a SLAMPRED-variant cell from per-fold artifacts saved by
  /// an earlier RunMethod with `save_model_dir` = `model_dir`, without
  /// running any fit stage. AUC / Precision@K are computed over the
  /// same fold evaluation sets and are identical to the fitting run's.
  Result<MethodResult> RescoreMethod(MethodId method, double anchor_ratio,
                                     const std::string& model_dir);

  std::size_t num_folds() const { return folds_.size(); }
  const ExperimentOptions& options() const { return options_; }

 private:
  ExperimentRunner(const AlignedNetworks& networks,
                   ExperimentOptions options);

  Status Prepare();

  /// Scores one fold; returns {auc, precision@k}. When `fold_report`
  /// is non-null and the method fits a SLAMPRED model, the fit's full
  /// diagnostics are written through it.
  Result<std::pair<double, double>> RunFold(MethodId method,
                                            const AlignedNetworks& bundle,
                                            double anchor_ratio,
                                            std::size_t fold_index, Rng& rng,
                                            FitReport* fold_report);

  /// Scores the fold's evaluation pairs; shared by RunFold and
  /// RescoreMethod so both paths grade identically.
  Result<std::pair<double, double>> GradeFold(
      const std::vector<double>& scores, std::size_t fold_index) const;

  /// The anchor-subsampled bundle for `ratio`, built once and cached.
  const AlignedNetworks& BundleAtRatio(double ratio);

  AlignedNetworks networks_;
  ExperimentOptions options_;
  SocialGraph full_target_graph_;
  std::vector<LinkFold> folds_;
  std::vector<SocialGraph> train_graphs_;
  std::vector<EvaluationSet> eval_sets_;
  /// Raw per-fold target feature tensors (full feature set, CSR),
  /// shared by the SCAN/PL variants.
  std::vector<SparseTensor3> target_tensors_;
  /// Raw source tensors (fold-independent, CSR).
  std::vector<SparseTensor3> source_tensors_;
  std::map<int, AlignedNetworks> bundles_by_ratio_key_;
};

}  // namespace slampred

#endif  // SLAMPRED_EVAL_EXPERIMENT_H_
