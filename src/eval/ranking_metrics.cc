#include "eval/ranking_metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace slampred {

namespace {

// Validates inputs and returns the indices sorted by descending score
// (stable, so insertion order breaks ties deterministically).
Result<std::vector<std::size_t>> RankDescending(
    const std::vector<double>& scores, const std::vector<int>& labels,
    bool require_positive) {
  if (scores.size() != labels.size()) {
    return Status::InvalidArgument("scores/labels size mismatch");
  }
  if (scores.empty()) {
    return Status::InvalidArgument("empty evaluation set");
  }
  std::size_t positives = 0;
  for (int label : labels) {
    if (label != 0 && label != 1) {
      return Status::InvalidArgument("labels must be 0/1");
    }
    positives += static_cast<std::size_t>(label);
  }
  if (require_positive && positives == 0) {
    return Status::FailedPrecondition("no positive instances");
  }
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return scores[a] > scores[b];
                   });
  return order;
}

}  // namespace

Result<double> ComputeAveragePrecision(const std::vector<double>& scores,
                                       const std::vector<int>& labels) {
  auto order = RankDescending(scores, labels, /*require_positive=*/true);
  if (!order.ok()) return order.status();
  double sum = 0.0;
  std::size_t hits = 0;
  for (std::size_t rank = 0; rank < order.value().size(); ++rank) {
    if (labels[order.value()[rank]] == 1) {
      ++hits;
      sum += static_cast<double>(hits) / static_cast<double>(rank + 1);
    }
  }
  return sum / static_cast<double>(hits);
}

Result<double> ComputeReciprocalRank(const std::vector<double>& scores,
                                     const std::vector<int>& labels) {
  auto order = RankDescending(scores, labels, /*require_positive=*/true);
  if (!order.ok()) return order.status();
  for (std::size_t rank = 0; rank < order.value().size(); ++rank) {
    if (labels[order.value()[rank]] == 1) {
      return 1.0 / static_cast<double>(rank + 1);
    }
  }
  return 0.0;  // Unreachable: a positive exists.
}

Result<double> ComputeNdcgAtK(const std::vector<double>& scores,
                              const std::vector<int>& labels,
                              std::size_t k) {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  auto order = RankDescending(scores, labels, /*require_positive=*/true);
  if (!order.ok()) return order.status();
  k = std::min(k, scores.size());

  double dcg = 0.0;
  for (std::size_t rank = 0; rank < k; ++rank) {
    if (labels[order.value()[rank]] == 1) {
      dcg += 1.0 / std::log2(static_cast<double>(rank) + 2.0);
    }
  }
  std::size_t positives = 0;
  for (int label : labels) positives += static_cast<std::size_t>(label);
  double ideal = 0.0;
  for (std::size_t rank = 0; rank < std::min(k, positives); ++rank) {
    ideal += 1.0 / std::log2(static_cast<double>(rank) + 2.0);
  }
  return ideal > 0.0 ? dcg / ideal : 0.0;
}

Result<double> ComputeRecallAtK(const std::vector<double>& scores,
                                const std::vector<int>& labels,
                                std::size_t k) {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  auto order = RankDescending(scores, labels, /*require_positive=*/true);
  if (!order.ok()) return order.status();
  k = std::min(k, scores.size());
  std::size_t hits = 0;
  std::size_t positives = 0;
  for (int label : labels) positives += static_cast<std::size_t>(label);
  for (std::size_t rank = 0; rank < k; ++rank) {
    if (labels[order.value()[rank]] == 1) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(positives);
}

}  // namespace slampred
