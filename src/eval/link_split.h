// K-fold splitting of the target network's links (Section IV-B1: 5 folds,
// 4 train / 1 test) and assembly of the labelled evaluation candidate
// set (hidden test links as positives plus sampled absent pairs as
// negatives).

#ifndef SLAMPRED_EVAL_LINK_SPLIT_H_
#define SLAMPRED_EVAL_LINK_SPLIT_H_

#include <vector>

#include "graph/social_graph.h"
#include "util/random.h"
#include "util/status.h"

namespace slampred {

/// One train/test partition of a graph's edges.
struct LinkFold {
  std::vector<UserPair> train_edges;
  std::vector<UserPair> test_edges;
};

/// Shuffles the edges of `graph` and splits them into `num_folds`
/// train/test partitions (fold i's test set is the i-th shard). Requires
/// num_folds >= 2 and at least num_folds edges.
Result<std::vector<LinkFold>> SplitLinks(const SocialGraph& graph,
                                         std::size_t num_folds, Rng& rng);

/// The labelled candidate set one fold is evaluated on.
struct EvaluationSet {
  std::vector<UserPair> pairs;
  std::vector<int> labels;  ///< 1 = hidden test link, 0 = sampled non-link.
};

/// Builds the evaluation set for a fold: every test edge as a positive
/// plus `negatives_per_positive` times as many sampled pairs that are
/// links in neither the full graph nor the test set.
Result<EvaluationSet> BuildEvaluationSet(const SocialGraph& full_graph,
                                         const std::vector<UserPair>& test_edges,
                                         double negatives_per_positive,
                                         Rng& rng);

}  // namespace slampred

#endif  // SLAMPRED_EVAL_LINK_SPLIT_H_
