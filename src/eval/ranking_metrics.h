// Additional ranking metrics for link prediction beyond AUC / P@K:
// average precision, mean reciprocal rank, NDCG@K, and recall@K. All
// follow the same convention as eval/metrics.h: higher scores = more
// confident, labels are 0/1, ties receive a deterministic stable order
// (callers should shuffle candidates if tie bias matters — the
// evaluation-set builder already does).

#ifndef SLAMPRED_EVAL_RANKING_METRICS_H_
#define SLAMPRED_EVAL_RANKING_METRICS_H_

#include <vector>

#include "util/status.h"

namespace slampred {

/// Average precision: mean of precision@rank over the positions of the
/// positives (the area under the precision–recall curve, interpolated
/// at positive positions). Fails on size mismatch / empty input /
/// no positives.
Result<double> ComputeAveragePrecision(const std::vector<double>& scores,
                                       const std::vector<int>& labels);

/// Reciprocal rank of the first positive (1-based); 0-positives fails.
Result<double> ComputeReciprocalRank(const std::vector<double>& scores,
                                     const std::vector<int>& labels);

/// Binary NDCG@K: DCG with gain 1 for positives, discount 1/log2(1+rank),
/// normalised by the ideal ordering. k is clamped to the input size.
Result<double> ComputeNdcgAtK(const std::vector<double>& scores,
                              const std::vector<int>& labels, std::size_t k);

/// Recall@K: fraction of all positives ranked in the top k.
Result<double> ComputeRecallAtK(const std::vector<double>& scores,
                                const std::vector<int>& labels,
                                std::size_t k);

}  // namespace slampred

#endif  // SLAMPRED_EVAL_RANKING_METRICS_H_
