#include "ml/standard_scaler.h"

#include <cmath>

#include "util/logging.h"

namespace slampred {

void StandardScaler::Fit(const std::vector<Vector>& rows) {
  if (rows.empty()) {
    means_ = Vector();
    stds_ = Vector();
    return;
  }
  const std::size_t d = rows[0].size();
  means_ = Vector(d);
  stds_ = Vector(d);
  for (const Vector& row : rows) {
    SLAMPRED_CHECK(row.size() == d) << "ragged training rows";
    means_ += row;
  }
  means_ /= static_cast<double>(rows.size());
  for (const Vector& row : rows) {
    for (std::size_t j = 0; j < d; ++j) {
      const double diff = row[j] - means_[j];
      stds_[j] += diff * diff;
    }
  }
  for (std::size_t j = 0; j < d; ++j) {
    stds_[j] = std::sqrt(stds_[j] / static_cast<double>(rows.size()));
  }
}

Vector StandardScaler::Transform(const Vector& x) const {
  SLAMPRED_CHECK(x.size() == means_.size()) << "scaler width mismatch";
  Vector out(x.size());
  for (std::size_t j = 0; j < x.size(); ++j) {
    out[j] = stds_[j] > 1e-12 ? (x[j] - means_[j]) / stds_[j] : 0.0;
  }
  return out;
}

void StandardScaler::TransformInPlace(std::vector<Vector>& rows) const {
  for (Vector& row : rows) row = Transform(row);
}

}  // namespace slampred
