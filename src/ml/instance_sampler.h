// Training-instance assembly for the classification baselines: positive
// instances are (training) edges, negative/unlabeled instances are
// sampled absent pairs.

#ifndef SLAMPRED_ML_INSTANCE_SAMPLER_H_
#define SLAMPRED_ML_INSTANCE_SAMPLER_H_

#include <vector>

#include "graph/social_graph.h"
#include "util/random.h"

namespace slampred {

/// A labelled user-pair training set (labels 1 = linked, 0 = not).
struct PairTrainingSet {
  std::vector<UserPair> pairs;
  std::vector<int> labels;
};

/// Builds a training set from `graph`: all (or up to `max_positives`)
/// existing edges as positives, plus `negative_ratio` times as many
/// sampled absent pairs as negatives. Pairs listed in `exclude` are
/// never emitted (pass the held-out test pairs here so negatives don't
/// collide with hidden positives).
PairTrainingSet SamplePairTrainingSet(const SocialGraph& graph,
                                      std::size_t max_positives,
                                      double negative_ratio,
                                      const std::vector<UserPair>& exclude,
                                      Rng& rng);

}  // namespace slampred

#endif  // SLAMPRED_ML_INSTANCE_SAMPLER_H_
