#include "ml/instance_sampler.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace slampred {

PairTrainingSet SamplePairTrainingSet(const SocialGraph& graph,
                                      std::size_t max_positives,
                                      double negative_ratio,
                                      const std::vector<UserPair>& exclude,
                                      Rng& rng) {
  PairTrainingSet out;
  std::set<UserPair> blocked;
  for (const UserPair& p : exclude) blocked.insert(MakeUserPair(p.u, p.v));

  const std::vector<UserPair> edges = graph.Edges();
  const std::size_t take = std::min(max_positives, edges.size());
  for (std::size_t idx : rng.SampleWithoutReplacement(edges.size(), take)) {
    const UserPair pair = edges[idx];
    if (blocked.count(pair) > 0) continue;
    out.pairs.push_back(pair);
    out.labels.push_back(1);
    blocked.insert(pair);
  }

  const std::size_t num_pos = out.pairs.size();
  const std::size_t want_neg = static_cast<std::size_t>(
      std::ceil(negative_ratio * static_cast<double>(num_pos)));
  const std::size_t n = graph.num_users();
  if (n >= 2) {
    std::size_t found = 0;
    std::size_t attempts = 0;
    const std::size_t max_attempts = want_neg * 100 + 100;
    while (found < want_neg && attempts < max_attempts) {
      ++attempts;
      const std::size_t a = static_cast<std::size_t>(rng.NextBounded(n));
      const std::size_t b = static_cast<std::size_t>(rng.NextBounded(n));
      if (a == b || graph.HasEdge(a, b)) continue;
      const UserPair pair = MakeUserPair(a, b);
      if (!blocked.insert(pair).second) continue;
      out.pairs.push_back(pair);
      out.labels.push_back(0);
      ++found;
    }
  }
  return out;
}

}  // namespace slampred
