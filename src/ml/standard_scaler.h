// Per-feature standardisation (zero mean, unit variance) for the
// classification baselines.

#ifndef SLAMPRED_ML_STANDARD_SCALER_H_
#define SLAMPRED_ML_STANDARD_SCALER_H_

#include <vector>

#include "linalg/vector.h"

namespace slampred {

/// Fits column means/standard deviations on a training set and applies
/// (x − mean) / std per feature; constant features map to zero.
class StandardScaler {
 public:
  /// Fits on `rows` (each a feature vector of equal length). An empty
  /// training set leaves the scaler as identity-on-empty.
  void Fit(const std::vector<Vector>& rows);

  /// Transforms one vector (length must match the fitted width).
  Vector Transform(const Vector& x) const;

  /// Transforms a batch in place.
  void TransformInPlace(std::vector<Vector>& rows) const;

  /// Fitted feature width (0 before Fit).
  std::size_t width() const { return means_.size(); }

  const Vector& means() const { return means_; }
  const Vector& stds() const { return stds_; }

 private:
  Vector means_;
  Vector stds_;
};

}  // namespace slampred

#endif  // SLAMPRED_ML_STANDARD_SCALER_H_
