#include "ml/logistic_regression.h"

#include <cmath>

#include "util/logging.h"

namespace slampred {

double Sigmoid(double z) {
  if (z >= 0.0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

LogisticRegression::LogisticRegression(LogisticRegressionOptions options)
    : options_(options) {}

Status LogisticRegression::Fit(const std::vector<Vector>& features,
                               const std::vector<int>& labels) {
  return FitWeighted(features, labels,
                     std::vector<double>(features.size(), 1.0));
}

Status LogisticRegression::FitWeighted(
    const std::vector<Vector>& features, const std::vector<int>& labels,
    const std::vector<double>& example_weights) {
  if (features.empty()) {
    return Status::InvalidArgument("empty training set");
  }
  if (features.size() != labels.size() ||
      features.size() != example_weights.size()) {
    return Status::InvalidArgument("features/labels/weights size mismatch");
  }
  const std::size_t n = features.size();
  const std::size_t d = features[0].size();
  double weight_total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (features[i].size() != d) {
      return Status::InvalidArgument("ragged feature rows");
    }
    if (labels[i] != 0 && labels[i] != 1) {
      return Status::InvalidArgument("labels must be 0/1");
    }
    if (example_weights[i] < 0.0) {
      return Status::InvalidArgument("negative example weight");
    }
    weight_total += example_weights[i];
  }
  if (weight_total <= 0.0) {
    return Status::InvalidArgument("example weights sum to zero");
  }

  weights_ = Vector(d);
  bias_ = 0.0;

  for (int it = 0; it < options_.max_iterations; ++it) {
    Vector grad_w(d);
    double grad_b = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double p = Sigmoid(weights_.Dot(features[i]) + bias_);
      const double err =
          example_weights[i] * (p - static_cast<double>(labels[i]));
      for (std::size_t j = 0; j < d; ++j) {
        grad_w[j] += err * features[i][j];
      }
      grad_b += err;
    }
    grad_w /= weight_total;
    grad_b /= weight_total;
    for (std::size_t j = 0; j < d; ++j) {
      grad_w[j] += options_.l2 * weights_[j];
    }

    const double step = options_.learning_rate;
    double max_delta = std::fabs(step * grad_b);
    bias_ -= step * grad_b;
    for (std::size_t j = 0; j < d; ++j) {
      const double delta = step * grad_w[j];
      max_delta = std::max(max_delta, std::fabs(delta));
      weights_[j] -= delta;
    }
    if (max_delta < options_.tol) break;
  }
  fitted_ = true;
  return Status::OK();
}

double LogisticRegression::PredictProbability(const Vector& x) const {
  SLAMPRED_CHECK(fitted_) << "predict before fit";
  SLAMPRED_CHECK(x.size() == weights_.size()) << "feature width mismatch";
  return Sigmoid(weights_.Dot(x) + bias_);
}

int LogisticRegression::Predict(const Vector& x) const {
  return PredictProbability(x) >= 0.5 ? 1 : 0;
}

}  // namespace slampred
