// L2-regularised logistic regression trained by full-batch gradient
// descent — the classifier behind the SCAN and PL baselines.

#ifndef SLAMPRED_ML_LOGISTIC_REGRESSION_H_
#define SLAMPRED_ML_LOGISTIC_REGRESSION_H_

#include <vector>

#include "linalg/vector.h"
#include "util/status.h"

namespace slampred {

/// Training controls.
struct LogisticRegressionOptions {
  double learning_rate = 0.5;
  double l2 = 1e-3;          ///< Ridge strength on the weights (not bias).
  int max_iterations = 400;
  double tol = 1e-6;         ///< Converged when ‖Δw‖∞ < tol.
};

/// Binary logistic model p(y=1|x) = σ(wᵀx + b) with optional per-example
/// weights (used by the PU reweighting step of PL).
class LogisticRegression {
 public:
  explicit LogisticRegression(LogisticRegressionOptions options = {});

  /// Fits on (features, labels) with uniform example weights.
  Status Fit(const std::vector<Vector>& features,
             const std::vector<int>& labels);

  /// Fits with per-example weights (all weights must be >= 0).
  Status FitWeighted(const std::vector<Vector>& features,
                     const std::vector<int>& labels,
                     const std::vector<double>& example_weights);

  /// Predicted probability p(y=1|x). Requires a fitted model of
  /// matching width.
  double PredictProbability(const Vector& x) const;

  /// Decision at threshold 0.5.
  int Predict(const Vector& x) const;

  /// True once Fit succeeded.
  bool fitted() const { return fitted_; }

  const Vector& weights() const { return weights_; }
  double bias() const { return bias_; }

 private:
  LogisticRegressionOptions options_;
  Vector weights_;
  double bias_ = 0.0;
  bool fitted_ = false;
};

/// Numerically-stable sigmoid.
double Sigmoid(double z);

}  // namespace slampred

#endif  // SLAMPRED_ML_LOGISTIC_REGRESSION_H_
