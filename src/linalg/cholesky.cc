#include "linalg/cholesky.h"

#include <cmath>

#include "util/logging.h"

namespace slampred {

Result<CholeskyResult> ComputeCholesky(const Matrix& a) {
  if (a.empty() || !a.IsSquare()) {
    return Status::InvalidArgument("Cholesky needs a non-empty square matrix");
  }
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (diag <= 0.0 || !std::isfinite(diag)) {
      return Status::NumericalError(
          "matrix not positive definite at pivot " + std::to_string(j));
    }
    const double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      l(i, j) = sum / ljj;
    }
  }
  return CholeskyResult{std::move(l)};
}

Vector ForwardSubstitute(const Matrix& l, const Vector& b) {
  SLAMPRED_CHECK(l.IsSquare() && l.rows() == b.size());
  const std::size_t n = b.size();
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= l(i, k) * y[k];
    y[i] = sum / l(i, i);
  }
  return y;
}

Vector BackSubstituteTranspose(const Matrix& l, const Vector& y) {
  SLAMPRED_CHECK(l.IsSquare() && l.rows() == y.size());
  const std::size_t n = y.size();
  Vector x(n);
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double sum = y[i];
    for (std::size_t k = i + 1; k < n; ++k) sum -= l(k, i) * x[k];
    x[i] = sum / l(i, i);
  }
  return x;
}

Vector CholeskySolve(const CholeskyResult& chol, const Vector& b) {
  return BackSubstituteTranspose(chol.l, ForwardSubstitute(chol.l, b));
}

Matrix ForwardSubstituteMatrix(const Matrix& l, const Matrix& b) {
  SLAMPRED_CHECK(l.IsSquare() && l.rows() == b.rows());
  Matrix out(b.rows(), b.cols());
  for (std::size_t j = 0; j < b.cols(); ++j) {
    out.SetCol(j, ForwardSubstitute(l, b.Col(j)));
  }
  return out;
}

Matrix BackSubstituteTransposeMatrix(const Matrix& l, const Matrix& b) {
  SLAMPRED_CHECK(l.IsSquare() && l.rows() == b.rows());
  Matrix out(b.rows(), b.cols());
  for (std::size_t j = 0; j < b.cols(); ++j) {
    out.SetCol(j, BackSubstituteTranspose(l, b.Col(j)));
  }
  return out;
}

}  // namespace slampred
