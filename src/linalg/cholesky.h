// Cholesky factorisation of symmetric positive-definite matrices, plus
// triangular solves. Used to reduce the generalized eigenproblem of the
// paper's Theorem 1 to a standard symmetric one.

#ifndef SLAMPRED_LINALG_CHOLESKY_H_
#define SLAMPRED_LINALG_CHOLESKY_H_

#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "util/status.h"

namespace slampred {

/// Lower-triangular factor of A = L Lᵀ.
struct CholeskyResult {
  Matrix l;  ///< Lower-triangular factor.
};

/// Computes the Cholesky factor of the SPD matrix `a`.
/// Fails with kNumericalError if a non-positive pivot appears (matrix is
/// not positive definite within roundoff).
Result<CholeskyResult> ComputeCholesky(const Matrix& a);

/// Solves L y = b for lower-triangular L (forward substitution).
Vector ForwardSubstitute(const Matrix& l, const Vector& b);

/// Solves Lᵀ x = y for lower-triangular L (back substitution on Lᵀ).
Vector BackSubstituteTranspose(const Matrix& l, const Vector& y);

/// Solves A x = b given the Cholesky factor of A.
Vector CholeskySolve(const CholeskyResult& chol, const Vector& b);

/// Computes L⁻¹ B column-by-column (forward substitution per column).
Matrix ForwardSubstituteMatrix(const Matrix& l, const Matrix& b);

/// Computes L⁻ᵀ B column-by-column.
Matrix BackSubstituteTransposeMatrix(const Matrix& l, const Matrix& b);

}  // namespace slampred

#endif  // SLAMPRED_LINALG_CHOLESKY_H_
