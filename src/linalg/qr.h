// QR factorisation by Householder reflections; least-squares solves and
// orthonormalisation used by the embedding solver's basis cleanups.

#ifndef SLAMPRED_LINALG_QR_H_
#define SLAMPRED_LINALG_QR_H_

#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "util/status.h"

namespace slampred {

/// Thin QR factorisation A = Q R for A (m x n, m >= n): Q is m x n with
/// orthonormal columns and R is n x n upper-triangular.
struct QrResult {
  Matrix q;  ///< Orthonormal columns (m x n).
  Matrix r;  ///< Upper triangular (n x n).
};

/// Computes the thin QR factorisation of `a` (requires rows >= cols).
Result<QrResult> ComputeQr(const Matrix& a);

/// Solves min ‖A x − b‖₂ via QR; requires a.rows() >= a.cols() and full
/// column rank (fails with kNumericalError otherwise).
Result<Vector> LeastSquares(const Matrix& a, const Vector& b);

/// Returns an orthonormal basis for the column space of `a` (modified
/// Gram–Schmidt with re-orthogonalisation, dropping near-dependent
/// columns). The result has a.rows() rows and rank(a) columns.
Matrix OrthonormalizeColumns(const Matrix& a, double tol = 1e-10);

}  // namespace slampred

#endif  // SLAMPRED_LINALG_QR_H_
