// Singular value decomposition via one-sided Jacobi rotations.
//
// The nuclear-norm proximal operator needs a full SVD each inner
// iteration, so this is the numerical core of SLAMPRED. One-sided Jacobi
// is chosen for robustness and simplicity: it orthogonalises the columns
// of A in place, giving A = U Σ Vᵀ with high relative accuracy, at O(n³)
// per sweep — ample for the dense sizes this library targets (≲ 1000).

#ifndef SLAMPRED_LINALG_SVD_H_
#define SLAMPRED_LINALG_SVD_H_

#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "util/status.h"

namespace slampred {

/// Thin SVD A = U Σ Vᵀ with Σ sorted descending and non-negative.
/// For A (m x n): U is m x k, singular_values has length k, V is n x k,
/// where k = min(m, n).
struct SvdResult {
  Matrix u;                 ///< Left singular vectors (m x k).
  Vector singular_values;   ///< σ₁ ≥ σ₂ ≥ ... ≥ σ_k ≥ 0.
  Matrix v;                 ///< Right singular vectors (n x k).

  /// Reconstructs U Σ Vᵀ (for testing / verification).
  Matrix Reconstruct() const;
};

/// Options controlling the Jacobi iteration.
struct SvdOptions {
  int max_sweeps = 60;      ///< Hard cap on full Jacobi sweeps.
  double tol = 1e-12;       ///< Relative off-diagonal convergence tolerance.
};

/// Computes the thin SVD of `a`. Fails with kNotConverged if the Jacobi
/// sweeps do not reach `tol` within `max_sweeps` (practically unseen for
/// well-scaled inputs), and kInvalidArgument for empty input.
Result<SvdResult> ComputeSvd(const Matrix& a, const SvdOptions& options = {});

}  // namespace slampred

#endif  // SLAMPRED_LINALG_SVD_H_
