#include "linalg/csr_matrix.h"

#include <algorithm>
#include <cmath>

#include "util/binary_io.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace slampred {

CsrMatrix CsrMatrix::FromTriplets(std::size_t rows, std::size_t cols,
                                  std::vector<Triplet> triplets) {
  for (const Triplet& t : triplets) {
    SLAMPRED_CHECK(t.row < rows && t.col < cols)
        << "triplet (" << t.row << "," << t.col << ") outside " << rows << "x"
        << cols;
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(rows + 1, 0);

  // Merge duplicates, drop zeros.
  std::vector<Triplet> merged;
  merged.reserve(triplets.size());
  for (const Triplet& t : triplets) {
    if (!merged.empty() && merged.back().row == t.row &&
        merged.back().col == t.col) {
      merged.back().value += t.value;
    } else {
      merged.push_back(t);
    }
  }

  for (const Triplet& t : merged) {
    if (t.value == 0.0) continue;
    m.col_idx_.push_back(t.col);
    m.values_.push_back(t.value);
    ++m.row_ptr_[t.row + 1];
  }
  for (std::size_t i = 0; i < rows; ++i) m.row_ptr_[i + 1] += m.row_ptr_[i];
  return m;
}

CsrMatrix CsrMatrix::FromDense(const Matrix& dense, double drop_tol) {
  std::vector<Triplet> trips;
  for (std::size_t i = 0; i < dense.rows(); ++i) {
    for (std::size_t j = 0; j < dense.cols(); ++j) {
      const double v = dense(i, j);
      if (std::fabs(v) > drop_tol) trips.push_back({i, j, v});
    }
  }
  return FromTriplets(dense.rows(), dense.cols(), std::move(trips));
}

CsrMatrix CsrMatrix::FromSortedLists(
    const std::vector<std::vector<std::size_t>>& lists, std::size_t cols) {
  CsrMatrix m;
  m.rows_ = lists.size();
  m.cols_ = cols;
  m.row_ptr_.assign(lists.size() + 1, 0);
  std::size_t nnz = 0;
  for (std::size_t i = 0; i < lists.size(); ++i) {
    nnz += lists[i].size();
    m.row_ptr_[i + 1] = nnz;
  }
  m.col_idx_.reserve(nnz);
  m.values_.assign(nnz, 1.0);
  for (const std::vector<std::size_t>& list : lists) {
    for (std::size_t j : list) {
      SLAMPRED_CHECK(j < cols) << "list index " << j << " outside " << cols
                               << " cols";
      m.col_idx_.push_back(j);
    }
  }
  return m;
}

CsrMatrix CsrMatrix::FromRows(std::size_t cols,
                              std::vector<std::vector<RowEntry>> rows) {
  CsrMatrix m;
  m.rows_ = rows.size();
  m.cols_ = cols;
  m.row_ptr_.assign(rows.size() + 1, 0);
  std::size_t nnz = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    for (const RowEntry& e : rows[i]) {
      if (e.second != 0.0) ++nnz;
    }
    m.row_ptr_[i + 1] = nnz;
  }
  m.col_idx_.reserve(nnz);
  m.values_.reserve(nnz);
  for (const std::vector<RowEntry>& row : rows) {
    for (const RowEntry& e : row) {
      if (e.second == 0.0) continue;
      SLAMPRED_CHECK(e.first < cols) << "row entry outside " << cols << " cols";
      m.col_idx_.push_back(e.first);
      m.values_.push_back(e.second);
    }
  }
  return m;
}

CsrMatrix CsrMatrix::Identity(std::size_t n) {
  std::vector<Triplet> trips;
  trips.reserve(n);
  for (std::size_t i = 0; i < n; ++i) trips.push_back({i, i, 1.0});
  return FromTriplets(n, n, std::move(trips));
}

double CsrMatrix::At(std::size_t i, std::size_t j) const {
  SLAMPRED_CHECK(i < rows_ && j < cols_) << "CSR index out of range";
  const auto begin = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[i]);
  const auto end = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[i + 1]);
  const auto it = std::lower_bound(begin, end, j);
  if (it == end || *it != j) return 0.0;
  return values_[static_cast<std::size_t>(it - col_idx_.begin())];
}

Vector CsrMatrix::Multiply(const Vector& x) const {
  SLAMPRED_CHECK(x.size() == cols_) << "CSR matvec shape mismatch";
  Vector y(rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    double sum = 0.0;
    for (std::size_t p = row_ptr_[i]; p < row_ptr_[i + 1]; ++p) {
      sum += values_[p] * x[col_idx_[p]];
    }
    y[i] = sum;
  }
  return y;
}

Vector CsrMatrix::MultiplyTranspose(const Vector& x) const {
  SLAMPRED_CHECK(x.size() == rows_) << "CSR matvec(T) shape mismatch";
  Vector y(cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    for (std::size_t p = row_ptr_[i]; p < row_ptr_[i + 1]; ++p) {
      y[col_idx_[p]] += values_[p] * xi;
    }
  }
  return y;
}

Matrix CsrMatrix::MultiplyDense(const Matrix& b) const {
  SLAMPRED_CHECK(b.rows() == cols_) << "CSR * dense shape mismatch";
  const std::size_t ncols = b.cols();
  Matrix out(rows_, ncols);
  // One writing chunk per output row; the stored k stream ascending per
  // row, so the accumulation order per element is partition-independent.
  const std::size_t avg_row_work =
      rows_ == 0 ? 1 : (nnz() * ncols) / rows_ + 1;
  ParallelFor(0, rows_, GrainForWork(avg_row_work),
              [&](std::size_t row0, std::size_t row1) {
                for (std::size_t i = row0; i < row1; ++i) {
                  double* out_row = out.data().data() + i * ncols;
                  for (std::size_t p = row_ptr_[i]; p < row_ptr_[i + 1]; ++p) {
                    const double v = values_[p];
                    const double* b_row = b.data().data() + col_idx_[p] * ncols;
                    for (std::size_t j = 0; j < ncols; ++j) {
                      out_row[j] += v * b_row[j];
                    }
                  }
                }
              });
  return out;
}

CsrMatrix CsrMatrix::MultiplySparse(const CsrMatrix& b) const {
  SLAMPRED_CHECK(b.rows() == cols_) << "CSR * CSR shape mismatch";
  const std::size_t ncols = b.cols_;
  std::vector<std::vector<RowEntry>> out_rows(rows_);
  // Row-gather SpGEMM with a per-chunk dense scratch: for output row i
  // the stored k of A's row i stream ascending, so each element (i, j)
  // accumulates its products in the dense GEMM kernel's k order.
  const std::size_t avg_row_work =
      rows_ == 0 ? 1
                 : (nnz() * (b.nnz() / std::max<std::size_t>(1, b.rows_) + 1)) /
                           rows_ +
                       1;
  ParallelFor(
      0, rows_, GrainForWork(avg_row_work),
      [&](std::size_t row0, std::size_t row1) {
        std::vector<double> scratch(ncols, 0.0);
        std::vector<char> seen(ncols, 0);
        std::vector<std::size_t> touched;
        for (std::size_t i = row0; i < row1; ++i) {
          touched.clear();
          for (std::size_t p = row_ptr_[i]; p < row_ptr_[i + 1]; ++p) {
            const double aik = values_[p];
            const std::size_t k = col_idx_[p];
            for (std::size_t q = b.row_ptr_[k]; q < b.row_ptr_[k + 1]; ++q) {
              const std::size_t j = b.col_idx_[q];
              if (!seen[j]) {
                seen[j] = 1;
                touched.push_back(j);
              }
              scratch[j] += aik * b.values_[q];
            }
          }
          std::sort(touched.begin(), touched.end());
          std::vector<RowEntry>& out_row = out_rows[i];
          out_row.reserve(touched.size());
          for (std::size_t j : touched) {
            if (scratch[j] != 0.0) out_row.push_back({j, scratch[j]});
            scratch[j] = 0.0;
            seen[j] = 0;
          }
        }
      });
  return FromRows(ncols, std::move(out_rows));
}

Matrix CsrMatrix::MultiplyTransposeDense(const Matrix& b) const {
  SLAMPRED_CHECK(b.rows() == rows_) << "CSRᵀ * dense shape mismatch";
  Matrix out(cols_, b.cols());
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t p = row_ptr_[i]; p < row_ptr_[i + 1]; ++p) {
      const double v = values_[p];
      const std::size_t k = col_idx_[p];
      for (std::size_t j = 0; j < b.cols(); ++j) {
        out(k, j) += v * b(i, j);
      }
    }
  }
  return out;
}

Vector CsrMatrix::RowSums() const {
  Vector sums(rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    double sum = 0.0;
    for (std::size_t p = row_ptr_[i]; p < row_ptr_[i + 1]; ++p) {
      sum += values_[p];
    }
    sums[i] = sum;
  }
  return sums;
}

Matrix CsrMatrix::ToDense() const {
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t p = row_ptr_[i]; p < row_ptr_[i + 1]; ++p) {
      out(i, col_idx_[p]) = values_[p];
    }
  }
  return out;
}

CsrMatrix CsrMatrix::Transposed() const {
  std::vector<Triplet> trips;
  trips.reserve(nnz());
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t p = row_ptr_[i]; p < row_ptr_[i + 1]; ++p) {
      trips.push_back({col_idx_[p], i, values_[p]});
    }
  }
  return FromTriplets(cols_, rows_, std::move(trips));
}

CsrMatrix CsrMatrix::Scaled(double factor) const {
  CsrMatrix out = *this;
  for (double& v : out.values_) v *= factor;
  return out;
}

CsrMatrix CsrMatrix::Add(const CsrMatrix& other) const {
  SLAMPRED_CHECK(rows_ == other.rows_ && cols_ == other.cols_)
      << "CSR add shape mismatch";
  std::vector<Triplet> trips;
  trips.reserve(nnz() + other.nnz());
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t p = row_ptr_[i]; p < row_ptr_[i + 1]; ++p) {
      trips.push_back({i, col_idx_[p], values_[p]});
    }
  }
  for (std::size_t i = 0; i < other.rows_; ++i) {
    for (std::size_t p = other.row_ptr_[i]; p < other.row_ptr_[i + 1]; ++p) {
      trips.push_back({i, other.col_idx_[p], other.values_[p]});
    }
  }
  return FromTriplets(rows_, cols_, std::move(trips));
}

CsrMatrix CsrMatrix::WithoutDiagonal() const {
  std::vector<std::vector<RowEntry>> out_rows(rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    out_rows[i].reserve(row_ptr_[i + 1] - row_ptr_[i]);
    for (std::size_t p = row_ptr_[i]; p < row_ptr_[i + 1]; ++p) {
      if (col_idx_[p] == i) continue;
      out_rows[i].push_back({col_idx_[p], values_[p]});
    }
  }
  return FromRows(cols_, std::move(out_rows));
}

CsrMatrix CsrMatrix::AddScaled(const CsrMatrix& other, double factor) const {
  SLAMPRED_CHECK(rows_ == other.rows_ && cols_ == other.cols_)
      << "CSR AddScaled shape mismatch";
  std::vector<std::vector<RowEntry>> out_rows(rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    std::size_t p = row_ptr_[i];
    std::size_t q = other.row_ptr_[i];
    const std::size_t p_end = row_ptr_[i + 1];
    const std::size_t q_end = other.row_ptr_[i + 1];
    std::vector<RowEntry>& out_row = out_rows[i];
    out_row.reserve((p_end - p) + (q_end - q));
    while (p < p_end || q < q_end) {
      if (q >= q_end || (p < p_end && col_idx_[p] < other.col_idx_[q])) {
        out_row.push_back({col_idx_[p], values_[p]});
        ++p;
      } else if (p >= p_end || other.col_idx_[q] < col_idx_[p]) {
        out_row.push_back({other.col_idx_[q], factor * other.values_[q]});
        ++q;
      } else {
        out_row.push_back(
            {col_idx_[p], values_[p] + factor * other.values_[q]});
        ++p;
        ++q;
      }
    }
  }
  return FromRows(cols_, std::move(out_rows));
}

CsrMatrix CsrMatrix::Hadamard(const CsrMatrix& other) const {
  SLAMPRED_CHECK(rows_ == other.rows_ && cols_ == other.cols_)
      << "CSR Hadamard shape mismatch";
  std::vector<std::vector<RowEntry>> out_rows(rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    std::size_t p = row_ptr_[i];
    std::size_t q = other.row_ptr_[i];
    const std::size_t p_end = row_ptr_[i + 1];
    const std::size_t q_end = other.row_ptr_[i + 1];
    while (p < p_end && q < q_end) {
      if (col_idx_[p] < other.col_idx_[q]) {
        ++p;
      } else if (other.col_idx_[q] < col_idx_[p]) {
        ++q;
      } else {
        out_rows[i].push_back({col_idx_[p], values_[p] * other.values_[q]});
        ++p;
        ++q;
      }
    }
  }
  return FromRows(cols_, std::move(out_rows));
}

CsrMatrix CsrMatrix::HadamardDense(const Matrix& dense) const {
  SLAMPRED_CHECK(rows_ == dense.rows() && cols_ == dense.cols())
      << "CSR HadamardDense shape mismatch";
  std::vector<std::vector<RowEntry>> out_rows(rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    out_rows[i].reserve(row_ptr_[i + 1] - row_ptr_[i]);
    for (std::size_t p = row_ptr_[i]; p < row_ptr_[i + 1]; ++p) {
      out_rows[i].push_back(
          {col_idx_[p], values_[p] * dense(i, col_idx_[p])});
    }
  }
  return FromRows(cols_, std::move(out_rows));
}

double CsrMatrix::Sum() const {
  double sum = 0.0;
  for (double v : values_) sum += v;
  return sum;
}

double CsrMatrix::NormL1() const {
  double sum = 0.0;
  for (double v : values_) sum += std::fabs(v);
  return sum;
}

double CsrMatrix::NormFrobenius() const {
  double sum = 0.0;
  for (double v : values_) sum += v * v;
  return std::sqrt(sum);
}

double CsrMatrix::MaxAbs() const {
  double best = 0.0;
  for (double v : values_) best = std::max(best, std::fabs(v));
  return best;
}

std::size_t CsrMatrix::EstimatedBytes() const {
  return row_ptr_.size() * sizeof(std::size_t) +
         col_idx_.size() * sizeof(std::size_t) +
         values_.size() * sizeof(double);
}

void CsrMatrix::Serialize(BinaryWriter& writer) const {
  writer.WriteU64(rows_);
  writer.WriteU64(cols_);
  writer.WriteU64(values_.size());
  for (std::size_t p : row_ptr_) writer.WriteU64(p);
  for (std::size_t c : col_idx_) writer.WriteU64(c);
  for (double v : values_) writer.WriteDouble(v);
}

Result<CsrMatrix> CsrMatrix::Deserialize(BinaryReader& reader) {
  const std::size_t header_offset = reader.offset();
  auto rows = reader.ReadU64();
  if (!rows.ok()) return rows.status();
  auto cols = reader.ReadU64();
  if (!cols.ok()) return cols.status();
  auto nnz = reader.ReadU64();
  if (!nnz.ok()) return nnz.status();
  const std::uint64_t payload_words = rows.value() + 1 + 2 * nnz.value();
  if (payload_words > reader.remaining() / sizeof(std::uint64_t)) {
    return reader.Truncated(
        static_cast<std::size_t>(payload_words) * sizeof(std::uint64_t),
        "csr payload");
  }
  auto corrupt = [&](const std::string& what) {
    return Status::IoError("corrupt csr matrix (" + what + ") in record at "
                           "offset " + std::to_string(header_offset));
  };

  CsrMatrix m;
  m.rows_ = static_cast<std::size_t>(rows.value());
  m.cols_ = static_cast<std::size_t>(cols.value());
  m.row_ptr_.assign(m.rows_ + 1, 0);
  for (std::size_t& p : m.row_ptr_) {
    auto value = reader.ReadU64();
    if (!value.ok()) return value.status();
    p = static_cast<std::size_t>(value.value());
  }
  if (m.row_ptr_.front() != 0 ||
      m.row_ptr_.back() != static_cast<std::size_t>(nnz.value())) {
    return corrupt("row_ptr endpoints");
  }
  for (std::size_t i = 0; i < m.rows_; ++i) {
    if (m.row_ptr_[i] > m.row_ptr_[i + 1]) return corrupt("row_ptr order");
  }
  m.col_idx_.assign(static_cast<std::size_t>(nnz.value()), 0);
  for (std::size_t& c : m.col_idx_) {
    auto value = reader.ReadU64();
    if (!value.ok()) return value.status();
    if (value.value() >= cols.value()) return corrupt("column index range");
    c = static_cast<std::size_t>(value.value());
  }
  for (std::size_t i = 0; i < m.rows_; ++i) {
    for (std::size_t p = m.row_ptr_[i] + 1; p < m.row_ptr_[i + 1]; ++p) {
      if (m.col_idx_[p - 1] >= m.col_idx_[p]) return corrupt("column order");
    }
  }
  m.values_.assign(static_cast<std::size_t>(nnz.value()), 0.0);
  for (double& v : m.values_) {
    auto value = reader.ReadDouble();
    if (!value.ok()) return value.status();
    v = value.value();
  }
  return m;
}

}  // namespace slampred
