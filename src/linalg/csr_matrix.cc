#include "linalg/csr_matrix.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace slampred {

CsrMatrix CsrMatrix::FromTriplets(std::size_t rows, std::size_t cols,
                                  std::vector<Triplet> triplets) {
  for (const Triplet& t : triplets) {
    SLAMPRED_CHECK(t.row < rows && t.col < cols)
        << "triplet (" << t.row << "," << t.col << ") outside " << rows << "x"
        << cols;
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(rows + 1, 0);

  // Merge duplicates, drop zeros.
  std::vector<Triplet> merged;
  merged.reserve(triplets.size());
  for (const Triplet& t : triplets) {
    if (!merged.empty() && merged.back().row == t.row &&
        merged.back().col == t.col) {
      merged.back().value += t.value;
    } else {
      merged.push_back(t);
    }
  }

  for (const Triplet& t : merged) {
    if (t.value == 0.0) continue;
    m.col_idx_.push_back(t.col);
    m.values_.push_back(t.value);
    ++m.row_ptr_[t.row + 1];
  }
  for (std::size_t i = 0; i < rows; ++i) m.row_ptr_[i + 1] += m.row_ptr_[i];
  return m;
}

CsrMatrix CsrMatrix::FromDense(const Matrix& dense, double drop_tol) {
  std::vector<Triplet> trips;
  for (std::size_t i = 0; i < dense.rows(); ++i) {
    for (std::size_t j = 0; j < dense.cols(); ++j) {
      const double v = dense(i, j);
      if (std::fabs(v) > drop_tol) trips.push_back({i, j, v});
    }
  }
  return FromTriplets(dense.rows(), dense.cols(), std::move(trips));
}

CsrMatrix CsrMatrix::Identity(std::size_t n) {
  std::vector<Triplet> trips;
  trips.reserve(n);
  for (std::size_t i = 0; i < n; ++i) trips.push_back({i, i, 1.0});
  return FromTriplets(n, n, std::move(trips));
}

double CsrMatrix::At(std::size_t i, std::size_t j) const {
  SLAMPRED_CHECK(i < rows_ && j < cols_) << "CSR index out of range";
  const auto begin = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[i]);
  const auto end = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[i + 1]);
  const auto it = std::lower_bound(begin, end, j);
  if (it == end || *it != j) return 0.0;
  return values_[static_cast<std::size_t>(it - col_idx_.begin())];
}

Vector CsrMatrix::Multiply(const Vector& x) const {
  SLAMPRED_CHECK(x.size() == cols_) << "CSR matvec shape mismatch";
  Vector y(rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    double sum = 0.0;
    for (std::size_t p = row_ptr_[i]; p < row_ptr_[i + 1]; ++p) {
      sum += values_[p] * x[col_idx_[p]];
    }
    y[i] = sum;
  }
  return y;
}

Vector CsrMatrix::MultiplyTranspose(const Vector& x) const {
  SLAMPRED_CHECK(x.size() == rows_) << "CSR matvec(T) shape mismatch";
  Vector y(cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    for (std::size_t p = row_ptr_[i]; p < row_ptr_[i + 1]; ++p) {
      y[col_idx_[p]] += values_[p] * xi;
    }
  }
  return y;
}

Matrix CsrMatrix::MultiplyDense(const Matrix& b) const {
  SLAMPRED_CHECK(b.rows() == cols_) << "CSR * dense shape mismatch";
  Matrix out(rows_, b.cols());
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t p = row_ptr_[i]; p < row_ptr_[i + 1]; ++p) {
      const double v = values_[p];
      const std::size_t k = col_idx_[p];
      for (std::size_t j = 0; j < b.cols(); ++j) {
        out(i, j) += v * b(k, j);
      }
    }
  }
  return out;
}

Matrix CsrMatrix::MultiplyTransposeDense(const Matrix& b) const {
  SLAMPRED_CHECK(b.rows() == rows_) << "CSRᵀ * dense shape mismatch";
  Matrix out(cols_, b.cols());
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t p = row_ptr_[i]; p < row_ptr_[i + 1]; ++p) {
      const double v = values_[p];
      const std::size_t k = col_idx_[p];
      for (std::size_t j = 0; j < b.cols(); ++j) {
        out(k, j) += v * b(i, j);
      }
    }
  }
  return out;
}

Vector CsrMatrix::RowSums() const {
  Vector sums(rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    double sum = 0.0;
    for (std::size_t p = row_ptr_[i]; p < row_ptr_[i + 1]; ++p) {
      sum += values_[p];
    }
    sums[i] = sum;
  }
  return sums;
}

Matrix CsrMatrix::ToDense() const {
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t p = row_ptr_[i]; p < row_ptr_[i + 1]; ++p) {
      out(i, col_idx_[p]) = values_[p];
    }
  }
  return out;
}

CsrMatrix CsrMatrix::Transposed() const {
  std::vector<Triplet> trips;
  trips.reserve(nnz());
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t p = row_ptr_[i]; p < row_ptr_[i + 1]; ++p) {
      trips.push_back({col_idx_[p], i, values_[p]});
    }
  }
  return FromTriplets(cols_, rows_, std::move(trips));
}

CsrMatrix CsrMatrix::Scaled(double factor) const {
  CsrMatrix out = *this;
  for (double& v : out.values_) v *= factor;
  return out;
}

CsrMatrix CsrMatrix::Add(const CsrMatrix& other) const {
  SLAMPRED_CHECK(rows_ == other.rows_ && cols_ == other.cols_)
      << "CSR add shape mismatch";
  std::vector<Triplet> trips;
  trips.reserve(nnz() + other.nnz());
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t p = row_ptr_[i]; p < row_ptr_[i + 1]; ++p) {
      trips.push_back({i, col_idx_[p], values_[p]});
    }
  }
  for (std::size_t i = 0; i < other.rows_; ++i) {
    for (std::size_t p = other.row_ptr_[i]; p < other.row_ptr_[i + 1]; ++p) {
      trips.push_back({i, other.col_idx_[p], other.values_[p]});
    }
  }
  return FromTriplets(rows_, cols_, std::move(trips));
}

double CsrMatrix::Sum() const {
  double sum = 0.0;
  for (double v : values_) sum += v;
  return sum;
}

}  // namespace slampred
