#include "linalg/qr.h"

#include <cmath>

#include "util/logging.h"

namespace slampred {

Result<QrResult> ComputeQr(const Matrix& a) {
  if (a.empty()) return Status::InvalidArgument("QR of empty matrix");
  if (a.rows() < a.cols()) {
    return Status::InvalidArgument("thin QR requires rows >= cols");
  }
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();

  // Householder QR accumulating R in `work`; reflectors applied to an
  // identity pad to recover thin Q at the end.
  Matrix work = a;
  std::vector<Vector> reflectors;
  reflectors.reserve(n);

  for (std::size_t k = 0; k < n; ++k) {
    // Build the reflector for column k below the diagonal.
    double norm = 0.0;
    for (std::size_t i = k; i < m; ++i) norm += work(i, k) * work(i, k);
    norm = std::sqrt(norm);
    Vector v(m);  // Full-length for simplicity; zeros above k.
    if (norm == 0.0) {
      reflectors.push_back(v);
      continue;
    }
    const double alpha = work(k, k) >= 0.0 ? -norm : norm;
    v[k] = work(k, k) - alpha;
    for (std::size_t i = k + 1; i < m; ++i) v[i] = work(i, k);
    const double vnorm = v.Norm();
    if (vnorm > 0.0) v /= vnorm;
    reflectors.push_back(v);

    // Apply H = I − 2vvᵀ to the remaining columns.
    for (std::size_t j = k; j < n; ++j) {
      double dot = 0.0;
      for (std::size_t i = k; i < m; ++i) dot += v[i] * work(i, j);
      dot *= 2.0;
      for (std::size_t i = k; i < m; ++i) work(i, j) -= dot * v[i];
    }
  }

  QrResult res;
  res.r = Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) res.r(i, j) = work(i, j);
  }

  // Q(thin) = H₁H₂...H_n · [I_n; 0], applied in reverse order.
  res.q = Matrix(m, n);
  for (std::size_t j = 0; j < n; ++j) res.q(j, j) = 1.0;
  for (std::size_t kk = n; kk > 0; --kk) {
    const std::size_t k = kk - 1;
    const Vector& v = reflectors[k];
    if (v.Norm() == 0.0) continue;
    for (std::size_t j = 0; j < n; ++j) {
      double dot = 0.0;
      for (std::size_t i = k; i < m; ++i) dot += v[i] * res.q(i, j);
      dot *= 2.0;
      for (std::size_t i = k; i < m; ++i) res.q(i, j) -= dot * v[i];
    }
  }
  return res;
}

Result<Vector> LeastSquares(const Matrix& a, const Vector& b) {
  if (a.rows() != b.size()) {
    return Status::InvalidArgument("LeastSquares shape mismatch");
  }
  auto qr = ComputeQr(a);
  if (!qr.ok()) return qr.status();
  const Matrix& q = qr.value().q;
  const Matrix& r = qr.value().r;
  const std::size_t n = a.cols();
  // x = R⁻¹ Qᵀ b.
  Vector qtb(n);
  for (std::size_t j = 0; j < n; ++j) {
    double sum = 0.0;
    for (std::size_t i = 0; i < a.rows(); ++i) sum += q(i, j) * b[i];
    qtb[j] = sum;
  }
  Vector x(n);
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    if (std::fabs(r(i, i)) < 1e-12) {
      return Status::NumericalError("rank-deficient least squares");
    }
    double sum = qtb[i];
    for (std::size_t k = i + 1; k < n; ++k) sum -= r(i, k) * x[k];
    x[i] = sum / r(i, i);
  }
  return x;
}

Matrix OrthonormalizeColumns(const Matrix& a, double tol) {
  const std::size_t m = a.rows();
  std::vector<Vector> basis;
  const double scale = std::max(a.MaxAbs(), 1e-300);
  for (std::size_t j = 0; j < a.cols(); ++j) {
    Vector v = a.Col(j);
    // Two passes of Gram–Schmidt for numerical robustness.
    for (int pass = 0; pass < 2; ++pass) {
      for (const Vector& b : basis) {
        const double proj = v.Dot(b);
        for (std::size_t i = 0; i < m; ++i) v[i] -= proj * b[i];
      }
    }
    const double norm = v.Norm();
    if (norm > tol * scale) {
      v /= norm;
      basis.push_back(std::move(v));
    }
  }
  Matrix out(m, basis.size());
  for (std::size_t j = 0; j < basis.size(); ++j) out.SetCol(j, basis[j]);
  return out;
}

}  // namespace slampred
