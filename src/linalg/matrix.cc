#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>

#include "linalg/gemm_kernel.h"
#include "util/binary_io.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace slampred {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, double value)
    : rows_(rows), cols_(cols), data_(rows * cols, value) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    SLAMPRED_CHECK(row.size() == cols_) << "ragged initializer list";
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::Identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Diagonal(const Vector& diag) {
  Matrix m(diag.size(), diag.size());
  for (std::size_t i = 0; i < diag.size(); ++i) m(i, i) = diag[i];
  return m;
}

Matrix Matrix::RandomGaussian(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (double& v : m.data_) v = rng.NextGaussian();
  return m;
}

double Matrix::At(std::size_t i, std::size_t j) const {
  SLAMPRED_CHECK(i < rows_ && j < cols_)
      << "matrix index (" << i << "," << j << ") out of range (" << rows_
      << "x" << cols_ << ")";
  return (*this)(i, j);
}

void Matrix::Set(std::size_t i, std::size_t j, double value) {
  SLAMPRED_CHECK(i < rows_ && j < cols_)
      << "matrix index (" << i << "," << j << ") out of range (" << rows_
      << "x" << cols_ << ")";
  (*this)(i, j) = value;
}

Vector Matrix::Row(std::size_t i) const {
  SLAMPRED_CHECK(i < rows_);
  Vector out(cols_);
  for (std::size_t j = 0; j < cols_; ++j) out[j] = (*this)(i, j);
  return out;
}

Vector Matrix::Col(std::size_t j) const {
  SLAMPRED_CHECK(j < cols_);
  Vector out(rows_);
  for (std::size_t i = 0; i < rows_; ++i) out[i] = (*this)(i, j);
  return out;
}

void Matrix::SetRow(std::size_t i, const Vector& row) {
  SLAMPRED_CHECK(i < rows_ && row.size() == cols_);
  for (std::size_t j = 0; j < cols_; ++j) (*this)(i, j) = row[j];
}

void Matrix::SetCol(std::size_t j, const Vector& col) {
  SLAMPRED_CHECK(j < cols_ && col.size() == rows_);
  for (std::size_t i = 0; i < rows_; ++i) (*this)(i, j) = col[i];
}

Vector Matrix::Diag() const {
  const std::size_t n = std::min(rows_, cols_);
  Vector out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = (*this)(i, i);
  return out;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  SLAMPRED_CHECK(rows_ == other.rows_ && cols_ == other.cols_)
      << "matrix shape mismatch in +=";
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  SLAMPRED_CHECK(rows_ == other.rows_ && cols_ == other.cols_)
      << "matrix shape mismatch in -=";
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) {
  for (double& v : data_) v *= scalar;
  return *this;
}

Matrix Matrix::operator+(const Matrix& other) const {
  Matrix out = *this;
  out += other;
  return out;
}

Matrix Matrix::operator-(const Matrix& other) const {
  Matrix out = *this;
  out -= other;
  return out;
}

Matrix Matrix::operator*(double scalar) const {
  Matrix out = *this;
  out *= scalar;
  return out;
}

Matrix Matrix::operator*(const Matrix& other) const {
  SLAMPRED_CHECK(cols_ == other.rows_)
      << "matmul shape mismatch: " << rows_ << "x" << cols_ << " * "
      << other.rows_ << "x" << other.cols_;
  Matrix out(rows_, other.cols_);
  const double* a = data_.data();
  const double* b = other.data_.data();
  double* o = out.data_.data();
  const std::size_t inner = cols_;
  const std::size_t ncols = other.cols_;
  // Row-parallel blocked kernel; every output row has one writing chunk
  // and k ascends per element, so results match serial bit-for-bit.
  ParallelFor(0, rows_, GrainForWork(inner * ncols),
              [&](std::size_t row0, std::size_t row1) {
                internal::GemmAccumulateRows(
                    row0, row1, inner, ncols,
                    [a, inner](std::size_t i, std::size_t k) {
                      return a[i * inner + k];
                    },
                    b, o, [](std::size_t) { return std::size_t{0}; });
              });
  return out;
}

Vector Matrix::operator*(const Vector& v) const {
  SLAMPRED_CHECK(cols_ == v.size()) << "matvec shape mismatch";
  Vector out(rows_);
  ParallelFor(0, rows_, GrainForWork(cols_),
              [&](std::size_t row0, std::size_t row1) {
                for (std::size_t i = row0; i < row1; ++i) {
                  const double* row = &data_[i * cols_];
                  double sum = 0.0;
                  for (std::size_t j = 0; j < cols_; ++j) sum += row[j] * v[j];
                  out[i] = sum;
                }
              });
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  // Parallel over *output* rows: each chunk owns a column stripe of the
  // source and a row stripe of the destination.
  ParallelFor(0, cols_, GrainForWork(rows_),
              [&](std::size_t j0, std::size_t j1) {
                for (std::size_t j = j0; j < j1; ++j) {
                  for (std::size_t i = 0; i < rows_; ++i) {
                    out(j, i) = (*this)(i, j);
                  }
                }
              });
  return out;
}

Matrix Matrix::Hadamard(const Matrix& other) const {
  SLAMPRED_CHECK(rows_ == other.rows_ && cols_ == other.cols_)
      << "Hadamard shape mismatch";
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = data_[i] * other.data_[i];
  }
  return out;
}

double Matrix::FrobeniusNorm() const {
  double sum = 0.0;
  for (double v : data_) sum += v * v;
  return std::sqrt(sum);
}

double Matrix::NormL1() const {
  double sum = 0.0;
  for (double v : data_) sum += std::fabs(v);
  return sum;
}

double Matrix::MaxAbs() const {
  double best = 0.0;
  for (double v : data_) best = std::max(best, std::fabs(v));
  return best;
}

double Matrix::Sum() const {
  double sum = 0.0;
  for (double v : data_) sum += v;
  return sum;
}

double Matrix::Trace() const {
  SLAMPRED_CHECK(IsSquare()) << "trace of non-square matrix";
  double sum = 0.0;
  for (std::size_t i = 0; i < rows_; ++i) sum += (*this)(i, i);
  return sum;
}

bool Matrix::IsSymmetric(double tol) const {
  if (!IsSquare()) return false;
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = i + 1; j < cols_; ++j) {
      if (std::fabs((*this)(i, j) - (*this)(j, i)) > tol) return false;
    }
  }
  return true;
}

Matrix Matrix::Symmetrized() const {
  SLAMPRED_CHECK(IsSquare()) << "symmetrize of non-square matrix";
  Matrix out(rows_, cols_);
  ParallelFor(0, rows_, GrainForWork(cols_),
              [&](std::size_t row0, std::size_t row1) {
                for (std::size_t i = row0; i < row1; ++i) {
                  for (std::size_t j = 0; j < cols_; ++j) {
                    out(i, j) = 0.5 * ((*this)(i, j) + (*this)(j, i));
                  }
                }
              });
  return out;
}

Matrix Matrix::Block(std::size_t row0, std::size_t col0, std::size_t n_rows,
                     std::size_t n_cols) const {
  SLAMPRED_CHECK(row0 + n_rows <= rows_ && col0 + n_cols <= cols_)
      << "block out of range";
  Matrix out(n_rows, n_cols);
  for (std::size_t i = 0; i < n_rows; ++i) {
    for (std::size_t j = 0; j < n_cols; ++j) {
      out(i, j) = (*this)(row0 + i, col0 + j);
    }
  }
  return out;
}

void Matrix::SetBlock(std::size_t row0, std::size_t col0,
                      const Matrix& block) {
  SLAMPRED_CHECK(row0 + block.rows() <= rows_ && col0 + block.cols() <= cols_)
      << "block out of range";
  for (std::size_t i = 0; i < block.rows(); ++i) {
    for (std::size_t j = 0; j < block.cols(); ++j) {
      (*this)(row0 + i, col0 + j) = block(i, j);
    }
  }
}

void Matrix::Fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

std::size_t Matrix::ZeroSmallEntries(double tol) {
  std::size_t zeroed = 0;
  for (double& v : data_) {
    if (v != 0.0 && std::fabs(v) < tol) {
      v = 0.0;
      ++zeroed;
    }
  }
  return zeroed;
}

double Matrix::Sparsity() const {
  if (data_.empty()) return 1.0;
  std::size_t zeros = 0;
  for (double v : data_) {
    if (v == 0.0) ++zeros;
  }
  return static_cast<double>(zeros) / static_cast<double>(data_.size());
}

std::string Matrix::ToString(int precision) const {
  std::string out;
  for (std::size_t i = 0; i < rows_; ++i) {
    out += "[";
    for (std::size_t j = 0; j < cols_; ++j) {
      if (j > 0) out += ", ";
      out += FormatDouble((*this)(i, j), precision);
    }
    out += "]\n";
  }
  return out;
}

void Matrix::Serialize(BinaryWriter& writer) const {
  writer.WriteU64(rows_);
  writer.WriteU64(cols_);
  for (double v : data_) writer.WriteDouble(v);
}

Result<Matrix> Matrix::Deserialize(BinaryReader& reader) {
  const std::size_t shape_offset = reader.offset();
  auto rows = reader.ReadU64();
  if (!rows.ok()) return rows.status();
  auto cols = reader.ReadU64();
  if (!cols.ok()) return cols.status();
  // Guard the allocation: the payload must actually fit in the
  // remaining bytes, so a corrupt shape cannot trigger a giant alloc.
  const std::uint64_t count = rows.value() * cols.value();
  if (rows.value() != 0 && count / rows.value() != cols.value()) {
    return Status::IoError("corrupt matrix shape " +
                           std::to_string(rows.value()) + "x" +
                           std::to_string(cols.value()) + " at offset " +
                           std::to_string(shape_offset));
  }
  if (count > reader.remaining() / sizeof(double)) {
    return reader.Truncated(static_cast<std::size_t>(count) * sizeof(double),
                            "matrix payload");
  }
  Matrix m(static_cast<std::size_t>(rows.value()),
           static_cast<std::size_t>(cols.value()));
  for (double& v : m.data_) {
    auto value = reader.ReadDouble();
    if (!value.ok()) return value.status();
    v = value.value();
  }
  return m;
}

Matrix operator*(double scalar, const Matrix& m) { return m * scalar; }

}  // namespace slampred
